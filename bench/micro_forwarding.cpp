// Microbenchmarks of the forwarding hot path: advertised-topology
// construction, per-hop next-hop computation, and full packet routes under
// all three routing models — each as the seed form (per-hop Graph copies,
// allocating Dijkstras) next to the workspace form (CSR base +
// KnowledgeView overlay + reused scratch), for both metric families.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/fnbp.hpp"
#include "graph/deployment.hpp"
#include "olsr/selection_workspace.hpp"
#include "routing/advertised_topology.hpp"
#include "routing/forwarding.hpp"
#include "routing/routing_table.hpp"

namespace {

using namespace qolsr;

struct Fixture {
  Graph full;
  std::vector<std::vector<NodeId>> ans;
  Graph advertised_graph;
  CsrTopology advertised_csr;
  std::vector<std::pair<NodeId, NodeId>> pairs;  ///< sampled (s, d)

  explicit Fixture(double degree, std::uint64_t seed = 17) {
    util::Rng rng(seed);
    DeploymentConfig config;
    config.degree = degree;
    full = sample_poisson_deployment(config, rng);
    assign_uniform_qos(full, {}, rng);

    const FnbpSelector<BandwidthMetric> fnbp;
    EvalWorkspaceLite scratch;
    ans.resize(full.node_count());
    for (NodeId u = 0; u < full.node_count(); ++u) {
      scratch.builder.build(full, u, scratch.view);
      fnbp.select_into(scratch.view, scratch.selection, ans[u]);
    }
    advertised_graph = build_advertised_topology(full, ans);
    AdvertisedTopologyBuilder builder;
    builder.build_advertised(full, ans, advertised_csr);

    const auto n = static_cast<NodeId>(full.node_count());
    for (int i = 0; i < 64; ++i) {
      const NodeId s = static_cast<NodeId>(rng.uniform_int(n));
      const NodeId d = static_cast<NodeId>(rng.uniform_int(n));
      if (s != d) pairs.emplace_back(s, d);
    }
  }

 private:
  struct EvalWorkspaceLite {
    LocalViewBuilder builder;
    LocalView view;
    SelectionWorkspace selection;
  };
};

// --------------------------------------------------- advertised topology --

void BM_BuildAdvertisedGraph(benchmark::State& state) {
  const Fixture f(static_cast<double>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(build_advertised_topology(f.full, f.ans));
  state.counters["nodes"] = static_cast<double>(f.full.node_count());
}

void BM_BuildAdvertisedCsr(benchmark::State& state) {
  const Fixture f(static_cast<double>(state.range(0)));
  AdvertisedTopologyBuilder builder;
  CsrTopology csr;
  for (auto _ : state) {
    builder.build_advertised(f.full, f.ans, csr);
    benchmark::DoNotOptimize(csr.node_count());
  }
  state.counters["nodes"] = static_cast<double>(f.full.node_count());
}

// ------------------------------------------------------- per-hop next hop --
// The cost one traversed node pays: knowledge assembly + next-hop
// computation. The seed form clones the advertised graph first — exactly
// what forward_packet did per hop.

template <Metric M>
void run_next_hop_seed(benchmark::State& state) {
  const Fixture f(static_cast<double>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto [s, d] = f.pairs[i];
    Graph knowledge = f.advertised_graph;
    for (const Edge& e : f.full.neighbors(s))
      if (!knowledge.has_edge(s, e.to)) knowledge.add_edge(s, e.to, e.qos);
    benchmark::DoNotOptimize(compute_next_hop<M>(knowledge, s, d));
    i = (i + 1) % f.pairs.size();
  }
}

template <Metric M>
void run_next_hop_workspace(benchmark::State& state) {
  const Fixture f(static_cast<double>(state.range(0)));
  ForwardingWorkspace ws;
  ws.knowledge.reset(f.advertised_csr);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto [s, d] = f.pairs[i];
    ws.knowledge.begin_hop();
    for (const Edge& e : f.full.neighbors(s)) {
      ws.knowledge.add_link(s, e.to, e.qos);
      ws.knowledge.add_link(e.to, s, e.qos);
    }
    ws.knowledge.finalize_hop();
    benchmark::DoNotOptimize(compute_next_hop<M, KnowledgeView>(
        ws.knowledge, s, d, ws.dijkstra, ws.next_hop));
    i = (i + 1) % f.pairs.size();
  }
}

void BM_NextHopWidestSeed(benchmark::State& state) {
  run_next_hop_seed<BandwidthMetric>(state);
}
void BM_NextHopWidestWorkspace(benchmark::State& state) {
  run_next_hop_workspace<BandwidthMetric>(state);
}
void BM_NextHopDelaySeed(benchmark::State& state) {
  run_next_hop_seed<DelayMetric>(state);
}
void BM_NextHopDelayWorkspace(benchmark::State& state) {
  run_next_hop_workspace<DelayMetric>(state);
}

// ---------------------------------------------------------- whole packets --

template <Metric M, bool kWorkspace>
void run_forward_packet(benchmark::State& state) {
  const Fixture f(static_cast<double>(state.range(0)));
  ForwardingWorkspace ws;
  ForwardingOptions options;  // hop-by-hop, QoS-first, local views off
  options.use_local_views = false;
  std::size_t i = 0;
  std::size_t delivered = 0;
  for (auto _ : state) {
    const auto [s, d] = f.pairs[i];
    ForwardingResult r;
    if constexpr (kWorkspace) {
      r = forward_packet<M>(f.full, f.advertised_csr, s, d, options, ws);
    } else {
      r = forward_packet<M>(f.full, f.advertised_graph, s, d, options);
    }
    delivered += r.delivered() ? 1 : 0;
    benchmark::DoNotOptimize(r.path.data());
    i = (i + 1) % f.pairs.size();
  }
  state.counters["delivered"] = static_cast<double>(delivered);
}

template <Metric M, bool kWorkspace>
void run_forward_via_ans(benchmark::State& state) {
  const Fixture f(static_cast<double>(state.range(0)));
  ForwardingWorkspace ws;
  ForwardingOptions options;
  std::size_t i = 0;
  std::size_t delivered = 0;
  for (auto _ : state) {
    const auto [s, d] = f.pairs[i];
    ForwardingResult r;
    if constexpr (kWorkspace) {
      r = forward_via_ans<M>(f.full, f.ans, s, d, options, ws);
    } else {
      r = forward_via_ans<M>(f.full, f.ans, s, d, options);
    }
    delivered += r.delivered() ? 1 : 0;
    benchmark::DoNotOptimize(r.path.data());
    i = (i + 1) % f.pairs.size();
  }
  state.counters["delivered"] = static_cast<double>(delivered);
}

void BM_ForwardPacketWidestSeed(benchmark::State& state) {
  run_forward_packet<BandwidthMetric, false>(state);
}
void BM_ForwardPacketWidestWorkspace(benchmark::State& state) {
  run_forward_packet<BandwidthMetric, true>(state);
}
void BM_ForwardPacketDelaySeed(benchmark::State& state) {
  run_forward_packet<DelayMetric, false>(state);
}
void BM_ForwardPacketDelayWorkspace(benchmark::State& state) {
  run_forward_packet<DelayMetric, true>(state);
}
void BM_ForwardViaAnsWidestSeed(benchmark::State& state) {
  run_forward_via_ans<BandwidthMetric, false>(state);
}
void BM_ForwardViaAnsWidestWorkspace(benchmark::State& state) {
  run_forward_via_ans<BandwidthMetric, true>(state);
}
void BM_ForwardViaAnsDelaySeed(benchmark::State& state) {
  run_forward_via_ans<DelayMetric, false>(state);
}
void BM_ForwardViaAnsDelayWorkspace(benchmark::State& state) {
  run_forward_via_ans<DelayMetric, true>(state);
}

}  // namespace

BENCHMARK(BM_BuildAdvertisedGraph)->Arg(10)->Arg(20);
BENCHMARK(BM_BuildAdvertisedCsr)->Arg(10)->Arg(20);
BENCHMARK(BM_NextHopWidestSeed)->Arg(10)->Arg(20);
BENCHMARK(BM_NextHopWidestWorkspace)->Arg(10)->Arg(20);
BENCHMARK(BM_NextHopDelaySeed)->Arg(10)->Arg(20);
BENCHMARK(BM_NextHopDelayWorkspace)->Arg(10)->Arg(20);
BENCHMARK(BM_ForwardPacketWidestSeed)->Arg(10)->Arg(20);
BENCHMARK(BM_ForwardPacketWidestWorkspace)->Arg(10)->Arg(20);
BENCHMARK(BM_ForwardPacketDelaySeed)->Arg(10)->Arg(20);
BENCHMARK(BM_ForwardPacketDelayWorkspace)->Arg(10)->Arg(20);
BENCHMARK(BM_ForwardViaAnsWidestSeed)->Arg(10)->Arg(20);
BENCHMARK(BM_ForwardViaAnsWidestWorkspace)->Arg(10)->Arg(20);
BENCHMARK(BM_ForwardViaAnsDelaySeed)->Arg(10)->Arg(20);
BENCHMARK(BM_ForwardViaAnsDelayWorkspace)->Arg(10)->Arg(20);
