// Microbenchmarks of the discrete-event control plane: events/sec and the
// cost of converging a whole network.
#include <benchmark/benchmark.h>

#include "core/fnbp.hpp"
#include "graph/deployment.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace qolsr;

Graph make_network(double degree, std::uint64_t seed = 23) {
  util::Rng rng(seed);
  DeploymentConfig config;
  config.width = 400.0;
  config.height = 400.0;
  config.degree = degree;
  Graph g = sample_poisson_deployment(config, rng);
  assign_uniform_qos(g, {}, rng);
  return g;
}

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    int counter = 0;
    for (int i = 0; i < 10000; ++i)
      q.schedule_at(static_cast<SimTime>(i % 97), [&counter] { ++counter; });
    q.run_until(100.0);
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}

// The broadcast fan-out hot point: one TC delivered to every neighbor of
// the densest node. The Medium hands all deliveries the same immutable
// SharedBytes buffer, so the steady-state per-delivery cost is event
// scheduling + packet parsing + the receiver's cheap drop (handshake
// check or duplicate-set hit) — never a per-neighbor copy of the message
// bytes. Regressing to copy-per-neighbor shows up directly in items/sec
// at high degree.
void BM_BroadcastFanout(benchmark::State& state) {
  const Graph g = make_network(static_cast<double>(state.range(0)));
  NodeId hub = 0;
  for (NodeId u = 0; u < g.node_count(); ++u)
    if (g.neighbors(u).size() > g.neighbors(hub).size()) hub = u;
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  const auto routes = [](const Graph& graph, NodeId self, NodeId dest) {
    return compute_next_hop<BandwidthMetric>(graph, self, dest);
  };
  // Park the protocol ticks far in the future and run past the one
  // (jittered) HELLO round before measuring: inside the loop nothing but
  // the measured broadcasts runs on the queue, and the receivers' tables
  // no longer change between iterations.
  SimConfig config;
  config.node.hello_interval = 1e9;
  config.node.tc_interval = 1e9;
  Simulator sim(g, flooding, ans, routes, config);
  sim.run_until(2.0 * config.node.jitter + 1.0);

  TcMessage tc;
  tc.originator = hub;
  for (const Edge& e : g.neighbors(hub))
    tc.advertised.push_back({e.to, LinkStatus::kSymmetric, e.qos});
  PacketHeader header;
  header.type = MessageType::kTc;
  header.originator = hub;
  header.ttl = 1;  // receivers must not re-flood inside the measurement
  const SharedBytes bytes = make_shared_bytes(serialize(header, tc));

  const double drain = 2.0 * sim.config().propagation_delay;
  for (auto _ : state) {
    sim.broadcast(hub, bytes);
    sim.run_until(sim.now() + drain);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.neighbors(hub).size()));
  state.counters["fanout"] = static_cast<double>(g.neighbors(hub).size());
  state.counters["bytes"] = static_cast<double>(bytes->size());
}

void BM_ControlPlaneConvergence(benchmark::State& state) {
  const Graph g = make_network(static_cast<double>(state.range(0)));
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  const auto routes = [](const Graph& graph, NodeId self, NodeId dest) {
    return compute_next_hop<BandwidthMetric>(graph, self, dest);
  };
  for (auto _ : state) {
    Simulator sim(g, flooding, ans, routes);
    sim.run_to_convergence();
    benchmark::DoNotOptimize(sim.trace().control_bytes);
    state.counters["events"] = static_cast<double>(sim.queue().processed());
  }
  state.counters["nodes"] = static_cast<double>(g.node_count());
}

}  // namespace

BENCHMARK(BM_EventQueueThroughput);
BENCHMARK(BM_BroadcastFanout)->Arg(10)->Arg(30);
BENCHMARK(BM_ControlPlaneConvergence)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);
