// Microbenchmarks of the discrete-event control plane: events/sec, the
// cost of converging a whole network, and the steady-state allocation
// behavior of the pooled duplicate set and data-forwarding paths (the
// allocation counters double as assertions — a benchmark fails with
// SkipWithError when a path contracted to be allocation-free allocates).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/fnbp.hpp"
#include "graph/deployment.hpp"
#include "proto/duplicate_set.hpp"
#include "routing/routing_table.hpp"
#include "sim/simulator.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// Counting global allocator: lets the steady-state benchmarks report (and
// assert on) allocs/op alongside time/op.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace qolsr;

Graph make_network(double degree, std::uint64_t seed = 23) {
  util::Rng rng(seed);
  DeploymentConfig config;
  config.width = 400.0;
  config.height = 400.0;
  config.degree = degree;
  Graph g = sample_poisson_deployment(config, rng);
  assign_uniform_qos(g, {}, rng);
  return g;
}

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    int counter = 0;
    for (int i = 0; i < 10000; ++i)
      q.schedule_at(static_cast<SimTime>(i % 97), [&counter] { ++counter; });
    q.run_until(100.0);
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}

// The broadcast fan-out hot point: one TC delivered to every neighbor of
// the densest node. The Medium hands all deliveries the same immutable
// SharedBytes buffer, so the steady-state per-delivery cost is event
// scheduling + packet parsing + the receiver's cheap drop (handshake
// check or duplicate-set hit) — never a per-neighbor copy of the message
// bytes. Regressing to copy-per-neighbor shows up directly in items/sec
// at high degree.
void BM_BroadcastFanout(benchmark::State& state) {
  const Graph g = make_network(static_cast<double>(state.range(0)));
  NodeId hub = 0;
  for (NodeId u = 0; u < g.node_count(); ++u)
    if (g.neighbors(u).size() > g.neighbors(hub).size()) hub = u;
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  const auto routes = [](const Graph& graph, NodeId self, NodeId dest) {
    return compute_next_hop<BandwidthMetric>(graph, self, dest);
  };
  // Park the protocol ticks far in the future and run past the one
  // (jittered) HELLO round before measuring: inside the loop nothing but
  // the measured broadcasts runs on the queue, and the receivers' tables
  // no longer change between iterations.
  SimConfig config;
  config.node.hello_interval = 1e9;
  config.node.tc_interval = 1e9;
  Simulator sim(g, flooding, ans, routes, config);
  sim.run_until(2.0 * config.node.jitter + 1.0);

  TcMessage tc;
  tc.originator = hub;
  for (const Edge& e : g.neighbors(hub))
    tc.advertised.push_back({e.to, LinkStatus::kSymmetric, e.qos});
  PacketHeader header;
  header.type = MessageType::kTc;
  header.originator = hub;
  header.ttl = 1;  // receivers must not re-flood inside the measurement
  const SharedBytes bytes = make_shared_bytes(serialize(header, tc));

  const double drain = 2.0 * sim.config().propagation_delay;
  for (auto _ : state) {
    sim.broadcast(hub, bytes);
    sim.run_until(sim.now() + drain);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.neighbors(hub).size()));
  state.counters["fanout"] = static_cast<double>(g.neighbors(hub).size());
  state.counters["bytes"] = static_cast<double>(bytes->size());
}

void BM_ControlPlaneConvergence(benchmark::State& state) {
  const Graph g = make_network(static_cast<double>(state.range(0)));
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  const auto routes = [](const Graph& graph, NodeId self, NodeId dest) {
    return compute_next_hop<BandwidthMetric>(graph, self, dest);
  };
  for (auto _ : state) {
    Simulator sim(g, flooding, ans, routes);
    sim.run_to_convergence();
    benchmark::DoNotOptimize(sim.trace().control_bytes);
    state.counters["events"] = static_cast<double>(sim.queue().processed());
  }
  state.counters["nodes"] = static_cast<double>(g.node_count());
}

// Steady-state duplicate-set churn at a run's high-water live set: after
// warmup the pooled table must process check_and_insert + expiry sweeps
// with ZERO heap allocations — asserted, not just reported.
void BM_DuplicateSetSteadyState(benchmark::State& state) {
  DuplicateSet set(/*hold_time=*/5.0);
  double now = 0.0;
  std::uint16_t seq = 0;
  const auto round = [&] {
    now += 1.0;
    for (NodeId originator = 0; originator < 64; ++originator)
      set.check_and_insert(originator, seq, now);
    ++seq;
    set.expire(now);
  };
  for (int i = 0; i < 32; ++i) round();  // grow to high water, size spare
  const std::uint64_t before = g_allocations.load();
  for (auto _ : state) round();
  const std::uint64_t allocated = g_allocations.load() - before;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  state.counters["allocs/op"] =
      static_cast<double>(allocated) / static_cast<double>(state.iterations());
  if (allocated != 0)
    state.SkipWithError("pooled duplicate set allocated in steady state");
}

// Steady-state data forwarding with warm caches: route memo hits, cached
// knowledge view, workspace Dijkstra. Reports allocs/packet (serialize +
// delivery events + journey record) and asserts the per-packet
// to_graph/Dijkstra allocation storm stays gone. The topology is a short
// chain rather than a dense deployment so the measurement window is packet
// work, not amortized HELLO/TC flood noise.
void BM_SteadyStateDataForwarding(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Graph chain;
  util::Rng rng(29);
  for (NodeId i = 0; i < n; ++i)
    chain.add_node({static_cast<double>(i) * 50.0, 0.0});
  for (NodeId i = 0; i + 1 < n; ++i) chain.add_edge(i, i + 1);
  assign_uniform_qos(chain, {}, rng);
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  DijkstraWorkspace dws;
  NextHopScratch bfs;
  const auto routes = [&dws, &bfs](const Graph& graph, NodeId self,
                                   NodeId dest) {
    return compute_next_hop<BandwidthMetric>(graph, self, dest, dws, bfs);
  };
  Simulator sim(chain, flooding, ans, routes);
  sim.run_to_convergence();
  // Full-length path; one warm packet fills the route memos.
  const NodeId src = 0;
  const NodeId dst = n - 1;
  std::uint32_t payload = 1;
  const double drain =
      2.0 * static_cast<double>(n) * sim.config().propagation_delay;
  sim.node(src).send_data(dst, payload++);
  sim.run_until(sim.now() + drain);

  const std::uint64_t before = g_allocations.load();
  for (auto _ : state) {
    sim.node(src).send_data(dst, payload++);
    sim.run_until(sim.now() + drain);
  }
  const std::uint64_t allocated = g_allocations.load() - before;
  const double per_packet =
      static_cast<double>(allocated) / static_cast<double>(state.iterations());
  state.counters["allocs/packet"] = per_packet;
  state.counters["delivered"] =
      static_cast<double>(sim.trace().data_delivered);
  state.counters["hops"] = static_cast<double>(n - 1);
  // Generous ceiling: a handful per hop (frame copy + delivery closure +
  // journey record). The pre-cache path paid a Graph materialization plus
  // a full Dijkstra per hop — well over a hundred for this chain.
  if (per_packet > 60.0)
    state.SkipWithError("forwarding path allocation regression");
}

}  // namespace

BENCHMARK(BM_EventQueueThroughput);
BENCHMARK(BM_DuplicateSetSteadyState);
BENCHMARK(BM_SteadyStateDataForwarding)->Arg(8);
BENCHMARK(BM_BroadcastFanout)->Arg(10)->Arg(30);
BENCHMARK(BM_ControlPlaneConvergence)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);
