// Microbenchmarks of the discrete-event control plane: events/sec and the
// cost of converging a whole network.
#include <benchmark/benchmark.h>

#include "core/fnbp.hpp"
#include "graph/deployment.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace qolsr;

Graph make_network(double degree, std::uint64_t seed = 23) {
  util::Rng rng(seed);
  DeploymentConfig config;
  config.width = 400.0;
  config.height = 400.0;
  config.degree = degree;
  Graph g = sample_poisson_deployment(config, rng);
  assign_uniform_qos(g, {}, rng);
  return g;
}

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    int counter = 0;
    for (int i = 0; i < 10000; ++i)
      q.schedule_at(static_cast<SimTime>(i % 97), [&counter] { ++counter; });
    q.run_until(100.0);
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}

void BM_ControlPlaneConvergence(benchmark::State& state) {
  const Graph g = make_network(static_cast<double>(state.range(0)));
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  const auto routes = [](const Graph& graph, NodeId self, NodeId dest) {
    return compute_next_hop<BandwidthMetric>(graph, self, dest);
  };
  for (auto _ : state) {
    Simulator sim(g, flooding, ans, routes);
    sim.run_to_convergence();
    benchmark::DoNotOptimize(sim.trace().control_bytes);
    state.counters["events"] = static_cast<double>(sim.queue().processed());
  }
  state.counters["nodes"] = static_cast<double>(g.node_count());
}

}  // namespace

BENCHMARK(BM_EventQueueThroughput);
BENCHMARK(BM_ControlPlaneConvergence)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);
