// Microbenchmarks: per-node CPU cost of each selection heuristic as the
// network densifies (google-benchmark).
#include <benchmark/benchmark.h>

#include "core/fnbp.hpp"
#include "graph/deployment.hpp"
#include "olsr/mpr.hpp"
#include "olsr/qolsr_mpr.hpp"
#include "olsr/topology_filtering.hpp"

namespace {

using namespace qolsr;

Graph make_network(double degree, std::uint64_t seed = 9) {
  util::Rng rng(seed);
  DeploymentConfig config;
  config.width = 600.0;
  config.height = 600.0;
  config.degree = degree;
  Graph g = sample_poisson_deployment(config, rng);
  assign_uniform_qos(g, {}, rng);
  return g;
}

/// Runs `select` on every node's view, counting nodes/sec.
template <typename SelectFn>
void run_selection_bench(benchmark::State& state, SelectFn&& select) {
  const Graph g = make_network(static_cast<double>(state.range(0)));
  std::vector<LocalView> views;
  views.reserve(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) views.emplace_back(g, u);
  for (auto _ : state) {
    for (const LocalView& view : views)
      benchmark::DoNotOptimize(select(view));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(views.size()));
}

void BM_SelectRfc3626Mpr(benchmark::State& state) {
  run_selection_bench(state,
                      [](const LocalView& v) { return select_mpr_rfc3626(v); });
}

void BM_SelectQolsrMpr2(benchmark::State& state) {
  run_selection_bench(state, [](const LocalView& v) {
    return select_qolsr_mpr<BandwidthMetric>(v, QolsrVariant::kMpr2);
  });
}

void BM_SelectTopologyFiltering(benchmark::State& state) {
  run_selection_bench(state, [](const LocalView& v) {
    return select_topology_filtering_ans<BandwidthMetric>(v);
  });
}

void BM_SelectFnbp(benchmark::State& state) {
  run_selection_bench(state, [](const LocalView& v) {
    return select_fnbp_ans<BandwidthMetric>(v);
  });
}

void BM_SelectFnbpDelay(benchmark::State& state) {
  run_selection_bench(state, [](const LocalView& v) {
    return select_fnbp_ans<DelayMetric>(v);
  });
}

void BM_BuildLocalView(benchmark::State& state) {
  const Graph g = make_network(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    for (NodeId u = 0; u < g.node_count(); ++u)
      benchmark::DoNotOptimize(LocalView(g, u));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.node_count()));
}

/// The eval hot loop's form: one builder + one view reused across all
/// nodes — steady-state allocation-free (CSR rows and scratch recycled).
void BM_BuildLocalViewReused(benchmark::State& state) {
  const Graph g = make_network(static_cast<double>(state.range(0)));
  LocalViewBuilder builder;
  LocalView view;
  for (auto _ : state) {
    for (NodeId u = 0; u < g.node_count(); ++u) {
      builder.build(g, u, view);
      benchmark::DoNotOptimize(view.size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.node_count()));
}

/// Selection through the workspace interface the eval pipeline uses
/// (select_into with a per-thread SelectionWorkspace and a reused output).
template <Metric M>
void run_workspace_selection_bench(benchmark::State& state) {
  const Graph g = make_network(static_cast<double>(state.range(0)));
  std::vector<LocalView> views;
  views.reserve(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) views.emplace_back(g, u);
  SelectionWorkspace ws;
  std::vector<NodeId> out;
  for (auto _ : state) {
    for (const LocalView& view : views) {
      select_fnbp_ans<M>(view, ws, out);
      benchmark::DoNotOptimize(out.size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(views.size()));
}

void BM_SelectFnbpWorkspace(benchmark::State& state) {
  run_workspace_selection_bench<BandwidthMetric>(state);
}

void BM_SelectFnbpDelayWorkspace(benchmark::State& state) {
  run_workspace_selection_bench<DelayMetric>(state);
}

/// End-to-end per-node cost as execute_run pays it: build the view, then
/// run one selection on it, all through the reused workspaces.
void BM_BuildAndSelectFnbp(benchmark::State& state) {
  const Graph g = make_network(static_cast<double>(state.range(0)));
  LocalViewBuilder builder;
  LocalView view;
  SelectionWorkspace ws;
  std::vector<NodeId> out;
  for (auto _ : state) {
    for (NodeId u = 0; u < g.node_count(); ++u) {
      builder.build(g, u, view);
      select_fnbp_ans<BandwidthMetric>(view, ws, out);
      benchmark::DoNotOptimize(out.size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.node_count()));
}

}  // namespace

// Degree 40 stresses the dense-graph corner: two-hop discovery used to pay
// an O(deg·two_hop·log deg) membership probe per candidate edge; the
// builder's epoch stamps make it O(1) per edge.
BENCHMARK(BM_SelectRfc3626Mpr)->Arg(10)->Arg(20)->Arg(30);
BENCHMARK(BM_SelectQolsrMpr2)->Arg(10)->Arg(20)->Arg(30);
BENCHMARK(BM_SelectTopologyFiltering)->Arg(10)->Arg(20)->Arg(30);
BENCHMARK(BM_SelectFnbp)->Arg(10)->Arg(20)->Arg(30);
BENCHMARK(BM_SelectFnbpDelay)->Arg(10)->Arg(20)->Arg(30);
BENCHMARK(BM_SelectFnbpWorkspace)->Arg(10)->Arg(20)->Arg(30);
BENCHMARK(BM_SelectFnbpDelayWorkspace)->Arg(10)->Arg(20)->Arg(30);
BENCHMARK(BM_BuildLocalView)->Arg(10)->Arg(20)->Arg(30)->Arg(40);
BENCHMARK(BM_BuildLocalViewReused)->Arg(10)->Arg(20)->Arg(30)->Arg(40);
BENCHMARK(BM_BuildAndSelectFnbp)->Arg(10)->Arg(20)->Arg(30);
