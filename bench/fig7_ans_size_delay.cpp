// Reproduces Fig. 7: size of the advertised set vs. density, delay metric.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qolsr;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const auto result = run_experiment(figure_spec(7, args.config));
  bench::emit(args, "Fig. 7 — advertised set size vs density (delay)",
              set_size_table(result.sweep));
  std::cout << "\n# diagnostics\n"
            << diagnostics_table(result.sweep).to_string();
  return 0;
}
