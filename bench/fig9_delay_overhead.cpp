// Reproduces Fig. 9: delay overhead (d−d*)/d* vs. density, against the
// centralized min-delay optimum.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qolsr;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const auto result = run_experiment(figure_spec(9, args.config));
  bench::emit(args, "Fig. 9 — delay overhead vs density",
              overhead_table(result.sweep));
  std::cout << "\n# diagnostics\n"
            << diagnostics_table(result.sweep).to_string();
  return 0;
}
