// Reproduces Fig. 9: delay overhead (d−d*)/d* vs. density, against the
// centralized min-delay optimum.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qolsr;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const auto sweep = delay_sweep(args.config);
  bench::emit(args, "Fig. 9 — delay overhead vs density",
              overhead_table(sweep));
  std::cout << "\n# diagnostics\n" << diagnostics_table(sweep).to_string();
  return 0;
}
