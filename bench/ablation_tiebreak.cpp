// Ablation: the max≺/min≺ tie-break. The paper picks, inside fP(u,v), the
// node whose direct link has the best QoS (id as final tie-break); the
// ablation picks the smallest id only. Measures what the QoS-aware pick
// buys in set size and route quality.
#include <iostream>

#include "bench_common.hpp"
#include "core/fnbp.hpp"
#include "eval/runner.hpp"

int main(int argc, char** argv) {
  using namespace qolsr;
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  Scenario scenario;
  scenario.densities = bandwidth_densities();
  scenario.runs = args.config.runs;
  scenario.seed = args.config.seed;

  const FnbpSelector<BandwidthMetric> qos_pick;
  FnbpOptions options;
  options.qos_tiebreak = false;
  const FnbpSelector<BandwidthMetric> id_pick(options);
  const auto sweep = run_sweep<BandwidthMetric>(scenario, {&qos_pick, &id_pick},
                                                args.config.threads);

  util::Table table({"density", "size_qos", "size_id", "ovh_qos", "ovh_id"});
  for (const DensityStats& d : sweep) {
    const ProtocolStats& a = d.protocols[0];
    const ProtocolStats& b = d.protocols[1];
    table.add_row({util::format_double(d.density, 0),
                   util::format_double(a.set_size.mean(), 3),
                   util::format_double(b.set_size.mean(), 3),
                   util::format_double(a.overhead.mean(), 4),
                   util::format_double(b.overhead.mean(), 4)});
  }
  bench::emit(args, "Ablation — max-prec QoS tie-break vs smallest-id",
              table);
  return 0;
}
