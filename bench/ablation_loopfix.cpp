// Ablation: FNBP with the Fig.-4 loop-fix (Alg. 1/2 lines 12–14) disabled.
// Measures advertised-set size, overhead and delivery failures with and
// without the guard across the bandwidth density sweep.
#include <iostream>

#include "bench_common.hpp"
#include "core/fnbp.hpp"
#include "eval/runner.hpp"

int main(int argc, char** argv) {
  using namespace qolsr;
  const bench::BenchArgs args = bench::parse_args(argc, argv);

  Scenario scenario;
  scenario.densities = bandwidth_densities();
  scenario.runs = args.config.runs;
  scenario.seed = args.config.seed;
  // The strict ANS-chain routing model is where lines 12-14 are load-
  // bearing: without the guard the directed relay chains can dead-end
  // behind a bottleneck link (the paper's Fig. 4 at network scale).
  scenario.routing_model = Scenario::RoutingModel::kAnsChain;

  const FnbpSelector<BandwidthMetric> with_fix;
  FnbpOptions options;
  options.loop_fix = false;
  const FnbpSelector<BandwidthMetric> without_fix(options);
  // The selector name is identical; label the columns manually.
  const auto sweep = run_sweep<BandwidthMetric>(
      scenario, {&with_fix, &without_fix}, args.config.threads);

  util::Table table({"density", "size_fix", "size_nofix", "ovh_fix",
                     "ovh_nofix", "fail_fix", "fail_nofix"});
  for (const DensityStats& d : sweep) {
    const ProtocolStats& a = d.protocols[0];
    const ProtocolStats& b = d.protocols[1];
    table.add_row({util::format_double(d.density, 0),
                   util::format_double(a.set_size.mean(), 3),
                   util::format_double(b.set_size.mean(), 3),
                   util::format_double(a.overhead.mean(), 4),
                   util::format_double(b.overhead.mean(), 4),
                   util::format_double(static_cast<double>(a.failed), 0),
                   util::format_double(static_cast<double>(b.failed), 0)});
  }
  bench::emit(args, "Ablation — FNBP loop-fix (Alg. 1 lines 12-14)", table);
  return 0;
}
