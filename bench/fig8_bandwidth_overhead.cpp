// Reproduces Fig. 8: bandwidth overhead (b*−b)/b* vs. density, against the
// centralized widest-path optimum. Expected shape: QOLSR clearly worst;
// FNBP ≈ topology filtering, small (<2% at high density) and decreasing.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qolsr;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const auto result = run_experiment(figure_spec(8, args.config));
  bench::emit(args, "Fig. 8 — bandwidth overhead vs density",
              overhead_table(result.sweep));
  std::cout << "\n# diagnostics\n"
            << diagnostics_table(result.sweep).to_string();
  return 0;
}
