// Reproduces Fig. 6: size of the set advertised in TC messages vs. network
// density, bandwidth metric. Series: original QOLSR (MPR-2), topology
// filtering, FNBP. Expected shape: FNBP smallest and ~flat; QOLSR largest
// and growing.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qolsr;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const auto result = run_experiment(figure_spec(6, args.config));
  bench::emit(args, "Fig. 6 — advertised set size vs density (bandwidth)",
              set_size_table(result.sweep));
  std::cout << "\n# diagnostics\n"
            << diagnostics_table(result.sweep).to_string();
  return 0;
}
