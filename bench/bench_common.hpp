#pragma once

#include <cstddef>
#include <cstdint>

#include "eval/figures.hpp"

namespace qolsr::bench {

/// Command-line knobs shared by the figure harnesses:
///   --runs=N     runs per density (default 100, the paper's setting;
///                QOLSR_BENCH_RUNS overrides the default)
///   --seed=S     base RNG seed (default 42)
///   --threads=T  run_sweep worker threads (default 0 = hardware
///                concurrency; timing runs pass 1 for determinism)
///   --csv        additionally emit CSV after the table
struct BenchArgs {
  FigureConfig config;
  bool csv = false;
};

BenchArgs parse_args(int argc, char** argv);

/// Prints the standard harness banner + table (+ CSV when asked).
void emit(const BenchArgs& args, const char* title, const util::Table& table);

}  // namespace qolsr::bench
