#include "bench_common.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>

namespace qolsr::bench {

BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  if (const char* env = std::getenv("QOLSR_BENCH_RUNS"))
    args.config.runs = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--runs=", 7) == 0) {
      args.config.runs =
          static_cast<std::size_t>(std::strtoull(arg + 7, nullptr, 10));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.config.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      args.config.threads =
          static_cast<unsigned>(std::strtoul(arg + 10, nullptr, 10));
    } else if (std::strcmp(arg, "--csv") == 0) {
      args.csv = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::cout << "usage: [--runs=N] [--seed=S] [--threads=T] [--csv]\n";
      std::exit(0);
    }
  }
  if (args.config.runs == 0) args.config.runs = 1;
  return args;
}

void emit(const BenchArgs& args, const char* title,
          const util::Table& table) {
  std::cout << "# " << title << "\n"
            << "# runs/density=" << args.config.runs
            << " seed=" << args.config.seed << "\n"
            << table.to_string();
  if (args.csv) std::cout << "\n" << table.to_csv();
  std::cout.flush();
}

}  // namespace qolsr::bench
