// Microbenchmarks of the path engine: generic Dijkstra (both metric
// families) and the per-node fP computation on 2-hop views.
#include <benchmark/benchmark.h>

#include "graph/deployment.hpp"
#include "path/dijkstra.hpp"
#include "path/first_hops.hpp"

namespace {

using namespace qolsr;

Graph make_network(double degree, std::uint64_t seed = 17) {
  util::Rng rng(seed);
  DeploymentConfig config;
  config.degree = degree;
  Graph g = sample_poisson_deployment(config, rng);
  assign_uniform_qos(g, {}, rng);
  return g;
}

void BM_DijkstraWidestFullGraph(benchmark::State& state) {
  const Graph g = make_network(static_cast<double>(state.range(0)));
  NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra<BandwidthMetric>(g, source));
    source = (source + 1) % static_cast<NodeId>(g.node_count());
  }
  state.counters["nodes"] = static_cast<double>(g.node_count());
}

void BM_DijkstraDelayFullGraph(benchmark::State& state) {
  const Graph g = make_network(static_cast<double>(state.range(0)));
  NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra<DelayMetric>(g, source));
    source = (source + 1) % static_cast<NodeId>(g.node_count());
  }
  state.counters["nodes"] = static_cast<double>(g.node_count());
}

void BM_FirstHopsPerNode(benchmark::State& state) {
  const Graph g = make_network(static_cast<double>(state.range(0)));
  std::vector<LocalView> views;
  for (NodeId u = 0; u < g.node_count(); ++u) views.emplace_back(g, u);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compute_first_hops<BandwidthMetric>(views[i]));
    i = (i + 1) % views.size();
  }
}

/// Workspace form: labels, heap, CSR mirror and the fP table itself are
/// reused across nodes — the per-node cost the eval pipeline actually pays.
template <Metric M>
void run_first_hops_workspace_bench(benchmark::State& state) {
  const Graph g = make_network(static_cast<double>(state.range(0)));
  std::vector<LocalView> views;
  for (NodeId u = 0; u < g.node_count(); ++u) views.emplace_back(g, u);
  DijkstraWorkspace ws;
  FirstHopTable table;
  std::size_t i = 0;
  for (auto _ : state) {
    compute_first_hops<M>(views[i], ws, table);
    benchmark::DoNotOptimize(table.best.data());
    i = (i + 1) % views.size();
  }
}

void BM_FirstHopsPerNodeWorkspace(benchmark::State& state) {
  run_first_hops_workspace_bench<BandwidthMetric>(state);
}

void BM_FirstHopsDelayPerNodeWorkspace(benchmark::State& state) {
  run_first_hops_workspace_bench<DelayMetric>(state);
}

/// Full-graph Dijkstra through a reused workspace (no dense result export).
void BM_DijkstraWidestWorkspace(benchmark::State& state) {
  const Graph g = make_network(static_cast<double>(state.range(0)));
  DijkstraWorkspace ws;
  NodeId source = 0;
  for (auto _ : state) {
    dijkstra<BandwidthMetric>(g, source, kInvalidNode, ws);
    benchmark::DoNotOptimize(ws.size());
    source = (source + 1) % static_cast<NodeId>(g.node_count());
  }
  state.counters["nodes"] = static_cast<double>(g.node_count());
}

}  // namespace

BENCHMARK(BM_DijkstraWidestFullGraph)->Arg(10)->Arg(20)->Arg(35);
BENCHMARK(BM_DijkstraDelayFullGraph)->Arg(10)->Arg(20)->Arg(35);
BENCHMARK(BM_DijkstraWidestWorkspace)->Arg(10)->Arg(20)->Arg(35);
BENCHMARK(BM_FirstHopsPerNode)->Arg(10)->Arg(20)->Arg(35);
BENCHMARK(BM_FirstHopsPerNodeWorkspace)->Arg(10)->Arg(20)->Arg(35);
BENCHMARK(BM_FirstHopsDelayPerNodeWorkspace)->Arg(10)->Arg(20)->Arg(35);
