// qolsr_eval — runtime-configurable evaluation sweeps over the paper's
// protocol zoo, no recompilation required. Canned paper figures:
//
//   $ qolsr_eval --figure=6                      # Fig. 6, paper settings
//   $ qolsr_eval --figure=8 --runs=20 --seed=7   # quick pass
//
// or any metric × selector × scenario combination:
//
//   $ qolsr_eval --metric=loss \
//       --selectors=olsr_mpr,qolsr_mpr1,qolsr_mpr2,topology_filtering,fnbp \
//       --densities=10,20,30 --runs=50 --threads=1 --format=json
//
// See --help for the full flag list, --list-metrics / --list-selectors for
// the registered names.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "eval/figures.hpp"
#include "eval/result_sink.hpp"

namespace {

int usage(std::ostream& os, int exit_code) {
  os << "usage: qolsr_eval [--figure=" << qolsr::figure_names()
     << "] [flags]\n"
     << "\n"
     << "Runs one declarative experiment (a density sweep of ANS selection\n"
     << "heuristics under a QoS metric) and emits per-density aggregates.\n"
     << "Every spec executes on one of three evaluation backends: the\n"
     << "analytic oracle (default); --backend=packet, a discrete-event\n"
     << "HELLO/TC control-plane simulation per run that also measures\n"
     << "message/byte overhead, duplicate suppression and convergence\n"
     << "time from the converged protocol state; or --backend=wire, which\n"
     << "stands every run up as REAL processes — one qolsr_node daemon\n"
     << "per node plus the qolsr_switch software switch over Unix\n"
     << "sockets — and verifies each daemon's converged digest against\n"
     << "an in-process simulator twin byte-for-byte (keep fields small:\n"
     << "e.g. --backend=wire --field=250x250 --densities=6 --runs=2).\n"
     << "--figure=N starts from the canned spec of the paper's Fig. N;\n"
     << "every later flag overrides it. --figure=M is the repository's\n"
     << "mobility figure: delivery ratio vs. node speed under random-\n"
     << "waypoint motion with a 5-epoch TC refresh lag, all five\n"
     << "selectors (pair with --mobility/--epochs/--speed/--refresh to\n"
     << "customize). --figure=R is the robustness figure: delivery ratio\n"
     << "vs. ambient frame-loss probability on the packet backend, eight\n"
     << "probes per run, failure fates classified, plus a scheduled\n"
     << "single-node crash whose re-convergence is timed (pair with\n"
     << "--loss/--crash/--flap/--partition/--probes to customize).\n"
     << "--figure=L is the load figure: flow delivery ratio, queue drops\n"
     << "and p95 latency vs. offered load on the packet backend — a\n"
     << "16-flow Poisson workload scaled by the sweep value, links\n"
     << "draining at a capacity proportional to their bandwidth QoS\n"
     << "(pair with --traffic/--pattern/--flows/--capacity/--queue-bytes\n"
     << "to customize). --figure=B is the Byzantine-robustness figure:\n"
     << "delivery ratio and poisoned routes vs. adversary roster fraction\n"
     << "on the packet backend — blackhole and liar nodes drawn per run,\n"
     << "protocol-invariant violations counted by the runtime monitor\n"
     << "(pair with --adversaries/--corrupt/--probes to customize).\n"
     << "\n"
     << qolsr::experiment_flags_help()
     << "  --list-metrics        print metric names and exit\n"
     << "  --list-selectors      print registered selector names and exit\n"
     << "  --help                this text\n";
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qolsr;

  ExperimentSpec base;
  std::vector<std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-metrics") {
      for (MetricId id : kAllMetricIds)
        std::cout << metric_name(id) << "\n";
      return 0;
    }
    if (arg == "--list-selectors") {
      for (const std::string& name : SelectorRegistry::builtin().names())
        std::cout << name << "\n";
      return 0;
    }
    if (arg.rfind("--figure=", 0) == 0) {
      // One shared table (figure_by_name) resolves every canned figure —
      // numbers and letters alike — and names the valid set on a miss.
      try {
        base = figure_by_name(arg.substr(9), FigureConfig{});
      } catch (const std::exception& e) {
        std::cerr << "qolsr_eval: flag --figure: " << e.what() << "\n";
        return 2;
      }
      continue;  // order-independent: the canned spec is always the base
    }
    flags.push_back(arg);
  }

  // Flag mistakes get the usage text; a valid spec that fails at runtime
  // (degenerate deployment, unwritable output) gets only its diagnostic.
  ExperimentSpec spec;
  std::unique_ptr<ResultSink> sink;
  try {
    spec = parse_experiment_spec(flags, std::move(base));
    sink = make_result_sink(spec.format);
  } catch (const ExperimentError& e) {
    std::cerr << "qolsr_eval: " << e.what() << "\n";
    return usage(std::cerr, 2);
  }

  try {
    const ExperimentResult result = run_experiment(spec);
    if (spec.output_path.empty()) {
      sink->write(result, std::cout);
    } else {
      std::ofstream file(spec.output_path);
      if (!file)
        throw ExperimentError("cannot open output file '" + spec.output_path +
                              "'");
      sink->write(result, file);
      std::cerr << "wrote " << spec.format << " results to "
                << spec.output_path << "\n";
    }
  } catch (const ExperimentError& e) {
    std::cerr << "qolsr_eval: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
