// qolsr_switch — the vde2-style software switch: a single-threaded poll
// loop serving Unix SOCK_SEQPACKET plugs at <socket-path>. Daemons
// register their node id, the harness uploads the radio adjacency, and
// packet frames fan out within it (per-port loss/delay knobs optional).
#include <cstdio>

#include "net/switch_process.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <socket-path>\n", argv[0]);
    return 2;
  }
  return qolsr::net::run_switch(argv[1]);
}
