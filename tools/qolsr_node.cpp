// qolsr_node — one OLSR/QOLSR routing daemon: plugs into the software
// switch at <socket-path> as node <id> and runs the protocol control plane
// on real timers. Spawned in fleets by the wire harness (--backend=wire);
// also runnable by hand against a long-lived qolsr_switch.
#include <cstdio>
#include <cstdlib>

#include "net/node_daemon.hpp"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <socket-path> <node-id>\n", argv[0]);
    return 2;
  }
  char* end = nullptr;
  const unsigned long id = std::strtoul(argv[2], &end, 10);
  if (end == argv[2] || *end != '\0') {
    std::fprintf(stderr, "%s: invalid node id '%s'\n", argv[0], argv[2]);
    return 2;
  }
  return qolsr::net::run_node_daemon(argv[1],
                                     static_cast<qolsr::NodeId>(id));
}
