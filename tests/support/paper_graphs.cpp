#include "support/paper_graphs.hpp"

namespace qolsr::testing {

namespace {
LinkQos bw(double bandwidth, double delay = 1.0) {
  LinkQos qos;
  qos.bandwidth = bandwidth;
  qos.delay = delay;
  return qos;
}
}  // namespace

Graph Fig1::build() {
  Graph g(6);
  g.add_edge(v1, v2, bw(7));
  g.add_edge(v2, v3, bw(6));
  g.add_edge(v2, v5, bw(8));
  g.add_edge(v1, v5, bw(5));
  g.add_edge(v3, v5, bw(5));
  g.add_edge(v1, v6, bw(10));
  g.add_edge(v6, v5, bw(10));
  g.add_edge(v5, v4, bw(10));
  g.add_edge(v4, v3, bw(10));
  return g;
}

Graph Fig2::build() {
  // NOTE: v11 is linked to v6 only; a v2–v11 link cannot coexist with
  // fPBW(u,v3) = {v1,v2} on this wiring (any ≥4-wide route into v2 creates
  // a tied path into v3). The paper's v11 tie-break claim is covered by a
  // dedicated minimal graph in the tests.
  Graph g(12);
  g.add_edge(u, v1, bw(5));
  g.add_edge(u, v2, bw(5));
  g.add_edge(u, v4, bw(3));
  g.add_edge(u, v5, bw(2));
  g.add_edge(u, v6, bw(6));
  g.add_edge(u, v7, bw(3));
  g.add_edge(v1, v3, bw(4));
  g.add_edge(v2, v3, bw(4));
  g.add_edge(v1, v5, bw(5));
  g.add_edge(v5, v4, bw(5));
  g.add_edge(v5, v10, bw(5));
  g.add_edge(v6, v8, bw(5));
  g.add_edge(v8, v9, bw(5));  // invisible from u: joins two 2-hop nodes
  g.add_edge(v7, v9, bw(3));
  g.add_edge(v6, v11, bw(5));
  return g;
}

Graph Fig4::build() {
  Graph g(5);
  g.add_edge(a, b, bw(4));
  g.add_edge(b, c, bw(3));
  g.add_edge(c, d, bw(4));
  g.add_edge(a, d, bw(2));
  g.add_edge(d, e, bw(1));
  return g;
}

Graph Fig5::build() {
  // u's ring n1..n4 (ids 1..4) and two-hop targets t1..t4 (ids 5..8).
  Graph g(9);
  g.add_edge(0, 1, bw(8, 2));
  g.add_edge(0, 2, bw(3, 5));
  g.add_edge(0, 3, bw(6, 1));
  g.add_edge(0, 4, bw(2, 8));
  g.add_edge(1, 2, bw(9, 1));   // strong lateral link
  g.add_edge(3, 4, bw(7, 2));
  g.add_edge(1, 5, bw(5, 3));
  g.add_edge(2, 5, bw(6, 2));   // t1 covered by n1 and n2
  g.add_edge(2, 6, bw(4, 4));   // t2 only via n2
  g.add_edge(3, 7, bw(6, 3));
  g.add_edge(4, 7, bw(3, 6));   // t3 covered by n3 and n4
  g.add_edge(4, 8, bw(5, 2));   // t4 only via n4
  g.add_edge(5, 6, bw(8, 1));   // lateral link between 2-hop nodes
  return g;
}

}  // namespace qolsr::testing
