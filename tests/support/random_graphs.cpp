#include "support/random_graphs.hpp"

namespace qolsr::testing {

Graph random_geometric_graph(std::uint64_t seed, double degree, double side) {
  util::Rng rng(seed);
  DeploymentConfig config;
  config.width = side;
  config.height = side;
  config.radius = 100.0;
  config.degree = degree;
  Graph graph = sample_poisson_deployment(config, rng);
  assign_uniform_qos(graph, {}, rng);
  return graph;
}

Graph random_uniform_graph(std::uint64_t seed, std::size_t n, double p) {
  util::Rng rng(seed);
  Graph graph(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (rng.uniform01() < p) graph.add_edge(u, v);
  assign_uniform_qos(graph, {}, rng);
  return graph;
}

}  // namespace qolsr::testing
