#pragma once

#include <cstdint>

#include "graph/deployment.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace qolsr::testing {

/// Small random connected-ish geometric graph for property tests: a scaled
/// down version of the paper's deployment (field side `side`, radius 100,
/// target degree `degree`), with uniform QoS weights in the paper's default
/// intervals.
Graph random_geometric_graph(std::uint64_t seed, double degree = 8.0,
                             double side = 300.0);

/// Erdős–Rényi-style random graph with `n` nodes and edge probability `p`,
/// uniform QoS weights. Non-geometric — exercises topologies the unit-disk
/// model never produces (useful for adversarial corners).
Graph random_uniform_graph(std::uint64_t seed, std::size_t n, double p);

}  // namespace qolsr::testing
