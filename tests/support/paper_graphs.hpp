#pragma once

#include "graph/graph.hpp"

namespace qolsr::testing {

/// Reconstructions of the paper's worked examples. The published figures
/// don't list every edge weight legibly, so each graph is rebuilt to
/// satisfy every behavioral statement the paper makes about it; the
/// statements themselves are asserted in core/paper_examples_test.cpp.

/// Fig. 1 — six nodes where QOLSR's MPR-2 heuristic selects only v2 and v5
/// network-wide (v2 by v1 and v3, matching the caption), routes v1→v3 over
/// v2 with bandwidth 6, and misses the widest path v1·v6·v5·v4·v3 of
/// bandwidth 10.
///
/// Node ids: v1=0 … v6=5. Bandwidths:
///   v1–v2: 7, v2–v3: 6, v2–v5: 8, v1–v5: 5, v3–v5: 5,
///   v1–v6: 10, v6–v5: 10, v5–v4: 10, v4–v3: 10.
struct Fig1 {
  static constexpr NodeId v1 = 0, v2 = 1, v3 = 2, v4 = 3, v5 = 4, v6 = 5;
  static Graph build();
};

/// Fig. 2 — the 2-hop view of node u used for all fP examples:
///   * fPBW(u,v3) = {v1,v2} with value 4;
///   * u reaches its 1-hop neighbor v5 best through v1 (value 5 vs 2);
///   * u reaches v4 via u·v1·v5·v4 with bandwidth 5 (direct link is 3);
///   * the link v8–v9 joins two 2-hop neighbors, so u cannot see it and
///     settles for u·v7·v9 (3) although u·v6·v8·v9 (5) exists;
///   * v11 hangs off v6 and is covered by u's existing selection of v6
///     (the {v2,v6} tie-break claim lives in a dedicated minimal graph).
///
/// Node ids: u=0, v1=1 … v11=11. Bandwidths:
///   u–v1: 5, u–v2: 5, u–v4: 3, u–v5: 2, u–v6: 6, u–v7: 3,
///   v1–v3: 4, v2–v3: 4, v1–v5: 5, v5–v4: 5, v5–v10: 5,
///   v6–v8: 5, v8–v9: 5, v7–v9: 3, v6–v11: 5.
struct Fig2 {
  static constexpr NodeId u = 0, v1 = 1, v2 = 2, v3 = 3, v4 = 4, v5 = 5,
                          v6 = 6, v7 = 7, v8 = 8, v9 = 9, v10 = 10, v11 = 11;
  static Graph build();
};

/// Fig. 4 — the limiting-last-link case: all best paths to E share the
/// bottleneck D–E (bandwidth 1), so every fP(·,E) ties across first hops,
/// mutual coverage would leave D unselected, and the loop-fix forces the
/// smallest-id node A to select D.
///
/// Node ids: A=0, B=1, C=2, D=3, E=4. Bandwidths:
///   A–B: 4, B–C: 3, C–D: 4, A–D: 2, D–E: 1.
struct Fig4 {
  static constexpr NodeId a = 0, b = 1, c = 2, d = 3, e = 4;
  static Graph build();
};

/// Fig. 5 — a 9-node topology on which the three selections (RFC 3626
/// MPR, topology-filtering ANS, FNBP ANS) of the hub node are all distinct;
/// used by the example binary and by set-size comparison tests.
///
/// Node ids: u=0, n1…n4 = 1…4 (1-hop ring), t1…t4 = 5…8 (2-hop).
struct Fig5 {
  static constexpr NodeId u = 0;
  static Graph build();
};

}  // namespace qolsr::testing
