// The selector registry: builtin names in legend order, per-metric
// instantiation, unknown-name diagnostics, and custom registration.
#include "olsr/selector_registry.hpp"

#include <gtest/gtest.h>

#include "core/fnbp.hpp"

namespace qolsr {
namespace {

TEST(SelectorRegistry, BuiltinNamesInLegendOrder) {
  const std::vector<std::string> expected = {
      "olsr_mpr", "qolsr_mpr1", "qolsr_mpr2", "topology_filtering", "fnbp"};
  EXPECT_EQ(SelectorRegistry::builtin().names(), expected);
  for (const std::string& name : expected)
    EXPECT_TRUE(SelectorRegistry::builtin().contains(name));
  EXPECT_FALSE(SelectorRegistry::builtin().contains("fnbp2"));
}

TEST(SelectorRegistry, CreatesMetricSpecificInstances) {
  const SelectorRegistry& r = SelectorRegistry::builtin();
  // Instance names carry the metric suffix the eval columns use.
  EXPECT_EQ(r.create("olsr_mpr", MetricId::kDelay)->name(), "olsr_mpr");
  EXPECT_EQ(r.create("qolsr_mpr1", MetricId::kDelay)->name(),
            "qolsr_mpr1_delay");
  EXPECT_EQ(r.create("qolsr_mpr2", MetricId::kBandwidth)->name(),
            "qolsr_mpr2_bandwidth");
  EXPECT_EQ(r.create("topology_filtering", MetricId::kEnergy)->name(),
            "topology_filtering_energy");
  EXPECT_EQ(r.create("fnbp", MetricId::kBuffers)->name(), "fnbp_buffers");
}

TEST(SelectorRegistry, CreatedSelectorsSelectLikeTheDirectTypes) {
  // Fig. 1's topology: the registry's fnbp instance must agree with a
  // directly constructed FnbpSelector on every node.
  Graph g(6);
  auto bw = [](double bandwidth) {
    LinkQos qos;
    qos.bandwidth = bandwidth;
    return qos;
  };
  g.add_edge(0, 1, bw(7));
  g.add_edge(1, 2, bw(6));
  g.add_edge(1, 4, bw(8));
  g.add_edge(0, 4, bw(5));
  g.add_edge(2, 4, bw(5));
  g.add_edge(0, 5, bw(10));
  g.add_edge(5, 4, bw(10));
  g.add_edge(4, 3, bw(10));
  g.add_edge(3, 2, bw(10));

  const auto from_registry =
      SelectorRegistry::builtin().create("fnbp", MetricId::kBandwidth);
  const FnbpSelector<BandwidthMetric> direct;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    EXPECT_EQ(from_registry->select(view), direct.select(view)) << "node " << u;
  }
}

TEST(SelectorRegistry, UnknownNameThrowsWithKnownNames) {
  try {
    SelectorRegistry::builtin().create("does_not_exist", MetricId::kDelay);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("does_not_exist"), std::string::npos);
    EXPECT_NE(message.find("fnbp"), std::string::npos);
  }
}

TEST(SelectorRegistry, FloodingRolesPairProtocolsWithTheirTcDissemination) {
  const SelectorRegistry& r = SelectorRegistry::builtin();
  // OLSR and QOLSR flood on the very set they advertise...
  EXPECT_EQ(r.create_flooding("olsr_mpr", MetricId::kBandwidth)->name(),
            "olsr_mpr");
  EXPECT_EQ(r.create_flooding("qolsr_mpr1", MetricId::kDelay)->name(),
            "qolsr_mpr1_delay");
  EXPECT_EQ(r.create_flooding("qolsr_mpr2", MetricId::kBandwidth)->name(),
            "qolsr_mpr2_bandwidth");
  // ...while the split QANS designs advertise a filtered set but keep RFC
  // 3626 MPR flooding (they only change *what is advertised*).
  EXPECT_EQ(r.create_flooding("topology_filtering", MetricId::kBandwidth)
                ->name(),
            "olsr_mpr");
  EXPECT_EQ(r.create_flooding("fnbp", MetricId::kBandwidth)->name(),
            "olsr_mpr");
  EXPECT_THROW(r.create_flooding("no_such", MetricId::kBandwidth),
               std::invalid_argument);
}

TEST(SelectorRegistry, CustomRegistrationAndDuplicateRejection) {
  SelectorRegistry r;
  r.add("mine", [](MetricId) { return std::make_unique<Rfc3626Selector>(); });
  EXPECT_TRUE(r.contains("mine"));
  EXPECT_EQ(r.create("mine", MetricId::kLoss)->name(), "olsr_mpr");
  EXPECT_THROW(r.add("mine", [](MetricId) {
                 return std::make_unique<Rfc3626Selector>();
               }),
               std::invalid_argument);
}

}  // namespace
}  // namespace qolsr
