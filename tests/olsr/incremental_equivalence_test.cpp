// The tentpole correctness gate of the incremental maintenance layer:
// after *every* epoch of a randomized mobility/churn trace, the
// incrementally patched selection state (dirty nodes only re-ran) must
// equal a from-scratch rebuild — identical ANS for every node and every
// selector, and an identical advertised CSR topology. Also pins the
// event-delta contract: replaying an epoch's LinkEvents on the pre-step
// link set yields exactly the post-step link set.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/deployment.hpp"
#include "olsr/incremental.hpp"
#include "olsr/selector_registry.hpp"
#include "routing/advertised_topology.hpp"
#include "sim/mobility.hpp"
#include "util/rng.hpp"

namespace qolsr {
namespace {

constexpr std::size_t kEpochs = 55;  // the gate demands >= 50

std::set<std::pair<NodeId, NodeId>> link_set(const Graph& g) {
  std::set<std::pair<NodeId, NodeId>> links;
  for (NodeId u = 0; u < g.node_count(); ++u)
    for (const Edge& e : g.neighbors(u))
      if (e.to > u) links.insert({u, e.to});
  return links;
}

/// Replaying the epoch's events on the before-set must produce the
/// after-set (each event reflects one applied mutation, in order).
void expect_events_replay(const Graph& before, const Graph& after,
                          const std::vector<LinkEvent>& events) {
  std::set<std::pair<NodeId, NodeId>> links = link_set(before);
  for (const LinkEvent& event : events) {
    ASSERT_LT(event.a, event.b) << "events must be normalized";
    if (event.up) {
      EXPECT_TRUE(links.insert({event.a, event.b}).second)
          << "up event for a live link (" << event.a << "," << event.b << ")";
    } else {
      EXPECT_EQ(links.erase({event.a, event.b}), 1u)
          << "down event for a dead link (" << event.a << "," << event.b
          << ")";
    }
  }
  EXPECT_EQ(links, link_set(after));
}

std::vector<std::vector<std::vector<NodeId>>> full_selection(
    const Graph& graph, const std::vector<const AnsSelector*>& selectors) {
  std::vector<std::vector<std::vector<NodeId>>> ans(selectors.size());
  LocalViewBuilder builder;
  LocalView view;
  SelectionWorkspace selection;
  for (auto& per_node : ans) per_node.resize(graph.node_count());
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    builder.build(graph, u, view);
    for (std::size_t si = 0; si < selectors.size(); ++si)
      selectors[si]->select_into(view, selection, ans[si][u]);
  }
  return ans;
}

void expect_same_csr(const CsrTopology& a, const CsrTopology& b,
                     const std::string& context) {
  ASSERT_EQ(a.node_count(), b.node_count()) << context;
  ASSERT_EQ(a.edge_count(), b.edge_count()) << context;
  for (NodeId u = 0; u < a.node_count(); ++u) {
    const auto ra = a.neighbors(u);
    const auto rb = b.neighbors(u);
    ASSERT_EQ(ra.size(), rb.size()) << context << " row " << u;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].to, rb[i].to) << context << " row " << u;
      EXPECT_EQ(ra[i].qos, rb[i].qos) << context << " row " << u;
    }
  }
}

Graph sampled_graph(std::uint64_t seed, double degree, double side,
                    util::Rng& rng) {
  DeploymentConfig field;
  field.width = side;
  field.height = side;
  field.degree = degree;
  Graph graph;
  do {
    graph = sample_poisson_deployment(field, rng);
  } while (graph.node_count() < 10);
  QosIntervals qos{.bandwidth_hi = 5.0, .delay_hi = 5.0, .integral = true};
  assign_uniform_qos(graph, qos, rng);
  (void)seed;
  return graph;
}

/// Runs `model` for kEpochs epochs, asserting after every epoch that the
/// incremental state equals a from-scratch rebuild for all five paper
/// selectors.
void check_incremental_equals_rebuild(MobilityModel& model, Graph& graph,
                                      util::Rng& rng,
                                      const QosIntervals& qos) {
  (void)qos;
  const SelectorRegistry& registry = SelectorRegistry::builtin();
  std::vector<std::unique_ptr<AnsSelector>> owned;
  std::vector<const AnsSelector*> selectors;
  for (const std::string& name : registry.names()) {
    owned.push_back(registry.create(name, MetricId::kBandwidth));
    selectors.push_back(owned.back().get());
  }
  ASSERT_EQ(selectors.size(), 5u);

  auto incremental = full_selection(graph, selectors);

  LocalViewBuilder view_builder;
  LocalView view;
  SelectionWorkspace selection;
  DirtyNodeTracker dirty;
  std::vector<LinkEvent> events;
  AdvertisedTopologyBuilder builder_a, builder_b;
  CsrTopology csr_a, csr_b;

  std::size_t total_dirty = 0;
  for (std::size_t epoch = 1; epoch <= kEpochs; ++epoch) {
    SCOPED_TRACE("epoch=" + std::to_string(epoch));
    const Graph before = graph;
    events.clear();
    model.step(graph, rng, events);
    expect_events_replay(before, graph, events);

    dirty.begin_epoch(graph.node_count());
    collect_dirty_nodes(graph, events, dirty);
    refresh_dirty_selection(graph, selectors, dirty, view_builder, view,
                            selection, incremental);
    total_dirty += dirty.sorted_nodes().size();

    const auto rebuilt = full_selection(graph, selectors);
    for (std::size_t si = 0; si < selectors.size(); ++si) {
      ASSERT_EQ(incremental[si], rebuilt[si])
          << "selector " << selectors[si]->name();
      builder_a.build_advertised(graph, incremental[si], csr_a);
      builder_b.build_advertised(graph, rebuilt[si], csr_b);
      expect_same_csr(csr_a, csr_b, std::string(selectors[si]->name()));
    }
  }
  // The point of the layer: the dirty sweep must genuinely be partial
  // (otherwise this is a slow full rebuild with extra steps).
  EXPECT_LT(total_dirty, kEpochs * graph.node_count());
}

TEST(IncrementalEquivalence, RandomWaypointTrace) {
  util::Rng rng(2024);
  Graph graph = sampled_graph(2024, 7.0, 320.0, rng);
  WaypointConfig config;
  config.width = 320.0;
  config.height = 320.0;
  config.radius = 100.0;
  config.speed_min = 2.0;
  config.speed_max = 14.0;
  config.pause_epochs = 2;
  config.epoch_duration = 1.0;
  config.qos = {.bandwidth_hi = 5.0, .delay_hi = 5.0, .integral = true};
  RandomWaypointModel model(config, graph, rng);
  check_incremental_equals_rebuild(model, graph, rng, config.qos);
}

TEST(IncrementalEquivalence, LinkChurnTrace) {
  util::Rng rng(77);
  Graph graph = sampled_graph(77, 8.0, 300.0, rng);
  LinkChurnModel model(ChurnConfig{0.08, 0.3});
  QosIntervals qos{.bandwidth_hi = 5.0, .delay_hi = 5.0, .integral = true};
  check_incremental_equals_rebuild(model, graph, rng, qos);
}

TEST(IncrementalEquivalence, HeavyChurnTearsAndHealsConsistently) {
  // Aggressive rates hit the corners: nodes isolated entirely, whole
  // neighborhoods flapping within one epoch.
  util::Rng rng(5150);
  Graph graph = sampled_graph(5150, 6.0, 260.0, rng);
  LinkChurnModel model(ChurnConfig{0.35, 0.5});
  QosIntervals qos{.bandwidth_hi = 5.0, .delay_hi = 5.0, .integral = true};
  check_incremental_equals_rebuild(model, graph, rng, qos);
}

}  // namespace
}  // namespace qolsr
