#include "olsr/qolsr_mpr.hpp"

#include <gtest/gtest.h>

#include "olsr/mpr.hpp"
#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

using testing::Fig1;

TEST(QolsrMpr, Fig1OnlyV2AndV5AreSelected) {
  // The paper's Fig.-1 caption: under the QOLSR heuristic only v2 and v5
  // are selected as MPRs — v2 by v1 and v3, v5 by everyone.
  const Graph g = Fig1::build();
  auto mpr2 = [&](NodeId u) {
    return select_qolsr_mpr<BandwidthMetric>(LocalView(g, u),
                                             QolsrVariant::kMpr2);
  };
  EXPECT_EQ(mpr2(Fig1::v1), (std::vector<NodeId>{Fig1::v2, Fig1::v5}));
  EXPECT_EQ(mpr2(Fig1::v3), (std::vector<NodeId>{Fig1::v2, Fig1::v5}));
  EXPECT_EQ(mpr2(Fig1::v2), (std::vector<NodeId>{Fig1::v5}));
  EXPECT_EQ(mpr2(Fig1::v4), (std::vector<NodeId>{Fig1::v5}));
  EXPECT_EQ(mpr2(Fig1::v6), (std::vector<NodeId>{Fig1::v5}));
  EXPECT_TRUE(mpr2(Fig1::v5).empty());  // v5 sees no 2-hop neighbors
}

TEST(QolsrMpr, Mpr2PicksBestLinkNotBestCoverage) {
  // Three neighbors, no forced picks: n1 (weak link, covers both 2-hop
  // nodes), n2 (strong link, covers t1), n3 (medium link, covers t2).
  // MPR-2 takes n2 first (best QoS) and then n3 — two nodes where the
  // coverage-greedy MPR-1 needs only n1.
  Graph g(6);
  LinkQos weak, strong, medium, plain;
  weak.bandwidth = 1;
  strong.bandwidth = 9;
  medium.bandwidth = 5;
  plain.bandwidth = 5;
  g.add_edge(0, 1, weak);    // n1
  g.add_edge(0, 2, strong);  // n2
  g.add_edge(0, 3, medium);  // n3
  g.add_edge(1, 4, plain);   // n1-t1
  g.add_edge(1, 5, plain);   // n1-t2
  g.add_edge(2, 4, plain);   // n2-t1
  g.add_edge(3, 5, plain);   // n3-t2
  const auto mpr2 =
      select_qolsr_mpr<BandwidthMetric>(LocalView(g, 0), QolsrVariant::kMpr2);
  EXPECT_EQ(mpr2, (std::vector<NodeId>{2, 3}));
  const auto mpr1 =
      select_qolsr_mpr<BandwidthMetric>(LocalView(g, 0), QolsrVariant::kMpr1);
  EXPECT_EQ(mpr1, (std::vector<NodeId>{1}));
}

TEST(QolsrMpr, Mpr1BreaksCoverageTiesByQos) {
  // n1 and n2 both cover the single 2-hop node; n2 has the better link.
  Graph g(4);
  LinkQos weak, strong, plain;
  weak.bandwidth = 2;
  strong.bandwidth = 8;
  plain.bandwidth = 5;
  g.add_edge(0, 1, weak);
  g.add_edge(0, 2, strong);
  g.add_edge(1, 3, plain);
  g.add_edge(2, 3, plain);
  const auto mpr1 =
      select_qolsr_mpr<BandwidthMetric>(LocalView(g, 0), QolsrVariant::kMpr1);
  EXPECT_EQ(mpr1, (std::vector<NodeId>{2}));
}

TEST(QolsrMpr, DelayVariantPrefersLowDelayLinks) {
  Graph g(4);
  LinkQos slow, fast, plain;
  slow.delay = 9;
  fast.delay = 1;
  plain.delay = 5;
  g.add_edge(0, 1, slow);
  g.add_edge(0, 2, fast);
  g.add_edge(1, 3, plain);
  g.add_edge(2, 3, plain);
  const auto mpr =
      select_qolsr_mpr<DelayMetric>(LocalView(g, 0), QolsrVariant::kMpr2);
  EXPECT_EQ(mpr, (std::vector<NodeId>{2}));
}

TEST(QolsrMpr, QosTieFallsBackToSmallestId) {
  Graph g(4);
  LinkQos same, plain;
  same.bandwidth = 5;
  plain.bandwidth = 5;
  g.add_edge(0, 1, same);
  g.add_edge(0, 2, same);
  g.add_edge(1, 3, plain);
  g.add_edge(2, 3, plain);
  const auto mpr =
      select_qolsr_mpr<BandwidthMetric>(LocalView(g, 0), QolsrVariant::kMpr2);
  EXPECT_EQ(mpr, (std::vector<NodeId>{1}));
}

class QolsrMprPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(QolsrMprPropertyTest, BothVariantsAlwaysCover) {
  const Graph g = testing::random_geometric_graph(GetParam(), 9.0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    for (QolsrVariant variant : {QolsrVariant::kMpr1, QolsrVariant::kMpr2}) {
      EXPECT_TRUE(covers_two_hop(
          view, select_qolsr_mpr<BandwidthMetric>(view, variant)));
      EXPECT_TRUE(covers_two_hop(
          view, select_qolsr_mpr<DelayMetric>(view, variant)));
    }
  }
}

TEST_P(QolsrMprPropertyTest, ForcedPhase1NodesAppearInEveryVariant) {
  // A neighbor that is the only cover of some 2-hop node is selected by
  // the original heuristic and by both QOLSR variants (phase 1 is shared).
  const Graph g = testing::random_geometric_graph(GetParam() + 50, 9.0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    // Compute the forced set directly from the definition.
    std::vector<NodeId> forced;
    for (std::uint32_t v : view.two_hop()) {
      std::vector<std::uint32_t> covers;
      for (const LocalView::LocalEdge& e : view.neighbors(v))
        if (view.is_one_hop(e.to)) covers.push_back(e.to);
      if (covers.size() == 1) forced.push_back(view.global_id(covers[0]));
    }
    const auto rfc = select_mpr_rfc3626(view);
    const auto mpr1 =
        select_qolsr_mpr<BandwidthMetric>(view, QolsrVariant::kMpr1);
    const auto mpr2 =
        select_qolsr_mpr<BandwidthMetric>(view, QolsrVariant::kMpr2);
    for (NodeId f : forced) {
      EXPECT_TRUE(std::binary_search(rfc.begin(), rfc.end(), f));
      EXPECT_TRUE(std::binary_search(mpr1.begin(), mpr1.end(), f));
      EXPECT_TRUE(std::binary_search(mpr2.begin(), mpr2.end(), f));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QolsrMprPropertyTest,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace qolsr
