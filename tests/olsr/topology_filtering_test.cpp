#include "olsr/topology_filtering.hpp"

#include <gtest/gtest.h>

#include "core/fnbp.hpp"
#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

TEST(TopologyFiltering, SelectsDetourForFilteredWeakLink) {
  // Direct (0,1) is dominated by the 2-hop detour through 2: the RNG drops
  // it and the QANS must contain the detour's first hop.
  Graph g(3);
  LinkQos weak, strong;
  weak.bandwidth = 1;
  strong.bandwidth = 9;
  g.add_edge(0, 1, weak);
  g.add_edge(0, 2, strong);
  g.add_edge(2, 1, strong);
  const auto ans =
      select_topology_filtering_ans<BandwidthMetric>(LocalView(g, 0));
  EXPECT_EQ(ans, (std::vector<NodeId>{2}));
}

TEST(TopologyFiltering, NothingSelectedWhenDirectLinksOptimal) {
  // Triangle with a dominant direct link everywhere and no 2-hop nodes.
  Graph g(3);
  LinkQos strong, weak;
  strong.bandwidth = 9;
  weak.bandwidth = 1;
  g.add_edge(0, 1, strong);
  g.add_edge(0, 2, strong);
  g.add_edge(1, 2, weak);
  const auto ans =
      select_topology_filtering_ans<BandwidthMetric>(LocalView(g, 0));
  EXPECT_TRUE(ans.empty());
}

TEST(TopologyFiltering, AdvertisesEveryTiedFirstHop) {
  // Two equal-quality routes to the 2-hop node t: both first hops are
  // advertised — the cardinality drawback the paper attributes to this
  // scheme (§II: "they will all be selected as advertised neighbors").
  Graph g(4);
  LinkQos five;
  five.bandwidth = 5;
  g.add_edge(0, 1, five);
  g.add_edge(0, 2, five);
  g.add_edge(1, 3, five);
  g.add_edge(2, 3, five);
  const auto topo =
      select_topology_filtering_ans<BandwidthMetric>(LocalView(g, 0));
  EXPECT_EQ(topo, (std::vector<NodeId>{1, 2}));
  // FNBP selects exactly one of them.
  const auto fnbp = select_fnbp_ans<BandwidthMetric>(LocalView(g, 0));
  EXPECT_EQ(fnbp.size(), 1u);
}

TEST(TopologyFiltering, CoversAllTwoHopNeighbors) {
  const Graph g = testing::Fig2::build();
  const LocalView view(g, testing::Fig2::u);
  const auto ans = select_topology_filtering_ans<BandwidthMetric>(view);
  // Every 2-hop neighbor must be reachable from u through some selected
  // first hop in the (unreduced) view.
  const FirstHopTable table = compute_first_hops<BandwidthMetric>(view);
  for (std::uint32_t v : view.two_hop()) {
    bool covered = false;
    for (std::uint32_t w : table.fp[v]) {
      if (std::binary_search(ans.begin(), ans.end(), view.global_id(w)))
        covered = true;
    }
    // Reduced-view best paths are a subset of view best paths under the
    // bandwidth metric, so coverage through table.fp is the right check.
    EXPECT_TRUE(covered) << "two-hop " << view.global_id(v);
  }
}

class TopologyFilteringPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologyFilteringPropertyTest, SelectionIsSubsetOfNeighbors) {
  const Graph g = testing::random_geometric_graph(GetParam(), 9.0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    for (NodeId w :
         select_topology_filtering_ans<BandwidthMetric>(view))
      EXPECT_TRUE(g.has_edge(u, w));
    for (NodeId w : select_topology_filtering_ans<DelayMetric>(view))
      EXPECT_TRUE(g.has_edge(u, w));
  }
}

TEST_P(TopologyFilteringPropertyTest, TwoHopReachableThroughSelection) {
  // Delivery property under the bandwidth metric: for every 2-hop
  // neighbor, some selected ANS member starts a best reduced-view path.
  const Graph g = testing::random_geometric_graph(GetParam() + 7, 8.0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    const LocalView reduced = rng_reduce<BandwidthMetric>(view);
    const FirstHopTable table = compute_first_hops<BandwidthMetric>(reduced);
    const auto ans = select_topology_filtering_ans<BandwidthMetric>(view);
    for (std::uint32_t v : view.two_hop()) {
      if (table.fp[v].empty()) continue;  // defensive; reduction is sound
      bool covered = false;
      for (std::uint32_t w : table.fp[v])
        if (std::binary_search(ans.begin(), ans.end(), view.global_id(w)))
          covered = true;
      EXPECT_TRUE(covered) << "node " << u << " two-hop "
                           << view.global_id(v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyFilteringPropertyTest,
                         ::testing::Values(5, 55, 555));

}  // namespace
}  // namespace qolsr
