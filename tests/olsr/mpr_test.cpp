#include "olsr/mpr.hpp"

#include <gtest/gtest.h>

#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

using testing::Fig1;

TEST(Mpr, Fig1HopCountHeuristicPicksOnlyTheHub) {
  // On the Fig.-1 reconstruction v5 touches everyone, so the QoS-blind RFC
  // heuristic lets v5 alone cover every 2-hop neighborhood — precisely why
  // a QoS-aware selection has something to add here.
  const Graph g = Fig1::build();
  for (NodeId u : {Fig1::v1, Fig1::v2, Fig1::v3, Fig1::v4, Fig1::v6}) {
    EXPECT_EQ(select_mpr_rfc3626(LocalView(g, u)),
              (std::vector<NodeId>{Fig1::v5}))
        << "node " << u;
  }
  // v5 itself has no 2-hop neighbors.
  EXPECT_TRUE(select_mpr_rfc3626(LocalView(g, Fig1::v5)).empty());
}

TEST(Mpr, SoleCoverIsForced) {
  // Star: t is reachable only through n1 — n1 must be selected even though
  // n2 covers more 2-hop nodes.
  Graph g(6);
  g.add_edge(0, 1);  // n1
  g.add_edge(0, 2);  // n2
  g.add_edge(1, 3);  // t only via n1
  g.add_edge(2, 4);
  g.add_edge(2, 5);
  const auto mpr = select_mpr_rfc3626(LocalView(g, 0));
  EXPECT_EQ(mpr, (std::vector<NodeId>{1, 2}));
}

TEST(Mpr, GreedyPrefersLargerCoverage) {
  // n1 covers {a,b,c}, n2 covers {a}, n3 covers {b}: n1 suffices after
  // phase 2 picks it; n2/n3 are redundant.
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 4);
  g.add_edge(1, 5);
  g.add_edge(1, 6);
  g.add_edge(2, 4);
  g.add_edge(3, 5);
  const auto mpr = select_mpr_rfc3626(LocalView(g, 0));
  EXPECT_EQ(mpr, (std::vector<NodeId>{1}));
}

TEST(Mpr, NoTwoHopNeighborsEmptySet) {
  Graph g(3);  // triangle: everyone is 1-hop
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  EXPECT_TRUE(select_mpr_rfc3626(LocalView(g, 0)).empty());
}

TEST(Mpr, IsolatedNode) {
  Graph g(2);
  EXPECT_TRUE(select_mpr_rfc3626(LocalView(g, 0)).empty());
}

TEST(CoversTwoHop, DetectsIncompleteCover) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  const LocalView view(g, 0);
  EXPECT_TRUE(covers_two_hop(view, {1}));
  EXPECT_FALSE(covers_two_hop(view, {2}));
  EXPECT_FALSE(covers_two_hop(view, {}));
}

class MprPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MprPropertyTest, AlwaysCoversTwoHopNeighborhood) {
  const Graph g = testing::random_geometric_graph(GetParam(), 10.0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    const auto mpr = select_mpr_rfc3626(view);
    EXPECT_TRUE(covers_two_hop(view, mpr)) << "node " << u;
    // MPRs are 1-hop neighbors.
    for (NodeId m : mpr) EXPECT_TRUE(g.has_edge(u, m));
  }
}

TEST_P(MprPropertyTest, NoRedundantForcedStep) {
  // Dropping any single phase-2 MPR must break coverage is too strong for
  // the greedy (it is not minimal), but the set must never exceed the
  // 1-hop degree, and must be empty exactly when N² is empty.
  const Graph g = testing::random_geometric_graph(GetParam() + 100, 6.0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    const auto mpr = select_mpr_rfc3626(view);
    EXPECT_LE(mpr.size(), view.one_hop().size());
    if (view.two_hop().empty()) EXPECT_TRUE(mpr.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MprPropertyTest,
                         ::testing::Values(3, 14, 159, 2653));

}  // namespace
}  // namespace qolsr
