// The workspace/overlay forwarding path (CSR advertised base +
// KnowledgeView patches + reused Dijkstra/BFS scratch) must return
// *bit-identical* ForwardingResults to the seed path (per-hop Graph copies
// + allocating compute_next_hop) — same status, same node sequence, same
// double value — for every metric, every routing model, and both routing
// disciplines. The figures compare protocols at the third decimal; any
// drift here silently changes published numbers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fnbp.hpp"
#include "graph/local_view.hpp"
#include "metrics/metric.hpp"
#include "routing/advertised_topology.hpp"
#include "routing/forwarding.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

std::vector<std::vector<NodeId>> fnbp_ans(const Graph& g) {
  std::vector<std::vector<NodeId>> ans(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u)
    ans[u] = select_fnbp_ans<BandwidthMetric>(LocalView(g, u));
  return ans;
}

void expect_same(const ForwardingResult& seed, const ForwardingResult& ws,
                 const std::string& context) {
  EXPECT_EQ(static_cast<int>(seed.status), static_cast<int>(ws.status))
      << context;
  EXPECT_EQ(seed.path, ws.path) << context;
  EXPECT_EQ(seed.value, ws.value) << context;  // bit-identical, not tolerant
}

/// Drives every (s, d) pair of one random graph through the seed and the
/// workspace implementations of all three routing models, under both
/// routing disciplines and both knowledge modes.
template <Metric M>
void check_metric(std::uint64_t seed_value) {
  const Graph g = testing::random_geometric_graph(seed_value, 6.0, 260.0);
  const auto ans = fnbp_ans(g);
  const Graph advertised_graph = build_advertised_topology(g, ans);

  AdvertisedTopologyBuilder builder;
  CsrTopology advertised_csr;
  builder.build_advertised(g, ans, advertised_csr);
  ForwardingWorkspace ws;

  const std::size_t n = g.node_count();
  ASSERT_GE(n, 2u);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      for (const bool min_hop : {false, true}) {
        for (const bool local_views : {false, true}) {
          ForwardingOptions options;
          options.min_hop_routing = min_hop;
          options.use_local_views = local_views;
          const std::string context =
              std::string(M::name()) + " s=" + std::to_string(s) +
              " d=" + std::to_string(d) + " min_hop=" +
              std::to_string(min_hop) + " local=" + std::to_string(local_views);

          expect_same(
              forward_packet<M>(g, advertised_graph, s, d, options),
              forward_packet<M>(g, advertised_csr, s, d, options, ws),
              "hop-by-hop " + context);
          expect_same(
              source_route_packet<M>(g, advertised_graph, s, d, options),
              source_route_packet<M>(g, advertised_csr, s, d, options, ws),
              "source-route " + context);
          if (!local_views) {  // the chain model has no local-view knob
            expect_same(forward_via_ans<M>(g, ans, s, d, options),
                        forward_via_ans<M>(g, ans, s, d, options, ws),
                        "ans-chain " + context);
          }
        }
      }
    }
  }
}

TEST(ForwardingEquivalence, Bandwidth) { check_metric<BandwidthMetric>(7); }
TEST(ForwardingEquivalence, Delay) { check_metric<DelayMetric>(11); }
TEST(ForwardingEquivalence, Jitter) { check_metric<JitterMetric>(23); }
TEST(ForwardingEquivalence, Loss) { check_metric<LossMetric>(31); }
TEST(ForwardingEquivalence, Energy) { check_metric<EnergyMetric>(43); }
TEST(ForwardingEquivalence, Buffers) { check_metric<BuffersMetric>(59); }

TEST(ForwardingEquivalence, NonGeometricTopology) {
  // Erdős–Rényi corners: high-degree hubs and non-metric link structure.
  check_metric<BandwidthMetric>(101);
  const Graph g = testing::random_uniform_graph(77, 40, 0.15);
  const auto ans = fnbp_ans(g);
  AdvertisedTopologyBuilder builder;
  CsrTopology csr;
  builder.build_advertised(g, ans, csr);
  const Graph adv = build_advertised_topology(g, ans);
  ForwardingWorkspace ws;
  ForwardingOptions options;
  for (NodeId s = 0; s < g.node_count(); ++s)
    for (NodeId d = 0; d < g.node_count(); ++d)
      if (s != d)
        expect_same(forward_packet<DelayMetric>(g, adv, s, d, options),
                    forward_packet<DelayMetric>(g, csr, s, d, options, ws),
                    "uniform s=" + std::to_string(s) +
                        " d=" + std::to_string(d));
}

TEST(ForwardingEquivalence, CsrTopologyMatchesGraphAdjacency) {
  // The CSR rows must be the sorted, deduplicated image of the advertised
  // Graph — identical edge sets, identical iteration order.
  const Graph g = testing::random_geometric_graph(13, 7.0, 280.0);
  const auto ans = fnbp_ans(g);
  const Graph adv = build_advertised_topology(g, ans);
  AdvertisedTopologyBuilder builder;
  CsrTopology csr;
  builder.build_advertised(g, ans, csr);
  ASSERT_EQ(csr.node_count(), adv.node_count());
  for (NodeId u = 0; u < adv.node_count(); ++u) {
    const auto expected = adv.neighbors(u);
    const auto actual = csr.neighbors(u);
    ASSERT_EQ(actual.size(), expected.size()) << "row " << u;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].to, expected[i].to) << "row " << u;
      EXPECT_EQ(actual[i].qos.bandwidth, expected[i].qos.bandwidth);
      EXPECT_EQ(actual[i].qos.delay, expected[i].qos.delay);
    }
  }
}

TEST(ForwardingEquivalence, NonNeighborAnsMemberThrows) {
  // Release builds used to drop the link silently (assert + if); both the
  // Graph and the CSR builders must now refuse loudly.
  Graph g(3);
  g.add_edge(0, 1);
  std::vector<std::vector<NodeId>> ans(3);
  ans[0] = {2};  // node 2 is not a neighbor of 0
  EXPECT_THROW(build_advertised_topology(g, ans), std::logic_error);
  AdvertisedTopologyBuilder builder;
  CsrTopology csr;
  EXPECT_THROW(builder.build_advertised(g, ans, csr), std::logic_error);
  std::vector<std::vector<NodeId>> too_few(2);
  EXPECT_THROW(build_advertised_topology(g, too_few), std::logic_error);
}

// The golden Fig. 8 CSV pin that used to live here moved to
// tests/eval/golden_figures_test.cpp, which gives Figs. 6, 7 and 9 the
// same treatment against the same byte-exact documents.

}  // namespace
}  // namespace qolsr
