#include "routing/advertised_topology.hpp"

#include <gtest/gtest.h>

#include "support/paper_graphs.hpp"

namespace qolsr {
namespace {

using testing::Fig1;

TEST(AdvertisedTopology, UnionOfSelections) {
  const Graph g = Fig1::build();
  std::vector<std::vector<NodeId>> ans(g.node_count());
  ans[Fig1::v1] = {Fig1::v2};
  ans[Fig1::v4] = {Fig1::v5};
  const Graph adv = build_advertised_topology(g, ans);
  EXPECT_EQ(adv.node_count(), g.node_count());
  EXPECT_EQ(adv.edge_count(), 2u);
  EXPECT_TRUE(adv.has_edge(Fig1::v1, Fig1::v2));
  EXPECT_TRUE(adv.has_edge(Fig1::v4, Fig1::v5));
  EXPECT_FALSE(adv.has_edge(Fig1::v1, Fig1::v6));
}

TEST(AdvertisedTopology, DuplicateSelectionsCollapse) {
  const Graph g = Fig1::build();
  std::vector<std::vector<NodeId>> ans(g.node_count());
  ans[Fig1::v1] = {Fig1::v2};
  ans[Fig1::v2] = {Fig1::v1};  // both ends advertise the same link
  const Graph adv = build_advertised_topology(g, ans);
  EXPECT_EQ(adv.edge_count(), 1u);
}

TEST(AdvertisedTopology, QosCopiedFromFullGraph) {
  const Graph g = Fig1::build();
  std::vector<std::vector<NodeId>> ans(g.node_count());
  ans[Fig1::v1] = {Fig1::v2};
  const Graph adv = build_advertised_topology(g, ans);
  ASSERT_NE(adv.edge_qos(Fig1::v1, Fig1::v2), nullptr);
  EXPECT_EQ(adv.edge_qos(Fig1::v1, Fig1::v2)->bandwidth,
            g.edge_qos(Fig1::v1, Fig1::v2)->bandwidth);
}

TEST(MergeLocalView, AddsOnlyMissingLinks) {
  const Graph g = Fig1::build();
  std::vector<std::vector<NodeId>> ans(g.node_count());
  ans[Fig1::v1] = {Fig1::v2};
  Graph base = build_advertised_topology(g, ans);
  const std::size_t before = base.edge_count();
  merge_local_view(base, LocalView(g, Fig1::v1));
  // G_v1 covers every link incident to N(v1) = {v2,v5,v6}: all 9 Fig.-1
  // edges except (v4,v3); (v1,v2) already existed, so 7 are added.
  EXPECT_EQ(base.edge_count(), before + 7);
  EXPECT_TRUE(base.has_edge(Fig1::v1, Fig1::v6));
  merge_local_view(base, LocalView(g, Fig1::v1));  // idempotent
  EXPECT_EQ(base.edge_count(), before + 7);
}

TEST(AverageSetSize, Basics) {
  EXPECT_EQ(average_set_size({}), 0.0);
  EXPECT_DOUBLE_EQ(average_set_size({{1, 2}, {}, {3}}), 1.0);
  EXPECT_DOUBLE_EQ(average_set_size({{1, 2, 3, 4}}), 4.0);
}

}  // namespace
}  // namespace qolsr
