#include "routing/forwarding.hpp"

#include <gtest/gtest.h>

#include "core/fnbp.hpp"
#include "graph/connectivity.hpp"
#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

using testing::Fig1;

Graph fnbp_advertised(const Graph& g) {
  const FnbpSelector<BandwidthMetric> fnbp;
  std::vector<std::vector<NodeId>> ans(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u)
    ans[u] = fnbp.select(LocalView(g, u));
  return build_advertised_topology(g, ans);
}

TEST(Forwarding, TrivialSelfDelivery) {
  const Graph g = Fig1::build();
  const Graph adv = fnbp_advertised(g);
  const auto r = forward_packet<BandwidthMetric>(g, adv, Fig1::v1, Fig1::v1);
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.path, (Path{Fig1::v1}));
  EXPECT_EQ(r.value, BandwidthMetric::identity());
}

TEST(Forwarding, OneHopDelivery) {
  const Graph g = Fig1::build();
  const Graph adv = fnbp_advertised(g);
  const auto r = forward_packet<BandwidthMetric>(g, adv, Fig1::v1, Fig1::v6);
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.path, (Path{Fig1::v1, Fig1::v6}));
  EXPECT_DOUBLE_EQ(r.value, 10.0);
}

TEST(Forwarding, NoRouteAcrossComponents) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const Graph adv = fnbp_advertised(g);
  const auto r = forward_packet<BandwidthMetric>(g, adv, 0, 3);
  EXPECT_FALSE(r.delivered());
  EXPECT_EQ(r.status, ForwardingStatus::kNoRoute);
}

TEST(Forwarding, ValueIsEvaluatedOnTheFullGraph) {
  const Graph g = Fig1::build();
  const Graph adv = fnbp_advertised(g);
  const auto r = forward_packet<BandwidthMetric>(g, adv, Fig1::v1, Fig1::v3);
  ASSERT_TRUE(r.delivered());
  EXPECT_TRUE(metric_equal(r.value,
                           evaluate_path<BandwidthMetric>(g, r.path)));
}

TEST(Forwarding, SourceRouteAgreesOnFig1) {
  const Graph g = Fig1::build();
  const Graph adv = fnbp_advertised(g);
  const auto hop = forward_packet<BandwidthMetric>(g, adv, Fig1::v1, Fig1::v3);
  const auto src =
      source_route_packet<BandwidthMetric>(g, adv, Fig1::v1, Fig1::v3);
  ASSERT_TRUE(hop.delivered());
  ASSERT_TRUE(src.delivered());
  EXPECT_DOUBLE_EQ(hop.value, src.value);
}

TEST(Forwarding, AdvertisedOnlyModeUsesOwnLinksForFirstHop) {
  // With use_local_views=false the source still knows its own links.
  Graph g(3);
  LinkQos q;
  q.bandwidth = 4;
  g.add_edge(0, 1, q);
  g.add_edge(1, 2, q);
  std::vector<std::vector<NodeId>> ans(3);
  ans[1] = {2};  // only link (1,2) is advertised
  const Graph adv = build_advertised_topology(g, ans);
  ForwardingOptions opt;
  opt.use_local_views = false;
  const auto r = forward_packet<BandwidthMetric>(g, adv, 0, 2, opt);
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.path, (Path{0, 1, 2}));
}

TEST(Forwarding, HopCapTerminates) {
  const Graph g = Fig1::build();
  const Graph adv = fnbp_advertised(g);
  ForwardingOptions opt;
  opt.max_hops = 1;  // too small for the 4-hop widest route
  const auto r = forward_packet<BandwidthMetric>(g, adv, Fig1::v1, Fig1::v3);
  EXPECT_TRUE(r.delivered());  // default cap is generous
  const auto capped =
      forward_packet<BandwidthMetric>(g, adv, Fig1::v1, Fig1::v3, opt);
  EXPECT_EQ(capped.status, ForwardingStatus::kHopLimit);
}

class ForwardingPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForwardingPropertyTest, FnbpDeliversBetweenAllConnectedPairs) {
  // Delivery + loop-freedom of hop-by-hop QoS forwarding over the FNBP
  // advertised topology, for every connected pair of a random network.
  const Graph g = testing::random_geometric_graph(GetParam(), 7.0, 280.0);
  const Graph adv = fnbp_advertised(g);
  const Components comp = connected_components(g);
  const std::size_t n = g.node_count();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d || !comp.connected(s, d)) continue;
      const auto r = forward_packet<BandwidthMetric>(g, adv, s, d);
      EXPECT_TRUE(r.delivered())
          << s << "→" << d << " status " << static_cast<int>(r.status);
      EXPECT_NE(r.status, ForwardingStatus::kLoop);
    }
  }
}

TEST_P(ForwardingPropertyTest, DeliveredValueNeverBeatsOptimum) {
  const Graph g = testing::random_geometric_graph(GetParam() + 13, 8.0, 280.0);
  const Graph adv = fnbp_advertised(g);
  for (NodeId s = 0; s < std::min<std::size_t>(g.node_count(), 12); ++s) {
    const DijkstraResult optimal = dijkstra<BandwidthMetric>(g, s);
    for (NodeId d = 0; d < g.node_count(); ++d) {
      if (d == s) continue;
      const auto r = forward_packet<BandwidthMetric>(g, adv, s, d);
      if (!r.delivered()) continue;
      // b ≤ b*: the protocol can never do better than the centralized
      // optimum (sanity of the overhead definition).
      EXPECT_FALSE(BandwidthMetric::better(r.value, optimal.value[d]))
          << s << "→" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForwardingPropertyTest,
                         ::testing::Values(9, 99, 999));

}  // namespace
}  // namespace qolsr
