#include "routing/routing_table.hpp"

#include <gtest/gtest.h>

#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

using testing::Fig1;

TEST(RoutingTable, NextHopsFollowWidestPaths) {
  const Graph g = Fig1::build();
  const RoutingTable t = compute_routing_table<BandwidthMetric>(g, Fig1::v1);
  EXPECT_EQ(t.self, Fig1::v1);
  // Widest v1→v3 goes over v6 (bandwidth 10 vs 6 over v2).
  EXPECT_EQ(t.next_hop[Fig1::v3], Fig1::v6);
  EXPECT_DOUBLE_EQ(t.value[Fig1::v3], 10.0);
  // Direct neighbors route directly when the link is on a best path.
  EXPECT_EQ(t.next_hop[Fig1::v6], Fig1::v6);
}

TEST(RoutingTable, SelfAndUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  const RoutingTable t = compute_routing_table<DelayMetric>(g, 0);
  EXPECT_EQ(t.next_hop[0], kInvalidNode);
  EXPECT_TRUE(t.reachable(0));  // trivially
  EXPECT_TRUE(t.reachable(1));
  EXPECT_FALSE(t.reachable(2));
}

TEST(RoutingTable, NextHopIsAlwaysANeighbor) {
  const Graph g = testing::random_geometric_graph(321, 8.0);
  for (NodeId u = 0; u < std::min<std::size_t>(g.node_count(), 20); ++u) {
    const RoutingTable t = compute_routing_table<BandwidthMetric>(g, u);
    for (NodeId d = 0; d < g.node_count(); ++d) {
      if (d == u || !t.reachable(d)) continue;
      EXPECT_TRUE(g.has_edge(u, t.next_hop[d]))
          << u << "→" << d << " via " << t.next_hop[d];
    }
  }
}

TEST(RoutingTable, ValuesMatchDijkstra) {
  const Graph g = testing::random_geometric_graph(654, 8.0);
  const NodeId u = 0;
  const RoutingTable t = compute_routing_table<DelayMetric>(g, u);
  const DijkstraResult r = dijkstra<DelayMetric>(g, u);
  for (NodeId d = 0; d < g.node_count(); ++d)
    EXPECT_EQ(t.value[d], r.value[d]);
}

}  // namespace
}  // namespace qolsr
