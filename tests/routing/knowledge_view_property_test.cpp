// Property check of the KnowledgeView overlay (the forwarding hot path's
// per-hop graph): for random CSR bases and random patch rows, every row
// the view answers must be *bit-identical* to the naive reference — the
// std::map union of the base row and the patched links with the base
// record winning a duplicate neighbor id (the seed `if (!has_edge)
// add_edge` merge semantics forwarding results depend on). Failing trials
// log their seed so they replay with a one-line filter.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/fnbp.hpp"
#include "metrics/metric.hpp"
#include "routing/advertised_topology.hpp"
#include "routing/knowledge_view.hpp"
#include "support/random_graphs.hpp"
#include "util/rng.hpp"

namespace qolsr {
namespace {

LinkQos random_qos(util::Rng& rng) {
  LinkQos qos;
  qos.bandwidth = rng.uniform(1.0, 10.0);
  qos.delay = rng.uniform(1.0, 10.0);
  qos.jitter = rng.uniform01();
  qos.loss_cost = rng.uniform(0.0, 0.2);
  qos.energy = rng.uniform(1.0, 10.0);
  qos.buffers = rng.uniform(1.0, 10.0);
  return qos;
}

CsrTopology advertised_base(const Graph& g) {
  std::vector<std::vector<NodeId>> ans(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u)
    ans[u] = select_fnbp_ans<BandwidthMetric>(LocalView(g, u));
  AdvertisedTopologyBuilder builder;
  CsrTopology csr;
  builder.build_advertised(g, ans, csr);
  return csr;
}

/// One randomly patched hop, checked row-for-row against the map model.
void check_one_hop(const CsrTopology& base, KnowledgeView& view,
                   util::Rng& rng) {
  const std::size_t n = base.node_count();
  view.begin_hop();

  // Reference model: per patched row, neighbor -> QoS. Patch rows draw a
  // random subset of *distinct* targets (the add_link contract: one call
  // per (row, neighbor) per hop) that deliberately collides with base
  // entries about half the time.
  std::map<NodeId, std::map<NodeId, LinkQos>> patched;
  const std::size_t rows = rng.uniform_int(std::uint64_t{n}) % 8;
  for (std::size_t r = 0; r < rows; ++r) {
    const NodeId u = static_cast<NodeId>(rng.uniform_int(std::uint64_t{n}));
    auto& model_row = patched[u];
    const std::size_t extras = 1 + rng.uniform_int(std::uint64_t{6});
    for (std::size_t k = 0; k < extras; ++k) {
      NodeId to;
      if (rng.uniform01() < 0.5 && !base.neighbors(u).empty()) {
        const auto row = base.neighbors(u);
        to = row[rng.uniform_int(std::uint64_t{row.size()})].to;
      } else {
        to = static_cast<NodeId>(rng.uniform_int(std::uint64_t{n}));
      }
      if (model_row.count(to) != 0) continue;  // distinct targets per hop
      const LinkQos qos = random_qos(rng);
      model_row[to] = qos;
      view.add_link(u, to, qos);
    }
  }
  view.finalize_hop();

  // Base wins duplicate ids in the model too.
  for (auto& [u, model_row] : patched)
    for (const Edge& e : base.neighbors(u)) model_row[e.to] = e.qos;

  ASSERT_EQ(view.node_count(), n);
  for (NodeId v = 0; v < n; ++v) {
    const auto actual = view.neighbors(v);
    if (patched.count(v) == 0) {
      // Untouched rows must come straight from the base (same storage
      // semantics: identical size and records).
      const auto expected = base.neighbors(v);
      ASSERT_EQ(actual.size(), expected.size()) << "row " << v;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i].to, expected[i].to) << "row " << v;
        EXPECT_EQ(actual[i].qos, expected[i].qos) << "row " << v;
      }
      continue;
    }
    const auto& model_row = patched[v];
    ASSERT_EQ(actual.size(), model_row.size()) << "row " << v;
    auto it = model_row.begin();
    for (std::size_t i = 0; i < actual.size(); ++i, ++it) {
      EXPECT_EQ(actual[i].to, it->first) << "row " << v << " entry " << i;
      EXPECT_EQ(actual[i].qos, it->second) << "row " << v << " entry " << i;
      if (i > 0)
        EXPECT_LT(actual[i - 1].to, actual[i].to)
            << "row " << v << " not strictly ascending";
    }
  }
}

TEST(KnowledgeViewProperty, MergedRowsMatchNaiveMapUnion) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Graph g = testing::random_geometric_graph(seed, 6.0, 260.0);
    const CsrTopology base = advertised_base(g);
    KnowledgeView view;
    view.reset(base);
    util::Rng rng(seed * 0x9e3779b9ULL + 1);
    // Several hops per base: begin_hop must fully discard the previous
    // patch (pooled storage notwithstanding).
    for (int hop = 0; hop < 12; ++hop) {
      SCOPED_TRACE("hop=" + std::to_string(hop));
      check_one_hop(base, view, rng);
    }
  }
}

TEST(KnowledgeViewProperty, NonGeometricBases) {
  for (std::uint64_t seed = 100; seed <= 112; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Graph g = testing::random_uniform_graph(seed, 30, 0.2);
    const CsrTopology base = advertised_base(g);
    KnowledgeView view;
    view.reset(base);
    util::Rng rng(seed ^ 0xabcdefULL);
    for (int hop = 0; hop < 8; ++hop) {
      SCOPED_TRACE("hop=" + std::to_string(hop));
      check_one_hop(base, view, rng);
    }
  }
}

TEST(KnowledgeViewProperty, ResetRebindsTheBase) {
  // reset() must invalidate patches of the previous base even when the
  // pooled rows still hold their data.
  const Graph g1 = testing::random_geometric_graph(3, 5.0, 220.0);
  const Graph g2 = testing::random_geometric_graph(4, 5.0, 220.0);
  const CsrTopology base1 = advertised_base(g1);
  const CsrTopology base2 = advertised_base(g2);

  KnowledgeView view;
  view.reset(base1);
  view.begin_hop();
  view.add_link(0, 1, LinkQos{});
  view.finalize_hop();

  view.reset(base2);
  for (NodeId v = 0; v < base2.node_count(); ++v) {
    const auto actual = view.neighbors(v);
    const auto expected = base2.neighbors(v);
    ASSERT_EQ(actual.size(), expected.size()) << "row " << v;
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(actual[i].to, expected[i].to) << "row " << v;
  }
}

}  // namespace
}  // namespace qolsr
