// Tests for the directed ANS-chain machinery: DirectedGraph, the
// hop-count-primary Dijkstra/next-hop, and forward_via_ans.
#include <gtest/gtest.h>

#include "core/fnbp.hpp"
#include "routing/directed.hpp"
#include "routing/forwarding.hpp"
#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

using testing::Fig1;
using testing::Fig4;

LinkQos qos_bw(double b, double d = 1.0) {
  LinkQos q;
  q.bandwidth = b;
  q.delay = d;
  return q;
}

TEST(DirectedGraph, EdgesAreOneWay) {
  DirectedGraph g(3);
  g.add_edge(0, 1, qos_bw(5));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_TRUE(g.neighbors(1).empty());
}

TEST(DirectedGraph, DuplicateInsertIgnored) {
  DirectedGraph g(2);
  g.add_edge(0, 1, qos_bw(5));
  g.add_edge(0, 1, qos_bw(9));
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].qos.bandwidth, 5.0);  // first insert wins
}

TEST(DirectedGraph, NeighborsSorted) {
  DirectedGraph g(4);
  g.add_edge(0, 3, {});
  g.add_edge(0, 1, {});
  g.add_edge(0, 2, {});
  EXPECT_EQ(g.neighbors(0)[0].to, 1u);
  EXPECT_EQ(g.neighbors(0)[2].to, 3u);
}

TEST(DirectedGraph, DijkstraRespectsDirection) {
  DirectedGraph g(3);
  g.add_edge(0, 1, qos_bw(5));
  g.add_edge(1, 2, qos_bw(5));
  const auto from0 = dijkstra<BandwidthMetric>(g, 0u);
  EXPECT_DOUBLE_EQ(from0.value[2], 5.0);
  const auto from2 = dijkstra<BandwidthMetric>(g, 2u);
  EXPECT_EQ(from2.value[0], BandwidthMetric::unreachable());
}

TEST(MinHopDijkstra, PrefersFewerHopsOverBetterValue) {
  // 0→2 direct (bandwidth 2) vs 0→1→2 (bandwidth 9): min-hop picks direct.
  Graph g(3);
  g.add_edge(0, 2, qos_bw(2));
  g.add_edge(0, 1, qos_bw(9));
  g.add_edge(1, 2, qos_bw(9));
  const auto r = dijkstra_min_hop<BandwidthMetric>(g, 0u);
  EXPECT_EQ(r.hops[2], 1u);
  EXPECT_DOUBLE_EQ(r.value[2], 2.0);
  // QoS-first takes the detour.
  const auto q = dijkstra<BandwidthMetric>(g, 0u);
  EXPECT_DOUBLE_EQ(q.value[2], 9.0);
}

TEST(MinHopDijkstra, QosBreaksHopTies) {
  // Two 2-hop routes: via 1 (width 3) and via 2 (width 7).
  Graph g(4);
  g.add_edge(0, 1, qos_bw(3));
  g.add_edge(1, 3, qos_bw(3));
  g.add_edge(0, 2, qos_bw(7));
  g.add_edge(2, 3, qos_bw(7));
  const auto r = dijkstra_min_hop<BandwidthMetric>(g, 0u);
  EXPECT_EQ(r.hops[3], 2u);
  EXPECT_DOUBLE_EQ(r.value[3], 7.0);
  EXPECT_EQ(compute_min_hop_next_hop<BandwidthMetric>(g, 0, 3), 2u);
}

TEST(MinHopDijkstra, DelayVariant) {
  Graph g(4);
  g.add_edge(0, 1, qos_bw(1, 9));
  g.add_edge(1, 3, qos_bw(1, 9));
  g.add_edge(0, 2, qos_bw(1, 2));
  g.add_edge(2, 3, qos_bw(1, 2));
  const auto r = dijkstra_min_hop<DelayMetric>(g, 0u);
  EXPECT_DOUBLE_EQ(r.value[3], 4.0);  // best among the 2-hop routes
}

TEST(MinHopNextHop, UnreachableAndSelf) {
  Graph g(3);
  g.add_edge(0, 1, qos_bw(1));
  EXPECT_EQ(compute_min_hop_next_hop<BandwidthMetric>(g, 0, 2), kInvalidNode);
  EXPECT_EQ(compute_min_hop_next_hop<BandwidthMetric>(g, 0, 0), kInvalidNode);
}

std::vector<std::vector<NodeId>> fnbp_sets(const Graph& g) {
  const FnbpSelector<BandwidthMetric> fnbp;
  std::vector<std::vector<NodeId>> ans(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u)
    ans[u] = fnbp.select(LocalView(g, u));
  return ans;
}

TEST(AnsChain, Fig1FnbpStillFindsTheWidestPath) {
  const Graph g = Fig1::build();
  const auto r =
      forward_via_ans<BandwidthMetric>(g, fnbp_sets(g), Fig1::v1, Fig1::v3);
  ASSERT_TRUE(r.delivered());
  EXPECT_DOUBLE_EQ(r.value, 10.0);
}

TEST(AnsChain, SelfAndNeighborDelivery) {
  const Graph g = Fig1::build();
  const auto self =
      forward_via_ans<BandwidthMetric>(g, fnbp_sets(g), Fig1::v1, Fig1::v1);
  EXPECT_TRUE(self.delivered());
  const auto hop =
      forward_via_ans<BandwidthMetric>(g, fnbp_sets(g), Fig1::v1, Fig1::v6);
  EXPECT_TRUE(hop.delivered());
  EXPECT_EQ(hop.path.size(), 2u);
}

TEST(AnsChain, LoopFixIsLoadBearingOnFig4) {
  // In the strict chain model the Fig.-4 bottleneck is fatal without the
  // loop-fix: A stops advertising D, the relay chains dead-end, and A
  // itself can no longer reach E (its only out-links lead away).
  const Graph g = Fig4::build();
  const auto with_fix =
      forward_via_ans<BandwidthMetric>(g, fnbp_sets(g), Fig4::a, Fig4::e);
  EXPECT_TRUE(with_fix.delivered());

  FnbpOptions no_fix;
  no_fix.loop_fix = false;
  const FnbpSelector<BandwidthMetric> plain(no_fix);
  std::vector<std::vector<NodeId>> ans(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u)
    ans[u] = plain.select(LocalView(g, u));
  // A's own links rescue A itself (A–D is usable as its immediate hop), but
  // the advertised chains are poorer: B must fall back to its own links and
  // the bottleneck path.
  const auto b_route =
      forward_via_ans<BandwidthMetric>(g, ans, Fig4::b, Fig4::e);
  const auto b_fixed =
      forward_via_ans<BandwidthMetric>(g, fnbp_sets(g), Fig4::b, Fig4::e);
  EXPECT_TRUE(b_fixed.delivered());
  // Either the unfixed route fails or it is no better than the fixed one.
  if (b_route.delivered())
    EXPECT_FALSE(BandwidthMetric::better(b_route.value, b_fixed.value));
}

TEST(AnsChain, NoRouteAcrossComponents) {
  Graph g(4);
  g.add_edge(0, 1, qos_bw(1));
  g.add_edge(2, 3, qos_bw(1));
  const auto r = forward_via_ans<BandwidthMetric>(g, fnbp_sets(g), 0, 3);
  EXPECT_FALSE(r.delivered());
}

class AnsChainPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AnsChainPropertyTest, NeverLoopsAndNeverBeatsOptimum) {
  const Graph g = testing::random_geometric_graph(GetParam(), 7.0, 280.0);
  const auto ans = fnbp_sets(g);
  for (NodeId s = 0; s < std::min<std::size_t>(g.node_count(), 15); ++s) {
    const auto optimal = dijkstra<BandwidthMetric>(g, s);
    for (NodeId d = 0; d < g.node_count(); ++d) {
      if (s == d) continue;
      const auto r = forward_via_ans<BandwidthMetric>(g, ans, s, d);
      EXPECT_NE(r.status, ForwardingStatus::kLoop) << s << "→" << d;
      EXPECT_NE(r.status, ForwardingStatus::kHopLimit) << s << "→" << d;
      if (r.delivered())
        EXPECT_FALSE(BandwidthMetric::better(r.value, optimal.value[d]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnsChainPropertyTest,
                         ::testing::Values(71, 72, 73));

}  // namespace
}  // namespace qolsr
