// The runtime metric handle: name round-trips, kind mapping, and the
// dispatch hub landing on the right compile-time Metric type.
#include "metrics/metric_id.hpp"

#include <gtest/gtest.h>

namespace qolsr {
namespace {

TEST(MetricId, NamesRoundTripThroughParse) {
  for (MetricId id : kAllMetricIds) {
    const auto parsed = parse_metric_id(metric_name(id));
    ASSERT_TRUE(parsed.has_value()) << metric_name(id);
    EXPECT_EQ(*parsed, id);
  }
  EXPECT_EQ(parse_metric_id("latency"), std::nullopt);
  EXPECT_EQ(parse_metric_id(""), std::nullopt);
  EXPECT_EQ(parse_metric_id("Bandwidth"), std::nullopt);  // case-sensitive
}

TEST(MetricId, KindsMatchTheMetricAlgebra) {
  EXPECT_EQ(metric_kind(MetricId::kBandwidth), MetricKind::kConcave);
  EXPECT_EQ(metric_kind(MetricId::kBuffers), MetricKind::kConcave);
  EXPECT_EQ(metric_kind(MetricId::kDelay), MetricKind::kAdditive);
  EXPECT_EQ(metric_kind(MetricId::kJitter), MetricKind::kAdditive);
  EXPECT_EQ(metric_kind(MetricId::kLoss), MetricKind::kAdditive);
  EXPECT_EQ(metric_kind(MetricId::kEnergy), MetricKind::kAdditive);
}

TEST(MetricId, DispatchReachesTheMatchingType) {
  // The tag's type must be exactly the metric named by the id — check by
  // extracting the compile-time name and a link value through the tag.
  for (MetricId id : kAllMetricIds) {
    const std::string_view name = dispatch_metric(id, [](auto tag) {
      return decltype(tag)::type::name();
    });
    EXPECT_EQ(name, metric_name(id));
  }
  LinkQos qos;
  qos.bandwidth = 3.0;
  qos.delay = 4.0;
  const double bw = dispatch_metric(MetricId::kBandwidth, [&](auto tag) {
    return decltype(tag)::type::link_value(qos);
  });
  const double delay = dispatch_metric(MetricId::kDelay, [&](auto tag) {
    return decltype(tag)::type::link_value(qos);
  });
  EXPECT_EQ(bw, 3.0);
  EXPECT_EQ(delay, 4.0);
}

TEST(MetricId, DispatchCoversEveryIdExactlyOnce) {
  // kAllMetricIds is the dispatch table's domain: distinct ids, and each
  // one dispatches without throwing.
  for (std::size_t i = 0; i < kAllMetricIds.size(); ++i)
    for (std::size_t j = i + 1; j < kAllMetricIds.size(); ++j)
      EXPECT_NE(kAllMetricIds[i], kAllMetricIds[j]);
  EXPECT_THROW(dispatch_metric(static_cast<MetricId>(250),
                               [](auto) { return 0; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace qolsr
