// Fuzz harness for the hardened wire codec: parse_packet (and the cheap
// medium-layer peeks) must never crash, over-read or leak on arbitrary
// bytes — the property the wire-corruption engine leans on when it
// delivers bit-flipped frames to receivers.
//
// Two build modes from the same file:
//
//  * libFuzzer (`-fsanitize=fuzzer`, define QOLSR_LIBFUZZER): the standard
//    LLVMFuzzerTestOneInput entry point, coverage-guided.
//      clang++ -std=c++20 -fsanitize=fuzzer,address,undefined \
//        -DQOLSR_LIBFUZZER -Isrc tests/fuzz/messages_fuzz.cpp \
//        src/proto/messages.cpp -o messages_fuzz
//  * standalone smoke (default, what CMake builds and CI runs under
//    ASan+UBSan): a seeded deterministic driver that replays the golden
//    corpus — serialized HELLO/TC/DATA frames — and then hammers the
//    parser with truncations, extensions, bit flips and random buffers
//    for a bounded iteration count (argv[1], default 10000).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "proto/messages.hpp"

namespace {

using qolsr::parse_packet;

/// The invariant under test, applied to one input. A parse either rejects
/// the buffer or yields a message that re-serializes to the exact input
/// bytes (the codec has no redundant encodings), and the wire peeks agree
/// with the full parse.
void check_one(const std::vector<std::byte>& bytes) {
  const auto parsed = parse_packet(bytes);
  if (parsed.has_value()) {
    std::vector<std::byte> round;
    if (parsed->hello.has_value())
      round = qolsr::serialize(parsed->header, *parsed->hello);
    else if (parsed->tc.has_value())
      round = qolsr::serialize(parsed->header, *parsed->tc);
    else
      round = qolsr::serialize(parsed->header, *parsed->data);
    if (round != bytes) {
      std::fprintf(stderr, "round-trip mismatch on %zu-byte accepted input\n",
                   bytes.size());
      std::abort();
    }
    if (qolsr::is_data_frame(bytes) != parsed->data.has_value()) {
      std::fprintf(stderr, "is_data_frame disagrees with parse\n");
      std::abort();
    }
    if (parsed->data.has_value() &&
        qolsr::peek_data_payload_id(bytes) != parsed->data->payload_id) {
      std::fprintf(stderr, "peek_data_payload_id disagrees with parse\n");
      std::abort();
    }
  } else {
    // Rejected inputs still get the peeks — they must tolerate anything.
    (void)qolsr::is_data_frame(bytes);
    (void)qolsr::peek_data_payload_id(bytes);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::vector<std::byte> bytes(size);
  for (std::size_t i = 0; i < size; ++i) bytes[i] = std::byte{data[i]};
  check_one(bytes);
  return 0;
}

#ifndef QOLSR_LIBFUZZER

namespace {

/// splitmix64 — self-contained so the harness only links the codec.
std::uint64_t next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

qolsr::PacketHeader header_of(qolsr::MessageType type) {
  qolsr::PacketHeader h;
  h.type = type;
  h.originator = 42;
  h.sequence = 1234;
  h.ttl = 17;
  h.hop_count = 3;
  return h;
}

/// Golden seed corpus: one well-formed frame of every message shape.
std::vector<std::vector<std::byte>> golden_corpus() {
  using namespace qolsr;
  std::vector<std::vector<std::byte>> corpus;

  LinkQos qos;
  qos.bandwidth = 7.25;
  qos.delay = 0.125;
  qos.jitter = 0.5;
  qos.loss_cost = 0.01;
  qos.energy = 3.5;
  qos.buffers = 12.0;

  HelloMessage hello;
  hello.originator = 42;
  hello.links.push_back({7, LinkStatus::kSymmetric, qos});
  hello.links.push_back({9, LinkStatus::kMpr, qos});
  corpus.push_back(serialize(header_of(MessageType::kHello), hello));

  TcMessage tc;
  tc.originator = 42;
  tc.ansn = 77;
  tc.advertised.push_back({3, LinkStatus::kSymmetric, qos});
  corpus.push_back(serialize(header_of(MessageType::kTc), tc));

  TcMessage empty_tc;
  empty_tc.originator = 1;
  corpus.push_back(serialize(header_of(MessageType::kTc), empty_tc));

  DataMessage data;
  data.source = 5;
  data.destination = 17;
  data.payload_id = 0xdeadbeef;
  corpus.push_back(serialize(header_of(MessageType::kData), data));

  return corpus;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t iterations = 10000;
  if (argc > 1) iterations = static_cast<std::size_t>(std::atoll(argv[1]));

  const auto corpus = golden_corpus();
  for (const auto& frame : corpus) check_one(frame);

  std::uint64_t rng = 0x6a09e667f3bcc909ULL;
  for (std::size_t i = 0; i < iterations; ++i) {
    std::vector<std::byte> bytes = corpus[next(rng) % corpus.size()];
    switch (next(rng) % 4) {
      case 0:  // truncate
        bytes.resize(next(rng) % (bytes.size() + 1));
        break;
      case 1: {  // extend with garbage
        const std::size_t extra = 1 + next(rng) % 64;
        for (std::size_t k = 0; k < extra; ++k)
          bytes.push_back(std::byte{static_cast<unsigned char>(next(rng))});
        break;
      }
      case 2: {  // flip 1-8 bits anywhere
        const std::size_t flips = 1 + next(rng) % 8;
        for (std::size_t k = 0; k < flips && !bytes.empty(); ++k) {
          const std::size_t bit = next(rng) % (bytes.size() * 8);
          bytes[bit / 8] ^= std::byte{
              static_cast<unsigned char>(1u << (bit % 8))};
        }
        break;
      }
      case 3: {  // fully random buffer, hostile sizes included
        bytes.assign(next(rng) % 512, std::byte{0});
        for (auto& b : bytes)
          b = std::byte{static_cast<unsigned char>(next(rng))};
        break;
      }
    }
    check_one(bytes);
  }

  std::printf("messages_fuzz: %zu iterations, %zu corpus frames, all clean\n",
              iterations, corpus.size());
  return 0;
}

#endif  // QOLSR_LIBFUZZER
