// Equivalence of the workspace-based path/selection engine against
// straightforward reference implementations:
//
//  * reference Dijkstra: std::priority_queue with lazy deletion (the
//    pre-workspace implementation) — values, hops and reachability must
//    match the indexed-heap engine on full graphs and local views;
//  * reference compute_first_hops: one reference Dijkstra per neighbor —
//    best values and fp sets must match exactly;
//  * the allocating convenience APIs and the workspace APIs must agree
//    bit-for-bit even when one workspace is reused across every node of
//    several graphs (no cross-run contamination).
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "core/fnbp.hpp"
#include "graph/deployment.hpp"
#include "olsr/mpr.hpp"
#include "olsr/qolsr_mpr.hpp"
#include "olsr/topology_filtering.hpp"
#include "path/dijkstra.hpp"
#include "path/first_hops.hpp"
#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

template <Metric M, typename G>
DijkstraResult ref_dijkstra(const G& graph, std::uint32_t source,
                            std::uint32_t excluded = kInvalidNode) {
  const std::size_t n = dijkstra_detail::graph_size(graph);
  DijkstraResult result;
  result.value.assign(n, M::unreachable());
  result.hops.assign(n, 0);
  result.parent.assign(n, kInvalidNode);

  struct Entry {
    double value;
    std::uint32_t hops;
    std::uint32_t node;
  };
  auto worse = [](const Entry& a, const Entry& b) {
    return dijkstra_detail::lex_better<M>(b.value, b.hops, a.value, a.hops);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> queue(worse);

  if (source == excluded) return result;
  result.value[source] = M::identity();
  queue.push({M::identity(), 0, source});

  std::vector<bool> settled(n, false);
  while (!queue.empty()) {
    const Entry top = queue.top();
    queue.pop();
    if (settled[top.node]) continue;
    settled[top.node] = true;
    for (const auto& edge : graph.neighbors(top.node)) {
      const std::uint32_t next = edge.to;
      if (next == excluded || settled[next]) continue;
      const double cand = M::combine(top.value, M::link_value(edge.qos));
      const std::uint32_t cand_hops = top.hops + 1;
      const bool first_touch = result.value[next] == M::unreachable();
      if (first_touch ||
          dijkstra_detail::lex_better<M>(cand, cand_hops, result.value[next],
                                         result.hops[next])) {
        result.value[next] = cand;
        result.hops[next] = cand_hops;
        result.parent[next] = top.node;
        queue.push({cand, cand_hops, next});
      }
    }
  }
  return result;
}

template <Metric M>
FirstHopTable ref_first_hops(const LocalView& view) {
  const auto n = static_cast<std::uint32_t>(view.size());
  FirstHopTable table;
  table.best.assign(n, M::unreachable());
  table.fp.assign(n, {});
  table.best[LocalView::origin_index()] = M::identity();
  for (std::uint32_t w : view.one_hop()) {
    const LinkQos* first_link =
        view.local_edge_qos(LocalView::origin_index(), w);
    if (first_link == nullptr) continue;
    const double first_value = M::link_value(*first_link);
    const DijkstraResult from_w =
        ref_dijkstra<M>(view, w, LocalView::origin_index());
    for (std::uint32_t v = 1; v < n; ++v) {
      if (from_w.value[v] == M::unreachable()) continue;
      const double cand = M::combine(first_value, from_w.value[v]);
      if (table.fp[v].empty() || M::better(cand, table.best[v])) {
        table.best[v] = cand;
        table.fp[v].assign(1, w);
      } else if (metric_equal(cand, table.best[v])) {
        table.fp[v].push_back(w);
      }
    }
  }
  return table;
}

/// Reference FNBP: the selection rules applied to the reference fP table.
template <Metric M>
std::vector<NodeId> ref_select_fnbp(const LocalView& view) {
  const FirstHopTable table = ref_first_hops<M>(view);
  std::vector<bool> in_ans(view.size(), false);
  auto covered = [&](const std::vector<std::uint32_t>& fp) {
    return std::any_of(fp.begin(), fp.end(),
                       [&](std::uint32_t w) { return in_ans[w]; });
  };
  for (std::uint32_t v : view.one_hop()) {
    const auto& fp = table.fp[v];
    if (fp.empty()) continue;
    if (std::binary_search(fp.begin(), fp.end(), v)) continue;
    if (covered(fp)) continue;
    const std::uint32_t w = pick_best_link<M>(view, fp);
    if (w != kInvalidNode) in_ans[w] = true;
  }
  for (std::uint32_t v : view.two_hop()) {
    const auto& fp = table.fp[v];
    if (fp.empty()) continue;
    if (!covered(fp)) {
      const std::uint32_t w = pick_best_link<M>(view, fp);
      if (w != kInvalidNode) in_ans[w] = true;
      continue;
    }
    const NodeId origin_id = view.origin();
    const bool origin_smallest = std::all_of(
        fp.begin(), fp.end(),
        [&](std::uint32_t w) { return view.global_id(w) > origin_id; });
    if (!origin_smallest) continue;
    std::vector<std::uint32_t> adjacent;
    for (std::uint32_t w : fp)
      if (view.has_local_edge(w, v)) adjacent.push_back(w);
    if (adjacent.empty()) continue;
    const std::uint32_t w = pick_best_link<M>(view, adjacent);
    if (w != kInvalidNode) in_ans[w] = true;
  }
  std::vector<NodeId> result;
  for (std::uint32_t w = 0; w < view.size(); ++w)
    if (in_ans[w]) result.push_back(view.global_id(w));
  std::sort(result.begin(), result.end());
  return result;
}

/// Values compare exactly for concave metrics (path values are copies of
/// link values) and within metric tolerance for additive ones (summation
/// order may differ between engines on tolerance-tied paths).
template <Metric M>
void expect_labels_equal(const DijkstraResult& got, const DijkstraResult& want,
                         const char* context) {
  ASSERT_EQ(got.value.size(), want.value.size()) << context;
  for (std::size_t v = 0; v < want.value.size(); ++v) {
    const bool want_reached = want.value[v] != M::unreachable();
    const bool got_reached = got.value[v] != M::unreachable();
    ASSERT_EQ(got_reached, want_reached) << context << " node " << v;
    if (!want_reached) continue;
    if constexpr (M::kind == MetricKind::kConcave) {
      EXPECT_EQ(got.value[v], want.value[v]) << context << " node " << v;
    } else {
      EXPECT_TRUE(metric_equal(got.value[v], want.value[v]))
          << context << " node " << v << ": " << got.value[v] << " vs "
          << want.value[v];
    }
    EXPECT_EQ(got.hops[v], want.hops[v]) << context << " node " << v;
  }
}

/// The parent array is tie-dependent; instead of comparing it, check that
/// it encodes a valid optimal path: right length, consistent with the
/// graph, and of exactly the labeled value.
template <Metric M, typename G>
void expect_parents_consistent(const G& graph, const DijkstraResult& result,
                               std::uint32_t source, std::uint32_t excluded) {
  const std::size_t n = dijkstra_detail::graph_size(graph);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (result.value[v] == M::unreachable() || v == source) continue;
    const auto path = extract_path(result, source, v);
    ASSERT_EQ(path.size(), result.hops[v] + 1) << "node " << v;
    double value = M::identity();
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_NE(path[i], excluded);
      bool found = false;
      for (const auto& e : graph.neighbors(path[i])) {
        if (e.to == path[i + 1]) {
          value = M::combine(value, M::link_value(e.qos));
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << "missing edge on extracted path";
    }
    EXPECT_TRUE(metric_equal(value, result.value[v])) << "node " << v;
  }
}

std::vector<Graph> test_graphs() {
  std::vector<Graph> graphs;
  graphs.push_back(testing::Fig1::build());
  graphs.push_back(testing::Fig2::build());
  graphs.push_back(testing::Fig4::build());
  graphs.push_back(testing::Fig5::build());
  for (std::uint64_t seed : {1u, 2u, 3u})
    graphs.push_back(testing::random_geometric_graph(seed, 8.0));
  graphs.push_back(testing::random_geometric_graph(4, 16.0));
  graphs.push_back(testing::random_uniform_graph(5, 40, 0.3));
  // Integral weights: the exact-tie-heavy regime.
  Graph integral = testing::random_uniform_graph(6, 30, 0.3);
  util::Rng rng(77);
  QosIntervals qos;
  qos.integral = true;
  assign_uniform_qos(integral, qos, rng);
  graphs.push_back(std::move(integral));
  return graphs;
}

template <Metric M>
void check_dijkstra_everywhere() {
  DijkstraWorkspace ws;  // deliberately shared across every run below
  for (const Graph& g : test_graphs()) {
    for (NodeId s = 0; s < g.node_count(); ++s) {
      const DijkstraResult want = ref_dijkstra<M>(g, s);
      const DijkstraResult got = dijkstra<M>(g, s);
      expect_labels_equal<M>(got, want, "full graph");
      expect_parents_consistent<M>(g, got, s, kInvalidNode);

      dijkstra<M>(g, s, kInvalidNode, ws);
      expect_labels_equal<M>(ws.to_result<M>(), want, "workspace full graph");
    }
    LocalViewBuilder builder;
    LocalView view;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      builder.build(g, u, view);
      for (std::uint32_t w : view.one_hop()) {
        const DijkstraResult want =
            ref_dijkstra<M>(view, w, LocalView::origin_index());
        dijkstra<M>(view, w, LocalView::origin_index(), ws);
        expect_labels_equal<M>(ws.to_result<M>(), want, "local view");
      }
    }
  }
}

TEST(WorkspaceEquivalence, DijkstraBandwidth) {
  check_dijkstra_everywhere<BandwidthMetric>();
}

TEST(WorkspaceEquivalence, DijkstraDelay) {
  check_dijkstra_everywhere<DelayMetric>();
}

TEST(WorkspaceEquivalence, DijkstraMinHop) {
  DijkstraWorkspace ws;
  for (const Graph& g : test_graphs()) {
    for (NodeId s = 0; s < g.node_count(); ++s) {
      const DijkstraResult a = dijkstra_min_hop<BandwidthMetric>(g, s);
      dijkstra_min_hop<BandwidthMetric>(g, s, kInvalidNode, ws);
      const DijkstraResult b = ws.to_result<BandwidthMetric>();
      EXPECT_EQ(a.value, b.value);
      EXPECT_EQ(a.hops, b.hops);
      EXPECT_EQ(a.parent, b.parent);
    }
  }
}

template <Metric M>
void check_first_hops_everywhere() {
  DijkstraWorkspace ws;
  FirstHopTable reused;  // same output table recycled across all nodes
  for (const Graph& g : test_graphs()) {
    LocalViewBuilder builder;
    LocalView view;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      builder.build(g, u, view);
      const FirstHopTable want = ref_first_hops<M>(view);
      const FirstHopTable got = compute_first_hops<M>(view);
      compute_first_hops<M>(view, ws, reused);

      ASSERT_EQ(got.fp.size(), want.fp.size());
      ASSERT_EQ(reused.fp.size(), want.fp.size());
      for (std::uint32_t v = 0; v < want.fp.size(); ++v) {
        EXPECT_EQ(got.fp[v], want.fp[v]) << "node " << u << " dest " << v;
        EXPECT_EQ(reused.fp[v], want.fp[v]) << "node " << u << " dest " << v;
        if (want.fp[v].empty()) continue;
        if constexpr (M::kind == MetricKind::kConcave) {
          EXPECT_EQ(got.best[v], want.best[v]);
          EXPECT_EQ(reused.best[v], want.best[v]);
        } else {
          EXPECT_TRUE(metric_equal(got.best[v], want.best[v]));
          EXPECT_TRUE(metric_equal(reused.best[v], want.best[v]));
        }
      }
    }
  }
}

TEST(WorkspaceEquivalence, FirstHopsBandwidth) {
  check_first_hops_everywhere<BandwidthMetric>();
}

TEST(WorkspaceEquivalence, FirstHopsDelay) {
  check_first_hops_everywhere<DelayMetric>();
}

TEST(WorkspaceEquivalence, FnbpSelectionMatchesReference) {
  SelectionWorkspace ws;
  std::vector<NodeId> out;
  for (const Graph& g : test_graphs()) {
    LocalViewBuilder builder;
    LocalView view;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      builder.build(g, u, view);
      const auto want_bw = ref_select_fnbp<BandwidthMetric>(view);
      EXPECT_EQ(select_fnbp_ans<BandwidthMetric>(view), want_bw);
      select_fnbp_ans<BandwidthMetric>(view, ws, out);
      EXPECT_EQ(out, want_bw);

      const auto want_delay = ref_select_fnbp<DelayMetric>(view);
      select_fnbp_ans<DelayMetric>(view, ws, out);
      EXPECT_EQ(out, want_delay);
    }
  }
}

TEST(WorkspaceEquivalence, AllSelectorsWorkspaceAgreesWithPlainApi) {
  SelectionWorkspace ws;
  std::vector<NodeId> out;
  for (const Graph& g : test_graphs()) {
    LocalViewBuilder builder;
    LocalView view;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      builder.build(g, u, view);

      select_mpr_rfc3626(view, ws, out);
      EXPECT_EQ(out, select_mpr_rfc3626(view));

      for (QolsrVariant variant : {QolsrVariant::kMpr1, QolsrVariant::kMpr2}) {
        select_qolsr_mpr<BandwidthMetric>(view, variant, ws, out);
        EXPECT_EQ(out, select_qolsr_mpr<BandwidthMetric>(view, variant));
        select_qolsr_mpr<DelayMetric>(view, variant, ws, out);
        EXPECT_EQ(out, select_qolsr_mpr<DelayMetric>(view, variant));
      }

      select_topology_filtering_ans<BandwidthMetric>(view, ws, out);
      EXPECT_EQ(out, select_topology_filtering_ans<BandwidthMetric>(view));
      select_topology_filtering_ans<DelayMetric>(view, ws, out);
      EXPECT_EQ(out, select_topology_filtering_ans<DelayMetric>(view));

      FnbpOptions ablation;
      ablation.loop_fix = false;
      ablation.qos_tiebreak = false;
      select_fnbp_ans<BandwidthMetric>(view, ws, out, ablation);
      EXPECT_EQ(out, select_fnbp_ans<BandwidthMetric>(view, ablation));
    }
  }
}

TEST(WorkspaceEquivalence, RngReduceOutParamMatchesReturning) {
  LocalView scratch;
  for (const Graph& g : test_graphs()) {
    LocalViewBuilder builder;
    LocalView view;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      builder.build(g, u, view);
      const LocalView by_value = rng_reduce<BandwidthMetric>(view);
      rng_reduce<BandwidthMetric>(view, scratch);
      ASSERT_EQ(scratch.size(), by_value.size());
      for (std::uint32_t l = 0; l < by_value.size(); ++l) {
        const auto a = by_value.neighbors(l);
        const auto b = scratch.neighbors(l);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t k = 0; k < a.size(); ++k) {
          EXPECT_EQ(a[k].to, b[k].to);
          EXPECT_EQ(a[k].qos, b[k].qos);
        }
      }
    }
  }
}

}  // namespace
}  // namespace qolsr
