#include "path/path.hpp"

#include <gtest/gtest.h>

#include "support/paper_graphs.hpp"

namespace qolsr {
namespace {

using testing::Fig1;

TEST(PathEval, BandwidthIsMinOverLinks) {
  const Graph g = Fig1::build();
  const Path p{Fig1::v1, Fig1::v2, Fig1::v3};
  EXPECT_DOUBLE_EQ(evaluate_path<BandwidthMetric>(g, p), 6.0);
  const Path wide{Fig1::v1, Fig1::v6, Fig1::v5, Fig1::v4, Fig1::v3};
  EXPECT_DOUBLE_EQ(evaluate_path<BandwidthMetric>(g, wide), 10.0);
}

TEST(PathEval, DelayIsSumOverLinks) {
  Graph g(3);
  LinkQos a, b;
  a.delay = 1.5;
  b.delay = 2.5;
  g.add_edge(0, 1, a);
  g.add_edge(1, 2, b);
  EXPECT_DOUBLE_EQ(evaluate_path<DelayMetric>(g, {0, 1, 2}), 4.0);
}

TEST(PathEval, SingleNodePathIsIdentity) {
  const Graph g = Fig1::build();
  EXPECT_EQ(evaluate_path<BandwidthMetric>(g, {Fig1::v1}),
            BandwidthMetric::identity());
  EXPECT_EQ(evaluate_path<DelayMetric>(g, {Fig1::v1}), 0.0);
}

TEST(PathEval, EmptyOrBrokenPathIsUnreachable) {
  const Graph g = Fig1::build();
  EXPECT_EQ(evaluate_path<BandwidthMetric>(g, {}),
            BandwidthMetric::unreachable());
  // v1 and v4 are not adjacent.
  EXPECT_EQ(evaluate_path<BandwidthMetric>(g, {Fig1::v1, Fig1::v4}),
            BandwidthMetric::unreachable());
}

TEST(IsSimplePath, DetectsRepeatsAndGaps) {
  const Graph g = Fig1::build();
  EXPECT_TRUE(is_simple_path(g, {Fig1::v1, Fig1::v2, Fig1::v3}));
  EXPECT_FALSE(is_simple_path(g, {}));
  EXPECT_FALSE(
      is_simple_path(g, {Fig1::v1, Fig1::v2, Fig1::v1}));  // repeat
  EXPECT_FALSE(is_simple_path(g, {Fig1::v1, Fig1::v4}));   // no such edge
  EXPECT_TRUE(is_simple_path(g, {Fig1::v1}));              // trivial
}

TEST(MetricAlgebra, CombineAndBetter) {
  EXPECT_DOUBLE_EQ(BandwidthMetric::combine(5.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(BandwidthMetric::combine(2.0, 7.0), 2.0);
  EXPECT_TRUE(BandwidthMetric::better(5.0, 3.0));
  EXPECT_FALSE(BandwidthMetric::better(3.0, 5.0));
  EXPECT_FALSE(BandwidthMetric::better(3.0, 3.0));

  EXPECT_DOUBLE_EQ(DelayMetric::combine(5.0, 3.0), 8.0);
  EXPECT_TRUE(DelayMetric::better(3.0, 5.0));
  EXPECT_FALSE(DelayMetric::better(5.0, 3.0));
}

TEST(MetricAlgebra, IdentityAndUnreachable) {
  // combine(identity, x) == x for both families.
  EXPECT_DOUBLE_EQ(BandwidthMetric::combine(BandwidthMetric::identity(), 4.0),
                   4.0);
  EXPECT_DOUBLE_EQ(DelayMetric::combine(DelayMetric::identity(), 4.0), 4.0);
  // unreachable is worse than everything.
  EXPECT_TRUE(BandwidthMetric::better(0.001, BandwidthMetric::unreachable()));
  EXPECT_TRUE(DelayMetric::better(1e9, DelayMetric::unreachable()));
}

TEST(MetricAlgebra, ToleranceAbsorbsSummationOrder) {
  // Two enumerations of the same additive path must compare equal.
  const double a = (0.1 + 0.2) + 0.3;
  const double b = 0.1 + (0.2 + 0.3);
  EXPECT_TRUE(metric_equal(a, b));
  EXPECT_FALSE(DelayMetric::better(a, b));
  EXPECT_FALSE(DelayMetric::better(b, a));
}

TEST(MetricAlgebra, AllSixMetricsExtractTheirField) {
  LinkQos q;
  q.bandwidth = 1;
  q.delay = 2;
  q.jitter = 3;
  q.loss_cost = 4;
  q.energy = 5;
  q.buffers = 6;
  EXPECT_EQ(BandwidthMetric::link_value(q), 1.0);
  EXPECT_EQ(DelayMetric::link_value(q), 2.0);
  EXPECT_EQ(JitterMetric::link_value(q), 3.0);
  EXPECT_EQ(LossMetric::link_value(q), 4.0);
  EXPECT_EQ(EnergyMetric::link_value(q), 5.0);
  EXPECT_EQ(BuffersMetric::link_value(q), 6.0);
  // Families: buffers concave like bandwidth, the rest additive like delay.
  EXPECT_EQ(BuffersMetric::kind, MetricKind::kConcave);
  EXPECT_EQ(JitterMetric::kind, MetricKind::kAdditive);
  EXPECT_EQ(EnergyMetric::kind, MetricKind::kAdditive);
}

}  // namespace
}  // namespace qolsr
