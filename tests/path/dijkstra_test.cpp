#include "path/dijkstra.hpp"

#include <gtest/gtest.h>

#include "path/brute_force.hpp"
#include "path/path.hpp"
#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

LinkQos qos(double bw, double d) {
  LinkQos q;
  q.bandwidth = bw;
  q.delay = d;
  return q;
}

TEST(Dijkstra, WidestPathOnFig1) {
  using F = testing::Fig1;
  const Graph g = F::build();
  const DijkstraResult r = dijkstra<BandwidthMetric>(g, F::v1);
  // Paper: the widest v1→v3 path is v1·v6·v5·v4·v3 with bandwidth 10.
  EXPECT_DOUBLE_EQ(r.value[F::v3], 10.0);
  const auto path = extract_path(r, F::v1, F::v3);
  EXPECT_EQ(path, (std::vector<std::uint32_t>{F::v1, F::v6, F::v5, F::v4,
                                              F::v3}));
}

TEST(Dijkstra, MinDelayPath) {
  Graph g(4);
  g.add_edge(0, 1, qos(1, 5));
  g.add_edge(1, 3, qos(1, 5));
  g.add_edge(0, 2, qos(1, 2));
  g.add_edge(2, 3, qos(1, 3));
  const DijkstraResult r = dijkstra<DelayMetric>(g, 0);
  EXPECT_DOUBLE_EQ(r.value[3], 5.0);
  EXPECT_EQ(extract_path(r, 0, 3), (std::vector<std::uint32_t>{0, 2, 3}));
}

TEST(Dijkstra, SourceHasIdentityValue) {
  Graph g(2);
  g.add_edge(0, 1, qos(4, 2));
  const auto rb = dijkstra<BandwidthMetric>(g, 0);
  EXPECT_EQ(rb.value[0], BandwidthMetric::identity());
  EXPECT_EQ(rb.hops[0], 0u);
  const auto rd = dijkstra<DelayMetric>(g, 0);
  EXPECT_EQ(rd.value[0], 0.0);
}

TEST(Dijkstra, UnreachableNodes) {
  Graph g(3);
  g.add_edge(0, 1, qos(4, 2));
  const auto r = dijkstra<DelayMetric>(g, 0);
  EXPECT_EQ(r.value[2], DelayMetric::unreachable());
  EXPECT_EQ(r.parent[2], kInvalidNode);
  EXPECT_TRUE(extract_path(r, 0, 2).empty());
}

TEST(Dijkstra, ExcludedVertexIsInvisible) {
  // 0-1-2 chain plus direct weak 0-2: excluding 1 forces the direct link.
  Graph g(3);
  g.add_edge(0, 1, qos(9, 1));
  g.add_edge(1, 2, qos(9, 1));
  g.add_edge(0, 2, qos(2, 9));
  const auto with1 = dijkstra<BandwidthMetric>(g, 0);
  EXPECT_DOUBLE_EQ(with1.value[2], 9.0);
  const auto without1 = dijkstra<BandwidthMetric>(g, 0, /*excluded=*/1);
  EXPECT_DOUBLE_EQ(without1.value[2], 2.0);
  EXPECT_EQ(without1.value[1], BandwidthMetric::unreachable());
}

TEST(Dijkstra, ExcludedSourceReachesNothing) {
  Graph g(2);
  g.add_edge(0, 1, qos(4, 2));
  const auto r = dijkstra<DelayMetric>(g, 0, /*excluded=*/0);
  EXPECT_EQ(r.value[1], DelayMetric::unreachable());
}

TEST(Dijkstra, HopTieBreakPrefersShorterPath) {
  // Two equal-bandwidth routes 0→3: 2 hops vs 3 hops.
  Graph g(5);
  g.add_edge(0, 1, qos(5, 1));
  g.add_edge(1, 3, qos(5, 1));
  g.add_edge(0, 2, qos(5, 1));
  g.add_edge(2, 4, qos(5, 1));
  g.add_edge(4, 3, qos(5, 1));
  const auto r = dijkstra<BandwidthMetric>(g, 0);
  EXPECT_DOUBLE_EQ(r.value[3], 5.0);
  EXPECT_EQ(r.hops[3], 2u);
  EXPECT_EQ(extract_path(r, 0, 3).size(), 3u);
}

TEST(Dijkstra, RunsOnLocalViews) {
  using F = testing::Fig2;
  const Graph g = F::build();
  const LocalView view(g, F::u);
  const auto r = dijkstra<BandwidthMetric>(view, LocalView::origin_index());
  // Best u→v4 inside G_u: u·v1·v5·v4 of bandwidth 5 (paper §III-B).
  EXPECT_DOUBLE_EQ(r.value[view.local_id(F::v4)], 5.0);
  // v9 is only visible through v7 (3): the v8–v9 shortcut is hidden.
  EXPECT_DOUBLE_EQ(r.value[view.local_id(F::v9)], 3.0);
}

TEST(Dijkstra, LocalViewValueCanBeWorseThanGlobal) {
  // The localized-knowledge limitation of §III-B: globally u→v9 has width 5.
  using F = testing::Fig2;
  const Graph g = F::build();
  const auto global = dijkstra<BandwidthMetric>(g, F::u);
  EXPECT_DOUBLE_EQ(global.value[F::v9], 5.0);
}

struct MetricCase {
  std::uint64_t seed;
};

class DijkstraVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DijkstraVsBruteForce, BandwidthMatchesExhaustiveSearch) {
  const Graph g = testing::random_uniform_graph(GetParam(), 9, 0.35);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto r = dijkstra<BandwidthMetric>(g, s);
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (t == s) continue;
      const auto brute =
          brute_force_best_paths<BandwidthMetric, Graph>(g, s, t);
      if (brute.optimal_paths.empty()) {
        EXPECT_EQ(r.value[t], BandwidthMetric::unreachable());
      } else {
        EXPECT_TRUE(metric_equal(r.value[t], brute.best))
            << s << "→" << t << ": " << r.value[t] << " vs " << brute.best;
      }
    }
  }
}

TEST_P(DijkstraVsBruteForce, DelayMatchesExhaustiveSearch) {
  const Graph g = testing::random_uniform_graph(GetParam() + 1000, 9, 0.35);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto r = dijkstra<DelayMetric>(g, s);
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (t == s) continue;
      const auto brute = brute_force_best_paths<DelayMetric, Graph>(g, s, t);
      if (brute.optimal_paths.empty()) {
        EXPECT_EQ(r.value[t], DelayMetric::unreachable());
      } else {
        EXPECT_TRUE(metric_equal(r.value[t], brute.best))
            << s << "→" << t << ": " << r.value[t] << " vs " << brute.best;
      }
    }
  }
}

TEST_P(DijkstraVsBruteForce, ExtractedPathRealizesReportedValue) {
  const Graph g = testing::random_uniform_graph(GetParam() + 2000, 10, 0.3);
  const auto r = dijkstra<BandwidthMetric>(g, 0);
  for (NodeId t = 1; t < g.node_count(); ++t) {
    const auto path = extract_path(r, 0, t);
    if (path.empty()) continue;
    Path p(path.begin(), path.end());
    EXPECT_TRUE(is_simple_path(g, p));
    EXPECT_TRUE(
        metric_equal(evaluate_path<BandwidthMetric>(g, p), r.value[t]));
    EXPECT_EQ(p.size() - 1, r.hops[t]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraVsBruteForce,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace qolsr
