#include "path/first_hops.hpp"

#include <gtest/gtest.h>

#include "path/brute_force.hpp"
#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

using testing::Fig2;

std::vector<NodeId> to_global(const LocalView& view,
                              const std::vector<std::uint32_t>& locals) {
  std::vector<NodeId> out;
  for (std::uint32_t l : locals) out.push_back(view.global_id(l));
  return out;
}

TEST(FirstHops, PaperFig2Examples) {
  const Graph g = Fig2::build();
  const LocalView view(g, Fig2::u);
  const FirstHopTable table = compute_first_hops<BandwidthMetric>(view);

  // fPBW(u,v3) = {v1, v2} with B̃W(u,v3) = 4 (paper §III-A).
  const std::uint32_t lv3 = view.local_id(Fig2::v3);
  EXPECT_EQ(to_global(view, table.fp[lv3]),
            (std::vector<NodeId>{Fig2::v1, Fig2::v2}));
  EXPECT_DOUBLE_EQ(table.best[lv3], 4.0);

  // u reaches its 1-hop neighbor v5 best through v1 (value 5 vs direct 2).
  const std::uint32_t lv5 = view.local_id(Fig2::v5);
  EXPECT_EQ(to_global(view, table.fp[lv5]), (std::vector<NodeId>{Fig2::v1}));
  EXPECT_DOUBLE_EQ(table.best[lv5], 5.0);

  // u·v1·v5·v4 (bandwidth 5) beats the direct link of bandwidth 3.
  const std::uint32_t lv4 = view.local_id(Fig2::v4);
  EXPECT_EQ(to_global(view, table.fp[lv4]), (std::vector<NodeId>{Fig2::v1}));
  EXPECT_DOUBLE_EQ(table.best[lv4], 5.0);

  // The hidden v8–v9 link caps u's view of v9 at 3, via v7.
  const std::uint32_t lv9 = view.local_id(Fig2::v9);
  EXPECT_EQ(to_global(view, table.fp[lv9]), (std::vector<NodeId>{Fig2::v7}));
  EXPECT_DOUBLE_EQ(table.best[lv9], 3.0);

  // v11 hangs off v6: single best first hop.
  const std::uint32_t lv11 = view.local_id(Fig2::v11);
  EXPECT_EQ(to_global(view, table.fp[lv11]), (std::vector<NodeId>{Fig2::v6}));
  EXPECT_DOUBLE_EQ(table.best[lv11], 5.0);
}

TEST(FirstHops, DirectLinkOptimalContainsSelf) {
  const Graph g = Fig2::build();
  const LocalView view(g, Fig2::u);
  const FirstHopTable table = compute_first_hops<BandwidthMetric>(view);
  // (u,v6) is u's best link — fP(u,v6) must contain v6 itself.
  const std::uint32_t lv6 = view.local_id(Fig2::v6);
  EXPECT_EQ(to_global(view, table.fp[lv6]), (std::vector<NodeId>{Fig2::v6}));
  // Same for v7 (paper: "u will not select another ANS for reaching v7").
  const std::uint32_t lv7 = view.local_id(Fig2::v7);
  EXPECT_EQ(to_global(view, table.fp[lv7]), (std::vector<NodeId>{Fig2::v7}));
}

TEST(FirstHops, OriginHasIdentity) {
  const Graph g = Fig2::build();
  const LocalView view(g, Fig2::u);
  const FirstHopTable table = compute_first_hops<BandwidthMetric>(view);
  EXPECT_EQ(table.best[LocalView::origin_index()],
            BandwidthMetric::identity());
  EXPECT_TRUE(table.fp[LocalView::origin_index()].empty());
}

TEST(FirstHops, DelayMetricFindsCheapestChain) {
  // Delay graph: direct (5), 2-hop detour (1+1): fP = {detour}.
  Graph g(4);
  LinkQos slow, fast;
  slow.delay = 5.0;
  fast.delay = 1.0;
  g.add_edge(0, 1, slow);
  g.add_edge(0, 2, fast);
  g.add_edge(2, 1, fast);
  g.add_edge(1, 3, fast);
  const LocalView view(g, 0);
  const FirstHopTable table = compute_first_hops<DelayMetric>(view);
  const std::uint32_t l1 = view.local_id(1);
  EXPECT_EQ(to_global(view, table.fp[l1]), (std::vector<NodeId>{2}));
  EXPECT_DOUBLE_EQ(table.best[l1], 2.0);
}

class FirstHopsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FirstHopsPropertyTest, MatchesBruteForceEnumerationBandwidth) {
  const Graph g = testing::random_uniform_graph(GetParam(), 8, 0.4);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    if (view.size() > 10) continue;  // keep the exhaustive search tractable
    const FirstHopTable table = compute_first_hops<BandwidthMetric>(view);
    for (std::uint32_t v = 1; v < view.size(); ++v) {
      const auto expected =
          brute_force_first_hops<BandwidthMetric>(view, v);
      EXPECT_EQ(table.fp[v], expected)
          << "u=" << u << " v=" << view.global_id(v);
    }
  }
}

TEST_P(FirstHopsPropertyTest, MatchesBruteForceEnumerationDelay) {
  const Graph g = testing::random_uniform_graph(GetParam() + 500, 8, 0.4);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    if (view.size() > 10) continue;
    const FirstHopTable table = compute_first_hops<DelayMetric>(view);
    for (std::uint32_t v = 1; v < view.size(); ++v) {
      const auto expected = brute_force_first_hops<DelayMetric>(view, v);
      EXPECT_EQ(table.fp[v], expected)
          << "u=" << u << " v=" << view.global_id(v);
    }
  }
}

TEST_P(FirstHopsPropertyTest, FirstHopsAreAlwaysOneHopNeighbors) {
  const Graph g = testing::random_geometric_graph(GetParam(), 8.0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    const FirstHopTable table = compute_first_hops<BandwidthMetric>(view);
    for (std::uint32_t v = 1; v < view.size(); ++v)
      for (std::uint32_t w : table.fp[v]) EXPECT_TRUE(view.is_one_hop(w));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FirstHopsPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace qolsr
