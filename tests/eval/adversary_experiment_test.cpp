// Adversary contracts at the experiment level: packet sweeps with no
// adversary flags (or --adversaries=0 / --corrupt=0) are byte-for-byte the
// honest engine, rosters are deterministic and thread-count invariant,
// blackholes measurably degrade delivery with every absorption charged to
// the invariant monitor, the adversary-axis zero point reproduces the
// honest figures, and the canned figure B is a valid adversary sweep.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "eval/experiment.hpp"
#include "eval/figures.hpp"
#include "eval/result_sink.hpp"

namespace qolsr {
namespace {

/// The flags of the pinned fault-free packet run (the same scenario
/// robustness_test pins against its golden CSV).
std::vector<std::string> golden_flags() {
  return {"--backend=packet", "--densities=8", "--field=400x400",
          "--runs=2",         "--seed=7",      "--threads=1",
          "--format=csv"};
}

std::string run_to_csv(const std::vector<std::string>& flags) {
  const ExperimentSpec spec = parse_experiment_spec(flags);
  const ExperimentResult result = run_experiment(spec);
  std::ostringstream os;
  CsvSink{}.write(result, os);
  return os.str();
}

TEST(AdversaryExperiment, ZeroedAdversaryFlagsAreByteIdenticalToNoFlags) {
  const std::string honest = run_to_csv(golden_flags());

  auto with = [](const std::string& extra) {
    auto flags = golden_flags();
    flags.push_back(extra);
    return flags;
  };
  EXPECT_EQ(run_to_csv(with("--adversaries=0")), honest);
  EXPECT_EQ(run_to_csv(with("--corrupt=0")), honest);
  // And the honest run carries none of the adversary columns.
  EXPECT_EQ(honest.find("invariant_violations"), std::string::npos);
  EXPECT_EQ(honest.find("adversary_fraction"), std::string::npos);
}

TEST(AdversaryExperiment, SubvertedSweepIsThreadCountInvariant) {
  auto with_threads = [](const std::string& threads) {
    return run_to_csv({"--backend=packet", "--densities=8",
                       "--field=400x400", "--runs=4", "--seed=11", threads,
                       "--format=csv", "--adversaries=2@blackhole,liar",
                       "--corrupt=0.02", "--probes=4", "--pairs=any",
                       "--per-run"});
  };
  const std::string one = with_threads("--threads=1");
  EXPECT_EQ(one, with_threads("--threads=3"));
  // The adversary columns are present at both granularities.
  EXPECT_NE(one.find("invariant_violations"), std::string::npos);
  EXPECT_NE(one.find("poisoned_routes"), std::string::npos);
  EXPECT_NE(one.find("blackhole_absorptions"), std::string::npos);
  EXPECT_NE(one.find("frames_corrupted_mean"), std::string::npos);
}

TEST(AdversaryExperiment, BlackholesDegradeDeliveryAndAreCounted) {
  const std::vector<std::string> shared = {
      "--backend=packet", "--densities=10", "--field=400x400", "--runs=2",
      "--seed=7",         "--threads=1",    "--probes=8",      "--pairs=any",
      "--selectors=olsr_mpr,fnbp"};

  auto sweep = [&](std::initializer_list<std::string> extra) {
    std::vector<std::string> flags = shared;
    flags.insert(flags.end(), extra.begin(), extra.end());
    return run_experiment(parse_experiment_spec(flags)).sweep;
  };

  const auto honest = sweep({});
  const auto subverted = sweep({"--adversaries=2@blackhole"});
  ASSERT_EQ(honest.size(), 1u);
  ASSERT_EQ(subverted.size(), 1u);

  std::size_t honest_delivered = 0, subverted_delivered = 0;
  std::uint64_t absorptions = 0;
  for (const ProtocolStats& p : honest[0].protocols) {
    honest_delivered += p.delivered;
    EXPECT_FALSE(p.invariants.measured()) << p.name;
  }
  for (const ProtocolStats& p : subverted[0].protocols) {
    subverted_delivered += p.delivered;
    absorptions += p.invariants.counters.blackhole_absorptions;
    EXPECT_TRUE(p.invariants.measured()) << p.name;
  }
  EXPECT_LT(subverted_delivered, honest_delivered);
  EXPECT_GE(absorptions, 1u);  // the ISSUE's acceptance floor
  // Poisoned-route classification: at least one failed probe's recorded
  // path crosses a roster node.
  std::size_t poisoned = 0;
  for (const ProtocolStats& p : subverted[0].protocols)
    poisoned += p.invariants.poisoned_routes;
  EXPECT_GT(poisoned, 0u);
}

TEST(AdversaryExperiment, AdversaryAxisZeroPointEqualsHonestRun) {
  // The fraction = 0 sweep point of an adversary-axis experiment must
  // measure exactly what a plain honest packet run measures — an empty
  // roster deactivates the spec, draws no randoms and arms no monitor.
  const std::vector<std::string> shared = {
      "--backend=packet", "--degree=8",  "--field=400x400", "--runs=2",
      "--seed=9",         "--threads=1", "--probes=3",      "--pairs=any"};

  auto with = [&](std::initializer_list<std::string> extra) {
    std::vector<std::string> flags = shared;
    flags.insert(flags.end(), extra.begin(), extra.end());
    return run_experiment(parse_experiment_spec(flags)).sweep;
  };

  const auto axis = with(
      {"--axis=adversary", "--densities=0", "--adversaries=0@blackhole"});
  const auto honest = with({"--densities=8"});
  ASSERT_EQ(axis.size(), 1u);
  ASSERT_EQ(honest.size(), 1u);
  ASSERT_EQ(axis[0].protocols.size(), honest[0].protocols.size());
  for (std::size_t si = 0; si < axis[0].protocols.size(); ++si) {
    const ProtocolStats& a = axis[0].protocols[si];
    const ProtocolStats& b = honest[0].protocols[si];
    SCOPED_TRACE(a.name);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.set_size.mean(), b.set_size.mean());
    EXPECT_EQ(a.overhead.mean(), b.overhead.mean());
    EXPECT_EQ(a.control.control_bytes.mean(), b.control.control_bytes.mean());
    EXPECT_EQ(a.control.convergence_time.mean(),
              b.control.convergence_time.mean());
    EXPECT_EQ(a.invariants.counters.total(), 0u);
    EXPECT_EQ(a.invariants.poisoned_routes, 0u);
  }
}

TEST(AdversaryExperiment, FigureBSpecIsACannedAdversarySweep) {
  const ExperimentSpec spec = figure_b_spec();
  EXPECT_EQ(spec.backend, BackendId::kPacket);
  EXPECT_EQ(spec.scenario.sweep_axis, Scenario::SweepAxis::kAdversary);
  EXPECT_EQ(spec.scenario.densities.front(), 0.0);  // the honest pin point
  EXPECT_EQ(spec.scenario.probe_packets, 8u);
  ASSERT_EQ(spec.scenario.adversaries.kinds.size(), 2u);
  EXPECT_EQ(spec.scenario.adversaries.kinds[0], AdversaryKind::kBlackhole);
  EXPECT_EQ(spec.scenario.adversaries.kinds[1], AdversaryKind::kLiar);
  EXPECT_EQ(spec.selectors.size(), 5u);
}

TEST(AdversaryExperiment, FigureLookupIsCaseInsensitiveAndNamesTheValidSet) {
  EXPECT_EQ(figure_by_name("B").name, figure_b_spec().name);
  EXPECT_EQ(figure_by_name("b").name, figure_b_spec().name);
  EXPECT_EQ(figure_by_name("6").name, figure_spec(6).name);
  EXPECT_EQ(figure_names(), "6|7|8|9|M|R|L|B");
  try {
    figure_by_name("Z");
    FAIL() << "unknown figure accepted";
  } catch (const ExperimentError& e) {
    // The error lists every valid name — the CLI relays it verbatim.
    EXPECT_NE(std::string(e.what()).find("6|7|8|9|M|R|L|B"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'Z'"), std::string::npos);
  }
}

TEST(AdversaryExperiment, MalformedAdversaryFlagsAreRejected) {
  // Unknown kind: rejected at parse, naming the valid kinds.
  try {
    parse_experiment_spec({"--adversaries=1@gremlin"});
    FAIL() << "unknown kind accepted";
  } catch (const ExperimentError& e) {
    EXPECT_NE(std::string(e.what()).find("blackhole|liar|replayer|selfish"),
              std::string::npos);
  }
  // A count without kinds is rejected at validation.
  EXPECT_THROW(run_experiment(parse_experiment_spec(
                   {"--backend=packet", "--densities=8", "--runs=1",
                    "--adversaries=2"})),
               ExperimentError);
  // The adversary engine is packet-only.
  EXPECT_THROW(run_experiment(parse_experiment_spec(
                   {"--densities=10", "--runs=1",
                    "--adversaries=1@blackhole"})),
               ExperimentError);
  EXPECT_THROW(run_experiment(parse_experiment_spec(
                   {"--densities=10", "--runs=1", "--corrupt=0.1"})),
               ExperimentError);
  EXPECT_THROW(run_experiment(parse_experiment_spec(
                   {"--axis=adversary", "--densities=0.1", "--runs=1"})),
               ExperimentError);
  // Rates are probabilities.
  EXPECT_THROW(run_experiment(parse_experiment_spec(
                   {"--backend=packet", "--densities=8", "--runs=1",
                    "--corrupt=1.5"})),
               ExperimentError);
  // Axis sweep values are fractions of the deployment.
  EXPECT_THROW(run_experiment(parse_experiment_spec(
                   {"--backend=packet", "--axis=adversary",
                    "--densities=0,2", "--degree=8", "--runs=1",
                    "--adversaries=0@blackhole"})),
               ExperimentError);
}

}  // namespace
}  // namespace qolsr
