// The --backend=wire eval path: spec validation, and one real sweep where
// every (run, protocol) stands up a fleet of qolsr_node processes over the
// software switch and is digest-verified against the in-process Simulator
// twin (a mismatch throws, so a passing sweep IS the equivalence check).
#include <gtest/gtest.h>

#include "eval/experiment.hpp"

namespace qolsr {
namespace {

/// A wire-sized spec: ~12 expected nodes per deployment, two contenders,
/// two runs — four process fleets, each converging in well under a second
/// at the default timing compression.
ExperimentSpec wire_spec() {
  ExperimentSpec spec;
  spec.name = "wire_smoke";
  spec.backend = BackendId::kWire;
  spec.selectors = {"olsr_mpr", "qolsr_mpr2"};
  spec.scenario.field.width = 250.0;
  spec.scenario.field.height = 250.0;
  spec.scenario.densities = {6.0};
  spec.scenario.runs = 2;
  spec.scenario.seed = 7;
  return spec;
}

TEST(WireBackend, RejectsScenariosItCannotRun) {
  ExperimentSpec mobility = wire_spec();
  mobility.scenario.dynamics.model = DynamicsSpec::Model::kWaypoint;
  EXPECT_THROW(run_experiment(mobility), ExperimentError);

  ExperimentSpec per_run = wire_spec();
  per_run.per_run = true;
  EXPECT_THROW(run_experiment(per_run), ExperimentError);

  // Fault/traffic/adversary engines are packet-backend machinery; the
  // shared validation rejects them before the backend is even consulted.
  ExperimentSpec faults = wire_spec();
  faults.scenario.faults.loss_rate = 0.1;
  EXPECT_THROW(run_experiment(faults), ExperimentError);

  // Every node is a real process: a paper-sized field at this density
  // would spawn hundreds of them, so the backend refuses up front.
  ExperimentSpec huge = wire_spec();
  huge.scenario.field.width = 1000.0;
  huge.scenario.field.height = 1000.0;
  huge.scenario.densities = {10.0};
  EXPECT_THROW(run_experiment(huge), ExperimentError);
}

TEST(WireBackend, WireScaleIsValidatedAndBackendScoped) {
  ExperimentSpec bad_scale = wire_spec();
  bad_scale.wire_scale = 0.0;
  EXPECT_THROW(run_experiment(bad_scale), ExperimentError);
  bad_scale.wire_scale = 1.5;
  EXPECT_THROW(run_experiment(bad_scale), ExperimentError);

  // --wire-scale on another backend is a misconfiguration, not a no-op.
  ExperimentSpec oracle = wire_spec();
  oracle.backend = BackendId::kOracle;
  oracle.wire_scale = 0.05;
  EXPECT_THROW(run_experiment(oracle), ExperimentError);

  EXPECT_DOUBLE_EQ(parse_experiment_spec({"--wire-scale=0.05"}).wire_scale,
                   0.05);
}

TEST(WireBackend, SweepsRealProcessFleetsAndVerifiesDigests) {
  const ExperimentSpec spec = wire_spec();
  const ExperimentResult result = run_experiment(spec);

  ASSERT_EQ(result.sweep.size(), 1u);
  const DensityStats& stats = result.sweep[0];
  EXPECT_EQ(stats.density, 6.0);
  EXPECT_EQ(stats.node_count.count(), spec.scenario.runs);
  ASSERT_EQ(stats.protocols.size(), spec.selectors.size());
  for (const ProtocolStats& ps : stats.protocols) {
    // One set-size sample per run, measured from the daemons' status
    // frames (and digest-checked against the simulator, or we'd have
    // thrown). Wall-clock convergence is real elapsed seconds > 0.
    EXPECT_EQ(ps.set_size.count(), spec.scenario.runs);
    EXPECT_EQ(ps.control.convergence_time.count(), spec.scenario.runs);
    EXPECT_GT(ps.control.convergence_time.mean(), 0.0);
    EXPECT_EQ(ps.control.unconverged, 0u);
  }
}

}  // namespace
}  // namespace qolsr
