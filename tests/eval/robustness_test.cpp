// Robustness contracts of the fault-injection engine at the experiment
// level: a packet sweep with no fault flags (or --loss=0) is byte-for-byte
// the fault-free engine, fault schedules are deterministic and
// thread-count invariant, delivery degrades under loss with every failed
// probe charged to a fate, the loss-axis zero point reproduces the
// fault-free figures, and per-run records carry the honest converged flag.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "eval/experiment.hpp"
#include "eval/figures.hpp"
#include "eval/result_sink.hpp"

namespace qolsr {
namespace {

/// The flags of the pinned fault-free packet run. Small on purpose: the
/// pin is a byte-stability tripwire, not a statistics check.
std::vector<std::string> golden_flags() {
  return {"--backend=packet", "--densities=8", "--field=400x400",
          "--runs=2",         "--seed=7",      "--threads=1",
          "--format=csv"};
}

/// CSV of the fault-free packet engine. An inactive FaultPlan must keep
/// reproducing this byte-for-byte — same event order, same RNG draws, same
/// columns. Re-pinned when convergence detection became event-driven: the
/// figure columns (set sizes, delivery, overhead, hops, message counts,
/// control bytes) are unchanged from the pre-change capture, while the
/// convergence columns carry the exact last-mutation timestamp (no longer
/// rounded up to the HELLO sampling grid) and duplicate_drops is
/// snapshotted at that instant rather than at the next grid tick.
constexpr const char* kFaultFreePacketCsv =
    "metric,density,runs,avg_nodes,protocol,set_size_mean,set_size_stddev,"
    "delivered,failed,overhead_mean,overhead_stddev,path_hops_mean,"
    "hello_msgs_mean,tc_msgs_mean,tc_forwards_mean,duplicate_drops_mean,"
    "control_bytes_mean,convergence_time_mean,convergence_time_stddev,"
    "unconverged_runs\n"
    "bandwidth,8,2,36.5,qolsr_mpr2_bandwidth,2.620300752,0.1329148085,2,0,"
    "0.3333333333,0.4714045208,2,146,49.5,619,2501,144266,7.460765835,"
    "0.01570220622,0\n"
    "bandwidth,8,2,36.5,topology_filtering_bandwidth,2.571804511,"
    "0.1217499646,2,0,0,0,2.5,146,51.5,505.5,1795.5,123078.5,7.460765835,"
    "0.01570220622,0\n"
    "bandwidth,8,2,36.5,fnbp_bandwidth,1.691729323,0.2339300629,2,0,0,0,"
    "2.5,146,51.5,505.5,1795.5,97400,7.460765835,0.01570220622,0\n";

std::string run_to_csv(const std::vector<std::string>& flags) {
  const ExperimentSpec spec = parse_experiment_spec(flags);
  const ExperimentResult result = run_experiment(spec);
  std::ostringstream os;
  CsvSink{}.write(result, os);
  return os.str();
}

TEST(Robustness, FaultFreePacketRunMatchesGoldenPin) {
  EXPECT_EQ(run_to_csv(golden_flags()), kFaultFreePacketCsv);
}

TEST(Robustness, LossZeroFlagIsByteIdenticalToNoFaultFlags) {
  auto flags = golden_flags();
  flags.push_back("--loss=0");
  EXPECT_EQ(run_to_csv(flags), kFaultFreePacketCsv);
}

TEST(Robustness, CorruptZeroFlagIsByteIdenticalToNoFaultFlags) {
  // --corrupt=0 leaves the adversary spec inactive: no corruption gate is
  // installed, no extra RNG draws happen, and the run must reproduce the
  // fault-free pin byte-for-byte (same contract as --loss=0).
  auto flags = golden_flags();
  flags.push_back("--corrupt=0");
  EXPECT_EQ(run_to_csv(flags), kFaultFreePacketCsv);
}

TEST(Robustness, WireCorruptionChargesMalformedNotNoRoute) {
  // A corrupted frame that still parses as a data frame with an
  // out-of-range destination must be charged to the wire (kMalformed), so
  // at the sweep level every probe fate lands in either a routed fate
  // (no-route/loop/medium) or the invariants block — never misattributed
  // such that the fates overshoot the failure count.
  const ExperimentSpec spec = parse_experiment_spec(
      {"--backend=packet", "--densities=8", "--field=400x400", "--runs=3",
       "--seed=7", "--threads=1", "--probes=8", "--pairs=any",
       "--corrupt=0.25"});
  const ExperimentResult result = run_experiment(spec);
  ASSERT_EQ(result.sweep.size(), 1u);
  bool corrupted_somewhere = false;
  for (const ProtocolStats& p : result.sweep[0].protocols) {
    SCOPED_TRACE(p.name);
    EXPECT_LE(p.no_route_losses + p.loop_losses + p.medium_losses, p.failed);
    corrupted_somewhere =
        corrupted_somewhere || p.invariants.frames_corrupted.mean() > 0.0;
    // At a 25% per-frame flip rate the sanitation layer must have rejected
    // frames as malformed; none of those may leak into no-route.
    EXPECT_GT(p.invariants.frames_malformed.mean(), 0.0);
  }
  EXPECT_TRUE(corrupted_somewhere);
}

TEST(Robustness, FaultScheduleIsThreadCountInvariant) {
  auto with_threads = [](const std::string& threads) {
    return run_to_csv({"--backend=packet", "--densities=8", "--field=400x400",
                       "--runs=4", "--seed=11", threads, "--format=csv",
                       "--loss=0.15", "--crash=1@5", "--flap=1@5",
                       "--probes=4"});
  };
  const std::string one = with_threads("--threads=1");
  EXPECT_EQ(one, with_threads("--threads=3"));
  // The fault columns are present and the schedule did something.
  EXPECT_NE(one.find("reconvergence_time_mean"), std::string::npos);
  EXPECT_NE(one.find("loss_rate"), std::string::npos);
}

TEST(Robustness, DeliveryDegradesUnderLossAndFatesSumToFailed) {
  ExperimentSpec spec = parse_experiment_spec(
      {"--backend=packet", "--axis=loss", "--densities=0,0.3", "--degree=8",
       "--field=400x400", "--runs=3", "--seed=5", "--threads=2",
       "--probes=6", "--pairs=any"});
  const ExperimentResult result = run_experiment(spec);
  ASSERT_EQ(result.sweep.size(), 2u);
  const DensityStats& clean = result.sweep[0];
  const DensityStats& lossy = result.sweep[1];

  std::size_t clean_delivered = 0, lossy_delivered = 0;
  for (const ProtocolStats& p : clean.protocols) {
    clean_delivered += p.delivered;
    EXPECT_EQ(p.no_route_losses + p.loop_losses + p.medium_losses, p.failed)
        << p.name;
  }
  for (const ProtocolStats& p : lossy.protocols) {
    lossy_delivered += p.delivered;
    EXPECT_EQ(p.no_route_losses + p.loop_losses + p.medium_losses, p.failed)
        << p.name;
  }
  EXPECT_LT(lossy_delivered, clean_delivered);
  // At 30% ambient frame loss the medium must have eaten something —
  // control frames at minimum.
  bool lost_frames = false;
  for (const ProtocolStats& p : lossy.protocols)
    lost_frames = lost_frames || p.control.frames_lost.mean() > 0.0;
  EXPECT_TRUE(lost_frames);
}

TEST(Robustness, LossAxisZeroPointEqualsFaultFreeRun) {
  // The loss = 0 sweep point of a loss-axis experiment — incidents and all
  // — must produce the same measurements as a plain fault-free packet run
  // of the same scenario, because probes are measured before incidents are
  // injected and a zero rate draws no random numbers.
  const std::vector<std::string> shared = {
      "--backend=packet", "--degree=8",  "--field=400x400", "--runs=2",
      "--seed=9",         "--threads=1", "--probes=3",      "--pairs=any"};

  auto with = [&](std::initializer_list<std::string> extra) {
    std::vector<std::string> flags = shared;
    flags.insert(flags.end(), extra.begin(), extra.end());
    return run_experiment(parse_experiment_spec(flags)).sweep;
  };

  const auto loss_axis =
      with({"--axis=loss", "--densities=0", "--crash=1@5"});
  const auto fault_free = with({"--densities=8"});
  ASSERT_EQ(loss_axis.size(), 1u);
  ASSERT_EQ(fault_free.size(), 1u);
  ASSERT_EQ(loss_axis[0].protocols.size(), fault_free[0].protocols.size());
  for (std::size_t si = 0; si < loss_axis[0].protocols.size(); ++si) {
    const ProtocolStats& a = loss_axis[0].protocols[si];
    const ProtocolStats& b = fault_free[0].protocols[si];
    SCOPED_TRACE(a.name);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.set_size.mean(), b.set_size.mean());
    EXPECT_EQ(a.overhead.mean(), b.overhead.mean());
    EXPECT_EQ(a.control.control_bytes.mean(), b.control.control_bytes.mean());
    EXPECT_EQ(a.control.convergence_time.mean(),
              b.control.convergence_time.mean());
    EXPECT_EQ(a.control.frames_lost.mean(), 0.0);
    // Only the loss-axis run timed incident re-convergence.
    EXPECT_GT(a.control.reconvergence_time.count(), 0u);
    EXPECT_EQ(b.control.reconvergence_time.count(), 0u);
  }
}

TEST(Robustness, PerRunRecordsCarryConvergenceOutcome) {
  const ExperimentSpec spec = parse_experiment_spec(
      {"--backend=packet", "--densities=8", "--field=400x400", "--runs=2",
       "--seed=7", "--threads=1", "--per-run", "--loss=0.1", "--probes=4"});
  const ExperimentResult result = run_experiment(spec);
  ASSERT_EQ(result.sweep.size(), 1u);
  ASSERT_EQ(result.sweep[0].run_records.size(), 2u);
  for (const RunRecord& r : result.sweep[0].run_records) {
    for (const RunRecord::Protocol& rp : r.protocols) {
      EXPECT_GT(rp.convergence_time, 0.0);
      EXPECT_GT(rp.control_bytes, 0.0);
      EXPECT_EQ(rp.probes_delivered + rp.probes_failed, 4u);
      EXPECT_EQ(rp.delivered, rp.probes_failed == 0);
    }
  }
  // The CSV record block carries the packet-only columns.
  std::ostringstream os;
  CsvSink{}.write(result, os);
  EXPECT_NE(os.str().find(",convergence_time,converged,control_bytes"),
            std::string::npos);
}

TEST(Robustness, FigureRSpecIsACannedLossSweep) {
  const ExperimentSpec spec = figure_r_spec();
  EXPECT_EQ(spec.backend, BackendId::kPacket);
  EXPECT_EQ(spec.scenario.sweep_axis, Scenario::SweepAxis::kLoss);
  EXPECT_EQ(spec.scenario.densities.front(), 0.0);
  EXPECT_EQ(spec.scenario.probe_packets, 8u);
  ASSERT_EQ(spec.scenario.faults.incidents.size(), 1u);
  EXPECT_EQ(spec.scenario.faults.incidents[0].kind,
            FaultIncident::Kind::kNodeCrash);
  EXPECT_EQ(spec.selectors.size(), 5u);
}

TEST(Robustness, OracleBackendRejectsFaultFlags) {
  EXPECT_THROW(
      run_experiment(parse_experiment_spec(
          {"--densities=10", "--runs=1", "--loss=0.2"})),
      ExperimentError);
  EXPECT_THROW(run_experiment(parse_experiment_spec(
                   {"--densities=10", "--runs=1", "--crash=1"})),
               ExperimentError);
  EXPECT_THROW(run_experiment(parse_experiment_spec(
                   {"--axis=loss", "--densities=0.1", "--runs=1"})),
               ExperimentError);
  EXPECT_THROW(parse_experiment_spec({"--loss=nope"}), ExperimentError);
  EXPECT_THROW(
      run_experiment(parse_experiment_spec(
          {"--backend=packet", "--densities=10", "--runs=1", "--loss=1.5"})),
      ExperimentError);
}

}  // namespace
}  // namespace qolsr
