// End-to-end smoke test of run_sweep: a tiny 2-density × 4-run sweep for
// both metric families, exercising the multithreaded partial-stats merge
// path against the single-threaded reference. Thread partitioning changes
// only the floating-point merge order, so aggregates must agree to
// rounding and counters must agree exactly.
#include "eval/runner.hpp"

#include <gtest/gtest.h>

#include "core/fnbp.hpp"

namespace qolsr {
namespace {

Scenario tiny_scenario() {
  Scenario s;
  s.densities = {6.0, 9.0};
  s.runs = 4;
  s.seed = 1234;
  s.field.width = 350.0;
  s.field.height = 350.0;
  return s;
}

template <Metric M>
void check_sweep_merge() {
  Scenario s = tiny_scenario();
  const QolsrSelector<M> qolsr(QolsrVariant::kMpr2);
  const FnbpSelector<M> fnbp;
  const std::vector<const AnsSelector*> selectors = {&qolsr, &fnbp};

  const auto serial = run_sweep<M>(s, selectors, 1);
  const auto threaded = run_sweep<M>(s, selectors, 4);

  ASSERT_EQ(serial.size(), s.densities.size());
  ASSERT_EQ(threaded.size(), s.densities.size());
  for (std::size_t di = 0; di < serial.size(); ++di) {
    const DensityStats& a = serial[di];
    const DensityStats& b = threaded[di];
    EXPECT_EQ(a.density, b.density);
    EXPECT_EQ(a.runs, s.runs);
    EXPECT_EQ(a.node_count.count(), b.node_count.count());
    ASSERT_EQ(a.protocols.size(), selectors.size());
    ASSERT_EQ(b.protocols.size(), selectors.size());
    for (std::size_t si = 0; si < selectors.size(); ++si) {
      const ProtocolStats& pa = a.protocols[si];
      const ProtocolStats& pb = b.protocols[si];
      EXPECT_EQ(pa.name, pb.name);
      // Counters are integer-exact regardless of the merge order.
      EXPECT_EQ(pa.delivered, pb.delivered);
      EXPECT_EQ(pa.failed, pb.failed);
      EXPECT_EQ(pa.delivered + pa.failed, s.runs);
      EXPECT_EQ(pa.set_size.count(), pb.set_size.count());
      EXPECT_EQ(pa.set_size.count(), s.runs);
      // Means agree to merge-order rounding.
      EXPECT_NEAR(pa.set_size.mean(), pb.set_size.mean(), 1e-9);
      if (pa.delivered > 0) {
        EXPECT_NEAR(pa.overhead.mean(), pb.overhead.mean(), 1e-9);
        EXPECT_NEAR(pa.path_hops.mean(), pb.path_hops.mean(), 1e-9);
      }
      EXPECT_GT(pa.set_size.mean(), 0.0);
    }
  }
}

TEST(SweepSmoke, BandwidthMergeMatchesSerial) {
  check_sweep_merge<BandwidthMetric>();
}

TEST(SweepSmoke, DelayMergeMatchesSerial) { check_sweep_merge<DelayMetric>(); }

TEST(SweepSmoke, AnsChainRoutingModelRuns) {
  Scenario s = tiny_scenario();
  s.routing_model = Scenario::RoutingModel::kAnsChain;
  const FnbpSelector<BandwidthMetric> fnbp;
  const auto sweep = run_sweep<BandwidthMetric>(s, {&fnbp}, 2);
  ASSERT_EQ(sweep.size(), 2u);
  for (const DensityStats& d : sweep) {
    const ProtocolStats& p = d.protocols[0];
    EXPECT_EQ(p.delivered + p.failed, s.runs);
  }
}

}  // namespace
}  // namespace qolsr
