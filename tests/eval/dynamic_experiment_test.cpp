// The mobility/churn epoch-loop evaluation mode end-to-end: count
// consistency, determinism of the emitted CSV at a fixed seed,
// thread-count invariance (the satellite mirroring the static sweep's
// test), the new CLI flags, the canned Fig. M spec, and the spec
// validation the dynamics block adds.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "eval/dynamic_runner.hpp"
#include "eval/experiment.hpp"
#include "eval/figures.hpp"
#include "eval/result_sink.hpp"

namespace qolsr {
namespace {

ExperimentSpec small_dynamic_spec() {
  ExperimentSpec spec;
  spec.name = "dynamic_smoke";
  spec.scenario.densities = {7.0};
  spec.scenario.runs = 3;
  spec.scenario.seed = 17;
  spec.scenario.field.width = 350.0;
  spec.scenario.field.height = 350.0;
  spec.scenario.pair_mode = Scenario::PairMode::kAnyConnected;
  spec.scenario.dynamics.model = DynamicsSpec::Model::kWaypoint;
  spec.scenario.dynamics.epochs = 12;
  spec.scenario.dynamics.speed_min = 4.0;
  spec.scenario.dynamics.speed_max = 16.0;
  spec.scenario.dynamics.refresh_interval = 3;
  spec.threads = 1;
  return spec;
}

TEST(DynamicExperiment, EpochLoopCountsAreConsistent) {
  for (const auto model :
       {DynamicsSpec::Model::kWaypoint, DynamicsSpec::Model::kChurn}) {
    ExperimentSpec spec = small_dynamic_spec();
    spec.scenario.dynamics.model = model;
    spec.selectors = {"olsr_mpr", "qolsr_mpr2", "fnbp"};
    const ExperimentResult result = run_experiment(spec);
    ASSERT_EQ(result.sweep.size(), 1u);
    const DensityStats& d = result.sweep.front();
    const DynamicsSpec& dyn = spec.scenario.dynamics;
    const std::size_t epochs_total = spec.scenario.runs * dyn.epochs;
    const std::size_t refreshes_total =
        spec.scenario.runs * (dyn.epochs / dyn.refresh_interval);
    ASSERT_EQ(d.protocols.size(), 3u);
    for (const ProtocolStats& p : d.protocols) {
      // One set-size sample per measured epoch; at most one packet each.
      EXPECT_EQ(p.set_size.count(), epochs_total) << p.name;
      EXPECT_LE(p.delivered + p.failed, epochs_total) << p.name;
      EXPECT_GT(p.delivered, 0u) << p.name;
      // Overhead and stretch sample exactly the delivered packets, and a
      // stretch is never below 1 (the optimum is an optimum).
      EXPECT_EQ(p.overhead.count(), p.delivered) << p.name;
      EXPECT_EQ(p.stretch.count(), p.delivered) << p.name;
      EXPECT_GE(p.stretch.min(), 1.0 - 1e-12) << p.name;
      EXPECT_GE(p.overhead.mean(), -1e-12) << p.name;
      // One re-advertisement count per refresh.
      EXPECT_EQ(p.readvertised.count(), refreshes_total) << p.name;
      EXPECT_TRUE(std::isfinite(p.overhead.mean())) << p.name;
      // Stale-link drops are a subset of all failures.
      EXPECT_LE(p.stale_losses, p.failed) << p.name;
    }
    // Per-run records are a static-sweep feature.
    EXPECT_TRUE(d.run_records.empty());
  }
}

TEST(DynamicExperiment, CsvIsDeterministicAtAFixedSeed) {
  auto render = [] {
    const ExperimentResult result = run_experiment(small_dynamic_spec());
    std::ostringstream os;
    CsvSink().write(result, os);
    return os.str();
  };
  const std::string first = render();
  EXPECT_EQ(first, render());
  // The dynamics CSV leads with the axis name and carries the epoch-loop
  // columns.
  EXPECT_EQ(first.rfind("metric,density,runs,epochs,", 0), 0u);
  EXPECT_NE(first.find("delivery_ratio"), std::string::npos);
  EXPECT_NE(first.find("stale_losses"), std::string::npos);
  EXPECT_NE(first.find("readvertised_mean"), std::string::npos);
}

TEST(DynamicExperiment, ThreadCountInvariance) {
  // The satellite: same aggregates at threads=1 vs. threads=0 (hardware
  // concurrency) — counters exactly, means to merge-order rounding,
  // mirroring the static-sweep invariance test.
  ExperimentSpec spec = small_dynamic_spec();
  spec.scenario.runs = 6;
  spec.threads = 1;
  const auto serial = run_experiment(spec).sweep;
  spec.threads = 0;
  const auto threaded = run_experiment(spec).sweep;

  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t di = 0; di < serial.size(); ++di) {
    const DensityStats& a = serial[di];
    const DensityStats& b = threaded[di];
    EXPECT_EQ(a.node_count.count(), b.node_count.count());
    EXPECT_NEAR(a.node_count.mean(), b.node_count.mean(), 1e-9);
    ASSERT_EQ(a.protocols.size(), b.protocols.size());
    for (std::size_t si = 0; si < a.protocols.size(); ++si) {
      const ProtocolStats& pa = a.protocols[si];
      const ProtocolStats& pb = b.protocols[si];
      EXPECT_EQ(pa.delivered, pb.delivered) << pa.name;
      EXPECT_EQ(pa.failed, pb.failed) << pa.name;
      EXPECT_EQ(pa.set_size.count(), pb.set_size.count()) << pa.name;
      EXPECT_EQ(pa.readvertised.count(), pb.readvertised.count()) << pa.name;
      EXPECT_NEAR(pa.set_size.mean(), pb.set_size.mean(), 1e-9) << pa.name;
      EXPECT_NEAR(pa.overhead.mean(), pb.overhead.mean(), 1e-9) << pa.name;
      EXPECT_NEAR(pa.stretch.mean(), pb.stretch.mean(), 1e-9) << pa.name;
      EXPECT_NEAR(pa.readvertised.mean(), pb.readvertised.mean(), 1e-9)
          << pa.name;
    }
  }
}

TEST(DynamicExperiment, RefreshLagCausesStaleLosses) {
  // The load-bearing qualitative claim: with per-epoch refreshes the
  // advertised state tracks the topology and (nearly) everything
  // delivers; with a long lag under fast motion, stale-route losses
  // appear. Compared at identical seeds so only the lag differs.
  ExperimentSpec fresh = small_dynamic_spec();
  fresh.scenario.runs = 4;
  fresh.scenario.dynamics.epochs = 15;
  fresh.scenario.dynamics.speed_min = 15.0;
  fresh.scenario.dynamics.speed_max = 15.0;
  fresh.scenario.dynamics.refresh_interval = 1;
  ExperimentSpec stale = fresh;
  stale.scenario.dynamics.refresh_interval = 15;

  const auto fresh_sweep = run_experiment(fresh).sweep;
  const auto stale_sweep = run_experiment(stale).sweep;
  std::size_t fresh_failed = 0, stale_failed = 0;
  std::size_t fresh_stale_drops = 0, stale_stale_drops = 0;
  for (const ProtocolStats& p : fresh_sweep.front().protocols) {
    fresh_failed += p.failed;
    fresh_stale_drops += p.stale_losses;
  }
  for (const ProtocolStats& p : stale_sweep.front().protocols) {
    stale_failed += p.failed;
    stale_stale_drops += p.stale_losses;
  }
  EXPECT_GT(stale_failed, fresh_failed);
  // The lagged run's extra losses are specifically vanished-link drops.
  EXPECT_GT(stale_stale_drops, fresh_stale_drops);
}

TEST(DynamicExperiment, SpeedAxisSweepsTheWaypointSpeed) {
  ExperimentSpec spec = small_dynamic_spec();
  spec.scenario.sweep_axis = Scenario::SweepAxis::kSpeed;
  spec.scenario.densities = {2.0, 20.0};  // m/s
  spec.scenario.field.degree = 7.0;
  spec.scenario.runs = 3;
  spec.scenario.dynamics.refresh_interval = 4;
  const ExperimentResult result = run_experiment(spec);
  ASSERT_EQ(result.sweep.size(), 2u);
  EXPECT_EQ(result.sweep[0].density, 2.0);
  EXPECT_EQ(result.sweep[1].density, 20.0);
  // Faster motion, more re-advertisements per refresh — a monotonicity
  // the waypoint model must produce at any sane seed.
  double slow = 0.0, fast = 0.0;
  for (const ProtocolStats& p : result.sweep[0].protocols)
    slow += p.readvertised.mean();
  for (const ProtocolStats& p : result.sweep[1].protocols)
    fast += p.readvertised.mean();
  EXPECT_GT(fast, slow);
}

TEST(DynamicExperiment, AllRoutingModelsRun) {
  for (const bool hop_by_hop : {false, true}) {
    ExperimentSpec spec = small_dynamic_spec();
    spec.scenario.hop_by_hop = hop_by_hop;
    spec.selectors = {"qolsr_mpr2", "fnbp"};
    const auto sweep = run_experiment(spec).sweep;
    for (const ProtocolStats& p : sweep.front().protocols)
      EXPECT_GT(p.delivered, 0u) << p.name << " hbh=" << hop_by_hop;
  }
  ExperimentSpec chain = small_dynamic_spec();
  chain.scenario.routing_model = Scenario::RoutingModel::kAnsChain;
  chain.selectors = {"fnbp"};
  const auto sweep = run_experiment(chain).sweep;
  const ProtocolStats& p = sweep.front().protocols.front();
  EXPECT_GT(p.delivered + p.failed, 0u);
}

TEST(FigureMSpec, CannedMobilityFigure) {
  const FigureConfig config{25, 9, 3};
  const ExperimentSpec spec = figure_m_spec(config);
  EXPECT_EQ(spec.name, "figM_delivery_vs_speed");
  EXPECT_EQ(spec.metric, MetricId::kBandwidth);
  EXPECT_EQ(spec.selectors,
            (std::vector<std::string>{"olsr_mpr", "qolsr_mpr1", "qolsr_mpr2",
                                      "topology_filtering", "fnbp"}));
  EXPECT_EQ(spec.scenario.sweep_axis, Scenario::SweepAxis::kSpeed);
  EXPECT_EQ(spec.scenario.dynamics.model, DynamicsSpec::Model::kWaypoint);
  EXPECT_EQ(spec.scenario.dynamics.refresh_interval, 5u);
  EXPECT_EQ(spec.scenario.pair_mode, Scenario::PairMode::kAnyConnected);
  EXPECT_EQ(spec.scenario.runs, config.runs);
  EXPECT_EQ(spec.scenario.seed, config.seed);
  EXPECT_EQ(spec.threads, config.threads);
}

TEST(ParseExperimentSpec, MobilityFlagsMapOntoTheDynamicsBlock) {
  const ExperimentSpec spec = parse_experiment_spec({
      "--mobility=churn",
      "--epochs=33",
      "--epoch-duration=0.5",
      "--speed=2:9",
      "--pause=4",
      "--churn-down=0.1",
      "--churn-up=0.6",
      "--refresh=7",
      "--axis=speed",
      "--degree=12",
  });
  const DynamicsSpec& dyn = spec.scenario.dynamics;
  EXPECT_EQ(dyn.model, DynamicsSpec::Model::kChurn);
  EXPECT_EQ(dyn.epochs, 33u);
  EXPECT_EQ(dyn.epoch_duration, 0.5);
  EXPECT_EQ(dyn.speed_min, 2.0);
  EXPECT_EQ(dyn.speed_max, 9.0);
  EXPECT_EQ(dyn.pause_epochs, 4u);
  EXPECT_EQ(dyn.link_down_rate, 0.1);
  EXPECT_EQ(dyn.link_up_rate, 0.6);
  EXPECT_EQ(dyn.refresh_interval, 7u);
  EXPECT_EQ(spec.scenario.sweep_axis, Scenario::SweepAxis::kSpeed);
  EXPECT_EQ(spec.scenario.field.degree, 12.0);

  // Single-value --speed pins both ends.
  const ExperimentSpec fixed = parse_experiment_spec({"--speed=6"});
  EXPECT_EQ(fixed.scenario.dynamics.speed_min, 6.0);
  EXPECT_EQ(fixed.scenario.dynamics.speed_max, 6.0);

  EXPECT_THROW(parse_experiment_spec({"--mobility=teleport"}),
               ExperimentError);
  EXPECT_THROW(parse_experiment_spec({"--axis=metric"}), ExperimentError);
  EXPECT_THROW(parse_experiment_spec({"--epochs=many"}), ExperimentError);
}

TEST(DynamicExperiment, RejectsInvalidDynamicsSpecs) {
  // Speed axis without the waypoint model.
  ExperimentSpec no_model = small_dynamic_spec();
  no_model.scenario.sweep_axis = Scenario::SweepAxis::kSpeed;
  no_model.scenario.dynamics.model = DynamicsSpec::Model::kChurn;
  EXPECT_THROW(run_experiment(no_model), ExperimentError);

  ExperimentSpec no_epochs = small_dynamic_spec();
  no_epochs.scenario.dynamics.epochs = 0;
  EXPECT_THROW(run_experiment(no_epochs), ExperimentError);

  ExperimentSpec no_refresh = small_dynamic_spec();
  no_refresh.scenario.dynamics.refresh_interval = 0;
  EXPECT_THROW(run_experiment(no_refresh), ExperimentError);

  // Inverted or negative speed ranges and out-of-range churn
  // probabilities must fail loudly, not silently degenerate.
  ExperimentSpec inverted = small_dynamic_spec();
  inverted.scenario.dynamics.speed_min = 10.0;
  inverted.scenario.dynamics.speed_max = 2.0;
  EXPECT_THROW(run_experiment(inverted), ExperimentError);

  ExperimentSpec negative = small_dynamic_spec();
  negative.scenario.dynamics.speed_min = -5.0;
  negative.scenario.dynamics.speed_max = 5.0;
  EXPECT_THROW(run_experiment(negative), ExperimentError);

  ExperimentSpec bad_rate = small_dynamic_spec();
  bad_rate.scenario.dynamics.model = DynamicsSpec::Model::kChurn;
  bad_rate.scenario.dynamics.link_down_rate = 1.5;
  EXPECT_THROW(run_experiment(bad_rate), ExperimentError);

  ExperimentSpec bad_duration = small_dynamic_spec();
  bad_duration.scenario.dynamics.epoch_duration = 0.0;
  EXPECT_THROW(run_experiment(bad_duration), ExperimentError);

  // Per-run records are static-only; asking for them under a mobility
  // model must fail loudly rather than silently emit nothing.
  ExperimentSpec per_run = small_dynamic_spec();
  per_run.per_run = true;
  EXPECT_THROW(run_experiment(per_run), ExperimentError);

  // Speed-axis sweep values bypass the speed_min/max knobs, so they get
  // their own non-negativity check (a negative speed would walk nodes
  // out of the field).
  ExperimentSpec bad_axis = small_dynamic_spec();
  bad_axis.scenario.sweep_axis = Scenario::SweepAxis::kSpeed;
  bad_axis.scenario.densities = {-5.0};
  EXPECT_THROW(run_experiment(bad_axis), ExperimentError);
}

}  // namespace
}  // namespace qolsr
