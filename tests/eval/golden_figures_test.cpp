// Golden end-to-end pins for every canned paper figure: a trimmed run of
// each of Figs. 6-9 through the experiment engine and the CSV sink must
// reproduce these byte-exact documents (fixed seed, threads=1). Any
// engine change that alters sampling, selection, routing, aggregation or
// formatting shows up as a diff here. The Fig. 8 golden predates the PR-3
// CSR/overlay refactor (it moved here from
// tests/routing/forwarding_equivalence_test.cpp); the others were pinned
// against it at the same settings.
//
// Figs. 6 and 8 run the *same* bandwidth sweep (6 reads the set-size
// columns, 8 the overhead columns), and Figs. 7 and 9 the same delay
// sweep — the long-format CSV carries both, so each pair shares one
// golden document and the test also pins that sharing.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "eval/figures.hpp"
#include "eval/result_sink.hpp"

namespace qolsr {
namespace {

std::string run_figure_csv(int figure, std::vector<double> densities) {
  FigureConfig config;
  config.runs = 2;
  config.seed = 7;
  config.threads = 1;
  ExperimentSpec spec = figure_spec(figure, config);
  spec.scenario.densities = std::move(densities);
  const ExperimentResult result = run_experiment(spec);
  std::ostringstream os;
  CsvSink().write(result, os);
  return os.str();
}

constexpr const char* kBandwidthGolden =
    R"(metric,density,runs,avg_nodes,protocol,set_size_mean,set_size_stddev,delivered,failed,overhead_mean,overhead_stddev,path_hops_mean
bandwidth,10,2,307.5,qolsr_mpr2_bandwidth,5.379743823,0.1095916786,2,0,0.5,0,2
bandwidth,10,2,307.5,topology_filtering_bandwidth,4.237577213,0.02222049254,2,0,0,0,6.5
bandwidth,10,2,307.5,fnbp_bandwidth,1.970357717,0.04646782907,2,0,0,0,6.5
bandwidth,15,2,486,qolsr_mpr2_bandwidth,8.592636383,0.1865552961,2,0,0.5,0.1414213562,2
bandwidth,15,2,486,topology_filtering_bandwidth,5.735490802,0.1934144755,2,0,0,0,4.5
bandwidth,15,2,486,fnbp_bandwidth,2.001487471,0.02612421407,2,0,0,0,4.5
bandwidth,20,2,659.5,qolsr_mpr2_bandwidth,11.05632912,0.3791162089,2,0,0.4,0.2828427125,2
bandwidth,20,2,659.5,topology_filtering_bandwidth,7.023540425,0.2234559172,2,0,0,0,5
bandwidth,20,2,659.5,fnbp_bandwidth,1.838675066,0.06858440069,2,0,0,0,5
)";

constexpr const char* kDelayGolden =
    R"(metric,density,runs,avg_nodes,protocol,set_size_mean,set_size_stddev,delivered,failed,overhead_mean,overhead_stddev,path_hops_mean
delay,5,2,151.5,qolsr_mpr2_delay,2.458925303,0.01537724587,2,0,0,0,2
delay,5,2,151.5,topology_filtering_delay,2.24699294,0.04557704739,2,0,0,0,2
delay,5,2,151.5,fnbp_delay,2.174583805,0.02859736307,2,0,0,0,2
delay,10,2,325,qolsr_mpr2_delay,5.863619988,0.1386514117,2,0,0.125,0.1767766953,2
delay,10,2,325,topology_filtering_delay,4.055692494,0.04713330153,2,0,0,0,2.5
delay,10,2,325,fnbp_delay,4.095059774,0.01244195813,2,0,0,0,2.5
delay,15,2,497.5,qolsr_mpr2_delay,8.528147181,0.3026117256,2,0,0.375,0.5303300859,2
delay,15,2,497.5,topology_filtering_delay,5.59199017,0.002035037059,2,0,0,0,2.5
delay,15,2,497.5,fnbp_delay,5.442612249,0.0942262173,2,0,0,0,2.5
)";

TEST(GoldenFigures, Figure6AnsSizeBandwidthCsv) {
  EXPECT_EQ(run_figure_csv(6, {10, 15, 20}), kBandwidthGolden);
}

TEST(GoldenFigures, Figure8BandwidthOverheadCsv) {
  // The pre-PR-3 pin: the figure most sensitive to forwarding changes.
  EXPECT_EQ(run_figure_csv(8, {10, 15, 20}), kBandwidthGolden);
}

TEST(GoldenFigures, Figure7AnsSizeDelayCsv) {
  EXPECT_EQ(run_figure_csv(7, {5, 10, 15}), kDelayGolden);
}

TEST(GoldenFigures, Figure9DelayOverheadCsv) {
  EXPECT_EQ(run_figure_csv(9, {5, 10, 15}), kDelayGolden);
}

}  // namespace
}  // namespace qolsr
