// Pins the machine-readable emitters: a hand-built, exactly-representable
// ExperimentResult must render to these byte-for-byte CSV and JSON
// documents. Downstream tooling (BENCH_sweep.json, plotting scripts)
// parses these formats — changing them is a breaking change and must show
// up here.
#include "eval/result_sink.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace qolsr {
namespace {

ExperimentResult golden_result() {
  ExperimentResult result;
  result.spec.name = "golden";
  result.spec.metric = MetricId::kBandwidth;
  result.spec.selectors = {"fnbp"};
  result.spec.scenario.runs = 2;
  result.spec.scenario.seed = 1;
  result.spec.threads = 1;
  result.spec.per_run = true;

  DensityStats d;
  d.density = 10.0;
  d.runs = 2;
  d.node_count.add(20.0);
  d.node_count.add(22.0);

  ProtocolStats p;
  p.name = "fnbp_bandwidth";
  // Equal samples keep every derived statistic exactly representable.
  p.set_size.add(2.5);
  p.set_size.add(2.5);
  p.overhead.add(0.125);
  p.path_hops.add(2.0);
  p.delivered = 1;
  p.failed = 1;
  d.protocols.push_back(p);

  RunRecord r0;
  r0.run_index = 0;
  r0.nodes = 20;
  r0.protocols.push_back({2.5, true, 7.0, 0.125, 2});
  RunRecord r1;
  r1.run_index = 1;
  r1.nodes = 22;
  r1.protocols.push_back({2.5, false, 0.0, 0.0, 0});
  d.run_records = {r0, r1};

  result.sweep.push_back(std::move(d));
  return result;
}

std::string render(const ResultSink& sink) {
  std::ostringstream os;
  sink.write(golden_result(), os);
  return os.str();
}

TEST(ResultSink, GoldenCsv) {
  const std::string expected =
      "metric,density,runs,avg_nodes,protocol,set_size_mean,set_size_stddev,"
      "delivered,failed,overhead_mean,overhead_stddev,path_hops_mean\n"
      "bandwidth,10,2,21,fnbp_bandwidth,2.5,0,1,1,0.125,0,2\n"
      "\n"
      "density,run,nodes,protocol,set_size,delivered,value,overhead,"
      "path_hops\n"
      "10,0,20,fnbp_bandwidth,2.5,1,7,0.125,2\n"
      "10,1,22,fnbp_bandwidth,2.5,0,,,\n";
  EXPECT_EQ(render(CsvSink{}), expected);
}

TEST(ResultSink, CsvWithoutRecordsHasNoSecondBlock) {
  ExperimentResult result = golden_result();
  result.sweep.front().run_records.clear();
  std::ostringstream os;
  CsvSink{}.write(result, os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.find("\n\n"), std::string::npos);
  EXPECT_EQ(csv.find("density,run,"), std::string::npos);
}

TEST(ResultSink, GoldenJson) {
  const std::string expected = R"({
  "name": "golden",
  "metric": "bandwidth",
  "metric_kind": "concave",
  "selectors": ["fnbp"],
  "runs": 2,
  "seed": 1,
  "threads": 1,
  "densities": [
    {
      "density": 10,
      "runs": 2,
      "avg_nodes": 21,
      "protocols": [
        {"name": "fnbp_bandwidth", "delivered": 1, "failed": 1,
         "set_size": {"mean": 2.5, "stddev": 0, "min": 2.5, "max": 2.5},
         "overhead": {"mean": 0.125, "stddev": 0, "min": 0.125, "max": 0.125},
         "path_hops": {"mean": 2, "stddev": 0, "min": 2, "max": 2}}
      ],
      "run_records": [
        {"run": 0, "nodes": 20, "protocols": [{"set_size": 2.5, "delivered": true, "value": 7, "overhead": 0.125, "hops": 2}]},
        {"run": 1, "nodes": 22, "protocols": [{"set_size": 2.5, "delivered": false}]}
      ]
    }
  ]
}
)";
  EXPECT_EQ(render(JsonSink{}), expected);
}

TEST(ResultSink, JsonKeepsNonFiniteValuesOutOfTheDocument) {
  // An infinite overhead (zero additive optimum beaten by a nonzero route,
  // see qos_overhead) must render as JSON null, never as a bare `inf`.
  ExperimentResult result = golden_result();
  result.sweep.front().protocols.front().overhead.add(
      std::numeric_limits<double>::infinity());
  std::ostringstream os;
  JsonSink{}.write(result, os);
  const std::string json = os.str();
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_NE(json.find("\"mean\": null"), std::string::npos);
}

TEST(ResultSink, PrettyTableReportsRecordedRunCount) {
  const std::string text = render(PrettyTableSink{});
  EXPECT_NE(text.find("2 per-run records"), std::string::npos);
}

TEST(ResultSink, PrettyTableNamesEverySection) {
  const std::string text = render(PrettyTableSink{});
  EXPECT_NE(text.find("golden"), std::string::npos);
  EXPECT_NE(text.find("metric=bandwidth"), std::string::npos);
  EXPECT_NE(text.find("advertised set size"), std::string::npos);
  EXPECT_NE(text.find("QoS overhead"), std::string::npos);
  EXPECT_NE(text.find("diagnostics"), std::string::npos);
  EXPECT_NE(text.find("fnbp_bandwidth"), std::string::npos);
}

TEST(ResultSink, FactoryCoversTheThreeFormatsAndRejectsOthers) {
  EXPECT_EQ(make_result_sink("table")->format_name(), "table");
  EXPECT_EQ(make_result_sink("csv")->format_name(), "csv");
  EXPECT_EQ(make_result_sink("json")->format_name(), "json");
  EXPECT_THROW(make_result_sink("xml"), ExperimentError);
  EXPECT_THROW(make_result_sink(""), ExperimentError);
}

}  // namespace
}  // namespace qolsr
