// Traffic-workload contracts at the experiment level: a packet sweep with
// no traffic flags (or --load=0) keeps its pre-traffic byte layout,
// schedules are deterministic and thread-count invariant, every offered
// packet is charged to delivery or a drop fate, QoS distributions degrade
// monotonically with offered load, and the oracle rejects the knobs.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "eval/experiment.hpp"
#include "eval/figures.hpp"
#include "eval/result_sink.hpp"

namespace qolsr {
namespace {

std::string run_to_csv(const std::vector<std::string>& flags) {
  const ExperimentSpec spec = parse_experiment_spec(flags);
  const ExperimentResult result = run_experiment(spec);
  std::ostringstream os;
  CsvSink{}.write(result, os);
  return os.str();
}

/// The small fault-free packet scenario the robustness golden pin runs —
/// the byte-stability baseline traffic must not disturb.
std::vector<std::string> base_flags() {
  return {"--backend=packet", "--densities=8", "--field=400x400",
          "--runs=2",         "--seed=7",      "--threads=1",
          "--format=csv"};
}

TEST(TrafficExperiment, LoadZeroIsByteIdenticalToNoTrafficFlags) {
  // An inactive spec is contractually invisible: same RNG draws, same
  // event order, same columns — the CLI's --load=0 must reproduce the
  // no-flags run byte-for-byte.
  const std::string plain = run_to_csv(base_flags());
  auto flags = base_flags();
  flags.push_back("--traffic=poisson");
  flags.push_back("--load=0");
  EXPECT_EQ(run_to_csv(flags), plain);
  // And the traffic columns only exist when a workload can have run.
  EXPECT_EQ(plain.find("queue_drops"), std::string::npos);
  EXPECT_EQ(plain.find("latency_p95"), std::string::npos);
}

TEST(TrafficExperiment, ScheduleIsThreadCountInvariant) {
  auto with_threads = [](const std::string& threads) {
    return run_to_csv({"--backend=packet", "--densities=8", "--field=400x400",
                       "--runs=4", "--seed=11", threads, "--format=csv",
                       "--traffic=poisson", "--flows=8", "--load=2",
                       "--traffic-duration=3", "--pairs=any"});
  };
  const std::string one = with_threads("--threads=1");
  EXPECT_EQ(one, with_threads("--threads=3"));
  // The traffic columns are present and the workload did something.
  EXPECT_NE(one.find("latency_p95"), std::string::npos);
  EXPECT_NE(one.find("flow_delivery_p50"), std::string::npos);
}

TEST(TrafficExperiment, EveryOfferedPacketIsChargedToAFate) {
  const ExperimentSpec spec = parse_experiment_spec(
      {"--backend=packet", "--densities=8", "--field=400x400", "--runs=2",
       "--seed=5", "--threads=2", "--traffic=poisson", "--flows=8",
       "--load=2", "--traffic-duration=3", "--queue-bytes=2000",
       "--pairs=any"});
  const ExperimentResult result = run_experiment(spec);
  ASSERT_EQ(result.sweep.size(), 1u);
  for (const ProtocolStats& p : result.sweep[0].protocols) {
    SCOPED_TRACE(p.name);
    ASSERT_TRUE(p.traffic.measured());
    EXPECT_EQ(p.traffic.delivered + p.traffic.queue_drops +
                  p.traffic.no_route_drops + p.traffic.loop_drops +
                  p.traffic.medium_drops,
              p.traffic.offered);
    // Distributions carry one sample per flow per run / per delivery.
    EXPECT_EQ(p.traffic.flow_delivery.count(), 8u * 2u);
    EXPECT_EQ(p.traffic.latency.count(), p.traffic.delivered);
  }
}

TEST(TrafficExperiment, LatencyGrowsAndDeliveryDecaysWithLoad) {
  const ExperimentSpec spec = parse_experiment_spec(
      {"--backend=packet", "--axis=load", "--densities=0.25,4", "--degree=8",
       "--field=400x400", "--runs=2", "--seed=7", "--threads=2",
       "--traffic=poisson", "--flows=16", "--traffic-duration=5",
       "--pairs=any"});
  const ExperimentResult result = run_experiment(spec);
  ASSERT_EQ(result.sweep.size(), 2u);
  const DensityStats& light = result.sweep[0];
  const DensityStats& heavy = result.sweep[1];

  double light_delivered = 0.0, heavy_delivered = 0.0;
  double light_p95 = 0.0, heavy_p95 = 0.0;
  std::size_t heavy_queue_drops = 0;
  for (std::size_t si = 0; si < light.protocols.size(); ++si) {
    light_delivered += light.protocols[si].traffic.delivery_ratio();
    heavy_delivered += heavy.protocols[si].traffic.delivery_ratio();
    light_p95 +=
        summarize_distribution(light.protocols[si].traffic.latency).p95;
    heavy_p95 +=
        summarize_distribution(heavy.protocols[si].traffic.latency).p95;
    heavy_queue_drops += heavy.protocols[si].traffic.queue_drops;
  }
  EXPECT_GT(heavy_p95, light_p95);
  EXPECT_LT(heavy_delivered, light_delivered);
  EXPECT_GT(heavy_queue_drops, 0u);
}

TEST(TrafficExperiment, PerRunRecordsCarryTheTrafficOutcome) {
  const ExperimentSpec spec = parse_experiment_spec(
      {"--backend=packet", "--densities=8", "--field=400x400", "--runs=2",
       "--seed=7", "--threads=1", "--per-run", "--traffic=cbr", "--flows=4",
       "--traffic-duration=2", "--pairs=any"});
  const ExperimentResult result = run_experiment(spec);
  ASSERT_EQ(result.sweep.size(), 1u);
  ASSERT_EQ(result.sweep[0].run_records.size(), 2u);
  for (const RunRecord& r : result.sweep[0].run_records) {
    for (const RunRecord::Protocol& rp : r.protocols) {
      EXPECT_GT(rp.traffic_offered, 0u);
      EXPECT_LE(rp.traffic_delivered, rp.traffic_offered);
    }
  }
  std::ostringstream os;
  CsvSink{}.write(result, os);
  EXPECT_NE(os.str().find(",traffic_offered,traffic_delivered,"
                          "traffic_latency_p95"),
            std::string::npos);
}

TEST(TrafficExperiment, FigureLSpecIsACannedLoadSweep) {
  const ExperimentSpec spec = figure_l_spec();
  EXPECT_EQ(spec.backend, BackendId::kPacket);
  EXPECT_EQ(spec.scenario.sweep_axis, Scenario::SweepAxis::kLoad);
  EXPECT_EQ(spec.scenario.traffic.arrival, TrafficSpec::Arrival::kPoisson);
  EXPECT_TRUE(spec.scenario.traffic.active());
  EXPECT_EQ(spec.selectors.size(), 5u);
  EXPECT_EQ(spec.scenario.densities.size(), 5u);
}

TEST(TrafficExperiment, OracleBackendRejectsTrafficKnobs) {
  // Semantic validation happens when the experiment runs (parse only
  // checks flag vocabulary) — mirror the CLI's parse-then-run path.
  EXPECT_THROW(run_experiment(parse_experiment_spec(
                   {"--densities=10", "--runs=1", "--traffic=poisson"})),
               ExperimentError);
  EXPECT_THROW(run_experiment(parse_experiment_spec(
                   {"--axis=load", "--densities=1", "--runs=1"})),
               ExperimentError);
  // The load axis needs an arrival process even on the packet backend.
  EXPECT_THROW(run_experiment(parse_experiment_spec(
                   {"--backend=packet", "--axis=load", "--densities=1",
                    "--runs=1"})),
               ExperimentError);
  EXPECT_THROW(run_experiment(parse_experiment_spec(
                   {"--backend=packet", "--densities=8", "--runs=1",
                    "--traffic=pareto", "--pareto-shape=0.9"})),
               ExperimentError);
  // Unknown vocabulary is rejected at parse time.
  EXPECT_THROW(parse_experiment_spec({"--traffic=bogus"}), ExperimentError);
  EXPECT_THROW(parse_experiment_spec({"--pattern=bogus"}), ExperimentError);
}

TEST(TrafficExperiment, UnknownAxisErrorListsTheValidNames) {
  try {
    parse_experiment_spec({"--axis=bogus"});
    FAIL() << "expected ExperimentError";
  } catch (const ExperimentError& e) {
    EXPECT_NE(std::string(e.what()).find("density|speed|loss|load"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace qolsr
