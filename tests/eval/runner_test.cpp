#include "eval/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fnbp.hpp"
#include "eval/figures.hpp"

namespace qolsr {
namespace {

Scenario small_scenario() {
  Scenario s;
  s.densities = {8.0};
  s.runs = 6;
  s.seed = 7;
  s.field.width = 400.0;
  s.field.height = 400.0;
  return s;
}

TEST(SampleRun, ProducesConnectedPairAndOptimum) {
  Scenario s = small_scenario();
  util::Rng rng(1);
  const SampledRun run = sample_run<BandwidthMetric>(s, 8.0, rng);
  ASSERT_GE(run.graph.node_count(), 2u);
  EXPECT_NE(run.source, run.destination);
  EXPECT_TRUE(is_connected(run.graph, run.source, run.destination));
  EXPECT_GT(run.optimal_value, 0.0);
  // The optimum really is the full-graph Dijkstra value.
  const auto r = dijkstra<BandwidthMetric>(run.graph, run.source);
  EXPECT_EQ(run.optimal_value, r.value[run.destination]);
}

TEST(QosOverhead, DefinitionsMatchPaper) {
  // Bandwidth overhead (b*−b)/b*; delay overhead (d−d*)/d* (§IV-A).
  EXPECT_DOUBLE_EQ(qos_overhead<BandwidthMetric>(8.0, 10.0), 0.2);
  EXPECT_DOUBLE_EQ(qos_overhead<BandwidthMetric>(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(qos_overhead<DelayMetric>(12.0, 10.0), 0.2);
  EXPECT_DOUBLE_EQ(qos_overhead<DelayMetric>(10.0, 10.0), 0.0);
}

TEST(QosOverhead, ZeroOptimumIsNeverNan) {
  // 0/0 guards for both families: a route matching a zero optimum is
  // exactly optimal, anything else is unboundedly worse (never NaN).
  EXPECT_DOUBLE_EQ(qos_overhead<BandwidthMetric>(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(qos_overhead<LossMetric>(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(qos_overhead<LossMetric>(1.0, 0.0)));
}

TEST(RunSweep, CollectsStatsForEveryProtocolAndDensity) {
  Scenario s = small_scenario();
  s.densities = {6.0, 9.0};
  const QolsrSelector<BandwidthMetric> qolsr(QolsrVariant::kMpr2);
  const FnbpSelector<BandwidthMetric> fnbp;
  const auto sweep =
      run_sweep<BandwidthMetric>(s, {&qolsr, &fnbp});
  ASSERT_EQ(sweep.size(), 2u);
  for (const DensityStats& d : sweep) {
    ASSERT_EQ(d.protocols.size(), 2u);
    EXPECT_EQ(d.protocols[0].name, "qolsr_mpr2_bandwidth");
    EXPECT_EQ(d.protocols[1].name, "fnbp_bandwidth");
    for (const ProtocolStats& p : d.protocols) {
      EXPECT_EQ(p.set_size.count(), s.runs);
      EXPECT_EQ(p.delivered + p.failed, s.runs);
      EXPECT_GT(p.set_size.mean(), 0.0);
    }
  }
}

TEST(RunSweep, OverheadIsNonNegativeAndBoundedByOne) {
  Scenario s = small_scenario();
  const FnbpSelector<BandwidthMetric> fnbp;
  const auto sweep = run_sweep<BandwidthMetric>(s, {&fnbp});
  const ProtocolStats& p = sweep[0].protocols[0];
  // b ≤ b* always, so overhead ∈ [0,1].
  EXPECT_GE(p.overhead.min(), 0.0);
  EXPECT_LE(p.overhead.max(), 1.0);
}

TEST(RunSweep, DeterministicForFixedSeed) {
  Scenario s = small_scenario();
  const FnbpSelector<BandwidthMetric> fnbp;
  const auto a = run_sweep<BandwidthMetric>(s, {&fnbp});
  const auto b = run_sweep<BandwidthMetric>(s, {&fnbp});
  EXPECT_EQ(a[0].protocols[0].set_size.mean(),
            b[0].protocols[0].set_size.mean());
  EXPECT_EQ(a[0].protocols[0].overhead.mean(),
            b[0].protocols[0].overhead.mean());
}

TEST(Figures, TablesHaveExpectedShape) {
  FigureConfig config;
  config.runs = 2;  // smoke test of the full harness path
  const auto sweep = bandwidth_sweep(config);
  ASSERT_EQ(sweep.size(), bandwidth_densities().size());
  const auto sizes = set_size_table(sweep);
  EXPECT_EQ(sizes.rows(), sweep.size());
  const auto overheads = overhead_table(sweep);
  EXPECT_EQ(overheads.rows(), sweep.size());
  const auto diag = diagnostics_table(sweep);
  EXPECT_EQ(diag.rows(), sweep.size());
  EXPECT_FALSE(sizes.to_csv().empty());
}

}  // namespace
}  // namespace qolsr
