// Backend-equivalence suite: on static topologies the packet backend's
// *converged distributed state* must reproduce the oracle backend's direct
// graph computations — per-node ANS for every registry selector across
// multiple seeds, the TC-learned topology base against the oracle
// advertised topology, and (through the full experiment engine) identical
// set-size aggregates from both backends on the same sampled deployments.
// This is the contract that makes the oracle path a valid stand-in for the
// distributed protocol in the figure reproductions, and the packet path a
// valid measurement of its control-plane cost.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/fnbp.hpp"
#include "eval/backend.hpp"
#include "eval/packet_runner.hpp"
#include "eval/result_sink.hpp"
#include "graph/connectivity.hpp"
#include "routing/advertised_topology.hpp"
#include "sim/simulator.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

constexpr std::uint64_t kGraphSeeds[] = {11, 4242};

/// All five paper protocols by registry name, with their packet-backend
/// flooding roles resolved the same way the engine resolves them.
std::vector<std::string> all_selector_names() {
  return SelectorRegistry::builtin().names();
}

TEST(BackendEquivalence, ConvergedAnsMatchesOracleForEveryRegistrySelector) {
  const SelectorRegistry& registry = SelectorRegistry::builtin();
  for (const std::uint64_t graph_seed : kGraphSeeds) {
    const Graph g = testing::random_geometric_graph(graph_seed, 6.0, 250.0);
    for (const std::string& name : all_selector_names()) {
      SCOPED_TRACE("selector " + name + " graph seed " +
                   std::to_string(graph_seed));
      const auto ans = registry.create(name, MetricId::kBandwidth);
      const auto flooding =
          registry.create_flooding(name, MetricId::kBandwidth);
      Simulator sim(g, *flooding, *ans,
                    [](const Graph& graph, NodeId self, NodeId dest) {
                      return compute_next_hop<BandwidthMetric>(graph, self,
                                                               dest);
                    });
      const ConvergenceReport report = sim.run_to_convergence();
      EXPECT_TRUE(report.converged);
      EXPECT_LE(report.converged_at, report.end_time);
      for (NodeId u = 0; u < g.node_count(); ++u)
        EXPECT_EQ(sim.node(u).ans(), ans->select(LocalView(g, u)))
            << "node " << u;
    }
  }
}

TEST(BackendEquivalence, ConvergedTopologyBaseEqualsOracleAdvertisedGraph) {
  const SelectorRegistry& registry = SelectorRegistry::builtin();
  const Graph g = testing::random_geometric_graph(kGraphSeeds[0], 6.0, 250.0);
  for (const std::string& name : all_selector_names()) {
    SCOPED_TRACE("selector " + name);
    const auto ans = registry.create(name, MetricId::kBandwidth);
    const auto flooding = registry.create_flooding(name, MetricId::kBandwidth);
    Simulator sim(g, *flooding, *ans,
                  [](const Graph& graph, NodeId self, NodeId dest) {
                    return compute_next_hop<BandwidthMetric>(graph, self,
                                                             dest);
                  });
    ASSERT_TRUE(sim.run_to_convergence().converged);

    std::vector<std::vector<NodeId>> oracle_ans(g.node_count());
    for (NodeId u = 0; u < g.node_count(); ++u)
      oracle_ans[u] = ans->select(LocalView(g, u));
    const Graph oracle_adv = build_advertised_topology(g, oracle_ans);

    // Once converged, every node has learned exactly the advertised
    // topology of *its component*: nothing missing (ideal MAC flooding —
    // but a flood cannot cross a component boundary) and nothing extra
    // anywhere (transient advertisements have expired within the dwell
    // window).
    const Components components = connected_components(g);
    for (NodeId u = 0; u < g.node_count(); ++u) {
      const Graph known = sim.node(u).topology().to_graph(g.node_count());
      for (NodeId a = 0; a < g.node_count(); ++a) {
        if (components.connected(u, a))
          for (const Edge& e : oracle_adv.neighbors(a))
            if (a < e.to)
              EXPECT_TRUE(known.has_edge(a, e.to))
                  << "node " << u << " missing " << a << "-" << e.to;
        for (const Edge& e : known.neighbors(a))
          if (a < e.to)
            EXPECT_TRUE(oracle_adv.has_edge(a, e.to))
                << "node " << u << " holds stale " << a << "-" << e.to;
      }
    }
  }
}

ExperimentSpec small_spec(BackendId backend) {
  ExperimentSpec spec;
  spec.backend = backend;
  spec.selectors = all_selector_names();
  spec.scenario.densities = {6};
  spec.scenario.field.width = 300.0;
  spec.scenario.field.height = 300.0;
  spec.scenario.runs = 3;
  spec.scenario.seed = 9;
  spec.threads = 1;
  return spec;
}

TEST(BackendEquivalence, BothBackendsAgreeOnSetSizesOfTheSameDeployments) {
  // Same scenario seed ⇒ both backends sample the identical deployments
  // and pairs (the packet backend reuses sample_run's RNG stream), and a
  // converged control plane selects exactly the oracle sets — so the
  // set-size aggregates must agree to the last bit, for all five
  // selectors at once.
  const ExperimentResult oracle =
      run_experiment(small_spec(BackendId::kOracle));
  const ExperimentResult packet =
      run_experiment(small_spec(BackendId::kPacket));
  ASSERT_EQ(oracle.sweep.size(), packet.sweep.size());
  for (std::size_t di = 0; di < oracle.sweep.size(); ++di) {
    ASSERT_EQ(oracle.sweep[di].protocols.size(),
              packet.sweep[di].protocols.size());
    EXPECT_DOUBLE_EQ(oracle.sweep[di].node_count.mean(),
                     packet.sweep[di].node_count.mean());
    for (std::size_t si = 0; si < oracle.sweep[di].protocols.size(); ++si) {
      const ProtocolStats& o = oracle.sweep[di].protocols[si];
      const ProtocolStats& p = packet.sweep[di].protocols[si];
      EXPECT_EQ(o.name, p.name);
      EXPECT_DOUBLE_EQ(o.set_size.mean(), p.set_size.mean())
          << "selector " << o.name;
      EXPECT_DOUBLE_EQ(o.set_size.stddev(), p.set_size.stddev())
          << "selector " << o.name;
    }
  }
}

TEST(BackendEquivalence, PacketBackendMeasuresControlPlaneCost) {
  const ExperimentResult result =
      run_experiment(small_spec(BackendId::kPacket));
  ASSERT_EQ(result.sweep.size(), 1u);
  for (const ProtocolStats& p : result.sweep.front().protocols) {
    SCOPED_TRACE(p.name);
    EXPECT_TRUE(p.control.measured());
    EXPECT_EQ(p.control.convergence_time.count(), 3u);  // one per run
    EXPECT_GT(p.control.hello_msgs.mean(), 0.0);
    EXPECT_GT(p.control.tc_msgs.mean(), 0.0);
    EXPECT_GT(p.control.control_bytes.mean(), 0.0);
    EXPECT_GT(p.control.convergence_time.mean(), 0.0);
    // The measured convergence time can never exceed the simulated span,
    // and every run of this small static scenario must actually converge.
    EXPECT_LE(p.control.convergence_time.max(),
              SimConfig{}.derived_max_sim_time());
    EXPECT_EQ(p.control.unconverged, 0u);
    EXPECT_EQ(p.delivered + p.failed, 3u);
  }
  // The oracle backend leaves the block empty.
  const ExperimentResult oracle =
      run_experiment(small_spec(BackendId::kOracle));
  for (const ProtocolStats& p : oracle.sweep.front().protocols)
    EXPECT_FALSE(p.control.measured());
}

TEST(BackendEquivalence, PacketSweepIsThreadCountInvariant) {
  ExperimentSpec spec = small_spec(BackendId::kPacket);
  spec.selectors = {"qolsr_mpr2", "fnbp"};
  const auto csv_of = [&](unsigned threads) {
    spec.threads = threads;
    std::ostringstream os;
    CsvSink().write(run_experiment(spec), os);
    return os.str();
  };
  EXPECT_EQ(csv_of(1), csv_of(3));
}

TEST(BackendEquivalence, PacketCsvCarriesControlPlaneColumns) {
  std::ostringstream os;
  CsvSink().write(run_experiment(small_spec(BackendId::kPacket)), os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("convergence_time_mean"), std::string::npos);
  EXPECT_NE(csv.find("duplicate_drops_mean"), std::string::npos);
  // The oracle layout is untouched (its golden pins live in
  // golden_figures_test; this guards the header here too).
  std::ostringstream oracle_os;
  CsvSink().write(run_experiment(small_spec(BackendId::kOracle)), oracle_os);
  EXPECT_EQ(oracle_os.str().find("convergence_time"), std::string::npos);
}

TEST(BackendEquivalence, SimulatorResetReproducesAFreshRun) {
  const Graph a = testing::random_geometric_graph(kGraphSeeds[0], 6.0, 250.0);
  const Graph b = testing::random_geometric_graph(kGraphSeeds[1], 6.0, 250.0);
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  const auto route = [](const Graph& g, NodeId self, NodeId dest) {
    return compute_next_hop<BandwidthMetric>(g, self, dest);
  };

  // One simulator driven through two runs via reset...
  Simulator reused(a, flooding, ans, route);
  reused.run_to_convergence();
  reused.reset(b, flooding, ans, route, /*seed=*/77);
  reused.run_to_convergence();

  // ...must match a simulator built fresh for the second run.
  SimConfig config;
  config.seed = 77;
  Simulator fresh(b, flooding, ans, route, config);
  fresh.run_to_convergence();

  EXPECT_EQ(reused.trace().hello_sent, fresh.trace().hello_sent);
  EXPECT_EQ(reused.trace().tc_originated, fresh.trace().tc_originated);
  EXPECT_EQ(reused.trace().control_bytes, fresh.trace().control_bytes);
  EXPECT_EQ(reused.state_digest(), fresh.state_digest());
  ASSERT_EQ(reused.network().node_count(), fresh.network().node_count());
  for (NodeId u = 0; u < b.node_count(); ++u)
    EXPECT_EQ(reused.node(u).ans(), fresh.node(u).ans()) << "node " << u;
}

}  // namespace
}  // namespace qolsr
