// Statistical shape checks on small sweeps: the qualitative relations the
// paper's Figs. 6–9 report must already show up at reduced scale.
#include <gtest/gtest.h>

#include "core/fnbp.hpp"
#include "eval/runner.hpp"

namespace qolsr {
namespace {

template <Metric M>
std::vector<DensityStats> small_sweep(double density, std::size_t runs) {
  Scenario s;
  s.densities = {density};
  s.runs = runs;
  s.seed = 1234;
  s.field.width = 500.0;
  s.field.height = 500.0;
  static const QolsrSelector<M> qolsr(QolsrVariant::kMpr2);
  static const TopologyFilteringSelector<M> topo;
  static const FnbpSelector<M> fnbp;
  return run_sweep<M>(s, {&qolsr, &topo, &fnbp});
}

TEST(SweepShape, BandwidthSetSizesOrderedLikeFig6) {
  const auto sweep = small_sweep<BandwidthMetric>(12.0, 12);
  const auto& p = sweep[0].protocols;
  const double qolsr = p[0].set_size.mean();
  const double topo = p[1].set_size.mean();
  const double fnbp = p[2].set_size.mean();
  EXPECT_LT(fnbp, topo);
  EXPECT_LT(topo, qolsr);
}

TEST(SweepShape, DelaySetSizesOrderedLikeFig7) {
  // Under the delay metric FNBP and topology filtering are much closer
  // than under bandwidth (additive path values rarely tie, so there is
  // little "advertise all tied first hops" cost to save); we assert FNBP
  // does not exceed topology filtering by more than noise, and both stay
  // clearly below QOLSR. See EXPERIMENTS.md for the full discussion.
  const auto sweep = small_sweep<DelayMetric>(12.0, 12);
  const auto& p = sweep[0].protocols;
  EXPECT_LE(p[2].set_size.mean(), p[1].set_size.mean() * 1.05);
  EXPECT_LT(p[1].set_size.mean(), p[0].set_size.mean());
  EXPECT_LT(p[2].set_size.mean(), p[0].set_size.mean());
}

TEST(SweepShape, FnbpOverheadNotWorseThanQolsrBandwidth) {
  const auto sweep = small_sweep<BandwidthMetric>(12.0, 15);
  const auto& p = sweep[0].protocols;
  EXPECT_LE(p[2].overhead.mean(), p[0].overhead.mean() + 0.02);
}

TEST(SweepShape, FnbpOverheadNotWorseThanQolsrDelay) {
  const auto sweep = small_sweep<DelayMetric>(12.0, 15);
  const auto& p = sweep[0].protocols;
  EXPECT_LE(p[2].overhead.mean(), p[0].overhead.mean() + 0.02);
}

TEST(SweepShape, DeliveryRateIsHighOnConnectedPairs) {
  // With coarse integer weights the advertised topology of a QANS scheme
  // can occasionally disconnect: huge bottleneck tie-plateaus let every
  // node believe a small-id neighbor covers a target, while the loop-fix
  // guard only repairs the 2-hop-adjacent case (the paper's Fig. 4). We
  // keep the algorithms faithful, count the failures, and require the rate
  // to stay marginal (see EXPERIMENTS.md).
  for (const auto& sweep :
       {small_sweep<BandwidthMetric>(10.0, 10),
        small_sweep<BandwidthMetric>(16.0, 10)}) {
    for (const ProtocolStats& p : sweep[0].protocols) {
      EXPECT_GE(p.delivered, 9u) << p.name;  // ≥ 90% of 10 runs
    }
  }
}

TEST(SweepShape, FnbpSetSizeStaysFlatWithDensity) {
  // Fig. 6 claim: FNBP's set size is ~constant in density while QOLSR's
  // grows. Compare a sparse and a dense setting.
  const auto sparse = small_sweep<BandwidthMetric>(8.0, 10);
  const auto dense = small_sweep<BandwidthMetric>(20.0, 10);
  const double fnbp_growth = dense[0].protocols[2].set_size.mean() -
                             sparse[0].protocols[2].set_size.mean();
  const double qolsr_growth = dense[0].protocols[0].set_size.mean() -
                              sparse[0].protocols[0].set_size.mean();
  EXPECT_LT(fnbp_growth, qolsr_growth);
}

}  // namespace
}  // namespace qolsr
