// The runtime experiment engine: metric dispatch end-to-end over all six
// metrics, equivalence with the directly templated run_sweep, canned
// figure specs, CLI-flag parsing, thread-count invariance, per-run
// records, and the degenerate-deployment error path.
#include "eval/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fnbp.hpp"
#include "eval/figures.hpp"

namespace qolsr {
namespace {

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.scenario.densities = {8.0};
  spec.scenario.runs = 5;
  spec.scenario.seed = 3;
  spec.scenario.field.width = 400.0;
  spec.scenario.field.height = 400.0;
  return spec;
}

TEST(RunExperiment, AllSixMetricsEndToEnd) {
  // The paper evaluates bandwidth and delay; jitter, loss, energy and
  // buffers ride the same algebra. Every metric must run the full
  // pipeline: sample, select with every named heuristic, route, aggregate.
  for (MetricId metric : kAllMetricIds) {
    ExperimentSpec spec = small_spec();
    spec.name = std::string(metric_name(metric));
    spec.metric = metric;
    spec.selectors = {"olsr_mpr", "qolsr_mpr2", "topology_filtering", "fnbp"};
    // Real-valued weights keep the jitter (0..1) and loss (0..0.2)
    // intervals non-degenerate under rounding.
    spec.scenario.qos.integral = false;
    spec.threads = 2;

    const ExperimentResult result = run_experiment(spec);
    ASSERT_EQ(result.sweep.size(), 1u) << spec.name;
    const DensityStats& d = result.sweep.front();
    ASSERT_EQ(d.protocols.size(), spec.selectors.size()) << spec.name;
    for (const ProtocolStats& p : d.protocols) {
      EXPECT_EQ(p.set_size.count(), spec.scenario.runs) << spec.name;
      EXPECT_EQ(p.delivered + p.failed, spec.scenario.runs) << spec.name;
      EXPECT_GT(p.set_size.mean(), 0.0) << spec.name;
      EXPECT_EQ(p.overhead.count(), p.delivered) << spec.name;
      // The optimum is an optimum: no route beats it.
      EXPECT_GE(p.overhead.mean(), -1e-12) << spec.name;
      EXPECT_TRUE(std::isfinite(p.overhead.mean())) << spec.name;
    }
    // Metric-parameterized selectors carry the metric suffix.
    EXPECT_EQ(d.protocols[1].name,
              "qolsr_mpr2_" + std::string(metric_name(metric)));
  }
}

TEST(RunExperiment, MatchesDirectlyTemplatedRunSweepExactly) {
  // The engine is a dispatch shim, not a reimplementation: same spec, same
  // thread count => bitwise-identical aggregates vs. calling the template
  // with hand-constructed selectors (the pre-engine figureN_* code path).
  ExperimentSpec spec = figure_spec(6, FigureConfig{6, 11, 2});
  spec.scenario.densities = {10.0, 14.0};
  spec.scenario.field.width = 450.0;
  spec.scenario.field.height = 450.0;
  const auto engine = run_experiment(spec).sweep;

  const QolsrSelector<BandwidthMetric> qolsr(QolsrVariant::kMpr2);
  const TopologyFilteringSelector<BandwidthMetric> topo;
  const FnbpSelector<BandwidthMetric> fnbp;
  const auto direct =
      run_sweep<BandwidthMetric>(spec.scenario, {&qolsr, &topo, &fnbp}, 2);

  ASSERT_EQ(engine.size(), direct.size());
  for (std::size_t di = 0; di < engine.size(); ++di) {
    EXPECT_EQ(engine[di].density, direct[di].density);
    EXPECT_DOUBLE_EQ(engine[di].node_count.mean(),
                     direct[di].node_count.mean());
    ASSERT_EQ(engine[di].protocols.size(), direct[di].protocols.size());
    for (std::size_t si = 0; si < engine[di].protocols.size(); ++si) {
      const ProtocolStats& a = engine[di].protocols[si];
      const ProtocolStats& b = direct[di].protocols[si];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.delivered, b.delivered);
      EXPECT_EQ(a.failed, b.failed);
      EXPECT_DOUBLE_EQ(a.set_size.mean(), b.set_size.mean());
      EXPECT_DOUBLE_EQ(a.overhead.mean(), b.overhead.mean());
      EXPECT_DOUBLE_EQ(a.path_hops.mean(), b.path_hops.mean());
    }
  }
}

TEST(FigureSpec, CannedSpecsMatchThePaperSettings) {
  const FigureConfig config{25, 9, 3};
  const ExperimentSpec f6 = figure_spec(6, config);
  EXPECT_EQ(f6.metric, MetricId::kBandwidth);
  EXPECT_EQ(f6.scenario.densities, bandwidth_densities());
  const ExperimentSpec f7 = figure_spec(7, config);
  EXPECT_EQ(f7.metric, MetricId::kDelay);
  EXPECT_EQ(f7.scenario.densities, delay_densities());
  EXPECT_EQ(figure_spec(8, config).metric, MetricId::kBandwidth);
  EXPECT_EQ(figure_spec(9, config).metric, MetricId::kDelay);
  for (int figure : {6, 7, 8, 9}) {
    const ExperimentSpec spec = figure_spec(figure, config);
    const std::vector<std::string> legend = {"qolsr_mpr2", "topology_filtering",
                                             "fnbp"};
    EXPECT_EQ(spec.selectors, legend);
    EXPECT_EQ(spec.scenario.runs, config.runs);
    EXPECT_EQ(spec.scenario.seed, config.seed);
    EXPECT_EQ(spec.threads, config.threads);
  }
  EXPECT_THROW(figure_spec(5), ExperimentError);
  EXPECT_THROW(figure_spec(10), ExperimentError);
}

TEST(RunExperiment, ThreadCountInvariance) {
  // Aggregates agree to merge-order rounding; per-run records, which never
  // cross a merge, are bitwise identical and come back in run order.
  ExperimentSpec spec = small_spec();
  spec.scenario.runs = 6;
  spec.per_run = true;
  spec.threads = 1;
  const auto serial = run_experiment(spec).sweep;
  spec.threads = 3;
  const auto threaded = run_experiment(spec).sweep;

  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t di = 0; di < serial.size(); ++di) {
    const DensityStats& a = serial[di];
    const DensityStats& b = threaded[di];
    ASSERT_EQ(a.protocols.size(), b.protocols.size());
    for (std::size_t si = 0; si < a.protocols.size(); ++si) {
      EXPECT_EQ(a.protocols[si].delivered, b.protocols[si].delivered);
      EXPECT_EQ(a.protocols[si].failed, b.protocols[si].failed);
      EXPECT_NEAR(a.protocols[si].set_size.mean(),
                  b.protocols[si].set_size.mean(), 1e-9);
      EXPECT_NEAR(a.protocols[si].overhead.mean(),
                  b.protocols[si].overhead.mean(), 1e-9);
    }
    ASSERT_EQ(a.run_records.size(), spec.scenario.runs);
    ASSERT_EQ(b.run_records.size(), spec.scenario.runs);
    for (std::size_t r = 0; r < a.run_records.size(); ++r) {
      const RunRecord& ra = a.run_records[r];
      const RunRecord& rb = b.run_records[r];
      EXPECT_EQ(ra.run_index, r);
      EXPECT_EQ(rb.run_index, r);
      EXPECT_EQ(ra.nodes, rb.nodes);
      ASSERT_EQ(ra.protocols.size(), rb.protocols.size());
      for (std::size_t si = 0; si < ra.protocols.size(); ++si) {
        EXPECT_EQ(ra.protocols[si].set_size, rb.protocols[si].set_size);
        EXPECT_EQ(ra.protocols[si].delivered, rb.protocols[si].delivered);
        EXPECT_EQ(ra.protocols[si].value, rb.protocols[si].value);
        EXPECT_EQ(ra.protocols[si].overhead, rb.protocols[si].overhead);
        EXPECT_EQ(ra.protocols[si].hops, rb.protocols[si].hops);
      }
    }
  }
}

TEST(RunExperiment, PerRunRecordsAreConsistentWithAggregates) {
  ExperimentSpec spec = small_spec();
  spec.per_run = true;
  spec.threads = 2;
  const auto sweep = run_experiment(spec).sweep;
  const DensityStats& d = sweep.front();
  ASSERT_EQ(d.run_records.size(), spec.scenario.runs);
  for (std::size_t si = 0; si < d.protocols.size(); ++si) {
    double set_size_sum = 0.0;
    std::size_t delivered = 0;
    for (const RunRecord& r : d.run_records) {
      set_size_sum += r.protocols[si].set_size;
      delivered += r.protocols[si].delivered ? 1 : 0;
    }
    EXPECT_NEAR(set_size_sum / static_cast<double>(d.run_records.size()),
                d.protocols[si].set_size.mean(), 1e-12);
    EXPECT_EQ(delivered, d.protocols[si].delivered);
  }
}

TEST(RunExperiment, RecordsStayOffByDefault) {
  const auto sweep = run_experiment(small_spec()).sweep;
  EXPECT_TRUE(sweep.front().run_records.empty());
}

TEST(RunExperiment, DegenerateDeploymentSurfacesAClearError) {
  // Expected node count ~0.008: sample_run would resample forever without
  // the cap. Both the serial and the threaded path must surface the error.
  ExperimentSpec spec = small_spec();
  spec.name = "degenerate";
  spec.scenario.field.width = 50.0;
  spec.scenario.field.height = 50.0;
  spec.scenario.densities = {0.1};
  spec.scenario.max_topology_resamples = 40;
  spec.threads = 1;
  try {
    run_experiment(spec);
    FAIL() << "expected ExperimentError";
  } catch (const ExperimentError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("degenerate"), std::string::npos);
    EXPECT_NE(message.find("40"), std::string::npos);
  }
  spec.scenario.runs = 4;
  spec.threads = 2;
  EXPECT_THROW(run_experiment(spec), ExperimentError);
}

TEST(RunExperiment, RejectsBadSpecs) {
  ExperimentSpec unknown = small_spec();
  unknown.selectors = {"fnbp", "no_such_heuristic"};
  try {
    run_experiment(unknown);
    FAIL() << "expected ExperimentError";
  } catch (const ExperimentError& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_heuristic"),
              std::string::npos);
  }

  ExperimentSpec no_densities = small_spec();
  no_densities.scenario.densities.clear();
  EXPECT_THROW(run_experiment(no_densities), ExperimentError);

  ExperimentSpec no_selectors = small_spec();
  no_selectors.selectors.clear();
  EXPECT_THROW(run_experiment(no_selectors), ExperimentError);

  ExperimentSpec no_runs = small_spec();
  no_runs.scenario.runs = 0;
  EXPECT_THROW(run_experiment(no_runs), ExperimentError);

  // Packet-backend constraints: mobility epochs are a ROADMAP open item
  // and the chain routing model is an oracle-only discipline.
  ExperimentSpec packet_mobility = small_spec();
  packet_mobility.backend = BackendId::kPacket;
  packet_mobility.scenario.dynamics.model = DynamicsSpec::Model::kChurn;
  EXPECT_THROW(run_experiment(packet_mobility), ExperimentError);

  ExperimentSpec packet_chain = small_spec();
  packet_chain.backend = BackendId::kPacket;
  packet_chain.scenario.routing_model = Scenario::RoutingModel::kAnsChain;
  EXPECT_THROW(run_experiment(packet_chain), ExperimentError);
}

TEST(ParseExperimentSpec, FlagsMapOntoTheSpec) {
  const ExperimentSpec spec = parse_experiment_spec({
      "--name=custom",
      "--metric=energy",
      "--selectors=olsr_mpr,fnbp",
      "--densities=5,7.5,10",
      "--runs=12",
      "--seed=99",
      "--threads=4",
      "--field=250x300",
      "--radius=60",
      "--qos-hi=8",
      "--continuous-qos",
      "--routing=chain",
      "--hop-by-hop",
      "--pairs=any",
      "--max-resamples=123",
      "--format=json",
      "--output=/tmp/out.json",
      "--per-run",
  });
  EXPECT_EQ(spec.name, "custom");
  EXPECT_EQ(spec.metric, MetricId::kEnergy);
  EXPECT_EQ(spec.selectors, (std::vector<std::string>{"olsr_mpr", "fnbp"}));
  EXPECT_EQ(spec.scenario.densities, (std::vector<double>{5.0, 7.5, 10.0}));
  EXPECT_EQ(spec.scenario.runs, 12u);
  EXPECT_EQ(spec.scenario.seed, 99u);
  EXPECT_EQ(spec.threads, 4u);
  EXPECT_EQ(spec.scenario.field.width, 250.0);
  EXPECT_EQ(spec.scenario.field.height, 300.0);
  EXPECT_EQ(spec.scenario.field.radius, 60.0);
  EXPECT_EQ(spec.scenario.qos.bandwidth_hi, 8.0);
  EXPECT_EQ(spec.scenario.qos.delay_hi, 8.0);
  EXPECT_FALSE(spec.scenario.qos.integral);
  EXPECT_EQ(spec.scenario.routing_model, Scenario::RoutingModel::kAnsChain);
  EXPECT_TRUE(spec.scenario.hop_by_hop);
  EXPECT_EQ(spec.scenario.pair_mode, Scenario::PairMode::kAnyConnected);
  EXPECT_EQ(spec.scenario.max_topology_resamples, 123u);
  EXPECT_EQ(spec.format, "json");
  EXPECT_EQ(spec.output_path, "/tmp/out.json");
  EXPECT_TRUE(spec.per_run);
}

TEST(ParseExperimentSpec, LaterFlagsOverrideTheCannedBase) {
  const ExperimentSpec spec = parse_experiment_spec(
      {"--runs=5", "--metric=delay", "--threads=1"}, figure_spec(6));
  EXPECT_EQ(spec.name, "fig6_ans_size_bandwidth");
  EXPECT_EQ(spec.metric, MetricId::kDelay);
  EXPECT_EQ(spec.scenario.densities, bandwidth_densities());
  EXPECT_EQ(spec.scenario.runs, 5u);
  EXPECT_EQ(spec.threads, 1u);
}

TEST(ParseExperimentSpec, BackendFlagSelectsTheEngine) {
  EXPECT_EQ(ExperimentSpec{}.backend, BackendId::kOracle);  // the default
  EXPECT_EQ(parse_experiment_spec({"--backend=packet"}).backend,
            BackendId::kPacket);
  EXPECT_EQ(parse_experiment_spec({"--backend=wire"}).backend,
            BackendId::kWire);
  // An explicit oracle round-trips back to the default engine.
  EXPECT_EQ(parse_experiment_spec({"--backend=packet", "--backend=oracle"})
                .backend,
            BackendId::kOracle);
  EXPECT_EQ(backend_name(BackendId::kOracle), "oracle");
  EXPECT_EQ(backend_name(BackendId::kPacket), "packet");
  EXPECT_EQ(backend_name(BackendId::kWire), "wire");
  // One table drives names, parsing and the error text alike.
  EXPECT_EQ(backend_names(), "oracle|packet|wire");
}

TEST(ParseExperimentSpec, UnknownBackendErrorNamesTheValidSet) {
  try {
    parse_experiment_spec({"--backend=ns3"});
    FAIL() << "unknown backend accepted";
  } catch (const ExperimentError& e) {
    // The valid set in the message comes from the kBackends table, so a
    // new backend extends this error without anyone remembering to.
    EXPECT_NE(std::string(e.what()).find("oracle|packet|wire"),
              std::string::npos)
        << e.what();
  }
}

TEST(ParseExperimentSpec, RejectsUnknownFlagsAndBadValues) {
  EXPECT_THROW(parse_experiment_spec({"--bogus=1"}), ExperimentError);
  EXPECT_THROW(parse_experiment_spec({"--metric=latency"}), ExperimentError);
  EXPECT_THROW(parse_experiment_spec({"--runs=many"}), ExperimentError);
  EXPECT_THROW(parse_experiment_spec({"--densities=10,x"}), ExperimentError);
  EXPECT_THROW(parse_experiment_spec({"--field=100"}), ExperimentError);
  EXPECT_THROW(parse_experiment_spec({"--routing=flood"}), ExperimentError);
  EXPECT_THROW(parse_experiment_spec({"--pairs=nearest"}), ExperimentError);
  EXPECT_THROW(parse_experiment_spec({"--backend=ns3"}), ExperimentError);
  // Valueless switches must reject an attached value — silently dropping
  // it would turn "--per-run=false" into an enable.
  EXPECT_THROW(parse_experiment_spec({"--per-run=false"}), ExperimentError);
  EXPECT_THROW(parse_experiment_spec({"--continuous-qos=1"}), ExperimentError);
  EXPECT_THROW(parse_experiment_spec({"--hop-by-hop=0"}), ExperimentError);
}

TEST(ParseExperimentSpec, CliCombinationBeyondTheOldHarness) {
  // The acceptance example: loss metric with all five selectors, pure
  // flags — inexpressible under the compiled figureN_* surface.
  const ExperimentSpec spec = parse_experiment_spec({
      "--metric=loss",
      "--selectors=olsr_mpr,qolsr_mpr1,qolsr_mpr2,topology_filtering,fnbp",
      "--densities=8",
      "--runs=3",
      "--seed=5",
      "--threads=2",
      "--field=400x400",
      "--continuous-qos",
  });
  const ExperimentResult result = run_experiment(spec);
  ASSERT_EQ(result.sweep.size(), 1u);
  ASSERT_EQ(result.sweep.front().protocols.size(), 5u);
  EXPECT_EQ(result.sweep.front().protocols.front().name, "olsr_mpr");
  EXPECT_EQ(result.sweep.front().protocols.back().name, "fnbp_loss");
}

}  // namespace
}  // namespace qolsr
