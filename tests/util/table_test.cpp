#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace qolsr::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"density", "fnbp"});
  t.add_row({"10", "2.5"});
  t.add_row({"35", "2.41"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("density | fnbp"), std::string::npos);
  EXPECT_NE(s.find("------- | ----"), std::string::npos);
  EXPECT_NE(s.find("     35 | 2.41"), std::string::npos);
}

TEST(Table, NumericRowFormatting) {
  Table t({"d", "a", "b"});
  t.add_row(15.0, {0.12345, 2.0}, 3);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("15"), std::string::npos);
  EXPECT_NE(s.find("0.123"), std::string::npos);
  EXPECT_NE(s.find("2.000"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n3,4\n");
}

TEST(Table, PrintWritesToStream) {
  Table t({"only"});
  t.add_row({"cell"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.to_string());
}

TEST(Table, RowCount) {
  Table t({"h"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"r"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.5, 2), "1.50");
  EXPECT_EQ(format_double(10.0, 0), "10");
  EXPECT_EQ(format_double(-0.125, 3), "-0.125");
}

}  // namespace
}  // namespace qolsr::util
