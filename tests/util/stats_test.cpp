#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace qolsr::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.2);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.2);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.2);
  EXPECT_DOUBLE_EQ(s.max(), 4.2);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(99);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 20.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Rng rng(7);
  RunningStats small, large;
  for (int i = 0; i < 20; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 2000; ++i) large.add(rng.uniform01());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  EXPECT_GT(small.ci95_halfwidth(), 0.0);
}

TEST(Quantile, EmptyAndEdges) {
  EXPECT_EQ(quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile({3.0}, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile({3.0}, 1.0), 3.0);
}

TEST(Quantile, MedianAndInterpolation) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Quantile, SortedVariantAgrees) {
  std::vector<double> sorted{1.0, 2.0, 5.0, 9.0, 10.0};
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.77, 1.0})
    EXPECT_DOUBLE_EQ(quantile_sorted(sorted, q), quantile(sorted, q));
}

TEST(DistributionAccumulator, SortedIsInvariantToMergeOrder) {
  // The thread-invariance contract: however the per-worker partials are
  // merged, the sorted sample (and thus every emitted statistic) is the
  // same as the single-threaded accumulation.
  Rng rng(13);
  DistributionAccumulator whole, a, b, c;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(-2.0, 8.0);
    whole.add(x);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(x);
  }
  DistributionAccumulator abc = a, cba = c;
  abc.merge(b);
  abc.merge(c);
  cba.merge(b);
  cba.merge(a);
  EXPECT_EQ(abc.count(), whole.count());
  EXPECT_EQ(abc.sorted(), whole.sorted());
  EXPECT_EQ(cba.sorted(), whole.sorted());
}

TEST(DistributionAccumulator, EmptyMergeIsNoOp) {
  DistributionAccumulator a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.sorted(), std::vector<double>{1.0});
}

TEST(HistogramSorted, CountsBucketsAndClampsOutliers) {
  // [0, 4) in 4 bins of width 1; -1 clamps into the first bin, 4 and 9
  // into the last.
  const std::vector<double> sorted{-1.0, 0.5, 1.5, 1.7, 3.9, 4.0, 9.0};
  const std::vector<std::size_t> expected{2, 2, 0, 3};
  EXPECT_EQ(histogram_sorted(sorted, 0.0, 4.0, 4), expected);
}

TEST(HistogramSorted, DegenerateRangeFillsFirstBin) {
  const std::vector<double> sorted{5.0, 5.0, 5.0};
  const std::vector<std::size_t> expected{3, 0};
  EXPECT_EQ(histogram_sorted(sorted, 5.0, 5.0, 2), expected);
  // Zero buckets clamps to one; an empty sample yields all-zero counts.
  EXPECT_EQ(histogram_sorted({}, 0.0, 1.0, 0), std::vector<std::size_t>{0});
}

}  // namespace
}  // namespace qolsr::util
