#include "util/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace qolsr::util {
namespace {

/// Captures std::clog for the duration of a test.
class ClogCapture {
 public:
  ClogCapture() : old_(std::clog.rdbuf(buffer_.rdbuf())) {}
  ~ClogCapture() { std::clog.rdbuf(old_); }
  std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_threshold(); }
  void TearDown() override { set_log_threshold(previous_); }
  LogLevel previous_;
};

TEST_F(LogTest, MessagesBelowThresholdAreDropped) {
  set_log_threshold(LogLevel::kWarn);
  ClogCapture capture;
  QOLSR_LOG(kInfo) << "hidden";
  QOLSR_LOG(kWarn) << "visible";
  EXPECT_EQ(capture.text().find("hidden"), std::string::npos);
  EXPECT_NE(capture.text().find("visible"), std::string::npos);
}

TEST_F(LogTest, LevelNamesAppear) {
  set_log_threshold(LogLevel::kDebug);
  ClogCapture capture;
  QOLSR_LOG(kError) << "boom";
  EXPECT_NE(capture.text().find("[ERROR] boom"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_threshold(LogLevel::kOff);
  ClogCapture capture;
  QOLSR_LOG(kError) << "nope";
  EXPECT_TRUE(capture.text().empty());
}

TEST_F(LogTest, StreamingFormatsValues) {
  set_log_threshold(LogLevel::kDebug);
  ClogCapture capture;
  QOLSR_LOG(kInfo) << "x=" << 42 << " y=" << 1.5;
  EXPECT_NE(capture.text().find("x=42 y=1.5"), std::string::npos);
}

}  // namespace
}  // namespace qolsr::util
