#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace qolsr::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  EXPECT_NE(rng.next(), 0u);  // state must not be stuck at the fixed point
  EXPECT_NE(rng.next(), rng.next());
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(2.5, 9.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 9.5);
  }
}

TEST(Rng, UniformIntCoversAllValuesUnbiased) {
  Rng rng(17);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(std::uint64_t{7})];
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 * 0.1);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(std::int64_t{-3}, std::int64_t{3});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntOfOneIsZero) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(std::uint64_t{1}), 0u);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatchLambda) {
  const double lambda = GetParam();
  Rng rng(static_cast<std::uint64_t>(lambda * 1000) + 29);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double k = static_cast<double>(rng.poisson(lambda));
    sum += k;
    sum_sq += k * k;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  // Poisson: mean == variance == lambda. 5-sigma-ish tolerance.
  EXPECT_NEAR(mean, lambda, 5.0 * std::sqrt(lambda / n) + 0.02 * lambda);
  EXPECT_NEAR(var, lambda, 0.1 * lambda + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, RngPoissonTest,
                         ::testing::Values(0.5, 3.0, 12.0, 29.9, 30.1, 80.0,
                                           300.0));

TEST(Rng, PoissonZeroLambda) {
  Rng rng(31);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(37);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.split();
  // Child stream differs from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next() == child.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, WorksWithStdDistributions) {
  // Satisfies UniformRandomBitGenerator.
  static_assert(std::uniform_random_bit_generator<Rng>);
  Rng rng(43);
  EXPECT_GE(Rng::max(), Rng::min());
}

}  // namespace
}  // namespace qolsr::util
