// Network-wide delivery properties of the advertised topologies each
// heuristic induces — the paper's implicit correctness requirement.
#include <gtest/gtest.h>

#include "core/fnbp.hpp"
#include "graph/connectivity.hpp"
#include "routing/forwarding.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

template <Metric M>
Graph advertised_for(const Graph& g, const AnsSelector& selector) {
  std::vector<std::vector<NodeId>> ans(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u)
    ans[u] = selector.select(LocalView(g, u));
  return build_advertised_topology(g, ans);
}

class DeliveryPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph graph_ = testing::random_geometric_graph(GetParam(), 7.0, 300.0);
  Components components_ = connected_components(graph_);

  template <Metric M>
  void expect_full_delivery(const AnsSelector& selector) {
    const Graph adv = advertised_for<M>(graph_, selector);
    for (NodeId s = 0; s < graph_.node_count(); ++s) {
      for (NodeId d = 0; d < graph_.node_count(); ++d) {
        if (s == d || !components_.connected(s, d)) continue;
        const auto r = forward_packet<M>(graph_, adv, s, d);
        EXPECT_TRUE(r.delivered())
            << selector.name() << " " << s << "→" << d << " status "
            << static_cast<int>(r.status);
      }
    }
  }
};

TEST_P(DeliveryPropertyTest, QolsrDeliversEverywhere) {
  const QolsrSelector<BandwidthMetric> qolsr(QolsrVariant::kMpr2);
  expect_full_delivery<BandwidthMetric>(qolsr);
}

TEST_P(DeliveryPropertyTest, TopologyFilteringDeliversEverywhere) {
  const TopologyFilteringSelector<BandwidthMetric> topo;
  expect_full_delivery<BandwidthMetric>(topo);
}

TEST_P(DeliveryPropertyTest, FnbpDeliversEverywhereBothMetrics) {
  const FnbpSelector<BandwidthMetric> bw;
  expect_full_delivery<BandwidthMetric>(bw);
  const FnbpSelector<DelayMetric> d;
  expect_full_delivery<DelayMetric>(d);
}

TEST_P(DeliveryPropertyTest, AchievedDelayNeverBeatsOptimum) {
  const FnbpSelector<DelayMetric> fnbp;
  const Graph adv = advertised_for<DelayMetric>(graph_, fnbp);
  for (NodeId s = 0; s < std::min<std::size_t>(graph_.node_count(), 10);
       ++s) {
    const auto optimal = dijkstra<DelayMetric>(graph_, s);
    for (NodeId d = 0; d < graph_.node_count(); ++d) {
      if (s == d || !components_.connected(s, d)) continue;
      const auto r = forward_packet<DelayMetric>(graph_, adv, s, d);
      if (!r.delivered()) continue;
      EXPECT_FALSE(DelayMetric::better(r.value, optimal.value[d]))
          << s << "→" << d;
    }
  }
}

TEST_P(DeliveryPropertyTest, TwoHopRoutesAchieveLocalOptimum) {
  // The heart of FNBP's guarantee: for every 2-hop pair (u,v), routing
  // over the advertised topology plus u's own view achieves at least u's
  // local-view best value B̃(u,v) — nothing was lost by advertising a
  // single first hop.
  const FnbpSelector<BandwidthMetric> fnbp;
  const Graph adv = advertised_for<BandwidthMetric>(graph_, fnbp);
  for (NodeId u = 0; u < graph_.node_count(); ++u) {
    const LocalView view(graph_, u);
    const FirstHopTable table = compute_first_hops<BandwidthMetric>(view);
    for (std::uint32_t lv : view.two_hop()) {
      const NodeId v = view.global_id(lv);
      const auto r = forward_packet<BandwidthMetric>(graph_, adv, u, v);
      ASSERT_TRUE(r.delivered()) << u << "→" << v;
      EXPECT_FALSE(BandwidthMetric::better(table.best[lv], r.value))
          << u << "→" << v << ": local optimum " << table.best[lv]
          << ", routed " << r.value;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeliveryPropertyTest,
                         ::testing::Values(61, 62, 63));

}  // namespace
}  // namespace qolsr
