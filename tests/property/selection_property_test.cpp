// Cross-heuristic selection invariants on randomized topologies.
#include <gtest/gtest.h>

#include "core/fnbp.hpp"
#include "olsr/mpr.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

class SelectionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph graph_ = testing::random_geometric_graph(GetParam(), 9.0);
};

TEST_P(SelectionPropertyTest, AllSelectorsReturnSortedUniqueNeighbors) {
  const Rfc3626Selector rfc;
  const QolsrSelector<BandwidthMetric> mpr2(QolsrVariant::kMpr2);
  const QolsrSelector<DelayMetric> mpr1(QolsrVariant::kMpr1);
  const TopologyFilteringSelector<BandwidthMetric> topo_bw;
  const TopologyFilteringSelector<DelayMetric> topo_d;
  const FnbpSelector<BandwidthMetric> fnbp_bw;
  const FnbpSelector<DelayMetric> fnbp_d;
  const std::vector<const AnsSelector*> all{
      &rfc, &mpr2, &mpr1, &topo_bw, &topo_d, &fnbp_bw, &fnbp_d};
  for (NodeId u = 0; u < graph_.node_count(); ++u) {
    const LocalView view(graph_, u);
    for (const AnsSelector* s : all) {
      const auto set = s->select(view);
      EXPECT_TRUE(std::is_sorted(set.begin(), set.end())) << s->name();
      EXPECT_EQ(std::adjacent_find(set.begin(), set.end()), set.end())
          << s->name();
      for (NodeId w : set)
        EXPECT_TRUE(graph_.has_edge(u, w))
            << s->name() << ": " << w << " not a neighbor of " << u;
    }
  }
}

TEST_P(SelectionPropertyTest, SelectionIsDeterministic) {
  const FnbpSelector<BandwidthMetric> fnbp;
  const TopologyFilteringSelector<DelayMetric> topo;
  for (NodeId u = 0; u < graph_.node_count(); ++u) {
    const LocalView view(graph_, u);
    EXPECT_EQ(fnbp.select(view), fnbp.select(view));
    EXPECT_EQ(topo.select(view), topo.select(view));
  }
}

TEST_P(SelectionPropertyTest, FnbpEmptyOnlyWhenNothingToImprove) {
  // An empty FNBP selection implies every 1-hop direct link already lies
  // on a best path and there are no 2-hop neighbors.
  const FnbpSelector<BandwidthMetric> fnbp;
  for (NodeId u = 0; u < graph_.node_count(); ++u) {
    const LocalView view(graph_, u);
    if (!fnbp.select(view).empty()) continue;
    EXPECT_TRUE(view.two_hop().empty());
    const FirstHopTable table = compute_first_hops<BandwidthMetric>(view);
    for (std::uint32_t v : view.one_hop())
      EXPECT_TRUE(
          std::binary_search(table.fp[v].begin(), table.fp[v].end(), v));
  }
}

TEST_P(SelectionPropertyTest, MetricsAreIndependentDimensions) {
  // Bandwidth-FNBP must ignore delay values and vice versa: scrambling
  // the other metric's weights leaves the selection unchanged.
  Graph scrambled = graph_;
  util::Rng rng(GetParam() + 1);
  for (NodeId u = 0; u < scrambled.node_count(); ++u) {
    for (const Edge& e : scrambled.neighbors(u)) {
      if (e.to <= u) continue;
      LinkQos q = e.qos;
      q.delay = rng.uniform(1.0, 10.0);  // scramble delay only
      scrambled.set_edge_qos(u, e.to, q);
    }
  }
  const FnbpSelector<BandwidthMetric> fnbp;
  for (NodeId u = 0; u < graph_.node_count(); ++u)
    EXPECT_EQ(fnbp.select(LocalView(graph_, u)),
              fnbp.select(LocalView(scrambled, u)));
}

TEST_P(SelectionPropertyTest, LoopFixOnlyEverAddsNodes) {
  FnbpOptions with, without;
  without.loop_fix = false;
  for (NodeId u = 0; u < graph_.node_count(); ++u) {
    const LocalView view(graph_, u);
    const auto fixed = select_fnbp_ans<BandwidthMetric>(view, with);
    const auto plain = select_fnbp_ans<BandwidthMetric>(view, without);
    EXPECT_TRUE(std::includes(fixed.begin(), fixed.end(), plain.begin(),
                              plain.end()))
        << "node " << u;
  }
}

TEST_P(SelectionPropertyTest, BuffersMetricBehavesLikeBandwidth) {
  // Same concave algebra on a different field: selection machinery must
  // work unchanged (the paper's "number of buffers" example).
  Graph g = graph_;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const Edge& e : g.neighbors(u)) {
      if (e.to <= u) continue;
      LinkQos q = e.qos;
      q.buffers = q.bandwidth;  // copy bandwidth into the buffers field
      g.set_edge_qos(u, e.to, q);
    }
  }
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    EXPECT_EQ(select_fnbp_ans<BuffersMetric>(view),
              select_fnbp_ans<BandwidthMetric>(view));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionPropertyTest,
                         ::testing::Values(21, 212, 2121, 21212));

}  // namespace
}  // namespace qolsr
