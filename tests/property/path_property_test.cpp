// Metric-algebra and path-engine invariants over randomized inputs.
#include <gtest/gtest.h>

#include "path/dijkstra.hpp"
#include "path/first_hops.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

class PathInvariantTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathInvariantTest, CombineNeverImproves) {
  // The label-setting precondition: extending a path can't improve it.
  util::Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform(0.0, 20.0);
    const double b = rng.uniform(0.0, 20.0);
    EXPECT_FALSE(BandwidthMetric::better(BandwidthMetric::combine(a, b), a));
    EXPECT_FALSE(DelayMetric::better(DelayMetric::combine(a, b), a));
  }
}

TEST_P(PathInvariantTest, DijkstraValueTreeConsistent) {
  // Every settled node's value equals combine(parent value, link value) —
  // the parent tree justifies the reported values.
  const Graph g = testing::random_geometric_graph(GetParam(), 8.0);
  if (g.node_count() == 0) GTEST_SKIP();
  const auto r = dijkstra<BandwidthMetric>(g, 0);
  for (NodeId v = 1; v < g.node_count(); ++v) {
    if (r.parent[v] == kInvalidNode) continue;
    const LinkQos* q = g.edge_qos(r.parent[v], v);
    ASSERT_NE(q, nullptr);
    EXPECT_TRUE(metric_equal(
        r.value[v], BandwidthMetric::combine(r.value[r.parent[v]],
                                             BandwidthMetric::link_value(*q))));
    EXPECT_EQ(r.hops[v], r.hops[r.parent[v]] + 1);
  }
}

TEST_P(PathInvariantTest, AdditiveSubpathOptimality) {
  // Delay: any prefix of a min-delay path is itself min-delay (classic
  // optimal-substructure; relied on by hop-by-hop forwarding).
  const Graph g = testing::random_geometric_graph(GetParam() + 5, 7.0);
  if (g.node_count() < 2) GTEST_SKIP();
  const auto from0 = dijkstra<DelayMetric>(g, 0);
  for (NodeId t = 1; t < g.node_count(); ++t) {
    const auto path = extract_path(from0, 0, t);
    if (path.empty()) continue;
    double prefix = 0.0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      prefix += g.edge_qos(path[i - 1], path[i])->delay;
      EXPECT_TRUE(metric_equal(prefix, from0.value[path[i]]))
          << "prefix to " << path[i];
    }
  }
}

TEST_P(PathInvariantTest, AddingEdgesNeverHurtsTheOptimum) {
  Graph g = testing::random_uniform_graph(GetParam(), 14, 0.2);
  const auto before = dijkstra<BandwidthMetric>(g, 0);
  // Add a few random edges with random QoS.
  util::Rng rng(GetParam() * 31 + 7);
  int added = 0;
  while (added < 5) {
    const NodeId a = static_cast<NodeId>(rng.uniform_int(std::uint64_t{14}));
    const NodeId b = static_cast<NodeId>(rng.uniform_int(std::uint64_t{14}));
    if (a == b || g.has_edge(a, b)) continue;
    LinkQos q;
    q.bandwidth = rng.uniform(1.0, 10.0);
    g.add_edge(a, b, q);
    ++added;
  }
  const auto after = dijkstra<BandwidthMetric>(g, 0);
  for (NodeId v = 1; v < g.node_count(); ++v)
    EXPECT_FALSE(BandwidthMetric::better(before.value[v], after.value[v]))
        << "node " << v;
}

TEST_P(PathInvariantTest, FirstHopBestMatchesDijkstraFromOrigin) {
  // B̃(u,v) from the per-neighbor decomposition equals the direct
  // origin-rooted Dijkstra value (paths can't improve by revisiting u).
  const Graph g = testing::random_geometric_graph(GetParam() + 11, 8.0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    const FirstHopTable table = compute_first_hops<BandwidthMetric>(view);
    const auto direct =
        dijkstra<BandwidthMetric>(view, LocalView::origin_index());
    for (std::uint32_t v = 1; v < view.size(); ++v) {
      if (table.fp[v].empty()) {
        EXPECT_EQ(direct.value[v], BandwidthMetric::unreachable());
      } else {
        EXPECT_TRUE(metric_equal(table.best[v], direct.value[v]))
            << "u=" << u << " v=" << view.global_id(v);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathInvariantTest,
                         ::testing::Range<std::uint64_t>(100, 108));

}  // namespace
}  // namespace qolsr
