// End-to-end encodings of the paper's worked examples: each test asserts a
// behavioral claim the paper makes about Figs. 1, 2, 4 (see
// tests/support/paper_graphs.hpp for the reconstructions).
#include <gtest/gtest.h>

#include "core/fnbp.hpp"
#include "olsr/qolsr_mpr.hpp"
#include "path/dijkstra.hpp"
#include "routing/advertised_topology.hpp"
#include "routing/forwarding.hpp"
#include "support/paper_graphs.hpp"

namespace qolsr {
namespace {

using testing::Fig1;
using testing::Fig2;
using testing::Fig4;

std::vector<std::vector<NodeId>> select_all(const Graph& g,
                                            const AnsSelector& selector) {
  std::vector<std::vector<NodeId>> ans(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u)
    ans[u] = selector.select(LocalView(g, u));
  return ans;
}

TEST(PaperFig1, QolsrMissesTheWidestPath) {
  // "The widest path (v1v6v5v4v3, bandwidth of 10) between v1 and v3 will
  //  not be used by QOLSR" — it routes over v2 with bandwidth 6.
  const Graph g = Fig1::build();
  const QolsrSelector<BandwidthMetric> qolsr(QolsrVariant::kMpr2);
  const Graph advertised = build_advertised_topology(g, select_all(g, qolsr));

  // QOLSR keeps OLSR's hop-count-primary routing (QoS as tie-break).
  ForwardingOptions options;
  options.min_hop_routing = true;
  const auto routed = forward_packet<BandwidthMetric>(g, advertised, Fig1::v1,
                                                      Fig1::v3, options);
  ASSERT_TRUE(routed.delivered());
  EXPECT_EQ(routed.path, (Path{Fig1::v1, Fig1::v2, Fig1::v3}));
  EXPECT_DOUBLE_EQ(routed.value, 6.0);

  // The true optimum is 10.
  const auto optimal = dijkstra<BandwidthMetric>(g, Fig1::v1);
  EXPECT_DOUBLE_EQ(optimal.value[Fig1::v3], 10.0);
}

TEST(PaperFig1, FnbpFindsTheWidestPath) {
  const Graph g = Fig1::build();
  const FnbpSelector<BandwidthMetric> fnbp;
  const Graph advertised = build_advertised_topology(g, select_all(g, fnbp));

  const auto routed =
      forward_packet<BandwidthMetric>(g, advertised, Fig1::v1, Fig1::v3);
  ASSERT_TRUE(routed.delivered());
  EXPECT_DOUBLE_EQ(routed.value, 10.0);
  EXPECT_EQ(routed.path,
            (Path{Fig1::v1, Fig1::v6, Fig1::v5, Fig1::v4, Fig1::v3}));
}

TEST(PaperFig2, LocalizedOptimumCanMissGlobalOne) {
  // "u is not aware of link (v8v9). It will thus choose path uv7v9 with
  //  bandwidth of 3 to reach v9 while path uv6v8v9 with a bandwidth of 5
  //  exists" — no localized protocol can close this gap (§III-B).
  const Graph g = Fig2::build();
  const LocalView view(g, Fig2::u);
  const auto local = dijkstra<BandwidthMetric>(view, LocalView::origin_index());
  EXPECT_DOUBLE_EQ(local.value[view.local_id(Fig2::v9)], 3.0);
  const auto global = dijkstra<BandwidthMetric>(g, Fig2::u);
  EXPECT_DOUBLE_EQ(global.value[Fig2::v9], 5.0);
}

TEST(PaperFig2, FnbpRoutesOneHopNeighborThroughDetour) {
  // u must be able to reach its own neighbor v4 over u·v1·v5·v4 (bandwidth
  // 5) instead of the direct bandwidth-3 link.
  const Graph g = Fig2::build();
  const FnbpSelector<BandwidthMetric> fnbp;
  const Graph advertised = build_advertised_topology(g, select_all(g, fnbp));
  const auto routed =
      forward_packet<BandwidthMetric>(g, advertised, Fig2::u, Fig2::v4);
  ASSERT_TRUE(routed.delivered());
  EXPECT_DOUBLE_EQ(routed.value, 5.0);
  EXPECT_EQ(routed.path, (Path{Fig2::u, Fig2::v1, Fig2::v5, Fig2::v4}));
}

TEST(PaperFig4, EveryoneReachesEDespiteTheBottleneck) {
  // With the loop-fix, D is advertised (by A) and every node delivers to E.
  const Graph g = Fig4::build();
  const FnbpSelector<BandwidthMetric> fnbp;
  const Graph advertised = build_advertised_topology(g, select_all(g, fnbp));
  for (NodeId s : {Fig4::a, Fig4::b, Fig4::c}) {
    const auto routed =
        forward_packet<BandwidthMetric>(g, advertised, s, Fig4::e);
    EXPECT_TRUE(routed.delivered()) << "source " << s;
    EXPECT_DOUBLE_EQ(routed.value, 1.0);  // bottleneck D–E
  }
}

TEST(PaperFig4, AdvertisedTopologyContainsLastHopOnlyWithLoopFix) {
  const Graph g = Fig4::build();
  const FnbpSelector<BandwidthMetric> with_fix;
  FnbpOptions options;
  options.loop_fix = false;
  const FnbpSelector<BandwidthMetric> without_fix(options);

  const Graph adv_fixed = build_advertised_topology(g, select_all(g, with_fix));
  EXPECT_TRUE(adv_fixed.has_edge(Fig4::a, Fig4::d));

  // Without the fix, A never advertises D: the A–D link disappears from
  // the advertised topology (E–D stays only because E itself advertises
  // its sole neighbor).
  const Graph adv_plain =
      build_advertised_topology(g, select_all(g, without_fix));
  EXPECT_FALSE(adv_plain.has_edge(Fig4::a, Fig4::d));
}

TEST(PaperClaims, FnbpAdvertisedSetsAreSmallOnFig1) {
  // Fig. 6/7 claim in miniature: FNBP's per-node sets stay small (here ≤2)
  // while achieving the optimal route of PaperFig1.FnbpFindsTheWidestPath.
  const Graph g = Fig1::build();
  const FnbpSelector<BandwidthMetric> fnbp;
  for (NodeId u = 0; u < g.node_count(); ++u)
    EXPECT_LE(fnbp.select(LocalView(g, u)).size(), 2u) << "node " << u;
}

}  // namespace
}  // namespace qolsr
