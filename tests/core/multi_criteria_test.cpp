#include "core/multi_criteria.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "routing/advertised_topology.hpp"
#include "routing/forwarding.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

LinkQos qos(double bw, double energy) {
  LinkQos q;
  q.bandwidth = bw;
  q.energy = energy;
  return q;
}

TEST(BicriteriaFnbp, SecondaryBreaksPrimaryTies) {
  // fP(0,t) = {1,2}: both start width-5 paths. Plain FNBP's max≺ ties on
  // the equal direct links and picks id 1; the energy-aware variant picks
  // 2 (cheaper link).
  Graph g(4);
  g.add_edge(0, 1, qos(5, 8));
  g.add_edge(0, 2, qos(5, 2));
  g.add_edge(1, 3, qos(5, 1));
  g.add_edge(2, 3, qos(5, 1));
  const LocalView view(g, 0);
  EXPECT_EQ(select_fnbp_ans<BandwidthMetric>(view),
            (std::vector<NodeId>{1}));
  const auto bi =
      select_fnbp_ans_bicriteria<BandwidthMetric, EnergyMetric>(view);
  EXPECT_EQ(bi, (std::vector<NodeId>{2}));
}

TEST(BicriteriaFnbp, PrimaryStillDominates) {
  // The wider path wins even over a much cheaper narrow one: energy only
  // refines inside the primary-optimal candidate set.
  Graph g(4);
  g.add_edge(0, 1, qos(9, 10));  // wide but expensive
  g.add_edge(0, 2, qos(2, 1));   // cheap but narrow
  g.add_edge(1, 3, qos(9, 10));
  g.add_edge(2, 3, qos(2, 1));
  const auto bi = select_fnbp_ans_bicriteria<BandwidthMetric, EnergyMetric>(
      LocalView(g, 0));
  EXPECT_EQ(bi, (std::vector<NodeId>{1}));
}

TEST(BicriteriaFnbp, SelectorNameAndInterface) {
  const BicriteriaFnbpSelector<BandwidthMetric, EnergyMetric> selector;
  EXPECT_EQ(selector.name(), "fnbp_bandwidth_per_energy");
  EXPECT_TRUE(selector.qos_first_routing());
}

class BicriteriaPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BicriteriaPropertyTest, SimilarSizeAndSameCoverageAsPlainFnbp) {
  // The bi-criteria pick chooses from the same candidate sets; individual
  // nodes can differ slightly (a different pick changes later coverage
  // reuse), but the totals stay close and the coverage invariant is
  // unconditional.
  const Graph g = testing::random_geometric_graph(GetParam(), 9.0);
  std::size_t plain_total = 0, bi_total = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    const auto plain = select_fnbp_ans<BandwidthMetric>(view);
    const auto bi =
        select_fnbp_ans_bicriteria<BandwidthMetric, EnergyMetric>(view);
    plain_total += plain.size();
    bi_total += bi.size();

    const FirstHopTable table = compute_first_hops<BandwidthMetric>(view);
    auto in_ans = [&](std::uint32_t w) {
      return std::binary_search(bi.begin(), bi.end(), view.global_id(w));
    };
    for (std::uint32_t v : view.two_hop()) {
      const auto& fp = table.fp[v];
      if (fp.empty()) continue;
      EXPECT_TRUE(std::any_of(fp.begin(), fp.end(), in_ans))
          << "node " << u << " two-hop " << view.global_id(v);
    }
  }
  EXPECT_NEAR(static_cast<double>(bi_total), static_cast<double>(plain_total),
              0.15 * static_cast<double>(plain_total) + 3.0);
}

TEST_P(BicriteriaPropertyTest, AdvertisedLinksAreCheaperOnAverage) {
  // Mean energy per advertised link: the energy-aware pick should be
  // cheaper than plain FNBP's id/bandwidth tie-break (statistical — the
  // selections evolve differently, so totals are compared per link).
  const Graph g = testing::random_geometric_graph(GetParam() + 7, 9.0);
  double plain_energy = 0.0, bi_energy = 0.0;
  std::size_t plain_links = 0, bi_links = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    for (NodeId w : select_fnbp_ans<BandwidthMetric>(view)) {
      plain_energy += g.edge_qos(u, w)->energy;
      ++plain_links;
    }
    for (NodeId w :
         select_fnbp_ans_bicriteria<BandwidthMetric, EnergyMetric>(view)) {
      bi_energy += g.edge_qos(u, w)->energy;
      ++bi_links;
    }
  }
  ASSERT_GT(plain_links, 0u);
  ASSERT_GT(bi_links, 0u);
  EXPECT_LE(bi_energy / static_cast<double>(bi_links),
            plain_energy / static_cast<double>(plain_links) + 0.25);
}

TEST_P(BicriteriaPropertyTest, DeliveryStillHolds) {
  const Graph g = testing::random_geometric_graph(GetParam() + 13, 7.0, 280.0);
  const BicriteriaFnbpSelector<BandwidthMetric, EnergyMetric> selector;
  std::vector<std::vector<NodeId>> ans(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u)
    ans[u] = selector.select(LocalView(g, u));
  const Graph adv = build_advertised_topology(g, ans);
  const Components comp = connected_components(g);
  for (NodeId s = 0; s < g.node_count(); ++s)
    for (NodeId d = 0; d < g.node_count(); ++d) {
      if (s == d || !comp.connected(s, d)) continue;
      EXPECT_TRUE(
          forward_packet<BandwidthMetric>(g, adv, s, d).delivered())
          << s << "→" << d;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BicriteriaPropertyTest,
                         ::testing::Values(31, 32, 33));

}  // namespace
}  // namespace qolsr
