#include "core/ordering.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace qolsr {
namespace {

LinkQos qos(double bw, double d) {
  LinkQos q;
  q.bandwidth = bw;
  q.delay = d;
  return q;
}

/// Star around node 0 with three links of distinct QoS.
Graph star() {
  Graph g(4);
  g.add_edge(0, 1, qos(5, 3));
  g.add_edge(0, 2, qos(8, 7));
  g.add_edge(0, 3, qos(5, 1));
  return g;
}

TEST(PickBestLink, BandwidthPrefersWidestLink) {
  const Graph g = star();
  const LocalView view(g, 0);
  std::vector<std::uint32_t> all{view.local_id(1), view.local_id(2),
                                 view.local_id(3)};
  const std::uint32_t best = pick_best_link<BandwidthMetric>(view, all);
  EXPECT_EQ(view.global_id(best), 2u);  // bandwidth 8
}

TEST(PickBestLink, DelayPrefersFastestLink) {
  const Graph g = star();
  const LocalView view(g, 0);
  std::vector<std::uint32_t> all{view.local_id(1), view.local_id(2),
                                 view.local_id(3)};
  const std::uint32_t best = pick_best_link<DelayMetric>(view, all);
  EXPECT_EQ(view.global_id(best), 3u);  // delay 1
}

TEST(PickBestLink, TieBrokenBySmallestId) {
  // Paper §III-A: equal link values order by identifier ("v1 ≺ v2 because
  // v1 has a smaller identifier").
  const Graph g = star();
  const LocalView view(g, 0);
  std::vector<std::uint32_t> tied{view.local_id(1), view.local_id(3)};
  const std::uint32_t best = pick_best_link<BandwidthMetric>(view, tied);
  EXPECT_EQ(view.global_id(best), 1u);  // both bandwidth 5; id 1 < 3
}

TEST(PickBestLink, OrderOfCandidatesIrrelevant) {
  const Graph g = star();
  const LocalView view(g, 0);
  std::vector<std::uint32_t> fwd{view.local_id(1), view.local_id(2),
                                 view.local_id(3)};
  std::vector<std::uint32_t> rev{view.local_id(3), view.local_id(2),
                                 view.local_id(1)};
  EXPECT_EQ(pick_best_link<BandwidthMetric>(view, fwd),
            pick_best_link<BandwidthMetric>(view, rev));
  EXPECT_EQ(pick_best_link<DelayMetric>(view, fwd),
            pick_best_link<DelayMetric>(view, rev));
}

TEST(PickBestLink, EmptyCandidates) {
  const Graph g = star();
  const LocalView view(g, 0);
  EXPECT_EQ(pick_best_link<BandwidthMetric>(view, {}), kInvalidNode);
}

TEST(PickBestLink, SingleCandidate) {
  const Graph g = star();
  const LocalView view(g, 0);
  std::vector<std::uint32_t> one{view.local_id(3)};
  EXPECT_EQ(view.global_id(pick_best_link<DelayMetric>(view, one)), 3u);
}

}  // namespace
}  // namespace qolsr
