#include "core/fnbp.hpp"

#include <gtest/gtest.h>

#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

using testing::Fig2;
using testing::Fig4;

LinkQos qos_bw(double b) {
  LinkQos q;
  q.bandwidth = b;
  return q;
}

TEST(Fnbp, Fig2SelectionWalkthrough) {
  // Full §III-B walkthrough on the Fig.-2 view of u:
  //  * v1 selected while covering v4 (first 2-hop-detour case),
  //  * v5, v10, v3 then covered through v1 at no extra cost,
  //  * v6 selected for v8, v7 for v9, and v11 covered through v6.
  const Graph g = Fig2::build();
  const auto ans = select_fnbp_ans<BandwidthMetric>(LocalView(g, Fig2::u));
  EXPECT_EQ(ans, (std::vector<NodeId>{Fig2::v1, Fig2::v6, Fig2::v7}));
}

TEST(Fnbp, DirectOptimalLinksSelectNothing) {
  // Star with strong direct links and no 2-hop nodes: empty ANS.
  Graph g(3);
  g.add_edge(0, 1, qos_bw(9));
  g.add_edge(0, 2, qos_bw(9));
  g.add_edge(1, 2, qos_bw(1));
  EXPECT_TRUE(select_fnbp_ans<BandwidthMetric>(LocalView(g, 0)).empty());
}

TEST(Fnbp, OneHopNeighborBehindBetterDetour) {
  // Weak direct (0,1), strong detour via 2: FNBP must select 2 in step 1.
  Graph g(3);
  g.add_edge(0, 1, qos_bw(1));
  g.add_edge(0, 2, qos_bw(9));
  g.add_edge(2, 1, qos_bw(9));
  EXPECT_EQ(select_fnbp_ans<BandwidthMetric>(LocalView(g, 0)),
            (std::vector<NodeId>{2}));
}

TEST(Fnbp, SingleNodeSelectedForTiedAlternatives) {
  // Both 1 and 2 start best paths to 3; FNBP advertises exactly one
  // (contrast: topology filtering advertises both).
  Graph g(4);
  g.add_edge(0, 1, qos_bw(5));
  g.add_edge(0, 2, qos_bw(5));
  g.add_edge(1, 3, qos_bw(5));
  g.add_edge(2, 3, qos_bw(5));
  const auto ans = select_fnbp_ans<BandwidthMetric>(LocalView(g, 0));
  EXPECT_EQ(ans, (std::vector<NodeId>{1}));  // id tie-break
}

TEST(Fnbp, QosTieBreakPicksBestLink) {
  // fP(0,t) = {1,2} tied on path value 5; link (0,2) is better (6 > 5).
  Graph g(4);
  g.add_edge(0, 1, qos_bw(5));
  g.add_edge(0, 2, qos_bw(6));
  g.add_edge(1, 3, qos_bw(5));
  g.add_edge(2, 3, qos_bw(5));
  const auto ans = select_fnbp_ans<BandwidthMetric>(LocalView(g, 0));
  EXPECT_EQ(ans, (std::vector<NodeId>{2}));
  // Ablation switch: smallest id instead.
  FnbpOptions id_only;
  id_only.qos_tiebreak = false;
  const auto ans_id =
      select_fnbp_ans<BandwidthMetric>(LocalView(g, 0), id_only);
  EXPECT_EQ(ans_id, (std::vector<NodeId>{1}));
}

TEST(Fnbp, Fig4LoopFixForcesSmallestIdToSelectLastHop) {
  // The limiting-last-link case: every path to E bottlenecks at D–E, so
  // fP(A,E) = {B, D} ties; B covers E "for free" but creates the A↔B loop.
  // A (the smallest id among the first hops' selector) must pick D.
  const Graph g = Fig4::build();
  const auto ans_a = select_fnbp_ans<BandwidthMetric>(LocalView(g, Fig4::a));
  EXPECT_EQ(ans_a, (std::vector<NodeId>{Fig4::b, Fig4::d}));

  // Without the fix, A stops at {B} — D ends up selected by no neighbor
  // of E's side of the bottleneck.
  FnbpOptions no_fix;
  no_fix.loop_fix = false;
  const auto ans_a_nofix =
      select_fnbp_ans<BandwidthMetric>(LocalView(g, Fig4::a), no_fix);
  EXPECT_EQ(ans_a_nofix, (std::vector<NodeId>{Fig4::b}));
}

TEST(Fnbp, Fig4LargerIdsDoNotTriggerLoopFix) {
  // C also sees fP(C,E) covered through B, but minid(fP) = B < C, so the
  // guard leaves the responsibility to the smaller node.
  const Graph g = Fig4::build();
  const auto ans_c = select_fnbp_ans<BandwidthMetric>(LocalView(g, Fig4::c));
  EXPECT_EQ(ans_c, (std::vector<NodeId>{Fig4::b}));
}

TEST(Fnbp, DelayMetricVariant) {
  // Algorithm 2: same structure under the additive metric.
  Graph g(4);
  LinkQos slow, fast;
  slow.delay = 10;
  fast.delay = 1;
  g.add_edge(0, 1, slow);   // direct but slow
  g.add_edge(0, 2, fast);
  g.add_edge(2, 1, fast);   // 2-hop detour of delay 2
  g.add_edge(1, 3, fast);
  const auto ans = select_fnbp_ans<DelayMetric>(LocalView(g, 0));
  // 2 selected for reaching 1 (step 1); 3 then covered through 2.
  EXPECT_EQ(ans, (std::vector<NodeId>{2}));
}

TEST(Fnbp, SelectorInterfaceNamesAndResults) {
  const Graph g = Fig2::build();
  const FnbpSelector<BandwidthMetric> bw_selector;
  const FnbpSelector<DelayMetric> delay_selector;
  EXPECT_EQ(bw_selector.name(), "fnbp_bandwidth");
  EXPECT_EQ(delay_selector.name(), "fnbp_delay");
  EXPECT_EQ(bw_selector.select(LocalView(g, Fig2::u)),
            select_fnbp_ans<BandwidthMetric>(LocalView(g, Fig2::u)));
}

TEST(Fnbp, IsolatedAndLeafNodes) {
  Graph g(3);
  g.add_edge(1, 2, qos_bw(4));
  EXPECT_TRUE(select_fnbp_ans<BandwidthMetric>(LocalView(g, 0)).empty());
  // Leaf node 1: single neighbor 2, no 2-hop — nothing to select.
  Graph h(2);
  h.add_edge(0, 1, qos_bw(4));
  EXPECT_TRUE(select_fnbp_ans<BandwidthMetric>(LocalView(h, 0)).empty());
}

class FnbpPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FnbpPropertyTest, SelectionIsSubsetOfNeighbors) {
  const Graph g = testing::random_geometric_graph(GetParam(), 9.0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId w : select_fnbp_ans<BandwidthMetric>(LocalView(g, u)))
      EXPECT_TRUE(g.has_edge(u, w));
    for (NodeId w : select_fnbp_ans<DelayMetric>(LocalView(g, u)))
      EXPECT_TRUE(g.has_edge(u, w));
  }
}

TEST_P(FnbpPropertyTest, EveryTargetCoveredThroughAnsOrDirect) {
  // Core invariant of the algorithm: after selection, every 1-hop/2-hop
  // neighbor either has its direct link on a best path, or some selected
  // ANS member starts a best path to it, or (loop-fix case) a selected
  // member is adjacent to it.
  const Graph g = testing::random_geometric_graph(GetParam() + 31, 8.0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    const auto ans = select_fnbp_ans<BandwidthMetric>(view);
    const FirstHopTable table = compute_first_hops<BandwidthMetric>(view);
    auto in_ans = [&](std::uint32_t w) {
      return std::binary_search(ans.begin(), ans.end(), view.global_id(w));
    };
    for (std::uint32_t v : view.one_hop()) {
      const auto& fp = table.fp[v];
      const bool direct_best = std::binary_search(fp.begin(), fp.end(), v);
      const bool covered = std::any_of(fp.begin(), fp.end(), in_ans);
      EXPECT_TRUE(direct_best || covered)
          << "node " << u << " one-hop " << view.global_id(v);
    }
    for (std::uint32_t v : view.two_hop()) {
      const auto& fp = table.fp[v];
      const bool covered = std::any_of(fp.begin(), fp.end(), in_ans);
      EXPECT_TRUE(covered) << "node " << u << " two-hop "
                           << view.global_id(v);
    }
  }
}

TEST_P(FnbpPropertyTest, NeverLargerThanTopologyFiltering) {
  // The design goal: FNBP advertises one first hop where topology
  // filtering advertises all tied ones, and reuses selections across
  // targets. Size can never exceed the union-of-first-hops bound of the
  // unreduced view, and empirically stays below topology filtering; we
  // assert the hard bound plus the ≤ relation on the total.
  const Graph g = testing::random_geometric_graph(GetParam() + 97, 10.0);
  std::size_t fnbp_total = 0, topo_total = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    fnbp_total += select_fnbp_ans<BandwidthMetric>(view).size();
    topo_total +=
        select_topology_filtering_ans<BandwidthMetric>(view).size();
  }
  EXPECT_LE(fnbp_total, topo_total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FnbpPropertyTest,
                         ::testing::Values(2, 42, 402, 4002));

}  // namespace
}  // namespace qolsr
