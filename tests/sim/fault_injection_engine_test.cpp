// The fault-injection engine: Bernoulli frame loss and up/down overlays in
// the LossyMedium decorator, crash/restart with RFC-style soft-state
// expiry in OlsrNode, incident scheduling with timed re-convergence in the
// Simulator — and the contract that an *inactive* plan is contractually
// invisible (byte-identical behavior, zero RNG draws).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/fnbp.hpp"
#include "sim/simulator.hpp"
#include "support/paper_graphs.hpp"

namespace qolsr {
namespace {

using testing::Fig1;

OlsrNode::RouteFn bandwidth_routes() {
  return [](const Graph& g, NodeId self, NodeId dest) {
    return compute_next_hop<BandwidthMetric>(g, self, dest);
  };
}

TEST(FaultEngine, EmptyPlanIsIndistinguishableFromNoPlan) {
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;

  Simulator plain(g, flooding, ans, bandwidth_routes());
  const ConvergenceReport plain_report = plain.run_to_convergence();

  const FaultPlan inactive;  // loss 0, no overrides, no incidents
  ASSERT_FALSE(inactive.active());
  Simulator faulted(g, flooding, ans, bandwidth_routes(), SimConfig{},
                    &inactive);
  const ConvergenceReport faulted_report = faulted.run_to_convergence();

  EXPECT_EQ(plain_report.converged_at, faulted_report.converged_at);
  EXPECT_EQ(plain.state_digest(), faulted.state_digest());
  EXPECT_EQ(plain.trace().control_bytes, faulted.trace().control_bytes);
  EXPECT_EQ(faulted.trace().frames_lost, 0u);
  EXPECT_EQ(faulted.trace().frames_blocked, 0u);
  EXPECT_FALSE(faulted.faults().impaired());
}

TEST(FaultEngine, AmbientLossIsSeededAndDeterministic) {
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  FaultPlan plan;
  plan.loss_rate = 0.3;

  SimConfig config;
  config.seed = 99;
  Simulator a(g, flooding, ans, bandwidth_routes(), config, &plan);
  a.run_to_convergence();
  Simulator b(g, flooding, ans, bandwidth_routes(), config, &plan);
  b.run_to_convergence();

  EXPECT_GT(a.trace().frames_lost, 0u);
  EXPECT_EQ(a.trace().frames_lost, b.trace().frames_lost);
  EXPECT_EQ(a.trace().control_bytes, b.trace().control_bytes);
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(FaultEngine, PerLinkTotalLossHidesANeighborForever) {
  // Rate-1 loss on every v6 link: v6's HELLOs never arrive anywhere, so no
  // node ever completes the handshake with it — the per-link override path
  // of the Bernoulli gate.
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  FaultPlan plan;
  plan.link_loss.push_back({Fig1::v1, Fig1::v6, 1.0});
  plan.link_loss.push_back({Fig1::v5, Fig1::v6, 1.0});

  Simulator sim(g, flooding, ans, bandwidth_routes(), SimConfig{}, &plan);
  sim.run_to_convergence();
  EXPECT_FALSE(sim.node(Fig1::v1).tables().is_symmetric(Fig1::v6));
  EXPECT_FALSE(sim.node(Fig1::v5).tables().is_symmetric(Fig1::v6));
  EXPECT_FALSE(sim.node(Fig1::v6).tables().is_symmetric(Fig1::v1));
  EXPECT_GT(sim.trace().frames_lost, 0u);
}

TEST(FaultEngine, CrashedNodeIsAgedOutWithinHoldTime) {
  // Soft-state expiry (RFC 3626): kill all of a node's HELLOs by crashing
  // it; every neighbor must age its link entries out within the neighbor
  // hold time instead of routing into the silent node forever.
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();
  ASSERT_TRUE(sim.node(Fig1::v1).tables().is_symmetric(Fig1::v6));
  ASSERT_TRUE(sim.node(Fig1::v5).tables().is_symmetric(Fig1::v6));

  FaultIncident crash;
  crash.kind = FaultIncident::Kind::kNodeCrash;
  crash.node = Fig1::v6;
  crash.duration = 0.0;  // permanent
  sim.inject(crash);
  EXPECT_FALSE(sim.node(Fig1::v6).alive());

  // neighbor_hold (6 s) plus one HELLO period of slack: both neighbors
  // have expired the dead node from their link sets.
  sim.run_until(sim.now() + 10.0);
  EXPECT_FALSE(sim.node(Fig1::v1).tables().is_symmetric(Fig1::v6));
  EXPECT_FALSE(sim.node(Fig1::v5).tables().is_symmetric(Fig1::v6));
  EXPECT_GT(sim.trace().frames_blocked, 0u);
}

TEST(FaultEngine, CrashRestartRoundTripReconverges) {
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();

  FaultIncident crash;
  crash.kind = FaultIncident::Kind::kNodeCrash;
  crash.node = Fig1::v6;
  crash.duration = 10.0;
  const double injected_at = sim.now();
  sim.inject(crash);
  const ConvergenceReport reconv = sim.run_to_convergence();

  // The outage plus the rebuild both took time, and the network settled.
  EXPECT_TRUE(reconv.converged);
  EXPECT_GT(reconv.converged_at - injected_at, crash.duration);
  EXPECT_TRUE(sim.node(Fig1::v6).alive());
  // Every node is back to the full-graph oracle selection — the restarted
  // node's first TCs were not rejected as stale (sequence counters are
  // stable storage across the crash).
  for (NodeId u = 0; u < g.node_count(); ++u)
    EXPECT_EQ(sim.node(u).ans(), ans.select(LocalView(g, u))) << "node " << u;
}

TEST(FaultEngine, RandomCrashVictimIsSeedDeterministic) {
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  FaultIncident crash;
  crash.kind = FaultIncident::Kind::kNodeCrash;  // no explicit victim
  crash.count = 2;
  crash.duration = 0.0;

  auto crashed_set = [&](std::uint64_t seed) {
    SimConfig config;
    config.seed = seed;
    Simulator sim(g, flooding, ans, bandwidth_routes(), config);
    sim.run_to_convergence();
    sim.inject(crash);
    std::vector<bool> down;
    for (NodeId u = 0; u < g.node_count(); ++u)
      down.push_back(!sim.node(u).alive());
    return down;
  };

  const auto first = crashed_set(7);
  EXPECT_EQ(first, crashed_set(7));
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(first.begin(), first.end(), true)),
            2u);
}

TEST(FaultEngine, LinkFlapHealsBack) {
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();
  ASSERT_TRUE(sim.node(Fig1::v1).tables().is_symmetric(Fig1::v6));

  FaultIncident flap;
  flap.kind = FaultIncident::Kind::kLinkFlap;
  flap.link_u = Fig1::v1;
  flap.link_v = Fig1::v6;
  flap.duration = 8.0;
  sim.inject(flap);
  EXPECT_TRUE(sim.faults().link_down(Fig1::v1, Fig1::v6));

  // Down long enough for both ends to expire the entry...
  sim.run_until(sim.now() + flap.duration - 0.5);
  EXPECT_FALSE(sim.node(Fig1::v1).tables().is_symmetric(Fig1::v6));

  // ...then the scheduled heal brings it back and HELLOs re-handshake.
  const ConvergenceReport reconv = sim.run_to_convergence();
  EXPECT_TRUE(reconv.converged);
  EXPECT_FALSE(sim.faults().link_down(Fig1::v1, Fig1::v6));
  EXPECT_TRUE(sim.node(Fig1::v1).tables().is_symmetric(Fig1::v6));
}

TEST(FaultEngine, PartitionBlocksCrossTrafficThenHeals) {
  // Fig. 1 halves at n/2 = 3: {v1,v2,v3} vs {v4,v5,v6}. During the
  // partition, cross-boundary frames are suppressed; after the heal the
  // control plane re-converges and cross traffic flows again.
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();

  FaultIncident split;
  split.kind = FaultIncident::Kind::kPartition;
  split.duration = 25.0;
  sim.inject(split);
  EXPECT_TRUE(sim.faults().partitioned());

  // Give both sides time to expire the other half, then try to cross.
  sim.run_until(sim.now() + 10.0);
  sim.node(Fig1::v1).send_data(Fig1::v4, 1);
  sim.run_until(sim.now() + 2.0);
  EXPECT_FALSE(sim.trace().journeys.at(1).delivered);
  EXPECT_GT(sim.trace().frames_blocked, 0u);

  const ConvergenceReport healed = sim.run_to_convergence();
  EXPECT_TRUE(healed.converged);
  EXPECT_FALSE(sim.faults().partitioned());
  sim.node(Fig1::v1).send_data(Fig1::v4, 2);
  sim.run_until(sim.now() + 2.0);
  EXPECT_TRUE(sim.trace().journeys.at(2).delivered);
}

TEST(FaultEngine, DroppedDataFramesAreClassified) {
  // A crashed destination first blackholes traffic at the last hop (the
  // route still exists until soft state expires), then, once aged out,
  // senders report no-route drops — both land in Journey::Drop fates.
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();

  FaultIncident crash;
  crash.kind = FaultIncident::Kind::kNodeCrash;
  crash.node = Fig1::v3;
  crash.duration = 0.0;
  sim.inject(crash);
  sim.run_until(sim.now() + 30.0);  // all soft state mentioning v3 is gone

  sim.node(Fig1::v1).send_data(Fig1::v3, 1);
  sim.run_until(sim.now() + 2.0);
  const auto& journey = sim.trace().journeys.at(1);
  EXPECT_FALSE(journey.delivered);
  EXPECT_EQ(journey.drop, TraceStats::Journey::Drop::kNoRoute);
}

}  // namespace
}  // namespace qolsr
