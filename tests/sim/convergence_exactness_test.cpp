// Event-driven convergence detection contracts: run_to_convergence waits
// on the network MutationClock directly (no sampling grid), so
// converged_at must be the exact timestamp of the final state-changing
// event — cross-checked against a fine-grained digest-sampled replay of
// the identical run — the report must anchor at the call instant (a
// re-convergence measurement can be zero, never negative), and the
// counters snapshot must be the state as of the last mutation.
#include <gtest/gtest.h>

#include "core/fnbp.hpp"
#include "routing/routing_table.hpp"
#include "sim/simulator.hpp"
#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

OlsrNode::RouteFn bandwidth_routes() {
  return [](const Graph& g, NodeId self, NodeId dest) {
    return compute_next_hop<BandwidthMetric>(g, self, dest);
  };
}

TEST(ConvergenceExactness, ConvergedAtIsTheLastMutationTimestamp) {
  const Graph g = testing::Fig2::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  const ConvergenceReport report = sim.run_to_convergence();

  EXPECT_TRUE(report.converged);
  EXPECT_GT(sim.mutations().count(), 0u);
  // The report is the clock's exact record, not a rounded-up sample.
  EXPECT_EQ(report.converged_at, sim.mutations().last_at());
  const double dwell = sim.config().derived_convergence_dwell();
  EXPECT_GE(report.end_time, report.converged_at + dwell);
}

TEST(ConvergenceExactness, MatchesFineGrainedDigestReplay) {
  // Replay the identical run sampling the state digest on a grid 4000x
  // finer than the old HELLO-interval sampler: the event-driven
  // converged_at must land inside the single grid cell where the digest
  // last changed. This is the exactness pin — the old sampler could only
  // ever report the cell's upper edge on a 2-second grid.
  const Graph g = testing::Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  SimConfig config;
  config.seed = 21;

  Simulator exact(g, flooding, ans, bandwidth_routes(), config);
  const ConvergenceReport report = exact.run_to_convergence();
  ASSERT_TRUE(report.converged);

  Simulator replay(g, flooding, ans, bandwidth_routes(), config);
  const double grain = 0.0005;
  std::uint64_t digest = replay.state_digest();
  double last_change = 0.0;
  for (double t = grain; t <= report.end_time + grain; t += grain) {
    replay.run_until(t);
    const std::uint64_t next = replay.state_digest();
    if (next != digest) {
      digest = next;
      last_change = t;
    }
  }
  EXPECT_GT(last_change, 0.0);
  EXPECT_LE(report.converged_at, last_change);
  EXPECT_GT(report.converged_at, last_change - grain);
}

TEST(ConvergenceExactness, SecondCallAnchorsAtCallInstant) {
  // Re-measuring convergence on an already-quiescent network must report
  // "converged when asked": converged_at equals the call instant (the
  // previous report's end_time), so a timed re-convergence delta is zero —
  // never negative, never a stale pre-call timestamp.
  const Graph g = testing::Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  const ConvergenceReport first = sim.run_to_convergence();
  ASSERT_TRUE(first.converged);

  const ConvergenceReport second = sim.run_to_convergence();
  EXPECT_TRUE(second.converged);
  EXPECT_EQ(second.converged_at, first.end_time);
  EXPECT_GE(second.converged_at, first.converged_at);
}

TEST(ConvergenceExactness, CrashReconvergenceIsEventExact) {
  const Graph g = testing::random_geometric_graph(77, 6.0, 250.0);
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  ASSERT_TRUE(sim.run_to_convergence().converged);

  const double injected_at = sim.now();
  FaultIncident crash;
  crash.kind = FaultIncident::Kind::kNodeCrash;
  crash.node = 0;
  crash.duration = 0.0;  // permanent
  sim.inject(crash);

  const ConvergenceReport report = sim.run_to_convergence();
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.converged_at, sim.mutations().last_at());
  // The crash mutates at the injection instant and the healing-out of the
  // victim's soft state mutates strictly after it.
  EXPECT_GT(report.converged_at, injected_at);
}

TEST(ConvergenceExactness, SnapshotIsCountersAsOfLastMutation) {
  const Graph g = testing::Fig2::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  ASSERT_TRUE(sim.run_to_convergence().converged);

  const TraceStats& at = sim.trace_at_convergence();
  const TraceStats& end = sim.trace();
  // Work done by the quiescence dwell after the last mutation (HELLO/TC
  // refreshes) is excluded from the snapshot.
  EXPECT_GT(at.hello_sent, 0u);
  EXPECT_GT(at.tc_originated, 0u);
  EXPECT_LT(at.hello_sent, end.hello_sent);
  EXPECT_LE(at.tc_originated, end.tc_originated);
  EXPECT_LE(at.control_bytes, end.control_bytes);
  // Scalar counters only: the journey map is not part of the snapshot.
  EXPECT_TRUE(at.journeys.empty());
}

}  // namespace
}  // namespace qolsr
