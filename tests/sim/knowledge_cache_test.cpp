// Cache-equivalence suite for the per-node knowledge view: after any
// protocol mutation — TC arrival, hold-time expiry, crash/restart, link
// flap, liar poisoning — the cached knowledge_graph() must equal the graph
// a fresh validity-aware build produces at the same instant (the TC
// topology base merged with the node's own symmetric links). Checked at
// arbitrary clock points across all five paper selectors and several
// seeds, so a missed invalidation edge anywhere in the cache contract
// shows up as a graph mismatch here.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/fnbp.hpp"
#include "metrics/metric_id.hpp"
#include "olsr/selector_registry.hpp"
#include "routing/routing_table.hpp"
#include "sim/simulator.hpp"
#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

OlsrNode::RouteFn bandwidth_routes() {
  return [](const Graph& g, NodeId self, NodeId dest) {
    return compute_next_hop<BandwidthMetric>(g, self, dest);
  };
}

/// What knowledge_graph() promises to equal: a from-scratch validity-aware
/// topology read merged with the node's current symmetric links — the
/// exact construction the pre-cache forwarding path performed per frame.
Graph fresh_knowledge(const OlsrNode& node, std::size_t n, double now) {
  Graph g = node.topology().to_graph(n, now);
  for (NodeId neighbor : node.tables().symmetric_neighbors()) {
    if (neighbor >= n || g.has_edge(node.id(), neighbor)) continue;
    const LinkQos* qos = node.tables().link_qos(neighbor);
    if (qos == nullptr) {
      ADD_FAILURE() << "symmetric neighbor " << neighbor << " without QoS";
      continue;
    }
    g.add_edge(node.id(), neighbor, *qos);
  }
  return g;
}

void expect_graphs_equal(const Graph& cached, const Graph& fresh,
                         const std::string& context) {
  ASSERT_EQ(cached.node_count(), fresh.node_count()) << context;
  EXPECT_EQ(cached.edge_count(), fresh.edge_count()) << context;
  for (NodeId u = 0; u < fresh.node_count(); ++u) {
    const auto ce = cached.neighbors(u);
    const auto fe = fresh.neighbors(u);
    ASSERT_EQ(ce.size(), fe.size()) << context << " node " << u;
    for (std::size_t i = 0; i < fe.size(); ++i) {
      EXPECT_EQ(ce[i].to, fe[i].to) << context << " node " << u;
      EXPECT_TRUE(ce[i].qos == fe[i].qos)
          << context << " node " << u << " link to " << fe[i].to;
    }
  }
}

void check_all_nodes(Simulator& sim, const std::string& context) {
  const std::size_t n = sim.network().node_count();
  for (NodeId u = 0; u < n; ++u) {
    const Graph fresh = fresh_knowledge(sim.node(u), n, sim.now());
    expect_graphs_equal(sim.node(u).knowledge_graph(), fresh,
                        context + " node " + std::to_string(u));
  }
}

TEST(KnowledgeCache, MatchesFreshBuildAcrossSelectorsAndSeeds) {
  const SelectorRegistry& registry = SelectorRegistry::builtin();
  for (const std::string& name : registry.names()) {
    for (const std::uint64_t seed : {3u, 17u}) {
      const Graph g = testing::random_geometric_graph(seed * 1000 + 7, 6.0,
                                                      250.0);
      const auto ans = registry.create(name, MetricId::kBandwidth);
      const auto flooding =
          registry.create_flooding(name, MetricId::kBandwidth);
      SimConfig config;
      config.seed = seed;
      Simulator sim(g, *flooding, *ans, bandwidth_routes(), config);
      sim.run_to_convergence();
      check_all_nodes(sim, name + " seed " + std::to_string(seed) +
                               " converged");
      // Mid-refresh-cycle instant (odd offset, off every tick grid).
      sim.run_until(sim.now() + 1.7);
      check_all_nodes(sim, name + " seed " + std::to_string(seed) +
                               " mid-cycle");
    }
  }
}

TEST(KnowledgeCache, TracksHoldTimeExpiryAfterPermanentCrash) {
  const Graph g = testing::random_geometric_graph(91, 6.0, 250.0);
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();

  FaultIncident crash;
  crash.kind = FaultIncident::Kind::kNodeCrash;
  crash.node = 0;
  crash.duration = 0.0;  // permanent
  sim.inject(crash);

  // Step across the neighbor-hold (6 s) and topology-hold (15 s) windows
  // at an offset that never aligns with a tick or a purge deadline: every
  // intermediate instant must show cached == fresh, including the lag
  // between an entry's hold deadline passing and its purge event firing.
  const double start = sim.now();
  for (double t = start + 0.7; t < start + 22.0; t += 0.7) {
    sim.run_until(t);
    check_all_nodes(sim, "t=" + std::to_string(t));
  }
}

TEST(KnowledgeCache, TracksCrashAndRestart) {
  const Graph g = testing::Fig2::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();

  FaultIncident crash;
  crash.kind = FaultIncident::Kind::kNodeCrash;
  crash.node = testing::Fig2::u;
  crash.duration = 6.0;
  sim.inject(crash);
  check_all_nodes(sim, "just crashed");

  const double start = sim.now();
  for (double t = start + 0.9; t < start + 10.0; t += 0.9) {
    sim.run_until(t);
    check_all_nodes(sim, "crash/restart t=" + std::to_string(t));
  }
  sim.run_to_convergence();
  check_all_nodes(sim, "reconverged after restart");
}

TEST(KnowledgeCache, TracksLinkFlap) {
  const Graph g = testing::Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();

  FaultIncident flap;
  flap.kind = FaultIncident::Kind::kLinkFlap;
  flap.link_u = testing::Fig1::v1;
  flap.link_v = testing::Fig1::v6;
  flap.duration = 8.0;
  sim.inject(flap);

  const double start = sim.now();
  for (double t = start + 0.5; t < start + 26.0; t += 0.5) {
    sim.run_until(t);
    check_all_nodes(sim, "flap t=" + std::to_string(t));
  }
}

TEST(KnowledgeCache, TracksLiarPoisoning) {
  // A liar's phantom links land in every honest topology base; the cached
  // view must carry exactly the same poison as a fresh read (detection is
  // the monitor's job, not the cache's).
  const Graph g = testing::random_geometric_graph(55, 6.0, 250.0);
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  AdversarySpec spec;
  spec.kinds = {AdversaryKind::kLiar};
  spec.nodes = {1};
  Simulator sim(g, flooding, ans, bandwidth_routes(), SimConfig{}, nullptr,
                &spec);
  sim.run_to_convergence();
  check_all_nodes(sim, "liar converged");
  sim.run_until(sim.now() + 2.3);
  check_all_nodes(sim, "liar mid-cycle");
}

}  // namespace
}  // namespace qolsr
