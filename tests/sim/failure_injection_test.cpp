// Failure injection: links die mid-run; the control plane must expire the
// stale state and re-converge around the failure without manual resets.
#include <gtest/gtest.h>

#include "core/fnbp.hpp"
#include "sim/simulator.hpp"
#include "support/paper_graphs.hpp"

namespace qolsr {
namespace {

using testing::Fig1;

OlsrNode::RouteFn bandwidth_routes() {
  return [](const Graph& g, NodeId self, NodeId dest) {
    return compute_next_hop<BandwidthMetric>(g, self, dest);
  };
}

TEST(FailureInjection, NeighborEntriesExpireAfterLinkFailure) {
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();
  ASSERT_TRUE(sim.node(Fig1::v1).tables().is_symmetric(Fig1::v6));

  ASSERT_TRUE(sim.fail_link(Fig1::v1, Fig1::v6));
  // Past the neighbor hold time the dead link is gone from both ends.
  sim.run_until(sim.now() + 10.0);
  EXPECT_FALSE(sim.node(Fig1::v1).tables().is_symmetric(Fig1::v6));
  EXPECT_FALSE(sim.node(Fig1::v6).tables().is_symmetric(Fig1::v1));
}

TEST(FailureInjection, FailLinkLeavesGroundTruthIntact) {
  // Failures live in the fault overlay; the borrowed ground-truth graph is
  // const and must still show the edge after the radio link "dies".
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  ASSERT_TRUE(sim.fail_link(Fig1::v1, Fig1::v6));
  EXPECT_TRUE(sim.network().has_edge(Fig1::v1, Fig1::v6));
  EXPECT_TRUE(g.has_edge(Fig1::v1, Fig1::v6));
  EXPECT_TRUE(sim.faults().link_down(Fig1::v1, Fig1::v6));
  // The simulator borrows, it does not copy: same object.
  EXPECT_EQ(&sim.network(), &g);
}

TEST(FailureInjection, FailLinkRejectsUnknownLink) {
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  EXPECT_FALSE(sim.fail_link(Fig1::v1, Fig1::v4));  // never existed
  EXPECT_TRUE(sim.fail_link(Fig1::v1, Fig1::v6));
  EXPECT_FALSE(sim.fail_link(Fig1::v1, Fig1::v6));  // already gone
}

TEST(FailureInjection, SelectionsReconvergeToPostFailureOracle) {
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();

  // Kill the wide v1–v6 entry of the ring; every node must re-select
  // against the degraded topology.
  ASSERT_TRUE(sim.fail_link(Fig1::v1, Fig1::v6));
  sim.run_until(sim.now() + 25.0);

  Graph degraded = Fig1::build();
  ASSERT_TRUE(degraded.remove_edge(Fig1::v1, Fig1::v6));
  for (NodeId u = 0; u < degraded.node_count(); ++u)
    EXPECT_EQ(sim.node(u).ans(), ans.select(LocalView(degraded, u)))
        << "node " << u;
}

TEST(FailureInjection, DataReroutesAroundFailure) {
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();

  // Before the failure the v1→v3 flow rides the wide ring (Fig. 1 claim).
  sim.node(Fig1::v1).send_data(Fig1::v3, 1);
  sim.run_until(sim.now() + 1.0);
  ASSERT_TRUE(sim.trace().journeys.at(1).delivered);
  EXPECT_EQ(sim.trace().journeys.at(1).path.front(), Fig1::v1);
  EXPECT_EQ(sim.trace().journeys.at(1).path[1], Fig1::v6);

  // Cut the ring entry and let the control plane heal.
  ASSERT_TRUE(sim.fail_link(Fig1::v1, Fig1::v6));
  sim.run_until(sim.now() + 25.0);

  sim.node(Fig1::v1).send_data(Fig1::v3, 2);
  sim.run_until(sim.now() + 1.0);
  const auto& journey = sim.trace().journeys.at(2);
  ASSERT_TRUE(journey.delivered);
  // The new route must avoid the dead link and still arrive.
  for (std::size_t i = 0; i + 1 < journey.path.size(); ++i) {
    const bool dead = (journey.path[i] == Fig1::v1 &&
                       journey.path[i + 1] == Fig1::v6) ||
                      (journey.path[i] == Fig1::v6 &&
                       journey.path[i + 1] == Fig1::v1);
    EXPECT_FALSE(dead);
  }
}

TEST(FailureInjection, PartitionStopsDeliveryGracefully) {
  // Sever every link into E's side: packets for E are dropped, none loop.
  const Graph g = testing::Fig4::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();
  ASSERT_TRUE(sim.fail_link(testing::Fig4::d, testing::Fig4::e));
  sim.run_until(sim.now() + 25.0);

  sim.node(testing::Fig4::a).send_data(testing::Fig4::e, 7);
  sim.run_until(sim.now() + 2.0);
  const auto it = sim.trace().journeys.find(7);
  ASSERT_NE(it, sim.trace().journeys.end());
  EXPECT_FALSE(it->second.delivered);
  EXPECT_GE(sim.trace().data_dropped, 1u);
}

}  // namespace
}  // namespace qolsr
