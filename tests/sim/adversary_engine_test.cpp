// The adversary engine: seeded misbehavior rosters (blackhole, liar,
// replayer, selfish) wired through Simulator::reset, the wire-corruption
// gate in LossyMedium, and the runtime invariant monitor that catches the
// violations as they form — plus the contract that an *inactive*
// AdversarySpec is contractually invisible (byte-identical behavior, zero
// RNG draws, disarmed monitor).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/fnbp.hpp"
#include "sim/simulator.hpp"
#include "support/paper_graphs.hpp"

namespace qolsr {
namespace {

using testing::Fig1;

OlsrNode::RouteFn bandwidth_routes() {
  return [](const Graph& g, NodeId self, NodeId dest) {
    return compute_next_hop<BandwidthMetric>(g, self, dest);
  };
}

/// A spec naming its victims explicitly — no roster draw, so tests pin
/// exactly which node misbehaves.
AdversarySpec pinned(AdversaryKind kind, std::vector<NodeId> victims) {
  AdversarySpec spec;
  spec.kinds = {kind};
  spec.nodes = std::move(victims);
  return spec;
}

TEST(AdversaryEngine, InactiveSpecIsIndistinguishableFromNoSpec) {
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;

  Simulator plain(g, flooding, ans, bandwidth_routes());
  const ConvergenceReport plain_report = plain.run_to_convergence();

  const AdversarySpec inactive;  // no kinds, no roster, corrupt 0
  ASSERT_FALSE(inactive.active());
  Simulator subverted(g, flooding, ans, bandwidth_routes(), SimConfig{},
                      nullptr, &inactive);
  const ConvergenceReport subverted_report = subverted.run_to_convergence();

  EXPECT_EQ(plain_report.converged_at, subverted_report.converged_at);
  EXPECT_EQ(plain.state_digest(), subverted.state_digest());
  EXPECT_EQ(plain.trace().control_bytes, subverted.trace().control_bytes);
  EXPECT_TRUE(subverted.adversary_ids().empty());
  EXPECT_EQ(subverted.trace().frames_corrupted, 0u);
  EXPECT_EQ(subverted.trace().frames_malformed, 0u);
  EXPECT_EQ(subverted.monitor().counters().total(), 0u);
  EXPECT_LT(subverted.monitor().first_violation_at(), 0.0);
}

TEST(AdversaryEngine, BlackholeAbsorbsRelayedDataAndIsCaught) {
  // In Fig. 1 the widest v1→v4 path runs over v5 (v1·v6·v5·v4, bandwidth
  // 10), and v5's own TCs advertise the v5–v4 link — so the route survives
  // the subversion and the data frame dies *inside* the blackhole, not of
  // a missing route.
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;

  Simulator honest(g, flooding, ans, bandwidth_routes());
  honest.run_to_convergence();
  honest.node(Fig1::v1).send_data(Fig1::v4, 1);
  honest.run_until(honest.now() + 2.0);
  ASSERT_TRUE(honest.trace().journeys.at(1).delivered);

  const AdversarySpec spec = pinned(AdversaryKind::kBlackhole, {Fig1::v5});
  Simulator sim(g, flooding, ans, bandwidth_routes(), SimConfig{}, nullptr,
                &spec);
  ASSERT_TRUE(sim.is_adversary(Fig1::v5));
  EXPECT_EQ(sim.node(Fig1::v5).role(), AdversaryKind::kBlackhole);
  sim.run_to_convergence();

  sim.node(Fig1::v1).send_data(Fig1::v4, 1);
  sim.run_until(sim.now() + 2.0);
  const auto& journey = sim.trace().journeys.at(1);
  EXPECT_FALSE(journey.delivered);
  EXPECT_EQ(journey.drop, TraceStats::Journey::Drop::kAdversary);
  // The absorbing hop is on the recorded path — that is what lets the
  // eval layer classify the route as poisoned.
  EXPECT_NE(std::find(journey.path.begin(), journey.path.end(), Fig1::v5),
            journey.path.end());
  EXPECT_GT(sim.monitor().counters().blackhole_absorptions, 0u);
  EXPECT_GE(sim.monitor().first_violation_at(), 0.0);
}

TEST(AdversaryEngine, SelfishNodeRefusesTcDutyButForwardsData) {
  // v5 is on every heuristic's relay set; a selfish v5 reneges on TC
  // forwarding (the monitor counts each refusal) yet still forwards data —
  // the route over it keeps delivering.
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  const AdversarySpec spec = pinned(AdversaryKind::kSelfish, {Fig1::v5});
  Simulator sim(g, flooding, ans, bandwidth_routes(), SimConfig{}, nullptr,
                &spec);
  sim.run_to_convergence();

  EXPECT_GT(sim.monitor().counters().mpr_refusals, 0u);
  EXPECT_EQ(sim.monitor().counters().blackhole_absorptions, 0u);

  sim.node(Fig1::v1).send_data(Fig1::v4, 1);
  sim.run_until(sim.now() + 2.0);
  EXPECT_TRUE(sim.trace().journeys.at(1).delivered);
}

TEST(AdversaryEngine, LiarPoisonsConvergedTopologyBases) {
  // A lying v6 inflates the bandwidth of its real links (and fabricates
  // phantom ones) in its own TCs; honest TopologyBases accept them. The
  // end-of-run audit against the ground truth finds the forgeries and the
  // nodes holding them.
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  const AdversarySpec spec = pinned(AdversaryKind::kLiar, {Fig1::v6});
  Simulator sim(g, flooding, ans, bandwidth_routes(), SimConfig{}, nullptr,
                &spec);
  sim.run_to_convergence();

  audit_topology(sim.monitor(), sim, g);
  const InvariantCounters& c = sim.monitor().counters();
  EXPECT_GT(c.phantom_links + c.inflated_qos, 0u);
  EXPECT_GT(c.poisoned_nodes, 0u);
}

TEST(AdversaryEngine, ReplayerStaleTcsAreRejectedAndFlagged) {
  // v6 captures one foreign TC and keeps re-broadcasting it with fresh
  // message sequence numbers but the original ANSN. Once the true
  // originator has advanced its ANSN, every receiver's TopologyBase
  // rejects the replay (the protocol's own §19 defense) and the monitor
  // flags the emission-side regression.
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  const AdversarySpec spec = pinned(AdversaryKind::kReplayer, {Fig1::v6});
  Simulator sim(g, flooding, ans, bandwidth_routes(), SimConfig{}, nullptr,
                &spec);
  sim.run_to_convergence();

  const InvariantCounters& c = sim.monitor().counters();
  EXPECT_GT(c.stale_tc_rejections + c.ansn_regressions, 0u);
  // The replayer's lies are control-plane only: no data was absorbed.
  EXPECT_EQ(c.blackhole_absorptions, 0u);
}

TEST(AdversaryEngine, WireCorruptionIsSeededAndDeterministic) {
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  AdversarySpec spec;
  spec.corrupt_rate = 0.3;  // corruption-only: no roster, kinds empty
  ASSERT_TRUE(spec.active());
  ASSERT_FALSE(spec.roster_active());

  SimConfig config;
  config.seed = 99;
  Simulator a(g, flooding, ans, bandwidth_routes(), config, nullptr, &spec);
  a.run_to_convergence();
  Simulator b(g, flooding, ans, bandwidth_routes(), config, nullptr, &spec);
  b.run_to_convergence();

  EXPECT_GT(a.trace().frames_corrupted, 0u);
  // The hardened parser rejected at least some of the mangled frames; a
  // bit flip can also land in a payload field and survive the parse, so
  // malformed ≤ corrupted.
  EXPECT_GT(a.trace().frames_malformed, 0u);
  EXPECT_LE(a.trace().frames_malformed, a.trace().frames_corrupted);
  EXPECT_EQ(a.trace().frames_corrupted, b.trace().frames_corrupted);
  EXPECT_EQ(a.trace().frames_malformed, b.trace().frames_malformed);
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_TRUE(a.adversary_ids().empty());
}

TEST(AdversaryEngine, RosterDrawIsSeedDeterministicAndRoundRobin) {
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  AdversarySpec spec;
  spec.count = 2;
  spec.kinds = {AdversaryKind::kBlackhole, AdversaryKind::kSelfish};

  auto roster_of = [&](std::uint64_t seed) {
    SimConfig config;
    config.seed = seed;
    Simulator sim(g, flooding, ans, bandwidth_routes(), config, nullptr,
                  &spec);
    return sim.adversary_ids();
  };

  const std::vector<NodeId> first = roster_of(7);
  EXPECT_EQ(first, roster_of(7));  // replayable draw
  ASSERT_EQ(first.size(), 2u);
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));

  // Round-robin kinds: with two kinds and two victims, one of each.
  SimConfig config;
  config.seed = 7;
  Simulator sim(g, flooding, ans, bandwidth_routes(), config, nullptr, &spec);
  std::size_t blackholes = 0, selfish = 0;
  for (NodeId id : sim.adversary_ids()) {
    blackholes += sim.node(id).role() == AdversaryKind::kBlackhole;
    selfish += sim.node(id).role() == AdversaryKind::kSelfish;
  }
  EXPECT_EQ(blackholes, 1u);
  EXPECT_EQ(selfish, 1u);
  // Everyone off the roster stayed honest.
  for (NodeId u = 0; u < g.node_count(); ++u)
    if (!sim.is_adversary(u))
      EXPECT_EQ(sim.node(u).role(), AdversaryKind::kHonest) << "node " << u;
}

TEST(AdversaryEngine, ResetClearsRolesAndMonitor) {
  // A reset with no spec must return every node to honest and disarm the
  // monitor — batch runs reuse the simulator across honest and subverted
  // sweep points.
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  const OlsrNode::RouteFn routes = bandwidth_routes();
  const AdversarySpec spec = pinned(AdversaryKind::kBlackhole, {Fig1::v5});

  Simulator sim(g, flooding, ans, routes, SimConfig{}, nullptr, &spec);
  sim.run_to_convergence();
  sim.node(Fig1::v1).send_data(Fig1::v4, 1);
  sim.run_until(sim.now() + 2.0);
  ASSERT_GT(sim.monitor().counters().blackhole_absorptions, 0u);

  Simulator plain(g, flooding, ans, routes);
  plain.run_to_convergence();

  sim.reset(g, flooding, ans, routes, /*seed=*/1);
  const ConvergenceReport after = sim.run_to_convergence();
  EXPECT_TRUE(after.converged);
  EXPECT_TRUE(sim.adversary_ids().empty());
  EXPECT_EQ(sim.node(Fig1::v5).role(), AdversaryKind::kHonest);
  EXPECT_EQ(sim.monitor().counters().total(), 0u);
  EXPECT_EQ(sim.state_digest(), plain.state_digest());
}

}  // namespace
}  // namespace qolsr
