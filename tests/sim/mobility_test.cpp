// Mobility model contracts: waypoint motion stays inside the field and
// under the speed cap, every step leaves the graph's link set exactly the
// unit-disk set of its positions, surviving links keep their QoS records,
// churn tears down / restores links with remembered records, and traces
// are deterministic under a fixed seed.
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "graph/deployment.hpp"
#include "sim/mobility.hpp"
#include "util/rng.hpp"

namespace qolsr {
namespace {

Graph sample_graph(std::uint64_t seed, double side, double degree,
                   util::Rng& rng) {
  DeploymentConfig field;
  field.width = side;
  field.height = side;
  field.degree = degree;
  Graph graph;
  do {
    graph = sample_poisson_deployment(field, rng);
  } while (graph.node_count() < 8);
  assign_uniform_qos(graph, QosIntervals{}, rng);
  (void)seed;
  return graph;
}

std::map<std::pair<NodeId, NodeId>, LinkQos> link_map(const Graph& g) {
  std::map<std::pair<NodeId, NodeId>, LinkQos> links;
  for (NodeId u = 0; u < g.node_count(); ++u)
    for (const Edge& e : g.neighbors(u))
      if (e.to > u) links[{u, e.to}] = e.qos;
  return links;
}

TEST(UpdateUnitDiskLinks, MatchesFullRebuildAfterArbitraryMoves) {
  util::Rng rng(11);
  Graph graph = sample_graph(11, 300.0, 7.0, rng);
  const double radius = 100.0;
  for (int round = 0; round < 20; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    // Teleport a third of the nodes anywhere — far larger jumps than any
    // mobility model produces, so removals cross cell boundaries.
    for (NodeId u = 0; u < graph.node_count(); ++u)
      if (rng.uniform01() < 0.33)
        graph.set_position(u, {rng.uniform(0.0, 300.0),
                               rng.uniform(0.0, 300.0)});
    const auto before = link_map(graph);
    std::vector<LinkEvent> events;
    update_unit_disk_links(graph, radius, QosIntervals{}, rng, events);

    // The link set must equal a from-scratch unit-disk build.
    std::vector<Point> positions(graph.node_count());
    for (NodeId u = 0; u < graph.node_count(); ++u)
      positions[u] = graph.position(u);
    const Graph rebuilt = build_unit_disk_graph(positions, radius);
    ASSERT_EQ(graph.edge_count(), rebuilt.edge_count());
    for (NodeId u = 0; u < graph.node_count(); ++u) {
      const auto actual = graph.neighbors(u);
      const auto expected = rebuilt.neighbors(u);
      ASSERT_EQ(actual.size(), expected.size()) << "row " << u;
      for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(actual[i].to, expected[i].to) << "row " << u;
    }

    // Surviving links keep their QoS; every change is an event.
    const auto after = link_map(graph);
    std::size_t ups = 0, downs = 0;
    for (const LinkEvent& event : events) {
      EXPECT_LT(event.a, event.b);
      (event.up ? ups : downs) += 1;
    }
    EXPECT_EQ(after.size(), before.size() + ups - downs);
    for (const auto& [key, qos] : after) {
      const auto it = before.find(key);
      if (it != before.end()) EXPECT_EQ(qos, it->second);
    }
  }
}

TEST(RandomWaypoint, StaysInFieldAndUnderTheSpeedCap) {
  util::Rng rng(23);
  Graph graph = sample_graph(23, 250.0, 6.0, rng);
  WaypointConfig config;
  config.width = 250.0;
  config.height = 250.0;
  config.radius = 100.0;
  config.speed_min = 3.0;
  config.speed_max = 12.0;
  config.pause_epochs = 1;
  config.epoch_duration = 2.0;
  RandomWaypointModel model(config, graph, rng);

  std::vector<LinkEvent> events;
  for (int epoch = 0; epoch < 40; ++epoch) {
    std::vector<Point> before(graph.node_count());
    for (NodeId u = 0; u < graph.node_count(); ++u)
      before[u] = graph.position(u);
    events.clear();
    model.step(graph, rng, events);
    const double cap = config.speed_max * config.epoch_duration + 1e-9;
    for (NodeId u = 0; u < graph.node_count(); ++u) {
      const Point p = graph.position(u);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, config.width);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, config.height);
      EXPECT_LE(distance(before[u], p), cap) << "node " << u;
    }
  }
}

TEST(RandomWaypoint, PauseParksNodesForTheConfiguredEpochs) {
  Graph graph(1);
  graph.set_position(0, {0.0, 0.0});
  WaypointConfig config;
  config.width = 100.0;
  config.height = 100.0;
  config.radius = 50.0;
  config.speed_min = config.speed_max = 1000.0;  // arrives every epoch
  config.pause_epochs = 3;
  util::Rng rng(5);
  RandomWaypointModel model(config, graph, rng);

  std::vector<LinkEvent> events;
  model.step(graph, rng, events);  // teleports onto the waypoint
  const Point arrived = graph.position(0);
  for (std::size_t pause = 0; pause < config.pause_epochs; ++pause) {
    model.step(graph, rng, events);
    EXPECT_EQ(graph.position(0), arrived) << "pause epoch " << pause;
  }
  model.step(graph, rng, events);  // pause over: moving again
  EXPECT_NE(graph.position(0), arrived);
}

TEST(LinkChurn, FullDownRateClearsTheGraph) {
  util::Rng rng(31);
  Graph graph = sample_graph(31, 280.0, 7.0, rng);
  const auto original = link_map(graph);
  ASSERT_FALSE(original.empty());

  LinkChurnModel model(ChurnConfig{1.0, 0.0});
  std::vector<LinkEvent> events;
  model.step(graph, rng, events);
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_EQ(events.size(), original.size());
}

TEST(LinkChurn, CertainRecoveryThenCertainFailureFlapsEveryLink) {
  util::Rng rng(32);
  Graph graph = sample_graph(32, 280.0, 7.0, rng);
  const auto original = link_map(graph);
  LinkChurnModel churn(ChurnConfig{1.0, 1.0});
  std::vector<LinkEvent> events;
  churn.step(graph, rng, events);  // everything fails (empty recovery pool)
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_EQ(events.size(), original.size());
  events.clear();
  churn.step(graph, rng, events);
  // up_rate 1.0 resurrects every link before down_rate 1.0 kills it again;
  // the net graph is empty but every link produced an up and a down event.
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_EQ(events.size(), 2 * original.size());
}

TEST(LinkChurn, RecoveredLinksKeepTheirQosRecords) {
  util::Rng rng(99);
  Graph graph = sample_graph(99, 280.0, 7.0, rng);
  const auto original = link_map(graph);
  LinkChurnModel gentle(ChurnConfig{0.5, 1.0});
  std::vector<LinkEvent> events;
  gentle.step(graph, rng, events);  // ~half fail
  events.clear();
  gentle.step(graph, rng, events);  // all of those recover (some fail anew)
  for (const auto& [key, qos] : link_map(graph)) {
    const auto it = original.find(key);
    ASSERT_NE(it, original.end()) << "churn invented a link";
    EXPECT_EQ(qos, it->second) << "recovered link lost its QoS record";
  }
}

TEST(Mobility, TracesAreDeterministicUnderAFixedSeed) {
  auto run_trace = [](std::uint64_t seed) {
    util::Rng rng(seed);
    Graph graph = sample_graph(seed, 260.0, 6.0, rng);
    WaypointConfig config;
    config.width = 260.0;
    config.height = 260.0;
    config.radius = 100.0;
    config.speed_min = 2.0;
    config.speed_max = 10.0;
    RandomWaypointModel model(config, graph, rng);
    std::vector<LinkEvent> all;
    std::vector<LinkEvent> events;
    for (int epoch = 0; epoch < 15; ++epoch) {
      events.clear();
      model.step(graph, rng, events);
      all.insert(all.end(), events.begin(), events.end());
    }
    return std::make_pair(link_map(graph), all);
  };
  const auto a = run_trace(424242);
  const auto b = run_trace(424242);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace qolsr
