// The traffic-workload engine: seeded TrafficMatrix generation (arrival
// processes, endpoint patterns, determinism), the ContendedMedium capacity
// layer (FIFO queueing delay, tail drop with the kQueueDrop fate) — and
// the contract that an *inactive* spec is contractually invisible
// (byte-identical behavior, zero RNG draws), mirroring the FaultPlan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "core/fnbp.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "support/paper_graphs.hpp"

namespace qolsr {
namespace {

using testing::Fig1;

OlsrNode::RouteFn bandwidth_routes() {
  return [](const Graph& g, NodeId self, NodeId dest) {
    return compute_next_hop<BandwidthMetric>(g, self, dest);
  };
}

TrafficSpec poisson_spec() {
  TrafficSpec spec;
  spec.arrival = TrafficSpec::Arrival::kPoisson;
  return spec;
}

TEST(TrafficMatrix, InactiveSpecYieldsNothing) {
  const Graph g = Fig1::build();
  const TrafficSpec none;  // arrival = kNone
  EXPECT_FALSE(none.active());
  EXPECT_TRUE(TrafficMatrix::generate(none, g, 42).empty());

  // --load=0 must be indistinguishable from passing no traffic flags.
  TrafficSpec zero_load = poisson_spec();
  zero_load.load = 0.0;
  EXPECT_FALSE(zero_load.active());
  EXPECT_TRUE(TrafficMatrix::generate(zero_load, g, 42).empty());

  TrafficSpec zero_flows = poisson_spec();
  zero_flows.flows = 0;
  EXPECT_FALSE(zero_flows.active());
}

TEST(TrafficMatrix, GenerationIsSeedDeterministic) {
  const Graph g = Fig1::build();
  const TrafficSpec spec = poisson_spec();

  const TrafficMatrix a = TrafficMatrix::generate(spec, g, 42);
  const TrafficMatrix b = TrafficMatrix::generate(spec, g, 42);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.flows().size(), b.flows().size());
  for (std::size_t f = 0; f < a.flows().size(); ++f) {
    EXPECT_EQ(a.flows()[f].source, b.flows()[f].source);
    EXPECT_EQ(a.flows()[f].destination, b.flows()[f].destination);
  }
  ASSERT_EQ(a.packets().size(), b.packets().size());
  for (std::size_t i = 0; i < a.packets().size(); ++i) {
    EXPECT_EQ(a.packets()[i].offset, b.packets()[i].offset);
    EXPECT_EQ(a.packets()[i].payload_id, b.packets()[i].payload_id);
  }

  // A different seed reshuffles the schedule.
  const TrafficMatrix c = TrafficMatrix::generate(spec, g, 43);
  bool differs = c.packets().size() != a.packets().size();
  for (std::size_t i = 0; !differs && i < a.packets().size(); ++i)
    differs = a.packets()[i].offset != c.packets()[i].offset;
  EXPECT_TRUE(differs);
}

TEST(TrafficMatrix, PacketsAreSortedWithDisjointPayloadIds) {
  const Graph g = Fig1::build();
  const TrafficMatrix m = TrafficMatrix::generate(poisson_spec(), g, 7);
  ASSERT_FALSE(m.empty());
  std::set<std::uint32_t> ids;
  for (std::size_t i = 0; i < m.packets().size(); ++i) {
    const TrafficMatrix::Packet& p = m.packets()[i];
    EXPECT_GE(p.offset, 0.0);
    EXPECT_LT(p.offset, poisson_spec().duration);
    EXPECT_GE(p.payload_id, TrafficMatrix::kFirstPayloadId);
    EXPECT_LT(p.flow, m.flows().size());
    EXPECT_TRUE(ids.insert(p.payload_id).second) << "duplicate payload id";
    if (i > 0) EXPECT_GE(p.offset, m.packets()[i - 1].offset);
  }
}

TEST(TrafficMatrix, PacketCountTracksOfferedLoad) {
  const Graph g = Fig1::build();
  TrafficSpec spec = poisson_spec();
  spec.flows = 64;
  const double expected =
      static_cast<double>(spec.flows) * spec.packet_rate * spec.load *
      spec.duration;
  const auto count = [&](double load) {
    TrafficSpec s = spec;
    s.load = load;
    return static_cast<double>(TrafficMatrix::generate(s, g, 5)
                                   .packets()
                                   .size());
  };
  EXPECT_NEAR(count(1.0), expected, 0.15 * expected);
  EXPECT_NEAR(count(2.0), 2.0 * expected, 0.15 * 2.0 * expected);
}

TEST(TrafficMatrix, GatewayPatternSinksAtTheMaxDegreeNode) {
  // Fig. 1's busiest node is v5 (links to v1, v2, v3, v4, v6).
  const Graph g = Fig1::build();
  TrafficSpec spec = poisson_spec();
  spec.pattern = TrafficSpec::Pattern::kGateway;
  const TrafficMatrix m = TrafficMatrix::generate(spec, g, 11);
  ASSERT_FALSE(m.flows().empty());
  for (const TrafficMatrix::Flow& flow : m.flows()) {
    EXPECT_EQ(flow.destination, Fig1::v5);
    EXPECT_NE(flow.source, flow.destination);
  }
}

TEST(TrafficMatrix, HotspotPatternConvergesOnFewDestinations) {
  const Graph g = Fig1::build();
  TrafficSpec spec = poisson_spec();
  spec.pattern = TrafficSpec::Pattern::kHotspot;
  spec.hotspots = 2;
  spec.flows = 12;
  const TrafficMatrix m = TrafficMatrix::generate(spec, g, 3);
  ASSERT_EQ(m.flows().size(), 12u);
  std::set<NodeId> destinations;
  for (const TrafficMatrix::Flow& flow : m.flows()) {
    destinations.insert(flow.destination);
    EXPECT_NE(flow.source, flow.destination);
  }
  EXPECT_EQ(destinations.size(), 2u);
}

TEST(TrafficMatrix, ArrivalProcessMomentSanity) {
  // All three processes are calibrated to the same mean inter-arrival
  // 1/(rate*load); CBR is (near-)deterministic per flow while Pareto is
  // heavy-tailed — its per-flow packet counts spread far wider.
  const Graph g = Fig1::build();
  TrafficSpec spec = poisson_spec();
  spec.flows = 200;
  spec.duration = 5.0;  // expected 100 packets per flow

  const auto per_flow_counts = [&](TrafficSpec::Arrival arrival,
                                   double shape) {
    TrafficSpec s = spec;
    s.arrival = arrival;
    s.pareto_shape = shape;
    const TrafficMatrix m = TrafficMatrix::generate(s, g, 17);
    std::vector<double> counts(s.flows, 0.0);
    for (const TrafficMatrix::Packet& p : m.packets()) counts[p.flow] += 1.0;
    return counts;
  };
  const auto mean_of = [](const std::vector<double>& xs) {
    double sum = 0.0;
    for (double x : xs) sum += x;
    return sum / static_cast<double>(xs.size());
  };
  const auto stddev_of = [&](const std::vector<double>& xs) {
    const double m = mean_of(xs);
    double sq = 0.0;
    for (double x : xs) sq += (x - m) * (x - m);
    return std::sqrt(sq / static_cast<double>(xs.size()));
  };

  const auto cbr = per_flow_counts(TrafficSpec::Arrival::kCbr, 1.5);
  const auto poisson = per_flow_counts(TrafficSpec::Arrival::kPoisson, 1.5);
  const auto pareto = per_flow_counts(TrafficSpec::Arrival::kPareto, 1.2);

  // Same calibrated mean for the light-tailed processes...
  EXPECT_NEAR(mean_of(cbr), 100.0, 2.0);
  EXPECT_NEAR(mean_of(poisson), 100.0, 10.0);
  // ...CBR is metronomic, Poisson spreads like sqrt(n), and the
  // heavy-tailed Pareto spreads wider than both.
  EXPECT_LT(stddev_of(cbr), 1.0);
  EXPECT_GT(stddev_of(poisson), 2.0);
  EXPECT_GT(stddev_of(pareto), 2.0 * stddev_of(poisson));
}

TEST(ContendedMedium, InactiveSpecIsIndistinguishableFromNoSpec) {
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;

  Simulator plain;
  plain.reset(g, flooding, ans, bandwidth_routes(), 1);
  const ConvergenceReport plain_report = plain.run_to_convergence();

  TrafficSpec zero_load = poisson_spec();
  zero_load.load = 0.0;  // the CLI's --load=0
  Simulator gated;
  gated.reset(g, flooding, ans, bandwidth_routes(), 1, nullptr, &zero_load);
  EXPECT_FALSE(gated.contention_active());
  const ConvergenceReport gated_report = gated.run_to_convergence();

  EXPECT_EQ(plain_report.converged_at, gated_report.converged_at);
  EXPECT_EQ(plain.state_digest(), gated.state_digest());
  EXPECT_EQ(plain.trace().control_bytes, gated.trace().control_bytes);
  EXPECT_EQ(gated.trace().frames_queue_dropped, 0u);
}

TEST(ContendedMedium, BackloggedLinkDelaysDeliveryInFifoOrder) {
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  const TrafficSpec spec = poisson_spec();  // defaults: ample queue

  Simulator sim;
  sim.reset(g, flooding, ans, bandwidth_routes(), 1, nullptr, &spec);
  EXPECT_TRUE(sim.contention_active());
  ASSERT_TRUE(sim.run_to_convergence().converged);

  // Two back-to-back packets on the direct v1–v6 link: the second queues
  // behind the first's serialization time, so it arrives strictly later
  // and both pay at least propagation + one frame time.
  sim.node(Fig1::v1).send_data(Fig1::v6, 1);
  sim.node(Fig1::v1).send_data(Fig1::v6, 2);
  sim.run_until(sim.now() + 2.0);

  const auto& first = sim.trace().journeys.at(1);
  const auto& second = sim.trace().journeys.at(2);
  ASSERT_TRUE(first.delivered);
  ASSERT_TRUE(second.delivered);
  const double lat1 = first.delivered_at - first.sent_at;
  const double lat2 = second.delivered_at - second.sent_at;
  EXPECT_GT(lat1, sim.config().propagation_delay);
  EXPECT_GT(lat2, lat1);
}

TEST(ContendedMedium, QueueOverflowTailDropsWithTheQueueDropFate) {
  const Graph g = Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  TrafficSpec spec = poisson_spec();
  // Two data frames (21 wire + 512 payload bytes each) fill the queue; the
  // third must be tail-dropped whatever the link's capacity scale is.
  spec.queue_bytes = 1200;

  Simulator sim;
  sim.reset(g, flooding, ans, bandwidth_routes(), 1, nullptr, &spec);
  ASSERT_TRUE(sim.run_to_convergence().converged);

  for (std::uint32_t pid = 1; pid <= 4; ++pid)
    sim.node(Fig1::v1).send_data(Fig1::v6, pid);
  sim.run_until(sim.now() + 2.0);

  EXPECT_GT(sim.trace().frames_queue_dropped, 0u);
  bool saw_queue_drop = false;
  for (std::uint32_t pid = 1; pid <= 4; ++pid) {
    const auto& journey = sim.trace().journeys.at(pid);
    if (journey.drop == TraceStats::Journey::Drop::kQueueDrop) {
      saw_queue_drop = true;
      EXPECT_FALSE(journey.delivered);
    }
  }
  EXPECT_TRUE(saw_queue_drop);
}

}  // namespace
}  // namespace qolsr
