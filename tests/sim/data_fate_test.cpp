// Data-packet fate attribution at the forwarding layer: a frame naming a
// destination outside the deployment can only be forged or wire-corrupted
// (parse-time sanitation rejects any such *received* frame), so it must be
// charged to the wire (kMalformed) — not to the knowledge graph as
// kNoRoute, which would misattribute corruption as a routing failure in
// the figure-B/R fate columns. A genuinely unreachable in-range
// destination keeps charging kNoRoute.
#include <gtest/gtest.h>

#include "core/fnbp.hpp"
#include "routing/routing_table.hpp"
#include "sim/simulator.hpp"
#include "support/paper_graphs.hpp"

namespace qolsr {
namespace {

OlsrNode::RouteFn bandwidth_routes() {
  return [](const Graph& g, NodeId self, NodeId dest) {
    return compute_next_hop<BandwidthMetric>(g, self, dest);
  };
}

TEST(DataFate, OutOfRangeDestinationIsChargedMalformedNotNoRoute) {
  const Graph g = testing::Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();

  sim.node(testing::Fig1::v1).send_data(/*destination=*/99, /*payload=*/1);
  sim.run_until(sim.now() + 1.0);

  EXPECT_EQ(sim.trace().data_delivered, 0u);
  EXPECT_EQ(sim.trace().data_dropped, 1u);
  const auto it = sim.trace().journeys.find(1);
  ASSERT_NE(it, sim.trace().journeys.end());
  EXPECT_FALSE(it->second.delivered);
  EXPECT_EQ(it->second.drop, TraceStats::Journey::Drop::kMalformed);
}

TEST(DataFate, UnreachableInRangeDestinationStaysNoRoute) {
  Graph g = testing::Fig1::build();
  const NodeId island = g.add_node({1e6, 1e6});  // in range, no links
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();

  sim.node(testing::Fig1::v1).send_data(island, /*payload=*/2);
  sim.run_until(sim.now() + 1.0);

  const auto it = sim.trace().journeys.find(2);
  ASSERT_NE(it, sim.trace().journeys.end());
  EXPECT_EQ(it->second.drop, TraceStats::Journey::Drop::kNoRoute);
}

}  // namespace
}  // namespace qolsr
