// Steady-state allocation contracts of the packet simulator's hot paths.
// This TU replaces the global operator new/delete pair with counting
// wrappers; each test warms a structure to its high-water capacity, then
// asserts the steady-state window performs zero (duplicate set, knowledge
// cache) or strictly bounded (whole forwarding path) heap allocations —
// the regressions this guards against are exactly the per-packet
// to_graph/Dijkstra/map-node allocations the caching work removed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/fnbp.hpp"
#include "proto/duplicate_set.hpp"
#include "routing/routing_table.hpp"
#include "sim/simulator.hpp"
#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace qolsr {
namespace {

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

OlsrNode::RouteFn workspace_routes(DijkstraWorkspace& dws,
                                   NextHopScratch& bfs) {
  return [&dws, &bfs](const Graph& g, NodeId self, NodeId dest) {
    return compute_next_hop<BandwidthMetric>(g, self, dest, dws, bfs);
  };
}

TEST(Allocation, DuplicateSetSteadyStateAllocatesNothing) {
  DuplicateSet set(/*hold_time=*/5.0);
  double now = 0.0;
  const auto churn = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      now += 1.0;
      for (NodeId originator = 0; originator < 40; ++originator)
        set.check_and_insert(originator,
                             static_cast<std::uint16_t>(r * 40 + originator),
                             now);
      set.expire(now);
    }
  };
  // Warm to the high-water live set (~5 rounds in flight) and let the
  // first expiry sweeps size the compaction spare.
  churn(32);
  const std::size_t warm_capacity = set.capacity();
  const std::uint64_t before = allocations();
  churn(256);
  EXPECT_EQ(allocations() - before, 0u)
      << "pooled duplicate set allocated in steady state";
  EXPECT_EQ(set.capacity(), warm_capacity);
}

TEST(Allocation, KnowledgeCacheHitAllocatesNothing) {
  const Graph g = testing::random_geometric_graph(13, 6.0, 250.0);
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans,
                [](const Graph& kg, NodeId self, NodeId dest) {
                  return compute_next_hop<BandwidthMetric>(kg, self, dest);
                });
  sim.run_to_convergence();

  OlsrNode& node = sim.node(0);
  (void)node.knowledge_graph();  // one rebuild charges the cache
  const std::uint64_t before = allocations();
  for (int i = 0; i < 1000; ++i) (void)node.knowledge_graph();
  EXPECT_EQ(allocations() - before, 0u)
      << "cached knowledge view allocated on a pure hit";
}

TEST(Allocation, SteadyStateForwardingIsBounded) {
  // End-to-end budget for the whole data path — route memo hit, serialize,
  // delivery event, journey bookkeeping — once caches are warm. The
  // pre-cache code paid a Graph materialization plus a full Dijkstra per
  // traversed hop (hundreds of allocations per packet); the budget below
  // fails loudly if anything per-hop-heavy creeps back in.
  const Graph g = testing::Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  DijkstraWorkspace dws;
  NextHopScratch bfs;
  Simulator sim(g, flooding, ans, workspace_routes(dws, bfs));
  sim.run_to_convergence();

  // Warm: route memo for the v1->v3 destination, journey-map buckets.
  sim.node(testing::Fig1::v1).send_data(testing::Fig1::v3, 1);
  sim.run_until(sim.now() + 1.0);
  ASSERT_EQ(sim.trace().data_delivered, 1u);

  const int kPackets = 50;
  const std::uint64_t before = allocations();
  for (int i = 0; i < kPackets; ++i) {
    sim.node(testing::Fig1::v1).send_data(testing::Fig1::v3, 100 + i);
    sim.run_until(sim.now() + 0.05);
  }
  const std::uint64_t per_packet = (allocations() - before) / kPackets;
  EXPECT_EQ(sim.trace().data_delivered, 1u + kPackets);
  // 4 hops: one serialized frame + one delivery closure per hop, plus the
  // journey record. Anything per-hop-heavy blows well past this.
  EXPECT_LT(per_packet, 40u)
      << "forwarding allocated " << per_packet << " times per packet";
}

}  // namespace
}  // namespace qolsr
