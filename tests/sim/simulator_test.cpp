// Integration tests: the distributed OLSR control plane over the ideal MAC
// must converge to exactly the oracle state (neighbor views, ANS selection,
// advertised topology) that the evaluation harness computes directly from
// the graph — the justification for using the oracle in the figure
// reproductions (DESIGN.md §4.9).
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/fnbp.hpp"
#include "routing/advertised_topology.hpp"
#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

OlsrNode::RouteFn bandwidth_routes() {
  return [](const Graph& g, NodeId self, NodeId dest) {
    return compute_next_hop<BandwidthMetric>(g, self, dest);
  };
}

TEST(Simulator, HelloHandshakeBuildsSymmetricNeighborhoods) {
  const Graph g = testing::Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_until(5.0);  // a couple of HELLO rounds
  for (NodeId u = 0; u < g.node_count(); ++u) {
    std::vector<NodeId> expected;
    for (const Edge& e : g.neighbors(u)) expected.push_back(e.to);
    EXPECT_EQ(sim.node(u).tables().symmetric_neighbors(), expected)
        << "node " << u;
  }
}

TEST(Simulator, ConvergedLocalViewsEqualOracle) {
  const Graph g = testing::Fig2::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView oracle(g, u);
    const LocalView distributed = sim.node(u).tables().build_local_view();
    ASSERT_EQ(distributed.size(), oracle.size()) << "node " << u;
    for (std::uint32_t l = 0; l < oracle.size(); ++l)
      EXPECT_EQ(distributed.global_id(l), oracle.global_id(l));
    for (std::uint32_t a = 0; a < oracle.size(); ++a)
      for (std::uint32_t b = a + 1; b < oracle.size(); ++b)
        EXPECT_EQ(distributed.has_local_edge(a, b),
                  oracle.has_local_edge(a, b))
            << "node " << u << " pair " << oracle.global_id(a) << ","
            << oracle.global_id(b);
  }
}

TEST(Simulator, ConvergedAnsEqualsOracleSelection) {
  const Graph g = testing::Fig2::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();
  for (NodeId u = 0; u < g.node_count(); ++u)
    EXPECT_EQ(sim.node(u).ans(), ans.select(LocalView(g, u)))
        << "node " << u;
}

TEST(Simulator, TcFloodPopulatesEveryTopologyBase) {
  const Graph g = testing::Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();

  // Oracle advertised topology.
  std::vector<std::vector<NodeId>> oracle_ans(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u)
    oracle_ans[u] = ans.select(LocalView(g, u));
  const Graph oracle_adv = build_advertised_topology(g, oracle_ans);

  for (NodeId u = 0; u < g.node_count(); ++u) {
    const Graph known = sim.node(u).topology().to_graph(g.node_count());
    // Every advertised link must have reached u (ideal MAC, MPR flooding).
    for (NodeId a = 0; a < g.node_count(); ++a)
      for (const Edge& e : oracle_adv.neighbors(a))
        if (a < e.to)
          EXPECT_TRUE(known.has_edge(a, e.to))
              << "node " << u << " missing " << a << "-" << e.to;
  }
}

TEST(Simulator, DataPacketFollowsQosRoute) {
  const Graph g = testing::Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();
  sim.node(testing::Fig1::v1).send_data(testing::Fig1::v3, /*payload=*/1);
  sim.run_until(sim.now() + 1.0);

  EXPECT_EQ(sim.trace().data_delivered, 1u);
  const auto it = sim.trace().journeys.find(1);
  ASSERT_NE(it, sim.trace().journeys.end());
  EXPECT_TRUE(it->second.delivered);
  // The converged FNBP state routes over the widest path (Fig. 1 claim).
  EXPECT_EQ(it->second.path,
            (std::vector<NodeId>{testing::Fig1::v1, testing::Fig1::v6,
                                 testing::Fig1::v5, testing::Fig1::v4,
                                 testing::Fig1::v3}));
}

TEST(Simulator, ControlTrafficCountersAdvance) {
  const Graph g = testing::Fig1::build();
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();
  const TraceStats& t = sim.trace();
  EXPECT_GT(t.hello_sent, 0u);
  EXPECT_GT(t.tc_originated, 0u);
  EXPECT_GT(t.tc_forwarded, 0u);
  EXPECT_GT(t.tc_dropped_duplicate, 0u);  // flooding always echoes some
  EXPECT_GT(t.control_bytes, 0u);
}

TEST(Simulator, DeterministicGivenSeed) {
  const Graph g = testing::random_geometric_graph(4242, 6.0, 250.0);
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  SimConfig config;
  config.seed = 99;
  Simulator a(g, flooding, ans, bandwidth_routes(), config);
  Simulator b(g, flooding, ans, bandwidth_routes(), config);
  a.run_to_convergence();
  b.run_to_convergence();
  EXPECT_EQ(a.trace().hello_sent, b.trace().hello_sent);
  EXPECT_EQ(a.trace().tc_originated, b.trace().tc_originated);
  EXPECT_EQ(a.trace().control_bytes, b.trace().control_bytes);
  for (NodeId u = 0; u < g.node_count(); ++u)
    EXPECT_EQ(a.node(u).ans(), b.node(u).ans());
}

TEST(Simulator, RandomNetworkConvergesToOracle) {
  const Graph g = testing::random_geometric_graph(31337, 6.0, 250.0);
  const Rfc3626Selector flooding;
  const FnbpSelector<BandwidthMetric> ans;
  Simulator sim(g, flooding, ans, bandwidth_routes());
  sim.run_to_convergence();
  for (NodeId u = 0; u < g.node_count(); ++u)
    EXPECT_EQ(sim.node(u).ans(), ans.select(LocalView(g, u)))
        << "node " << u;
}

TEST(Simulator, QolsrModeUsesSameSetForFloodingAndRouting) {
  // Original QOLSR: the MPR-2 set is both the flooding set and the ANS.
  const Graph g = testing::Fig1::build();
  const QolsrSelector<BandwidthMetric> qolsr(QolsrVariant::kMpr2);
  Simulator sim(g, qolsr, qolsr, bandwidth_routes());
  sim.run_to_convergence();
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_EQ(sim.node(u).ans(), sim.node(u).flooding_mpr());
    EXPECT_EQ(sim.node(u).ans(), qolsr.select(LocalView(g, u)));
  }
}

}  // namespace
}  // namespace qolsr
