#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace qolsr {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 10.0);
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  q.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HorizonStopsExecution) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  q.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now(), 3.0);
  q.run_until(6.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CallbacksCanScheduleMoreEvents) {
  EventQueue q;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 5) q.schedule_in(1.0, tick);
  };
  q.schedule_at(0.0, tick);
  q.run_until(100.0);
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(q.now(), 100.0);
}

TEST(EventQueue, ScheduleInIsRelativeToNow) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(2.0, [&] {
    q.schedule_in(1.5, [&] { fired_at = q.now(); });
  });
  q.run_until(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(EventQueue, NowAdvancesOnlyToFiredEvents) {
  EventQueue q;
  double seen = -1.0;
  q.schedule_at(4.0, [&] { seen = q.now(); });
  q.run_until(8.0);
  EXPECT_DOUBLE_EQ(seen, 4.0);
}

}  // namespace
}  // namespace qolsr
