#include "graph/rng_reduction.hpp"

#include <gtest/gtest.h>

#include "path/first_hops.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

LinkQos qos_bw(double b, double d = 1.0) {
  LinkQos q;
  q.bandwidth = b;
  q.delay = d;
  return q;
}

TEST(RngReduce, RemovesDominatedBandwidthEdge) {
  // Triangle: (0,1) weak, both (0,2) and (2,1) stronger => (0,1) dropped.
  Graph g(3);
  g.add_edge(0, 1, qos_bw(2));
  g.add_edge(0, 2, qos_bw(8));
  g.add_edge(2, 1, qos_bw(9));
  const LocalView view(g, 0);
  const LocalView reduced = rng_reduce<BandwidthMetric>(view);
  EXPECT_FALSE(reduced.has_local_edge(view.local_id(0), view.local_id(1)));
  EXPECT_TRUE(reduced.has_local_edge(view.local_id(0), view.local_id(2)));
  EXPECT_TRUE(reduced.has_local_edge(view.local_id(2), view.local_id(1)));
}

TEST(RngReduce, KeepsEdgeWhenWitnessNotStrictlyBetter) {
  // Witness ties on one side: strictness keeps the edge.
  Graph g(3);
  g.add_edge(0, 1, qos_bw(5));
  g.add_edge(0, 2, qos_bw(5));
  g.add_edge(2, 1, qos_bw(9));
  const LocalView view(g, 0);
  const LocalView reduced = rng_reduce<BandwidthMetric>(view);
  EXPECT_TRUE(reduced.has_local_edge(view.local_id(0), view.local_id(1)));
}

TEST(RngReduce, DelayUsesMaxForm) {
  // (0,1) has delay 10; witness path has max(3,4)=4 < 10 => dropped.
  Graph g(3);
  g.add_edge(0, 1, qos_bw(1, 10));
  g.add_edge(0, 2, qos_bw(1, 3));
  g.add_edge(2, 1, qos_bw(1, 4));
  const LocalView view(g, 0);
  const LocalView reduced = rng_reduce<DelayMetric>(view);
  EXPECT_FALSE(reduced.has_local_edge(view.local_id(0), view.local_id(1)));
}

TEST(RngReduce, DelayKeepsEdgeWhenWitnessSlowerOnOneLeg) {
  // max(3, 12) > 10 => kept, even though 3 < 10.
  Graph g(3);
  g.add_edge(0, 1, qos_bw(1, 10));
  g.add_edge(0, 2, qos_bw(1, 3));
  g.add_edge(2, 1, qos_bw(1, 12));
  const LocalView view(g, 0);
  const LocalView reduced = rng_reduce<DelayMetric>(view);
  EXPECT_TRUE(reduced.has_local_edge(view.local_id(0), view.local_id(1)));
}

TEST(RngReduce, NoCommonNeighborKeepsEverything) {
  Graph g(4);  // path 0-1-2-3: no triangles
  g.add_edge(0, 1, qos_bw(1));
  g.add_edge(1, 2, qos_bw(2));
  g.add_edge(2, 3, qos_bw(3));
  const LocalView view(g, 1);
  const LocalView reduced = rng_reduce<BandwidthMetric>(view);
  for (std::uint32_t a = 0; a < view.size(); ++a)
    EXPECT_EQ(reduced.neighbors(a).size(), view.neighbors(a).size());
}

class RngReducePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngReducePropertyTest, ReductionPreservesBestValues) {
  // Toussaint-style soundness under the bandwidth metric: dropping an edge
  // dominated by a strictly-better 2-edge detour never lowers the widest-
  // path value between any pair that stays connected in the view.
  const Graph g = testing::random_geometric_graph(GetParam(), 7.0, 250.0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    if (view.size() < 3) continue;
    const LocalView reduced = rng_reduce<BandwidthMetric>(view);
    const FirstHopTable before = compute_first_hops<BandwidthMetric>(view);
    const FirstHopTable after = compute_first_hops<BandwidthMetric>(reduced);
    for (std::uint32_t v = 1; v < view.size(); ++v) {
      if (before.fp[v].empty()) continue;
      ASSERT_FALSE(after.fp[v].empty())
          << "reduction disconnected " << view.global_id(v);
      EXPECT_TRUE(metric_equal(before.best[v], after.best[v]))
          << "node " << u << " target " << view.global_id(v) << ": "
          << before.best[v] << " vs " << after.best[v];
    }
  }
}

TEST_P(RngReducePropertyTest, ReductionIsSubgraph) {
  const Graph g = testing::random_geometric_graph(GetParam(), 7.0, 250.0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    const LocalView reduced = rng_reduce<DelayMetric>(view);
    std::size_t before = 0, after = 0;
    for (std::uint32_t a = 0; a < view.size(); ++a) {
      before += view.neighbors(a).size();
      after += reduced.neighbors(a).size();
      for (const LocalView::LocalEdge& e : reduced.neighbors(a))
        EXPECT_TRUE(view.has_local_edge(a, e.to));
    }
    EXPECT_LE(after, before);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngReducePropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace qolsr
