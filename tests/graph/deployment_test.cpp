#include "graph/deployment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace qolsr {
namespace {

TEST(DeploymentConfig, IntensityMatchesPaperFormula) {
  DeploymentConfig c;
  c.degree = 20.0;
  c.radius = 100.0;
  // λ = δ / (π R²), paper §IV-A footnote.
  EXPECT_NEAR(c.intensity(), 20.0 / (std::numbers::pi * 1e4), 1e-12);
  // Expected nodes in the 1000x1000 field: λ * area ≈ 636.6.
  EXPECT_NEAR(c.expected_nodes(), 636.62, 0.01);
}

TEST(BuildUnitDisk, LinksIffWithinRadius) {
  std::vector<Point> pos{{0, 0}, {50, 0}, {150, 0}, {0, 99.9}, {0, 100.2}};
  const Graph g = build_unit_disk_graph(pos, 100.0);
  EXPECT_TRUE(g.has_edge(0, 1));    // 50 apart
  EXPECT_FALSE(g.has_edge(0, 2));   // 150 apart
  EXPECT_TRUE(g.has_edge(1, 2));    // 100 apart == R counts (|uv| <= R)
  EXPECT_TRUE(g.has_edge(0, 3));    // 99.9
  EXPECT_FALSE(g.has_edge(0, 4));   // 100.2
}

TEST(BuildUnitDisk, EmptyPositions) {
  const Graph g = build_unit_disk_graph({}, 100.0);
  EXPECT_EQ(g.node_count(), 0u);
}

TEST(BuildUnitDisk, MatchesBruteForceOnRandomPoints) {
  util::Rng rng(5);
  std::vector<Point> pos;
  for (int i = 0; i < 120; ++i)
    pos.push_back({rng.uniform(0, 500), rng.uniform(0, 500)});
  const Graph g = build_unit_disk_graph(pos, 100.0);
  for (NodeId u = 0; u < pos.size(); ++u)
    for (NodeId v = u + 1; v < pos.size(); ++v)
      EXPECT_EQ(g.has_edge(u, v), within_radius(pos[u], pos[v], 100.0))
          << u << "," << v;
}

TEST(PoissonDeployment, NodeCountNearExpectation) {
  DeploymentConfig c;
  c.degree = 15.0;
  util::Rng rng(77);
  util::RunningStats counts;
  for (int i = 0; i < 30; ++i)
    counts.add(static_cast<double>(
        sample_poisson_deployment(c, rng).node_count()));
  EXPECT_NEAR(counts.mean(), c.expected_nodes(), 0.1 * c.expected_nodes());
}

TEST(PoissonDeployment, InteriorDegreeNearDelta) {
  // Mean degree of nodes away from the border should approach δ.
  DeploymentConfig c;
  c.degree = 12.0;
  util::Rng rng(123);
  util::RunningStats degrees;
  for (int rep = 0; rep < 10; ++rep) {
    const Graph g = sample_poisson_deployment(c, rng);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const Point p = g.position(v);
      if (p.x < c.radius || p.y < c.radius || p.x > c.width - c.radius ||
          p.y > c.height - c.radius)
        continue;  // border effect halves coverage
      degrees.add(static_cast<double>(g.degree(v)));
    }
  }
  EXPECT_NEAR(degrees.mean(), 12.0, 1.0);
}

TEST(PoissonDeployment, PositionsInsideField) {
  DeploymentConfig c;
  c.degree = 10.0;
  util::Rng rng(3);
  const Graph g = sample_poisson_deployment(c, rng);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_GE(g.position(v).x, 0.0);
    EXPECT_LT(g.position(v).x, c.width);
    EXPECT_GE(g.position(v).y, 0.0);
    EXPECT_LT(g.position(v).y, c.height);
  }
}

TEST(AssignUniformQos, ValuesInsideIntervals) {
  util::Rng rng(9);
  DeploymentConfig c;
  c.degree = 10.0;
  Graph g = sample_poisson_deployment(c, rng);
  QosIntervals iv;
  iv.bandwidth_lo = 2.0;
  iv.bandwidth_hi = 3.0;
  iv.delay_lo = 0.5;
  iv.delay_hi = 0.6;
  assign_uniform_qos(g, iv, rng);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const Edge& e : g.neighbors(u)) {
      EXPECT_GE(e.qos.bandwidth, 2.0);
      EXPECT_LT(e.qos.bandwidth, 3.0);
      EXPECT_GE(e.qos.delay, 0.5);
      EXPECT_LT(e.qos.delay, 0.6);
    }
  }
}

TEST(AssignUniformQos, SymmetricPerLink) {
  util::Rng rng(11);
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  assign_uniform_qos(g, {}, rng);
  EXPECT_EQ(g.edge_qos(0, 1)->bandwidth, g.edge_qos(1, 0)->bandwidth);
  EXPECT_EQ(g.edge_qos(1, 2)->delay, g.edge_qos(2, 1)->delay);
}

}  // namespace
}  // namespace qolsr
