#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

TEST(Connectivity, SingleComponent) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 1u);
  EXPECT_TRUE(c.connected(0, 2));
}

TEST(Connectivity, TwoComponents) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 2u);
  EXPECT_TRUE(c.connected(0, 1));
  EXPECT_FALSE(c.connected(1, 2));
  EXPECT_TRUE(is_connected(g, 2, 3));
  EXPECT_FALSE(is_connected(g, 0, 3));
}

TEST(Connectivity, IsolatedNodesAreOwnComponents) {
  Graph g(3);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3u);
}

TEST(Connectivity, LargestComponent) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);  // component of 3
  g.add_edge(3, 4);  // component of 2
  const auto largest = largest_component(g);
  EXPECT_EQ(largest, (std::vector<NodeId>{0, 1, 2}));
}

TEST(Connectivity, LabelsAreDenseAndConsistent) {
  const Graph g = testing::random_geometric_graph(55, 4.0, 400.0);
  const Components c = connected_components(g);
  ASSERT_EQ(c.labels.size(), g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_LT(c.labels[u], c.count);
    for (const Edge& e : g.neighbors(u))
      EXPECT_EQ(c.labels[u], c.labels[e.to]);  // edges never cross components
  }
}

}  // namespace
}  // namespace qolsr
