#include "graph/local_view.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

using testing::Fig2;

TEST(LocalView, OriginIsIndexZero) {
  const Graph g = Fig2::build();
  const LocalView view(g, Fig2::u);
  EXPECT_EQ(view.origin(), Fig2::u);
  EXPECT_EQ(view.global_id(LocalView::origin_index()), Fig2::u);
}

TEST(LocalView, Fig2NeighborhoodsMatchPaper) {
  const Graph g = Fig2::build();
  const LocalView view(g, Fig2::u);

  std::vector<NodeId> one_hop;
  for (std::uint32_t l : view.one_hop()) one_hop.push_back(view.global_id(l));
  EXPECT_EQ(one_hop, (std::vector<NodeId>{Fig2::v1, Fig2::v2, Fig2::v4,
                                          Fig2::v5, Fig2::v6, Fig2::v7}));

  std::vector<NodeId> two_hop;
  for (std::uint32_t l : view.two_hop()) two_hop.push_back(view.global_id(l));
  EXPECT_EQ(two_hop, (std::vector<NodeId>{Fig2::v3, Fig2::v8, Fig2::v9,
                                          Fig2::v10, Fig2::v11}));
}

TEST(LocalView, HiddenLinkBetweenTwoHopNodesExcluded) {
  // The paper's dashed link (v8,v9): u must not know it.
  const Graph g = Fig2::build();
  const LocalView view(g, Fig2::u);
  const std::uint32_t l8 = view.local_id(Fig2::v8);
  const std::uint32_t l9 = view.local_id(Fig2::v9);
  ASSERT_NE(l8, kInvalidNode);
  ASSERT_NE(l9, kInvalidNode);
  EXPECT_TRUE(g.has_edge(Fig2::v8, Fig2::v9));
  EXPECT_FALSE(view.has_local_edge(l8, l9));
}

TEST(LocalView, KnownLinksCarryQos) {
  const Graph g = Fig2::build();
  const LocalView view(g, Fig2::u);
  const std::uint32_t lv6 = view.local_id(Fig2::v6);
  const std::uint32_t lv8 = view.local_id(Fig2::v8);
  const LinkQos* q = view.local_edge_qos(lv6, lv8);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->bandwidth, 5.0);
}

TEST(LocalView, LocalIdRoundTrip) {
  const Graph g = Fig2::build();
  const LocalView view(g, Fig2::u);
  for (std::uint32_t l = 0; l < view.size(); ++l)
    EXPECT_EQ(view.local_id(view.global_id(l)), l);
  EXPECT_EQ(view.local_id(9999), kInvalidNode);
  EXPECT_FALSE(view.contains(9999));
}

TEST(LocalView, OneTwoHopPredicates) {
  const Graph g = Fig2::build();
  const LocalView view(g, Fig2::u);
  EXPECT_FALSE(view.is_one_hop(LocalView::origin_index()));
  EXPECT_FALSE(view.is_two_hop(LocalView::origin_index()));
  EXPECT_TRUE(view.is_one_hop(view.local_id(Fig2::v1)));
  EXPECT_FALSE(view.is_two_hop(view.local_id(Fig2::v1)));
  EXPECT_TRUE(view.is_two_hop(view.local_id(Fig2::v9)));
}

TEST(LocalView, RemoveLocalEdge) {
  const Graph g = Fig2::build();
  LocalView view(g, Fig2::u);
  const std::uint32_t a = view.local_id(Fig2::v1);
  const std::uint32_t b = view.local_id(Fig2::v3);
  ASSERT_TRUE(view.has_local_edge(a, b));
  view.remove_local_edge(a, b);
  EXPECT_FALSE(view.has_local_edge(a, b));
  EXPECT_FALSE(view.has_local_edge(b, a));
}

TEST(LocalView, IsolatedNode) {
  Graph g(3);
  g.add_edge(1, 2);
  const LocalView view(g, 0);
  EXPECT_EQ(view.size(), 1u);
  EXPECT_TRUE(view.one_hop().empty());
  EXPECT_TRUE(view.two_hop().empty());
}

TEST(LocalView, TableConstructorMatchesGraphConstructor) {
  // Building the view from simulated HELLO data must give the same result
  // as extracting it from the graph.
  const Graph g = Fig2::build();
  const LocalView oracle(g, Fig2::u);

  std::vector<LocalView::NeighborLink> one_hop;
  std::vector<std::vector<LocalView::NeighborLink>> neighbor_links;
  for (const Edge& e : g.neighbors(Fig2::u)) {
    one_hop.push_back({e.to, e.qos});
    std::vector<LocalView::NeighborLink> links;
    for (const Edge& f : g.neighbors(e.to)) links.push_back({f.to, f.qos});
    neighbor_links.push_back(std::move(links));
  }
  const LocalView from_tables(Fig2::u, one_hop, neighbor_links);

  ASSERT_EQ(from_tables.size(), oracle.size());
  for (std::uint32_t l = 0; l < oracle.size(); ++l)
    EXPECT_EQ(from_tables.global_id(l), oracle.global_id(l));
  for (std::uint32_t a = 0; a < oracle.size(); ++a) {
    for (std::uint32_t b = 0; b < oracle.size(); ++b) {
      EXPECT_EQ(from_tables.has_local_edge(a, b), oracle.has_local_edge(a, b))
          << a << "," << b;
    }
  }
}

class LocalViewPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LocalViewPropertyTest, ViewMatchesDefinition) {
  const Graph g = testing::random_geometric_graph(GetParam());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const LocalView view(g, u);
    // V_u = {u} ∪ N(u) ∪ N²(u): every member is within 2 hops.
    for (std::uint32_t l = 1; l < view.size(); ++l) {
      const NodeId v = view.global_id(l);
      if (view.is_one_hop(l)) {
        EXPECT_TRUE(g.has_edge(u, v));
      } else {
        EXPECT_FALSE(g.has_edge(u, v));
        bool via_common = false;
        for (const Edge& e : g.neighbors(u))
          if (g.has_edge(e.to, v)) via_common = true;
        EXPECT_TRUE(via_common) << "2-hop " << v << " from " << u;
      }
    }
    // E_u: exactly the graph edges with an endpoint in N(u), both ends
    // in V_u.
    for (std::uint32_t a = 0; a < view.size(); ++a) {
      for (const LocalView::LocalEdge& e : view.neighbors(a)) {
        EXPECT_TRUE(view.is_one_hop(a) || view.is_one_hop(e.to) ||
                    a == LocalView::origin_index() ||
                    e.to == LocalView::origin_index());
        EXPECT_TRUE(g.has_edge(view.global_id(a), view.global_id(e.to)));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalViewPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace qolsr
