#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace qolsr {
namespace {

LinkQos qos_bw(double b) {
  LinkQos q;
  q.bandwidth = b;
  return q;
}

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, AddNodesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.node_count(), 3u);
  g.add_edge(0, 1, qos_bw(5));
  g.add_edge(1, 2, qos_bw(7));
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // undirected
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, AddNodeReturnsSequentialIds) {
  Graph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node({1.0, 2.0}), 1u);
  EXPECT_EQ(g.position(1).x, 1.0);
  EXPECT_EQ(g.position(1).y, 2.0);
}

TEST(Graph, EdgeQosSharedBothDirections) {
  Graph g(2);
  g.add_edge(0, 1, qos_bw(4));
  ASSERT_NE(g.edge_qos(0, 1), nullptr);
  ASSERT_NE(g.edge_qos(1, 0), nullptr);
  EXPECT_EQ(g.edge_qos(0, 1)->bandwidth, 4.0);
  EXPECT_EQ(g.edge_qos(1, 0)->bandwidth, 4.0);
  EXPECT_EQ(g.edge_qos(0, 1)->bandwidth, g.edge_qos(1, 0)->bandwidth);
}

TEST(Graph, SetEdgeQosUpdatesBothDirections) {
  Graph g(2);
  g.add_edge(0, 1, qos_bw(4));
  EXPECT_TRUE(g.set_edge_qos(1, 0, qos_bw(9)));
  EXPECT_EQ(g.edge_qos(0, 1)->bandwidth, 9.0);
  EXPECT_EQ(g.edge_qos(1, 0)->bandwidth, 9.0);
}

TEST(Graph, SetEdgeQosMissingEdgeFails) {
  Graph g(3);
  EXPECT_FALSE(g.set_edge_qos(0, 2, qos_bw(1)));
}

TEST(Graph, EdgeQosMissingReturnsNull) {
  Graph g(2);
  EXPECT_EQ(g.edge_qos(0, 1), nullptr);
}

TEST(Graph, NeighborsSortedById) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto n = g.neighbors(2);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0].to, 0u);
  EXPECT_EQ(n[1].to, 3u);
  EXPECT_EQ(n[2].to, 4u);
}

TEST(Graph, IsolatedNodeHasNoNeighbors) {
  Graph g(2);
  EXPECT_TRUE(g.neighbors(0).empty());
  EXPECT_EQ(g.degree(0), 0u);
}

}  // namespace
}  // namespace qolsr
