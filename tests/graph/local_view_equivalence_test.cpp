// Equivalence of the CSR LocalView/LocalViewBuilder against a
// straightforward reference construction (hash-map global→local indexing,
// per-row sorted-insert adjacency — the pre-CSR implementation), on the
// paper graphs, random geometric and dense uniform graphs, for both the
// full-graph and the HELLO-table constructors.
#include "graph/local_view.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "graph/deployment.hpp"
#include "support/paper_graphs.hpp"
#include "support/random_graphs.hpp"

namespace qolsr {
namespace {

/// Reference view: the straightforward construction the CSR builder
/// replaced, kept deliberately naive.
struct RefView {
  NodeId origin = kInvalidNode;
  std::vector<NodeId> global_ids;  // [0]=u, N(u) asc, N²(u) asc
  std::uint32_t first_two_hop = 1;
  std::unordered_map<NodeId, std::uint32_t> locals;
  std::vector<std::vector<LocalView::LocalEdge>> adjacency;  // rows sorted

  std::uint32_t local_id(NodeId global) const {
    auto it = locals.find(global);
    return it == locals.end() ? kInvalidNode : it->second;
  }
  bool is_one_hop(std::uint32_t l) const {
    return l != 0 && l < first_two_hop;
  }

  void index(NodeId u, const std::vector<NodeId>& one_hop,
             const std::vector<NodeId>& two_hop) {
    origin = u;
    global_ids.push_back(u);
    for (NodeId v : one_hop) global_ids.push_back(v);
    first_two_hop = static_cast<std::uint32_t>(global_ids.size());
    for (NodeId v : two_hop) global_ids.push_back(v);
    for (std::uint32_t i = 0; i < global_ids.size(); ++i)
      locals.emplace(global_ids[i], i);
    adjacency.resize(global_ids.size());
  }

  bool has_edge(std::uint32_t a, std::uint32_t b) const {
    for (const auto& e : adjacency[a])
      if (e.to == b) return true;
    return false;
  }

  void add_edge(std::uint32_t a, std::uint32_t b, const LinkQos& qos) {
    auto insert_sorted = [](std::vector<LocalView::LocalEdge>& row,
                            LocalView::LocalEdge e) {
      auto it = std::lower_bound(
          row.begin(), row.end(), e.to,
          [](const LocalView::LocalEdge& lhs, std::uint32_t id) {
            return lhs.to < id;
          });
      row.insert(it, e);
    };
    insert_sorted(adjacency[a], {b, qos});
    insert_sorted(adjacency[b], {a, qos});
  }
};

RefView ref_from_graph(const Graph& graph, NodeId u) {
  RefView ref;
  std::vector<NodeId> one_hop;
  for (const Edge& e : graph.neighbors(u)) one_hop.push_back(e.to);
  std::vector<NodeId> two_hop;
  for (NodeId v : one_hop) {
    for (const Edge& e : graph.neighbors(v)) {
      if (e.to == u) continue;
      if (std::binary_search(one_hop.begin(), one_hop.end(), e.to)) continue;
      two_hop.push_back(e.to);
    }
  }
  std::sort(two_hop.begin(), two_hop.end());
  two_hop.erase(std::unique(two_hop.begin(), two_hop.end()), two_hop.end());
  ref.index(u, one_hop, two_hop);
  for (NodeId v : one_hop) {
    const std::uint32_t lv = ref.local_id(v);
    for (const Edge& e : graph.neighbors(v)) {
      const std::uint32_t lw = ref.local_id(e.to);
      if (lw == kInvalidNode) continue;
      if (ref.is_one_hop(lw) && e.to < v) continue;
      ref.add_edge(lv, lw, e.qos);
    }
  }
  return ref;
}

RefView ref_from_hello(
    NodeId u, const std::vector<LocalView::NeighborLink>& one_hop,
    const std::vector<std::vector<LocalView::NeighborLink>>& neighbor_links) {
  RefView ref;
  std::vector<NodeId> one_hop_ids;
  for (const auto& l : one_hop) one_hop_ids.push_back(l.to);
  std::sort(one_hop_ids.begin(), one_hop_ids.end());
  std::vector<NodeId> two_hop;
  for (const auto& links : neighbor_links) {
    for (const auto& l : links) {
      if (l.to == u) continue;
      if (std::binary_search(one_hop_ids.begin(), one_hop_ids.end(), l.to))
        continue;
      two_hop.push_back(l.to);
    }
  }
  std::sort(two_hop.begin(), two_hop.end());
  two_hop.erase(std::unique(two_hop.begin(), two_hop.end()), two_hop.end());
  ref.index(u, one_hop_ids, two_hop);
  for (const auto& l : one_hop) ref.add_edge(0, ref.local_id(l.to), l.qos);
  for (std::size_t i = 0; i < one_hop.size(); ++i) {
    const std::uint32_t lv = ref.local_id(one_hop[i].to);
    for (const auto& l : neighbor_links[i]) {
      if (l.to == u) continue;
      const std::uint32_t lw = ref.local_id(l.to);
      if (lw == kInvalidNode) continue;
      if (ref.is_one_hop(lw) && l.to < one_hop[i].to) continue;
      if (ref.has_edge(lv, lw)) continue;  // tolerate asymmetric reports
      ref.add_edge(lv, lw, l.qos);
    }
  }
  return ref;
}

void expect_equivalent(const LocalView& view, const RefView& ref) {
  ASSERT_EQ(view.size(), ref.global_ids.size());
  EXPECT_EQ(view.origin(), ref.origin);
  for (std::uint32_t l = 0; l < view.size(); ++l) {
    EXPECT_EQ(view.global_id(l), ref.global_ids[l]);
    EXPECT_EQ(view.local_id(ref.global_ids[l]), l);
    EXPECT_EQ(view.is_one_hop(l), ref.is_one_hop(l));
    EXPECT_EQ(view.is_two_hop(l), l >= ref.first_two_hop);
    const auto row = view.neighbors(l);
    ASSERT_EQ(row.size(), ref.adjacency[l].size()) << "row " << l;
    for (std::size_t k = 0; k < row.size(); ++k) {
      EXPECT_EQ(row[k].to, ref.adjacency[l][k].to);
      EXPECT_EQ(row[k].qos, ref.adjacency[l][k].qos);
    }
  }
  // Unknown globals must not resolve.
  EXPECT_EQ(view.local_id(static_cast<NodeId>(1u << 30)), kInvalidNode);
}

void expect_all_views_equivalent(const Graph& g) {
  LocalViewBuilder builder;  // one builder reused across all nodes
  LocalView view;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    builder.build(g, u, view);
    expect_equivalent(view, ref_from_graph(g, u));
    // The convenience constructor goes through the same path.
    expect_equivalent(LocalView(g, u), ref_from_graph(g, u));
  }
}

TEST(LocalViewEquivalence, PaperGraphs) {
  expect_all_views_equivalent(testing::Fig1::build());
  expect_all_views_equivalent(testing::Fig2::build());
  expect_all_views_equivalent(testing::Fig4::build());
  expect_all_views_equivalent(testing::Fig5::build());
}

TEST(LocalViewEquivalence, RandomGeometricGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    expect_all_views_equivalent(testing::random_geometric_graph(seed, 8.0));
    expect_all_views_equivalent(testing::random_geometric_graph(seed, 16.0));
  }
}

TEST(LocalViewEquivalence, DenseUniformGraphs) {
  // Dense two-hop overlap: the corner where the old per-candidate-edge
  // binary-search membership probe was quadratic.
  expect_all_views_equivalent(testing::random_uniform_graph(5, 40, 0.3));
  expect_all_views_equivalent(testing::random_uniform_graph(6, 60, 0.5));
}

TEST(LocalViewEquivalence, IntegralWeights) {
  Graph g = testing::random_uniform_graph(7, 30, 0.25);
  util::Rng rng(99);
  QosIntervals qos;
  qos.integral = true;
  assign_uniform_qos(g, qos, rng);
  expect_all_views_equivalent(g);
}

TEST(LocalViewEquivalence, HelloTableConstructor) {
  for (std::uint64_t seed : {11u, 12u}) {
    const Graph g = testing::random_geometric_graph(seed, 8.0);
    for (NodeId u = 0; u < g.node_count(); ++u) {
      std::vector<LocalView::NeighborLink> one_hop;
      std::vector<std::vector<LocalView::NeighborLink>> neighbor_links;
      for (const Edge& e : g.neighbors(u)) {
        one_hop.push_back({e.to, e.qos});
        std::vector<LocalView::NeighborLink> links;
        for (const Edge& f : g.neighbors(e.to)) links.push_back({f.to, f.qos});
        neighbor_links.push_back(std::move(links));
      }
      const LocalView view(u, one_hop, neighbor_links);
      expect_equivalent(view, ref_from_hello(u, one_hop, neighbor_links));
      // HELLO-derived state of a full graph equals the oracle view.
      expect_equivalent(LocalView(g, u), ref_from_hello(u, one_hop,
                                                        neighbor_links));
    }
  }
}

TEST(LocalViewEquivalence, HelloTableKeepsFirstDuplicateReport) {
  // v1=1 and v2=2 are both neighbors of u=0 and of each other; each reports
  // the (v1,v2) link. The smaller-id endpoint's copy must win, and a
  // conflicting later report must be ignored.
  LinkQos q_uv1, q_uv2, q_first, q_second;
  q_first.bandwidth = 7.0;
  q_second.bandwidth = 3.0;
  const std::vector<LocalView::NeighborLink> one_hop = {{1, q_uv1},
                                                        {2, q_uv2}};
  const std::vector<std::vector<LocalView::NeighborLink>> links = {
      {{2, q_first}},   // v1 (smaller id) reports v1–v2 first
      {{1, q_second}},  // v2's asymmetric duplicate is dropped
  };
  const LocalView view(0, one_hop, links);
  expect_equivalent(view, ref_from_hello(0, one_hop, links));
  const std::uint32_t l1 = view.local_id(1);
  const std::uint32_t l2 = view.local_id(2);
  const LinkQos* qos = view.local_edge_qos(l1, l2);
  ASSERT_NE(qos, nullptr);
  EXPECT_EQ(qos->bandwidth, 7.0);
}

TEST(LocalViewEquivalence, RemoveLocalEdgeMatchesReference) {
  const Graph g = testing::random_geometric_graph(21, 8.0);
  LocalViewBuilder builder;
  LocalView view;
  for (NodeId u = 0; u < std::min<NodeId>(g.node_count(), 12); ++u) {
    builder.build(g, u, view);
    RefView ref = ref_from_graph(g, u);
    // Remove every third edge of the origin's row plus a 1-hop/2-hop link.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> removals;
    const auto origin_row = view.neighbors(0);
    for (std::size_t k = 0; k < origin_row.size(); k += 3)
      removals.push_back({0, origin_row[k].to});
    for (std::uint32_t l : view.one_hop()) {
      for (const auto& e : view.neighbors(l)) {
        if (view.is_two_hop(e.to)) {
          removals.push_back({l, e.to});
          break;
        }
      }
    }
    for (auto [a, b] : removals) {
      view.remove_local_edge(a, b);
      auto erase_ref = [&](std::uint32_t x, std::uint32_t y) {
        auto& row = ref.adjacency[x];
        row.erase(std::remove_if(row.begin(), row.end(),
                                 [&](const LocalView::LocalEdge& e) {
                                   return e.to == y;
                                 }),
                  row.end());
      };
      erase_ref(a, b);
      erase_ref(b, a);
    }
    expect_equivalent(view, ref);
  }
}

}  // namespace
}  // namespace qolsr
