// The tentpole acceptance criterion, as a ctest: a real multi-process
// wire run — qolsr_switch + one qolsr_node daemon per node over Unix
// SOCK_SEQPACKET — converges to per-node digests equal byte-for-byte to
// an in-process Simulator run of the same topology, seed and (shared)
// timing struct, for all five registry selectors.
//
// The daemon/switch binaries are discovered next to this test binary
// (all CMake targets land in the build root); QOLSR_NODE_BIN /
// QOLSR_SWITCH_BIN override for out-of-tree runs.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "net/wire_harness.hpp"
#include "olsr/selector_registry.hpp"
#include "sim/simulator.hpp"

namespace qolsr {
namespace {

/// 8 nodes: a ring with node 0 as a hub plus extra chords — enough
/// structure that all five selectors produce pairwise-distinct converged
/// state (verified below), small enough that 9 processes converge in
/// wall-clock milliseconds at the scaled timing.
Graph test_graph() {
  Graph g(8);
  const auto qos_of = [](NodeId u, NodeId v) {
    LinkQos q;
    q.bandwidth = 1.0 + 0.5 * static_cast<double>(u + v);
    q.delay = 0.01 * static_cast<double>(u * 7 + v + 1);
    q.jitter = 0.001 * static_cast<double>(v);
    q.loss_cost = 0.002 * static_cast<double>(u);
    q.energy = 1.0 + 0.25 * static_cast<double>(v);
    q.buffers = 2.0 + static_cast<double>(u);
    return q;
  };
  const std::pair<NodeId, NodeId> edges[] = {
      {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 0},  // ring
      {0, 2}, {0, 3}, {0, 4},                                  // hub spokes
      {1, 4}, {2, 6},                                          // chords
      {3, 7}, {5, 7},                                          // node 7
  };
  for (const auto& [u, v] : edges) g.add_edge(u, v, qos_of(u, v));
  return g;
}

std::vector<std::uint64_t> simulator_digests(const Graph& graph,
                                             const std::string& protocol,
                                             const ProtocolTiming& timing,
                                             std::uint64_t seed) {
  const auto& registry = SelectorRegistry::builtin();
  const auto ans = registry.create(protocol, MetricId::kBandwidth);
  const auto flooding =
      registry.create_flooding(protocol, MetricId::kBandwidth);
  const OlsrNode::RouteFn no_routes = [](const Graph&, NodeId, NodeId) {
    return kInvalidNode;
  };
  SimConfig config;
  static_cast<ProtocolTiming&>(config.node) = timing;
  config.seed = seed;
  Simulator sim(graph, *flooding, *ans, no_routes, config);
  const ConvergenceReport report = sim.run_to_convergence();
  EXPECT_TRUE(report.converged) << protocol << ": simulator never settled";
  std::vector<std::uint64_t> digests(graph.node_count());
  for (NodeId id = 0; id < graph.node_count(); ++id)
    digests[id] = sim.node(id).converged_digest();
  return digests;
}

TEST(WireEquivalence, AllFiveSelectorsMatchTheSimulatorByteForByte) {
  const Graph graph = test_graph();
  const std::uint64_t seed = 20260808;
  net::WireRunConfig config;
  config.seed = seed;
  config.timeout_seconds = 60.0;

  std::vector<std::vector<std::uint64_t>> per_protocol;
  for (const std::string& protocol : SelectorRegistry::builtin().names()) {
    SCOPED_TRACE(protocol);
    config.protocol = protocol;
    const net::WireRunResult wire = net::run_wire_network(graph, config);
    ASSERT_EQ(wire.reports.size(), graph.node_count());

    const auto expected =
        simulator_digests(graph, protocol, config.timing, seed);
    std::vector<std::uint64_t> got(graph.node_count());
    for (NodeId id = 0; id < graph.node_count(); ++id)
      got[id] = wire.reports[id].digest;
    // Byte-for-byte: the N processes on real sockets and wall-clock
    // timers folded exactly the state the discrete-event run folded.
    EXPECT_EQ(got, expected);
    per_protocol.push_back(got);
  }

  // Sanity that the equality above is not vacuous: on this graph every
  // selector converges to state distinct from every other selector's.
  ASSERT_EQ(per_protocol.size(), 5u);
  for (std::size_t i = 0; i < per_protocol.size(); ++i)
    for (std::size_t j = i + 1; j < per_protocol.size(); ++j)
      EXPECT_NE(per_protocol[i], per_protocol[j]) << i << " vs " << j;
}

TEST(WireEquivalence, SetSizesTravelWithTheDigests) {
  // The eval backend reports flooding/ANS sizes straight from the status
  // frames; pin them against the in-process run for one selector.
  const Graph graph = test_graph();
  net::WireRunConfig config;
  config.protocol = "qolsr_mpr2";
  config.seed = 99;
  const net::WireRunResult wire = net::run_wire_network(graph, config);
  ASSERT_EQ(wire.reports.size(), graph.node_count());

  const auto& registry = SelectorRegistry::builtin();
  const auto ans = registry.create("qolsr_mpr2", MetricId::kBandwidth);
  const auto flooding =
      registry.create_flooding("qolsr_mpr2", MetricId::kBandwidth);
  const OlsrNode::RouteFn no_routes = [](const Graph&, NodeId, NodeId) {
    return kInvalidNode;
  };
  SimConfig sim_config;
  static_cast<ProtocolTiming&>(sim_config.node) = config.timing;
  sim_config.seed = 99;
  Simulator sim(graph, *flooding, *ans, no_routes, sim_config);
  ASSERT_TRUE(sim.run_to_convergence().converged);

  for (NodeId id = 0; id < graph.node_count(); ++id) {
    EXPECT_EQ(wire.reports[id].ans_size, sim.node(id).ans().size())
        << "node " << id;
    EXPECT_EQ(wire.reports[id].flooding_size,
              sim.node(id).flooding_mpr().size())
        << "node " << id;
  }
}

}  // namespace
}  // namespace qolsr
