// Frame + control codec: round trips, the hardened decode contract
// (magic/version/kind/length all verified before any payload is trusted),
// and the golden layout of the frame header.
#include <gtest/gtest.h>

#include "net/wire_format.hpp"

namespace qolsr::net {
namespace {

Frame sample_frame() {
  Frame f;
  f.kind = kKindPacket;
  f.sender = 7;
  f.dest = kBroadcastDest;
  f.timestamp = 1.25;
  f.payload = {std::byte{0xAA}, std::byte{0xBB}, std::byte{0xCC}};
  return f;
}

TEST(WireFrame, RoundTrips) {
  const Frame f = sample_frame();
  const auto bytes = encode_frame(f);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes + f.payload.size());
  const auto back = decode_frame(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, f);
}

TEST(WireFrame, HeaderLayoutIsPinned) {
  Frame f;
  f.kind = kKindControl;
  f.sender = 0x01020304;
  f.dest = 0x0A0B0C0D;
  f.timestamp = 0.0;
  const auto bytes = encode_frame(f);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes);
  EXPECT_EQ(static_cast<unsigned>(bytes[0]), 0x51u);  // magic 'Q'
  EXPECT_EQ(static_cast<unsigned>(bytes[1]), 1u);     // version
  EXPECT_EQ(static_cast<unsigned>(bytes[2]), kKindControl);
  EXPECT_EQ(static_cast<unsigned>(bytes[3]), 0x04u);  // sender, LE
  EXPECT_EQ(static_cast<unsigned>(bytes[6]), 0x01u);
  EXPECT_EQ(static_cast<unsigned>(bytes[7]), 0x0Du);  // dest, LE
  EXPECT_EQ(static_cast<unsigned>(bytes[kFrameHeaderBytes - 2]), 0u);  // len
  EXPECT_EQ(static_cast<unsigned>(bytes[kFrameHeaderBytes - 1]), 0u);
}

TEST(WireFrame, DecodeRejectsCorruption) {
  const auto good = encode_frame(sample_frame());
  EXPECT_TRUE(decode_frame(good).has_value());

  auto bad_magic = good;
  bad_magic[0] = std::byte{0x52};
  EXPECT_FALSE(decode_frame(bad_magic).has_value());

  auto bad_version = good;
  bad_version[1] = std::byte{0x02};
  EXPECT_FALSE(decode_frame(bad_version).has_value());

  auto bad_kind = good;
  bad_kind[2] = std::byte{0x7F};
  EXPECT_FALSE(decode_frame(bad_kind).has_value());

  // Truncated datagram: the length prefix promises more than arrived.
  auto truncated = good;
  truncated.pop_back();
  EXPECT_FALSE(decode_frame(truncated).has_value());

  // Trailing garbage: more arrived than the prefix accounts for.
  auto padded = good;
  padded.push_back(std::byte{0x00});
  EXPECT_FALSE(decode_frame(padded).has_value());

  EXPECT_FALSE(decode_frame(std::vector<std::byte>{}).has_value());
}

TEST(WireControl, ConfigureRoundTrips) {
  NodeSetup s;
  s.id = 3;
  s.node_count = 8;
  s.seed = 0xDEADBEEFCAFE1234ULL;
  s.timing = ProtocolTiming{}.scaled(0.02);
  s.tc_ttl = 32;
  s.data_ttl = 16;
  s.metric = 1;
  s.protocol = "topology_filtering";
  LinkQos qos;
  qos.bandwidth = 3.5;
  qos.delay = 0.125;
  s.neighbors = {{1, qos}, {5, LinkQos{}}};

  const auto back = decode_configure(encode_configure(s));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
  EXPECT_EQ(peek_control_op(encode_configure(s)), ControlOp::kConfigure);
}

TEST(WireControl, StatusAndKnobsRoundTrip) {
  StatusReport r;
  r.mutation_count = 123456789;
  r.last_mutation = 2.5;
  r.digest = 0xFEEDFACE12345678ULL;
  r.flooding_size = 3;
  r.ans_size = 5;
  const auto status_back = decode_status(encode_status(r));
  ASSERT_TRUE(status_back.has_value());
  EXPECT_EQ(*status_back, r);

  const auto link_back = decode_link(encode_link(2, 9));
  ASSERT_TRUE(link_back.has_value());
  EXPECT_EQ(link_back->first, 2u);
  EXPECT_EQ(link_back->second, 9u);

  Impairment imp;
  imp.id = 4;
  imp.loss = 0.25;
  imp.delay = 0.01;
  imp.seed = 77;
  const auto imp_back = decode_impair(encode_impair(imp));
  ASSERT_TRUE(imp_back.has_value());
  EXPECT_EQ(*imp_back, imp);
}

TEST(WireControl, DecodersRejectTruncationAndWrongOp) {
  auto conf = encode_configure(NodeSetup{});
  conf.pop_back();
  EXPECT_FALSE(decode_configure(conf).has_value());
  // A status blob is not a configure blob, even if long enough.
  EXPECT_FALSE(decode_configure(encode_status(StatusReport{})).has_value());
  EXPECT_FALSE(decode_status(encode_control(ControlOp::kStart)).has_value());
  EXPECT_FALSE(decode_link(encode_control(ControlOp::kLink)).has_value());
}

}  // namespace
}  // namespace qolsr::net
