// SwitchCore routing rules (no sockets: plain frames through the
// forwarding brain) plus a kernel-socketpair loopback that pushes a real
// serialized OLSR packet through a SEQPACKET pair and re-parses it.
#include <algorithm>

#include <gtest/gtest.h>

#include "net/socket.hpp"
#include "net/switch_core.hpp"
#include "net/wire_format.hpp"
#include "proto/messages.hpp"

namespace qolsr::net {
namespace {

Frame register_frame(NodeId id) {
  Frame f;
  f.kind = kKindRegister;
  f.sender = id;
  f.dest = kSwitchDest;
  return f;
}

Frame packet_frame(NodeId sender, NodeId dest) {
  Frame f;
  f.kind = kKindPacket;
  f.sender = sender;
  f.dest = dest;
  f.payload = {std::byte{0x42}};
  return f;
}

/// A 4-port switch: nodes 0,1,2 plugged and registered, triangle 0-1-2
/// fully linked except 0-2 (so 0 and 2 are out of radio range), plus the
/// controller plug.
struct SmallSwitch {
  SwitchCore core;
  std::size_t p0, p1, p2, pc;
  std::vector<SwitchCore::Delivery> out;

  SmallSwitch() {
    p0 = core.add_port();
    p1 = core.add_port();
    p2 = core.add_port();
    pc = core.add_port();
    route(p0, register_frame(0));
    route(p1, register_frame(1));
    route(p2, register_frame(2));
    route(pc, register_frame(kControllerId));
    core.set_link(0, 1);
    core.set_link(1, 2);
  }

  std::vector<SwitchCore::Delivery>& route(std::size_t port,
                                           const Frame& frame) {
    out.clear();
    core.route(port, frame, out);
    return out;
  }
};

TEST(SwitchCore, RegisterBindsAndUnplugUnbinds) {
  SmallSwitch sw;
  EXPECT_EQ(sw.core.port_of(0), sw.p0);
  EXPECT_EQ(sw.core.port_of(2), sw.p2);
  EXPECT_EQ(sw.core.id_of(sw.p1), 1u);
  EXPECT_EQ(sw.core.live_ports(), 4u);

  sw.core.remove_port(sw.p1);
  EXPECT_EQ(sw.core.port_of(1), SIZE_MAX);
  EXPECT_FALSE(sw.core.port_live(sw.p1));
  EXPECT_EQ(sw.core.live_ports(), 3u);
  // Traffic to the unplugged node vanishes instead of crashing.
  EXPECT_TRUE(sw.route(sw.p0, packet_frame(0, 1)).empty());
}

TEST(SwitchCore, UnicastSteersToThePluggedPortOnly) {
  SmallSwitch sw;
  auto& out = sw.route(sw.p0, packet_frame(0, 1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port, sw.p1);
  EXPECT_EQ(out[0].delay, 0.0);

  // Out of radio range: a unicast 0→2 vanishes like the sim's ideal MAC.
  EXPECT_TRUE(sw.route(sw.p0, packet_frame(0, 2)).empty());
  // Unknown destination: vanishes.
  EXPECT_TRUE(sw.route(sw.p0, packet_frame(0, 9)).empty());
}

TEST(SwitchCore, BroadcastFansOutToNeighborsExcludingSender) {
  SmallSwitch sw;
  // 1 is linked to both 0 and 2: its broadcast reaches exactly those two.
  auto& out = sw.route(sw.p1, packet_frame(1, kBroadcastDest));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].port, sw.p0);
  EXPECT_EQ(out[1].port, sw.p2);

  // 0 is linked only to 1 — and the controller plug, being no radio
  // neighbor, never hears packet traffic.
  auto& from0 = sw.route(sw.p0, packet_frame(0, kBroadcastDest));
  ASSERT_EQ(from0.size(), 1u);
  EXPECT_EQ(from0[0].port, sw.p1);
}

TEST(SwitchCore, ControlFramesIgnoreAdjacency) {
  SmallSwitch sw;
  Frame rpc;
  rpc.kind = kKindControl;
  rpc.sender = kControllerId;
  rpc.dest = 2;  // controller has no radio link to anyone
  rpc.payload = encode_control(ControlOp::kStart);
  auto& out = sw.route(sw.pc, rpc);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port, sw.p2);
}

TEST(SwitchCore, SwitchAddressedOpsAreConsumedNotForwarded) {
  SmallSwitch sw;
  Frame link;
  link.kind = kKindControl;
  link.sender = kControllerId;
  link.dest = kSwitchDest;
  link.payload = encode_link(0, 2);
  EXPECT_TRUE(sw.route(sw.pc, link).empty());
  // The new 0-2 adjacency is live: the formerly-vanishing unicast routes.
  auto& out = sw.route(sw.p0, packet_frame(0, 2));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port, sw.p2);

  Frame shutdown;
  shutdown.kind = kKindControl;
  shutdown.sender = kControllerId;
  shutdown.dest = kSwitchDest;
  shutdown.payload = encode_control(ControlOp::kShutdown);
  std::vector<SwitchCore::Delivery> out2;
  EXPECT_FALSE(sw.core.route(sw.pc, shutdown, out2));  // stop signal
}

TEST(SwitchCore, PerPortLossGateIsSeededAndDeterministic) {
  const auto drops_of = [](std::uint64_t seed) {
    SmallSwitch sw;
    Impairment imp;
    imp.id = 1;
    imp.loss = 0.5;
    imp.seed = seed;
    sw.core.set_impairment(imp);
    std::vector<bool> dropped;
    for (int i = 0; i < 64; ++i)
      dropped.push_back(sw.route(sw.p1, packet_frame(1, 0)).empty());
    return dropped;
  };

  const auto a = drops_of(42), b = drops_of(42), c = drops_of(43);
  EXPECT_EQ(a, b);  // same seed ⇒ the exact same copies drop
  EXPECT_NE(a, c);  // different stream
  const auto lost = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(lost, 16u);  // the gate actually bites near its probability
  EXPECT_LT(lost, 48u);

  // Loss applies to frames *from* the impaired plug only.
  SmallSwitch sw;
  Impairment imp;
  imp.id = 1;
  imp.loss = 1.0;
  imp.seed = 7;
  sw.core.set_impairment(imp);
  EXPECT_TRUE(sw.route(sw.p1, packet_frame(1, 0)).empty());
  EXPECT_EQ(sw.route(sw.p0, packet_frame(0, 1)).size(), 1u);
}

TEST(SwitchCore, DelayKnobStampsDeliveries) {
  SmallSwitch sw;
  Impairment imp;
  imp.id = 0;
  imp.delay = 0.25;
  imp.seed = 1;
  sw.core.set_impairment(imp);
  auto& out = sw.route(sw.p0, packet_frame(0, 1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].delay, 0.25);
}

TEST(SocketLoopback, SeqpacketRoundTripsAnOlsrPacket) {
  auto [left, right] = seqpacket_pair();
  ASSERT_TRUE(left.valid());
  ASSERT_TRUE(right.valid());

  // A real OLSR HELLO through the real kernel: serialize → frame →
  // sendmsg → recvmsg → decode → parse_packet → reserialize, asserting
  // byte identity end to end (the parse⇒reserialize loopback contract).
  PacketHeader header;
  header.type = MessageType::kHello;
  header.originator = 5;
  header.sequence = 99;
  header.ttl = 1;
  header.hop_count = 0;
  HelloMessage hello;
  hello.originator = 5;
  hello.willingness = 3;
  LinkQos qos;
  qos.bandwidth = 12.5;
  hello.links.push_back({6, LinkStatus::kMpr, qos});
  const auto packet_bytes = serialize(header, hello);

  Frame f;
  f.kind = kKindPacket;
  f.sender = 5;
  f.dest = kBroadcastDest;
  f.timestamp = 0.5;
  f.payload = packet_bytes;
  ASSERT_TRUE(send_datagram(left, encode_frame(f)));

  const auto received = recv_datagram(right);
  ASSERT_TRUE(received.has_value());
  const auto back = decode_frame(*received);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, f);

  const auto parsed = parse_packet(back->payload);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->hello.has_value());
  EXPECT_EQ(serialize(parsed->header, *parsed->hello), packet_bytes);

  // Message boundaries hold: two sends arrive as two datagrams.
  ASSERT_TRUE(send_datagram(left, encode_frame(f)));
  ASSERT_TRUE(send_datagram(left, encode_frame(f)));
  EXPECT_EQ(recv_datagram(right)->size(), encode_frame(f).size());
  EXPECT_EQ(recv_datagram(right)->size(), encode_frame(f).size());
}

}  // namespace
}  // namespace qolsr::net
