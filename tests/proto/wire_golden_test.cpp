// Golden byte-dump pins for the wire codec (proto/messages +
// proto/wire_endian): the serialized form of each packet type is spelled
// out byte by byte, so the format is *defined* — little-endian, fixed
// field order — rather than a host-endian accident. A cross-host wire run
// (src/net) exchanges exactly these bytes; any codec change that reorders
// or resizes a field fails here before it corrupts an interop run.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "proto/messages.hpp"
#include "proto/wire_endian.hpp"

namespace qolsr {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<unsigned> values) {
  std::vector<std::byte> out;
  out.reserve(values.size());
  for (unsigned v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

void append_f64_le(std::vector<std::byte>& out, double v) {
  wire::Writer w(out);
  w.f64(v);
}

TEST(WireEndian, IntegersAreLittleEndianByConstruction) {
  std::vector<std::byte> out;
  wire::Writer w(out);
  w.u16(0x1122);
  w.u32(0x11223344);
  w.u64(0x1122334455667788ULL);
  // Least-significant byte first, independent of the host's byte order.
  EXPECT_EQ(out, bytes_of({0x22, 0x11,                            // u16
                           0x44, 0x33, 0x22, 0x11,                // u32
                           0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22,
                           0x11}));  // u64

  wire::Reader r(out);
  std::uint16_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t c = 0;
  ASSERT_TRUE(r.u16(a) && r.u32(b) && r.u64(c));
  EXPECT_EQ(a, 0x1122);
  EXPECT_EQ(b, 0x11223344u);
  EXPECT_EQ(c, 0x1122334455667788ULL);
  EXPECT_TRUE(r.done());
}

TEST(WireEndian, DoublesTravelAsIeeeBitsAndRoundTripExactly) {
  std::vector<std::byte> out;
  wire::Writer w(out);
  w.f64(1.0);  // IEEE-754: 0x3FF0000000000000
  EXPECT_EQ(out, bytes_of({0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F}));

  const double awkward = 0.1 + 0.2;  // not representable "nicely"
  out.clear();
  w.f64(awkward);
  wire::Reader r(out);
  double back = 0.0;
  ASSERT_TRUE(r.f64(back));
  EXPECT_EQ(back, awkward);  // bit-exact, not approximately equal
}

TEST(WireEndian, ReaderRefusesTruncatedInput) {
  const auto three = bytes_of({0x01, 0x02, 0x03});
  wire::Reader r(three);
  std::uint32_t v = 0;
  EXPECT_FALSE(r.u32(v));
  std::uint64_t big = 0;
  EXPECT_FALSE(wire::Reader(three).u64(big));
  double d = 0.0;
  EXPECT_FALSE(wire::Reader(three).f64(d));
}

// One LinkAdvert with hand-chosen QoS doubles whose IEEE bit patterns are
// easy to spell: 1.0, 2.5, 0.0, 0.5, 3.0, 4.0.
LinkAdvert golden_advert() {
  LinkAdvert a;
  a.neighbor = 0x0A0B0C0D;
  a.status = LinkStatus::kMpr;
  a.qos.bandwidth = 1.0;
  a.qos.delay = 2.5;
  a.qos.jitter = 0.0;
  a.qos.loss_cost = 0.5;
  a.qos.energy = 3.0;
  a.qos.buffers = 4.0;
  return a;
}

std::vector<std::byte> golden_advert_bytes() {
  auto out = bytes_of({0x0D, 0x0C, 0x0B, 0x0A,  // neighbor, LE
                       0x03});                  // status = kMpr
  append_f64_le(out, 1.0);
  append_f64_le(out, 2.5);
  append_f64_le(out, 0.0);
  append_f64_le(out, 0.5);
  append_f64_le(out, 3.0);
  append_f64_le(out, 4.0);
  return out;
}

void append(std::vector<std::byte>& out, const std::vector<std::byte>& tail) {
  out.insert(out.end(), tail.begin(), tail.end());
}

TEST(WireGolden, HelloByteDump) {
  PacketHeader header;
  header.type = MessageType::kHello;
  header.originator = 0x01020304;
  header.sequence = 0xBEEF;
  header.ttl = 1;
  header.hop_count = 0;
  HelloMessage hello;
  hello.originator = 0x01020304;
  hello.willingness = 3;
  hello.links.push_back(golden_advert());

  auto expected = bytes_of({0x01,                    // type = kHello
                            0x04, 0x03, 0x02, 0x01,  // originator, LE
                            0xEF, 0xBE,              // sequence, LE
                            0x01,                    // ttl
                            0x00,                    // hop_count
                            0x04, 0x03, 0x02, 0x01,  // hello.originator
                            0x03,                    // willingness
                            0x01, 0x00});            // link count, LE
  append(expected, golden_advert_bytes());

  const auto wire_bytes = serialize(header, hello);
  EXPECT_EQ(wire_bytes, expected);

  const auto parsed = parse_packet(wire_bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->hello.has_value());
  EXPECT_EQ(parsed->header, header);
  EXPECT_EQ(*parsed->hello, hello);
  // Round-trip: reserializing the parse reproduces the golden bytes.
  EXPECT_EQ(serialize(parsed->header, *parsed->hello), expected);
}

TEST(WireGolden, TcByteDump) {
  PacketHeader header;
  header.type = MessageType::kTc;
  header.originator = 0x00000005;
  header.sequence = 0x0102;
  header.ttl = 64;
  header.hop_count = 2;
  TcMessage tc;
  tc.originator = 0x00000005;
  tc.ansn = 0x8001;  // exercises the high bit of the LE 16-bit field
  tc.advertised.push_back(golden_advert());

  auto expected = bytes_of({0x02,                    // type = kTc
                            0x05, 0x00, 0x00, 0x00,  // originator, LE
                            0x02, 0x01,              // sequence, LE
                            0x40,                    // ttl
                            0x02,                    // hop_count
                            0x05, 0x00, 0x00, 0x00,  // tc.originator
                            0x01, 0x80,              // ansn, LE
                            0x01, 0x00});            // advert count, LE
  append(expected, golden_advert_bytes());

  const auto wire_bytes = serialize(header, tc);
  EXPECT_EQ(wire_bytes, expected);
  EXPECT_EQ(wire_bytes.size(), tc_wire_size(1));

  const auto parsed = parse_packet(wire_bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->tc.has_value());
  EXPECT_EQ(*parsed->tc, tc);
  EXPECT_EQ(serialize(parsed->header, *parsed->tc), expected);
}

TEST(WireGolden, DataByteDump) {
  PacketHeader header;
  header.type = MessageType::kData;
  header.originator = 7;
  header.sequence = 0;
  header.ttl = 64;
  header.hop_count = 0;
  DataMessage data;
  data.source = 7;
  data.destination = 9;
  data.payload_id = 0xCAFE0001;

  const auto expected = bytes_of({0x03,                    // type = kData
                                  0x07, 0x00, 0x00, 0x00,  // originator
                                  0x00, 0x00,              // sequence
                                  0x40,                    // ttl
                                  0x00,                    // hop_count
                                  0x07, 0x00, 0x00, 0x00,  // source
                                  0x09, 0x00, 0x00, 0x00,  // destination
                                  0x01, 0x00, 0xFE, 0xCA});  // payload, LE

  const auto wire_bytes = serialize(header, data);
  EXPECT_EQ(wire_bytes, expected);

  const auto parsed = parse_packet(wire_bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->data.has_value());
  EXPECT_EQ(*parsed->data, data);
  EXPECT_EQ(serialize(parsed->header, *parsed->data), expected);
}

}  // namespace
}  // namespace qolsr
