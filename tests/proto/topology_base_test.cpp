#include "proto/topology_base.hpp"

#include <gtest/gtest.h>

namespace qolsr {
namespace {

LinkAdvert advert(NodeId to, double bw = 1.0) {
  LinkAdvert a;
  a.neighbor = to;
  a.qos.bandwidth = bw;
  return a;
}

TcMessage tc_of(NodeId origin, std::uint16_t ansn,
                std::vector<LinkAdvert> links) {
  TcMessage tc;
  tc.originator = origin;
  tc.ansn = ansn;
  tc.advertised = std::move(links);
  return tc;
}

TEST(TopologyBase, StoresAdvertisedLinks) {
  TopologyBase base(15.0);
  EXPECT_TRUE(base.on_tc(tc_of(1, 1, {advert(2), advert(3)}), 0.0));
  EXPECT_EQ(base.advertised_of(1), (std::vector<NodeId>{2, 3}));
  EXPECT_TRUE(base.advertised_of(9).empty());
  EXPECT_EQ(base.originator_count(), 1u);
}

TEST(TopologyBase, NewerAnsnReplaces) {
  TopologyBase base(15.0);
  base.on_tc(tc_of(1, 1, {advert(2)}), 0.0);
  EXPECT_TRUE(base.on_tc(tc_of(1, 2, {advert(3)}), 1.0));
  EXPECT_EQ(base.advertised_of(1), (std::vector<NodeId>{3}));
}

TEST(TopologyBase, StaleAnsnIgnored) {
  TopologyBase base(15.0);
  base.on_tc(tc_of(1, 5, {advert(2)}), 0.0);
  EXPECT_FALSE(base.on_tc(tc_of(1, 4, {advert(9)}), 1.0));
  EXPECT_EQ(base.advertised_of(1), (std::vector<NodeId>{2}));
}

TEST(TopologyBase, AnsnWrapAroundIsNewer) {
  TopologyBase base(15.0);
  base.on_tc(tc_of(1, 0xFFFE, {advert(2)}), 0.0);
  // 3 is "newer" than 0xFFFE modulo 2^16.
  EXPECT_TRUE(base.on_tc(tc_of(1, 3, {advert(7)}), 1.0));
  EXPECT_EQ(base.advertised_of(1), (std::vector<NodeId>{7}));
}

TEST(TopologyBase, SameAnsnRefreshes) {
  TopologyBase base(10.0);
  base.on_tc(tc_of(1, 1, {advert(2)}), 0.0);
  EXPECT_TRUE(base.on_tc(tc_of(1, 1, {advert(2)}), 8.0));  // refresh timer
  base.expire(15.0);  // would have expired at 10 without the refresh
  EXPECT_EQ(base.advertised_of(1), (std::vector<NodeId>{2}));
}

TEST(TopologyBase, ExpiryDropsOldEntries) {
  TopologyBase base(10.0);
  base.on_tc(tc_of(1, 1, {advert(2)}), 0.0);
  base.on_tc(tc_of(5, 1, {advert(6)}), 7.0);
  base.expire(12.0);
  EXPECT_TRUE(base.advertised_of(1).empty());
  EXPECT_EQ(base.advertised_of(5), (std::vector<NodeId>{6}));
}

TEST(TopologyBase, StaleEntryCanBeReplacedAfterExpiry) {
  TopologyBase base(10.0);
  base.on_tc(tc_of(1, 100, {advert(2)}), 0.0);
  // Long silence: node 1 rebooted and restarted its ANSN at 1.
  EXPECT_TRUE(base.on_tc(tc_of(1, 1, {advert(4)}), 25.0));
  EXPECT_EQ(base.advertised_of(1), (std::vector<NodeId>{4}));
}

TEST(TopologyBase, ToGraphBuildsUndirectedUnion) {
  TopologyBase base(15.0);
  base.on_tc(tc_of(1, 1, {advert(2, 7.5)}), 0.0);
  base.on_tc(tc_of(2, 1, {advert(1, 7.5), advert(3, 2.0)}), 0.0);
  const Graph g = base.to_graph(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 2u);  // (1,2) deduplicated, (2,3)
  ASSERT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(g.edge_qos(1, 2)->bandwidth, 7.5);
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(TopologyBase, ToGraphIgnoresOutOfRangeIds) {
  TopologyBase base(15.0);
  base.on_tc(tc_of(1, 1, {advert(99)}), 0.0);
  const Graph g = base.to_graph(5);
  EXPECT_EQ(g.edge_count(), 0u);
}

}  // namespace
}  // namespace qolsr
