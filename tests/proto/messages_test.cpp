#include "proto/messages.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace qolsr {
namespace {

LinkQos sample_qos() {
  LinkQos q;
  q.bandwidth = 7.25;
  q.delay = 0.125;
  q.jitter = 0.5;
  q.loss_cost = 0.01;
  q.energy = 3.5;
  q.buffers = 12.0;
  return q;
}

PacketHeader header_of(MessageType type) {
  PacketHeader h;
  h.type = type;
  h.originator = 42;
  h.sequence = 1234;
  h.ttl = 17;
  h.hop_count = 3;
  return h;
}

TEST(Messages, HelloRoundTrip) {
  HelloMessage hello;
  hello.originator = 42;
  hello.willingness = 3;
  hello.links.push_back({7, LinkStatus::kSymmetric, sample_qos()});
  hello.links.push_back({9, LinkStatus::kMpr, sample_qos()});
  hello.links.push_back({11, LinkStatus::kAsymmetric, {}});

  const auto bytes = serialize(header_of(MessageType::kHello), hello);
  const auto parsed = parse_packet(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header, header_of(MessageType::kHello));
  ASSERT_TRUE(parsed->hello.has_value());
  EXPECT_EQ(*parsed->hello, hello);
  EXPECT_FALSE(parsed->tc.has_value());
}

TEST(Messages, TcRoundTrip) {
  TcMessage tc;
  tc.originator = 42;
  tc.ansn = 77;
  tc.advertised.push_back({3, LinkStatus::kSymmetric, sample_qos()});
  const auto bytes = serialize(header_of(MessageType::kTc), tc);
  const auto parsed = parse_packet(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->tc.has_value());
  EXPECT_EQ(*parsed->tc, tc);
}

TEST(Messages, EmptyTcRoundTrip) {
  TcMessage tc;
  tc.originator = 1;
  tc.ansn = 0;
  const auto bytes = serialize(header_of(MessageType::kTc), tc);
  const auto parsed = parse_packet(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->tc->advertised.empty());
}

TEST(Messages, DataRoundTrip) {
  DataMessage data;
  data.source = 5;
  data.destination = 17;
  data.payload_id = 0xdeadbeef;
  const auto bytes = serialize(header_of(MessageType::kData), data);
  const auto parsed = parse_packet(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->data.has_value());
  EXPECT_EQ(*parsed->data, data);
}

TEST(Messages, QosSurvivesExactly) {
  // Doubles must round-trip bit-exactly (bit_cast wire format).
  HelloMessage hello;
  hello.originator = 1;
  LinkQos q = sample_qos();
  q.bandwidth = 0.1 + 0.2;  // not representable exactly — still must match
  hello.links.push_back({2, LinkStatus::kSymmetric, q});
  const auto parsed =
      parse_packet(serialize(header_of(MessageType::kHello), hello));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->hello->links[0].qos.bandwidth, q.bandwidth);
}

TEST(Messages, TruncatedPacketsRejected) {
  HelloMessage hello;
  hello.originator = 42;
  hello.links.push_back({7, LinkStatus::kSymmetric, sample_qos()});
  auto bytes = serialize(header_of(MessageType::kHello), hello);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::byte> truncated(bytes.begin(),
                                     bytes.begin() +
                                         static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(parse_packet(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(Messages, TrailingGarbageRejected) {
  TcMessage tc;
  tc.originator = 3;
  auto bytes = serialize(header_of(MessageType::kTc), tc);
  bytes.push_back(std::byte{0});
  EXPECT_FALSE(parse_packet(bytes).has_value());
}

TEST(Messages, UnknownTypeRejected) {
  DataMessage data;
  auto bytes = serialize(header_of(MessageType::kData), data);
  bytes[0] = std::byte{99};
  EXPECT_FALSE(parse_packet(bytes).has_value());
}

TEST(Messages, BadLinkStatusRejected) {
  HelloMessage hello;
  hello.originator = 42;
  hello.links.push_back({7, LinkStatus::kSymmetric, {}});
  auto bytes = serialize(header_of(MessageType::kHello), hello);
  // Status byte sits right after the 4-byte neighbor id in the advert;
  // adverts start after header (9) + originator (4) + willingness (1) +
  // count (2) = 16, so status is at offset 20.
  bytes[20] = std::byte{0};
  EXPECT_FALSE(parse_packet(bytes).has_value());
}

TEST(Messages, HostileCountFieldRejectedBeforeAllocation) {
  // A bit-flipped or hostile advert-count field must be rejected by the
  // length check, not sized into a vector the payload cannot back. TC
  // count sits after header (9) + originator (4) + ansn (2) = offset 15.
  TcMessage tc;
  tc.originator = 3;
  tc.advertised.push_back({1, LinkStatus::kSymmetric, sample_qos()});
  const auto bytes = serialize(header_of(MessageType::kTc), tc);
  for (std::uint16_t hostile : {std::uint16_t{0}, std::uint16_t{2},
                                std::uint16_t{0xffff}}) {
    auto mangled = bytes;
    mangled[15] = std::byte{static_cast<unsigned char>(hostile)};
    mangled[16] = std::byte{static_cast<unsigned char>(hostile >> 8)};
    EXPECT_FALSE(parse_packet(mangled).has_value()) << "count=" << hostile;
  }
  // Hello count sits at offset 14 (header + originator + willingness).
  HelloMessage hello;
  hello.originator = 3;
  hello.links.push_back({1, LinkStatus::kSymmetric, sample_qos()});
  auto hbytes = serialize(header_of(MessageType::kHello), hello);
  hbytes[14] = std::byte{0xff};
  hbytes[15] = std::byte{0xff};
  EXPECT_FALSE(parse_packet(hbytes).has_value());
}

TEST(Messages, NonFiniteOrNegativeQosRejected) {
  // QoS doubles travel as raw bits, so a corrupted frame can carry NaN,
  // infinity or a negative "measurement" — none may reach the metric
  // algebra. Exercise every QoS field.
  const double hostile[] = {std::numeric_limits<double>::quiet_NaN(),
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity(), -1.0};
  for (std::size_t field = 0; field < 6; ++field) {
    for (double v : hostile) {
      LinkQos q = sample_qos();
      switch (field) {
        case 0: q.bandwidth = v; break;
        case 1: q.delay = v; break;
        case 2: q.jitter = v; break;
        case 3: q.loss_cost = v; break;
        case 4: q.energy = v; break;
        case 5: q.buffers = v; break;
      }
      HelloMessage hello;
      hello.originator = 1;
      hello.links.push_back({2, LinkStatus::kSymmetric, q});
      EXPECT_FALSE(
          parse_packet(serialize(header_of(MessageType::kHello), hello))
              .has_value())
          << "field=" << field << " v=" << v;

      TcMessage tc;
      tc.originator = 1;
      tc.advertised.push_back({2, LinkStatus::kSymmetric, q});
      EXPECT_FALSE(parse_packet(serialize(header_of(MessageType::kTc), tc))
                       .has_value())
          << "field=" << field << " v=" << v;
    }
  }
  // Zero is a legal measurement — the guard is strictly about sign and
  // finiteness, not about "suspiciously small".
  HelloMessage hello;
  hello.originator = 1;
  hello.links.push_back({2, LinkStatus::kSymmetric, LinkQos{}});
  EXPECT_TRUE(parse_packet(serialize(header_of(MessageType::kHello), hello))
                  .has_value());
}

TEST(Messages, WirePeeksTolerateArbitraryBytes) {
  // The medium-layer peeks must classify any byte string without a full
  // parse: short frames, empty frames and non-data types are "not data".
  EXPECT_FALSE(is_data_frame({}));
  EXPECT_EQ(peek_data_payload_id({}), 0u);
  std::vector<std::byte> junk(21, std::byte{0xab});
  EXPECT_FALSE(is_data_frame(junk));  // right size, wrong type byte
  DataMessage data;
  data.payload_id = 0xdeadbeef;
  auto bytes = serialize(header_of(MessageType::kData), data);
  EXPECT_TRUE(is_data_frame(bytes));
  EXPECT_EQ(peek_data_payload_id(bytes), 0xdeadbeefu);
  bytes.pop_back();
  EXPECT_FALSE(is_data_frame(bytes));
  EXPECT_EQ(peek_data_payload_id(bytes), 0u);
}

TEST(Messages, TcWireSizeGrowsWithAnsSize) {
  // The motivation for minimizing the ANS (Figs. 6/7): TC size is linear
  // in the advertised-set cardinality.
  const std::size_t empty = tc_wire_size(0);
  const std::size_t five = tc_wire_size(5);
  const std::size_t ten = tc_wire_size(10);
  EXPECT_EQ(ten - five, five - empty);
  EXPECT_GT(five, empty);

  TcMessage tc;
  tc.originator = 1;
  for (NodeId i = 0; i < 5; ++i)
    tc.advertised.push_back({i, LinkStatus::kSymmetric, {}});
  EXPECT_EQ(serialize(header_of(MessageType::kTc), tc).size(),
            tc_wire_size(5));
}

}  // namespace
}  // namespace qolsr
