#include "proto/messages.hpp"

#include <gtest/gtest.h>

namespace qolsr {
namespace {

LinkQos sample_qos() {
  LinkQos q;
  q.bandwidth = 7.25;
  q.delay = 0.125;
  q.jitter = 0.5;
  q.loss_cost = 0.01;
  q.energy = 3.5;
  q.buffers = 12.0;
  return q;
}

PacketHeader header_of(MessageType type) {
  PacketHeader h;
  h.type = type;
  h.originator = 42;
  h.sequence = 1234;
  h.ttl = 17;
  h.hop_count = 3;
  return h;
}

TEST(Messages, HelloRoundTrip) {
  HelloMessage hello;
  hello.originator = 42;
  hello.willingness = 3;
  hello.links.push_back({7, LinkStatus::kSymmetric, sample_qos()});
  hello.links.push_back({9, LinkStatus::kMpr, sample_qos()});
  hello.links.push_back({11, LinkStatus::kAsymmetric, {}});

  const auto bytes = serialize(header_of(MessageType::kHello), hello);
  const auto parsed = parse_packet(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header, header_of(MessageType::kHello));
  ASSERT_TRUE(parsed->hello.has_value());
  EXPECT_EQ(*parsed->hello, hello);
  EXPECT_FALSE(parsed->tc.has_value());
}

TEST(Messages, TcRoundTrip) {
  TcMessage tc;
  tc.originator = 42;
  tc.ansn = 77;
  tc.advertised.push_back({3, LinkStatus::kSymmetric, sample_qos()});
  const auto bytes = serialize(header_of(MessageType::kTc), tc);
  const auto parsed = parse_packet(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->tc.has_value());
  EXPECT_EQ(*parsed->tc, tc);
}

TEST(Messages, EmptyTcRoundTrip) {
  TcMessage tc;
  tc.originator = 1;
  tc.ansn = 0;
  const auto bytes = serialize(header_of(MessageType::kTc), tc);
  const auto parsed = parse_packet(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->tc->advertised.empty());
}

TEST(Messages, DataRoundTrip) {
  DataMessage data;
  data.source = 5;
  data.destination = 17;
  data.payload_id = 0xdeadbeef;
  const auto bytes = serialize(header_of(MessageType::kData), data);
  const auto parsed = parse_packet(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->data.has_value());
  EXPECT_EQ(*parsed->data, data);
}

TEST(Messages, QosSurvivesExactly) {
  // Doubles must round-trip bit-exactly (bit_cast wire format).
  HelloMessage hello;
  hello.originator = 1;
  LinkQos q = sample_qos();
  q.bandwidth = 0.1 + 0.2;  // not representable exactly — still must match
  hello.links.push_back({2, LinkStatus::kSymmetric, q});
  const auto parsed =
      parse_packet(serialize(header_of(MessageType::kHello), hello));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->hello->links[0].qos.bandwidth, q.bandwidth);
}

TEST(Messages, TruncatedPacketsRejected) {
  HelloMessage hello;
  hello.originator = 42;
  hello.links.push_back({7, LinkStatus::kSymmetric, sample_qos()});
  auto bytes = serialize(header_of(MessageType::kHello), hello);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::byte> truncated(bytes.begin(),
                                     bytes.begin() +
                                         static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(parse_packet(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(Messages, TrailingGarbageRejected) {
  TcMessage tc;
  tc.originator = 3;
  auto bytes = serialize(header_of(MessageType::kTc), tc);
  bytes.push_back(std::byte{0});
  EXPECT_FALSE(parse_packet(bytes).has_value());
}

TEST(Messages, UnknownTypeRejected) {
  DataMessage data;
  auto bytes = serialize(header_of(MessageType::kData), data);
  bytes[0] = std::byte{99};
  EXPECT_FALSE(parse_packet(bytes).has_value());
}

TEST(Messages, BadLinkStatusRejected) {
  HelloMessage hello;
  hello.originator = 42;
  hello.links.push_back({7, LinkStatus::kSymmetric, {}});
  auto bytes = serialize(header_of(MessageType::kHello), hello);
  // Status byte sits right after the 4-byte neighbor id in the advert;
  // adverts start after header (9) + originator (4) + willingness (1) +
  // count (2) = 16, so status is at offset 20.
  bytes[20] = std::byte{0};
  EXPECT_FALSE(parse_packet(bytes).has_value());
}

TEST(Messages, TcWireSizeGrowsWithAnsSize) {
  // The motivation for minimizing the ANS (Figs. 6/7): TC size is linear
  // in the advertised-set cardinality.
  const std::size_t empty = tc_wire_size(0);
  const std::size_t five = tc_wire_size(5);
  const std::size_t ten = tc_wire_size(10);
  EXPECT_EQ(ten - five, five - empty);
  EXPECT_GT(five, empty);

  TcMessage tc;
  tc.originator = 1;
  for (NodeId i = 0; i < 5; ++i)
    tc.advertised.push_back({i, LinkStatus::kSymmetric, {}});
  EXPECT_EQ(serialize(header_of(MessageType::kTc), tc).size(),
            tc_wire_size(5));
}

}  // namespace
}  // namespace qolsr
