#include "proto/duplicate_set.hpp"

#include <gtest/gtest.h>

namespace qolsr {
namespace {

TEST(DuplicateSet, FirstSeenIsNew) {
  DuplicateSet set(30.0);
  EXPECT_TRUE(set.check_and_insert(1, 100, 0.0));
  EXPECT_FALSE(set.check_and_insert(1, 100, 1.0));
}

TEST(DuplicateSet, DifferentOriginatorsIndependent) {
  DuplicateSet set(30.0);
  EXPECT_TRUE(set.check_and_insert(1, 100, 0.0));
  EXPECT_TRUE(set.check_and_insert(2, 100, 0.0));
  EXPECT_TRUE(set.check_and_insert(1, 101, 0.0));
}

TEST(DuplicateSet, EntriesExpireAfterHoldTime) {
  DuplicateSet set(10.0);
  EXPECT_TRUE(set.check_and_insert(1, 5, 0.0));
  EXPECT_FALSE(set.check_and_insert(1, 5, 9.9));
  // Past the hold time the sequence space may have wrapped: treat as new.
  EXPECT_TRUE(set.check_and_insert(1, 5, 10.1));
}

TEST(DuplicateSet, ExpirePurgesStorage) {
  DuplicateSet set(10.0);
  set.check_and_insert(1, 1, 0.0);
  set.check_and_insert(1, 2, 0.0);
  set.check_and_insert(1, 3, 5.0);
  EXPECT_EQ(set.size(), 3u);
  set.expire(12.0);
  EXPECT_EQ(set.size(), 1u);  // only the entry refreshed at t=5 survives
}

TEST(DuplicateSet, ReinsertAfterExpiryRefreshes) {
  DuplicateSet set(10.0);
  set.check_and_insert(7, 9, 0.0);
  EXPECT_TRUE(set.check_and_insert(7, 9, 11.0));
  EXPECT_FALSE(set.check_and_insert(7, 9, 20.0));  // refreshed at t=11
}

}  // namespace
}  // namespace qolsr
