#include "proto/neighbor_tables.hpp"

#include <gtest/gtest.h>

namespace qolsr {
namespace {

LinkQos qos_bw(double b) {
  LinkQos q;
  q.bandwidth = b;
  return q;
}

HelloMessage hello_from(NodeId origin,
                        std::vector<LinkAdvert> links = {}) {
  HelloMessage h;
  h.originator = origin;
  h.links = std::move(links);
  return h;
}

TEST(NeighborTables, TwoWayHandshake) {
  NeighborTables tables(/*self=*/0, /*hold=*/6.0);
  // First HELLO from 1 does not list us: asymmetric.
  tables.on_hello(hello_from(1), qos_bw(5), 0.0);
  EXPECT_FALSE(tables.is_symmetric(1));
  EXPECT_EQ(tables.heard_neighbors(), (std::vector<NodeId>{1}));
  EXPECT_TRUE(tables.symmetric_neighbors().empty());
  // Second HELLO lists us: symmetric.
  tables.on_hello(hello_from(1, {{0, LinkStatus::kAsymmetric, qos_bw(5)}}),
                  qos_bw(5), 1.0);
  EXPECT_TRUE(tables.is_symmetric(1));
  EXPECT_EQ(tables.symmetric_neighbors(), (std::vector<NodeId>{1}));
}

TEST(NeighborTables, LinkQosStored) {
  NeighborTables tables(0);
  tables.on_hello(hello_from(3, {{0, LinkStatus::kSymmetric, qos_bw(2)}}),
                  qos_bw(7.5), 0.0);
  ASSERT_NE(tables.link_qos(3), nullptr);
  EXPECT_EQ(tables.link_qos(3)->bandwidth, 7.5);
  EXPECT_EQ(tables.link_qos(99), nullptr);
}

TEST(NeighborTables, MprSelectorTracking) {
  NeighborTables tables(0);
  tables.on_hello(hello_from(1, {{0, LinkStatus::kMpr, qos_bw(1)}}),
                  qos_bw(1), 0.0);
  tables.on_hello(hello_from(2, {{0, LinkStatus::kSymmetric, qos_bw(1)}}),
                  qos_bw(1), 0.0);
  EXPECT_TRUE(tables.selected_us_as_mpr(1));
  EXPECT_FALSE(tables.selected_us_as_mpr(2));
  EXPECT_EQ(tables.mpr_selectors(), (std::vector<NodeId>{1}));
  // A later HELLO that demotes us clears the flag.
  tables.on_hello(hello_from(1, {{0, LinkStatus::kSymmetric, qos_bw(1)}}),
                  qos_bw(1), 1.0);
  EXPECT_FALSE(tables.selected_us_as_mpr(1));
}

TEST(NeighborTables, ExpiryRemovesStaleLinks) {
  NeighborTables tables(0, /*hold=*/5.0);
  tables.on_hello(hello_from(1, {{0, LinkStatus::kSymmetric, qos_bw(1)}}),
                  qos_bw(1), 0.0);
  tables.expire(4.0);
  EXPECT_TRUE(tables.is_symmetric(1));
  tables.expire(5.5);
  EXPECT_FALSE(tables.is_symmetric(1));
  EXPECT_TRUE(tables.heard_neighbors().empty());
}

TEST(NeighborTables, BuildLocalViewFromHellos) {
  // Node 0 hears 1 and 2; 1 advertises a link to 3 (2-hop for us).
  NeighborTables tables(0);
  tables.on_hello(hello_from(1, {{0, LinkStatus::kSymmetric, qos_bw(4)},
                                 {3, LinkStatus::kSymmetric, qos_bw(6)}}),
                  qos_bw(4), 0.0);
  tables.on_hello(hello_from(2, {{0, LinkStatus::kSymmetric, qos_bw(5)}}),
                  qos_bw(5), 0.0);
  const LocalView view = tables.build_local_view();
  EXPECT_EQ(view.origin(), 0u);
  ASSERT_EQ(view.one_hop().size(), 2u);
  ASSERT_EQ(view.two_hop().size(), 1u);
  EXPECT_EQ(view.global_id(view.two_hop()[0]), 3u);
  const LinkQos* q =
      view.local_edge_qos(view.local_id(1), view.local_id(3));
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->bandwidth, 6.0);
}

TEST(NeighborTables, AsymmetricNeighborsExcludedFromView) {
  NeighborTables tables(0);
  tables.on_hello(hello_from(1), qos_bw(4), 0.0);  // asymmetric only
  const LocalView view = tables.build_local_view();
  EXPECT_TRUE(view.one_hop().empty());
}

TEST(NeighborTables, AsymmetricAdvertsIgnoredInTwoHop) {
  // Links the neighbor itself only *heard* must not count as 2-hop links.
  NeighborTables tables(0);
  tables.on_hello(hello_from(1, {{0, LinkStatus::kSymmetric, qos_bw(4)},
                                 {5, LinkStatus::kAsymmetric, qos_bw(9)}}),
                  qos_bw(4), 0.0);
  const LocalView view = tables.build_local_view();
  EXPECT_TRUE(view.two_hop().empty());
}

}  // namespace
}  // namespace qolsr
