// RFC 3626 §19 circular sequence-number semantics: the 16-bit ANSN and
// message-sequence spaces wrap, and "newer" means the circular half-space
// comparison — 0 beats 65535, a replayed value from the recent past never
// beats the holder, and exactly half the space counts as newer. These are
// the properties the replayer adversary attacks and the invariant monitor
// leans on, pinned here at the data-structure level.
#include <gtest/gtest.h>

#include <cstdint>

#include "proto/duplicate_set.hpp"
#include "proto/topology_base.hpp"

namespace qolsr {
namespace {

TEST(SequenceWraparound, AnsnNewerIsCircular) {
  // Plain ordering inside the window.
  EXPECT_TRUE(ansn_newer(6, 5));
  EXPECT_FALSE(ansn_newer(5, 6));
  EXPECT_FALSE(ansn_newer(5, 5));

  // The wrap: 0 is newer than 65535, not the other way around.
  EXPECT_TRUE(ansn_newer(0, 65535));
  EXPECT_FALSE(ansn_newer(65535, 0));
  EXPECT_TRUE(ansn_newer(3, 65530));
  EXPECT_FALSE(ansn_newer(65530, 3));

  // Exactly half the space (32768 values) is "newer"; the boundary value
  // itself is not — a and a+0x8000 are mutually not-newer, so neither side
  // of a maximally ambiguous replay wins.
  EXPECT_TRUE(ansn_newer(32767, 0));
  EXPECT_FALSE(ansn_newer(32768, 0));
  EXPECT_FALSE(ansn_newer(0, 32768));
}

TEST(SequenceWraparound, AnsnNewerIsAntisymmetricAcrossTheSpace) {
  // For any distinct pair not exactly half the space apart, exactly one
  // direction is newer (sampled — the full cross product is 2^32).
  const std::uint16_t samples[] = {0, 1, 2, 100, 32766, 32767,
                                   32768, 40000, 65534, 65535};
  for (std::uint16_t a : samples) {
    for (std::uint16_t b : samples) {
      if (a == b) continue;
      const bool ab = ansn_newer(a, b);
      const bool ba = ansn_newer(b, a);
      if (static_cast<std::uint16_t>(a - b) == 0x8000) {
        EXPECT_FALSE(ab || ba) << a << " vs " << b;
      } else {
        EXPECT_NE(ab, ba) << a << " vs " << b;
      }
    }
  }
}

TEST(SequenceWraparound, TopologyBaseAcceptsHonestWrap) {
  TopologyBase base;
  TcMessage tc;
  tc.originator = 7;
  tc.ansn = 65535;
  tc.advertised.push_back({1, LinkStatus::kSymmetric, {}});
  ASSERT_TRUE(base.on_tc(tc, 0.0));
  ASSERT_EQ(base.ansn_of(7), 65535);

  // The originator's counter wraps to 0 — the TC must replace the held
  // advert, not be discarded as ancient.
  tc.ansn = 0;
  tc.advertised.clear();
  tc.advertised.push_back({2, LinkStatus::kSymmetric, {}});
  EXPECT_TRUE(base.on_tc(tc, 1.0));
  EXPECT_EQ(base.ansn_of(7), 0);
  EXPECT_EQ(base.advertised_of(7), std::vector<NodeId>{2});
}

TEST(SequenceWraparound, TopologyBaseRejectsReplayedStaleAnsnAcrossWrap) {
  TopologyBase base;
  TcMessage fresh;
  fresh.originator = 7;
  fresh.ansn = 2;  // already wrapped past 65535 → 0 → 2
  fresh.advertised.push_back({1, LinkStatus::kSymmetric, {}});
  ASSERT_TRUE(base.on_tc(fresh, 0.0));

  // A replayer re-emits a capture from before the wrap. 65530 is numerically
  // larger but circularly older — it must be rejected and the held advert
  // left untouched.
  TcMessage replay;
  replay.originator = 7;
  replay.ansn = 65530;
  replay.advertised.push_back({9, LinkStatus::kSymmetric, {}});
  EXPECT_FALSE(base.on_tc(replay, 1.0));
  EXPECT_EQ(base.ansn_of(7), 2);
  EXPECT_EQ(base.advertised_of(7), std::vector<NodeId>{1});
}

TEST(SequenceWraparound, TopologyBaseSameAnsnIsARefreshNotAReplay) {
  // RFC soft state: re-hearing the advert you hold extends its validity.
  TopologyBase base(/*hold_time=*/10.0);
  TcMessage tc;
  tc.originator = 3;
  tc.ansn = 65535;
  tc.advertised.push_back({1, LinkStatus::kSymmetric, {}});
  ASSERT_TRUE(base.on_tc(tc, 0.0));
  EXPECT_TRUE(base.on_tc(tc, 8.0));  // refresh near expiry
  base.expire(15.0);                 // would have expired without the refresh
  EXPECT_EQ(base.ansn_of(3), 65535);
}

TEST(SequenceWraparound, TopologyBaseExpiredEntryCannotVetoAnOlderAnsn) {
  // Once the held advert's validity lapsed, even a circularly older ANSN is
  // accepted — a restarted originator must not be locked out by its own
  // pre-crash sequence numbers after the hold time (RFC 3626 soft state).
  TopologyBase base(/*hold_time=*/1.0);
  TcMessage tc;
  tc.originator = 3;
  tc.ansn = 50;
  ASSERT_TRUE(base.on_tc(tc, 0.0));
  tc.ansn = 10;
  EXPECT_FALSE(base.on_tc(tc, 0.5));  // still valid: stale, rejected
  EXPECT_TRUE(base.on_tc(tc, 5.0));   // lapsed: accepted
  EXPECT_EQ(base.ansn_of(3), 10);
}

TEST(SequenceWraparound, DuplicateSetKeysExactPairsAcrossWrap) {
  // The duplicate set matches (originator, sequence) exactly, so a wrapped
  // message sequence is a distinct new message, while a replayed frame with
  // an already-seen sequence is suppressed regardless of wrap position.
  DuplicateSet dup;
  EXPECT_TRUE(dup.check_and_insert(7, 65535, 0.0));
  EXPECT_TRUE(dup.check_and_insert(7, 0, 0.1));     // wrap: genuinely new
  EXPECT_FALSE(dup.check_and_insert(7, 65535, 0.2));  // replay: suppressed
  EXPECT_FALSE(dup.check_and_insert(7, 0, 0.3));
  // Another originator's identical sequence is unrelated.
  EXPECT_TRUE(dup.check_and_insert(8, 65535, 0.4));
  EXPECT_EQ(dup.size(), 3u);
}

TEST(SequenceWraparound, DuplicateSetForgetsAfterHoldTime) {
  // Expiry is what makes exact-pair matching safe across wraps: by the time
  // a 16-bit counter genuinely reuses a value, the old entry is long gone.
  DuplicateSet dup(/*hold_time=*/30.0);
  EXPECT_TRUE(dup.check_and_insert(7, 123, 0.0));
  dup.expire(31.0);
  EXPECT_EQ(dup.size(), 0u);
  EXPECT_TRUE(dup.check_and_insert(7, 123, 31.0));
}

}  // namespace
}  // namespace qolsr
