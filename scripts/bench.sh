#!/usr/bin/env bash
# Builds the micro benchmarks in Release and records their results as
# BENCH_micro.json at the repo root, so successive PRs leave a perf
# trajectory. Usage:
#
#   scripts/bench.sh [--quick]
#
# --quick lowers the per-benchmark minimum time (smoke run, noisier).
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$(pwd)"
BUILD_DIR="${BENCH_BUILD_DIR:-build-bench}"
MIN_TIME="0.5"
if [[ "${1:-}" == "--quick" ]]; then
  MIN_TIME="0.05"
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target micro_selection micro_path micro_sim

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

for bench in micro_selection micro_path micro_sim; do
  "$BUILD_DIR/$bench" \
    --benchmark_format=json \
    --benchmark_min_time="$MIN_TIME" \
    >"$TMP_DIR/$bench.json"
done

python3 - "$TMP_DIR" "$ROOT/BENCH_micro.json" <<'PY'
import json
import subprocess
import sys

tmp_dir, out_path = sys.argv[1], sys.argv[2]
merged = {"context": None, "benchmarks": []}
for name in ("micro_selection", "micro_path", "micro_sim"):
    with open(f"{tmp_dir}/{name}.json") as f:
        data = json.load(f)
    if merged["context"] is None:
        merged["context"] = data.get("context", {})
    for bench in data.get("benchmarks", []):
        bench["suite"] = name
        merged["benchmarks"].append(bench)
try:
    commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                            capture_output=True, text=True).stdout.strip()
except OSError:
    commit = ""
merged["commit"] = commit
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
print(f"wrote {out_path} ({len(merged['benchmarks'])} benchmarks)")
PY
