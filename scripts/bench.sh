#!/usr/bin/env bash
# Builds the benchmarks in Release and records the results at the repo
# root, so successive PRs leave a perf trajectory:
#   BENCH_micro.json — google-benchmark micro suites
#   BENCH_sweep.json — wall-clock of an end-to-end qolsr_eval sweep
# Usage:
#
#   scripts/bench.sh [--quick]
#
# --quick lowers the per-benchmark minimum time and shrinks the sweep
# (smoke run, noisier).
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$(pwd)"
BUILD_DIR="${BENCH_BUILD_DIR:-build-bench}"
MIN_TIME="0.5"
SWEEP_RUNS="10"
SWEEP_REPS="2"
if [[ "${1:-}" == "--quick" ]]; then
  MIN_TIME="0.05"
  SWEEP_RUNS="5"
  SWEEP_REPS="1"
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target micro_selection micro_path micro_sim micro_forwarding qolsr_eval

# Host metadata embedded in both result files: without it, numbers like a
# threads=0 vs threads=1 parity are uninterpretable (was the runner
# single-core? which compiler and flags produced the binary?).
cache_var() {
  sed -n "s/^$1:[^=]*=//p" "$BUILD_DIR/CMakeCache.txt" | head -1
}
CXX_COMPILER="$(cache_var CMAKE_CXX_COMPILER)"
export QOLSR_BENCH_HOST_JSON="$(python3 -c 'import json, sys; print(json.dumps({
    "hardware_concurrency": int(sys.argv[1]),
    "compiler": sys.argv[2],
    "build_type": sys.argv[3],
    "cxx_flags": sys.argv[4].strip(),
    "uname": sys.argv[5],
}))' "$(nproc)" "$("$CXX_COMPILER" --version | head -1)" \
    "$(cache_var CMAKE_BUILD_TYPE)" \
    "$(cache_var CMAKE_CXX_FLAGS) $(cache_var CMAKE_CXX_FLAGS_RELEASE)" \
    "$(uname -srm)")"

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

for bench in micro_selection micro_path micro_sim micro_forwarding; do
  "$BUILD_DIR/$bench" \
    --benchmark_format=json \
    --benchmark_min_time="$MIN_TIME" \
    >"$TMP_DIR/$bench.json"
done

python3 - "$TMP_DIR" "$ROOT/BENCH_micro.json" <<'PY'
import json
import os
import subprocess
import sys

tmp_dir, out_path = sys.argv[1], sys.argv[2]

merged = {"context": None,
          "host": json.loads(os.environ["QOLSR_BENCH_HOST_JSON"]),
          "benchmarks": []}
for name in ("micro_selection", "micro_path", "micro_sim",
             "micro_forwarding"):
    with open(f"{tmp_dir}/{name}.json") as f:
        data = json.load(f)
    if merged["context"] is None:
        merged["context"] = data.get("context", {})
    for bench in data.get("benchmarks", []):
        bench["suite"] = name
        merged["benchmarks"].append(bench)
try:
    commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                            capture_output=True, text=True).stdout.strip()
except OSError:
    commit = ""
merged["commit"] = commit
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
print(f"wrote {out_path} ({len(merged['benchmarks'])} benchmarks)")
PY

# End-to-end sweep timing: the paper's Fig. 6 experiment through the
# runtime engine (qolsr_eval), single-threaded for determinism and with
# all cores, best of $SWEEP_REPS wall-clock reps each.
python3 - "$BUILD_DIR/qolsr_eval" "$ROOT/BENCH_sweep.json" \
    "$SWEEP_RUNS" "$SWEEP_REPS" <<'PY'
import json
import os
import subprocess
import sys
import time

binary, out_path, runs, reps = (sys.argv[1], sys.argv[2], sys.argv[3],
                                int(sys.argv[4]))
host = json.loads(os.environ["QOLSR_BENCH_HOST_JSON"])
results = []
for threads in ("1", "0"):
    flags = [f"--figure=6", f"--runs={runs}", "--seed=42",
             f"--threads={threads}", "--format=csv"]
    timings = []
    for _ in range(reps):
        start = time.perf_counter()
        subprocess.run([binary, *flags], check=True,
                       stdout=subprocess.DEVNULL)
        timings.append(time.perf_counter() - start)
    results.append({"name": f"fig6_sweep/runs={runs}/threads={threads}",
                    "flags": flags, "reps": reps,
                    "best_seconds": min(timings),
                    "mean_seconds": sum(timings) / len(timings)})

# Packet-backend point: the same engine but with a per-run discrete-event
# control plane (HELLO/TC flooding to measured convergence). Scaled-down
# field/densities — the full paper field converges thousands of nodes per
# run — so the trajectory tracks simulator cost, not deployment size.
packet_flags = ["--backend=packet", "--densities=10,20",
                f"--runs={min(int(runs), 3)}", "--seed=42", "--threads=1",
                "--field=500x500", "--format=csv"]
timings = []
for _ in range(reps):
    start = time.perf_counter()
    subprocess.run([binary, *packet_flags], check=True,
                   stdout=subprocess.DEVNULL)
    timings.append(time.perf_counter() - start)
results.append({"name": f"packet_sweep/runs={min(int(runs), 3)}/threads=1",
                "flags": packet_flags, "reps": reps,
                "best_seconds": min(timings),
                "mean_seconds": sum(timings) / len(timings)})

# Single canned-figure points on the packet backend, one run each: the
# figure-L load point exercises the steady-state forwarding path under
# concurrent flows (the knowledge-cache + route-memo hot path), the
# figure-R loss point the fault/re-convergence machinery. Timed once —
# these are minutes-scale trajectory markers, not tight micro numbers.
for figure, point in (("L", "4.0"), ("R", "0.2")):
    flags = [f"--figure={figure}", f"--densities={point}", "--runs=1",
             "--seed=7", "--threads=1", "--format=csv"]
    start = time.perf_counter()
    subprocess.run([binary, *flags], check=True, stdout=subprocess.DEVNULL)
    elapsed = time.perf_counter() - start
    results.append({"name": f"fig{figure}_point/{point}/runs=1/threads=1",
                    "flags": flags, "reps": 1,
                    "best_seconds": elapsed, "mean_seconds": elapsed})
try:
    commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                            capture_output=True, text=True).stdout.strip()
except OSError:
    commit = ""
with open(out_path, "w") as f:
    json.dump({"commit": commit, "host": host, "benchmarks": results},
              f, indent=1)
print(f"wrote {out_path} ({len(results)} sweep timings)")
PY
