// Experiment-engine walkthrough: describe a sweep as data and run it —
// here a combination the compiled figure harnesses never offered (the
// loss metric across all five registered heuristics), emitted as a pretty
// table and as JSON. The same experiment is one qolsr_eval invocation:
//
//   $ qolsr_eval --metric=loss \
//       --selectors=olsr_mpr,qolsr_mpr1,qolsr_mpr2,topology_filtering,fnbp \
//       --densities=10,15,20 --runs=20 --seed=7 --format=json
//
//   $ ./build/examples/experiment_sweep
#include <iostream>

#include "eval/result_sink.hpp"

using namespace qolsr;

int main() {
  ExperimentSpec spec;
  spec.name = "loss_all_selectors";
  spec.metric = MetricId::kLoss;
  spec.selectors = SelectorRegistry::builtin().names();
  spec.scenario.densities = {10, 15, 20};
  spec.scenario.runs = 20;
  spec.scenario.seed = 7;
  // Continuous loss costs: the integral default rounds the 0..0.2 loss
  // interval down to all-zero link costs.
  spec.scenario.qos.integral = false;

  const ExperimentResult result = run_experiment(spec);

  PrettyTableSink{}.write(result, std::cout);
  std::cout << "\n## the same result as JSON\n";
  JsonSink{}.write(result, std::cout);
  return 0;
}
