// Full control-plane run: OLSR nodes exchanging HELLO/TC over the ideal
// MAC, converging to QoS routes, then forwarding a data packet — the
// discrete-event counterpart of the oracle evaluation.
//
//   $ ./build/examples/protocol_trace [seed]
#include <cstdlib>
#include <iostream>

#include "core/fnbp.hpp"
#include "graph/deployment.hpp"
#include "path/path.hpp"
#include "graph/connectivity.hpp"
#include "sim/simulator.hpp"

using namespace qolsr;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // A modest sensor patch so the trace stays readable.
  util::Rng rng(seed);
  DeploymentConfig field;
  field.width = 300.0;
  field.height = 300.0;
  field.degree = 6.0;
  Graph network = sample_poisson_deployment(field, rng);
  assign_uniform_qos(network, {}, rng);
  std::cout << "network: " << network.node_count() << " nodes, "
            << network.edge_count() << " links\n";
  if (network.node_count() < 2) {
    std::cout << "(too small, rerun with another seed)\n";
    return 0;
  }

  const Rfc3626Selector flooding;           // RFC MPRs flood TCs
  const FnbpSelector<BandwidthMetric> ans;  // FNBP picks what to advertise
  Simulator sim(network, flooding, ans, [](const Graph& g, NodeId self,
                                            NodeId dest) {
    return compute_next_hop<BandwidthMetric>(g, self, dest);
  });

  sim.run_to_convergence();
  const TraceStats& t = sim.trace();
  std::cout << "converged at t=" << sim.now() << "s: "
            << t.hello_sent << " HELLOs, " << t.tc_originated
            << " TCs originated, " << t.tc_forwarded << " MPR-forwarded, "
            << t.tc_dropped_duplicate << " duplicates dropped, "
            << t.control_bytes << " control bytes\n";

  // Route one packet across the largest component.
  const auto component = largest_component(network);
  const NodeId source = component.front();
  const NodeId destination = component.back();
  sim.node(source).send_data(destination, /*payload_id=*/1);
  sim.run_until(sim.now() + 1.0);

  const auto it = sim.trace().journeys.find(1);
  if (it != sim.trace().journeys.end() && it->second.delivered) {
    std::cout << "data " << source << " -> " << destination << " delivered:";
    for (NodeId hop : it->second.path) std::cout << " " << hop;
    Path p(it->second.path.begin(), it->second.path.end());
    std::cout << "  (bandwidth "
              << evaluate_path<BandwidthMetric>(network, p) << ")\n";
  } else {
    std::cout << "data packet not delivered\n";
  }

  // Show one node's converged protocol state.
  const NodeId sample = component[component.size() / 2];
  const OlsrNode& node = sim.node(sample);
  std::cout << "node " << sample << ": "
            << node.tables().symmetric_neighbors().size()
            << " symmetric neighbors, flooding MPRs "
            << node.flooding_mpr().size() << ", ANS "
            << node.ans().size() << ", topology base knows "
            << node.topology().originator_count() << " originators\n";
  return 0;
}
