// Quickstart: build a small QoS-annotated network, run the FNBP selection
// at one node, and route a packet over the advertised topology.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "core/fnbp.hpp"
#include "path/dijkstra.hpp"
#include "routing/advertised_topology.hpp"
#include "routing/forwarding.hpp"

using namespace qolsr;

int main() {
  // 1. A six-node network with per-link bandwidth (the paper's Fig. 1
  //    shape): a weak 2-hop corridor v1·v2·v3 and a wide ring underneath.
  Graph network(6);
  auto bw = [](double bandwidth) {
    LinkQos qos;
    qos.bandwidth = bandwidth;
    return qos;
  };
  network.add_edge(0, 1, bw(7));   // v1–v2
  network.add_edge(1, 2, bw(6));   // v2–v3
  network.add_edge(1, 4, bw(8));   // v2–v5
  network.add_edge(0, 4, bw(5));   // v1–v5
  network.add_edge(2, 4, bw(5));   // v3–v5
  network.add_edge(0, 5, bw(10));  // v1–v6
  network.add_edge(5, 4, bw(10));  // v6–v5
  network.add_edge(4, 3, bw(10));  // v5–v4
  network.add_edge(3, 2, bw(10));  // v4–v3

  // 2. Every node selects its QoS advertised neighbor set with FNBP.
  const FnbpSelector<BandwidthMetric> fnbp;
  std::vector<std::vector<NodeId>> ans(network.node_count());
  for (NodeId u = 0; u < network.node_count(); ++u) {
    ans[u] = fnbp.select(LocalView(network, u));
    std::cout << "ANS(v" << u + 1 << ") = {";
    for (std::size_t i = 0; i < ans[u].size(); ++i)
      std::cout << (i ? ", " : "") << "v" << ans[u][i] + 1;
    std::cout << "}\n";
  }

  // 3. The union of advertised links is what TC messages spread.
  const Graph advertised = build_advertised_topology(network, ans);
  std::cout << "advertised links: " << advertised.edge_count() << " of "
            << network.edge_count() << "\n";

  // 4. Route v1 → v3 hop by hop and compare with the centralized optimum.
  const auto routed =
      forward_packet<BandwidthMetric>(network, advertised, 0, 2);
  const auto optimal = dijkstra<BandwidthMetric>(network, 0);
  std::cout << "routed path:";
  for (NodeId hop : routed.path) std::cout << " v" << hop + 1;
  std::cout << "  (bandwidth " << routed.value << ", optimal "
            << optimal.value[2] << ")\n";
  return routed.delivered() ? 0 : 1;
}
