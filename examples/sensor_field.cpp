// Sensor-field scenario: a Poisson-deployed WSN (the paper's §IV-A
// setting), comparing the three heuristics on one sampled topology —
// advertised-set sizes, TC byte cost, and the QoS of a routed flow.
//
//   $ ./build/examples/sensor_field [seed]
#include <cstdlib>
#include <iostream>

#include "core/fnbp.hpp"
#include "eval/runner.hpp"
#include "graph/connectivity.hpp"
#include "proto/messages.hpp"
#include "util/table.hpp"

using namespace qolsr;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;

  // Deploy: 1000x1000 field, radius 100, mean degree 20.
  Scenario scenario;
  scenario.field.degree = 20.0;
  util::Rng rng(seed);
  const SampledRun run = sample_run<BandwidthMetric>(scenario, 20.0, rng);
  std::cout << "deployed " << run.graph.node_count() << " sensors, "
            << run.graph.edge_count() << " links; flow "
            << run.source << " -> " << run.destination
            << " (optimal bandwidth " << run.optimal_value << ")\n\n";

  const QolsrSelector<BandwidthMetric> qolsr(QolsrVariant::kMpr2);
  const TopologyFilteringSelector<BandwidthMetric> topo;
  const FnbpSelector<BandwidthMetric> fnbp;

  util::Table table({"protocol", "avg |ANS|", "TC bytes/node", "bandwidth",
                     "overhead", "hops"});
  for (const AnsSelector* selector :
       std::initializer_list<const AnsSelector*>{&qolsr, &topo, &fnbp}) {
    std::vector<std::vector<NodeId>> ans(run.graph.node_count());
    for (NodeId u = 0; u < run.graph.node_count(); ++u)
      ans[u] = selector->select(LocalView(run.graph, u));

    const double avg_size = average_set_size(ans);
    double tc_bytes = 0.0;
    for (const auto& set : ans)
      tc_bytes += static_cast<double>(tc_wire_size(set.size()));
    tc_bytes /= static_cast<double>(ans.size());

    const Graph advertised = build_advertised_topology(run.graph, ans);
    const auto routed = forward_packet<BandwidthMetric>(
        run.graph, advertised, run.source, run.destination);

    table.add_row({std::string(selector->name()),
                   util::format_double(avg_size, 2),
                   util::format_double(tc_bytes, 1),
                   routed.delivered() ? util::format_double(routed.value, 2)
                                      : "-",
                   routed.delivered()
                       ? util::format_double(qos_overhead<BandwidthMetric>(
                                                 routed.value,
                                                 run.optimal_value),
                                             4)
                       : "-",
                   util::format_double(
                       static_cast<double>(routed.path.size() - 1), 0)});
  }
  std::cout << table.to_string();
  std::cout << "\n(FNBP should advertise the fewest neighbors — the "
               "paper's Fig. 6 — at equal or better bandwidth.)\n";
  return 0;
}
