// Walks through the paper's worked examples (Figs. 1, 2, 4, 5) and prints
// what each heuristic selects and routes — the narrative companion to the
// assertions in tests/core/paper_examples_test.cpp.
//
//   $ ./build/examples/paper_figures
#include <iostream>

#include "core/fnbp.hpp"
#include "olsr/mpr.hpp"
#include "olsr/qolsr_mpr.hpp"
#include "olsr/topology_filtering.hpp"
#include "path/dijkstra.hpp"
#include "path/first_hops.hpp"
#include "routing/advertised_topology.hpp"
#include "routing/forwarding.hpp"

using namespace qolsr;

namespace {

LinkQos bw(double bandwidth, double delay = 1.0) {
  LinkQos qos;
  qos.bandwidth = bandwidth;
  qos.delay = delay;
  return qos;
}

void print_set(const char* label, const std::vector<NodeId>& set) {
  std::cout << label << " = {";
  for (std::size_t i = 0; i < set.size(); ++i)
    std::cout << (i ? "," : "") << set[i];
  std::cout << "}\n";
}

std::vector<std::vector<NodeId>> select_all(const Graph& g,
                                            const AnsSelector& s) {
  std::vector<std::vector<NodeId>> ans(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u)
    ans[u] = s.select(LocalView(g, u));
  return ans;
}

void figure1() {
  std::cout << "== Figure 1: QOLSR misses the widest path ==\n";
  Graph g(6);  // v1..v6 = 0..5
  g.add_edge(0, 1, bw(7));   // v1-v2
  g.add_edge(1, 2, bw(6));   // v2-v3
  g.add_edge(1, 4, bw(8));   // v2-v5
  g.add_edge(0, 4, bw(5));   // v1-v5
  g.add_edge(2, 4, bw(5));   // v3-v5
  g.add_edge(0, 5, bw(10));  // v1-v6
  g.add_edge(5, 4, bw(10));  // v6-v5
  g.add_edge(4, 3, bw(10));  // v5-v4
  g.add_edge(3, 2, bw(10));  // v4-v3

  const QolsrSelector<BandwidthMetric> qolsr(QolsrVariant::kMpr2);
  const FnbpSelector<BandwidthMetric> fnbp;
  for (const AnsSelector* s :
       std::initializer_list<const AnsSelector*>{&qolsr, &fnbp}) {
    const Graph adv = build_advertised_topology(g, select_all(g, *s));
    const auto r = forward_packet<BandwidthMetric>(g, adv, 0, 2);
    std::cout << s->name() << ": v1->v3 via";
    for (NodeId hop : r.path) std::cout << " v" << hop + 1;
    std::cout << " bandwidth " << r.value << "\n";
  }
  const auto opt = dijkstra<BandwidthMetric>(g, 0);
  std::cout << "centralized optimum: " << opt.value[2] << "\n\n";
}

void figure2() {
  std::cout << "== Figure 2: fP sets in u's partial view ==\n";
  Graph g(12);  // u=0, v1..v11 = 1..11
  g.add_edge(0, 1, bw(5));
  g.add_edge(0, 2, bw(5));
  g.add_edge(0, 4, bw(3));
  g.add_edge(0, 5, bw(2));
  g.add_edge(0, 6, bw(6));
  g.add_edge(0, 7, bw(3));
  g.add_edge(1, 3, bw(4));
  g.add_edge(2, 3, bw(4));
  g.add_edge(1, 5, bw(5));
  g.add_edge(5, 4, bw(5));
  g.add_edge(5, 10, bw(5));
  g.add_edge(6, 8, bw(5));
  g.add_edge(8, 9, bw(5));  // invisible to u
  g.add_edge(7, 9, bw(3));
  g.add_edge(6, 11, bw(5));

  const LocalView view(g, 0);
  const FirstHopTable table = compute_first_hops<BandwidthMetric>(view);
  for (NodeId v : {3, 4, 5, 9, 11}) {
    const std::uint32_t l = view.local_id(v);
    std::cout << "fPBW(u,v" << v << ") = {";
    for (std::size_t i = 0; i < table.fp[l].size(); ++i)
      std::cout << (i ? "," : "") << "v"
                << view.global_id(table.fp[l][i]);
    std::cout << "}  value " << table.best[l] << "\n";
  }
  print_set("FNBP ANS(u)", select_fnbp_ans<BandwidthMetric>(view));
  std::cout << "\n";
}

void figure4() {
  std::cout << "== Figure 4: the limiting last link ==\n";
  Graph g(5);  // A..E = 0..4
  g.add_edge(0, 1, bw(4));  // A-B
  g.add_edge(1, 2, bw(3));  // B-C
  g.add_edge(2, 3, bw(4));  // C-D
  g.add_edge(0, 3, bw(2));  // A-D
  g.add_edge(3, 4, bw(1));  // D-E (bottleneck)

  FnbpOptions no_fix;
  no_fix.loop_fix = false;
  print_set("ANS(A) with loop fix   ",
            select_fnbp_ans<BandwidthMetric>(LocalView(g, 0)));
  print_set("ANS(A) without loop fix",
            select_fnbp_ans<BandwidthMetric>(LocalView(g, 0), no_fix));
  std::cout << "(the fix makes A advertise the last hop D toward E)\n\n";
}

void figure5() {
  std::cout << "== Figure 5: three selections on one topology ==\n";
  Graph g(9);
  g.add_edge(0, 1, bw(8, 2));
  g.add_edge(0, 2, bw(3, 5));
  g.add_edge(0, 3, bw(6, 1));
  g.add_edge(0, 4, bw(2, 8));
  g.add_edge(1, 2, bw(9, 1));
  g.add_edge(3, 4, bw(7, 2));
  g.add_edge(1, 5, bw(5, 3));
  g.add_edge(2, 5, bw(6, 2));
  g.add_edge(2, 6, bw(4, 4));
  g.add_edge(3, 7, bw(6, 3));
  g.add_edge(4, 7, bw(3, 6));
  g.add_edge(4, 8, bw(5, 2));
  g.add_edge(5, 6, bw(8, 1));

  const LocalView view(g, 0);
  print_set("RFC 3626 MPR set      ", select_mpr_rfc3626(view));
  print_set("topology-filtering ANS",
            select_topology_filtering_ans<BandwidthMetric>(view));
  print_set("FNBP ANS              ",
            select_fnbp_ans<BandwidthMetric>(view));
}

}  // namespace

int main() {
  figure1();
  figure2();
  figure4();
  figure5();
  return 0;
}
