#include "path/path.hpp"

#include <algorithm>

namespace qolsr {

bool is_simple_path(const Graph& graph, const Path& path) {
  if (path.empty()) return false;
  std::vector<NodeId> seen(path);
  std::sort(seen.begin(), seen.end());
  if (std::adjacent_find(seen.begin(), seen.end()) != seen.end())
    return false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    if (!graph.has_edge(path[i], path[i + 1])) return false;
  return true;
}

}  // namespace qolsr
