#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/local_view.hpp"
#include "path/dijkstra.hpp"

namespace qolsr {

/// The per-destination "first node on best path" sets of the paper:
/// for every v in the local view,
///
///   best[v] = B̃(u,v)   (resp. D̃(u,v)) — the best simple-path value from u
///                        to v inside G_u;
///   fp[v]   = fP(u,v)  — every 1-hop neighbor w of u that starts some best
///                        path (paper §III-A; e.g. fPBW(u,v3) = {v1,v2} in
///                        its Fig. 2).
///
/// Indexed by *local* id; `fp` lists local ids, ascending (which is also
/// ascending global id, since one-hop locals are assigned in id order).
struct FirstHopTable {
  std::vector<double> best;
  std::vector<std::vector<std::uint32_t>> fp;

  bool reachable(std::uint32_t v) const { return !fp[v].empty(); }
};

/// Computes the table exactly, with simple-path semantics: a best path may
/// not revisit u, so each neighbor w is evaluated by a Dijkstra on
/// G_u \ {u} rooted at w, and
///
///   value_via_w(v) = combine(q(u,w), dist_{G_u∖u}(w, v)).
///
/// (A single Dijkstra from u with first-hop propagation over tight edges is
/// wrong for concave metrics: min-composition saturates, the tight-edge
/// relation has cycles, and non-simple "best" paths through u would be
/// counted. deg(u) small Dijkstras are exact and cheap on a 2-hop view.)
///
/// This overload reuses `ws` for all deg(u) inner Dijkstras and `out`'s
/// vectors (including the per-destination fp lists) across calls, so a
/// caller sweeping every node of a run allocates nothing in steady state.
///
/// For concave metrics the neighbors are processed by descending direct
/// link (enabling the saturation cutoff below); since incremental
/// better/tie filtering uses the tolerant metric_equal, whose 1e-9 band is
/// not transitive, results are guaranteed identical to ascending-order
/// processing except when *distinct* candidate path values fall within
/// each other's tolerance bands — impossible for integral weights (ties
/// are exact) and probability-zero for continuous draws.
template <Metric M>
void compute_first_hops(const LocalView& view, DijkstraWorkspace& ws,
                        FirstHopTable& out) {
  const auto n = static_cast<std::uint32_t>(view.size());
  out.best.assign(n, M::unreachable());
  if (out.fp.size() != n) out.fp.resize(n);
  for (auto& list : out.fp) list.clear();
  if (n == 0) return;
  out.best[LocalView::origin_index()] = M::identity();

  // One metric-specialized CSR extraction with u already removed,
  // amortized over the deg(u) Dijkstras below (16B/edge scans instead of
  // full QoS records, no per-edge exclusion test).
  ws.local_csr.assign<M>(view, LocalView::origin_index());

  // Folds one candidate value-via-w for destination v into the table.
  // Returns 1 when v's fp went from empty to non-empty.
  auto fold = [&out](std::uint32_t v, double cand, std::uint32_t w) {
    if (!out.fp[v].empty() && cand == out.best[v]) {
      out.fp[v].push_back(w);  // exact tie — the common case
      return 0u;
    }
    if (out.fp[v].empty() || M::better(cand, out.best[v])) {
      const std::uint32_t newly = out.fp[v].empty() ? 1u : 0u;
      out.best[v] = cand;
      out.fp[v].assign(1, w);
      return newly;
    }
    if (metric_equal(cand, out.best[v])) out.fp[v].push_back(w);
    return 0u;
  };

  // Computes all via-w values rooted at one-hop neighbor w and folds them.
  // Returns the number of destinations whose fp went from empty to
  // non-empty.
  //
  // Only *values* are consumed here, which buys two shortcuts over the
  // lex-(value, hops) Dijkstra. Concave metrics skip Dijkstra entirely:
  // max-min values are forest-path bottlenecks on the maximum spanning
  // forest, built once per view and walked in O(component) per root with
  // the source seeded at q(u,w) (min-composition makes the folded value
  // exactly combine(q(u,w), bottleneck)). Additive metrics run the
  // hop-tie-break-free dijkstra_values — exact value ties cost one compare
  // instead of a decrease-key — and fold combine(q(u,w), dist) afterwards,
  // keeping the float accumulation order (and thus the figures)
  // bit-identical. Either way the values match the seed computation
  // exactly for integral weights; for continuous draws the descending-
  // order caveat above applies unchanged.
  auto run_from = [&](std::uint32_t w, double first_value) {
    std::uint32_t newly_reached = 0;
    if constexpr (M::kind == MetricKind::kConcave) {
      ws.first_hop_forest.for_each_from<M>(
          w, first_value, [&](std::uint32_t v, double cand) {
            newly_reached += fold(v, cand, w);
          });
    } else {
      dijkstra_values<M>(ws.local_csr, w, ws);
      for (std::uint32_t v = 1; v < n; ++v) {
        if (!ws.reached(v)) continue;
        newly_reached += fold(v, M::combine(first_value, ws.value(v)), w);
      }
    }
    return newly_reached;
  };

  if constexpr (M::kind == MetricKind::kConcave) {
    ws.first_hop_forest.build<M>(ws.local_csr);
    // Saturation cutoff: via-w values never exceed q(u,w) under min-
    // composition, so once every destination is reached and q(u,w) is
    // strictly (beyond any tolerance) below the weakest current best, w
    // cannot enter any fp set. Processing neighbors by descending direct
    // link turns the cutoff into a loop exit; fp lists are re-sorted to
    // the canonical ascending order afterwards.
    auto& order = ws.first_hop_order;
    order.clear();
    for (std::uint32_t w : view.one_hop()) {
      const LinkQos* first_link =
          view.local_edge_qos(LocalView::origin_index(), w);
      if (first_link == nullptr) continue;  // filtered out by a reduction
      order.push_back({M::link_value(*first_link), w});
    }
    std::sort(order.begin(), order.end(),
              [](const std::pair<double, std::uint32_t>& a,
                 const std::pair<double, std::uint32_t>& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });

    std::uint32_t unreached = n - 1;
    for (const auto& [first_value, w] : order) {
      if (unreached == 0) {
        // Weakest current best, and the largest magnitude bounding the
        // metric_equal tolerance band (same max(·,1) floor as values_equal;
        // a 10× margin keeps the cutoff strictly outside the band).
        double weakest = out.best[1];
        double largest = 1.0;
        for (std::uint32_t v = 1; v < n; ++v) {
          if (out.best[v] < weakest) weakest = out.best[v];
          const double mag = std::fabs(out.best[v]);
          if (mag > largest) largest = mag;
        }
        if (first_value < weakest - 10.0 * kMetricRelTolerance * largest)
          break;
      }
      unreached -= run_from(w, first_value);
    }
    for (std::uint32_t v = 1; v < n; ++v)
      std::sort(out.fp[v].begin(), out.fp[v].end());
  } else {
    for (std::uint32_t w : view.one_hop()) {
      const LinkQos* first_link =
          view.local_edge_qos(LocalView::origin_index(), w);
      if (first_link == nullptr) continue;  // filtered out by a reduction
      run_from(w, M::link_value(*first_link));
    }
  }
}

/// Allocating convenience form (the original API).
template <Metric M>
FirstHopTable compute_first_hops(const LocalView& view) {
  thread_local DijkstraWorkspace ws;
  FirstHopTable table;
  compute_first_hops<M>(view, ws, table);
  return table;
}

}  // namespace qolsr
