#pragma once

#include <cstdint>
#include <vector>

#include "graph/local_view.hpp"
#include "path/dijkstra.hpp"

namespace qolsr {

/// The per-destination "first node on best path" sets of the paper:
/// for every v in the local view,
///
///   best[v] = B̃(u,v)   (resp. D̃(u,v)) — the best simple-path value from u
///                        to v inside G_u;
///   fp[v]   = fP(u,v)  — every 1-hop neighbor w of u that starts some best
///                        path (paper §III-A; e.g. fPBW(u,v3) = {v1,v2} in
///                        its Fig. 2).
///
/// Indexed by *local* id; `fp` lists local ids, ascending (which is also
/// ascending global id, since one-hop locals are assigned in id order).
struct FirstHopTable {
  std::vector<double> best;
  std::vector<std::vector<std::uint32_t>> fp;

  bool reachable(std::uint32_t v) const { return !fp[v].empty(); }
};

/// Computes the table exactly, with simple-path semantics: a best path may
/// not revisit u, so each neighbor w is evaluated by a Dijkstra on
/// G_u \ {u} rooted at w, and
///
///   value_via_w(v) = combine(q(u,w), dist_{G_u∖u}(w, v)).
///
/// (A single Dijkstra from u with first-hop propagation over tight edges is
/// wrong for concave metrics: min-composition saturates, the tight-edge
/// relation has cycles, and non-simple "best" paths through u would be
/// counted. deg(u) small Dijkstras are exact and cheap on a 2-hop view.)
template <Metric M>
FirstHopTable compute_first_hops(const LocalView& view) {
  const auto n = static_cast<std::uint32_t>(view.size());
  FirstHopTable table;
  table.best.assign(n, M::unreachable());
  table.fp.assign(n, {});
  table.best[LocalView::origin_index()] = M::identity();

  for (std::uint32_t w : view.one_hop()) {
    const LinkQos* first_link =
        view.local_edge_qos(LocalView::origin_index(), w);
    if (first_link == nullptr) continue;  // filtered out by a reduction
    const double first_value = M::link_value(*first_link);
    const DijkstraResult from_w =
        dijkstra<M>(view, w, /*excluded=*/LocalView::origin_index());
    for (std::uint32_t v = 1; v < n; ++v) {
      if (from_w.value[v] == M::unreachable()) continue;
      const double cand = M::combine(first_value, from_w.value[v]);
      if (table.fp[v].empty() || M::better(cand, table.best[v])) {
        table.best[v] = cand;
        table.fp[v].assign(1, w);
      } else if (metric_equal(cand, table.best[v])) {
        table.fp[v].push_back(w);
      }
    }
  }
  return table;
}

}  // namespace qolsr
