#include "path/dijkstra.hpp"

#include <algorithm>

namespace qolsr {

std::vector<std::uint32_t> extract_path(const DijkstraResult& result,
                                        std::uint32_t source,
                                        std::uint32_t target) {
  std::vector<std::uint32_t> path;
  if (target >= result.parent.size()) return path;
  if (target != source && result.parent[target] == kInvalidNode) return path;
  for (std::uint32_t v = target;; v = result.parent[v]) {
    path.push_back(v);
    if (v == source) break;
    if (result.parent[v] == kInvalidNode) return {};  // broken chain
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace qolsr
