#pragma once

#include <cstdint>
#include <vector>

#include "graph/local_view.hpp"
#include "metrics/metric.hpp"
#include "path/dijkstra.hpp"

namespace qolsr {

/// Exhaustive-search reference implementations. Exponential — test-sized
/// graphs only. These are the ground truth the property tests compare the
/// production Dijkstra / first-hop code against.
template <Metric M, typename G>
struct BruteForceResult {
  double best;
  std::vector<std::vector<std::uint32_t>> optimal_paths;  // node sequences
};

namespace brute_detail {

template <Metric M, typename G>
void dfs_all_paths(const G& graph, std::uint32_t target,
                   std::vector<std::uint32_t>& current,
                   std::vector<bool>& on_path, double value,
                   std::uint32_t excluded, BruteForceResult<M, G>& out) {
  const std::uint32_t v = current.back();
  if (v == target) {
    if (out.optimal_paths.empty() || M::better(value, out.best)) {
      out.best = value;
      out.optimal_paths.assign(1, current);
    } else if (metric_equal(value, out.best)) {
      out.optimal_paths.push_back(current);
    }
    return;
  }
  for (const auto& edge : graph.neighbors(v)) {
    const std::uint32_t next = edge.to;
    if (next == excluded || on_path[next]) continue;
    const double cand = M::combine(value, M::link_value(edge.qos));
    on_path[next] = true;
    current.push_back(next);
    dfs_all_paths<M>(graph, target, current, on_path, cand, excluded, out);
    current.pop_back();
    on_path[next] = false;
  }
}

}  // namespace brute_detail

/// All optimal simple paths source→target and their value, by enumerating
/// every simple path. `excluded` removes one vertex, mirroring the
/// `dijkstra` parameter.
template <Metric M, typename G>
BruteForceResult<M, G> brute_force_best_paths(
    const G& graph, std::uint32_t source, std::uint32_t target,
    std::uint32_t excluded = kInvalidNode) {
  BruteForceResult<M, G> out{M::unreachable(), {}};
  if (source == excluded || target == excluded) return out;
  const std::size_t n = dijkstra_detail::graph_size(graph);
  std::vector<bool> on_path(n, false);
  std::vector<std::uint32_t> current{source};
  on_path[source] = true;
  brute_detail::dfs_all_paths<M>(graph, target, current, on_path,
                                 M::identity(), excluded, out);
  return out;
}

/// Ground-truth fP(u,v): first nodes of all optimal simple u→v paths in the
/// view (ascending, deduplicated).
template <Metric M>
std::vector<std::uint32_t> brute_force_first_hops(const LocalView& view,
                                                  std::uint32_t target) {
  const auto result = brute_force_best_paths<M, LocalView>(
      view, LocalView::origin_index(), target);
  std::vector<std::uint32_t> hops;
  for (const auto& path : result.optimal_paths)
    if (path.size() >= 2) hops.push_back(path[1]);
  std::sort(hops.begin(), hops.end());
  hops.erase(std::unique(hops.begin(), hops.end()), hops.end());
  return hops;
}

}  // namespace qolsr
