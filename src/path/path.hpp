#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/node_id.hpp"
#include "metrics/metric.hpp"

namespace qolsr {

/// A path is the node sequence x0 x1 … xn (paper §III-A). An empty vector
/// means "no path".
using Path = std::vector<NodeId>;

/// True when consecutive nodes are linked in `graph` and no node repeats.
bool is_simple_path(const Graph& graph, const Path& path);

/// Path value under metric M: Σ for additive metrics, min for concave ones.
/// A single-node path has value M::identity(); a missing link makes the
/// value M::unreachable().
template <Metric M>
double evaluate_path(const Graph& graph, const Path& path) {
  if (path.empty()) return M::unreachable();
  double value = M::identity();
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const LinkQos* qos = graph.edge_qos(path[i], path[i + 1]);
    if (qos == nullptr) return M::unreachable();
    value = M::combine(value, M::link_value(*qos));
  }
  return value;
}

}  // namespace qolsr
