#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "graph/graph.hpp"
#include "graph/local_view.hpp"
#include "metrics/metric.hpp"

namespace qolsr {

/// Result of a single-source QoS shortest-path computation.
///
/// Optimality is lexicographic in (metric value, hop count): among paths of
/// equal QoS value the fewest-hop one wins. The hop tie-break matters twice:
/// it makes results deterministic under the floating-point ties that concave
/// metrics produce constantly (every path through one bottleneck link has
/// the same value), and it gives hop-by-hop forwarding the suffix property
/// that guarantees loop-freedom (see routing/forwarding.hpp).
struct DijkstraResult {
  std::vector<double> value;          ///< best metric value per node
  std::vector<std::uint32_t> hops;    ///< hops of that best path
  std::vector<std::uint32_t> parent;  ///< predecessor (kInvalidNode at source
                                      ///< and unreachable nodes)

  bool reached(std::uint32_t v, double unreachable_value) const {
    return value[v] != unreachable_value;
  }
};

namespace dijkstra_detail {

inline std::size_t graph_size(const LocalView& g) { return g.size(); }
/// Any graph-like type exposing node_count() (Graph, DirectedGraph, …).
template <typename G>
  requires requires(const G& g) {
    { g.node_count() } -> std::convertible_to<std::size_t>;
  }
std::size_t graph_size(const G& g) {
  return g.node_count();
}

/// (value, hops) lexicographic "a strictly better than b" under metric M.
template <Metric M>
bool lex_better(double av, std::uint32_t ah, double bv, std::uint32_t bh) {
  if (M::better(av, bv)) return true;
  if (M::better(bv, av)) return false;
  // Values tie (within tolerance): fewer hops wins.
  return metric_equal(av, bv) ? ah < bh : false;
}

}  // namespace dijkstra_detail

/// Generic label-setting Dijkstra over either the full `Graph` or a
/// `LocalView`, parameterized by the metric algebra:
///
///  * additive metrics (delay…): classic min-sum shortest path;
///  * concave metrics (bandwidth…): widest path (max-min).
///
/// `excluded` (optional) removes one vertex from the graph — the `fP`
/// computation runs on `G_u \ {u}` to enforce simple-path semantics.
///
/// Correctness requires combine() to be non-improving (see metric.hpp);
/// then the lexicographic (value, hops) order is label-setting: a popped
/// vertex is final.
template <Metric M, typename G>
DijkstraResult dijkstra(const G& graph, std::uint32_t source,
                        std::uint32_t excluded = kInvalidNode) {
  const std::size_t n = dijkstra_detail::graph_size(graph);
  DijkstraResult result;
  result.value.assign(n, M::unreachable());
  result.hops.assign(n, 0);
  result.parent.assign(n, kInvalidNode);

  struct Entry {
    double value;
    std::uint32_t hops;
    std::uint32_t node;
  };
  // priority_queue pops the comparator-largest element; "largest" must be
  // the lexicographically best entry.
  auto worse = [](const Entry& a, const Entry& b) {
    return dijkstra_detail::lex_better<M>(b.value, b.hops, a.value, a.hops);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> queue(worse);

  if (source == excluded) return result;
  result.value[source] = M::identity();
  queue.push({M::identity(), 0, source});

  std::vector<bool> settled(n, false);
  while (!queue.empty()) {
    const Entry top = queue.top();
    queue.pop();
    if (settled[top.node]) continue;
    settled[top.node] = true;
    for (const auto& edge : graph.neighbors(top.node)) {
      const std::uint32_t next = edge.to;
      if (next == excluded || settled[next]) continue;
      const double cand = M::combine(top.value, M::link_value(edge.qos));
      const std::uint32_t cand_hops = top.hops + 1;
      const bool first_touch = result.value[next] == M::unreachable();
      if (first_touch ||
          dijkstra_detail::lex_better<M>(cand, cand_hops, result.value[next],
                                         result.hops[next])) {
        result.value[next] = cand;
        result.hops[next] = cand_hops;
        result.parent[next] = top.node;
        queue.push({cand, cand_hops, next});
      }
    }
  }
  return result;
}

/// Hop-count-primary variant: minimizes hops, breaking ties by the better
/// metric value — original OLSR's routing discipline with a QoS tie-break,
/// which is how the QOLSR baseline routes ("in order to maintain shortest
/// paths in terms of number of hops", paper §II). The lexicographic
/// (hops, value) order *is* isotone under edge extension (hops grow by
/// exactly one, combine() is monotone in its first argument), so plain
/// label-setting is exact here for both metric families.
template <Metric M, typename G>
DijkstraResult dijkstra_min_hop(const G& graph, std::uint32_t source,
                                std::uint32_t excluded = kInvalidNode) {
  const std::size_t n = dijkstra_detail::graph_size(graph);
  DijkstraResult result;
  result.value.assign(n, M::unreachable());
  result.hops.assign(n, 0);
  result.parent.assign(n, kInvalidNode);

  struct Entry {
    double value;
    std::uint32_t hops;
    std::uint32_t node;
  };
  auto hop_lex_better = [](double av, std::uint32_t ah, double bv,
                           std::uint32_t bh) {
    if (ah != bh) return ah < bh;
    return M::better(av, bv);
  };
  auto worse = [hop_lex_better](const Entry& a, const Entry& b) {
    return hop_lex_better(b.value, b.hops, a.value, a.hops);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> queue(worse);

  if (source == excluded) return result;
  result.value[source] = M::identity();
  queue.push({M::identity(), 0, source});

  std::vector<bool> settled(n, false);
  while (!queue.empty()) {
    const Entry top = queue.top();
    queue.pop();
    if (settled[top.node]) continue;
    settled[top.node] = true;
    for (const auto& edge : graph.neighbors(top.node)) {
      const std::uint32_t next = edge.to;
      if (next == excluded || settled[next]) continue;
      const double cand = M::combine(top.value, M::link_value(edge.qos));
      const std::uint32_t cand_hops = top.hops + 1;
      const bool first_touch = result.value[next] == M::unreachable();
      if (first_touch || hop_lex_better(cand, cand_hops, result.value[next],
                                        result.hops[next])) {
        result.value[next] = cand;
        result.hops[next] = cand_hops;
        result.parent[next] = top.node;
        queue.push({cand, cand_hops, next});
      }
    }
  }
  return result;
}

/// Reconstructs the node sequence source..target from `parent` pointers.
/// Empty when target was not reached.
std::vector<std::uint32_t> extract_path(const DijkstraResult& result,
                                        std::uint32_t source,
                                        std::uint32_t target);

}  // namespace qolsr
