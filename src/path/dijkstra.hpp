#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "graph/local_view.hpp"
#include "metrics/metric.hpp"

namespace qolsr {

/// Result of a single-source QoS shortest-path computation.
///
/// Optimality is lexicographic in (metric value, hop count): among paths of
/// equal QoS value the fewest-hop one wins. The hop tie-break matters twice:
/// it makes results deterministic under the floating-point ties that concave
/// metrics produce constantly (every path through one bottleneck link has
/// the same value), and it gives hop-by-hop forwarding the suffix property
/// that guarantees loop-freedom (see routing/forwarding.hpp).
struct DijkstraResult {
  std::vector<double> value;          ///< best metric value per node
  std::vector<std::uint32_t> hops;    ///< hops of that best path
  std::vector<std::uint32_t> parent;  ///< predecessor (kInvalidNode at source
                                      ///< and unreachable nodes)

  bool reached(std::uint32_t v, double unreachable_value) const {
    return value[v] != unreachable_value;
  }
};

/// Metric-specialized CSR mirror of a LocalView: neighbor id + extracted
/// link value, 16 bytes per directed edge instead of the 56-byte
/// LocalEdge/LinkQos record. `compute_first_hops` extracts once per view
/// and amortizes it over the deg(u) inner Dijkstras — the edge scan is the
/// hottest loop of the eval pipeline, and the full QoS record drags six
/// unused doubles through cache per scanned edge.
class WeightedLocalView {
 public:
  struct WeightedEdge {
    std::uint32_t to;
    double weight;  ///< M::link_value of the mirrored edge
  };

  /// Mirrors `view`, optionally dropping one vertex (all edges incident to
  /// `excluded`): callers running many Dijkstras on G_u \ {u} pay for the
  /// exclusion once here instead of per scanned edge per run.
  template <Metric M>
  void assign(const LocalView& view, std::uint32_t excluded = kInvalidNode) {
    const auto n = static_cast<std::uint32_t>(view.size());
    row_begin_.resize(n + 1);
    edges_.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      row_begin_[i] = static_cast<std::uint32_t>(edges_.size());
      if (i == excluded) continue;
      for (const LocalView::LocalEdge& e : view.neighbors(i))
        if (e.to != excluded) edges_.push_back({e.to, M::link_value(e.qos)});
    }
    row_begin_[n] = static_cast<std::uint32_t>(edges_.size());
  }

  std::size_t node_count() const {
    return row_begin_.empty() ? 0 : row_begin_.size() - 1;
  }
  std::span<const WeightedEdge> neighbors(std::uint32_t i) const {
    return {edges_.data() + row_begin_[i], row_begin_[i + 1] - row_begin_[i]};
  }

 private:
  std::vector<std::uint32_t> row_begin_;
  std::vector<WeightedEdge> edges_;
};

/// Maximum-bottleneck spanning forest of a `WeightedLocalView`, the
/// all-sources engine behind compute_first_hops' concave runs.
///
/// Widest-path (max-min) values have the classic spanning-forest property:
/// the optimal bottleneck between any two nodes equals the minimum edge
/// weight on their unique forest path, for *any* maximum spanning forest.
/// So instead of one Dijkstra per root, `build` runs Kruskal once (one
/// edge sort amortized over every root) and `for_each_from` walks the
/// forest in O(component) per root, folding values as it goes. Bottleneck
/// values are exact — independent of how weight ties were broken during
/// construction — hence identical to the (tolerantly compared) Dijkstra
/// labels whenever distinct path values sit outside each other's
/// metric_equal band: always for integral weights, probability-zero
/// otherwise (the compute_first_hops caveat).
///
/// All storage is reused across builds; one instance per thread.
class BottleneckForest {
 public:
  /// Rebuilds the forest of `g` under concave metric M (edge preference
  /// `dijkstra_detail::raw_better<M>`, i.e. wider is better).
  template <Metric M>
  void build(const WeightedLocalView& g);

  /// Visits every node of `root`'s component (root included) exactly once,
  /// calling `fn(v, value)` where value = M::combine(source_value,
  /// forest-path bottleneck root→v). Visit order is a DFS order; callers
  /// must not depend on it.
  template <Metric M, typename Fn>
  void for_each_from(std::uint32_t root, double source_value, Fn&& fn) {
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
    stamp_[root] = epoch_;
    value_[root] = source_value;
    stack_.clear();
    stack_.push_back(root);
    while (!stack_.empty()) {
      const std::uint32_t x = stack_.back();
      stack_.pop_back();
      const double vx = value_[x];
      fn(x, vx);
      for (std::uint32_t i = row_begin_[x]; i < row_begin_[x + 1]; ++i) {
        const TreeEdge& e = tree_[i];
        if (stamp_[e.to] == epoch_) continue;
        stamp_[e.to] = epoch_;
        value_[e.to] = M::combine(vx, e.weight);
        stack_.push_back(e.to);
      }
    }
  }

 private:
  struct EdgeRec {
    double weight;
    std::uint32_t a, b;
  };
  struct TreeEdge {
    std::uint32_t to;
    double weight;
  };

  std::uint32_t find(std::uint32_t x) {
    while (uf_[x] != x) {
      uf_[x] = uf_[uf_[x]];  // path halving
      x = uf_[x];
    }
    return x;
  }

  std::vector<EdgeRec> edges_;     ///< sort buffer (each undirected edge once)
  std::vector<std::uint32_t> uf_;  ///< union-find parents
  std::vector<std::uint32_t> row_begin_;  ///< forest adjacency CSR
  std::vector<TreeEdge> tree_;
  std::vector<std::uint32_t> stack_;  ///< DFS scratch
  std::vector<double> value_;         ///< folded value per visited node
  std::vector<std::uint32_t> stamp_;  ///< per-DFS visited epoch
  std::uint32_t epoch_ = 0;
};

/// Reusable scratch + label store for `dijkstra`/`dijkstra_min_hop`.
///
/// Labels are epoch-stamped: `begin(n)` bumps the epoch instead of clearing
/// the arrays, so consecutive runs touch only the nodes they actually reach
/// and perform zero heap allocation once the arrays are warm (the eval
/// pipeline runs deg(u) Dijkstras per node per sampled topology — see
/// DESIGN.md §5). After a run, `reached(v)` tells whether v was labeled this
/// epoch; `value/hops/parent(v)` are final labels, valid only when reached.
///
/// The priority queue is an indexed 4-ary heap with decrease-key: each
/// touched, unsettled node holds exactly one entry (improvements sift the
/// existing entry up instead of pushing a duplicate), so the heap never
/// carries stale entries and every pop settles a node. 4-ary keeps the
/// sift paths short on the small frontiers of 2-hop views.
///
/// One workspace per thread; the begin/label/settle/heap members are the
/// algorithm's machinery and not meant for external callers.
class DijkstraWorkspace {
 public:
  bool reached(std::uint32_t v) const { return (state_[v] >> 1) == epoch_; }
  double value(std::uint32_t v) const { return labels_[v].value; }
  std::uint32_t hops(std::uint32_t v) const { return labels_[v].hops; }
  std::uint32_t parent(std::uint32_t v) const {
    return reached(v) ? labels_[v].parent : kInvalidNode;
  }
  /// Node count of the last run.
  std::size_t size() const { return size_; }

  /// Exports the labels in the legacy dense form.
  template <Metric M>
  DijkstraResult to_result() const {
    DijkstraResult result;
    result.value.assign(size_, M::unreachable());
    result.hops.assign(size_, 0);
    result.parent.assign(size_, kInvalidNode);
    for (std::uint32_t v = 0; v < size_; ++v) {
      if (!reached(v)) continue;
      result.value[v] = labels_[v].value;
      result.hops[v] = labels_[v].hops;
      result.parent[v] = labels_[v].parent;
    }
    return result;
  }

  // -- algorithm machinery ------------------------------------------------

  struct Entry {
    double value;
    std::uint32_t hops;
    std::uint32_t node;
  };

  /// Starts a run over `n` nodes: O(1) amortized, allocation-free once the
  /// arrays have grown to the largest graph seen.
  void begin(std::size_t n) {
    size_ = n;
    if (state_.size() < n) {
      state_.resize(n, 0);
      labels_.resize(n);
      heap_pos_.resize(n);
    }
    // state_[v] packs (label epoch << 1) | settled; epoch 2^31 wraps.
    if (++epoch_ == (1u << 31)) {
      std::fill(state_.begin(), state_.end(), 0);
      epoch_ = 1;
    }
    heap_.clear();
  }

  /// (Re)labels v; first touch this epoch also clears its settled bit.
  void label(std::uint32_t v, double value, std::uint32_t hops,
             std::uint32_t parent) {
    state_[v] = epoch_ << 1;
    labels_[v] = {value, hops, parent};
  }

  bool settled(std::uint32_t v) const {
    return state_[v] == ((epoch_ << 1) | 1u);
  }
  void settle(std::uint32_t v) { state_[v] |= 1u; }

  bool heap_empty() const { return heap_.empty(); }

  /// Scratch for callers that mirror a LocalView before running several
  /// Dijkstras on it (compute_first_hops); lives here so one per-thread
  /// workspace carries all path-engine scratch.
  WeightedLocalView local_csr;
  /// compute_first_hops scratch: (direct-link value, one-hop local id).
  std::vector<std::pair<double, std::uint32_t>> first_hop_order;
  /// compute_first_hops' concave all-sources engine (see BottleneckForest).
  BottleneckForest first_hop_forest;

  template <typename BetterFn>
  void heap_push(double value, std::uint32_t hops, std::uint32_t node,
                 const BetterFn& better) {
    heap_.push_back({value, hops, node});
    heap_pos_[node] = static_cast<std::uint32_t>(heap_.size() - 1);
    sift_up(heap_.size() - 1, better);
  }

  /// Decrease-key: the entry of `node` (which must be queued) takes the
  /// strictly better (value, hops) and sifts up.
  template <typename BetterFn>
  void heap_improve(std::uint32_t node, double value, std::uint32_t hops,
                    const BetterFn& better) {
    const std::size_t i = heap_pos_[node];
    heap_[i].value = value;
    heap_[i].hops = hops;
    sift_up(i, better);
  }

  template <typename BetterFn>
  Entry heap_pop(const BetterFn& better) {
    const Entry top = heap_.front();
    const Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = last;
      heap_pos_[last.node] = 0;
      sift_down(0, better);
    }
    return top;
  }

 private:
  // Both sifts move the displaced entry through a hole and write it once at
  // its final slot, instead of swapping (and re-stamping heap_pos_) per
  // level.
  template <typename BetterFn>
  void sift_up(std::size_t i, const BetterFn& better) {
    const Entry moving = heap_[i];
    while (i > 0) {
      const std::size_t up = (i - 1) / 4;
      if (!better(moving, heap_[up])) break;
      heap_[i] = heap_[up];
      heap_pos_[heap_[i].node] = static_cast<std::uint32_t>(i);
      i = up;
    }
    heap_[i] = moving;
    heap_pos_[moving.node] = static_cast<std::uint32_t>(i);
  }

  template <typename BetterFn>
  void sift_down(std::size_t i, const BetterFn& better) {
    const std::size_t n = heap_.size();
    const Entry moving = heap_[i];
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end = std::min(first_child + 4, n);
      for (std::size_t c = first_child + 1; c < end; ++c)
        if (better(heap_[c], heap_[best])) best = c;
      if (!better(heap_[best], moving)) break;
      heap_[i] = heap_[best];
      heap_pos_[heap_[i].node] = static_cast<std::uint32_t>(i);
      i = best;
    }
    heap_[i] = moving;
    heap_pos_[moving.node] = static_cast<std::uint32_t>(i);
  }

  struct Label {
    double value;
    std::uint32_t hops;
    std::uint32_t parent;
  };

  std::vector<std::uint32_t> state_;  ///< (epoch << 1) | settled
  std::uint32_t epoch_ = 0;
  std::size_t size_ = 0;
  std::vector<Label> labels_;
  std::vector<Entry> heap_;
  std::vector<std::uint32_t> heap_pos_;  ///< valid while queued
};

namespace dijkstra_detail {

inline std::size_t graph_size(const LocalView& g) { return g.size(); }
/// Any graph-like type exposing node_count() (Graph, DirectedGraph,
/// WeightedLocalView, …).
template <typename G>
  requires requires(const G& g) {
    { g.node_count() } -> std::convertible_to<std::size_t>;
  }
std::size_t graph_size(const G& g) {
  return g.node_count();
}

/// Link value of an adjacency record: a full QoS record yields the
/// metric's component, a WeightedEdge carries it pre-extracted.
template <Metric M, typename E>
double edge_weight(const E& e) {
  if constexpr (requires { e.qos; }) {
    return M::link_value(e.qos);
  } else {
    return e.weight;
  }
}

/// The metric's tolerance-free numeric preference; falls back to the
/// tolerant `better` for metrics that don't expose `raw_better`.
template <Metric M>
bool raw_better(double a, double b) {
  if constexpr (requires { { M::raw_better(a, b) } -> std::convertible_to<bool>; }) {
    return M::raw_better(a, b);
  } else {
    return M::better(a, b);
  }
}

/// (value, hops) lexicographic "a strictly better than b" under metric M.
template <Metric M>
bool lex_better(double av, std::uint32_t ah, double bv, std::uint32_t bh) {
  // Exact ties dominate under concave metrics (every path through one
  // bottleneck link copies its value), and this is the hottest comparison
  // in the codebase — short-circuit before the tolerant compare.
  if (av == bv) return ah < bh;
  // One tolerance test settles the rest: inside the band the values tie
  // (fewer hops wins); outside it the plain numeric preference is exact.
  if (metric_equal(av, bv)) return ah < bh;
  return raw_better<M>(av, bv);
}

/// Value-only strict preference: a strictly (beyond the tolerance band)
/// better than b. The hop-free analogue of lex_better.
template <Metric M>
bool value_better(double av, double bv) {
  if (av == bv) return false;
  if (metric_equal(av, bv)) return false;
  return raw_better<M>(av, bv);
}

/// Shared label-setting loop; `entry_better` defines the pop order, and
/// `relax_better` decides whether a candidate label replaces the current
/// one. Both orders must agree for label-setting to be exact. With the
/// indexed heap, every pop settles its node and improvements are
/// decrease-keys on the live entry.
template <Metric M, typename G, typename EntryBetter, typename RelaxBetter>
void run_label_setting(const G& graph, std::uint32_t source,
                       std::uint32_t excluded, DijkstraWorkspace& ws,
                       const EntryBetter& entry_better,
                       const RelaxBetter& relax_better,
                       double source_value = M::identity()) {
  ws.begin(graph_size(graph));
  if (source == excluded || source >= ws.size()) return;
  ws.label(source, source_value, 0, kInvalidNode);
  ws.heap_push(source_value, 0, source, entry_better);

  while (!ws.heap_empty()) {
    const DijkstraWorkspace::Entry top = ws.heap_pop(entry_better);
    ws.settle(top.node);
    for (const auto& edge : graph.neighbors(top.node)) {
      const std::uint32_t next = edge.to;
      if (next == excluded) continue;
      const double cand = M::combine(top.value, edge_weight<M>(edge));
      const std::uint32_t cand_hops = top.hops + 1;
      if (!ws.reached(next)) {
        ws.label(next, cand, cand_hops, top.node);
        ws.heap_push(cand, cand_hops, next, entry_better);
      } else if (!ws.settled(next) &&
                 relax_better(cand, cand_hops, ws.value(next),
                              ws.hops(next))) {
        ws.label(next, cand, cand_hops, top.node);
        ws.heap_improve(next, cand, cand_hops, entry_better);
      }
    }
  }
}

}  // namespace dijkstra_detail

/// Generic label-setting Dijkstra over the full `Graph`, a `LocalView`, or
/// a `WeightedLocalView` mirror, parameterized by the metric algebra:
///
///  * additive metrics (delay…): classic min-sum shortest path;
///  * concave metrics (bandwidth…): widest path (max-min).
///
/// `excluded` (optional) removes one vertex from the graph — the `fP`
/// computation runs on `G_u \ {u}` to enforce simple-path semantics.
///
/// Correctness requires combine() to be non-improving (see metric.hpp);
/// then the lexicographic (value, hops) order is label-setting: a popped
/// vertex is final.
///
/// This overload reuses `ws` across calls (zero steady-state allocation);
/// read the labels through the workspace accessors.
template <Metric M, typename G>
void dijkstra(const G& graph, std::uint32_t source, std::uint32_t excluded,
              DijkstraWorkspace& ws) {
  auto entry_better = [](const DijkstraWorkspace::Entry& a,
                         const DijkstraWorkspace::Entry& b) {
    return dijkstra_detail::lex_better<M>(a.value, a.hops, b.value, b.hops);
  };
  dijkstra_detail::run_label_setting<M>(
      graph, source, excluded, ws, entry_better,
      [](double av, std::uint32_t ah, double bv, std::uint32_t bh) {
        return dijkstra_detail::lex_better<M>(av, ah, bv, bh);
      });
}

/// Allocating convenience form (the original API); same engine and labels
/// as the workspace overload, exported densely.
template <Metric M, typename G>
DijkstraResult dijkstra(const G& graph, std::uint32_t source,
                        std::uint32_t excluded = kInvalidNode) {
  thread_local DijkstraWorkspace ws;
  dijkstra<M>(graph, source, excluded, ws);
  return ws.to_result<M>();
}

/// Value-only label setting: optimal metric value per node, with *no* hop
/// tie-break. Pops and relaxations compare values alone, so exact ties —
/// the overwhelmingly common case under concave metrics and integral
/// weights — are single-compare no-ops instead of decrease-keys, and sift
/// paths terminate immediately among tied entries.
///
/// `source_value` seeds the source label (default: the metric identity).
/// Under min-composition seeding with q(u,w) computes
/// combine(q(u,w), dist(w, ·)) directly — values saturate at q(u,w), which
/// turns most relaxations into ties. Additive metrics must seed with the
/// identity and fold afterwards: combine is a float sum whose rounding
/// depends on accumulation order, and a seeded sum would round differently
/// from combine(first, dist).
///
/// Final values are identical to `dijkstra`'s whenever distinct candidate
/// path values never fall inside each other's metric_equal tolerance band
/// (always true for integral weights, probability-zero for continuous
/// draws — the same caveat as compute_first_hops' descending-order
/// processing). Hop and parent labels are *not* lex-optimal here; use
/// `dijkstra` when they matter.
template <Metric M, typename G>
void dijkstra_values(const G& graph, std::uint32_t source,
                     DijkstraWorkspace& ws,
                     double source_value = M::identity()) {
  auto entry_better = [](const DijkstraWorkspace::Entry& a,
                         const DijkstraWorkspace::Entry& b) {
    return dijkstra_detail::value_better<M>(a.value, b.value);
  };
  dijkstra_detail::run_label_setting<M>(
      graph, source, kInvalidNode, ws, entry_better,
      [](double av, std::uint32_t, double bv, std::uint32_t) {
        return dijkstra_detail::value_better<M>(av, bv);
      },
      source_value);
}

/// Hop-count-primary variant: minimizes hops, breaking ties by the better
/// metric value — original OLSR's routing discipline with a QoS tie-break,
/// which is how the QOLSR baseline routes ("in order to maintain shortest
/// paths in terms of number of hops", paper §II). The lexicographic
/// (hops, value) order *is* isotone under edge extension (hops grow by
/// exactly one, combine() is monotone in its first argument), so plain
/// label-setting is exact here for both metric families.
template <Metric M, typename G>
void dijkstra_min_hop(const G& graph, std::uint32_t source,
                      std::uint32_t excluded, DijkstraWorkspace& ws) {
  auto hop_lex_better = [](double av, std::uint32_t ah, double bv,
                           std::uint32_t bh) {
    if (ah != bh) return ah < bh;
    return M::better(av, bv);
  };
  auto entry_better = [hop_lex_better](const DijkstraWorkspace::Entry& a,
                                       const DijkstraWorkspace::Entry& b) {
    return hop_lex_better(a.value, a.hops, b.value, b.hops);
  };
  dijkstra_detail::run_label_setting<M>(graph, source, excluded, ws,
                                        entry_better, hop_lex_better);
}

template <Metric M, typename G>
DijkstraResult dijkstra_min_hop(const G& graph, std::uint32_t source,
                                std::uint32_t excluded = kInvalidNode) {
  thread_local DijkstraWorkspace ws;
  dijkstra_min_hop<M>(graph, source, excluded, ws);
  return ws.to_result<M>();
}

template <Metric M>
void BottleneckForest::build(const WeightedLocalView& g) {
  const auto n = static_cast<std::uint32_t>(g.node_count());
  edges_.clear();
  for (std::uint32_t a = 0; a < n; ++a)
    for (const WeightedLocalView::WeightedEdge& e : g.neighbors(a))
      if (e.to > a) edges_.push_back({e.weight, a, e.to});
  std::sort(edges_.begin(), edges_.end(),
            [](const EdgeRec& x, const EdgeRec& y) {
              return dijkstra_detail::raw_better<M>(x.weight, y.weight);
            });

  if (uf_.size() < n) uf_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) uf_[i] = i;
  // Kruskal; accepted edges are compacted to the front of the sort buffer.
  std::uint32_t accepted = 0;
  for (std::uint32_t i = 0; i < edges_.size(); ++i) {
    const std::uint32_t ra = find(edges_[i].a);
    const std::uint32_t rb = find(edges_[i].b);
    if (ra == rb) continue;
    uf_[ra] = rb;
    edges_[accepted++] = edges_[i];
  }

  // Forest adjacency CSR (both directions); uf_ doubles as the scatter
  // cursor now that the union-find phase is over.
  if (row_begin_.size() < std::size_t{n} + 1) row_begin_.resize(n + 1);
  std::fill(row_begin_.begin(), row_begin_.begin() + n + 1, 0u);
  for (std::uint32_t i = 0; i < accepted; ++i) {
    ++row_begin_[edges_[i].a + 1];
    ++row_begin_[edges_[i].b + 1];
  }
  for (std::uint32_t v = 0; v < n; ++v) row_begin_[v + 1] += row_begin_[v];
  tree_.resize(2 * std::size_t{accepted});
  for (std::uint32_t v = 0; v < n; ++v) uf_[v] = row_begin_[v];
  for (std::uint32_t i = 0; i < accepted; ++i) {
    const EdgeRec& e = edges_[i];
    tree_[uf_[e.a]++] = {e.b, e.weight};
    tree_[uf_[e.b]++] = {e.a, e.weight};
  }

  if (stamp_.size() < n) stamp_.resize(n, 0);
  if (value_.size() < n) value_.resize(n);
}

/// Reconstructs the node sequence source..target from `parent` pointers.
/// Empty when target was not reached.
std::vector<std::uint32_t> extract_path(const DijkstraResult& result,
                                        std::uint32_t source,
                                        std::uint32_t target);

}  // namespace qolsr
