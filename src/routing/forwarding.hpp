#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/local_view.hpp"
#include "metrics/metric.hpp"
#include "path/path.hpp"
#include "routing/advertised_topology.hpp"
#include "routing/directed.hpp"
#include "routing/routing_table.hpp"

namespace qolsr {

/// Why a forwarding attempt ended.
enum class ForwardingStatus {
  kDelivered,
  kNoRoute,    ///< some hop had no path to the destination
  kLoop,       ///< a node was visited twice
  kHopLimit,   ///< safety cap exceeded
};

struct ForwardingResult {
  ForwardingStatus status = ForwardingStatus::kNoRoute;
  Path path;           ///< nodes traversed, starting at the source
  double value = 0.0;  ///< metric value of the traversed path (full graph)

  bool delivered() const { return status == ForwardingStatus::kDelivered; }
};

struct ForwardingOptions {
  /// When true, each hop merges its full HELLO-derived 2-hop view into its
  /// knowledge graph. That looks more informed but is *inconsistent*:
  /// different hops see different graphs, and a downstream node can prefer
  /// a "better" path leading straight back (observed on the paper's Fig. 1
  /// under QOLSR: v2 sees a width-7 path back through v1 that v1 cannot
  /// see, and the packet ping-pongs). The default routes every hop on
  /// `advertised ∪ own incident links`, which is loop-free: the suffix of
  /// any chosen plan is advertised-only, hence visible to the next hop, so
  /// the lexicographic (value, hops) potential strictly improves per hop.
  bool use_local_views = false;
  /// Hard cap; 0 means `4 * node_count` (generous — any real route is far
  /// shorter, and loops are caught by the visited set anyway).
  std::size_t max_hops = 0;
  /// Route with original OLSR's hop-count-primary discipline (fewest hops,
  /// QoS as tie-break) instead of QoS-first. The QOLSR baseline forwards
  /// this way — it "maintains shortest paths in terms of number of hops"
  /// (paper §II) — which is precisely why it strays from the QoS optimum.
  bool min_hop_routing = false;
};

/// Hop-by-hop forwarding of one packet, the paper's routing model: every
/// traversed node independently computes its QoS next hop toward the
/// destination on *its* knowledge graph (TC-advertised topology + what it
/// learned from HELLOs) and hands the packet over. The traversed path and
/// its QoS value on the real graph are returned — `value` is the b (resp.
/// d) compared against the centralized optimum b* (resp. d*) in Figs. 8/9.
template <Metric M>
ForwardingResult forward_packet(const Graph& full, const Graph& advertised,
                                NodeId source, NodeId destination,
                                const ForwardingOptions& options = {}) {
  ForwardingResult result;
  result.path.push_back(source);
  if (source == destination) {
    result.status = ForwardingStatus::kDelivered;
    result.value = M::identity();
    return result;
  }

  const std::size_t cap =
      options.max_hops > 0 ? options.max_hops : 4 * full.node_count();
  std::vector<bool> visited(full.node_count(), false);
  visited[source] = true;

  NodeId current = source;
  while (result.path.size() <= cap) {
    // The knowledge graph of `current`: advertised topology plus whatever
    // HELLO exchange taught it about its own neighborhood.
    Graph knowledge = advertised;
    if (options.use_local_views) {
      merge_local_view(knowledge, LocalView(full, current));
    } else {
      for (const Edge& e : full.neighbors(current))
        if (!knowledge.has_edge(current, e.to))
          knowledge.add_edge(current, e.to, e.qos);
    }

    const NodeId next =
        options.min_hop_routing
            ? compute_min_hop_next_hop<M>(knowledge, current, destination)
            : compute_next_hop<M>(knowledge, current, destination);
    if (next == kInvalidNode) {
      result.status = ForwardingStatus::kNoRoute;
      return result;
    }
    result.path.push_back(next);
    if (next == destination) {
      result.status = ForwardingStatus::kDelivered;
      result.value = evaluate_path<M>(full, result.path);
      return result;
    }
    if (visited[next]) {
      result.status = ForwardingStatus::kLoop;
      return result;
    }
    visited[next] = true;
    current = next;
  }
  result.status = ForwardingStatus::kHopLimit;
  return result;
}

/// Hop-by-hop forwarding in the **ANS-chain model** — the OLSR forwarding
/// rule as the paper states it (§I): "a node wanting to send a packet
/// sends it to one of its MPRs which will relay it to one of its MPRs and
/// so on". The usable relay edges are *directed*: x may hand the packet to
/// w only when w ∈ ANS(x). Two standard completions: any node holding a
/// packet for a direct neighbor delivers it (modelled as each hop's own
/// out-edges to its neighbors, usable as the immediate hop only), and any
/// *advertised* link into the destination serves as a final hop (the
/// planner knows that link from TCs; the node at its far end delivers
/// across it).
///
/// This is the model under which the selection heuristics actually differ
/// in route quality: QOLSR's per-target-optimal 2-hop relays compose badly
/// over long routes, while FNBP's chains were built to compose. It is also
/// where the Fig.-4 loop-fix is load-bearing — without it the directed
/// chains can dead-end behind a bottleneck link.
///
/// Loop-freedom: all hops plan on the same directed base D (their private
/// out-edges appear only as the first hop of their own plan, so the plan
/// suffix is always visible downstream), and the next hop is exact
/// lexicographic (value, hops); the potential argument of
/// `compute_next_hop` applies unchanged.
template <Metric M>
ForwardingResult forward_via_ans(
    const Graph& full, const std::vector<std::vector<NodeId>>& ans_per_node,
    NodeId source, NodeId destination,
    const ForwardingOptions& options = {}) {
  ForwardingResult result;
  result.path.push_back(source);
  if (source == destination) {
    result.status = ForwardingStatus::kDelivered;
    result.value = M::identity();
    return result;
  }

  // Directed relay base: x → w for w ∈ ANS(x), plus advertised final hops
  // into the destination.
  DirectedGraph base(full.node_count());
  for (NodeId x = 0; x < full.node_count(); ++x) {
    for (NodeId w : ans_per_node[x]) {
      const LinkQos* qos = full.edge_qos(x, w);
      if (qos == nullptr) continue;
      base.add_edge(x, w, *qos);
      if (w == destination) continue;
      // The undirected advertised link {x,w} is known network-wide; if one
      // end is the destination, the other end can complete the delivery.
      if (x == destination) base.add_edge(w, x, *qos);
    }
  }

  const std::size_t cap =
      options.max_hops > 0 ? options.max_hops : 4 * full.node_count();
  std::vector<bool> visited(full.node_count(), false);
  visited[source] = true;

  NodeId current = source;
  while (result.path.size() <= cap) {
    // This hop's own links, usable as its immediate next hop.
    DirectedGraph knowledge = base;
    for (const Edge& e : full.neighbors(current))
      knowledge.add_edge(current, e.to, e.qos);

    const NodeId next =
        options.min_hop_routing
            ? compute_min_hop_next_hop<M, DirectedGraph>(knowledge, current,
                                                         destination)
            : compute_next_hop<M, DirectedGraph>(knowledge, current,
                                                 destination);
    if (next == kInvalidNode) {
      result.status = ForwardingStatus::kNoRoute;
      return result;
    }
    result.path.push_back(next);
    if (next == destination) {
      result.status = ForwardingStatus::kDelivered;
      result.value = evaluate_path<M>(full, result.path);
      return result;
    }
    if (visited[next]) {
      result.status = ForwardingStatus::kLoop;
      return result;
    }
    visited[next] = true;
    current = next;
  }
  result.status = ForwardingStatus::kHopLimit;
  return result;
}

/// Source-route alternative: the whole path is fixed at the source from its
/// knowledge graph. Used by tests/benches to compare against hop-by-hop.
template <Metric M>
ForwardingResult source_route_packet(const Graph& full,
                                     const Graph& advertised, NodeId source,
                                     NodeId destination,
                                     const ForwardingOptions& options = {}) {
  Graph knowledge = advertised;
  if (options.use_local_views) {
    merge_local_view(knowledge, LocalView(full, source));
  } else {
    for (const Edge& e : full.neighbors(source))
      if (!knowledge.has_edge(source, e.to))
        knowledge.add_edge(source, e.to, e.qos);
  }
  const DijkstraResult dist = options.min_hop_routing
                                  ? dijkstra_min_hop<M>(knowledge, source)
                                  : dijkstra<M>(knowledge, source);
  ForwardingResult result;
  const std::vector<std::uint32_t> path =
      extract_path(dist, source, destination);
  if (path.empty()) {
    result.status = ForwardingStatus::kNoRoute;
    result.path.push_back(source);
    return result;
  }
  result.status = ForwardingStatus::kDelivered;
  result.path.assign(path.begin(), path.end());
  result.value = evaluate_path<M>(full, result.path);
  return result;
}

}  // namespace qolsr
