#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/local_view.hpp"
#include "metrics/metric.hpp"
#include "path/path.hpp"
#include "routing/advertised_topology.hpp"
#include "routing/directed.hpp"
#include "routing/knowledge_view.hpp"
#include "routing/routing_table.hpp"

namespace qolsr {

/// Why a forwarding attempt ended.
enum class ForwardingStatus {
  kDelivered,
  kNoRoute,    ///< some hop had no path to the destination
  kLoop,       ///< a node was visited twice
  kHopLimit,   ///< safety cap exceeded
  kStaleLink,  ///< verify_links: the chosen next-hop link no longer exists
};

struct ForwardingResult {
  ForwardingStatus status = ForwardingStatus::kNoRoute;
  Path path;           ///< nodes traversed, starting at the source
  double value = 0.0;  ///< metric value of the traversed path (full graph)

  bool delivered() const { return status == ForwardingStatus::kDelivered; }
};

struct ForwardingOptions {
  /// When true, each hop merges its full HELLO-derived 2-hop view into its
  /// knowledge graph. That looks more informed but is *inconsistent*:
  /// different hops see different graphs, and a downstream node can prefer
  /// a "better" path leading straight back (observed on the paper's Fig. 1
  /// under QOLSR: v2 sees a width-7 path back through v1 that v1 cannot
  /// see, and the packet ping-pongs). The default routes every hop on
  /// `advertised ∪ own incident links`, which is loop-free: the suffix of
  /// any chosen plan is advertised-only, hence visible to the next hop, so
  /// the lexicographic (value, hops) potential strictly improves per hop.
  bool use_local_views = false;
  /// Hard cap; 0 means `4 * node_count` (generous — any real route is far
  /// shorter, and loops are caught by the visited set anyway).
  std::size_t max_hops = 0;
  /// Route with original OLSR's hop-count-primary discipline (fewest hops,
  /// QoS as tie-break) instead of QoS-first. The QOLSR baseline forwards
  /// this way — it "maintains shortest paths in terms of number of hops"
  /// (paper §II) — which is precisely why it strays from the QoS optimum.
  bool min_hop_routing = false;
  /// Stale-advertisement (dynamics) mode, workspace forms only: the
  /// advertised topology handed in may predate the current `full` graph
  /// (the last TC refresh's knowledge), so the plan can ride links that no
  /// longer exist. Before the packet is handed to a computed next hop, the
  /// link is verified against `full`; a vanished link aborts the attempt
  /// with kStaleLink — the transmission fails, which is the stale-route
  /// packet loss the epoch-loop evaluation measures. Source routing
  /// verifies every planned hop as the packet walks the plan. Off (no
  /// verification, advertised state assumed current) by default.
  bool verify_links = false;
  /// Dynamics mode, ANS-chain model only: plan the directed relay base on
  /// this graph — the topology as of the last TC refresh — instead of
  /// `full`, so relay links that died since the advertisement stay in
  /// every hop's plan: knowledge is exactly as stale as the TC flood that
  /// spread it. Each hop's *own* links still come fresh from `full`.
  const Graph* advertised_snapshot = nullptr;
};

/// Hop-by-hop forwarding of one packet, the paper's routing model: every
/// traversed node independently computes its QoS next hop toward the
/// destination on *its* knowledge graph (TC-advertised topology + what it
/// learned from HELLOs) and hands the packet over. The traversed path and
/// its QoS value on the real graph are returned — `value` is the b (resp.
/// d) compared against the centralized optimum b* (resp. d*) in Figs. 8/9.
template <Metric M>
ForwardingResult forward_packet(const Graph& full, const Graph& advertised,
                                NodeId source, NodeId destination,
                                const ForwardingOptions& options = {}) {
  ForwardingResult result;
  result.path.push_back(source);
  if (source == destination) {
    result.status = ForwardingStatus::kDelivered;
    result.value = M::identity();
    return result;
  }

  const std::size_t cap =
      options.max_hops > 0 ? options.max_hops : 4 * full.node_count();
  std::vector<bool> visited(full.node_count(), false);
  visited[source] = true;

  NodeId current = source;
  while (result.path.size() <= cap) {
    // The knowledge graph of `current`: advertised topology plus whatever
    // HELLO exchange taught it about its own neighborhood.
    Graph knowledge = advertised;
    if (options.use_local_views) {
      merge_local_view(knowledge, LocalView(full, current));
    } else {
      for (const Edge& e : full.neighbors(current))
        if (!knowledge.has_edge(current, e.to))
          knowledge.add_edge(current, e.to, e.qos);
    }

    const NodeId next =
        options.min_hop_routing
            ? compute_min_hop_next_hop<M>(knowledge, current, destination)
            : compute_next_hop<M>(knowledge, current, destination);
    if (next == kInvalidNode) {
      result.status = ForwardingStatus::kNoRoute;
      return result;
    }
    result.path.push_back(next);
    if (next == destination) {
      result.status = ForwardingStatus::kDelivered;
      result.value = evaluate_path<M>(full, result.path);
      return result;
    }
    if (visited[next]) {
      result.status = ForwardingStatus::kLoop;
      return result;
    }
    visited[next] = true;
    current = next;
  }
  result.status = ForwardingStatus::kHopLimit;
  return result;
}

/// Hop-by-hop forwarding in the **ANS-chain model** — the OLSR forwarding
/// rule as the paper states it (§I): "a node wanting to send a packet
/// sends it to one of its MPRs which will relay it to one of its MPRs and
/// so on". The usable relay edges are *directed*: x may hand the packet to
/// w only when w ∈ ANS(x). Two standard completions: any node holding a
/// packet for a direct neighbor delivers it (modelled as each hop's own
/// out-edges to its neighbors, usable as the immediate hop only), and any
/// *advertised* link into the destination serves as a final hop (the
/// planner knows that link from TCs; the node at its far end delivers
/// across it).
///
/// This is the model under which the selection heuristics actually differ
/// in route quality: QOLSR's per-target-optimal 2-hop relays compose badly
/// over long routes, while FNBP's chains were built to compose. It is also
/// where the Fig.-4 loop-fix is load-bearing — without it the directed
/// chains can dead-end behind a bottleneck link.
///
/// Loop-freedom: all hops plan on the same directed base D (their private
/// out-edges appear only as the first hop of their own plan, so the plan
/// suffix is always visible downstream), and the next hop is exact
/// lexicographic (value, hops); the potential argument of
/// `compute_next_hop` applies unchanged.
template <Metric M>
ForwardingResult forward_via_ans(
    const Graph& full, const std::vector<std::vector<NodeId>>& ans_per_node,
    NodeId source, NodeId destination,
    const ForwardingOptions& options = {}) {
  ForwardingResult result;
  result.path.push_back(source);
  if (source == destination) {
    result.status = ForwardingStatus::kDelivered;
    result.value = M::identity();
    return result;
  }

  // Directed relay base: x → w for w ∈ ANS(x), plus advertised final hops
  // into the destination.
  DirectedGraph base(full.node_count());
  for (NodeId x = 0; x < full.node_count(); ++x) {
    for (NodeId w : ans_per_node[x]) {
      const LinkQos* qos = full.edge_qos(x, w);
      if (qos == nullptr) continue;
      base.add_edge(x, w, *qos);
      if (w == destination) continue;
      // The undirected advertised link {x,w} is known network-wide; if one
      // end is the destination, the other end can complete the delivery.
      if (x == destination) base.add_edge(w, x, *qos);
    }
  }

  const std::size_t cap =
      options.max_hops > 0 ? options.max_hops : 4 * full.node_count();
  std::vector<bool> visited(full.node_count(), false);
  visited[source] = true;

  NodeId current = source;
  while (result.path.size() <= cap) {
    // This hop's own links, usable as its immediate next hop.
    DirectedGraph knowledge = base;
    for (const Edge& e : full.neighbors(current))
      knowledge.add_edge(current, e.to, e.qos);

    const NodeId next =
        options.min_hop_routing
            ? compute_min_hop_next_hop<M, DirectedGraph>(knowledge, current,
                                                         destination)
            : compute_next_hop<M, DirectedGraph>(knowledge, current,
                                                 destination);
    if (next == kInvalidNode) {
      result.status = ForwardingStatus::kNoRoute;
      return result;
    }
    result.path.push_back(next);
    if (next == destination) {
      result.status = ForwardingStatus::kDelivered;
      result.value = evaluate_path<M>(full, result.path);
      return result;
    }
    if (visited[next]) {
      result.status = ForwardingStatus::kLoop;
      return result;
    }
    visited[next] = true;
    current = next;
  }
  result.status = ForwardingStatus::kHopLimit;
  return result;
}

/// Source-route alternative: the whole path is fixed at the source from its
/// knowledge graph. Used by tests/benches to compare against hop-by-hop.
template <Metric M>
ForwardingResult source_route_packet(const Graph& full,
                                     const Graph& advertised, NodeId source,
                                     NodeId destination,
                                     const ForwardingOptions& options = {}) {
  Graph knowledge = advertised;
  if (options.use_local_views) {
    merge_local_view(knowledge, LocalView(full, source));
  } else {
    for (const Edge& e : full.neighbors(source))
      if (!knowledge.has_edge(source, e.to))
        knowledge.add_edge(source, e.to, e.qos);
  }
  const DijkstraResult dist = options.min_hop_routing
                                  ? dijkstra_min_hop<M>(knowledge, source)
                                  : dijkstra<M>(knowledge, source);
  ForwardingResult result;
  const std::vector<std::uint32_t> path =
      extract_path(dist, source, destination);
  if (path.empty()) {
    result.status = ForwardingStatus::kNoRoute;
    result.path.push_back(source);
    return result;
  }
  result.status = ForwardingStatus::kDelivered;
  result.path.assign(path.begin(), path.end());
  result.value = evaluate_path<M>(full, result.path);
  return result;
}

// ---------------------------------------------------------------------------
// Workspace forwarding: the allocation-free, copy-free forms. Same
// semantics, same results, bit for bit — the seed forms above deep-copy
// the advertised graph once per traversed hop and re-allocate every
// Dijkstra; these route on a KnowledgeView overlay over the CSR advertised
// base and reuse one scratch bundle for everything (see DESIGN.md §5).
// ---------------------------------------------------------------------------

/// Per-thread scratch of the forwarding hot path: the next-hop engines
/// (Dijkstra labels + concave tie-break BFS), the knowledge overlay, the
/// ANS-chain directed base and its builder, a view builder for the
/// use_local_views mode, and the epoch-stamped visited set. One instance
/// per worker thread; EvalWorkspace carries one.
struct ForwardingWorkspace {
  DijkstraWorkspace dijkstra;
  NextHopScratch next_hop;
  KnowledgeView knowledge;
  AdvertisedTopologyBuilder chain_builder;
  CsrTopology chain_base;
  LocalViewBuilder view_builder;
  LocalView view;

  void begin_visit(std::size_t n) {
    if (visited_stamp_.size() < n) visited_stamp_.resize(n, 0);
    if (++visit_epoch_ == 0) {
      std::fill(visited_stamp_.begin(), visited_stamp_.end(), 0);
      visit_epoch_ = 1;
    }
  }
  bool visited(NodeId v) const { return visited_stamp_[v] == visit_epoch_; }
  void mark_visited(NodeId v) { visited_stamp_[v] = visit_epoch_; }

 private:
  std::vector<std::uint32_t> visited_stamp_;
  std::uint32_t visit_epoch_ = 0;
};

namespace forwarding_detail {

/// Patches `ws.knowledge` with what `current` knows beyond the advertised
/// base: its full HELLO-derived 2-hop view (use_local_views) or its own
/// incident links. Both directions of every link are patched, mirroring
/// the undirected seed merge exactly.
template <typename WS>
void patch_hop_knowledge(WS& ws, const Graph& full, NodeId current,
                         bool use_local_views) {
  ws.knowledge.begin_hop();
  if (use_local_views) {
    ws.view_builder.build(full, current, ws.view);
    for (std::uint32_t a = 0; a < ws.view.size(); ++a) {
      const NodeId ga = ws.view.global_id(a);
      for (const LocalView::LocalEdge& e : ws.view.neighbors(a)) {
        if (e.to <= a) continue;  // each undirected link once
        const NodeId gb = ws.view.global_id(e.to);
        ws.knowledge.add_link(ga, gb, e.qos);
        ws.knowledge.add_link(gb, ga, e.qos);
      }
    }
  } else {
    for (const Edge& e : full.neighbors(current)) {
      ws.knowledge.add_link(current, e.to, e.qos);
      ws.knowledge.add_link(e.to, current, e.qos);
    }
  }
  ws.knowledge.finalize_hop();
}

}  // namespace forwarding_detail

/// Workspace form of forward_packet: routes on `advertised` (the CSR form
/// of the same topology) without copying a graph at any hop.
template <Metric M>
ForwardingResult forward_packet(const Graph& full,
                                const CsrTopology& advertised, NodeId source,
                                NodeId destination,
                                const ForwardingOptions& options,
                                ForwardingWorkspace& ws) {
  ForwardingResult result;
  result.path.push_back(source);
  if (source == destination) {
    result.status = ForwardingStatus::kDelivered;
    result.value = M::identity();
    return result;
  }

  const std::size_t cap =
      options.max_hops > 0 ? options.max_hops : 4 * full.node_count();
  ws.begin_visit(full.node_count());
  ws.mark_visited(source);
  ws.knowledge.reset(advertised);

  NodeId current = source;
  while (result.path.size() <= cap) {
    forwarding_detail::patch_hop_knowledge(ws, full, current,
                                           options.use_local_views);
    const NodeId next =
        options.min_hop_routing
            ? compute_min_hop_next_hop<M, KnowledgeView>(
                  ws.knowledge, current, destination, ws.dijkstra)
            : compute_next_hop<M, KnowledgeView>(ws.knowledge, current,
                                                 destination, ws.dijkstra,
                                                 ws.next_hop);
    if (next == kInvalidNode) {
      result.status = ForwardingStatus::kNoRoute;
      return result;
    }
    if (options.verify_links && full.edge_qos(current, next) == nullptr) {
      result.status = ForwardingStatus::kStaleLink;
      return result;
    }
    result.path.push_back(next);
    if (next == destination) {
      result.status = ForwardingStatus::kDelivered;
      result.value = evaluate_path<M>(full, result.path);
      return result;
    }
    if (ws.visited(next)) {
      result.status = ForwardingStatus::kLoop;
      return result;
    }
    ws.mark_visited(next);
    current = next;
  }
  result.status = ForwardingStatus::kHopLimit;
  return result;
}

/// Workspace form of forward_via_ans: the directed relay base is built
/// once into `ws.chain_base` (no per-call graph, no per-hop copy).
template <Metric M>
ForwardingResult forward_via_ans(
    const Graph& full, const std::vector<std::vector<NodeId>>& ans_per_node,
    NodeId source, NodeId destination, const ForwardingOptions& options,
    ForwardingWorkspace& ws) {
  ForwardingResult result;
  result.path.push_back(source);
  if (source == destination) {
    result.status = ForwardingStatus::kDelivered;
    result.value = M::identity();
    return result;
  }

  const Graph& planning = options.advertised_snapshot != nullptr
                              ? *options.advertised_snapshot
                              : full;
  ws.chain_builder.build_ans_chain(planning, ans_per_node, destination,
                                   ws.chain_base);

  const std::size_t cap =
      options.max_hops > 0 ? options.max_hops : 4 * full.node_count();
  ws.begin_visit(full.node_count());
  ws.mark_visited(source);
  ws.knowledge.reset(ws.chain_base);

  NodeId current = source;
  while (result.path.size() <= cap) {
    // This hop's own links, usable as its immediate next hop (directed:
    // the chain base stays the planning graph of every other node).
    ws.knowledge.begin_hop();
    for (const Edge& e : full.neighbors(current))
      ws.knowledge.add_link(current, e.to, e.qos);
    ws.knowledge.finalize_hop();

    const NodeId next =
        options.min_hop_routing
            ? compute_min_hop_next_hop<M, KnowledgeView>(
                  ws.knowledge, current, destination, ws.dijkstra)
            : compute_next_hop<M, KnowledgeView>(ws.knowledge, current,
                                                 destination, ws.dijkstra,
                                                 ws.next_hop);
    if (next == kInvalidNode) {
      result.status = ForwardingStatus::kNoRoute;
      return result;
    }
    if (options.verify_links && full.edge_qos(current, next) == nullptr) {
      result.status = ForwardingStatus::kStaleLink;
      return result;
    }
    result.path.push_back(next);
    if (next == destination) {
      result.status = ForwardingStatus::kDelivered;
      result.value = evaluate_path<M>(full, result.path);
      return result;
    }
    if (ws.visited(next)) {
      result.status = ForwardingStatus::kLoop;
      return result;
    }
    ws.mark_visited(next);
    current = next;
  }
  result.status = ForwardingStatus::kHopLimit;
  return result;
}

/// Workspace form of source_route_packet.
template <Metric M>
ForwardingResult source_route_packet(const Graph& full,
                                     const CsrTopology& advertised,
                                     NodeId source, NodeId destination,
                                     const ForwardingOptions& options,
                                     ForwardingWorkspace& ws) {
  ws.knowledge.reset(advertised);
  forwarding_detail::patch_hop_knowledge(ws, full, source,
                                         options.use_local_views);
  if (options.min_hop_routing) {
    dijkstra_min_hop<M>(ws.knowledge, source, kInvalidNode, ws.dijkstra);
  } else {
    dijkstra<M>(ws.knowledge, source, kInvalidNode, ws.dijkstra);
  }

  ForwardingResult result;
  // Walk the parent labels back from the destination (extract_path on the
  // workspace labels, without exporting them densely first).
  if (destination >= ws.dijkstra.size() ||
      (destination != source &&
       ws.dijkstra.parent(destination) == kInvalidNode)) {
    result.status = ForwardingStatus::kNoRoute;
    result.path.push_back(source);
    return result;
  }
  for (NodeId v = destination;; v = ws.dijkstra.parent(v)) {
    result.path.push_back(v);
    if (v == source) break;
    if (ws.dijkstra.parent(v) == kInvalidNode) {  // broken chain; defensive
      result.path.clear();
      result.status = ForwardingStatus::kNoRoute;
      result.path.push_back(source);
      return result;
    }
  }
  std::reverse(result.path.begin(), result.path.end());
  if (options.verify_links) {
    // The packet walks the plan hop by hop; it is lost at the first
    // planned link that no longer exists, having reached path[0..i].
    for (std::size_t i = 0; i + 1 < result.path.size(); ++i) {
      if (full.edge_qos(result.path[i], result.path[i + 1]) == nullptr) {
        result.path.resize(i + 1);
        result.status = ForwardingStatus::kStaleLink;
        return result;
      }
    }
  }
  result.status = ForwardingStatus::kDelivered;
  result.value = evaluate_path<M>(full, result.path);
  return result;
}

}  // namespace qolsr
