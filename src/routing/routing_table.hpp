#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "metrics/metric.hpp"
#include "path/dijkstra.hpp"

namespace qolsr {

/// Reusable scratch of the concave tie-break BFS inside compute_next_hop:
/// an epoch-stamped parent row and the FIFO queue, so the per-hop
/// computation allocates nothing in steady state. One instance per thread
/// (ForwardingWorkspace carries one).
struct NextHopScratch {
  std::vector<std::uint32_t> parent;
  std::vector<std::uint32_t> stamp;
  std::vector<std::uint32_t> queue;
  std::uint32_t epoch = 0;

  /// Starts a BFS over n nodes; parent_of(v) is valid once set(v, p) ran
  /// this epoch.
  void begin(std::size_t n) {
    if (stamp.size() < n) {
      stamp.resize(n, 0);
      parent.resize(n);
    }
    if (++epoch == 0) {
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
    queue.clear();
  }
  bool seen(std::uint32_t v) const { return stamp[v] == epoch; }
  void set(std::uint32_t v, std::uint32_t p) {
    stamp[v] = epoch;
    parent[v] = p;
  }
};

/// Per-node QoS routing table: next hop toward every destination, computed
/// on the node's knowledge graph (TC-advertised topology merged with its
/// own HELLO-derived local view), exactly like OLSR's hop-by-hop routing
/// tables but with the QoS Dijkstra instead of hop count.
struct RoutingTable {
  NodeId self = kInvalidNode;
  std::vector<NodeId> next_hop;  ///< kInvalidNode when unreachable
  std::vector<double> value;     ///< best metric value toward each node
  std::vector<std::uint32_t> hops;

  bool reachable(NodeId dest) const {
    return dest == self || next_hop[dest] != kInvalidNode;
  }
};

/// Exact lexicographic (metric value, hop count) next hop from `self`
/// toward `dest` on `knowledge`. Returns kInvalidNode when unreachable.
///
/// Additive metrics: the (value, hops) lex order is isotone under
/// extension, so the tie-breaking Dijkstra is already exact. Concave
/// metrics are not isotone (a wider prefix with more hops can produce the
/// same bottleneck value), so Dijkstra alone returns *a* value-optimal
/// path but not necessarily a hop-minimal one. Exactness matters: with a
/// hop-minimal-among-optimal plan at every hop, the (value, hops) pair
/// strictly improves along a forwarded packet (the plan's suffix is
/// visible to the next node), which rules out forwarding loops. For
/// concave metrics we therefore compute the optimal value V with Dijkstra
/// and then BFS on the subgraph of links no worse than V — every path
/// there has bottleneck exactly V, and BFS gives the fewest hops.
template <Metric M, typename G = Graph>
NodeId compute_next_hop(const G& knowledge, NodeId self, NodeId dest) {
  if (self == dest) return kInvalidNode;
  const DijkstraResult result = dijkstra<M>(knowledge, self);
  if (result.value[dest] == M::unreachable()) return kInvalidNode;
  if constexpr (M::kind == MetricKind::kAdditive) {
    NodeId hop = dest;
    while (result.parent[hop] != self) hop = result.parent[hop];
    return hop;
  } else {
    // BFS over links whose value is not worse than the optimum V; FIFO
    // order with ascending adjacency makes the parent choice deterministic.
    const double optimum = result.value[dest];
    std::vector<NodeId> parent(dijkstra_detail::graph_size(knowledge),
                               kInvalidNode);
    std::vector<NodeId> queue{self};
    parent[self] = self;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId x = queue[head];
      if (x == dest) break;
      for (const auto& e : knowledge.neighbors(x)) {
        if (parent[e.to] != kInvalidNode) continue;
        if (M::better(optimum, M::link_value(e.qos))) continue;  // too weak
        parent[e.to] = x;
        queue.push_back(e.to);
      }
    }
    if (parent[dest] == kInvalidNode) return kInvalidNode;  // defensive
    NodeId hop = dest;
    while (parent[hop] != self) hop = parent[hop];
    return hop;
  }
}

/// Workspace form of compute_next_hop: same labels, same tie-breaks, same
/// next hop, zero steady-state allocation (the legacy form above allocates
/// a fresh result plus, for concave metrics, a parent row and queue per
/// call — once per traversed hop in forwarding).
template <Metric M, typename G>
NodeId compute_next_hop(const G& knowledge, NodeId self, NodeId dest,
                        DijkstraWorkspace& dws, NextHopScratch& bfs) {
  if (self == dest) return kInvalidNode;
  dijkstra<M>(knowledge, self, kInvalidNode, dws);
  if (!dws.reached(dest)) return kInvalidNode;
  if constexpr (M::kind == MetricKind::kAdditive) {
    NodeId hop = dest;
    while (dws.parent(hop) != self) hop = dws.parent(hop);
    return hop;
  } else {
    // BFS over links whose value is not worse than the optimum V; FIFO
    // order with ascending adjacency makes the parent choice deterministic.
    const double optimum = dws.value(dest);
    bfs.begin(dijkstra_detail::graph_size(knowledge));
    bfs.set(self, self);
    bfs.queue.push_back(self);
    for (std::size_t head = 0; head < bfs.queue.size(); ++head) {
      const NodeId x = bfs.queue[head];
      if (x == dest) break;
      for (const auto& e : knowledge.neighbors(x)) {
        if (bfs.seen(e.to)) continue;
        if (M::better(optimum, dijkstra_detail::edge_weight<M>(e)))
          continue;  // too weak
        bfs.set(e.to, x);
        bfs.queue.push_back(e.to);
      }
    }
    if (!bfs.seen(dest)) return kInvalidNode;  // defensive
    NodeId hop = dest;
    while (bfs.parent[hop] != self) hop = bfs.parent[hop];
    return hop;
  }
}

/// Hop-count-primary next hop: fewest hops, QoS as tie-break — original
/// OLSR's routing discipline, used by the QOLSR baseline (see
/// dijkstra_min_hop). Exact, and trivially loop-free hop-by-hop (the hop
/// count to the destination strictly decreases).
template <Metric M, typename G = Graph>
NodeId compute_min_hop_next_hop(const G& knowledge, NodeId self,
                                NodeId dest) {
  if (self == dest) return kInvalidNode;
  const DijkstraResult result = dijkstra_min_hop<M>(knowledge, self);
  if (result.value[dest] == M::unreachable()) return kInvalidNode;
  NodeId hop = dest;
  while (result.parent[hop] != self) hop = result.parent[hop];
  return hop;
}

/// Workspace form of compute_min_hop_next_hop (see compute_next_hop's
/// workspace form).
template <Metric M, typename G>
NodeId compute_min_hop_next_hop(const G& knowledge, NodeId self, NodeId dest,
                                DijkstraWorkspace& dws) {
  if (self == dest) return kInvalidNode;
  dijkstra_min_hop<M>(knowledge, self, kInvalidNode, dws);
  if (!dws.reached(dest)) return kInvalidNode;
  NodeId hop = dest;
  while (dws.parent(hop) != self) hop = dws.parent(hop);
  return hop;
}

/// Builds the routing table of `self` on `knowledge` under metric M.
/// Values are exact; for concave metrics the hop counts (and therefore
/// next hops among value ties) are best-effort — use `compute_next_hop`
/// where exact lex optimality is required (hop-by-hop forwarding).
template <Metric M>
RoutingTable compute_routing_table(const Graph& knowledge, NodeId self) {
  const DijkstraResult result = dijkstra<M>(knowledge, self);
  RoutingTable table;
  table.self = self;
  table.value = result.value;
  table.hops = result.hops;
  table.next_hop.assign(knowledge.node_count(), kInvalidNode);
  for (NodeId dest = 0; dest < knowledge.node_count(); ++dest) {
    if (dest == self || result.parent[dest] == kInvalidNode) continue;
    // Walk the parent chain back to the hop adjacent to self.
    NodeId hop = dest;
    while (result.parent[hop] != self) hop = result.parent[hop];
    table.next_hop[dest] = hop;
  }
  return table;
}

}  // namespace qolsr
