#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/node_id.hpp"

namespace qolsr {

/// Minimal directed graph with the same neighbors()/QoS interface as
/// `Graph`, so the generic Dijkstra runs on it unchanged. Used for the
/// ANS-chain routing model, where the usable out-edges of a node are its
/// *own* advertised neighbors (paper §I: "sends it to one of its MPRs
/// which will relay it to one of its MPRs and so on").
class DirectedGraph {
 public:
  DirectedGraph() = default;
  explicit DirectedGraph(std::size_t n) : out_(n) {}

  /// Adds the directed edge from→to; duplicate inserts are ignored.
  void add_edge(NodeId from, NodeId to, const LinkQos& qos) {
    auto& list = out_[from];
    auto it = std::lower_bound(
        list.begin(), list.end(), to,
        [](const Edge& lhs, NodeId id) { return lhs.to < id; });
    if (it != list.end() && it->to == to) return;
    list.insert(it, Edge{to, qos});
  }

  bool has_edge(NodeId from, NodeId to) const {
    const auto& list = out_[from];
    auto it = std::lower_bound(
        list.begin(), list.end(), to,
        [](const Edge& lhs, NodeId id) { return lhs.to < id; });
    return it != list.end() && it->to == to;
  }

  std::span<const Edge> neighbors(NodeId v) const { return out_[v]; }
  std::size_t node_count() const { return out_.size(); }

 private:
  std::vector<std::vector<Edge>> out_;
};

}  // namespace qolsr
