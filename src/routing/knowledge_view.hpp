#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/node_id.hpp"
#include "routing/advertised_topology.hpp"

namespace qolsr {

/// A node's knowledge graph as an overlay instead of a copy: the CSR
/// advertised base plus a per-hop patch holding the few rows the current
/// hop sees differently (its own incident links, or its merged HELLO
/// view). `neighbors(v)` answers from the patch when v was touched this
/// hop and from the base otherwise, so hop-by-hop forwarding never copies
/// a graph again — the seed path cloned the entire advertised `Graph`
/// once per traversed hop.
///
/// Patched rows are the sorted-by-neighbor union of the base row and the
/// added links, with the base record winning on a duplicate id — exactly
/// the `if (!has_edge) add_edge` semantics of the seed merge, so Dijkstra
/// scans the same records in the same order and forwarding results stay
/// bit-identical.
///
/// Per-hop usage: begin_hop(), any number of add_link(), finalize_hop(),
/// then hand the view to compute_next_hop. All row storage is pooled and
/// reused across hops and packets.
class KnowledgeView {
 public:
  /// Binds the advertised base for the coming hops and invalidates any
  /// patch. `base` must outlive this view.
  void reset(const CsrTopology& base) {
    base_ = &base;
    const std::size_t n = base.node_count();
    if (patch_of_.size() < n) patch_of_.resize(n);
    if (stamp_.size() < n) stamp_.resize(n, 0);
    bump_epoch();
  }

  /// Discards the previous hop's patch (O(1); row storage is kept).
  void begin_hop() {
    bump_epoch();
    rows_used_ = 0;
  }

  /// Records the directed link u→to as part of u's knowledge this hop.
  /// Ignored at finalize when the base already advertises u→to.
  void add_link(NodeId u, NodeId to, const LinkQos& qos) {
    PatchRow& row = row_of(u);
    row.extras.push_back({to, qos});
  }

  /// Merges every patched row with its base row. Must be called after the
  /// add_link calls of a hop and before neighbors().
  void finalize_hop() {
    for (std::size_t i = 0; i < rows_used_; ++i) {
      PatchRow& row = rows_[i];
      std::sort(row.extras.begin(), row.extras.end(),
                [](const Edge& a, const Edge& b) { return a.to < b.to; });
      const std::span<const Edge> base_row = base_->neighbors(row.node);
      row.merged.clear();
      auto extra = row.extras.begin();
      for (const Edge& e : base_row) {
        while (extra != row.extras.end() && extra->to < e.to)
          row.merged.push_back(*extra++);
        if (extra != row.extras.end() && extra->to == e.to)
          ++extra;  // base record wins (same seed-merge semantics)
        row.merged.push_back(e);
      }
      row.merged.insert(row.merged.end(), extra, row.extras.end());
    }
  }

  std::size_t node_count() const { return base_->node_count(); }

  std::span<const Edge> neighbors(NodeId v) const {
    if (stamp_[v] == epoch_) return rows_[patch_of_[v]].merged;
    return base_->neighbors(v);
  }

 private:
  struct PatchRow {
    NodeId node = kInvalidNode;
    std::vector<Edge> extras;
    std::vector<Edge> merged;
  };

  void bump_epoch() {
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  PatchRow& row_of(NodeId u) {
    if (stamp_[u] == epoch_) return rows_[patch_of_[u]];
    stamp_[u] = epoch_;
    patch_of_[u] = static_cast<std::uint32_t>(rows_used_);
    if (rows_used_ == rows_.size()) rows_.emplace_back();
    PatchRow& row = rows_[rows_used_++];
    row.node = u;
    row.extras.clear();
    return row;
  }

  const CsrTopology* base_ = nullptr;
  std::vector<PatchRow> rows_;  ///< pooled; rows_used_ live this hop
  std::size_t rows_used_ = 0;
  std::vector<std::uint32_t> patch_of_;  ///< node → live row index
  std::vector<std::uint32_t> stamp_;     ///< patch validity epoch
  std::uint32_t epoch_ = 0;
};

}  // namespace qolsr
