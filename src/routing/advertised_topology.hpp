#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/local_view.hpp"
#include "graph/node_id.hpp"

namespace qolsr {

/// Assembles the network-wide routable topology from every node's
/// advertised set: node u announces its ANS in TC messages, so the link
/// (u,w) becomes known to all nodes for every w ∈ ANS(u). Links are
/// bidirectional (paper §III-A), hence the union is kept undirected.
///
/// `ans_per_node[u]` is the advertised set of node u (global ids). The
/// result has the same node set as `full`; each advertised link carries its
/// QoS record from `full`.
Graph build_advertised_topology(
    const Graph& full, const std::vector<std::vector<NodeId>>& ans_per_node);

/// Adds every link of `view` that `base` is missing (u's private HELLO
/// knowledge on top of the TC-advertised topology). Used to build the
/// knowledge graph a node actually routes on.
void merge_local_view(Graph& base, const LocalView& view);

/// Average advertised-set size — the y-axis of the paper's Figs. 6 and 7.
double average_set_size(const std::vector<std::vector<NodeId>>& ans_per_node);

}  // namespace qolsr
