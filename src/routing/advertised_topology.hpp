#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/local_view.hpp"
#include "graph/node_id.hpp"

namespace qolsr {

/// Flat CSR adjacency with full QoS records — the allocation-free routable
/// form of an advertised topology. Rows are sorted by neighbor id and
/// deduplicated, so iteration order matches `Graph`'s sorted adjacency
/// lists exactly (forwarding results stay bit-identical to the
/// vector-of-vectors path) and membership probes stay binary searches.
///
/// One instance per worker thread, rebuilt in place per (run, selector) by
/// `AdvertisedTopologyBuilder`; rebuilding touches no heap once the arrays
/// have grown to the largest topology seen. Holds either an undirected
/// union (both directions of every advertised link) or a directed relay
/// base (the ANS-chain model) — direction is the builder's concern, the
/// storage is the same.
class CsrTopology {
 public:
  std::size_t node_count() const {
    return row_begin_.empty() ? 0 : row_begin_.size() - 1;
  }
  std::span<const Edge> neighbors(NodeId v) const {
    return {edges_.data() + row_begin_[v], row_begin_[v + 1] - row_begin_[v]};
  }
  /// Directed adjacency records held (an undirected union stores 2 per
  /// advertised link) — the advertised-state size the dynamics evaluation
  /// tracks across refreshes.
  std::size_t edge_count() const { return edges_.size(); }
  bool has_edge(NodeId from, NodeId to) const;
  /// QoS of the edge from→to, or nullptr when absent.
  const LinkQos* edge_qos(NodeId from, NodeId to) const;

 private:
  friend class AdvertisedTopologyBuilder;

  std::vector<std::uint32_t> row_begin_;
  std::vector<Edge> edges_;
};

/// Reusable constructor of `CsrTopology` views. Owns the pending-edge and
/// cursor scratch, so per-(run, selector) rebuilds are allocation-free in
/// steady state — the seed path rebuilt a vector-of-vectors `Graph` with an
/// O(degree) `has_edge` scan per advertised pair instead.
class AdvertisedTopologyBuilder {
 public:
  /// The network-wide advertised topology (see build_advertised_topology):
  /// the undirected union of {u,w} for every w ∈ ans_per_node[u], each link
  /// carrying its QoS record from `full`. Throws std::logic_error when an
  /// ANS member is not a 1-hop neighbor of its advertiser — same contract
  /// as the Graph-returning form.
  void build_advertised(const Graph& full,
                        const std::vector<std::vector<NodeId>>& ans_per_node,
                        CsrTopology& out);

  /// The directed relay base of the ANS-chain forwarding model
  /// (forwarding.hpp): x→w for every w ∈ ANS(x) with a live link in
  /// `full`, plus, for every advertised link into `destination`, the
  /// reverse final-hop edge. Dead advertised links are skipped silently —
  /// the chain model treats ANS state as gossip, not ground truth.
  void build_ans_chain(const Graph& full,
                       const std::vector<std::vector<NodeId>>& ans_per_node,
                       NodeId destination, CsrTopology& out);

 private:
  /// Sorts the pending (from, to) keys, deduplicates (both ends may
  /// advertise one link; the QoS record is the same either way), and emits
  /// the CSR rows with each edge's record fetched from `full`.
  void finish(const Graph& full, std::size_t node_count, CsrTopology& out);

  /// Directed edges as packed (from << 32 | to) keys; the 56-byte QoS
  /// payload is attached only after dedup.
  std::vector<std::uint64_t> pending_;
  std::vector<std::uint32_t> cursor_;  ///< per-row counts, then end offsets
  std::vector<NodeId> scratch_to_;     ///< row-bucketed neighbor ids
};

/// Assembles the network-wide routable topology from every node's
/// advertised set: node u announces its ANS in TC messages, so the link
/// (u,w) becomes known to all nodes for every w ∈ ANS(u). Links are
/// bidirectional (paper §III-A), hence the union is kept undirected.
///
/// `ans_per_node[u]` is the advertised set of node u (global ids). The
/// result has the same node set as `full`; each advertised link carries its
/// QoS record from `full`. Throws std::logic_error when an ANS member is
/// not a 1-hop neighbor of its advertiser — an ANS is selected from the
/// 1-hop neighborhood, so a non-neighbor member means the selector and the
/// topology disagree, which must not pass silently (the assert-only guard
/// this replaces dropped the link without a trace in release builds).
Graph build_advertised_topology(
    const Graph& full, const std::vector<std::vector<NodeId>>& ans_per_node);

/// Adds every link of `view` that `base` is missing (u's private HELLO
/// knowledge on top of the TC-advertised topology). Used to build the
/// knowledge graph a node actually routes on.
void merge_local_view(Graph& base, const LocalView& view);

/// Average advertised-set size — the y-axis of the paper's Figs. 6 and 7.
double average_set_size(const std::vector<std::vector<NodeId>>& ans_per_node);

}  // namespace qolsr
