#include "routing/advertised_topology.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace qolsr {

namespace {

[[noreturn]] void throw_non_neighbor(NodeId u, NodeId w) {
  throw std::logic_error(
      "build_advertised_topology: ANS member " + std::to_string(w) +
      " of node " + std::to_string(u) +
      " is not a 1-hop neighbor (selection and topology disagree)");
}

void check_sizes(const Graph& full,
                 const std::vector<std::vector<NodeId>>& ans_per_node) {
  if (ans_per_node.size() != full.node_count())
    throw std::logic_error(
        "build_advertised_topology: " + std::to_string(ans_per_node.size()) +
        " advertised sets for " + std::to_string(full.node_count()) +
        " nodes");
}

}  // namespace

bool CsrTopology::has_edge(NodeId from, NodeId to) const {
  return edge_qos(from, to) != nullptr;
}

const LinkQos* CsrTopology::edge_qos(NodeId from, NodeId to) const {
  const std::span<const Edge> row = neighbors(from);
  const auto it = std::lower_bound(
      row.begin(), row.end(), to,
      [](const Edge& lhs, NodeId id) { return lhs.to < id; });
  return it != row.end() && it->to == to ? &it->qos : nullptr;
}

namespace {

constexpr std::uint64_t pack(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

void AdvertisedTopologyBuilder::build_advertised(
    const Graph& full, const std::vector<std::vector<NodeId>>& ans_per_node,
    CsrTopology& out) {
  check_sizes(full, ans_per_node);
  pending_.clear();
  for (NodeId u = 0; u < full.node_count(); ++u) {
    for (NodeId w : ans_per_node[u]) {
      if (!full.has_edge(u, w)) throw_non_neighbor(u, w);
      pending_.push_back(pack(u, w));
      pending_.push_back(pack(w, u));
    }
  }
  finish(full, full.node_count(), out);
}

void AdvertisedTopologyBuilder::build_ans_chain(
    const Graph& full, const std::vector<std::vector<NodeId>>& ans_per_node,
    NodeId destination, CsrTopology& out) {
  check_sizes(full, ans_per_node);
  pending_.clear();
  for (NodeId x = 0; x < full.node_count(); ++x) {
    for (NodeId w : ans_per_node[x]) {
      if (!full.has_edge(x, w)) continue;
      pending_.push_back(pack(x, w));
      if (w == destination) continue;
      // The undirected advertised link {x,w} is known network-wide; if one
      // end is the destination, the other end can complete the delivery.
      if (x == destination) pending_.push_back(pack(w, x));
    }
  }
  finish(full, full.node_count(), out);
}

void AdvertisedTopologyBuilder::finish(const Graph& full,
                                       std::size_t node_count,
                                       CsrTopology& out) {
  // Counting sort by row, then an in-place sort of each (tiny) row: O(E)
  // scatter plus O(d log d) per node beats one global O(E log E) sort.
  const auto n = static_cast<std::uint32_t>(node_count);
  cursor_.assign(n + 1, 0);
  for (const std::uint64_t key : pending_) ++cursor_[(key >> 32) + 1];
  for (std::uint32_t v = 0; v < n; ++v) cursor_[v + 1] += cursor_[v];
  scratch_to_.resize(pending_.size());
  for (const std::uint64_t key : pending_)
    scratch_to_[cursor_[key >> 32]++] = static_cast<NodeId>(key);
  // cursor_[v] is now the *end* of row v (rows shifted one slot left).

  out.row_begin_.resize(n + 1);
  out.edges_.clear();
  std::uint32_t begin = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    out.row_begin_[v] = static_cast<std::uint32_t>(out.edges_.size());
    const std::uint32_t end = cursor_[v];
    std::sort(scratch_to_.begin() + begin, scratch_to_.begin() + end);
    NodeId previous = kInvalidNode;
    for (std::uint32_t i = begin; i < end; ++i) {
      const NodeId to = scratch_to_[i];
      if (to == previous) continue;  // advertised by both ends
      previous = to;
      out.edges_.push_back({to, *full.edge_qos(v, to)});
    }
    begin = end;
  }
  out.row_begin_[n] = static_cast<std::uint32_t>(out.edges_.size());
}

Graph build_advertised_topology(
    const Graph& full, const std::vector<std::vector<NodeId>>& ans_per_node) {
  check_sizes(full, ans_per_node);
  Graph advertised(full.node_count());
  for (NodeId u = 0; u < full.node_count(); ++u) {
    advertised.set_position(u, full.position(u));
    for (NodeId w : ans_per_node[u]) {
      if (advertised.has_edge(u, w)) continue;  // already advertised by w
      const LinkQos* qos = full.edge_qos(u, w);
      if (qos == nullptr) throw_non_neighbor(u, w);
      advertised.add_edge(u, w, *qos);
    }
  }
  return advertised;
}

void merge_local_view(Graph& base, const LocalView& view) {
  for (std::uint32_t a = 0; a < view.size(); ++a) {
    const NodeId ga = view.global_id(a);
    for (const LocalView::LocalEdge& e : view.neighbors(a)) {
      if (e.to <= a) continue;  // each undirected link once
      const NodeId gb = view.global_id(e.to);
      if (!base.has_edge(ga, gb)) base.add_edge(ga, gb, e.qos);
    }
  }
}

double average_set_size(
    const std::vector<std::vector<NodeId>>& ans_per_node) {
  if (ans_per_node.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& set : ans_per_node) total += set.size();
  return static_cast<double>(total) /
         static_cast<double>(ans_per_node.size());
}

}  // namespace qolsr
