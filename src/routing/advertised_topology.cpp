#include "routing/advertised_topology.hpp"

#include <cassert>

namespace qolsr {

Graph build_advertised_topology(
    const Graph& full, const std::vector<std::vector<NodeId>>& ans_per_node) {
  assert(ans_per_node.size() == full.node_count());
  Graph advertised(full.node_count());
  for (NodeId u = 0; u < full.node_count(); ++u) {
    advertised.set_position(u, full.position(u));
    for (NodeId w : ans_per_node[u]) {
      if (advertised.has_edge(u, w)) continue;  // already advertised by w
      const LinkQos* qos = full.edge_qos(u, w);
      assert(qos != nullptr && "ANS member must be a 1-hop neighbor");
      if (qos != nullptr) advertised.add_edge(u, w, *qos);
    }
  }
  return advertised;
}

void merge_local_view(Graph& base, const LocalView& view) {
  for (std::uint32_t a = 0; a < view.size(); ++a) {
    const NodeId ga = view.global_id(a);
    for (const LocalView::LocalEdge& e : view.neighbors(a)) {
      if (e.to <= a) continue;  // each undirected link once
      const NodeId gb = view.global_id(e.to);
      if (!base.has_edge(ga, gb)) base.add_edge(ga, gb, e.qos);
    }
  }
}

double average_set_size(
    const std::vector<std::vector<NodeId>>& ans_per_node) {
  if (ans_per_node.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& set : ans_per_node) total += set.size();
  return static_cast<double>(total) /
         static_cast<double>(ans_per_node.size());
}

}  // namespace qolsr
