#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace qolsr {

void EventQueue::schedule_at(SimTime time, Callback callback) {
  assert(time >= now_ && "cannot schedule into the past");
  events_.push({time, next_sequence_++, std::move(callback)});
}

void EventQueue::run_until(SimTime horizon) {
  while (!events_.empty() && events_.top().time <= horizon) {
    // priority_queue::top is const; move out via const_cast is UB-adjacent,
    // so copy the callback handle instead (shared ownership is cheap).
    Event event{events_.top().time, events_.top().sequence,
                events_.top().callback};
    events_.pop();
    now_ = event.time;
    ++processed_;
    event.callback();
  }
  now_ = horizon;
}

}  // namespace qolsr
