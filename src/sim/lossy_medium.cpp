#include "sim/lossy_medium.hpp"

#include "proto/messages.hpp"
#include "sim/simulator.hpp"

namespace qolsr {

namespace {
/// Domain-separates the loss stream from the node RNGs and the fault
/// (victim-drawing) stream, all of which derive from the same run seed.
constexpr std::uint64_t kLossStreamSalt = 0xa5a5a5a5a5a5a5a5ULL;
/// The wire-corruption stream: its own domain, so turning corruption on
/// never perturbs the loss draws (and vice versa).
constexpr std::uint64_t kCorruptStreamSalt = 0x6a09e667f3bcc909ULL;
}  // namespace

void LossyMedium::reset(const FaultPlan* plan, std::uint64_t seed,
                        double corrupt_rate) {
  plan_ = plan;
  rng_ = util::Rng(seed ^ kLossStreamSalt);
  corrupt_rng_ = util::Rng(seed ^ kCorruptStreamSalt);
  corrupt_rate_ = corrupt_rate;
  node_down_.assign(node_count(), 0);
  down_nodes_ = 0;
  down_links_.clear();
  link_loss_.clear();
  partitions_ = 0;
  ambient_loss_ = false;
  if (plan_ != nullptr) {
    ambient_loss_ = plan_->loss_rate > 0.0;
    for (const LinkLossSpec& l : plan_->link_loss) {
      link_loss_[link_key(l.u, l.v)] = l.rate;
      ambient_loss_ = ambient_loss_ || l.rate > 0.0;
    }
  }
}

void LossyMedium::set_link_down(NodeId u, NodeId v, bool down) {
  if (down) {
    down_links_.insert(link_key(u, v));
  } else {
    down_links_.erase(link_key(u, v));
  }
}

void LossyMedium::set_node_down(NodeId id, bool down) {
  if (id >= node_down_.size()) node_down_.resize(id + 1, 0);
  if (node_down_[id] == static_cast<char>(down ? 1 : 0)) return;
  node_down_[id] = down ? 1 : 0;
  down_nodes_ += down ? 1 : -1;
}

bool LossyMedium::blocked(NodeId from, NodeId to) const {
  if (node_down(from) || node_down(to)) return true;
  if (!down_links_.empty() && link_down(from, to)) return true;
  if (partitions_ > 0) {
    const NodeId half = static_cast<NodeId>(node_count() / 2);
    if ((from < half) != (to < half)) return true;
  }
  return false;
}

bool LossyMedium::lost(NodeId from, NodeId to) {
  if (!ambient_loss_) return false;
  double rate = plan_ != nullptr ? plan_->loss_rate : 0.0;
  if (!link_loss_.empty()) {
    const auto it = link_loss_.find(link_key(from, to));
    if (it != link_loss_.end()) rate = it->second;
  }
  if (rate <= 0.0) return false;
  return rate >= 1.0 || rng_.uniform01() < rate;
}

SharedBytes LossyMedium::maybe_corrupt(const SharedBytes& bytes) {
  if (bytes->empty() || corrupt_rng_.uniform01() >= corrupt_rate_)
    return bytes;
  // The shared buffer may still be in flight to other receivers — corrupt
  // a private copy, never the original.
  std::vector<std::byte> flipped(*bytes);
  const std::size_t bit_count = flipped.size() * 8;
  const std::uint64_t flips = 1 + corrupt_rng_.uniform_int(3);
  for (std::uint64_t f = 0; f < flips; ++f) {
    const std::uint64_t bit = corrupt_rng_.uniform_int(bit_count);
    flipped[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  }
  trace_->frames_corrupted += 1;
  if (is_data_frame(*bytes)) {
    // Charge the journey from the pre-flip payload id (the flip may have
    // landed in that very field). Only read when the probe never arrives.
    const auto it = trace_->journeys.find(peek_data_payload_id(*bytes));
    if (it != trace_->journeys.end() &&
        it->second.drop == TraceStats::Journey::Drop::kNone)
      it->second.drop = TraceStats::Journey::Drop::kMalformed;
  }
  return make_shared_bytes(std::move(flipped));
}

SimTime LossyMedium::now() const { return sim_->queue().now(); }

void LossyMedium::schedule_in(SimTime delay, std::function<void()> callback) {
  sim_->queue().schedule_in(delay, std::move(callback));
}

const LinkQos* LossyMedium::measured_qos(NodeId a, NodeId b) const {
  // Link-quality *measurement* is outside the paper's scope (the ideal-MAC
  // assumption): nodes read the true value even on a lossy link. Loss
  // degrades what they learn by dropping the frames that carry it.
  return sim_->network().edge_qos(a, b);
}

std::size_t LossyMedium::node_count() const {
  return sim_->network().node_count();
}

void LossyMedium::broadcast(NodeId from, SharedBytes bytes) {
  // The fan-out iterates ground-truth neighbors in sorted order whether or
  // not faults are active, so the gate draws (and the event sequence) are
  // deterministic — and with no fault source active the loop is exactly
  // the ideal medium's.
  const bool clean = !impaired();
  scratch_receivers_.clear();
  for (const Edge& e : sim_->network().neighbors(from)) {
    if (!clean) {
      if (blocked(from, e.to)) {
        trace_->frames_blocked += 1;
        continue;
      }
      if (lost(from, e.to)) {
        trace_->frames_lost += 1;
        continue;
      }
    }
    scratch_receivers_.push_back(e.to);
  }
  if (corrupt_rate_ > 0.0) {
    // Each leg draws its own corruption gate, and a corrupted leg carries
    // its own flipped copy — those must be delivered individually. The
    // untouched majority still shares the batched fan-out (same delivery
    // timestamp), so a small corrupt rate keeps near-fast-path event cost
    // instead of reverting every broadcast to one event per neighbor.
    scratch_clean_.clear();
    for (const NodeId to : scratch_receivers_) {
      SharedBytes leg = maybe_corrupt(bytes);
      if (leg == bytes && !sim_->contention_active()) {
        scratch_clean_.push_back(to);
      } else {
        sim_->deliver(from, to, std::move(leg));
      }
    }
    if (!scratch_clean_.empty())
      sim_->deliver_fanout(from, scratch_clean_, std::move(bytes));
    return;
  }
  if (sim_->contention_active()) {
    // Per-leg delivery: each leg pays its own queueing delay (or drop).
    for (const NodeId to : scratch_receivers_) sim_->deliver(from, to, bytes);
  } else {
    // All surviving legs share one delivery time, so the whole fan-out is
    // batched into a single event — equivalent ordering (the per-leg
    // events would hold contiguous sequence numbers at the same time) at
    // a fraction of the scheduling cost.
    sim_->deliver_fanout(from, scratch_receivers_, std::move(bytes));
  }
}

void LossyMedium::unicast(NodeId from, NodeId to, SharedBytes bytes) {
  if (!sim_->network().has_edge(from, to)) return;  // out of range: lost
  if (impaired()) {
    if (blocked(from, to)) {
      trace_->frames_blocked += 1;
      return;
    }
    if (lost(from, to)) {
      trace_->frames_lost += 1;
      return;
    }
  }
  if (corrupt_rate_ > 0.0) bytes = maybe_corrupt(bytes);
  sim_->deliver(from, to, std::move(bytes));
}

}  // namespace qolsr
