#include "sim/simulator.hpp"

#include <algorithm>

#include "util/digest.hpp"

namespace qolsr {

Simulator::Simulator(Graph graph, const AnsSelector& flooding_selector,
                     const AnsSelector& ans_selector,
                     OlsrNode::RouteFn route_fn, SimConfig config)
    : config_(config) {
  reset(std::move(graph), flooding_selector, ans_selector,
        std::move(route_fn), config.seed);
}

void Simulator::reset(Graph graph, const AnsSelector& flooding_selector,
                      const AnsSelector& ans_selector,
                      OlsrNode::RouteFn route_fn, std::uint64_t seed) {
  // The queued callbacks capture node pointers from the previous run; drop
  // them before touching the node vector.
  queue_.reset();
  graph_ = std::move(graph);
  config_.seed = seed;
  trace_ = TraceStats{};
  trace_at_convergence_ = TraceStats{};
  route_fn_ = std::move(route_fn);

  const std::size_t n = graph_.node_count();
  if (nodes_.size() > n) nodes_.resize(n);
  for (std::size_t id = 0; id < nodes_.size(); ++id)
    nodes_[id]->reset(flooding_selector, ans_selector, route_fn_,
                      config_.node, seed);
  nodes_.reserve(n);
  while (nodes_.size() < n)
    nodes_.push_back(std::make_unique<OlsrNode>(
        static_cast<NodeId>(nodes_.size()), *this, trace_, flooding_selector,
        ans_selector, route_fn_, config_.node, seed));
  for (auto& node : nodes_) node->start();
}

ConvergenceReport Simulator::run_to_convergence() {
  const double step = config_.derived_convergence_step();
  const double dwell = config_.derived_convergence_dwell();
  const double cap = config_.derived_max_sim_time();

  ConvergenceReport report;
  std::uint64_t digest = state_digest();
  report.converged_at = now();
  trace_at_convergence_ = trace_;
  while (now() < cap) {
    run_until(std::min(now() + step, cap));
    const std::uint64_t next = state_digest();
    if (next != digest) {
      digest = next;
      report.converged_at = now();
      trace_at_convergence_ = trace_;
    } else if (now() - report.converged_at >= dwell) {
      break;
    }
  }
  report.end_time = now();
  report.converged = report.end_time - report.converged_at >= dwell;
  return report;
}

std::uint64_t Simulator::state_digest() const {
  std::uint64_t h = util::kDigestSeed;
  for (const auto& node : nodes_) h = node->state_digest(h);
  return h;
}

void Simulator::broadcast(NodeId from, SharedBytes bytes) {
  // Ideal MAC: every in-range node receives the same intact buffer after
  // the propagation delay — one immutable allocation shared across the
  // whole fan-out, never a per-neighbor copy.
  for (const Edge& e : graph_.neighbors(from)) {
    const NodeId to = e.to;
    queue_.schedule_in(config_.propagation_delay, [this, from, to, bytes] {
      nodes_[to]->on_receive(from, *bytes);
    });
  }
}

void Simulator::unicast(NodeId from, NodeId to, SharedBytes bytes) {
  if (!graph_.has_edge(from, to)) return;  // next hop out of range: lost
  queue_.schedule_in(config_.propagation_delay,
                     [this, from, to, bytes = std::move(bytes)] {
                       nodes_[to]->on_receive(from, *bytes);
                     });
}

}  // namespace qolsr
