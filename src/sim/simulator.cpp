#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "util/digest.hpp"

namespace qolsr {

namespace {
/// Domain-separates the incident-victim stream from the node RNGs and the
/// LossyMedium's loss stream (all derive from the same run seed).
constexpr std::uint64_t kFaultStreamSalt = 0xc2b2ae3d27d4eb4fULL;
/// The adversary roster draw: its own stream, touched only when an
/// AdversarySpec is active — an honest run draws nothing from it.
constexpr std::uint64_t kAdversaryStreamSalt = 0xbb67ae8584caa73bULL;
}  // namespace

Simulator::Simulator(const Graph& graph, const AnsSelector& flooding_selector,
                     const AnsSelector& ans_selector,
                     OlsrNode::RouteFn route_fn, SimConfig config,
                     const FaultPlan* faults, const AdversarySpec* adversaries)
    : config_(config), lossy_(*this, trace_), contended_(*this, trace_) {
  reset(graph, flooding_selector, ans_selector, std::move(route_fn),
        config.seed, faults, nullptr, adversaries);
}

void Simulator::reset(const Graph& graph,
                      const AnsSelector& flooding_selector,
                      const AnsSelector& ans_selector,
                      OlsrNode::RouteFn route_fn, std::uint64_t seed,
                      const FaultPlan* faults, const TrafficSpec* traffic,
                      const AdversarySpec* adversaries) {
  // The queued callbacks capture node pointers from the previous run; drop
  // them before touching the node vector.
  queue_.reset();
  graph_ = &graph;
  config_.seed = seed;
  trace_ = TraceStats{};
  trace_at_convergence_ = TraceStats{};
  mutations_.bind(&trace_);
  mutations_.reset(0.0);
  const bool adversarial = adversaries != nullptr && adversaries->active();
  lossy_.reset(faults, seed, adversarial ? adversaries->corrupt_rate : 0.0);
  contended_.reset(traffic);
  fault_rng_ = util::Rng(seed ^ kFaultStreamSalt);
  monitor_.reset();
  adversary_ids_.clear();
  route_fn_ = std::move(route_fn);

  const std::size_t n = graph.node_count();
  if (nodes_.size() > n) nodes_.resize(n);
  for (std::size_t id = 0; id < nodes_.size(); ++id)
    nodes_[id]->reset(flooding_selector, ans_selector, route_fn_,
                      config_.node, seed);
  nodes_.reserve(n);
  while (nodes_.size() < n)
    nodes_.push_back(std::make_unique<OlsrNode>(
        static_cast<NodeId>(nodes_.size()), lossy_, trace_, flooding_selector,
        ans_selector, route_fn_, config_.node, seed));
  for (auto& node : nodes_) node->set_mutation_clock(&mutations_);

  if (adversarial) {
    // Roster draw from a dedicated salted stream: replayable from the run
    // seed alone, identical for every protocol of the run and for every
    // thread count, and invisible to the honest RNG domains.
    std::vector<NodeId> roster = adversaries->nodes;
    const std::size_t want = adversaries->roster_size(n);
    if (roster.empty() && want > 0) {
      util::Rng roster_rng(seed ^ kAdversaryStreamSalt);
      std::vector<NodeId> pool(n);
      for (NodeId id = 0; id < n; ++id) pool[id] = id;
      // Partial Fisher–Yates: distinct victims, one draw per victim.
      for (std::size_t i = 0; i < want; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(roster_rng.uniform_int(n - i));
        std::swap(pool[i], pool[j]);
        roster.push_back(pool[i]);
      }
    }
    for (std::size_t i = 0; i < roster.size(); ++i) {
      if (roster[i] >= n) continue;
      nodes_[roster[i]]->set_role(
          adversaries->kinds.empty()
              ? AdversaryKind::kHonest
              : adversaries->kinds[i % adversaries->kinds.size()],
          seed);
      adversary_ids_.push_back(roster[i]);
    }
    std::sort(adversary_ids_.begin(), adversary_ids_.end());
    for (auto& node : nodes_) node->set_monitor(&monitor_);
  }

  for (auto& node : nodes_) node->start();
}

ConvergenceReport Simulator::run_to_convergence() {
  const double dwell = config_.derived_convergence_dwell();
  // The cap is a *budget from now*, not an absolute clock value: a second
  // call — measuring re-convergence after an injected fault — gets the
  // same observation window as the first.
  const double deadline = now() + config_.derived_max_sim_time();

  // Anchor the clock at this call: a window that observes no further
  // mutation converged *when asked*, never at a change that predates it
  // (timed re-convergence after a no-op incident must be 0, not negative).
  if (mutations_.last_at() < now()) mutations_.rebase(now());

  // Event-driven quiescence: chase `last mutation + dwell`. Every chunk
  // either reaches the current settle point (no mutation happened inside
  // it — the network is quiescent) or a node moved the goalpost while it
  // ran; no digest polling, no sampling grid.
  while (now() < deadline) {
    const double settled_at = mutations_.last_at() + dwell;
    if (now() >= settled_at) break;
    run_until(std::min(settled_at, deadline));
  }

  ConvergenceReport report;
  report.converged_at = mutations_.last_at();
  report.end_time = now();
  // Same float expression the loop chased (converged_at + dwell), so the
  // quiescent exit always classifies as converged.
  report.converged = report.end_time >= report.converged_at + dwell;
  copy_counters(trace_at_convergence_, mutations_.counters_at_last());
  return report;
}

std::uint64_t Simulator::state_digest() const {
  std::uint64_t h = util::kDigestSeed;
  for (const auto& node : nodes_) h = node->state_digest(h);
  return h;
}

bool Simulator::fail_link(NodeId u, NodeId v) {
  if (graph_ == nullptr || !graph_->has_edge(u, v) || lossy_.link_down(u, v))
    return false;
  lossy_.set_link_down(u, v, true);
  return true;
}

void Simulator::inject(const FaultIncident& incident) {
  switch (incident.kind) {
    case FaultIncident::Kind::kNodeCrash: {
      std::vector<NodeId> victims;
      if (incident.node != kInvalidNode) {
        if (incident.node < nodes_.size()) victims.push_back(incident.node);
      } else {
        // Partial Fisher–Yates over the currently-alive nodes: distinct
        // victims, bounded work, one RNG draw per victim.
        std::vector<NodeId> alive;
        for (NodeId u = 0; u < nodes_.size(); ++u)
          if (!lossy_.node_down(u)) alive.push_back(u);
        const std::size_t want = std::min(incident.count, alive.size());
        for (std::size_t i = 0; i < want; ++i) {
          const std::size_t j =
              i + static_cast<std::size_t>(
                      fault_rng_.uniform_int(alive.size() - i));
          std::swap(alive[i], alive[j]);
          victims.push_back(alive[i]);
        }
      }
      for (NodeId v : victims) {
        lossy_.set_node_down(v, true);
        nodes_[v]->crash();
      }
      if (incident.duration > 0.0 && !victims.empty())
        queue_.schedule_in(incident.duration, [this, victims] {
          for (NodeId v : victims) {
            lossy_.set_node_down(v, false);
            nodes_[v]->restart();
          }
        });
      break;
    }
    case FaultIncident::Kind::kLinkFlap: {
      std::vector<std::pair<NodeId, NodeId>> victims;
      if (incident.link_u != kInvalidNode && incident.link_v != kInvalidNode) {
        if (graph_->has_edge(incident.link_u, incident.link_v) &&
            !lossy_.link_down(incident.link_u, incident.link_v))
          victims.emplace_back(incident.link_u, incident.link_v);
      } else {
        std::vector<std::pair<NodeId, NodeId>> up;
        for (NodeId u = 0; u < graph_->node_count(); ++u)
          for (const Edge& e : graph_->neighbors(u))
            if (u < e.to && !lossy_.link_down(u, e.to))
              up.emplace_back(u, e.to);
        const std::size_t want = std::min(incident.count, up.size());
        for (std::size_t i = 0; i < want; ++i) {
          const std::size_t j =
              i + static_cast<std::size_t>(
                      fault_rng_.uniform_int(up.size() - i));
          std::swap(up[i], up[j]);
          victims.push_back(up[i]);
        }
      }
      for (const auto& [u, v] : victims) lossy_.set_link_down(u, v, true);
      if (incident.duration > 0.0 && !victims.empty())
        queue_.schedule_in(incident.duration, [this, victims] {
          for (const auto& [u, v] : victims) lossy_.set_link_down(u, v, false);
        });
      break;
    }
    case FaultIncident::Kind::kPartition: {
      lossy_.add_partition(1);
      if (incident.duration > 0.0)
        queue_.schedule_in(incident.duration,
                           [this] { lossy_.add_partition(-1); });
      break;
    }
  }
}

void Simulator::deliver(NodeId from, NodeId to, SharedBytes bytes) {
  // Ideal MAC: the receiver gets the same intact buffer after the
  // propagation delay — one immutable allocation shared across a whole
  // broadcast fan-out, never a per-neighbor copy.
  double delay = config_.propagation_delay;
  if (contended_.active()) {
    const double queued = contended_.admit(from, to, *bytes, now());
    if (queued < 0.0) return;  // tail-dropped at the link queue
    delay += queued;
  }
  queue_.schedule_in(delay, [this, from, to, bytes = std::move(bytes)] {
    nodes_[to]->on_receive(from, *bytes);
  });
}

void Simulator::deliver_fanout(NodeId from,
                               const std::vector<NodeId>& receivers,
                               SharedBytes bytes) {
  if (receivers.empty()) return;
  queue_.schedule_in(config_.propagation_delay,
                     [this, from, receivers, bytes = std::move(bytes)] {
                       for (const NodeId to : receivers)
                         nodes_[to]->on_receive(from, *bytes);
                     });
}

}  // namespace qolsr
