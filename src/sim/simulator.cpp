#include "sim/simulator.hpp"

namespace qolsr {

Simulator::Simulator(Graph graph, const AnsSelector& flooding_selector,
                     const AnsSelector& ans_selector,
                     OlsrNode::RouteFn route_fn, SimConfig config)
    : graph_(std::move(graph)), config_(config) {
  nodes_.reserve(graph_.node_count());
  for (NodeId id = 0; id < graph_.node_count(); ++id) {
    nodes_.push_back(std::make_unique<OlsrNode>(
        id, *this, trace_, flooding_selector, ans_selector, route_fn,
        config_.node, config_.seed));
    nodes_.back()->start();
  }
}

void Simulator::broadcast(NodeId from, std::vector<std::byte> bytes) {
  // Ideal MAC: every in-range node receives an intact copy after the
  // propagation delay. The payload is shared (shared_ptr) so a broadcast
  // to 35 neighbors doesn't copy the packet 35 times.
  auto shared = std::make_shared<std::vector<std::byte>>(std::move(bytes));
  for (const Edge& e : graph_.neighbors(from)) {
    const NodeId to = e.to;
    queue_.schedule_in(config_.propagation_delay, [this, from, to, shared] {
      nodes_[to]->on_receive(from, *shared);
    });
  }
}

void Simulator::unicast(NodeId from, NodeId to, std::vector<std::byte> bytes) {
  if (!graph_.has_edge(from, to)) return;  // next hop out of range: lost
  auto shared = std::make_shared<std::vector<std::byte>>(std::move(bytes));
  queue_.schedule_in(config_.propagation_delay, [this, from, to, shared] {
    nodes_[to]->on_receive(from, *shared);
  });
}

}  // namespace qolsr
