#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace qolsr {

using SimTime = double;

/// Deterministic discrete-event core. Events at equal times fire in
/// scheduling order (a monotone sequence number breaks ties), so a seeded
/// simulation replays identically.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  void schedule_at(SimTime time, Callback callback);
  void schedule_in(SimTime delay, Callback callback) {
    schedule_at(now_ + delay, std::move(callback));
  }

  /// Runs events until the queue empties or the horizon is reached. The
  /// clock ends at `horizon` even if the queue drained earlier.
  void run_until(SimTime horizon);

  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }
  std::uint64_t processed() const { return processed_; }

  /// Drops every pending event and rewinds the clock to 0 — the batch-run
  /// reset. Discarding the queued callbacks (which capture the previous
  /// run's nodes) before those nodes are reset is what makes per-run reuse
  /// of a Simulator safe.
  void reset() {
    events_ = {};
    now_ = 0.0;
    next_sequence_ = 0;
    processed_ = 0;
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t sequence;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace qolsr
