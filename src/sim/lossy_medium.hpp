#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/fault_plan.hpp"
#include "sim/medium.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace qolsr {

class Simulator;

/// The fault layer of the packet backend: a Medium decorator between the
/// protocol nodes and the Simulator's ideal delivery core. Every frame —
/// broadcast fan-out leg or unicast — passes three gates before it is
/// scheduled for delivery:
///
///   1. up/down overlay: frames from or to a crashed node, over a downed
///      link (flap incidents, Simulator::fail_link), or across an active
///      partition boundary are suppressed (trace.frames_blocked);
///   2. Bernoulli loss: the frame is dropped with the link's loss rate
///      (FaultPlan per-link override, else the global rate), drawn from a
///      dedicated RNG seeded per run (trace.frames_lost);
///   3. otherwise it is handed to Simulator::deliver unchanged.
///
/// The overlay never mutates the ground-truth Graph — that is what lets
/// the Simulator borrow it const — and when no fault source is active the
/// decorator is contractually invisible: gate checks reduce to one flag
/// test, no random numbers are drawn, and event order is byte-identical
/// to the pre-fault-engine medium.
class LossyMedium final : public Medium {
 public:
  explicit LossyMedium(Simulator& sim, TraceStats& trace)
      : sim_(&sim), trace_(&trace) {}

  /// Per-run (re)configuration: binds the plan (nullptr = fault-free),
  /// reseeds the loss and corruption RNGs, and clears all overlay state.
  /// The plan is borrowed and must stay alive until the next reset.
  /// `corrupt_rate` is the adversary engine's wire-corruption probability
  /// per delivered frame (0 = the gate is contractually invisible: no
  /// draws, fan-out batching preserved).
  void reset(const FaultPlan* plan, std::uint64_t seed,
             double corrupt_rate = 0.0);

  // ---- overlay state (driven by Simulator::inject / fail_link) ----------
  void set_link_down(NodeId u, NodeId v, bool down);
  bool link_down(NodeId u, NodeId v) const {
    return down_links_.count(link_key(u, v)) != 0;
  }
  void set_node_down(NodeId id, bool down);
  bool node_down(NodeId id) const {
    return id < node_down_.size() && node_down_[id] != 0;
  }
  /// Partitions nest: each active partition blocks frames between the two
  /// id-halves of the network (u < n/2 vs. the rest).
  void add_partition(int delta) { partitions_ += delta; }
  bool partitioned() const { return partitions_ > 0; }

  /// Any reason left for a frame not to be delivered verbatim?
  bool impaired() const {
    return ambient_loss_ || !down_links_.empty() || down_nodes_ > 0 ||
           partitions_ > 0;
  }

  // ---- Medium (what the protocol nodes see) -----------------------------
  SimTime now() const override;
  void schedule_in(SimTime delay, std::function<void()> callback) override;
  void broadcast(NodeId from, SharedBytes bytes) override;
  void unicast(NodeId from, NodeId to, SharedBytes bytes) override;
  const LinkQos* measured_qos(NodeId a, NodeId b) const override;
  std::size_t node_count() const override;

 private:
  static std::uint64_t link_key(NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }
  bool blocked(NodeId from, NodeId to) const;
  /// Draws the Bernoulli loss gate for one delivery. Zero-rate links draw
  /// nothing, so overlay-only faults (fail_link, crash) stay RNG-silent.
  bool lost(NodeId from, NodeId to);
  /// Draws the wire-corruption gate for one surviving delivery: with
  /// probability `corrupt_rate_` returns a copy of the frame with 1-3
  /// seeded bit flips (the receiver still gets it — its hardened parser
  /// decides the fate), else the shared buffer unchanged. Data frames are
  /// fate-marked kMalformed from the *pre-flip* payload id, so a corrupted
  /// probe that dies is charged to corruption, not the medium.
  SharedBytes maybe_corrupt(const SharedBytes& bytes);

  Simulator* sim_;
  TraceStats* trace_;
  const FaultPlan* plan_ = nullptr;
  util::Rng rng_{1};
  util::Rng corrupt_rng_{1};
  double corrupt_rate_ = 0.0;
  bool ambient_loss_ = false;  ///< plan has a nonzero loss source
  std::vector<char> node_down_;
  std::size_t down_nodes_ = 0;
  std::unordered_set<std::uint64_t> down_links_;
  std::unordered_map<std::uint64_t, double> link_loss_;
  int partitions_ = 0;
  /// Surviving broadcast receivers, reused across calls (fan-out batching
  /// hands one receiver list to Simulator::deliver_fanout instead of
  /// scheduling one event per leg).
  std::vector<NodeId> scratch_receivers_;
  /// Uncorrupted subset of a corrupt-gated fan-out (same reuse rationale).
  std::vector<NodeId> scratch_clean_;
};

}  // namespace qolsr
