#include "sim/invariants.hpp"

#include "graph/graph.hpp"
#include "proto/topology_base.hpp"
#include "sim/simulator.hpp"

namespace qolsr {

void InvariantMonitor::record_tc_emission(NodeId originator,
                                          std::uint16_t ansn, SimTime now) {
  auto [it, inserted] = last_ansn_.try_emplace(originator, ansn);
  if (inserted) return;
  if (ansn_newer(ansn, it->second)) {
    it->second = ansn;  // honest advance (wrap-aware)
  } else if (ansn != it->second) {
    ++counters_.ansn_regressions;  // went backwards: a replayed TC
    mark(now);
  }
}

void audit_topology(InvariantMonitor& monitor, const Simulator& sim,
                    const Graph& truth) {
  for (NodeId holder = 0; holder < sim.node_count(); ++holder) {
    bool poisoned = false;
    sim.node(holder).topology().for_each_advert(
        [&](NodeId originator, const LinkAdvert& advert) {
          if (originator >= truth.node_count() ||
              advert.neighbor >= truth.node_count() ||
              !truth.has_edge(originator, advert.neighbor)) {
            monitor.record_phantom_link();
            poisoned = true;
            return;
          }
          const LinkQos* real = truth.edge_qos(originator, advert.neighbor);
          if (real != nullptr && advert.qos.bandwidth > real->bandwidth) {
            monitor.record_inflated_qos();
            poisoned = true;
          }
        });
    if (poisoned) monitor.record_poisoned_node();
  }
}

}  // namespace qolsr
