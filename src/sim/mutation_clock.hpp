#pragma once

#include <cstdint>

#include "sim/trace.hpp"

namespace qolsr {

/// Event-driven quiescence clock: every node reports each digest-visible
/// protocol state change (TC content accepted, neighbor entry appeared /
/// lapsed, selection output changed, soft-state purge, crash/restart) the
/// instant it happens, so the convergence detector waits on "no mutation
/// for a dwell window" directly instead of polling a whole-network digest
/// on a sampling grid — and `last_at` is the *exact* timestamp of the
/// final state-changing event, not that timestamp rounded up to the grid.
///
/// The contract mirrors the digest it replaces (see OlsrNode::state_digest):
/// a mutation is noted iff the digest fold would differ — pure timer
/// refreshes (an identical TC renewing its hold time, a HELLO renewing a
/// link) are not mutations, so periodic keepalives cannot postpone
/// convergence, exactly as they could not change the sampled digest.
///
/// The clock also snapshots the run's scalar trace counters at every
/// mutation, giving the simulator "counters as of converged_at" for free —
/// previously approximated by the counters at the sampling instant that
/// first observed the change (up to one HELLO interval of extra traffic).
class MutationClock {
 public:
  /// Points the per-mutation counter snapshot at the live trace.
  void bind(const TraceStats* live) { live_ = live; }

  /// Per-run rewind: no mutations yet, "last change" anchored at `now`.
  void reset(double now) {
    count_ = 0;
    last_at_ = now;
    snap();
  }

  /// One digest-visible state change at simulation time `now`.
  void note(double now) {
    ++count_;
    last_at_ = now;
    snap();
  }

  /// Re-anchors `last_at` (without counting a mutation) — used by a
  /// convergence call starting after the last recorded change, so a
  /// measurement window never reports a convergence instant that predates
  /// the window (e.g. re-convergence after a no-op incident is 0, not
  /// negative).
  void rebase(double now) {
    last_at_ = now;
    snap();
  }

  /// Total mutations since reset (monotonic within a run).
  std::uint64_t count() const { return count_; }
  /// Exact timestamp of the most recent mutation (or anchor).
  double last_at() const { return last_at_; }
  /// Scalar trace counters as of `last_at` (journeys always empty).
  const TraceStats& counters_at_last() const { return snapshot_; }

 private:
  void snap() {
    if (live_ != nullptr) copy_counters(snapshot_, *live_);
  }

  const TraceStats* live_ = nullptr;
  std::uint64_t count_ = 0;
  double last_at_ = 0.0;
  TraceStats snapshot_;
};

}  // namespace qolsr
