#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "graph/node_id.hpp"
#include "sim/medium.hpp"
#include "sim/trace.hpp"

namespace qolsr {

class Simulator;

/// Declarative, seeded traffic workload for one packet-backend run: a set
/// of concurrent flows whose data packets are injected into the converged
/// network, contending for per-link capacity in the ContendedMedium below.
/// An inactive spec (the default) is contractually invisible: no random
/// numbers are drawn, the capacity layer takes the pass-through fast path,
/// and the run is byte-identical to a run with no spec at all — the same
/// contract the FaultPlan already honors.
struct TrafficSpec {
  /// Inter-arrival process of each flow's packets.
  enum class Arrival : std::uint8_t {
    kNone,    ///< no traffic (the spec is inactive)
    kPoisson, ///< exponential inter-arrivals (memoryless)
    kCbr,     ///< constant bit rate: fixed interval, random per-flow phase
    kPareto,  ///< heavy-tailed inter-arrivals (bursty; shape > 1)
  };
  /// How flow endpoints are placed on the network.
  enum class Pattern : std::uint8_t {
    kUniform,  ///< independent random connected source/destination pairs
    kHotspot,  ///< many sources converge on a few hot destinations
    kGateway,  ///< every flow sinks at the max-degree node (Internet gateway)
  };

  Arrival arrival = Arrival::kNone;
  Pattern pattern = Pattern::kUniform;
  /// Number of concurrent flows.
  std::size_t flows = 16;
  /// Offered-load multiplier — the sweep axis. Per-flow packet rate is
  /// `packet_rate * load`; 0 makes the spec inactive (CLI `--load=0` must
  /// be indistinguishable from passing no traffic flags at all).
  double load = 1.0;
  /// Packets per second per flow at load 1.0.
  double packet_rate = 20.0;
  /// Seconds of traffic generated after convergence.
  double duration = 10.0;
  /// Pareto shape alpha (> 1 so the mean inter-arrival exists); smaller is
  /// heavier-tailed.
  double pareto_shape = 1.5;
  /// Modeled payload bytes per data packet. The wire frame stays the
  /// 21-byte header+addresses (what the nodes serialize); the capacity
  /// layer adds this on top for data frames only, so a data packet loads
  /// a link like a real payload would.
  std::size_t packet_bytes = 512;
  /// Per-link capacity in bytes/second at bandwidth QoS 1.0; a link's
  /// actual capacity scales with its bandwidth annotation, which is what
  /// lets bandwidth-aware ANS selection win under load.
  double link_capacity = 20000.0;
  /// Per-directed-link FIFO queue bound in bytes; the backlog beyond it is
  /// tail-dropped (Journey::Drop::kQueueDrop).
  std::size_t queue_bytes = 16384;
  /// Hot destinations for Pattern::kHotspot.
  std::size_t hotspots = 2;

  bool active() const {
    return arrival != Arrival::kNone && flows > 0 && load > 0.0 &&
           packet_rate > 0.0 && duration > 0.0;
  }
};

/// Canonical CLI/JSON name of an arrival process ("none" | "poisson" |
/// "cbr" | "pareto") — the vocabulary --traffic= parses.
constexpr const char* traffic_arrival_name(TrafficSpec::Arrival a) {
  switch (a) {
    case TrafficSpec::Arrival::kPoisson:
      return "poisson";
    case TrafficSpec::Arrival::kCbr:
      return "cbr";
    case TrafficSpec::Arrival::kPareto:
      return "pareto";
    case TrafficSpec::Arrival::kNone:
      break;
  }
  return "none";
}

/// Canonical CLI/JSON name of an endpoint pattern ("uniform" | "hotspot" |
/// "gateway") — the vocabulary --pattern= parses.
constexpr const char* traffic_pattern_name(TrafficSpec::Pattern p) {
  switch (p) {
    case TrafficSpec::Pattern::kHotspot:
      return "hotspot";
    case TrafficSpec::Pattern::kGateway:
      return "gateway";
    case TrafficSpec::Pattern::kUniform:
      break;
  }
  return "uniform";
}

/// The materialized workload of one run: flow endpoints plus every data
/// packet's send offset, generated up front from a dedicated seeded RNG
/// stream so the schedule replays identically for every protocol of a run
/// and for every thread count.
class TrafficMatrix {
 public:
  /// Data payload ids start here — disjoint from the probe phase's small
  /// consecutive ids, so journeys from the two phases never collide in the
  /// trace's journey map.
  static constexpr std::uint32_t kFirstPayloadId = 0x01000000;

  struct Flow {
    NodeId source = kInvalidNode;
    NodeId destination = kInvalidNode;
  };
  struct Packet {
    double offset = 0.0;  ///< seconds after traffic start
    std::size_t flow = 0;
    std::uint32_t payload_id = 0;
  };

  /// Draws endpoints and arrival times for `spec` over `graph` from a
  /// traffic-salted RNG stream derived from `seed` (the run seed). An
  /// inactive spec yields an empty matrix and draws nothing. Packets come
  /// out sorted by (offset, payload id) — the injection order.
  static TrafficMatrix generate(const TrafficSpec& spec, const Graph& graph,
                                std::uint64_t seed);

  const std::vector<Flow>& flows() const { return flows_; }
  const std::vector<Packet>& packets() const { return packets_; }
  bool empty() const { return packets_.empty(); }

 private:
  std::vector<Flow> flows_;
  std::vector<Packet> packets_;
};

/// The capacity layer of the packet backend: a Medium decorator between
/// the protocol nodes and the LossyMedium fault layer, modeling each
/// directed link as a FIFO queue drained at finite capacity. Every frame
/// the fault layer would deliver passes admission first:
///
///   - the link's virtual clock `busy_until` says when its queue drains;
///     the backlog implied by it is `(busy_until - now) * capacity` bytes;
///   - a frame that would push the backlog past `queue_bytes` is
///     tail-dropped (trace.frames_queue_dropped; data packets get their
///     journey marked Drop::kQueueDrop);
///   - an admitted frame extends the virtual clock by its serialization
///     time `bytes / capacity` and is delivered when the clock says the
///     link got to it — FIFO order is preserved because `busy_until` is
///     monotone per link.
///
/// Capacity is `spec.link_capacity` scaled by the link's bandwidth QoS, so
/// links a bandwidth-aware selector prefers really do carry more. Control
/// frames contend too (a congested link delays HELLOs just as it delays
/// data) but carry only their wire bytes; data frames add the modeled
/// payload. The model draws no random numbers, and when no spec is active
/// admission short-circuits to "deliver now" — contractually invisible.
class ContendedMedium {
 public:
  ContendedMedium(Simulator& sim, TraceStats& trace)
      : sim_(&sim), trace_(&trace) {}

  /// Per-run (re)configuration: binds the spec (nullptr = uncontended) and
  /// clears every link's virtual clock. The spec is borrowed and must stay
  /// alive until the next reset.
  void reset(const TrafficSpec* spec);

  bool active() const { return active_; }

  /// Admission decision for one frame delivery on the directed link
  /// (from, to) at time `now`: the extra queueing delay in seconds to add
  /// on top of propagation (0 on an idle link), or a negative value when
  /// the frame is tail-dropped. Mutates the link's virtual clock and the
  /// trace counters; the caller must honor the verdict.
  double admit(NodeId from, NodeId to, const std::vector<std::byte>& bytes,
               double now);

 private:
  static std::uint64_t directed_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  Simulator* sim_;
  TraceStats* trace_;
  const TrafficSpec* spec_ = nullptr;
  bool active_ = false;
  /// Virtual clock per directed link: the time its FIFO queue drains.
  std::unordered_map<std::uint64_t, double> busy_until_;
};

}  // namespace qolsr
