#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "sim/event_queue.hpp"
#include "sim/medium.hpp"
#include "sim/olsr_node.hpp"
#include "sim/trace.hpp"

namespace qolsr {

/// Simulation-wide configuration.
struct SimConfig {
  NodeConfig node{};
  /// One-hop propagation + processing latency of the ideal MAC.
  double propagation_delay = 0.001;
  std::uint64_t seed = 1;
};

/// Whole-network discrete-event simulation of the OLSR control plane over
/// an ideal MAC: the ground-truth topology is `graph` (positions define
/// radio range; link QoS is what nodes "measure"), every node runs the
/// plugged-in flooding + ANS selection heuristics, and data packets are
/// routed hop-by-hop with the QoS routing function.
///
/// This is the distributed counterpart of the oracle evaluation path —
/// integration tests assert that, once converged, each node's neighbor
/// view, ANS and topology base equal the direct graph computations.
class Simulator final : public Medium {
 public:
  Simulator(Graph graph, const AnsSelector& flooding_selector,
            const AnsSelector& ans_selector, OlsrNode::RouteFn route_fn,
            SimConfig config = {});

  /// Advances the simulation clock.
  void run_until(SimTime horizon) { queue_.run_until(horizon); }

  /// Convenience: runs long enough for HELLO handshakes, selection and one
  /// full TC flood round to settle everywhere (3 TC intervals + slack).
  void run_to_convergence() {
    run_until(3.0 * config_.node.tc_interval + 4.0 * config_.node.hello_interval);
  }

  /// Failure injection: removes the radio link (u,v) from the ground-truth
  /// topology. HELLOs stop crossing it, so both ends' neighbor entries
  /// expire within the hold time and the control plane re-converges around
  /// the failure. Returns false when no such link exists.
  bool fail_link(NodeId u, NodeId v) { return graph_.remove_edge(u, v); }

  OlsrNode& node(NodeId id) { return *nodes_[id]; }
  const OlsrNode& node(NodeId id) const { return *nodes_[id]; }
  const Graph& network() const { return graph_; }
  const TraceStats& trace() const { return trace_; }
  EventQueue& queue() { return queue_; }

  // -- Medium --
  SimTime now() const override { return queue_.now(); }
  void schedule_in(SimTime delay, std::function<void()> callback) override {
    queue_.schedule_in(delay, std::move(callback));
  }
  void broadcast(NodeId from, std::vector<std::byte> bytes) override;
  void unicast(NodeId from, NodeId to, std::vector<std::byte> bytes) override;
  const LinkQos* measured_qos(NodeId a, NodeId b) const override {
    return graph_.edge_qos(a, b);
  }
  std::size_t node_count() const override { return graph_.node_count(); }

 private:
  Graph graph_;
  SimConfig config_;
  EventQueue queue_;
  TraceStats trace_;
  std::vector<std::unique_ptr<OlsrNode>> nodes_;
};

}  // namespace qolsr
