#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "sim/adversary.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_plan.hpp"
#include "sim/invariants.hpp"
#include "sim/lossy_medium.hpp"
#include "sim/medium.hpp"
#include "sim/mutation_clock.hpp"
#include "sim/olsr_node.hpp"
#include "sim/trace.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace qolsr {

/// Simulation-wide configuration.
struct SimConfig {
  NodeConfig node{};
  /// One-hop propagation + processing latency of the ideal MAC.
  double propagation_delay = 0.001;
  std::uint64_t seed = 1;

  // ---- convergence detection (run_to_convergence) -----------------------
  /// Unused since detection became event-driven (the nodes report every
  /// state change to the MutationClock the instant it happens, so there is
  /// no sampling grid to configure). Kept so existing configs still parse;
  /// derived_convergence_step() remains for tests that want the old grid.
  double convergence_step = 0.0;
  /// How long the digest must stay unchanged to declare convergence. 0
  /// derives ProtocolTiming::convergence_dwell() — the same window the
  /// wire harness uses to declare a wall-clock run quiescent, so both
  /// backends share one definition of "settled".
  double convergence_dwell = 0.0;
  /// Hard stop for a network that never settles. 0 derives
  /// ProtocolTiming::max_horizon().
  double max_sim_time = 0.0;

  double derived_convergence_step() const {
    return convergence_step > 0.0 ? convergence_step : node.hello_interval;
  }
  double derived_convergence_dwell() const {
    return convergence_dwell > 0.0 ? convergence_dwell
                                   : node.convergence_dwell();
  }
  double derived_max_sim_time() const {
    return max_sim_time > 0.0 ? max_sim_time : node.max_horizon();
  }
};

/// What run_to_convergence measured: when the protocol state last changed
/// (the *actual* convergence time the control-plane stats report) and
/// whether the dwell window confirmed quiescence before the hard cap.
struct ConvergenceReport {
  /// Exact timestamp of the final state-changing event (event-driven via
  /// the MutationClock — not rounded up to a sampling grid). Never earlier
  /// than the instant run_to_convergence was called: a window that
  /// observes no mutation reports "converged when asked", so timed
  /// re-convergence after a no-op incident is 0, not negative.
  SimTime converged_at = 0.0;
  SimTime end_time = 0.0;  ///< simulation clock when the run stopped
  bool converged = false;  ///< state held stable for the dwell window
};

/// Whole-network discrete-event simulation of the OLSR control plane over
/// an ideal MAC: the ground-truth topology is `graph` (positions define
/// radio range; link QoS is what nodes "measure"), every node runs the
/// plugged-in flooding + ANS selection heuristics, and data packets are
/// routed hop-by-hop with the QoS routing function.
///
/// This is the distributed counterpart of the oracle evaluation path: the
/// packet evaluation backend (eval/packet_runner.hpp) measures set sizes,
/// delivery and control-plane cost from the converged state, and
/// integration tests assert that, once converged, each node's neighbor
/// view, ANS and topology base equal the direct graph computations.
///
/// Batch use: default-construct once, then per run `reset(...)` +
/// `run_to_convergence()` — the node objects, queue and trace are reused
/// instead of being reallocated per run.
///
/// Faults never touch the ground truth: the graph is *borrowed* const (it
/// must outlive the simulator's use, i.e. stay alive until the next
/// reset), and everything adverse — Bernoulli frame loss, link flaps,
/// node crashes, partitions — lives in the LossyMedium overlay the nodes
/// transmit through. An optional FaultPlan (also borrowed) seeds the
/// ambient loss; discrete incidents are injected mid-run via `inject`.
class Simulator final : public Medium {
 public:
  /// An empty simulator (no nodes); bring it to life with `reset`.
  Simulator() : lossy_(*this, trace_), contended_(*this, trace_) {}

  Simulator(const Graph& graph, const AnsSelector& flooding_selector,
            const AnsSelector& ans_selector, OlsrNode::RouteFn route_fn,
            SimConfig config = {}, const FaultPlan* faults = nullptr,
            const AdversarySpec* adversaries = nullptr);
  /// The graph is borrowed — a temporary would dangle.
  Simulator(Graph&& graph, const AnsSelector& flooding_selector,
            const AnsSelector& ans_selector, OlsrNode::RouteFn route_fn,
            SimConfig config = {}, const FaultPlan* faults = nullptr,
            const AdversarySpec* adversaries = nullptr) = delete;

  /// The seed-driven batch-run entry point: rewinds the clock, drops every
  /// pending event and trace counter, installs the new ground truth and
  /// heuristics (and the run's fault plan, if any), and restarts every
  /// node. A reset simulator behaves identically to a freshly constructed
  /// one with `config.seed = seed`; node objects surviving from the
  /// previous run are reused.
  void reset(const Graph& graph, const AnsSelector& flooding_selector,
             const AnsSelector& ans_selector, OlsrNode::RouteFn route_fn,
             std::uint64_t seed, const FaultPlan* faults = nullptr,
             const TrafficSpec* traffic = nullptr,
             const AdversarySpec* adversaries = nullptr);
  void reset(Graph&& graph, const AnsSelector& flooding_selector,
             const AnsSelector& ans_selector, OlsrNode::RouteFn route_fn,
             std::uint64_t seed, const FaultPlan* faults = nullptr,
             const TrafficSpec* traffic = nullptr,
             const AdversarySpec* adversaries = nullptr) = delete;

  /// Advances the simulation clock.
  void run_until(SimTime horizon) { queue_.run_until(horizon); }

  /// Runs until no node has reported a state mutation for the
  /// config-derived dwell window (or the config-derived hard cap is hit).
  /// Event-driven and exact: nodes bump the network MutationClock at every
  /// digest-visible state change, so the detector waits on quiescence
  /// directly — no sampling grid — and `converged_at` is the precise
  /// timestamp of the last state-changing event.
  ConvergenceReport run_to_convergence();

  /// The network mutation clock (inspection: exact last-change time and
  /// the monotonic mutation count the convergence detector waits on).
  const MutationClock& mutations() const { return mutations_; }

  /// Failure injection: takes the radio link (u,v) down in the fault
  /// overlay (the ground-truth graph is untouched — it is borrowed const).
  /// HELLOs stop crossing it, so both ends' neighbor entries expire within
  /// the hold time and the control plane re-converges around the failure.
  /// Returns false when no such link exists or it is already down.
  bool fail_link(NodeId u, NodeId v);

  /// Applies one FaultIncident now: crashes nodes (their soft state is
  /// gone; sequence counters survive as "stable storage"), takes links
  /// down, or splits the network at the id-halves boundary. Random victims
  /// are drawn from the per-run fault RNG stream; a positive duration
  /// schedules the heal (restart / link up / merge) on the event queue.
  /// Callers measure re-convergence by timing run_to_convergence from the
  /// injection instant.
  void inject(const FaultIncident& incident);

  /// The fault overlay (inspection; tests assert on blocked/lost frames).
  const LossyMedium& faults() const { return lossy_; }

  /// The runtime invariant monitor — armed (and its counters meaningful)
  /// only when the run's AdversarySpec is active.
  const InvariantMonitor& monitor() const { return monitor_; }
  InvariantMonitor& monitor() { return monitor_; }
  /// This run's drawn adversary roster, ascending by node id; empty on an
  /// honest run.
  const std::vector<NodeId>& adversary_ids() const { return adversary_ids_; }
  bool is_adversary(NodeId id) const {
    return std::binary_search(adversary_ids_.begin(), adversary_ids_.end(),
                              id);
  }

  /// The capacity layer (inspection; tests assert on queue drops).
  const ContendedMedium& contention() const { return contended_; }
  /// Whether a traffic spec is loading the medium this run — when false,
  /// delivery takes the ideal-MAC fast path (and broadcast fan-outs may be
  /// batched into a single event, since per-leg admission is moot).
  bool contention_active() const { return contended_.active(); }

  OlsrNode& node(NodeId id) { return *nodes_[id]; }
  const OlsrNode& node(NodeId id) const { return *nodes_[id]; }
  const Graph& network() const { return *graph_; }
  const TraceStats& trace() const { return trace_; }
  /// The trace counters as of ConvergenceReport::converged_at — snapshotted
  /// by the MutationClock at the last state-changing event, so
  /// control-plane cost is measured over the same window for every
  /// protocol regardless of how long the quiescence dwell (or the hard
  /// cap) kept the simulation running afterwards. Scalar counters only;
  /// the journey map is not part of the snapshot (and is empty here).
  const TraceStats& trace_at_convergence() const {
    return trace_at_convergence_;
  }
  EventQueue& queue() { return queue_; }
  const SimConfig& config() const { return config_; }

  /// Fold of every node's protocol state (selections, link state, topology
  /// bases — no timers); equal digests across steps mean no node's
  /// converged-state snapshot changed.
  std::uint64_t state_digest() const;

  /// Schedules the delivery of one frame after the propagation delay —
  /// the ideal-MAC core the LossyMedium decorator forwards surviving
  /// frames to. With an active traffic spec the frame first passes the
  /// capacity layer's admission: it may be tail-dropped or delayed by the
  /// link's queue backlog on top of propagation.
  void deliver(NodeId from, NodeId to, SharedBytes bytes);

  /// Batched broadcast fan-out: one scheduled event delivering `bytes` to
  /// every receiver, instead of one event (and one std::function
  /// allocation) per leg. Only valid on the uncontended fast path — the
  /// legs share one delivery time — and ordering-equivalent to per-leg
  /// deliver calls because those would occupy contiguous sequence numbers
  /// at the same timestamp anyway.
  void deliver_fanout(NodeId from, const std::vector<NodeId>& receivers,
                      SharedBytes bytes);

  // -- Medium (delegates through the fault layer, so direct use of the
  // simulator as a Medium sees the same lossy world the nodes do) --
  SimTime now() const override { return queue_.now(); }
  void schedule_in(SimTime delay, std::function<void()> callback) override {
    queue_.schedule_in(delay, std::move(callback));
  }
  void broadcast(NodeId from, SharedBytes bytes) override {
    lossy_.broadcast(from, std::move(bytes));
  }
  void unicast(NodeId from, NodeId to, SharedBytes bytes) override {
    lossy_.unicast(from, to, std::move(bytes));
  }
  const LinkQos* measured_qos(NodeId a, NodeId b) const override {
    return graph_->edge_qos(a, b);
  }
  std::size_t node_count() const override {
    return graph_ != nullptr ? graph_->node_count() : 0;
  }

 private:
  const Graph* graph_ = nullptr;  ///< borrowed; alive until the next reset
  SimConfig config_;
  EventQueue queue_;
  TraceStats trace_;
  TraceStats trace_at_convergence_;  ///< see trace_at_convergence()
  MutationClock mutations_;  ///< nodes report every state change here
  LossyMedium lossy_;           ///< the Medium the nodes transmit through
  ContendedMedium contended_;   ///< capacity layer under the fault layer
  util::Rng fault_rng_{1};      ///< victim draws for random incidents
  InvariantMonitor monitor_;    ///< armed only under an active AdversarySpec
  std::vector<NodeId> adversary_ids_;  ///< drawn roster, sorted
  OlsrNode::RouteFn route_fn_;  ///< shared by all nodes (they borrow it)
  std::vector<std::unique_ptr<OlsrNode>> nodes_;
};

}  // namespace qolsr
