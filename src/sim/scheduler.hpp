#pragma once

#include <functional>

#include "sim/event_queue.hpp"

namespace qolsr {

/// A clock plus deferred execution — the one timer interface both worlds
/// implement, so protocol code that schedules ticks cannot tell (and must
/// not care) which clock is driving it:
///  - the discrete-event Simulator: `now()` is the event queue's virtual
///    time and `schedule_in` enqueues a simulated-time event;
///  - the wire daemon (src/net): `now()` is wall-clock seconds since the
///    process started and `schedule_in` arms a real timer in its poll
///    loop.
/// Seconds are seconds in both cases; only their passage differs.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual SimTime now() const = 0;
  virtual void schedule_in(SimTime delay, std::function<void()> callback) = 0;
};

}  // namespace qolsr
