#include "sim/mobility.hpp"

#include <algorithm>
#include <cmath>

namespace qolsr {

namespace {

/// One uniform waypoint draw; x before y so the stream layout is fixed.
Point draw_waypoint(const WaypointConfig& config, util::Rng& rng) {
  const double x = rng.uniform(0.0, config.width);
  const double y = rng.uniform(0.0, config.height);
  return {x, y};
}

double draw_speed(const WaypointConfig& config, util::Rng& rng) {
  if (config.speed_max <= config.speed_min) return config.speed_min;
  return rng.uniform(config.speed_min, config.speed_max);
}

}  // namespace

RandomWaypointModel::RandomWaypointModel(const WaypointConfig& config,
                                         const Graph& graph, util::Rng& rng)
    : config_(config) {
  legs_.resize(graph.node_count());
  for (Leg& leg : legs_) {
    leg.target = draw_waypoint(config_, rng);
    leg.speed = draw_speed(config_, rng);
    leg.pause_left = 0;
  }
}

void RandomWaypointModel::step(Graph& graph, util::Rng& rng,
                               std::vector<LinkEvent>& events) {
  for (NodeId u = 0; u < legs_.size(); ++u) {
    Leg& leg = legs_[u];
    if (leg.pause_left > 0) {
      if (--leg.pause_left == 0) {
        leg.target = draw_waypoint(config_, rng);
        leg.speed = draw_speed(config_, rng);
      }
      continue;
    }
    const Point at = graph.position(u);
    const double remaining = distance(at, leg.target);
    const double stride = leg.speed * config_.epoch_duration;
    if (remaining <= stride) {
      graph.set_position(u, leg.target);
      if (config_.pause_epochs > 0) {
        leg.pause_left = config_.pause_epochs;
      } else {
        leg.target = draw_waypoint(config_, rng);
        leg.speed = draw_speed(config_, rng);
      }
    } else {
      const double scale = stride / remaining;
      graph.set_position(u, {at.x + (leg.target.x - at.x) * scale,
                             at.y + (leg.target.y - at.y) * scale});
    }
  }
  update_unit_disk_links(graph, config_.radius, config_.qos, rng, events);
}

void LinkChurnModel::step(Graph& graph, util::Rng& rng,
                          std::vector<LinkEvent>& events) {
  // Recovery pass over the failed pool (oldest first; stable compaction
  // keeps the iteration order — and hence the RNG stream — reproducible).
  std::size_t kept = 0;
  for (const DownLink& link : down_) {
    if (rng.uniform01() < config_.up_rate) {
      graph.add_edge(link.a, link.b, link.qos);
      events.push_back({link.a, link.b, true});
    } else {
      down_[kept++] = link;
    }
  }
  down_.resize(kept);

  // Failure pass over the live links, ascending (a, b); collected first —
  // removing while iterating a neighbors() span would invalidate it. A
  // link recovered above can fail again this epoch (its fade returns);
  // both events are emitted and the delta replays correctly.
  const std::size_t first_failure = events.size();
  for (NodeId u = 0; u < graph.node_count(); ++u)
    for (const Edge& e : graph.neighbors(u))
      if (e.to > u && rng.uniform01() < config_.down_rate)
        events.push_back({u, e.to, false});
  for (std::size_t i = first_failure; i < events.size(); ++i) {
    const LinkEvent& event = events[i];
    down_.push_back({event.a, event.b, *graph.edge_qos(event.a, event.b)});
    graph.remove_edge(event.a, event.b);
  }
}

}  // namespace qolsr
