#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "graph/node_id.hpp"

namespace qolsr {

/// A node's protocol behavior. kHonest is the default for every node; the
/// four misbehaviors are assigned from an AdversarySpec roster. The liar
/// and blackhole both *look* honest to link sensing — they HELLO, they get
/// MPR-selected — which is exactly what makes them dangerous.
enum class AdversaryKind : std::uint8_t {
  kHonest = 0,
  /// Advertises and accepts MPR duty normally, then silently drops every
  /// data/TC frame it was supposed to forward.
  kBlackhole,
  /// Injects phantom links and inflated bandwidth QoS into its own TC
  /// advertisements, poisoning every honest TopologyBase that accepts them.
  kLiar,
  /// Captures one foreign TC and keeps re-broadcasting it with fresh
  /// message sequence numbers but the original (stale) ANSN.
  kReplayer,
  /// Refuses MPR duty: accepts selection, never forwards a TC.
  kSelfish,
};

/// The CLI/JSON name of a misbehavior kind.
constexpr std::string_view adversary_kind_name(AdversaryKind kind) {
  switch (kind) {
    case AdversaryKind::kBlackhole: return "blackhole";
    case AdversaryKind::kLiar: return "liar";
    case AdversaryKind::kReplayer: return "replayer";
    case AdversaryKind::kSelfish: return "selfish";
    case AdversaryKind::kHonest: break;
  }
  return "honest";
}

/// Parses a misbehavior name (`--adversaries=K@kind`); kHonest is not a
/// roster kind and does not parse.
inline std::optional<AdversaryKind> parse_adversary_kind(
    std::string_view name) {
  for (AdversaryKind kind :
       {AdversaryKind::kBlackhole, AdversaryKind::kLiar,
        AdversaryKind::kReplayer, AdversaryKind::kSelfish})
    if (name == adversary_kind_name(kind)) return kind;
  return std::nullopt;
}

/// The valid `--adversaries` kind names, for error messages.
constexpr std::string_view kAdversaryKindNames =
    "blackhole|liar|replayer|selfish";

/// Declarative, seeded roster of misbehaving nodes plus a wire-corruption
/// rate for one packet-backend run. Like FaultPlan and TrafficSpec, an
/// inactive spec (the default) is contractually invisible: no roster is
/// drawn, no node changes role, the invariant monitor stays disarmed, the
/// medium draws no corruption randoms, and the run is byte-identical to a
/// run with no spec at all.
struct AdversarySpec {
  /// Misbehavior kinds, assigned round-robin over the drawn roster.
  std::vector<AdversaryKind> kinds;
  /// Roster size (`--adversaries=K@...`); ignored when `fraction` >= 0 or
  /// `nodes` names victims explicitly.
  std::size_t count = 0;
  /// Roster size as a fraction of the deployment (the `--axis=adversary`
  /// sweep value); < 0 defers to `count`. A positive fraction always
  /// corrupts at least one node.
  double fraction = -1.0;
  /// Explicit roster (tests, ad-hoc experiments); when non-empty no random
  /// draw happens and `count`/`fraction` are ignored.
  std::vector<NodeId> nodes;
  /// P(any individual frame delivery has 1-3 wire bits flipped), in
  /// [0, 1]. Corrupted frames are still delivered — the receiver's
  /// hardened parser decides their fate.
  double corrupt_rate = 0.0;

  bool roster_active() const {
    if (kinds.empty()) return false;
    if (!nodes.empty()) return true;
    return fraction >= 0.0 ? fraction > 0.0 : count > 0;
  }
  bool active() const { return roster_active() || corrupt_rate > 0.0; }

  /// Roster size for a deployment of `node_count` nodes.
  std::size_t roster_size(std::size_t node_count) const {
    if (!roster_active()) return 0;
    if (!nodes.empty()) return nodes.size() < node_count ? nodes.size()
                                                         : node_count;
    std::size_t k = count;
    if (fraction >= 0.0) {
      k = static_cast<std::size_t>(
          std::llround(fraction * static_cast<double>(node_count)));
      if (k == 0) k = 1;  // a positive fraction always fields an adversary
    }
    return k < node_count ? k : node_count;
  }
};

}  // namespace qolsr
