#pragma once

#include <cstdint>
#include <map>

#include "graph/node_id.hpp"
#include "sim/event_queue.hpp"

namespace qolsr {

class Graph;
class Simulator;

/// What the runtime invariant monitor has caught so far. Every counter is
/// a *violation of a protocol invariant*, detected as it forms — not an
/// end-of-run statistic. The first six fire during event processing; the
/// last three are filled by audit_topology's comparison of converged
/// TopologyBases against the ground-truth graph.
struct InvariantCounters {
  /// A data frame revisited a node already on its recorded path — a
  /// forwarding loop (the TTL would eventually kill it; the monitor sees
  /// it the moment the duplicate hop happens).
  std::uint64_t forwarding_loops = 0;
  /// A relay that accepted MPR duty silently absorbed a frame (data or
  /// TC) it was obligated to forward.
  std::uint64_t blackhole_absorptions = 0;
  /// A selected MPR declined TC-forwarding duty (selfish, not absorbing
  /// data).
  std::uint64_t mpr_refusals = 0;
  /// A node emitted a TC whose ANSN is older (circular, RFC 3626 §19)
  /// than an ANSN the monitor already saw that originator advertise —
  /// the signature of a replayed control frame.
  std::uint64_t ansn_regressions = 0;
  /// A receiver's TopologyBase rejected a TC as stale (older ANSN than
  /// held) — the protocol's own defense firing, counted per receiver.
  std::uint64_t stale_tc_rejections = 0;
  /// Audit: held adverts naming links absent from the ground truth.
  std::uint64_t phantom_links = 0;
  /// Audit: held adverts whose bandwidth QoS exceeds the true link value.
  std::uint64_t inflated_qos = 0;
  /// Audit: nodes holding at least one phantom or inflated advert.
  std::uint64_t poisoned_nodes = 0;

  /// Total monitored-event violations (audit counters excluded: they are
  /// a state audit, not events).
  std::uint64_t events() const {
    return forwarding_loops + blackhole_absorptions + mpr_refusals +
           ansn_regressions + stale_tc_rejections;
  }
  std::uint64_t total() const {
    return events() + phantom_links + inflated_qos;
  }

  /// Member-wise accumulation (the eval layer folds one run's counters
  /// into the sweep-point aggregate with this).
  void add(const InvariantCounters& other) {
    forwarding_loops += other.forwarding_loops;
    blackhole_absorptions += other.blackhole_absorptions;
    mpr_refusals += other.mpr_refusals;
    ansn_regressions += other.ansn_regressions;
    stale_tc_rejections += other.stale_tc_rejections;
    phantom_links += other.phantom_links;
    inflated_qos += other.inflated_qos;
    poisoned_nodes += other.poisoned_nodes;
  }
};

/// Runtime protocol-invariant monitor, owned by the Simulator and armed
/// only when an AdversarySpec is active — honest nodes carry a null
/// monitor pointer and pay nothing, so adversary-free runs stay
/// byte-identical. Nodes report suspicious events as they process them;
/// the monitor timestamps the first violation and keeps per-originator
/// ANSN high-water marks to spot regressions (replays) at emission time.
class InvariantMonitor {
 public:
  void reset() {
    counters_ = {};
    last_ansn_.clear();
    first_violation_at_ = -1.0;
  }

  void record_forwarding_loop(SimTime now) {
    ++counters_.forwarding_loops;
    mark(now);
  }
  void record_blackhole_absorption(SimTime now) {
    ++counters_.blackhole_absorptions;
    mark(now);
  }
  void record_mpr_refusal(SimTime now) {
    ++counters_.mpr_refusals;
    mark(now);
  }
  void record_stale_tc_rejection(SimTime now) {
    ++counters_.stale_tc_rejections;
    mark(now);
  }

  /// Called for every TC a node puts on the wire (originated or
  /// replayed): flags an ANSN older than the originator's high-water mark.
  void record_tc_emission(NodeId originator, std::uint16_t ansn, SimTime now);

  /// Audit-side recorders (audit_topology).
  void record_phantom_link() { ++counters_.phantom_links; }
  void record_inflated_qos() { ++counters_.inflated_qos; }
  void record_poisoned_node() { ++counters_.poisoned_nodes; }

  const InvariantCounters& counters() const { return counters_; }
  /// Simulated time of the first monitored violation; < 0 when none.
  double first_violation_at() const { return first_violation_at_; }

 private:
  void mark(SimTime now) {
    if (first_violation_at_ < 0.0) first_violation_at_ = now;
  }

  InvariantCounters counters_;
  std::map<NodeId, std::uint16_t> last_ansn_;
  double first_violation_at_ = -1.0;
};

/// End-of-run audit: walks every node's converged TopologyBase and
/// compares each held advert against the ground-truth graph — links that
/// do not exist are phantom, links advertised with more bandwidth than
/// they have are inflated, and any node holding either is poisoned. Fills
/// the monitor's audit counters.
void audit_topology(InvariantMonitor& monitor, const Simulator& sim,
                    const Graph& truth);

}  // namespace qolsr
