#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "graph/deployment.hpp"
#include "graph/graph.hpp"
#include "graph/link_event.hpp"

namespace qolsr {

/// Evolves a deployed topology over discrete epochs — the dynamic-topology
/// axis of the evaluation (EXPERIMENTS.md, "Mobility & churn"). Each
/// `step` mutates `graph` in place (positions and/or links) and appends
/// one normalized `LinkEvent` per changed link, the delta consumed by the
/// incremental selection maintenance (src/olsr/incremental.hpp). Steps are
/// deterministic given the RNG stream; models hold per-node state, so one
/// instance drives exactly one graph.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  virtual std::string_view name() const = 0;

  /// Advances one epoch. Events are appended (callers clear between
  /// epochs); every event reflects an applied graph mutation, so replaying
  /// the events on the pre-step link set yields the post-step link set.
  virtual void step(Graph& graph, util::Rng& rng,
                    std::vector<LinkEvent>& events) = 0;
};

/// Knobs of the random-waypoint model. Field geometry mirrors
/// `DeploymentConfig`; `qos` covers links formed mid-trace (survivors keep
/// their records).
struct WaypointConfig {
  double width = 1000.0;
  double height = 1000.0;
  double radius = 100.0;
  double speed_min = 1.0;   ///< m/s, drawn per leg, uniform
  double speed_max = 10.0;  ///< m/s
  std::size_t pause_epochs = 0;  ///< epochs spent parked at each waypoint
  double epoch_duration = 1.0;   ///< seconds of movement per epoch
  QosIntervals qos;
};

/// Random waypoint (the classic MANET mobility model): every node moves in
/// a straight line toward a uniformly drawn waypoint at a per-leg uniform
/// speed, pauses `pause_epochs` epochs on arrival, then draws the next
/// leg. After moving, the unit-disk link set is re-derived from the new
/// positions (`update_unit_disk_links`), which emits the epoch's link
/// delta.
class RandomWaypointModel final : public MobilityModel {
 public:
  /// Draws the initial waypoint and speed of every node of `graph` from
  /// `rng` (one (x, y, speed) triple per node, ascending id).
  RandomWaypointModel(const WaypointConfig& config, const Graph& graph,
                      util::Rng& rng);

  std::string_view name() const override { return "waypoint"; }
  void step(Graph& graph, util::Rng& rng,
            std::vector<LinkEvent>& events) override;

 private:
  struct Leg {
    Point target;
    double speed = 0.0;
    std::size_t pause_left = 0;
  };

  WaypointConfig config_;
  std::vector<Leg> legs_;
};

/// Knobs of the memoryless link-churn model.
struct ChurnConfig {
  double down_rate = 0.05;  ///< per-epoch P(live link fails)
  double up_rate = 0.25;    ///< per-epoch P(failed link recovers)
};

/// Link up/down churn without motion: each epoch, every failed link
/// recovers with `up_rate` (restoring its remembered QoS record — a radio
/// fade ends, the link is what it was), then every live link fails with
/// `down_rate`. Node positions never change, so the long-run topology
/// oscillates around the initial deployment instead of drifting.
class LinkChurnModel final : public MobilityModel {
 public:
  explicit LinkChurnModel(const ChurnConfig& config) : config_(config) {}

  std::string_view name() const override { return "churn"; }
  void step(Graph& graph, util::Rng& rng,
            std::vector<LinkEvent>& events) override;

 private:
  struct DownLink {
    NodeId a, b;
    LinkQos qos;  ///< restored verbatim on recovery
  };

  ChurnConfig config_;
  std::vector<DownLink> down_;  ///< failed links, oldest first
};

}  // namespace qolsr
