#include "sim/olsr_node.hpp"

#include <algorithm>
#include <limits>

#include "routing/advertised_topology.hpp"
#include "util/digest.hpp"
#include "util/log.hpp"

namespace qolsr {

namespace {
/// Domain-separates a misbehaving node's lie-parameter stream from its
/// protocol RNG (0x517cc1b727220a95), the loss stream and the fault
/// stream — all derive from the same run seed, and honest nodes never
/// draw from this one.
constexpr std::uint64_t kAdversaryNodeSalt = 0x3c6ef372fe94f82bULL;

/// Nudge used when a topology purge event lands exactly on an entry's
/// hold-time deadline: soft state is valid *through* its deadline (the
/// validity reads use `expires < now`), so the purge must run strictly
/// after it — one simulated nanosecond, far below any protocol timescale.
constexpr double kPurgeLag = 1e-9;

/// route_cache_ sentinel for "no memoized next hop yet this epoch". Cannot
/// collide with a route result: next hops are deployment ids (< n) or
/// kInvalidNode, never this value.
constexpr NodeId kRouteNotCached = kInvalidNode - 1;

/// Deployment-range sanitation of a structurally valid parse: node ids in
/// this simulation are dense 0..n-1, so a frame naming any id outside the
/// deployment can only be wire corruption (or a hostile sender) — and must
/// be rejected *before* it reaches tables sized or indexed by node id (a
/// bit-flipped 32-bit neighbor id can otherwise demand a multi-gigabyte
/// local-view scratch). Honest frames always pass, so the check never
/// perturbs an adversary-free run.
bool in_deployment(const ParsedPacket& packet, std::size_t n) {
  if (packet.header.originator >= n) return false;
  if (packet.hello.has_value()) {
    if (packet.hello->originator >= n) return false;
    for (const LinkAdvert& a : packet.hello->links)
      if (a.neighbor >= n) return false;
  }
  if (packet.tc.has_value()) {
    if (packet.tc->originator >= n) return false;
    for (const LinkAdvert& a : packet.tc->advertised)
      if (a.neighbor >= n) return false;
  }
  if (packet.data.has_value() &&
      (packet.data->source >= n || packet.data->destination >= n))
    return false;
  return true;
}
}  // namespace

OlsrNode::OlsrNode(NodeId id, Medium& medium, TraceStats& trace,
                   const AnsSelector& flooding_selector,
                   const AnsSelector& ans_selector, const RouteFn& route_fn,
                   const NodeConfig& config, std::uint64_t seed)
    : id_(id),
      medium_(medium),
      trace_(trace),
      flooding_selector_(&flooding_selector),
      ans_selector_(&ans_selector),
      route_fn_(&route_fn),
      config_(config),
      rng_(seed ^ (0x517cc1b727220a95ULL * (id + 1))),
      tables_(id, config.neighbor_hold),
      topology_(config.topology_hold) {}

void OlsrNode::reset(const AnsSelector& flooding_selector,
                     const AnsSelector& ans_selector, const RouteFn& route_fn,
                     const NodeConfig& config, std::uint64_t seed) {
  flooding_selector_ = &flooding_selector;
  ans_selector_ = &ans_selector;
  route_fn_ = &route_fn;
  config_ = config;
  rng_ = util::Rng(seed ^ (0x517cc1b727220a95ULL * (id_ + 1)));
  tables_ = NeighborTables(id_, config.neighbor_hold);
  topology_ = TopologyBase(config.topology_hold);
  duplicates_.clear();
  flooding_mpr_.clear();
  ans_.clear();
  ansn_ = 0;
  last_advertised_.clear();
  next_sequence_ = 0;
  alive_ = true;
  knowledge_valid_ = false;
  // Pending purge events died with the previous run's event queue (the
  // Simulator clears it before resetting nodes).
  purge_pending_ = false;
  mutations_ = nullptr;
  role_ = AdversaryKind::kHonest;
  monitor_ = nullptr;
  phantom_targets_.clear();
  phantoms_drawn_ = false;
  captured_valid_ = false;
  replay_count_ = 0;
}

void OlsrNode::set_role(AdversaryKind role, std::uint64_t seed) {
  role_ = role;
  adv_rng_ = util::Rng(seed ^ (kAdversaryNodeSalt * (id_ + 1)));
}

void OlsrNode::crash() {
  alive_ = false;
  // All soft state is gone; ansn_ and next_sequence_ deliberately survive
  // (see the header — the RFC's stable-storage assumption).
  tables_ = NeighborTables(id_, config_.neighbor_hold);
  topology_ = TopologyBase(config_.topology_hold);
  duplicates_.clear();
  flooding_mpr_.clear();
  ans_.clear();
  last_advertised_.clear();
  knowledge_valid_ = false;
  note_mutation();  // the alive bit (and the wiped tables) are state
}

void OlsrNode::restart() {
  alive_ = true;
  knowledge_valid_ = false;
  note_mutation();  // the alive bit is state
}

void OlsrNode::note_mutation() {
  if (mutations_ != nullptr) mutations_->note(medium_.now());
}

void OlsrNode::start() {
  medium_.schedule_in(rng_.uniform(0.0, config_.jitter),
                      [this] { hello_tick(); });
  // TCs start after one HELLO round so there is a neighborhood to advertise.
  medium_.schedule_in(config_.hello_interval +
                          rng_.uniform(0.0, config_.jitter),
                      [this] { tc_tick(); });
}

std::vector<LinkAdvert> OlsrNode::build_hello_links() const {
  std::vector<LinkAdvert> links;
  // Every heard neighbor is listed: asymmetric entries complete the two-way
  // handshake, symmetric ones carry the QoS table that builds neighbors'
  // 2-hop views, and MPR status tells them to forward our floods.
  for (NodeId neighbor : tables_.heard_neighbors()) {
    const LinkQos* qos = tables_.link_qos(neighbor);
    if (qos == nullptr) continue;
    LinkStatus status = LinkStatus::kAsymmetric;
    if (tables_.is_symmetric(neighbor)) {
      status = std::binary_search(flooding_mpr_.begin(), flooding_mpr_.end(),
                                  neighbor)
                   ? LinkStatus::kMpr
                   : LinkStatus::kSymmetric;
    }
    links.push_back({neighbor, status, *qos});
  }
  return links;
}

void OlsrNode::recompute_selection() {
  const LocalView view = tables_.build_local_view();
  std::vector<NodeId> flooding = flooding_selector_->select(view);
  std::vector<NodeId> ans = ans_selector_->select(view);
  // Selection output is digest-visible state: report a change the instant
  // it is computed. (It does not touch the knowledge cache — that view is
  // the TC topology plus own symmetric links, independent of MPR/ANS.)
  if (flooding != flooding_mpr_ || ans != ans_) note_mutation();
  flooding_mpr_ = std::move(flooding);
  ans_ = std::move(ans);
  if (ans_ != last_advertised_) {
    ++ansn_;
    last_advertised_ = ans_;
  }
}

void OlsrNode::hello_tick() {
  // A crashed node's timer wheel keeps spinning (the reschedule below and
  // its jitter draw happen regardless), but the protocol body is skipped.
  if (alive_) {
    const double now = medium_.now();
    const NeighborTables::Outcome lapsed = tables_.expire(now);
    if (lapsed.digest_changed) note_mutation();
    if (lapsed.view_changed) knowledge_valid_ = false;
    recompute_selection();

    HelloMessage hello;
    hello.originator = id_;
    hello.links = build_hello_links();
    PacketHeader header;
    header.type = MessageType::kHello;
    header.originator = id_;
    header.sequence = next_sequence_++;
    header.ttl = 1;  // HELLOs are never forwarded
    auto bytes = make_shared_bytes(serialize(header, hello));
    trace_.hello_sent += 1;
    trace_.control_bytes += bytes->size();
    medium_.broadcast(id_, std::move(bytes));
  }

  medium_.schedule_in(config_.hello_interval +
                          rng_.uniform(0.0, config_.jitter),
                      [this] { hello_tick(); });
}

void OlsrNode::tc_tick() {
  if (!alive_) {
    medium_.schedule_in(config_.tc_interval +
                            rng_.uniform(0.0, config_.jitter),
                        [this] { tc_tick(); });
    return;
  }
  const double now = medium_.now();
  const NeighborTables::Outcome lapsed = tables_.expire(now);
  if (lapsed.digest_changed) note_mutation();
  if (lapsed.view_changed) knowledge_valid_ = false;
  // Topology-base expiry is event-driven (topology_purge_tick), not tied
  // to this tick anymore; the duplicate set keeps its opportunistic sweep
  // here (its entries are not digest-visible state).
  duplicates_.expire(now);
  recompute_selection();

  // A liar always has something to advertise — its fabrications.
  if (!ans_.empty() || role_ == AdversaryKind::kLiar) {
    TcMessage tc;
    tc.originator = id_;
    tc.ansn = ansn_;
    for (NodeId neighbor : ans_) {
      const LinkQos* qos = tables_.link_qos(neighbor);
      if (qos == nullptr) continue;
      tc.advertised.push_back({neighbor, LinkStatus::kSymmetric, *qos});
    }
    if (role_ == AdversaryKind::kLiar) lie_in_tc(tc);
    PacketHeader header;
    header.type = MessageType::kTc;
    header.originator = id_;
    header.sequence = next_sequence_++;
    header.ttl = config_.tc_ttl;
    // Our own advertisement is part of the topology we route on.
    const TopologyBase::TcOutcome applied = topology_.apply_tc(tc, now);
    if (applied.links_changed) note_mutation();
    if (applied.view_changed) knowledge_valid_ = false;
    if (applied.fresh) schedule_topology_purge();
    // Record our own flood so re-broadcasts that echo back are dropped.
    duplicates_.check_and_insert(id_, header.sequence, now);
    if (monitor_ != nullptr) monitor_->record_tc_emission(id_, tc.ansn, now);
    auto bytes = make_shared_bytes(serialize(header, tc));
    trace_.tc_originated += 1;
    trace_.control_bytes += bytes->size();
    medium_.broadcast(id_, std::move(bytes));
  }
  if (role_ == AdversaryKind::kReplayer && captured_valid_)
    replay_captured_tc();

  medium_.schedule_in(config_.tc_interval + rng_.uniform(0.0, config_.jitter),
                      [this] { tc_tick(); });
}

void OlsrNode::lie_in_tc(TcMessage& tc) {
  // Inflate every honestly-measured bandwidth: receivers routing on the
  // widest path will prefer links through us that cannot carry the load.
  for (LinkAdvert& a : tc.advertised) a.qos.bandwidth *= 4.0;
  if (!phantoms_drawn_) {
    // Draw up to two stable phantom endpoints (a lie that changes every
    // tick would keep the ANSN churning and never let the digest settle);
    // only nodes we genuinely cannot reach qualify.
    phantoms_drawn_ = true;
    const std::size_t n = medium_.node_count();
    for (int attempt = 0; attempt < 16 && phantom_targets_.size() < 2 && n > 1;
         ++attempt) {
      const NodeId target = static_cast<NodeId>(adv_rng_.uniform_int(n));
      if (target == id_) continue;
      if (medium_.measured_qos(id_, target) != nullptr) continue;  // real
      if (std::find(phantom_targets_.begin(), phantom_targets_.end(),
                    target) != phantom_targets_.end())
        continue;
      phantom_targets_.push_back(target);
    }
  }
  for (NodeId target : phantom_targets_) {
    LinkQos qos;
    qos.bandwidth = 1.0e3;  // an irresistible fabricated link
    tc.advertised.push_back({target, LinkStatus::kSymmetric, qos});
  }
}

void OlsrNode::replay_captured_tc() {
  PacketHeader header = captured_header_;
  // A fresh message sequence defeats every duplicate set; the ANSN inside
  // stays the captured — by now stale — one. TopologyBase's circular
  // comparison is what must reject it (the stale_tc_rejections counter).
  header.sequence = static_cast<std::uint16_t>(
      captured_header_.sequence + 0x4000u + replay_count_++);
  header.ttl = config_.tc_ttl;
  header.hop_count = 0;
  const double now = medium_.now();
  duplicates_.check_and_insert(captured_tc_.originator, header.sequence, now);
  if (monitor_ != nullptr)
    monitor_->record_tc_emission(captured_tc_.originator, captured_tc_.ansn,
                                 now);
  auto bytes = make_shared_bytes(serialize(header, captured_tc_));
  trace_.control_bytes += bytes->size();
  medium_.broadcast(id_, std::move(bytes));
}

void OlsrNode::on_receive(NodeId from, const std::vector<std::byte>& bytes) {
  // A frame scheduled before we crashed can still land afterwards (the
  // propagation delay); a dead node hears nothing.
  if (!alive_) return;
  const auto packet = parse_packet(bytes);
  if (!packet.has_value() ||
      !in_deployment(*packet, medium_.node_count())) {
    // Expected noise under an active corruption gate — counted, not
    // warned about (a warn per mangled frame would drown real logs).
    trace_.frames_malformed += 1;
    QOLSR_LOG(kDebug) << "node " << id_ << ": malformed packet from " << from;
    return;
  }
  switch (packet->header.type) {
    case MessageType::kHello:
      handle_hello(*packet->hello, from);
      break;
    case MessageType::kTc:
      handle_tc(packet->header, *packet->tc, from);
      break;
    case MessageType::kData:
      handle_data(packet->header, *packet->data);
      break;
  }
}

void OlsrNode::handle_hello(const HelloMessage& hello, NodeId from) {
  const LinkQos* qos = medium_.measured_qos(id_, from);
  if (qos == nullptr) return;  // spurious reception
  const NeighborTables::Outcome changed =
      tables_.on_hello(hello, *qos, medium_.now());
  if (changed.digest_changed) note_mutation();
  if (changed.view_changed) knowledge_valid_ = false;
}

void OlsrNode::handle_tc(const PacketHeader& header, const TcMessage& tc,
                         NodeId from) {
  const double now = medium_.now();
  // Only process floods arriving over a symmetric link (RFC 3626 §9.5).
  if (!tables_.is_symmetric(from)) return;
  if (!duplicates_.check_and_insert(header.originator, header.sequence,
                                    now)) {
    trace_.tc_dropped_duplicate += 1;
    return;
  }
  if (tc.originator != id_) {
    const TopologyBase::TcOutcome applied = topology_.apply_tc(tc, now);
    if (!applied.fresh && monitor_ != nullptr)
      monitor_->record_stale_tc_rejection(now);
    if (applied.links_changed) note_mutation();
    if (applied.view_changed) knowledge_valid_ = false;
    if (applied.fresh) schedule_topology_purge();
    if (role_ == AdversaryKind::kReplayer && !captured_valid_) {
      // Capture the first foreign TC; tc_tick keeps re-emitting it with a
      // fresh message sequence but the original (aging) ANSN.
      captured_valid_ = true;
      captured_header_ = header;
      captured_tc_ = tc;
    }
  }

  // Default MPR forwarding: retransmit iff the previous hop selected us as
  // its MPR.
  if (header.ttl <= 1) return;
  if (!tables_.selected_us_as_mpr(from)) return;
  if (role_ == AdversaryKind::kBlackhole ||
      role_ == AdversaryKind::kSelfish) {
    // We accepted MPR duty (our HELLOs look honest) and now renege on it.
    if (monitor_ != nullptr) {
      if (role_ == AdversaryKind::kBlackhole)
        monitor_->record_blackhole_absorption(now);
      else
        monitor_->record_mpr_refusal(now);
    }
    return;
  }
  PacketHeader forwarded = header;
  forwarded.ttl -= 1;
  forwarded.hop_count += 1;
  auto bytes = make_shared_bytes(serialize(forwarded, tc));
  trace_.tc_forwarded += 1;
  trace_.control_bytes += bytes->size();
  medium_.broadcast(id_, std::move(bytes));
}

void OlsrNode::send_data(NodeId destination, std::uint32_t payload_id) {
  PacketHeader header;
  header.type = MessageType::kData;
  header.originator = id_;
  header.sequence = next_sequence_++;
  header.ttl = config_.data_ttl;
  DataMessage data;
  data.source = id_;
  data.destination = destination;
  data.payload_id = payload_id;
  trace_.data_sent += 1;
  auto& journey = trace_.journeys[payload_id];
  journey.source = id_;
  journey.destination = destination;
  journey.sent_at = medium_.now();
  journey.path = {id_};
  forward_or_deliver(header, data);
}

void OlsrNode::handle_data(PacketHeader header, const DataMessage& data) {
  auto it = trace_.journeys.find(data.payload_id);
  if (it != trace_.journeys.end()) {
    // A revisit is a forwarding loop forming right now — the TTL would
    // catch it dozens of hops later; the monitor sees the first cycle.
    if (monitor_ != nullptr &&
        std::find(it->second.path.begin(), it->second.path.end(), id_) !=
            it->second.path.end())
      monitor_->record_forwarding_loop(medium_.now());
    it->second.path.push_back(id_);
  }
  if (data.destination == id_) {
    trace_.data_delivered += 1;
    if (it != trace_.journeys.end()) {
      it->second.delivered = true;
      it->second.delivered_at = medium_.now();
    }
    return;
  }
  if (role_ == AdversaryKind::kBlackhole) {
    // Transit traffic is silently absorbed; our honest-looking HELLOs made
    // sure routes lead through us.
    trace_.data_dropped += 1;
    mark_drop(data.payload_id, TraceStats::Journey::Drop::kAdversary);
    if (monitor_ != nullptr)
      monitor_->record_blackhole_absorption(medium_.now());
    return;
  }
  if (header.ttl <= 1) {
    trace_.data_dropped += 1;
    mark_drop(data.payload_id, TraceStats::Journey::Drop::kTtl);
    return;
  }
  header.ttl -= 1;
  header.hop_count += 1;
  trace_.data_forwarded += 1;
  forward_or_deliver(header, data);
}

void OlsrNode::forward_or_deliver(PacketHeader header,
                                  const DataMessage& data) {
  const Graph& knowledge = knowledge_graph();
  if (data.destination >= knowledge.node_count()) {
    // Parse-time sanitation (in_deployment) already rejects any received
    // frame naming an out-of-deployment id, so an oversized destination
    // here is a forged or wire-corrupted frame, not a routing failure —
    // charge the wire, not the knowledge graph, or the figure-B/R fate
    // columns misattribute corruption as `no route`.
    trace_.data_dropped += 1;
    mark_drop(data.payload_id, TraceStats::Journey::Drop::kMalformed);
    return;
  }
  NodeId next = route_cache_[data.destination];
  if (next == kRouteNotCached) {
    next = (*route_fn_)(knowledge, id_, data.destination);
    route_cache_[data.destination] = next;
  }
  if (next == kInvalidNode) {
    trace_.data_dropped += 1;
    mark_drop(data.payload_id, TraceStats::Journey::Drop::kNoRoute);
    return;
  }
  medium_.unicast(id_, next, make_shared_bytes(serialize(header, data)));
}

void OlsrNode::mark_drop(std::uint32_t payload_id,
                         TraceStats::Journey::Drop reason) {
  const auto it = trace_.journeys.find(payload_id);
  if (it != trace_.journeys.end() &&
      it->second.drop == TraceStats::Journey::Drop::kNone)
    it->second.drop = reason;
}

std::uint64_t OlsrNode::state_digest(std::uint64_t h) const {
  // The alive bit makes a crash (and a restart of an otherwise-empty
  // node) visible to the convergence detector.
  h = util::digest_mix(h, alive_ ? 1u : 0u);
  for (NodeId n : flooding_mpr_) h = util::digest_mix(h, n);
  h = util::digest_mix(h, flooding_mpr_.size());
  for (NodeId n : ans_) h = util::digest_mix(h, n);
  h = util::digest_mix(h, ans_.size());
  h = tables_.digest(h);
  return topology_.digest(h);
}

std::uint64_t OlsrNode::converged_digest() const {
  std::uint64_t h = util::kDigestSeed;
  h = util::digest_mix(h, id_);
  h = util::digest_mix(h, alive_ ? 1u : 0u);
  for (NodeId n : flooding_mpr_) h = util::digest_mix(h, n);
  h = util::digest_mix(h, flooding_mpr_.size());
  for (NodeId n : ans_) h = util::digest_mix(h, n);
  h = util::digest_mix(h, ans_.size());
  h = tables_.converged_digest(h);
  return topology_.converged_digest(h);
}

const Graph& OlsrNode::knowledge_graph() {
  // TC-advertised topology plus our own symmetric links. Deliberately NOT
  // the full 2-hop view: heterogeneous per-hop knowledge makes QoS
  // hop-by-hop forwarding loop (see routing/forwarding.hpp). Validity-
  // aware read: an entry past its hold time is dead for routing even if
  // no purge event has removed it yet — under loss that window is where
  // blackholes hide. The cache reproduces that semantics exactly: it is
  // invalidated on every view-changing mutation, and `fresh_until` (the
  // earliest hold deadline baked into the build) bounds how long the
  // built view matches a validity-aware read taken at query time.
  const double now = medium_.now();
  if (!knowledge_valid_ || now > knowledge_fresh_until_) {
    knowledge_fresh_until_ =
        topology_.to_graph_into(knowledge_, medium_.node_count(), now);
    tables_.for_each_symmetric([this](NodeId neighbor, const LinkQos& qos) {
      if (neighbor < knowledge_.node_count() &&
          !knowledge_.has_edge(id_, neighbor))
        knowledge_.add_edge(id_, neighbor, qos);
    });
    // The view changed (or aged out): every memoized next hop is stale.
    route_cache_.assign(knowledge_.node_count(), kRouteNotCached);
    knowledge_valid_ = true;
  }
  return knowledge_;
}

void OlsrNode::schedule_topology_purge() {
  // One pending event per node: it always fires no later than the base's
  // earliest deadline (deadlines only move up on refresh, and any new
  // entry expires at now + hold, never before an already-scheduled fire
  // time), and reschedules itself against the then-current deadline.
  if (purge_pending_) return;
  const double next = topology_.next_expiry();
  if (next == std::numeric_limits<double>::infinity()) return;
  purge_pending_ = true;
  medium_.schedule_in(std::max(next - medium_.now(), kPurgeLag),
                      [this] { topology_purge_tick(); });
}

void OlsrNode::topology_purge_tick() {
  purge_pending_ = false;
  const double now = medium_.now();
  if (topology_.expire(now)) {
    note_mutation();  // held entries left the digest
    knowledge_valid_ = false;
  }
  // Re-arm at the new earliest deadline. An entry expiring exactly `now`
  // is still valid at this instant (strict `<` everywhere), so the re-arm
  // lags it by kPurgeLag instead of spinning at the same timestamp.
  const double next = topology_.next_expiry();
  if (next == std::numeric_limits<double>::infinity()) return;
  purge_pending_ = true;
  medium_.schedule_in(std::max(next - now, kPurgeLag),
                      [this] { topology_purge_tick(); });
}

}  // namespace qolsr
