#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/node_id.hpp"

namespace qolsr {

/// Control- and data-plane counters collected by the simulator, shared by
/// all nodes of one run. TC bytes are the quantity the paper's set-size
/// figures proxy: each TC carries one advert per ANS member.
struct TraceStats {
  std::uint64_t hello_sent = 0;
  std::uint64_t tc_originated = 0;
  std::uint64_t tc_forwarded = 0;
  std::uint64_t tc_dropped_duplicate = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t data_sent = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_dropped = 0;

  /// Journey of one data packet, keyed by payload id.
  struct Journey {
    NodeId source = kInvalidNode;
    NodeId destination = kInvalidNode;
    bool delivered = false;
    std::vector<NodeId> path;  ///< nodes traversed, starting at the source
  };
  std::unordered_map<std::uint32_t, Journey> journeys;
};

}  // namespace qolsr
