#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/node_id.hpp"

namespace qolsr {

/// Control- and data-plane counters collected by the simulator, shared by
/// all nodes of one run. TC bytes are the quantity the paper's set-size
/// figures proxy: each TC carries one advert per ANS member.
struct TraceStats {
  std::uint64_t hello_sent = 0;
  std::uint64_t tc_originated = 0;
  std::uint64_t tc_forwarded = 0;
  std::uint64_t tc_dropped_duplicate = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t data_sent = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_dropped = 0;
  // ---- fault layer (LossyMedium; zero on an unimpaired medium) ----------
  /// Frame deliveries dropped by the Bernoulli loss gate.
  std::uint64_t frames_lost = 0;
  /// Frame deliveries suppressed by the up/down overlay (crashed node,
  /// downed link, active partition).
  std::uint64_t frames_blocked = 0;
  // ---- capacity layer (ContendedMedium; zero without a traffic spec) ----
  /// Frame deliveries tail-dropped at a full per-link FIFO queue.
  std::uint64_t frames_queue_dropped = 0;
  // ---- adversary layer (zero without an active AdversarySpec) -----------
  /// Frame deliveries with wire bits flipped by the corruption gate (the
  /// frame is still delivered; the receiver's parser decides its fate).
  std::uint64_t frames_corrupted = 0;
  /// Received frames the hardened parser rejected as malformed.
  std::uint64_t frames_malformed = 0;

  /// Journey of one data packet, keyed by payload id.
  struct Journey {
    /// Why an undelivered packet died, recorded by the node that dropped
    /// it. A journey that is neither delivered nor marked was lost in the
    /// medium (Bernoulli loss or a fault-blocked hop) mid-flight.
    enum class Drop : std::uint8_t {
      kNone,       ///< still in flight (or delivered)
      kNoRoute,    ///< a hop's knowledge graph had no route (blackhole)
      kTtl,        ///< hop limit exhausted (routing loop / overlong path)
      kQueueDrop,  ///< tail-dropped at a saturated link queue (congestion)
      kAdversary,  ///< silently absorbed by a misbehaving relay
      kMalformed,  ///< wire-corrupted in flight (bits flipped on the frame)
    };
    NodeId source = kInvalidNode;
    NodeId destination = kInvalidNode;
    bool delivered = false;
    Drop drop = Drop::kNone;
    /// Clock stamps for end-to-end latency: set by send_data resp. the
    /// destination's handle_data (0 until then; SimTime is double).
    double sent_at = 0.0;
    double delivered_at = 0.0;
    std::vector<NodeId> path;  ///< nodes traversed, starting at the source
  };
  std::unordered_map<std::uint32_t, Journey> journeys;
};

/// Copies only the scalar counters of `from` into `to`, leaving `to`'s
/// journey map untouched — the cheap per-mutation snapshot the event-driven
/// convergence detector takes at every state change (copying the journey
/// map there would put an O(packets) cost on every table mutation).
inline void copy_counters(TraceStats& to, const TraceStats& from) {
  to.hello_sent = from.hello_sent;
  to.tc_originated = from.tc_originated;
  to.tc_forwarded = from.tc_forwarded;
  to.tc_dropped_duplicate = from.tc_dropped_duplicate;
  to.control_bytes = from.control_bytes;
  to.data_sent = from.data_sent;
  to.data_forwarded = from.data_forwarded;
  to.data_delivered = from.data_delivered;
  to.data_dropped = from.data_dropped;
  to.frames_lost = from.frames_lost;
  to.frames_blocked = from.frames_blocked;
  to.frames_queue_dropped = from.frames_queue_dropped;
  to.frames_corrupted = from.frames_corrupted;
  to.frames_malformed = from.frames_malformed;
}

}  // namespace qolsr
