#include "sim/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "proto/messages.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace qolsr {

namespace {

/// Domain-separates the traffic stream (endpoint and arrival draws) from
/// the node RNGs, the loss stream and the fault-victim stream, all of
/// which derive from the same run seed.
constexpr std::uint64_t kTrafficStreamSalt = 0x94d049bb133111ebULL;

/// Random node with at least one link (bounded retries keep the draw count
/// deterministic-ish in expectation but the retry loop itself is fully
/// deterministic given the stream; an all-isolated graph gives up and
/// returns the last draw).
NodeId draw_attached_node(util::Rng& rng, const Graph& graph) {
  const auto n = static_cast<std::uint64_t>(graph.node_count());
  NodeId pick = 0;
  for (int attempt = 0; attempt < 16; ++attempt) {
    pick = static_cast<NodeId>(rng.uniform_int(n));
    if (graph.degree(pick) > 0) return pick;
  }
  return pick;
}

/// Random attached node different from `avoid` (same bounded-retry
/// discipline; degenerate single-node graphs return whatever was drawn).
NodeId draw_attached_node_except(util::Rng& rng, const Graph& graph,
                                 NodeId avoid) {
  NodeId pick = draw_attached_node(rng, graph);
  for (int attempt = 0; attempt < 16 && pick == avoid; ++attempt)
    pick = draw_attached_node(rng, graph);
  return pick;
}

/// The max-degree node, ties broken toward the lowest id — computed from
/// the ground truth alone, no RNG, so the gateway is the same for every
/// protocol of a run.
NodeId gateway_node(const Graph& graph) {
  NodeId best = 0;
  std::size_t best_degree = 0;
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    if (graph.degree(u) > best_degree) {
      best = u;
      best_degree = graph.degree(u);
    }
  }
  return best;
}

}  // namespace

TrafficMatrix TrafficMatrix::generate(const TrafficSpec& spec,
                                      const Graph& graph,
                                      std::uint64_t seed) {
  TrafficMatrix matrix;
  if (!spec.active() || graph.node_count() < 2) return matrix;

  util::Rng rng(seed ^ kTrafficStreamSalt);

  // ---- flow endpoints (drawn first, flow by flow, so the arrival draws
  // below land at stream positions independent of the pattern) ------------
  std::vector<NodeId> hot;
  switch (spec.pattern) {
    case TrafficSpec::Pattern::kHotspot: {
      const std::size_t want =
          std::min(std::max<std::size_t>(spec.hotspots, 1),
                   graph.node_count());
      while (hot.size() < want) {
        const NodeId h = draw_attached_node(rng, graph);
        if (std::find(hot.begin(), hot.end(), h) == hot.end())
          hot.push_back(h);
      }
      break;
    }
    case TrafficSpec::Pattern::kGateway:
      hot.push_back(gateway_node(graph));
      break;
    case TrafficSpec::Pattern::kUniform:
      break;
  }
  matrix.flows_.reserve(spec.flows);
  for (std::size_t f = 0; f < spec.flows; ++f) {
    Flow flow;
    if (hot.empty()) {
      flow.source = draw_attached_node(rng, graph);
      flow.destination = draw_attached_node_except(rng, graph, flow.source);
    } else {
      flow.destination = hot[f % hot.size()];
      flow.source = draw_attached_node_except(rng, graph, flow.destination);
    }
    matrix.flows_.push_back(flow);
  }

  // ---- arrival times (flow-major; payload ids in generation order) ------
  const double mean = 1.0 / (spec.packet_rate * spec.load);
  const double alpha = std::max(spec.pareto_shape, 1.05);
  // Pareto scale chosen so the mean inter-arrival matches the other
  // processes at the same load: E[X] = x_m * alpha / (alpha - 1).
  const double pareto_xm = mean * (alpha - 1.0) / alpha;
  std::uint32_t next_id = kFirstPayloadId;
  for (std::size_t f = 0; f < matrix.flows_.size(); ++f) {
    double t = 0.0;
    if (spec.arrival == TrafficSpec::Arrival::kCbr)
      t = rng.uniform01() * mean;  // per-flow phase; then a fixed interval
    while (t < spec.duration) {
      matrix.packets_.push_back(Packet{t, f, next_id++});
      switch (spec.arrival) {
        case TrafficSpec::Arrival::kPoisson:
          t += -mean * std::log(1.0 - rng.uniform01());
          break;
        case TrafficSpec::Arrival::kCbr:
          t += mean;
          break;
        case TrafficSpec::Arrival::kPareto:
          t += pareto_xm /
               std::pow(1.0 - rng.uniform01(), 1.0 / alpha);
          break;
        case TrafficSpec::Arrival::kNone:
          return matrix;  // unreachable: active() excluded it
      }
    }
  }
  std::sort(matrix.packets_.begin(), matrix.packets_.end(),
            [](const Packet& a, const Packet& b) {
              if (a.offset != b.offset) return a.offset < b.offset;
              return a.payload_id < b.payload_id;
            });
  return matrix;
}

void ContendedMedium::reset(const TrafficSpec* spec) {
  spec_ = spec;
  active_ = spec != nullptr && spec->active();
  busy_until_.clear();
}

double ContendedMedium::admit(NodeId from, NodeId to,
                              const std::vector<std::byte>& bytes,
                              double now) {
  const bool data = is_data_frame(bytes);
  const double frame_bytes = static_cast<double>(
      bytes.size() + (data ? spec_->packet_bytes : 0));

  const LinkQos* qos = sim_->network().edge_qos(from, to);
  const double scale = qos != nullptr && qos->bandwidth > 0.0
                           ? qos->bandwidth
                           : 1.0;
  const double capacity = spec_->link_capacity * scale;

  double& busy_until = busy_until_[directed_key(from, to)];
  const double backlog_bytes =
      std::max(0.0, busy_until - now) * capacity;
  if (backlog_bytes + frame_bytes >
      static_cast<double>(spec_->queue_bytes)) {
    trace_->frames_queue_dropped += 1;
    if (data) {
      // First drop reason wins, mirroring OlsrNode::mark_drop — a packet
      // tail-dropped at its first congested hop stays a queue drop even
      // if a retransmitted duplicate later dies differently.
      const auto it =
          trace_->journeys.find(peek_data_payload_id(bytes));
      if (it != trace_->journeys.end() && !it->second.delivered &&
          it->second.drop == TraceStats::Journey::Drop::kNone)
        it->second.drop = TraceStats::Journey::Drop::kQueueDrop;
    }
    return -1.0;
  }
  busy_until = std::max(now, busy_until) + frame_bytes / capacity;
  return busy_until - now;
}

}  // namespace qolsr
