#pragma once

#include <cstddef>
#include <vector>

#include "graph/node_id.hpp"

namespace qolsr {

/// One scheduled adversity the Simulator injects into a running network
/// (Simulator::inject). Victims are either named explicitly (tests, ad-hoc
/// experiments) or drawn per run from the simulator's fault RNG stream —
/// seeded from the run seed, so a schedule replays identically for every
/// protocol of a run and for every thread count.
struct FaultIncident {
  enum class Kind {
    kLinkFlap,   ///< take radio links down (they heal after `duration`)
    kNodeCrash,  ///< crash whole nodes, losing all soft state
    kPartition,  ///< block every frame crossing the id-halves boundary
  };
  Kind kind = Kind::kLinkFlap;
  /// Random victims (links or nodes) drawn when none is named explicitly.
  std::size_t count = 1;
  /// Explicit crash victim (kNodeCrash); kInvalidNode draws randomly.
  NodeId node = kInvalidNode;
  /// Explicit flap victim link (kLinkFlap); kInvalidNode draws randomly.
  NodeId link_u = kInvalidNode;
  NodeId link_v = kInvalidNode;
  /// Seconds until the fault auto-heals (crash → restart, link/partition
  /// back up); <= 0 makes it permanent for the rest of the run.
  double duration = 10.0;

  bool explicit_victim() const {
    return kind == Kind::kNodeCrash ? node != kInvalidNode
                                    : link_u != kInvalidNode &&
                                          link_v != kInvalidNode;
  }
};

/// Per-link Bernoulli loss override (undirected); takes precedence over
/// FaultPlan::loss_rate on that link. rate 1.0 silences the link entirely
/// without touching the ground-truth graph — the soft-state expiry tests
/// kill a node's HELLOs this way.
struct LinkLossSpec {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  double rate = 0.0;
};

/// Declarative, seeded fault schedule for one packet-backend run: ambient
/// per-delivery Bernoulli frame loss (global rate + per-link overrides)
/// applied by the LossyMedium on every delivery, plus discrete incidents
/// the run driver injects after convergence (re-convergence is measured
/// per incident). An inactive plan (the default) is contractually
/// invisible: the medium takes the loss-free fast path, draws no random
/// numbers, and the run is byte-identical to a run with no plan at all.
struct FaultPlan {
  /// P(any individual frame delivery is lost), in [0, 1].
  double loss_rate = 0.0;
  std::vector<LinkLossSpec> link_loss;
  std::vector<FaultIncident> incidents;

  bool active() const {
    return loss_rate > 0.0 || !link_loss.empty() || !incidents.empty();
  }
};

}  // namespace qolsr
