#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "olsr/selector.hpp"
#include "proto/duplicate_set.hpp"
#include "proto/messages.hpp"
#include "proto/neighbor_tables.hpp"
#include "proto/protocol_timing.hpp"
#include "proto/topology_base.hpp"
#include "routing/routing_table.hpp"
#include "sim/adversary.hpp"
#include "sim/invariants.hpp"
#include "sim/medium.hpp"
#include "sim/mutation_clock.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace qolsr {

/// Per-node configuration: the shared ProtocolTiming constants (the one
/// struct both the Simulator and the wire daemon consume — see
/// proto/protocol_timing.hpp) plus the node-local TTL knobs.
struct NodeConfig : ProtocolTiming {
  std::uint8_t tc_ttl = 64;
  std::uint8_t data_ttl = 64;
};

/// One OLSR/QOLSR node: HELLO link sensing, the two selection roles
/// (flooding MPRs + advertised neighbor set), TC origination and
/// MPR-forwarding, topology base, and QoS data forwarding.
///
/// The selection heuristics are plugged in, so the same state machine runs
/// original OLSR (flooding set == ANS == RFC 3626 MPR), QOLSR (both ==
/// MPR-2), or the split designs where the RFC MPR set floods while
/// topology-filtering/FNBP pick what is advertised (paper §II–III).
class OlsrNode {
 public:
  /// Computes the QoS next hop toward a destination on a knowledge graph —
  /// bound to the metric by the simulator (e.g.
  /// compute_next_hop<BandwidthMetric>). Returns kInvalidNode when the
  /// destination is unreachable.
  using RouteFn = std::function<NodeId(const Graph&, NodeId, NodeId)>;

  /// The selectors and the route function are borrowed, not copied — the
  /// Simulator owns them and outlives its nodes, and `reset` can rebind
  /// them without reconstructing the node. The deleted rvalue overloads
  /// keep a temporary RouteFn (e.g. a lambda literal converting to
  /// std::function at the call site) from silently dangling.
  OlsrNode(NodeId id, Medium& medium, TraceStats& trace,
           const AnsSelector& flooding_selector,
           const AnsSelector& ans_selector, const RouteFn& route_fn,
           const NodeConfig& config, std::uint64_t seed);
  OlsrNode(NodeId id, Medium& medium, TraceStats& trace,
           const AnsSelector& flooding_selector,
           const AnsSelector& ans_selector, RouteFn&& route_fn,
           const NodeConfig& config, std::uint64_t seed) = delete;

  /// Per-run reset of a reused node: forgets every table, rebinds the
  /// heuristics, and re-derives the RNG stream from `seed` exactly as
  /// construction would — a reset node is indistinguishable from a fresh
  /// one. Does not reschedule ticks; call `start` afterwards.
  void reset(const AnsSelector& flooding_selector,
             const AnsSelector& ans_selector, const RouteFn& route_fn,
             const NodeConfig& config, std::uint64_t seed);
  void reset(const AnsSelector& flooding_selector,
             const AnsSelector& ans_selector, RouteFn&& route_fn,
             const NodeConfig& config, std::uint64_t seed) = delete;

  /// Schedules the first HELLO and TC (with per-node jitter).
  void start();

  /// Crash-fault semantics (driven by Simulator::inject): a crashed node
  /// loses all protocol soft state — neighbor tables, topology base,
  /// duplicate set, selections — and goes silent; its timer wheel keeps
  /// ticking (drawing the same jitter stream, so a crash never perturbs
  /// the run's RNG sequencing) but every tick body and reception is
  /// skipped until restart. The message sequence counters survive, the
  /// RFC's "stable storage" assumption: a restarted node's first TC must
  /// not be rejected as stale by neighbors still holding its pre-crash
  /// ANSN and duplicate-set entries.
  void crash();
  void restart();
  bool alive() const { return alive_; }

  /// Wires the network-wide mutation clock (owned by the Simulator): every
  /// digest-visible state change of this node is reported the instant it
  /// happens. Nullptr (the default) disarms the reporting — standalone
  /// node tests pay nothing.
  void set_mutation_clock(MutationClock* clock) { mutations_ = clock; }

  /// Adversary wiring (driven by Simulator::reset when an AdversarySpec is
  /// active; reset() reverts both). A misbehaving node draws its lie
  /// parameters from a dedicated adversary-salted stream of the run seed —
  /// honest nodes' RNG streams are never perturbed, so an inactive spec
  /// stays byte-identical. The monitor pointer arms the runtime invariant
  /// checks; honest runs carry nullptr and pay nothing.
  void set_role(AdversaryKind role, std::uint64_t seed);
  AdversaryKind role() const { return role_; }
  void set_monitor(InvariantMonitor* monitor) { monitor_ = monitor; }

  /// MAC upcall for any packet addressed to or overheard by this node.
  void on_receive(NodeId from, const std::vector<std::byte>& bytes);

  /// Injects one data packet to route toward `destination`.
  void send_data(NodeId destination, std::uint32_t payload_id);

  // -- Inspection (integration tests compare these against the oracle) --
  NodeId id() const { return id_; }
  const NeighborTables& tables() const { return tables_; }
  const TopologyBase& topology() const { return topology_; }
  const std::vector<NodeId>& flooding_mpr() const { return flooding_mpr_; }
  const std::vector<NodeId>& ans() const { return ans_; }
  /// Knowledge graph the node routes on: TC topology merged with its own
  /// HELLO-derived local view. Cached: the returned reference stays valid
  /// (and the rebuild is skipped) until the next protocol mutation — TC
  /// accept with changed content, neighbor-table change, soft-state
  /// expiry, crash/restart — so steady-state forwarding costs two
  /// comparisons per frame instead of a Graph materialization per frame.
  /// The reference is invalidated by any subsequent protocol event.
  const Graph& knowledge_graph();

  /// Folds the node's protocol state (selection results, link state,
  /// topology base — no timers) into a running digest. Equal across steps
  /// ⇔ the node's converged-state snapshot did not change; the Simulator's
  /// convergence detector compares the fold over all nodes.
  std::uint64_t state_digest(std::uint64_t h) const;

  /// Standalone digest of the node's *converged* protocol state for
  /// cross-process comparison: selection results, link state with QoS
  /// bits, neighbor advert tables, and the topology base with QoS — but
  /// no timers, no ANSN, no sequence counters, no duplicate-set history.
  /// On a loss-free medium the converged fixpoint is a pure function of
  /// (topology, selectors), so a wire daemon on real sockets and real
  /// timers folds to the same value as the in-process Simulator for the
  /// same deployment — the byte-for-byte equality `--backend=wire`
  /// asserts per node.
  std::uint64_t converged_digest() const;

 private:
  void hello_tick();
  void tc_tick();
  void topology_purge_tick();
  /// Ensures a purge event is pending whenever the topology base holds
  /// entries (the lazy-deletion timer: one pending event per node, fired
  /// at a past earliest-deadline, rescheduled at the then-current one).
  void schedule_topology_purge();
  /// Reports one digest-visible state change to the network clock.
  void note_mutation();
  void recompute_selection();
  void lie_in_tc(TcMessage& tc);
  void replay_captured_tc();
  std::vector<LinkAdvert> build_hello_links() const;
  void handle_hello(const HelloMessage& hello, NodeId from);
  void handle_tc(const PacketHeader& header, const TcMessage& tc,
                 NodeId from);
  void handle_data(PacketHeader header, const DataMessage& data);
  void forward_or_deliver(PacketHeader header, const DataMessage& data);
  void mark_drop(std::uint32_t payload_id, TraceStats::Journey::Drop reason);

  NodeId id_;
  Medium& medium_;
  TraceStats& trace_;
  const AnsSelector* flooding_selector_;
  const AnsSelector* ans_selector_;
  const RouteFn* route_fn_;
  NodeConfig config_;
  util::Rng rng_;

  NeighborTables tables_;
  TopologyBase topology_;
  DuplicateSet duplicates_;
  std::vector<NodeId> flooding_mpr_;
  std::vector<NodeId> ans_;
  std::uint16_t ansn_ = 0;
  std::vector<NodeId> last_advertised_;
  std::uint16_t next_sequence_ = 0;
  bool alive_ = true;  ///< false between crash() and restart()
  MutationClock* mutations_ = nullptr;  ///< network clock; may be null

  // ---- cached knowledge view (see knowledge_graph) ----------------------
  Graph knowledge_;              ///< reusable storage, rebuilt on demand
  bool knowledge_valid_ = false;
  /// Per-destination next-hop memo over knowledge_: entry `kRouteNotCached`
  /// means "not computed this epoch"; anything else (including
  /// kInvalidNode = no route) is the memoized result of route_fn_ on the
  /// current cached view. Reset whenever knowledge_ is rebuilt, so a hit is
  /// byte-identical to re-invoking the route function — forwarding a flow
  /// of packets costs one route computation per (epoch, destination)
  /// instead of one full Dijkstra per traversed hop.
  std::vector<NodeId> route_cache_;
  /// Earliest hold-time deadline among the topology entries baked into
  /// knowledge_: past it the cached view could include an entry the
  /// validity-aware read would exclude, so the next query rebuilds.
  double knowledge_fresh_until_ = 0.0;
  /// Whether a topology purge event is pending on the event queue. Events
  /// cannot be cancelled, so this stays true until the event fires; the
  /// simulator clears the queue before reset, which resets it.
  bool purge_pending_ = false;

  // ---- adversary state (inert while role_ == kHonest) -------------------
  AdversaryKind role_ = AdversaryKind::kHonest;
  InvariantMonitor* monitor_ = nullptr;
  util::Rng adv_rng_{1};  ///< lie parameters; a stream honest nodes never use
  std::vector<NodeId> phantom_targets_;  ///< liar: stable fabricated links
  bool phantoms_drawn_ = false;
  bool captured_valid_ = false;  ///< replayer: holds a foreign TC to re-emit
  PacketHeader captured_header_;
  TcMessage captured_tc_;
  std::uint16_t replay_count_ = 0;
};

}  // namespace qolsr
