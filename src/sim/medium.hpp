#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "graph/node_id.hpp"
#include "metrics/link_qos.hpp"
#include "sim/event_queue.hpp"

namespace qolsr {

/// What a protocol node sees of the outside world: a clock, a scheduler,
/// and an ideal MAC (paper §IV-A: "no interferences and no packet
/// collisions"). Implemented by the Simulator; mocked in unit tests.
class Medium {
 public:
  virtual ~Medium() = default;

  virtual SimTime now() const = 0;
  virtual void schedule_in(SimTime delay, std::function<void()> callback) = 0;

  /// Delivers `bytes` to every node within radio range of `from` after the
  /// propagation delay. Loss-free and collision-free.
  virtual void broadcast(NodeId from, std::vector<std::byte> bytes) = 0;

  /// Delivers to one in-range neighbor (data forwarding). Packets to
  /// out-of-range nodes vanish (counted by the caller as drops).
  virtual void unicast(NodeId from, NodeId to, std::vector<std::byte> bytes) = 0;

  /// Ground-truth measured QoS of the link (a,b); nullptr when out of
  /// range. Link-quality measurement is outside the paper's scope, so the
  /// simulator hands nodes the true value.
  virtual const LinkQos* measured_qos(NodeId a, NodeId b) const = 0;

  virtual std::size_t node_count() const = 0;
};

}  // namespace qolsr
