#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "graph/node_id.hpp"
#include "metrics/link_qos.hpp"
#include "sim/event_queue.hpp"
#include "sim/scheduler.hpp"

namespace qolsr {

/// One immutable wire-format packet, shared by every delivery it fans out
/// to: a broadcast to 35 neighbors schedules 35 deliveries of the *same*
/// buffer instead of 35 byte-vector copies. The const element type makes
/// the sharing safe by construction — no receiver can mutate a buffer
/// another delivery still reads.
using SharedBytes = std::shared_ptr<const std::vector<std::byte>>;

/// Seals a freshly serialized packet into the shared immutable form.
inline SharedBytes make_shared_bytes(std::vector<std::byte> bytes) {
  return std::make_shared<const std::vector<std::byte>>(std::move(bytes));
}

/// What a protocol node sees of the outside world: a clock + scheduler
/// (the Scheduler seam — virtual time in the Simulator, wall-clock time in
/// the wire daemon) and an ideal MAC (paper §IV-A: "no interferences and
/// no packet collisions"). Implemented by the Simulator and by the net/
/// wire transport; mocked in unit tests.
class Medium : public Scheduler {
 public:
  /// Delivers `bytes` to every node within radio range of `from` after the
  /// propagation delay. Loss-free and collision-free; all deliveries share
  /// the one immutable buffer.
  virtual void broadcast(NodeId from, SharedBytes bytes) = 0;

  /// Delivers to one in-range neighbor (data forwarding). Packets to
  /// out-of-range nodes vanish (counted by the caller as drops).
  virtual void unicast(NodeId from, NodeId to, SharedBytes bytes) = 0;

  /// Ground-truth measured QoS of the link (a,b); nullptr when out of
  /// range. Link-quality measurement is outside the paper's scope, so the
  /// simulator hands nodes the true value.
  virtual const LinkQos* measured_qos(NodeId a, NodeId b) const = 0;

  virtual std::size_t node_count() const = 0;
};

}  // namespace qolsr
