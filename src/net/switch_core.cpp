#include "net/switch_core.hpp"

#include <algorithm>

namespace qolsr::net {

std::size_t SwitchCore::add_port() {
  ports_.emplace_back();
  ports_.back().live = true;
  return ports_.size() - 1;
}

void SwitchCore::remove_port(std::size_t port) {
  if (port >= ports_.size() || !ports_[port].live) return;
  if (ports_[port].id != kInvalidNode) port_by_id_.erase(ports_[port].id);
  ports_[port] = Port{};  // live=false, id=kInvalidNode, impairment reset
}

bool SwitchCore::port_live(std::size_t port) const {
  return port < ports_.size() && ports_[port].live;
}

std::size_t SwitchCore::live_ports() const {
  return static_cast<std::size_t>(
      std::count_if(ports_.begin(), ports_.end(),
                    [](const Port& p) { return p.live; }));
}

void SwitchCore::set_link(NodeId a, NodeId b) {
  if (a == b) return;
  links_.insert({std::min(a, b), std::max(a, b)});
}

void SwitchCore::set_impairment(const Impairment& impairment) {
  const std::size_t port = port_of(impairment.id);
  if (port == SIZE_MAX) return;
  ports_[port].loss = impairment.loss;
  ports_[port].delay = impairment.delay;
  ports_[port].loss_rng.reseed(impairment.seed);
}

std::size_t SwitchCore::port_of(NodeId id) const {
  const auto it = port_by_id_.find(id);
  return it == port_by_id_.end() ? SIZE_MAX : it->second;
}

NodeId SwitchCore::id_of(std::size_t port) const {
  return port < ports_.size() ? ports_[port].id : kInvalidNode;
}

bool SwitchCore::loses(std::size_t port) {
  Port& p = ports_[port];
  return p.loss > 0.0 && p.loss_rng.uniform01() < p.loss;
}

void SwitchCore::deliver_to(std::size_t src, std::size_t dst,
                            std::vector<Delivery>& out) {
  // The loss gate draws once per forwarded *copy* (FaultPlan's Bernoulli
  // per-frame semantics applied at fan-out granularity), so a broadcast
  // under loss can reach some neighbors and miss others — exactly what a
  // lossy radio does.
  if (loses(src)) return;
  out.push_back({dst, ports_[src].delay});
}

bool SwitchCore::route(std::size_t port, const Frame& frame,
                       std::vector<Delivery>& out) {
  if (!port_live(port)) return true;

  if (frame.kind == kKindRegister) {
    // Late re-registration rebinds; a stale mapping to this port is gone.
    if (ports_[port].id != kInvalidNode) port_by_id_.erase(ports_[port].id);
    ports_[port].id = frame.sender;
    port_by_id_[frame.sender] = port;
    return true;
  }

  if (frame.dest == kSwitchDest) {
    if (frame.kind != kKindControl) return true;
    switch (peek_control_op(frame.payload)) {
      case ControlOp::kLink:
        if (const auto link = decode_link(frame.payload))
          set_link(link->first, link->second);
        return true;
      case ControlOp::kImpair:
        if (const auto imp = decode_impair(frame.payload))
          set_impairment(*imp);
        return true;
      case ControlOp::kShutdown:
        return false;
      default:
        return true;  // unknown op addressed to the switch: ignored
    }
  }

  if (frame.dest != kBroadcastDest) {
    const std::size_t dst = port_of(frame.dest);
    if (dst == SIZE_MAX || dst == port) return true;
    if (frame.kind == kKindPacket) {
      // Radio scope: a unicast to an out-of-range node vanishes, exactly
      // like the Simulator's ideal MAC.
      const NodeId a = ports_[port].id, b = frame.dest;
      if (!links_.contains({std::min(a, b), std::max(a, b)})) return true;
    }
    deliver_to(port, dst, out);
    return true;
  }

  // Broadcast: packet frames fan out to the sender's radio neighborhood,
  // never back to the sender. (Control broadcasts are not part of the
  // protocol; they fan out nowhere.)
  if (frame.kind != kKindPacket) return true;
  const NodeId self = ports_[port].id;
  for (const auto& [id, dst] : port_by_id_) {  // ordered: deterministic
    if (dst == port) continue;
    if (!links_.contains({std::min(self, id), std::max(self, id)})) continue;
    deliver_to(port, dst, out);
  }
  return true;
}

}  // namespace qolsr::net
