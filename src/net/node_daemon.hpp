#pragma once

#include <string>

#include "graph/node_id.hpp"

namespace qolsr::net {

/// Runs one OLSR node as a real process: connects to the software switch
/// at `path`, registers as plug `id`, waits for the harness's Configure /
/// Start control frames, then runs the *unmodified* OlsrNode state machine
/// (src/sim/olsr_node) against a wall-clock Medium — `now()` is seconds
/// since the daemon started, `schedule_in` arms a real timer served by the
/// poll loop, and broadcast/unicast emit wire frames through the switch.
/// The protocol code cannot tell it left the simulator; that is the
/// Transport seam's whole point.
///
/// Returns the process exit code: 0 after an orderly Shutdown, nonzero on
/// a connect/configure failure or a dead switch.
int run_node_daemon(const std::string& path, NodeId id);

}  // namespace qolsr::net
