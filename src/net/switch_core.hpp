#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <vector>

#include "graph/node_id.hpp"
#include "net/wire_format.hpp"
#include "util/rng.hpp"

namespace qolsr::net {

/// The software switch's forwarding brain, separated from its sockets so
/// the routing rules are unit-testable with plain frames (the vde2 shape:
/// the switch engine knows ports and hub/steering rules; the process
/// wrapper owns fds and the poll loop).
///
/// Ports are small dense indices handed out by add_port (the process
/// wrapper maps fd ⇄ port). A plug becomes addressable when its first
/// kKindRegister frame names its id. Packet frames are *radio-scoped*: a
/// broadcast fans out only to ports adjacent to the sender in the uploaded
/// topology (the switch plays the role of the shared ether with radio
/// range), and a unicast to a non-adjacent destination vanishes exactly
/// like the Simulator's ideal MAC drops out-of-range sends. Control
/// frames are pure steering — the harness↔daemon RPC channel — and ignore
/// adjacency.
///
/// Optional per-port impairments reuse FaultPlan semantics: a seeded
/// Bernoulli loss gate per forwarded copy plus a fixed extra delay,
/// applied to frames *from* the impaired plug. The loss stream is drawn
/// per source port in registration order, so a given (seed, traffic)
/// sequence drops the same copies on every run — determinism the switch
/// tests pin.
class SwitchCore {
 public:
  /// One routed output copy: deliver `frame` (re-encoded by the caller) to
  /// `port` after `delay` seconds (0 for unimpaired sources).
  struct Delivery {
    std::size_t port = 0;
    double delay = 0.0;
  };

  /// Registers a new (not yet addressable) port; returns its index.
  std::size_t add_port();

  /// Unplugs a port: its id mapping, adjacency role and impairment state
  /// drop; the index is never reused.
  void remove_port(std::size_t port);

  bool port_live(std::size_t port) const;
  std::size_t live_ports() const;

  /// Adjacency upload (ControlOp::kLink): nodes a and b are in radio range.
  void set_link(NodeId a, NodeId b);

  /// Impairment upload (ControlOp::kImpair) for frames from plug `id`.
  void set_impairment(const Impairment& impairment);

  /// Routes one inbound frame from `port`, appending zero or more
  /// deliveries to `out` (not cleared — callers batch). Register frames
  /// bind the port's id and produce no output. Frames addressed to
  /// kSwitchDest are consumed here (adjacency/impairment/shutdown ops).
  /// Returns false when the frame asked the switch itself to shut down.
  bool route(std::size_t port, const Frame& frame,
             std::vector<Delivery>& out);

  /// The port a node id is plugged into (SIZE_MAX when unknown).
  std::size_t port_of(NodeId id) const;
  /// The id registered on a port (kInvalidNode before registration).
  NodeId id_of(std::size_t port) const;

 private:
  struct Port {
    bool live = false;
    NodeId id = kInvalidNode;
    // Impairment of frames *from* this plug (inert by default).
    double loss = 0.0;
    double delay = 0.0;
    util::Rng loss_rng{1};
  };

  bool loses(std::size_t port);  ///< draws the source port's loss gate
  void deliver_to(std::size_t src, std::size_t dst,
                  std::vector<Delivery>& out);

  std::vector<Port> ports_;
  std::map<NodeId, std::size_t> port_by_id_;
  std::set<std::pair<NodeId, NodeId>> links_;  ///< normalized (min,max)
};

}  // namespace qolsr::net
