#include "net/node_daemon.hpp"

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include <poll.h>
#include <time.h>

#include "metrics/metric_id.hpp"
#include "net/socket.hpp"
#include "net/wire_format.hpp"
#include "olsr/selector_registry.hpp"
#include "sim/medium.hpp"
#include "sim/mutation_clock.hpp"
#include "sim/olsr_node.hpp"
#include "sim/trace.hpp"

namespace qolsr::net {

namespace {

double monotonic_now() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// The wall-clock side of the Scheduler seam: the Medium a daemon's
/// OlsrNode runs against. `now()` is seconds since construction on the
/// monotonic clock; `schedule_in` arms a timer in the daemon's min-heap
/// (served between socket polls); broadcast/unicast wrap the serialized
/// OLSR packet in a wire frame and hand it to the switch. The protocol
/// code is byte-identical to what the Simulator runs — only the clock and
/// the transport changed underneath it.
class WireMedium final : public Medium {
 public:
  WireMedium(Fd& sock, const NodeSetup& setup)
      : sock_(sock), setup_(setup), start_(monotonic_now()) {
    for (const NodeSetup::Neighbor& n : setup.neighbors)
      neighbor_qos_[n.id] = n.qos;
  }

  SimTime now() const override { return monotonic_now() - start_; }

  void schedule_in(SimTime delay, std::function<void()> callback) override {
    timers_.push({now() + delay, next_seq_++, std::move(callback)});
  }

  void broadcast(NodeId from, SharedBytes bytes) override {
    send_packet(from, kBroadcastDest, *bytes);
  }

  void unicast(NodeId from, NodeId to, SharedBytes bytes) override {
    send_packet(from, to, *bytes);
  }

  const LinkQos* measured_qos(NodeId a, NodeId b) const override {
    // The daemon only knows its own radio links (the harness supplies the
    // ground truth, exactly like the Simulator hands nodes true values).
    const NodeId peer = a == setup_.id ? b : (b == setup_.id ? a : kInvalidNode);
    const auto it = neighbor_qos_.find(peer);
    return it == neighbor_qos_.end() ? nullptr : &it->second;
  }

  std::size_t node_count() const override { return setup_.node_count; }

  /// Seconds until the earliest pending timer (nullopt when none).
  std::optional<double> until_next_timer() const {
    if (timers_.empty()) return std::nullopt;
    return timers_.top().due - now();
  }

  /// Fires every timer that is due. One pass: a callback that re-arms
  /// itself (every protocol tick does) runs again only on a later pass.
  void fire_due() {
    while (!timers_.empty() && timers_.top().due <= now()) {
      // Move the callback out before popping: the pop invalidates the ref.
      auto cb = std::move(const_cast<Timer&>(timers_.top()).callback);
      timers_.pop();
      cb();
    }
  }

 private:
  struct Timer {
    double due = 0.0;
    std::uint64_t seq = 0;  ///< FIFO among equal deadlines
    std::function<void()> callback;
    bool operator>(const Timer& other) const {
      return due != other.due ? due > other.due : seq > other.seq;
    }
  };

  void send_packet(NodeId from, NodeId dest,
                   const std::vector<std::byte>& payload) {
    Frame f;
    f.kind = kKindPacket;
    f.sender = from;
    f.dest = dest;
    f.timestamp = now();
    f.payload = payload;
    send_datagram(sock_, encode_frame(f));
  }

  Fd& sock_;
  const NodeSetup setup_;
  double start_;
  std::map<NodeId, LinkQos> neighbor_qos_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::uint64_t next_seq_ = 0;
};

void send_control(Fd& sock, NodeId self, NodeId dest,
                  std::vector<std::byte> payload) {
  Frame f;
  f.kind = kKindControl;
  f.sender = self;
  f.dest = dest;
  f.payload = std::move(payload);
  send_datagram(sock, encode_frame(f));
}

}  // namespace

int run_node_daemon(const std::string& path, NodeId id) {
  Fd sock = connect_unix(path, 10.0);
  if (!sock.valid()) return 1;

  {
    Frame reg;
    reg.kind = kKindRegister;
    reg.sender = id;
    reg.dest = kSwitchDest;
    if (!send_datagram(sock, encode_frame(reg))) return 1;
  }

  // Phase 1: blocking wait for the harness's Configure.
  NodeSetup setup;
  for (;;) {
    const auto datagram = recv_datagram(sock);
    if (!datagram.has_value()) return 1;  // switch died before config
    const auto frame = decode_frame(*datagram);
    if (!frame.has_value() || frame->kind != kKindControl) continue;
    if (peek_control_op(frame->payload) == ControlOp::kShutdown) return 0;
    if (const auto s = decode_configure(frame->payload)) {
      setup = *s;
      break;
    }
  }
  if (setup.id != id) return 1;

  // Resolve the protocol through the same registry calls the packet
  // backend uses; unknown names are a config error, not a crash.
  const auto& registry = SelectorRegistry::builtin();
  if (!registry.contains(setup.protocol)) return 1;
  const auto metric = static_cast<MetricId>(setup.metric);
  const auto ans_selector = registry.create(setup.protocol, metric);
  const auto flooding_selector =
      registry.create_flooding(setup.protocol, metric);

  NodeConfig config;
  static_cast<ProtocolTiming&>(config) = setup.timing;
  config.tc_ttl = setup.tc_ttl;
  config.data_ttl = setup.data_ttl;

  WireMedium medium(sock, setup);
  TraceStats trace;
  MutationClock mutations;
  mutations.bind(&trace);
  mutations.reset(medium.now());
  // Data forwarding is not exercised over the wire (the equivalence run
  // converges the control plane only), so the route hook is inert.
  const OlsrNode::RouteFn no_routes = [](const Graph&, NodeId, NodeId) {
    return kInvalidNode;
  };
  OlsrNode node(id, medium, trace, *flooding_selector, *ans_selector,
                no_routes, config, setup.seed);
  node.set_mutation_clock(&mutations);

  send_control(sock, id, kControllerId, encode_control(ControlOp::kReady));

  // Phase 2: the real-time event loop — timers and frames, one thread.
  // Reads go nonblocking (drained between timer deadlines); writes keep
  // effectively-blocking semantics via send_datagram's POLLOUT wait.
  set_nonblocking(sock);
  std::vector<std::byte> datagram;
  for (;;) {
    medium.fire_due();
    int timeout_ms = -1;
    if (const auto wait = medium.until_next_timer()) {
      timeout_ms = *wait <= 0.0
                       ? 0
                       : static_cast<int>(*wait * 1000.0) + 1;
    }
    pollfd pfd{sock.get(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) continue;  // EINTR
    if (rc == 0) continue;  // timer due; top of loop fires it

    for (;;) {
      const RecvStatus st = try_recv_datagram(sock, datagram);
      if (st == RecvStatus::kWouldBlock) break;
      if (st == RecvStatus::kClosed) return 1;  // switch vanished
      const auto frame = decode_frame(datagram);
      if (!frame.has_value()) continue;

      if (frame->kind == kKindPacket) {
        node.on_receive(frame->sender, frame->payload);
        continue;
      }
      if (frame->kind != kKindControl) continue;
      switch (peek_control_op(frame->payload)) {
        case ControlOp::kStart:
          node.start();
          break;
        case ControlOp::kStatusReq: {
          StatusReport report;
          report.mutation_count = mutations.count();
          report.last_mutation = mutations.last_at();
          report.digest = node.converged_digest();
          report.flooding_size =
              static_cast<std::uint16_t>(node.flooding_mpr().size());
          report.ans_size = static_cast<std::uint16_t>(node.ans().size());
          send_control(sock, id, kControllerId, encode_status(report));
          break;
        }
        case ControlOp::kShutdown:
          return 0;
        default:
          break;
      }
    }
  }
}

}  // namespace qolsr::net
