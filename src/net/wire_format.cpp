#include "net/wire_format.hpp"

#include "proto/wire_endian.hpp"

namespace qolsr::net {

namespace {
using wire::Reader;
using wire::Writer;

void write_qos(Writer& w, const LinkQos& q) {
  w.f64(q.bandwidth);
  w.f64(q.delay);
  w.f64(q.jitter);
  w.f64(q.loss_cost);
  w.f64(q.energy);
  w.f64(q.buffers);
}

bool read_qos(Reader& r, LinkQos& q) {
  return r.f64(q.bandwidth) && r.f64(q.delay) && r.f64(q.jitter) &&
         r.f64(q.loss_cost) && r.f64(q.energy) && r.f64(q.buffers);
}

void write_string(Writer& w, const std::string& s) {
  w.u8(static_cast<std::uint8_t>(s.size()));
  for (char c : s) w.u8(static_cast<std::uint8_t>(c));
}

bool read_string(Reader& r, std::string& s) {
  std::uint8_t len = 0;
  if (!r.u8(len)) return false;
  s.clear();
  s.reserve(len);
  for (std::uint8_t i = 0; i < len; ++i) {
    std::uint8_t c = 0;
    if (!r.u8(c)) return false;
    s.push_back(static_cast<char>(c));
  }
  return true;
}

}  // namespace

std::vector<std::byte> encode_frame(const Frame& frame) {
  std::vector<std::byte> out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  Writer w(out);
  w.u8(kFrameMagic);
  w.u8(kFrameVersion);
  w.u8(frame.kind);
  w.u32(frame.sender);
  w.u32(frame.dest);
  w.f64(frame.timestamp);
  w.u16(static_cast<std::uint16_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

std::optional<Frame> decode_frame(const std::byte* data, std::size_t size) {
  Reader r(data, size);
  std::uint8_t magic = 0, version = 0;
  Frame f;
  std::uint16_t payload_len = 0;
  if (!r.u8(magic) || !r.u8(version) || !r.u8(f.kind) || !r.u32(f.sender) ||
      !r.u32(f.dest) || !r.f64(f.timestamp) || !r.u16(payload_len))
    return std::nullopt;
  if (magic != kFrameMagic || version != kFrameVersion) return std::nullopt;
  if (f.kind < kKindRegister || f.kind > kKindControl) return std::nullopt;
  // The length prefix must account for every remaining byte: a frame with
  // trailing garbage (or a lying prefix) is rejected, not partially read.
  if (r.remaining() != payload_len) return std::nullopt;
  f.payload.assign(data + (size - payload_len), data + size);
  return f;
}

std::optional<Frame> decode_frame(const std::vector<std::byte>& bytes) {
  return decode_frame(bytes.data(), bytes.size());
}

ControlOp peek_control_op(const std::vector<std::byte>& payload) {
  if (payload.empty()) return static_cast<ControlOp>(0);
  return static_cast<ControlOp>(payload[0]);
}

std::vector<std::byte> encode_control(ControlOp op) {
  std::vector<std::byte> out;
  Writer(out).u8(static_cast<std::uint8_t>(op));
  return out;
}

std::vector<std::byte> encode_configure(const NodeSetup& setup) {
  std::vector<std::byte> out;
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(ControlOp::kConfigure));
  w.u32(setup.id);
  w.u32(setup.node_count);
  w.u64(setup.seed);
  w.f64(setup.timing.hello_interval);
  w.f64(setup.timing.tc_interval);
  w.f64(setup.timing.jitter);
  w.f64(setup.timing.neighbor_hold);
  w.f64(setup.timing.topology_hold);
  w.u8(setup.tc_ttl);
  w.u8(setup.data_ttl);
  w.u8(setup.metric);
  write_string(w, setup.protocol);
  w.u16(static_cast<std::uint16_t>(setup.neighbors.size()));
  for (const NodeSetup::Neighbor& n : setup.neighbors) {
    w.u32(n.id);
    write_qos(w, n.qos);
  }
  return out;
}

std::optional<NodeSetup> decode_configure(const std::vector<std::byte>& p) {
  Reader r(p);
  std::uint8_t op = 0;
  NodeSetup s;
  std::uint16_t count = 0;
  if (!r.u8(op) ||
      op != static_cast<std::uint8_t>(ControlOp::kConfigure) ||
      !r.u32(s.id) || !r.u32(s.node_count) || !r.u64(s.seed) ||
      !r.f64(s.timing.hello_interval) || !r.f64(s.timing.tc_interval) ||
      !r.f64(s.timing.jitter) || !r.f64(s.timing.neighbor_hold) ||
      !r.f64(s.timing.topology_hold) || !r.u8(s.tc_ttl) ||
      !r.u8(s.data_ttl) || !r.u8(s.metric) ||
      !read_string(r, s.protocol) || !r.u16(count))
    return std::nullopt;
  s.neighbors.resize(count);
  for (NodeSetup::Neighbor& n : s.neighbors)
    if (!r.u32(n.id) || !read_qos(r, n.qos)) return std::nullopt;
  if (!r.done()) return std::nullopt;
  return s;
}

std::vector<std::byte> encode_status(const StatusReport& report) {
  std::vector<std::byte> out;
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(ControlOp::kStatus));
  w.u64(report.mutation_count);
  w.f64(report.last_mutation);
  w.u64(report.digest);
  w.u16(report.flooding_size);
  w.u16(report.ans_size);
  return out;
}

std::optional<StatusReport> decode_status(const std::vector<std::byte>& p) {
  Reader r(p);
  std::uint8_t op = 0;
  StatusReport s;
  if (!r.u8(op) || op != static_cast<std::uint8_t>(ControlOp::kStatus) ||
      !r.u64(s.mutation_count) || !r.f64(s.last_mutation) ||
      !r.u64(s.digest) || !r.u16(s.flooding_size) || !r.u16(s.ans_size) ||
      !r.done())
    return std::nullopt;
  return s;
}

std::vector<std::byte> encode_link(NodeId a, NodeId b) {
  std::vector<std::byte> out;
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(ControlOp::kLink));
  w.u32(a);
  w.u32(b);
  return out;
}

std::optional<std::pair<NodeId, NodeId>> decode_link(
    const std::vector<std::byte>& p) {
  Reader r(p);
  std::uint8_t op = 0;
  NodeId a = 0, b = 0;
  if (!r.u8(op) || op != static_cast<std::uint8_t>(ControlOp::kLink) ||
      !r.u32(a) || !r.u32(b) || !r.done())
    return std::nullopt;
  return std::make_pair(a, b);
}

std::vector<std::byte> encode_impair(const Impairment& impairment) {
  std::vector<std::byte> out;
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(ControlOp::kImpair));
  w.u32(impairment.id);
  w.f64(impairment.loss);
  w.f64(impairment.delay);
  w.u64(impairment.seed);
  return out;
}

std::optional<Impairment> decode_impair(const std::vector<std::byte>& p) {
  Reader r(p);
  std::uint8_t op = 0;
  Impairment i;
  if (!r.u8(op) || op != static_cast<std::uint8_t>(ControlOp::kImpair) ||
      !r.u32(i.id) || !r.f64(i.loss) || !r.f64(i.delay) || !r.u64(i.seed) ||
      !r.done())
    return std::nullopt;
  return i;
}

}  // namespace qolsr::net
