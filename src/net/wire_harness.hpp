#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "metrics/metric_id.hpp"
#include "net/wire_format.hpp"
#include "proto/protocol_timing.hpp"

namespace qolsr::net {

/// One wire run: which deployment to stand up as real processes, which
/// protocol/metric every daemon runs, and how patient to be.
struct WireRunConfig {
  std::string protocol = "olsr_mpr";  ///< SelectorRegistry name
  MetricId metric = MetricId::kBandwidth;
  std::uint64_t seed = 1;
  /// The one timing struct (satellite: shared with SimConfig). Wire runs
  /// default to heavily compressed intervals — the converged fixpoint is
  /// timing-independent, so scaling buys wall-clock speed, not drift; the
  /// caller passes the *same* struct to the comparison Simulator.
  ProtocolTiming timing = ProtocolTiming{}.scaled(0.02);
  /// Hard wall-clock budget for the whole run (spawn → converged digests).
  /// Expired budget kills every child and throws.
  double timeout_seconds = 60.0;
  /// Override the daemon/switch binary paths (tests point them at the
  /// build tree; empty = `qolsr_node`/`qolsr_switch` next to /proc/self/exe,
  /// overridable via QOLSR_NODE_BIN / QOLSR_SWITCH_BIN).
  std::string node_binary;
  std::string switch_binary;
};

/// What the N processes converged to, per node id: the digest the
/// equivalence assertion compares byte-for-byte against
/// Simulator-side OlsrNode::converged_digest(), plus the set sizes the
/// eval backend reports.
struct WireRunResult {
  std::vector<StatusReport> reports;  ///< index == node id
};

/// Spawns the software switch plus one qolsr_node daemon per node of
/// `graph` (Unix SOCK_SEQPACKET under a private temp dir), uploads the
/// adjacency, configures and starts every daemon, waits for quiescence via
/// the control socket (every daemon's mutation count stable across a
/// dwell-spaced poll pair), collects each daemon's converged digest, and
/// tears the whole process tree down. Throws std::runtime_error on
/// timeout, a dead child, or a spawn failure — never leaks children.
WireRunResult run_wire_network(const Graph& graph, const WireRunConfig& config);

/// The bundled-binary discovery used when WireRunConfig paths are empty:
/// $QOLSR_NODE_BIN / $QOLSR_SWITCH_BIN, else `name` next to the running
/// executable.
std::string find_sibling_binary(const char* env_var, const char* name);

}  // namespace qolsr::net
