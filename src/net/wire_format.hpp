#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/node_id.hpp"
#include "metrics/link_qos.hpp"
#include "proto/protocol_timing.hpp"

namespace qolsr::net {

/// Datagram framing for the wire transport (src/net): every message on a
/// switch plug — OLSR packets, plug registration, harness control — is one
/// frame. The layout is UDP-ready (self-describing: versioned magic,
/// length-prefixed payload) even though the Unix SOCK_SEQPACKET transport
/// already preserves message boundaries, so moving a plug onto a UDP
/// socket changes no bytes. All integers little-endian via wire::Writer
/// (proto/wire_endian.hpp) — the same helpers the OLSR codec is pinned
/// with.
///
///   magic u8 ('Q') | version u8 | kind u8 | sender u32 | dest u32 |
///   timestamp f64  | payload_len u16 | payload bytes
struct Frame {
  std::uint8_t kind = 0;
  NodeId sender = kInvalidNode;
  NodeId dest = kInvalidNode;
  double timestamp = 0.0;  ///< sender's clock at emission (diagnostic)
  std::vector<std::byte> payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

inline constexpr std::uint8_t kFrameMagic = 0x51;  // 'Q'
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 1 + 1 + 1 + 4 + 4 + 8 + 2;

/// Frame kinds.
inline constexpr std::uint8_t kKindRegister = 1;  ///< plug announces its id
inline constexpr std::uint8_t kKindPacket = 2;    ///< payload = OLSR codec bytes
inline constexpr std::uint8_t kKindControl = 3;   ///< payload = control message

/// Destination sentinels (top of the NodeId space, below kRouteNotCached
/// = kInvalidNode-1 which olsr_node uses internally; real deployments are
/// orders of magnitude smaller).
inline constexpr NodeId kBroadcastDest = kInvalidNode;
inline constexpr NodeId kSwitchDest = kInvalidNode - 2;    ///< for the switch itself
inline constexpr NodeId kControllerId = kInvalidNode - 3;  ///< the harness plug

std::vector<std::byte> encode_frame(const Frame& frame);

/// Hardened decode: nullopt on bad magic/version/kind, truncation, or a
/// length prefix that disagrees with the datagram size.
std::optional<Frame> decode_frame(const std::byte* data, std::size_t size);
std::optional<Frame> decode_frame(const std::vector<std::byte>& bytes);

// ---------------------------------------------------------------------------
// Control messages (the payload of kKindControl frames). First byte is the
// op; the harness↔daemon RPCs ride through the switch like any other
// unicast, and the switch itself consumes ops addressed to kSwitchDest.

enum class ControlOp : std::uint8_t {
  kConfigure = 1,  ///< harness→daemon: NodeSetup
  kReady = 2,      ///< daemon→harness: configured, timers not yet running
  kStart = 3,      ///< harness→daemon: start the protocol
  kStatusReq = 4,  ///< harness→daemon: report your state
  kStatus = 5,     ///< daemon→harness: StatusReport
  kShutdown = 6,   ///< harness→daemon (or →switch): exit cleanly
  kLink = 7,       ///< harness→switch: adjacency edge (a,b) up
  kImpair = 8,     ///< harness→switch: per-port loss/delay knobs
};

/// Everything a daemon needs to run one OlsrNode: who it is, the world
/// size, the run seed, the shared timing struct (the *same* object the
/// comparison Simulator consumes — satellite: no duplicated constants to
/// drift), the selector pair by registry name, and the measured QoS of
/// its radio links (link measurement is out of the paper's scope; the
/// harness supplies ground truth exactly like the Simulator does).
struct NodeSetup {
  NodeId id = 0;
  std::uint32_t node_count = 0;
  std::uint64_t seed = 1;
  ProtocolTiming timing;
  std::uint8_t tc_ttl = 64;
  std::uint8_t data_ttl = 64;
  std::uint8_t metric = 0;  ///< MetricId the selectors are instantiated for
  /// Registry name of the protocol ("olsr_mpr", "fnbp", …). The daemon
  /// resolves the (flooding, ANS) selector pair through the same
  /// SelectorRegistry calls the packet backend uses, so both sides of the
  /// equivalence run the identical heuristics by construction.
  std::string protocol;
  struct Neighbor {
    NodeId id = 0;
    LinkQos qos;
    friend bool operator==(const Neighbor&, const Neighbor&) = default;
  };
  std::vector<Neighbor> neighbors;

  friend bool operator==(const NodeSetup&, const NodeSetup&) = default;
};

/// What a daemon reports when polled: the monotonic mutation count and
/// exact last-change time of its MutationClock (the harness's quiescence
/// test: counts stable across a dwell-spaced poll pair), its converged
/// digest, and the set sizes the eval backend reports.
struct StatusReport {
  std::uint64_t mutation_count = 0;
  double last_mutation = 0.0;  ///< daemon wall clock, seconds since start
  std::uint64_t digest = 0;
  std::uint16_t flooding_size = 0;
  std::uint16_t ans_size = 0;

  friend bool operator==(const StatusReport&, const StatusReport&) = default;
};

/// Per-port impairment knobs (FaultPlan semantics: seeded Bernoulli frame
/// loss plus a fixed extra forwarding delay), applied by the switch to
/// frames *from* the named plug.
struct Impairment {
  NodeId id = 0;
  double loss = 0.0;   ///< P(drop) per forwarded copy
  double delay = 0.0;  ///< seconds of extra latency per surviving copy
  std::uint64_t seed = 1;

  friend bool operator==(const Impairment&, const Impairment&) = default;
};

ControlOp peek_control_op(const std::vector<std::byte>& payload);

std::vector<std::byte> encode_control(ControlOp op);  ///< op-only message
std::vector<std::byte> encode_configure(const NodeSetup& setup);
std::vector<std::byte> encode_status(const StatusReport& report);
std::vector<std::byte> encode_link(NodeId a, NodeId b);
std::vector<std::byte> encode_impair(const Impairment& impairment);

std::optional<NodeSetup> decode_configure(const std::vector<std::byte>& p);
std::optional<StatusReport> decode_status(const std::vector<std::byte>& p);
std::optional<std::pair<NodeId, NodeId>> decode_link(
    const std::vector<std::byte>& p);
std::optional<Impairment> decode_impair(const std::vector<std::byte>& p);

}  // namespace qolsr::net
