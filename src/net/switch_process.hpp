#pragma once

#include <string>

namespace qolsr::net {

/// Runs the software switch process: listens on the Unix SOCK_SEQPACKET
/// socket at `path`, accepts plugs, and forwards frames per SwitchCore's
/// rules in a single-threaded poll() loop (the vde2 shape — one process,
/// one loop, per-port outbound queues). Port fds are nonblocking: a copy
/// that would block queues on its port and drains on POLLOUT, so one slow
/// plug never stalls the others.
///
/// Returns the process exit code: 0 after an orderly ControlOp::kShutdown
/// addressed to the switch, nonzero when the listener could not be set up.
int run_switch(const std::string& path);

}  // namespace qolsr::net
