#include "net/socket.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

namespace qolsr::net {

namespace {

/// Largest datagram the transport accepts: the frame header plus a
/// u16-length payload. Anything bigger is not a well-formed frame.
constexpr std::size_t kMaxDatagram = 64 * 1024 + 64;

bool fill_addr(const std::string& path, sockaddr_un& addr) {
  if (path.size() >= sizeof(addr.sun_path)) return false;  // sun_path cap
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

void sleep_ms(long ms) {
  timespec ts{ms / 1000, (ms % 1000) * 1000000L};
  nanosleep(&ts, nullptr);
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Fd listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr;
  if (!fill_addr(path, addr)) return Fd();
  Fd fd(::socket(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Fd();
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    return Fd();
  if (::listen(fd.get(), backlog) != 0) return Fd();
  return fd;
}

Fd accept_unix(const Fd& listener) {
  for (;;) {
    const int fd = ::accept4(listener.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) return Fd(fd);
    if (errno != EINTR) return Fd();
  }
}

Fd connect_unix(const std::string& path, double timeout_seconds) {
  sockaddr_un addr;
  if (!fill_addr(path, addr)) return Fd();
  const long budget_ms = static_cast<long>(timeout_seconds * 1000.0);
  for (long waited_ms = 0;;) {
    Fd fd(::socket(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0));
    if (!fd.valid()) return Fd();
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return fd;
    // The switch may still be coming up: its socket file not created yet
    // (ENOENT) or bound but not listening (ECONNREFUSED). Retry briefly.
    if ((errno != ENOENT && errno != ECONNREFUSED) || waited_ms >= budget_ms)
      return Fd();
    sleep_ms(10);
    waited_ms += 10;
  }
}

std::pair<Fd, Fd> seqpacket_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0, fds) != 0)
    return {Fd(), Fd()};
  return {Fd(fds[0]), Fd(fds[1])};
}

void set_nonblocking(const Fd& fd) {
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
}

bool send_datagram(const Fd& fd, const std::vector<std::byte>& bytes) {
  for (;;) {
    const ssize_t n =
        ::send(fd.get(), bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n == static_cast<ssize_t>(bytes.size())) return true;
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Effectively-blocking semantics even on a nonblocking fd: wait for
      // buffer space instead of silently dropping the frame.
      pollfd pfd{fd.get(), POLLOUT, 0};
      if (::poll(&pfd, 1, 1000) <= 0) return false;
      continue;
    }
    return false;
  }
}

std::optional<std::vector<std::byte>> recv_datagram(const Fd& fd) {
  std::vector<std::byte> buf(kMaxDatagram);
  for (;;) {
    const ssize_t n = ::recv(fd.get(), buf.data(), buf.size(), 0);
    if (n > 0) {
      if (static_cast<std::size_t>(n) >= buf.size()) return std::nullopt;
      buf.resize(static_cast<std::size_t>(n));
      return buf;
    }
    if (n == 0) return std::nullopt;  // orderly shutdown
    if (errno != EINTR) return std::nullopt;
  }
}

RecvStatus try_recv_datagram(const Fd& fd, std::vector<std::byte>& out) {
  std::vector<std::byte> buf(kMaxDatagram);
  for (;;) {
    const ssize_t n = ::recv(fd.get(), buf.data(), buf.size(), 0);
    if (n > 0) {
      if (static_cast<std::size_t>(n) >= buf.size()) return RecvStatus::kClosed;
      buf.resize(static_cast<std::size_t>(n));
      out = std::move(buf);
      return RecvStatus::kOk;
    }
    if (n == 0) return RecvStatus::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvStatus::kWouldBlock;
    if (errno != EINTR) return RecvStatus::kClosed;
  }
}

}  // namespace qolsr::net
