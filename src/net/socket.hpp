#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace qolsr::net {

/// RAII file descriptor: closes on destruction, move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// Unix-domain SOCK_SEQPACKET helpers. SEQPACKET gives the wire transport
/// datagram message boundaries (one sendmsg = one frame, like UDP) *with*
/// connection-oriented reliability and connection teardown detection —
/// the right local stand-in for the UDP deployment target, where the
/// framing layer (net/wire_format) is already self-describing.
Fd listen_unix(const std::string& path, int backlog);
Fd accept_unix(const Fd& listener);
/// Connects, retrying while the switch is still coming up (ENOENT /
/// ECONNREFUSED), up to `timeout_seconds`. Invalid Fd on timeout.
Fd connect_unix(const std::string& path, double timeout_seconds);

/// A connected SOCK_SEQPACKET pair — the loopback harness for transport
/// tests that need a real kernel socket without a switch process.
std::pair<Fd, Fd> seqpacket_pair();

void set_nonblocking(const Fd& fd);

/// Sends one datagram (blocking, EINTR-retried). False on a dead peer.
bool send_datagram(const Fd& fd, const std::vector<std::byte>& bytes);

/// Receives one datagram (blocking, EINTR-retried). nullopt on EOF / dead
/// peer; a datagram larger than the internal cap is an error (nullopt) —
/// frames are bounded by the u16 length prefix plus the fixed header.
std::optional<std::vector<std::byte>> recv_datagram(const Fd& fd);

/// Nonblocking receive outcome.
enum class RecvStatus { kOk, kWouldBlock, kClosed };

/// Nonblocking receive of one datagram into `out` (only written on kOk).
RecvStatus try_recv_datagram(const Fd& fd, std::vector<std::byte>& out);

}  // namespace qolsr::net
