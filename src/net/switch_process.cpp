#include "net/switch_process.hpp"

#include <cerrno>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include "net/socket.hpp"
#include "net/switch_core.hpp"
#include "net/wire_format.hpp"

namespace qolsr::net {

namespace {

double monotonic_now() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// A forwarded copy shares the original datagram bytes — forwarding never
/// re-encodes (the frame is immutable in flight), mirroring SharedBytes in
/// the in-process Medium.
using RawFrame = std::shared_ptr<const std::vector<std::byte>>;

struct PortState {
  Fd fd;
  std::deque<RawFrame> outq;  ///< copies waiting for POLLOUT
};

/// A copy still serving its impairment delay.
struct Delayed {
  double due = 0.0;
  std::size_t port = 0;
  RawFrame bytes;
  bool operator>(const Delayed& other) const { return due > other.due; }
};

}  // namespace

int run_switch(const std::string& path) {
  Fd listener = listen_unix(path, 64);
  if (!listener.valid()) return 1;

  SwitchCore core;
  std::vector<PortState> ports;  // index == SwitchCore port index
  std::priority_queue<Delayed, std::vector<Delayed>, std::greater<>> delayed;
  std::vector<SwitchCore::Delivery> deliveries;
  bool running = true;

  const auto drop_port = [&](std::size_t port) {
    core.remove_port(port);
    ports[port].fd.reset();
    ports[port].outq.clear();
  };

  const auto enqueue = [&](std::size_t port, RawFrame bytes) {
    if (!core.port_live(port)) return;
    ports[port].outq.push_back(std::move(bytes));
  };

  const auto drain = [&](std::size_t port) {
    PortState& p = ports[port];
    while (!p.outq.empty()) {
      const auto& bytes = *p.outq.front();
      const ssize_t n = ::send(p.fd.get(), bytes.data(), bytes.size(),
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n == static_cast<ssize_t>(bytes.size())) {
        p.outq.pop_front();
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      drop_port(port);  // dead peer
      return;
    }
  };

  std::vector<std::byte> datagram;
  while (running) {
    // Release delayed copies that came due.
    const double now = monotonic_now();
    while (!delayed.empty() && delayed.top().due <= now) {
      enqueue(delayed.top().port, delayed.top().bytes);
      delayed.pop();
    }

    std::vector<pollfd> pfds;
    std::vector<std::size_t> pfd_port;  // pfds[i>0] -> port index
    pfds.push_back({listener.get(), POLLIN, 0});
    pfd_port.push_back(SIZE_MAX);
    for (std::size_t i = 0; i < ports.size(); ++i) {
      if (!core.port_live(i)) continue;
      short events = POLLIN;
      if (!ports[i].outq.empty()) events |= POLLOUT;
      pfds.push_back({ports[i].fd.get(), events, 0});
      pfd_port.push_back(i);
    }

    int timeout_ms = -1;
    if (!delayed.empty()) {
      const double wait = delayed.top().due - monotonic_now();
      timeout_ms = wait <= 0.0 ? 0 : static_cast<int>(wait * 1000.0) + 1;
    }
    if (::poll(pfds.data(), pfds.size(), timeout_ms) < 0) {
      if (errno == EINTR) continue;
      return 1;
    }

    if (pfds[0].revents & POLLIN) {
      Fd conn = accept_unix(listener);
      if (conn.valid()) {
        set_nonblocking(conn);
        const std::size_t port = core.add_port();
        if (port == ports.size()) ports.emplace_back();
        ports[port].fd = std::move(conn);
      }
    }

    for (std::size_t i = 1; i < pfds.size(); ++i) {
      const std::size_t port = pfd_port[i];
      if (!core.port_live(port)) continue;  // dropped earlier this pass
      if (pfds[i].revents & POLLOUT) drain(port);
      if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      for (;;) {
        const RecvStatus st = try_recv_datagram(ports[port].fd, datagram);
        if (st == RecvStatus::kWouldBlock) break;
        if (st == RecvStatus::kClosed) {
          drop_port(port);
          break;
        }
        const auto frame = decode_frame(datagram);
        if (!frame.has_value()) continue;  // malformed: dropped, not fatal
        deliveries.clear();
        if (!core.route(port, *frame, deliveries)) running = false;
        if (deliveries.empty()) continue;
        const auto raw = std::make_shared<const std::vector<std::byte>>(
            std::move(datagram));
        datagram = {};
        for (const SwitchCore::Delivery& d : deliveries) {
          if (d.delay > 0.0)
            delayed.push({monotonic_now() + d.delay, d.port, raw});
          else
            enqueue(d.port, raw);
        }
      }
    }

    // Opportunistic drain: most queues empty without waiting for POLLOUT.
    for (std::size_t i = 0; i < ports.size(); ++i)
      if (core.port_live(i) && !ports[i].outq.empty()) drain(i);
  }

  // Orderly exit: flush what is already queued (e.g. the per-daemon
  // Shutdown frames the controller sent just before stopping the switch)
  // under a short budget, so daemons exit cleanly instead of via SIGKILL.
  const double flush_deadline = monotonic_now() + 1.0;
  for (bool pending = true; pending && monotonic_now() < flush_deadline;) {
    pending = false;
    for (std::size_t i = 0; i < ports.size(); ++i) {
      if (!core.port_live(i) || ports[i].outq.empty()) continue;
      drain(i);
      if (core.port_live(i) && !ports[i].outq.empty()) pending = true;
    }
  }

  ::unlink(path.c_str());
  return 0;
}

}  // namespace qolsr::net
