#include "net/wire_harness.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include <poll.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "net/socket.hpp"

namespace qolsr::net {

namespace {

double monotonic_now() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

void sleep_seconds(double s) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(s);
  ts.tv_nsec = static_cast<long>((s - static_cast<double>(ts.tv_sec)) * 1e9);
  nanosleep(&ts, nullptr);
}

pid_t spawn(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv)
    cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    _exit(127);  // exec failed; the parent sees a fast nonzero exit
  }
  return pid;
}

/// Owns the child process tree and the temp socket dir; the destructor
/// guarantees no child outlives a throw anywhere in the run.
class ProcessTree {
 public:
  explicit ProcessTree(std::string dir) : dir_(std::move(dir)) {}

  ~ProcessTree() {
    for (const pid_t pid : children_) ::kill(pid, SIGKILL);
    for (const pid_t pid : children_) ::waitpid(pid, nullptr, 0);
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  void track(pid_t pid) {
    if (pid > 0) children_.push_back(pid);
  }

  /// Orderly teardown: give every child `budget` seconds to exit after the
  /// shutdown frames, then escalate to SIGKILL (handled by the dtor).
  void reap(double budget) {
    const double deadline = monotonic_now() + budget;
    std::vector<pid_t> pending = children_;
    while (!pending.empty() && monotonic_now() < deadline) {
      std::vector<pid_t> still;
      for (const pid_t pid : pending)
        if (::waitpid(pid, nullptr, WNOHANG) == 0) still.push_back(pid);
      pending = std::move(still);
      if (!pending.empty()) sleep_seconds(0.01);
    }
    if (pending.empty()) children_.clear();
  }

 private:
  std::string dir_;
  std::vector<pid_t> children_;
};

/// The harness's switch plug: control frames out, steered replies in.
class Controller {
 public:
  explicit Controller(Fd sock) : sock_(std::move(sock)) {
    set_nonblocking(sock_);
    Frame reg;
    reg.kind = kKindRegister;
    reg.sender = kControllerId;
    reg.dest = kSwitchDest;
    require(send_datagram(sock_, encode_frame(reg)), "register controller");
  }

  void send_to(NodeId dest, std::vector<std::byte> payload) {
    Frame f;
    f.kind = kKindControl;
    f.sender = kControllerId;
    f.dest = dest;
    f.payload = std::move(payload);
    require(send_datagram(sock_, encode_frame(f)), "send control frame");
  }

  /// Next well-formed control frame before `deadline` (monotonic seconds);
  /// nullopt on deadline.
  std::optional<Frame> recv_until(double deadline) {
    std::vector<std::byte> datagram;
    for (;;) {
      const RecvStatus st = try_recv_datagram(sock_, datagram);
      if (st == RecvStatus::kOk) {
        if (auto frame = decode_frame(datagram);
            frame.has_value() && frame->kind == kKindControl)
          return frame;
        continue;
      }
      if (st == RecvStatus::kClosed)
        throw std::runtime_error("wire harness: switch closed the plug");
      const double wait = deadline - monotonic_now();
      if (wait <= 0.0) return std::nullopt;
      pollfd pfd{sock_.get(), POLLIN, 0};
      ::poll(&pfd, 1, static_cast<int>(wait * 1000.0) + 1);
    }
  }

  /// Drains anything already queued (stale replies from a prior round).
  void drain() {
    std::vector<std::byte> datagram;
    while (try_recv_datagram(sock_, datagram) == RecvStatus::kOk) {
    }
  }

  static void require(bool ok, const char* what) {
    if (!ok) throw std::runtime_error(std::string("wire harness: ") + what +
                                      " failed");
  }

 private:
  Fd sock_;
};

NodeSetup setup_for(const Graph& graph, NodeId id,
                    const WireRunConfig& config) {
  NodeSetup s;
  s.id = id;
  s.node_count = static_cast<std::uint32_t>(graph.node_count());
  s.seed = config.seed;
  s.timing = config.timing;
  s.metric = static_cast<std::uint8_t>(config.metric);
  s.protocol = config.protocol;
  for (const Edge& e : graph.neighbors(id))
    s.neighbors.push_back({e.to, e.qos});
  return s;
}

}  // namespace

std::string find_sibling_binary(const char* env_var, const char* name) {
  if (const char* override_path = std::getenv(env_var);
      override_path != nullptr && *override_path != '\0')
    return override_path;
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) return (self.parent_path() / name).string();
  return name;  // last resort: rely on PATH-less execv failing loudly
}

WireRunResult run_wire_network(const Graph& graph,
                               const WireRunConfig& config) {
  const std::size_t n = graph.node_count();
  if (n == 0) return {};
  const double deadline = monotonic_now() + config.timeout_seconds;
  const auto time_left = [&](const char* stage) {
    const double left = deadline - monotonic_now();
    if (left <= 0.0)
      throw std::runtime_error(
          std::string("wire harness: timeout during ") + stage);
    return left;
  };

  const std::string switch_bin =
      config.switch_binary.empty()
          ? find_sibling_binary("QOLSR_SWITCH_BIN", "qolsr_switch")
          : config.switch_binary;
  const std::string node_bin =
      config.node_binary.empty()
          ? find_sibling_binary("QOLSR_NODE_BIN", "qolsr_node")
          : config.node_binary;

  char dir_template[] = "/tmp/qolsr_wire_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr)
    throw std::runtime_error("wire harness: mkdtemp failed");
  ProcessTree tree(dir_template);
  const std::string sock_path = std::string(dir_template) + "/switch.sock";

  tree.track(spawn({switch_bin, sock_path}));

  Fd plug = connect_unix(sock_path, time_left("switch connect"));
  if (!plug.valid())
    throw std::runtime_error("wire harness: cannot reach the switch at " +
                             sock_path);
  Controller controller(std::move(plug));

  // Radio topology upload: the switch becomes the shared ether.
  for (NodeId u = 0; u < n; ++u)
    for (const Edge& e : graph.neighbors(u))
      if (u < e.to) controller.send_to(kSwitchDest, encode_link(u, e.to));

  for (NodeId id = 0; id < n; ++id)
    tree.track(spawn({node_bin, sock_path, std::to_string(id)}));

  // Configure with retry: a daemon is only addressable once its Register
  // frame reached the switch, and we cannot observe that directly — so
  // re-send Configure until the daemon's Ready proves the path works.
  std::vector<bool> ready(n, false);
  std::size_t ready_count = 0;
  double next_configure = 0.0;
  while (ready_count < n) {
    const double now = monotonic_now();
    if (now >= next_configure) {
      for (NodeId id = 0; id < n; ++id)
        if (!ready[id])
          controller.send_to(id,
                             encode_configure(setup_for(graph, id, config)));
      next_configure = now + 0.05;
    }
    time_left("configure handshake");
    const auto frame = controller.recv_until(
        std::min(deadline, next_configure));
    if (!frame.has_value()) continue;
    if (peek_control_op(frame->payload) == ControlOp::kReady &&
        frame->sender < n && !ready[frame->sender]) {
      ready[frame->sender] = true;
      ++ready_count;
    }
  }

  for (NodeId id = 0; id < n; ++id)
    controller.send_to(id, encode_control(ControlOp::kStart));

  // Quiescence via the control socket: a status round asks every daemon
  // for its mutation count; when a full round matches the previous round
  // and the two rounds are at least a dwell apart, no daemon mutated
  // anywhere inside the window — the event-driven convergence criterion
  // (MutationClock) applied across process boundaries.
  const double dwell = config.timing.convergence_dwell();
  const double poll_gap = std::max(dwell / 3.0, 0.02);
  std::vector<std::uint64_t> prev_counts;
  double prev_round_at = 0.0;
  std::vector<StatusReport> reports(n);
  for (;;) {
    controller.drain();
    for (NodeId id = 0; id < n; ++id)
      controller.send_to(id, encode_control(ControlOp::kStatusReq));
    const double round_at = monotonic_now();
    std::vector<bool> got(n, false);
    std::size_t got_count = 0;
    while (got_count < n) {
      time_left("status round");
      const auto frame = controller.recv_until(deadline);
      if (!frame.has_value()) continue;
      if (peek_control_op(frame->payload) != ControlOp::kStatus) continue;
      const auto report = decode_status(frame->payload);
      if (!report.has_value() || frame->sender >= n) continue;
      reports[frame->sender] = *report;
      if (!got[frame->sender]) {
        got[frame->sender] = true;
        ++got_count;
      }
    }
    std::vector<std::uint64_t> counts(n);
    for (std::size_t i = 0; i < n; ++i) counts[i] = reports[i].mutation_count;
    if (std::getenv("QOLSR_WIRE_DEBUG") != nullptr) {
      std::string line = "round at " + std::to_string(round_at) + ":";
      for (const std::uint64_t c : counts) line += " " + std::to_string(c);
      ::fprintf(stderr, "%s\n", line.c_str());
    }
    // Anchor at the round where the counts FIRST took their current value:
    // convergence is "no daemon mutated for a full dwell", i.e. the counts
    // held steady across the whole window, not merely across one poll gap.
    if (prev_counts.empty() || counts != prev_counts) {
      prev_counts = std::move(counts);
      prev_round_at = round_at;
    } else if (round_at - prev_round_at >= dwell) {
      break;
    }
    time_left("quiescence wait");
    sleep_seconds(std::min(poll_gap, std::max(deadline - monotonic_now(),
                                              0.001)));
  }

  for (NodeId id = 0; id < n; ++id)
    controller.send_to(id, encode_control(ControlOp::kShutdown));
  controller.send_to(kSwitchDest, encode_control(ControlOp::kShutdown));
  tree.reap(std::max(1.0, deadline - monotonic_now()));

  WireRunResult result;
  result.reports = std::move(reports);
  return result;
}

}  // namespace qolsr::net
