#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/geometry.hpp"
#include "graph/node_id.hpp"
#include "metrics/link_qos.hpp"

namespace qolsr {

/// Outgoing half of an undirected link.
struct Edge {
  NodeId to = kInvalidNode;
  LinkQos qos;
};

/// Undirected graph with QoS-annotated links and optional node positions —
/// the network model `G = (V, E)` of the paper (§III-A): bidirectional
/// links, one QoS record per link (both directions see the same values).
///
/// Adjacency lists are kept sorted by neighbor id, so `neighbors()` can be
/// binary-searched and iteration order is deterministic.
class Graph {
 public:
  Graph() = default;
  /// Creates `n` isolated nodes (ids 0..n-1) at the origin.
  explicit Graph(std::size_t n) : adjacency_(n), positions_(n) {}

  NodeId add_node(Point position = {});

  /// Re-dimensions to `n` isolated nodes at the origin, reusing the
  /// adjacency storage already allocated — the capacity-preserving form of
  /// `*this = Graph(n)` for views that are rebuilt in place (e.g. a node's
  /// cached knowledge graph, re-derived on every topology mutation).
  void reset_nodes(std::size_t n);

  /// Inserts the undirected link (u,v). Precondition: u != v, both exist,
  /// and the link is not already present (checked in debug builds).
  void add_edge(NodeId u, NodeId v, LinkQos qos = {});

  /// Updates the QoS of an existing link (both directions).
  /// Returns false when the link does not exist.
  bool set_edge_qos(NodeId u, NodeId v, const LinkQos& qos);

  /// Removes the undirected link (u,v). Returns false when absent. Used by
  /// the failure-injection tests and the simulator's link-failure hook.
  bool remove_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const { return find_edge(u, v) != nullptr; }

  /// QoS of link (u,v), or nullptr when absent.
  const LinkQos* edge_qos(NodeId u, NodeId v) const {
    const Edge* e = find_edge(u, v);
    return e != nullptr ? &e->qos : nullptr;
  }

  std::span<const Edge> neighbors(NodeId u) const {
    return adjacency_[u];
  }

  std::size_t degree(NodeId u) const { return adjacency_[u].size(); }

  std::size_t node_count() const { return adjacency_.size(); }
  /// Number of undirected links.
  std::size_t edge_count() const { return edge_count_; }

  const Point& position(NodeId u) const { return positions_[u]; }
  void set_position(NodeId u, Point p) { positions_[u] = p; }

 private:
  const Edge* find_edge(NodeId u, NodeId v) const;
  Edge* find_edge(NodeId u, NodeId v);

  std::vector<std::vector<Edge>> adjacency_;
  std::vector<Point> positions_;
  std::size_t edge_count_ = 0;
};

}  // namespace qolsr
