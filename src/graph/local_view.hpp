#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "graph/node_id.hpp"

namespace qolsr {

/// The partial view `G_u = (V_u, E_u)` a node has of the network
/// (paper §III-A):
///
///   V_u = {u} ∪ N(u) ∪ N²(u)
///   E_u = {(v,w) : v ∈ N(u) ∧ w ∈ V_u}
///
/// i.e. u knows every link incident to one of its 1-hop neighbors whose
/// other endpoint it has heard of, but no link between two 2-hop neighbors
/// (the dashed links of the paper's Fig. 2). In a deployed OLSR this view is
/// assembled from HELLO messages piggybacking the neighbor table — the
/// `proto` module does exactly that; this class is the oracle form.
///
/// Nodes are re-indexed into a compact local id space so the path algorithms
/// can run on dense vectors. Local index 0 is always `u` itself.
class LocalView {
 public:
  /// Extracts G_u from the full graph.
  LocalView(const Graph& graph, NodeId u);

  /// Builds a view directly from neighbor-table data (used by the protocol
  /// stack): `one_hop[i]` are u's symmetric neighbors with their link QoS;
  /// `neighbor_links[i]` lists the links of one_hop[i] (as advertised in its
  /// HELLOs).
  struct NeighborLink {
    NodeId to = kInvalidNode;
    LinkQos qos;
  };
  LocalView(NodeId u, const std::vector<NeighborLink>& one_hop,
            const std::vector<std::vector<NeighborLink>>& neighbor_links);

  NodeId origin() const { return origin_; }
  std::size_t size() const { return adjacency_.size(); }

  /// Local index of the origin u (always 0).
  static constexpr std::uint32_t origin_index() { return 0; }

  NodeId global_id(std::uint32_t local) const { return global_ids_[local]; }
  /// Local index of a global node, or kInvalidNode when not in V_u.
  std::uint32_t local_id(NodeId global) const;
  bool contains(NodeId global) const {
    return local_id(global) != kInvalidNode;
  }

  /// Adjacency in local index space.
  struct LocalEdge {
    std::uint32_t to = 0;
    LinkQos qos;
  };
  std::span<const LocalEdge> neighbors(std::uint32_t local) const {
    return adjacency_[local];
  }

  bool has_local_edge(std::uint32_t a, std::uint32_t b) const;
  /// QoS of local link (a,b), or nullptr when absent.
  const LinkQos* local_edge_qos(std::uint32_t a, std::uint32_t b) const;

  /// 1-hop neighbors of u, as local indices, ascending global id.
  std::span<const std::uint32_t> one_hop() const { return one_hop_; }
  /// 2-hop neighbors of u (N², excludes u and N(u)), ascending global id.
  std::span<const std::uint32_t> two_hop() const { return two_hop_; }

  bool is_one_hop(std::uint32_t local) const {
    return local != origin_index() && local < first_two_hop_;
  }
  bool is_two_hop(std::uint32_t local) const {
    return local >= first_two_hop_;
  }

  /// Removes the undirected local edge (a, b). Used by topology filtering,
  /// which prunes the view before selecting (the RNG reduction).
  void remove_local_edge(std::uint32_t a, std::uint32_t b);

 private:
  void index_nodes(NodeId u, const std::vector<NodeId>& one_hop_globals,
                   const std::vector<NodeId>& two_hop_globals);
  void add_local_edge(std::uint32_t a, std::uint32_t b, const LinkQos& qos);

  NodeId origin_ = kInvalidNode;
  std::vector<NodeId> global_ids_;                    // local -> global
  std::unordered_map<NodeId, std::uint32_t> locals_;  // global -> local
  std::vector<std::vector<LocalEdge>> adjacency_;
  std::vector<std::uint32_t> one_hop_;
  std::vector<std::uint32_t> two_hop_;
  std::uint32_t first_two_hop_ = 1;
};

}  // namespace qolsr
