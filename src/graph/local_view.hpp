#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/node_id.hpp"

namespace qolsr {

class LocalViewBuilder;

/// The partial view `G_u = (V_u, E_u)` a node has of the network
/// (paper §III-A):
///
///   V_u = {u} ∪ N(u) ∪ N²(u)
///   E_u = {(v,w) : v ∈ N(u) ∧ w ∈ V_u}
///
/// i.e. u knows every link incident to one of its 1-hop neighbors whose
/// other endpoint it has heard of, but no link between two 2-hop neighbors
/// (the dashed links of the paper's Fig. 2). In a deployed OLSR this view is
/// assembled from HELLO messages piggybacking the neighbor table — the
/// `proto` module does exactly that; this class is the oracle form.
///
/// Nodes are re-indexed into a compact local id space so the path algorithms
/// can run on dense vectors. Local index 0 is always `u` itself.
///
/// Storage is a flat CSR layout (row offsets + one packed edge array, rows
/// sorted by neighbor): the eval pipeline builds millions of views per
/// sweep, and per-row heap nodes or a global→local hash map would dominate
/// the selection hot path (see DESIGN.md §5). Views are built by a
/// `LocalViewBuilder`; the constructors below are conveniences that route
/// through a thread-local builder.
class LocalView {
 public:
  /// An empty view (no origin, no nodes) — a reusable build target.
  LocalView() = default;

  /// Extracts G_u from the full graph.
  LocalView(const Graph& graph, NodeId u);

  /// Builds a view directly from neighbor-table data (used by the protocol
  /// stack): `one_hop[i]` are u's symmetric neighbors with their link QoS;
  /// `neighbor_links[i]` lists the links of one_hop[i] (as advertised in its
  /// HELLOs).
  struct NeighborLink {
    NodeId to = kInvalidNode;
    LinkQos qos;
  };
  LocalView(NodeId u, const std::vector<NeighborLink>& one_hop,
            const std::vector<std::vector<NeighborLink>>& neighbor_links);

  NodeId origin() const { return origin_; }
  std::size_t size() const { return global_ids_.size(); }

  /// Local index of the origin u (always 0).
  static constexpr std::uint32_t origin_index() { return 0; }

  NodeId global_id(std::uint32_t local) const { return global_ids_[local]; }
  /// Local index of a global node, or kInvalidNode when not in V_u.
  std::uint32_t local_id(NodeId global) const;
  bool contains(NodeId global) const {
    return local_id(global) != kInvalidNode;
  }

  /// Adjacency in local index space.
  struct LocalEdge {
    std::uint32_t to = 0;
    LinkQos qos;
  };
  std::span<const LocalEdge> neighbors(std::uint32_t local) const {
    return {edges_.data() + row_begin_[local], row_len_[local]};
  }

  bool has_local_edge(std::uint32_t a, std::uint32_t b) const;
  /// QoS of local link (a,b), or nullptr when absent.
  const LinkQos* local_edge_qos(std::uint32_t a, std::uint32_t b) const;

  /// 1-hop neighbors of u, as local indices, ascending global id.
  std::span<const std::uint32_t> one_hop() const { return one_hop_; }
  /// 2-hop neighbors of u (N², excludes u and N(u)), ascending global id.
  std::span<const std::uint32_t> two_hop() const { return two_hop_; }

  bool is_one_hop(std::uint32_t local) const {
    return local != origin_index() && local < first_two_hop_;
  }
  bool is_two_hop(std::uint32_t local) const {
    return local >= first_two_hop_;
  }

  /// Removes the undirected local edge (a, b). Used by topology filtering,
  /// which prunes the view before selecting (the RNG reduction). The rows
  /// keep their CSR slots (a removal shortens `row_len_`), so pruning never
  /// reallocates.
  void remove_local_edge(std::uint32_t a, std::uint32_t b);

 private:
  friend class LocalViewBuilder;

  NodeId origin_ = kInvalidNode;
  std::vector<NodeId> global_ids_;  ///< local -> global; [0]=u, then N(u)
                                    ///< ascending, then N²(u) ascending
  std::vector<std::uint32_t> row_begin_;  ///< CSR row offset per local node
  std::vector<std::uint32_t> row_len_;    ///< live entries in each row
  std::vector<LocalEdge> edges_;          ///< packed rows, sorted by `to`
  std::vector<std::uint32_t> one_hop_;
  std::vector<std::uint32_t> two_hop_;
  std::uint32_t first_two_hop_ = 1;
};

/// Reusable constructor of `LocalView`s. Owns epoch-stamped scratch sized to
/// the *full* graph (a dense global→local map and membership stamps), so
/// that after warm-up, building a view performs zero heap allocation and
/// every membership probe — including the 2-hop discovery that previously
/// binary-searched N(u) per candidate edge — is O(1).
///
/// One builder per worker thread; `build` may be called any number of times
/// with any mix of graphs (the scratch grows monotonically to the largest
/// graph seen). The same instance must not be used concurrently.
class LocalViewBuilder {
 public:
  /// Builds G_u from the full graph into `out`, reusing `out`'s storage.
  void build(const Graph& graph, NodeId u, LocalView& out);

  /// Builds a view from HELLO-table data into `out` (the protocol-stack
  /// form; see LocalView's second constructor).
  void build(NodeId u, const std::vector<LocalView::NeighborLink>& one_hop,
             const std::vector<std::vector<LocalView::NeighborLink>>&
                 neighbor_links,
             LocalView& out);

 private:
  /// Grows the dense scratch to cover global ids < `max_global` and starts
  /// a fresh epoch.
  void begin_epoch(std::size_t max_global);
  /// Assigns local ids (out.global_ids_ etc.) for u + the collected
  /// neighborhoods; stamps every member's global id with its local id.
  void index_nodes(NodeId u, LocalView& out);
  /// Shared CSR finalization: `for_each_edge(emit)` must enumerate every
  /// undirected edge once as emit(a, b, qos) — it is invoked twice (degree
  /// count, then scatter); rows end up sorted by neighbor.
  template <typename ForEachEdge>
  void fill_rows(std::uint32_t n, const ForEachEdge& for_each_edge,
                 LocalView& out);

  // Dense per-global-id scratch, valid while stamp_[id] == epoch_.
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> local_of_;
  std::uint32_t epoch_ = 0;

  // Per-build scratch.
  std::vector<NodeId> one_hop_globals_;
  std::vector<NodeId> two_hop_globals_;
  std::vector<std::uint32_t> cursor_;  ///< degree counts, then write cursors
  struct PendingEdge {
    std::uint32_t a, b;   ///< local endpoints
    std::uint32_t seq;    ///< insertion order (first report wins)
    LinkQos qos;
  };
  std::vector<PendingEdge> pending_;  ///< HELLO path: pre-dedup edge list
};

}  // namespace qolsr
