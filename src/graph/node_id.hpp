#pragma once

#include <cstdint>
#include <limits>

namespace qolsr {

/// Node identifier. Doubles as the paper's total-order "id" used for every
/// tie-break (≺ operators, loop-fix condition `minid(fP) > u`).
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

}  // namespace qolsr
