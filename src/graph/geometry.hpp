#pragma once

#include <cmath>

namespace qolsr {

/// Position in the deployment field (the paper deploys in a 1000x1000
/// square).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

inline double squared_distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double distance(const Point& a, const Point& b) {
  return std::sqrt(squared_distance(a, b));
}

/// Unit-disk connectivity: `(u,v) ∈ E ⇔ |uv| ≤ R` (paper §III-A).
inline bool within_radius(const Point& a, const Point& b, double radius) {
  return squared_distance(a, b) <= radius * radius;
}

}  // namespace qolsr
