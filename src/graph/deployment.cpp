#include "graph/deployment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace qolsr {

namespace {

/// Uniform grid with cell side == radius: all unit-disk neighbors of a node
/// lie in its cell or the 8 surrounding cells.
class CellIndex {
 public:
  CellIndex(const std::vector<Point>& positions, double radius)
      : radius_(radius) {
    double max_x = 0.0, max_y = 0.0;
    for (const Point& p : positions) {
      max_x = std::max(max_x, p.x);
      max_y = std::max(max_y, p.y);
    }
    cols_ = static_cast<std::size_t>(max_x / radius_) + 1;
    rows_ = static_cast<std::size_t>(max_y / radius_) + 1;
    cells_.resize(cols_ * rows_);
    for (std::size_t i = 0; i < positions.size(); ++i)
      cells_[cell_of(positions[i])].push_back(static_cast<NodeId>(i));
  }

  template <typename Fn>
  void for_each_candidate(const Point& p, Fn&& fn) const {
    const auto cx = static_cast<std::int64_t>(p.x / radius_);
    const auto cy = static_cast<std::int64_t>(p.y / radius_);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const std::int64_t x = cx + dx;
        const std::int64_t y = cy + dy;
        if (x < 0 || y < 0 || x >= static_cast<std::int64_t>(cols_) ||
            y >= static_cast<std::int64_t>(rows_))
          continue;
        for (NodeId id : cells_[static_cast<std::size_t>(y) * cols_ +
                                static_cast<std::size_t>(x)])
          fn(id);
      }
    }
  }

 private:
  std::size_t cell_of(const Point& p) const {
    const auto cx = static_cast<std::size_t>(p.x / radius_);
    const auto cy = static_cast<std::size_t>(p.y / radius_);
    return cy * cols_ + cx;
  }

  double radius_;
  std::size_t cols_ = 0, rows_ = 0;
  std::vector<std::vector<NodeId>> cells_;
};

}  // namespace

Graph build_unit_disk_graph(const std::vector<Point>& positions,
                            double radius) {
  Graph graph;
  for (const Point& p : positions) graph.add_node(p);
  if (positions.empty()) return graph;

  const CellIndex index(positions, radius);
  for (NodeId u = 0; u < positions.size(); ++u) {
    index.for_each_candidate(positions[u], [&](NodeId v) {
      // Visit each unordered pair once.
      if (v <= u) return;
      if (within_radius(positions[u], positions[v], radius))
        graph.add_edge(u, v);
    });
  }
  return graph;
}

Graph sample_poisson_deployment(const DeploymentConfig& config,
                                util::Rng& rng) {
  const std::uint64_t n = rng.poisson(config.expected_nodes());
  std::vector<Point> positions;
  positions.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    positions.push_back(
        {rng.uniform(0.0, config.width), rng.uniform(0.0, config.height)});
  return build_unit_disk_graph(positions, config.radius);
}

LinkQos draw_uniform_qos(const QosIntervals& iv, util::Rng& rng) {
  auto draw = [&](double lo, double hi) {
    if (!iv.integral) return rng.uniform(lo, hi);
    const auto ilo = static_cast<std::int64_t>(std::ceil(lo));
    const auto ihi = static_cast<std::int64_t>(std::floor(hi));
    if (ihi <= ilo) return static_cast<double>(ilo);
    return static_cast<double>(rng.uniform_int(ilo, ihi));
  };
  LinkQos qos;
  qos.bandwidth = draw(iv.bandwidth_lo, iv.bandwidth_hi);
  qos.delay = draw(iv.delay_lo, iv.delay_hi);
  qos.jitter = draw(iv.jitter_lo, iv.jitter_hi);
  qos.loss_cost = draw(iv.loss_lo, iv.loss_hi);
  qos.energy = draw(iv.energy_lo, iv.energy_hi);
  qos.buffers = draw(iv.buffers_lo, iv.buffers_hi);
  return qos;
}

void assign_uniform_qos(Graph& graph, const QosIntervals& iv,
                        util::Rng& rng) {
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    for (const Edge& e : graph.neighbors(u)) {
      if (e.to <= u) continue;  // one draw per undirected link
      graph.set_edge_qos(u, e.to, draw_uniform_qos(iv, rng));
    }
  }
}

void update_unit_disk_links(Graph& graph, double radius,
                            const QosIntervals& intervals, util::Rng& rng,
                            std::vector<LinkEvent>& events) {
  const std::size_t n = graph.node_count();
  if (n == 0) return;
  std::vector<Point> positions(n);
  for (NodeId u = 0; u < n; ++u) positions[u] = graph.position(u);

  // Removals: a stretched link is found on its own adjacency row — the
  // far endpoint may have left the 3x3 cell neighborhood entirely, so the
  // grid cannot be trusted to rediscover it.
  std::vector<std::pair<NodeId, NodeId>> removed;
  for (NodeId u = 0; u < n; ++u)
    for (const Edge& e : graph.neighbors(u))
      if (e.to > u && !within_radius(positions[u], positions[e.to], radius))
        removed.push_back({u, e.to});

  // Additions discovered through the grid; collected first and applied in
  // ascending (a, b) order so the per-link QoS draws consume the RNG
  // stream in an order independent of the cell enumeration.
  std::vector<std::pair<NodeId, NodeId>> added;
  const CellIndex index(positions, radius);
  for (NodeId u = 0; u < n; ++u) {
    index.for_each_candidate(positions[u], [&](NodeId v) {
      if (v <= u) return;  // each unordered pair once
      if (within_radius(positions[u], positions[v], radius) &&
          !graph.has_edge(u, v))
        added.push_back({u, v});
    });
  }
  std::sort(added.begin(), added.end());

  for (const auto& [a, b] : removed) {
    graph.remove_edge(a, b);
    events.push_back({a, b, false});
  }
  for (const auto& [a, b] : added) {
    graph.add_edge(a, b, draw_uniform_qos(intervals, rng));
    events.push_back({a, b, true});
  }
}

}  // namespace qolsr
