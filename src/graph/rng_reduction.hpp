#pragma once

#include <vector>

#include "graph/local_view.hpp"
#include "metrics/metric.hpp"

namespace qolsr {

/// QoS Relative-Neighborhood-Graph reduction of a local view, the topology
/// filter of Moraru & Simplot-Ryl (WONS 2006) that the paper uses as its
/// second baseline.
///
/// The classic RNG (Toussaint 1980) drops edge (x,y) when some witness z is
/// strictly closer to both endpoints: max(d(x,z), d(z,y)) < d(x,y).
/// Generalized to a QoS weight, (x,y) is dropped when some common neighbor z
/// in the view has *both* links strictly better than (x,y):
///
///   bandwidth: min(bw(x,z), bw(z,y)) > bw(x,y)
///   delay:     max(D(x,z),  D(z,y))  < D(x,y)
///
/// Both are instances of `better(q(x,z), q(x,y)) ∧ better(q(z,y), q(x,y))`.
/// Strictness makes the filter deterministic and keeps at least one best
/// link per witness-clique (ties never remove each other).
///
/// Returns the filtered copy of `view` (the original is untouched).
template <Metric M>
LocalView rng_reduce(const LocalView& view) {
  struct Removal {
    std::uint32_t a, b;
  };
  std::vector<Removal> removals;
  const auto n = static_cast<std::uint32_t>(view.size());
  for (std::uint32_t x = 0; x < n; ++x) {
    for (const LocalView::LocalEdge& edge : view.neighbors(x)) {
      const std::uint32_t y = edge.to;
      if (y <= x) continue;  // each undirected edge once
      const double direct = M::link_value(edge.qos);
      // Witness scan over the smaller adjacency list.
      const auto& smaller = view.neighbors(x).size() <= view.neighbors(y).size()
                                ? view.neighbors(x)
                                : view.neighbors(y);
      const std::uint32_t other =
          view.neighbors(x).size() <= view.neighbors(y).size() ? y : x;
      for (const LocalView::LocalEdge& xz : smaller) {
        const std::uint32_t z = xz.to;
        if (z == x || z == y) continue;
        const LinkQos* zy = view.local_edge_qos(z, other);
        if (zy == nullptr) continue;
        if (M::better(M::link_value(xz.qos), direct) &&
            M::better(M::link_value(*zy), direct)) {
          removals.push_back({x, y});
          break;
        }
      }
    }
  }
  LocalView reduced = view;
  for (const Removal& r : removals) reduced.remove_local_edge(r.a, r.b);
  return reduced;
}

}  // namespace qolsr
