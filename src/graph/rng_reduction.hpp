#pragma once

#include <vector>

#include "graph/local_view.hpp"
#include "metrics/metric.hpp"

namespace qolsr {

/// QoS Relative-Neighborhood-Graph reduction of a local view, the topology
/// filter of Moraru & Simplot-Ryl (WONS 2006) that the paper uses as its
/// second baseline.
///
/// The classic RNG (Toussaint 1980) drops edge (x,y) when some witness z is
/// strictly closer to both endpoints: max(d(x,z), d(z,y)) < d(x,y).
/// Generalized to a QoS weight, (x,y) is dropped when some common neighbor z
/// in the view has *both* links strictly better than (x,y):
///
///   bandwidth: min(bw(x,z), bw(z,y)) > bw(x,y)
///   delay:     max(D(x,z),  D(z,y))  < D(x,y)
///
/// Both are instances of `better(q(x,z), q(x,y)) ∧ better(q(z,y), q(x,y))`.
/// Strictness makes the filter deterministic and keeps at least one best
/// link per witness-clique (ties never remove each other).
///
/// Writes the filtered copy of `view` into `out` (the original is
/// untouched). `out`'s storage is reused — witness tests run against the
/// unmodified `view`, so removals can be applied to `out` immediately and
/// no removal list is needed.
template <Metric M>
void rng_reduce(const LocalView& view, LocalView& out) {
  out = view;
  const auto n = static_cast<std::uint32_t>(view.size());
  for (std::uint32_t x = 0; x < n; ++x) {
    for (const LocalView::LocalEdge& edge : view.neighbors(x)) {
      const std::uint32_t y = edge.to;
      if (y <= x) continue;  // each undirected edge once
      const double direct = M::link_value(edge.qos);
      // Witness scan over the smaller adjacency list.
      const auto& smaller = view.neighbors(x).size() <= view.neighbors(y).size()
                                ? view.neighbors(x)
                                : view.neighbors(y);
      const std::uint32_t other =
          view.neighbors(x).size() <= view.neighbors(y).size() ? y : x;
      for (const LocalView::LocalEdge& xz : smaller) {
        const std::uint32_t z = xz.to;
        if (z == x || z == y) continue;
        const LinkQos* zy = view.local_edge_qos(z, other);
        if (zy == nullptr) continue;
        if (M::better(M::link_value(xz.qos), direct) &&
            M::better(M::link_value(*zy), direct)) {
          out.remove_local_edge(x, y);
          break;
        }
      }
    }
  }
}

/// Allocating convenience form (the original API).
template <Metric M>
LocalView rng_reduce(const LocalView& view) {
  LocalView reduced;
  rng_reduce<M>(view, reduced);
  return reduced;
}

}  // namespace qolsr
