#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/local_view.hpp"
#include "metrics/metric.hpp"

namespace qolsr {

/// Reusable scratch of rng_reduce's witness scan: one epoch-stamped dense
/// row (membership stamp + extracted link weight per local id), sized to
/// the largest view seen. One instance per worker thread.
struct RngWitnessScratch {
  std::vector<std::uint32_t> stamp;
  std::vector<double> weight;
  std::uint32_t epoch = 0;
};

/// QoS Relative-Neighborhood-Graph reduction of a local view, the topology
/// filter of Moraru & Simplot-Ryl (WONS 2006) that the paper uses as its
/// second baseline.
///
/// The classic RNG (Toussaint 1980) drops edge (x,y) when some witness z is
/// strictly closer to both endpoints: max(d(x,z), d(z,y)) < d(x,y).
/// Generalized to a QoS weight, (x,y) is dropped when some common neighbor z
/// in the view has *both* links strictly better than (x,y):
///
///   bandwidth: min(bw(x,z), bw(z,y)) > bw(x,y)
///   delay:     max(D(x,z),  D(z,y))  < D(x,y)
///
/// Both are instances of `better(q(x,z), q(x,y)) ∧ better(q(z,y), q(x,y))`.
/// Strictness makes the filter deterministic and keeps at least one best
/// link per witness-clique (ties never remove each other).
///
/// Writes the filtered copy of `view` into `out` (the original is
/// untouched). `out`'s storage is reused — witness tests run against the
/// unmodified `view`, so removals can be applied to `out` immediately and
/// no removal list is needed.
template <Metric M>
void rng_reduce(const LocalView& view, LocalView& out,
                RngWitnessScratch& scratch) {
  out = view;
  const auto n = static_cast<std::uint32_t>(view.size());
  if (scratch.stamp.size() < n) {
    scratch.stamp.resize(n, 0);
    scratch.weight.resize(n);
  }
  for (std::uint32_t x = 0; x < n; ++x) {
    // Stamp N(x) once; every witness probe below is then one O(1) load
    // instead of a binary search of an adjacency row (a witness must be a
    // common neighbor of both endpoints).
    if (++scratch.epoch == 0) {
      std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0);
      scratch.epoch = 1;
    }
    for (const LocalView::LocalEdge& xz : view.neighbors(x)) {
      scratch.stamp[xz.to] = scratch.epoch;
      scratch.weight[xz.to] = M::link_value(xz.qos);
    }
    for (const LocalView::LocalEdge& edge : view.neighbors(x)) {
      const std::uint32_t y = edge.to;
      if (y <= x) continue;  // each undirected edge once
      const double direct = M::link_value(edge.qos);
      for (const LocalView::LocalEdge& yz : view.neighbors(y)) {
        const std::uint32_t z = yz.to;
        if (z == x || scratch.stamp[z] != scratch.epoch) continue;
        if (M::better(scratch.weight[z], direct) &&
            M::better(M::link_value(yz.qos), direct)) {
          out.remove_local_edge(x, y);
          break;
        }
      }
    }
  }
}

/// Convenience form with a thread-local scratch.
template <Metric M>
void rng_reduce(const LocalView& view, LocalView& out) {
  thread_local RngWitnessScratch scratch;
  rng_reduce<M>(view, out, scratch);
}

/// Allocating convenience form (the original API).
template <Metric M>
LocalView rng_reduce(const LocalView& view) {
  LocalView reduced;
  rng_reduce<M>(view, reduced);
  return reduced;
}

}  // namespace qolsr
