#pragma once

#include <cstddef>
#include <numbers>
#include <vector>

#include "graph/graph.hpp"
#include "graph/link_event.hpp"
#include "util/rng.hpp"

namespace qolsr {

/// Parameters of the paper's deployment (§IV-A): nodes dropped in a
/// `width × height` field by a Poisson Point Process, unit-disk links of
/// radius `radius`, and target mean node degree `degree` δ. The process
/// intensity is λ = δ / (π R²), so the expected node count is λ·area.
struct DeploymentConfig {
  double width = 1000.0;
  double height = 1000.0;
  double radius = 100.0;
  double degree = 20.0;

  double intensity() const {
    return degree / (std::numbers::pi * radius * radius);
  }
  double expected_nodes() const { return intensity() * width * height; }
};

/// Samples a Poisson Point Process deployment: N ~ Poisson(λ·area) nodes,
/// positions i.i.d. uniform in the field. Links are unit-disk (|uv| ≤ R)
/// with default QoS; use `assign_uniform_qos` to draw link weights.
Graph sample_poisson_deployment(const DeploymentConfig& config,
                                util::Rng& rng);

/// Builds a graph with exactly the given positions and unit-disk links —
/// used by tests and by deterministic topologies. O(n) grid binning, so it
/// scales to the dense paper settings.
Graph build_unit_disk_graph(const std::vector<Point>& positions,
                            double radius);

/// Interval for uniformly drawn link weights ("weights (QoS values) on links
/// are uniformly drawn at random in a fixed interval", §IV-A). The paper
/// does not state the interval; [1,10] matches the magnitudes of its worked
/// examples and is the repository default.
struct QosIntervals {
  double bandwidth_lo = 1.0, bandwidth_hi = 10.0;
  double delay_lo = 1.0, delay_hi = 10.0;
  double jitter_lo = 0.0, jitter_hi = 1.0;
  double loss_lo = 0.0, loss_hi = 0.2;
  double energy_lo = 1.0, energy_hi = 10.0;
  double buffers_lo = 1.0, buffers_hi = 10.0;
  /// Draw integer values (uniform on {⌈lo⌉..⌊hi⌋}) instead of continuous
  /// ones. The paper's worked examples all use small integers, and the tie
  /// structure matters: with continuous weights additive (delay) metrics
  /// never tie, which erases the "advertise every tied first hop" cost the
  /// paper attributes to topology filtering. The evaluation harness turns
  /// this on (see EXPERIMENTS.md for the sensitivity discussion).
  bool integral = false;
};

/// Draws independent uniform QoS values for every link of `graph`.
void assign_uniform_qos(Graph& graph, const QosIntervals& intervals,
                        util::Rng& rng);

/// One uniformly drawn QoS record (the per-link draw of
/// `assign_uniform_qos`, exposed for incremental callers that create links
/// one at a time — mobility models drawing weights for freshly formed
/// links). Component draw order is fixed (bandwidth, delay, jitter, loss,
/// energy, buffers) so RNG streams are reproducible.
LinkQos draw_uniform_qos(const QosIntervals& intervals, util::Rng& rng);

/// Re-derives the unit-disk link set of `graph` from its *current* node
/// positions, in place: links stretched past `radius` are removed, pairs
/// that moved within `radius` are linked with fresh QoS drawn from
/// `intervals`, and surviving links keep their records untouched. One
/// normalized (a < b) `LinkEvent` per change is appended to `events`
/// (removals first, then additions, each ascending by (a, b)), which is
/// exactly the delta the incremental selection maintenance consumes.
/// O(n + changed) expected via the same grid binning as
/// `build_unit_disk_graph`.
void update_unit_disk_links(Graph& graph, double radius,
                            const QosIntervals& intervals, util::Rng& rng,
                            std::vector<LinkEvent>& events);

}  // namespace qolsr
