#include "graph/connectivity.hpp"

#include <algorithm>
#include <queue>

namespace qolsr {

Components connected_components(const Graph& graph) {
  Components result;
  result.labels.assign(graph.node_count(), kInvalidNode);
  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < graph.node_count(); ++start) {
    if (result.labels[start] != kInvalidNode) continue;
    const std::uint32_t label = result.count++;
    result.labels[start] = label;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (const Edge& e : graph.neighbors(v)) {
        if (result.labels[e.to] != kInvalidNode) continue;
        result.labels[e.to] = label;
        frontier.push(e.to);
      }
    }
  }
  return result;
}

bool is_connected(const Graph& graph, NodeId u, NodeId v) {
  return connected_components(graph).connected(u, v);
}

std::vector<NodeId> largest_component(const Graph& graph) {
  const Components components = connected_components(graph);
  std::vector<std::size_t> sizes(components.count, 0);
  for (std::uint32_t label : components.labels) ++sizes[label];
  const auto best = static_cast<std::uint32_t>(std::distance(
      sizes.begin(), std::max_element(sizes.begin(), sizes.end())));
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < graph.node_count(); ++v)
    if (components.labels[v] == best) nodes.push_back(v);
  return nodes;
}

}  // namespace qolsr
