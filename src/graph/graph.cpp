#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace qolsr {

namespace {

/// Sorted insert keeping the adjacency list ordered by `to`.
void insert_sorted(std::vector<Edge>& list, const Edge& e) {
  auto it = std::lower_bound(
      list.begin(), list.end(), e.to,
      [](const Edge& lhs, NodeId id) { return lhs.to < id; });
  assert(it == list.end() || it->to != e.to);
  list.insert(it, e);
}

}  // namespace

void Graph::reset_nodes(std::size_t n) {
  const std::size_t keep = std::min(n, adjacency_.size());
  for (std::size_t u = 0; u < keep; ++u) adjacency_[u].clear();
  adjacency_.resize(n);
  positions_.assign(n, Point{});
  edge_count_ = 0;
}

NodeId Graph::add_node(Point position) {
  adjacency_.emplace_back();
  positions_.push_back(position);
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Graph::add_edge(NodeId u, NodeId v, LinkQos qos) {
  assert(u != v);
  assert(u < adjacency_.size() && v < adjacency_.size());
  insert_sorted(adjacency_[u], Edge{v, qos});
  insert_sorted(adjacency_[v], Edge{u, qos});
  ++edge_count_;
}

bool Graph::set_edge_qos(NodeId u, NodeId v, const LinkQos& qos) {
  Edge* uv = find_edge(u, v);
  Edge* vu = find_edge(v, u);
  if (uv == nullptr || vu == nullptr) return false;
  uv->qos = qos;
  vu->qos = qos;
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  auto erase_from = [this](NodeId from, NodeId to) {
    auto& list = adjacency_[from];
    auto it = std::lower_bound(
        list.begin(), list.end(), to,
        [](const Edge& lhs, NodeId id) { return lhs.to < id; });
    if (it == list.end() || it->to != to) return false;
    list.erase(it);
    return true;
  };
  if (!erase_from(u, v)) return false;
  erase_from(v, u);
  --edge_count_;
  return true;
}

const Edge* Graph::find_edge(NodeId u, NodeId v) const {
  if (u >= adjacency_.size()) return nullptr;
  const auto& list = adjacency_[u];
  auto it = std::lower_bound(
      list.begin(), list.end(), v,
      [](const Edge& lhs, NodeId id) { return lhs.to < id; });
  if (it == list.end() || it->to != v) return nullptr;
  return &*it;
}

Edge* Graph::find_edge(NodeId u, NodeId v) {
  return const_cast<Edge*>(std::as_const(*this).find_edge(u, v));
}

}  // namespace qolsr
