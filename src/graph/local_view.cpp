#include "graph/local_view.hpp"

#include <algorithm>
#include <cassert>

namespace qolsr {

namespace {

void insert_sorted(std::vector<LocalView::LocalEdge>& list,
                   const LocalView::LocalEdge& e) {
  auto it = std::lower_bound(list.begin(), list.end(), e.to,
                             [](const LocalView::LocalEdge& lhs,
                                std::uint32_t id) { return lhs.to < id; });
  assert(it == list.end() || it->to != e.to);
  list.insert(it, e);
}

}  // namespace

void LocalView::index_nodes(NodeId u,
                            const std::vector<NodeId>& one_hop_globals,
                            const std::vector<NodeId>& two_hop_globals) {
  origin_ = u;
  global_ids_.reserve(1 + one_hop_globals.size() + two_hop_globals.size());
  global_ids_.push_back(u);
  for (NodeId v : one_hop_globals) global_ids_.push_back(v);
  first_two_hop_ = static_cast<std::uint32_t>(global_ids_.size());
  for (NodeId v : two_hop_globals) global_ids_.push_back(v);

  locals_.reserve(global_ids_.size() * 2);
  for (std::uint32_t i = 0; i < global_ids_.size(); ++i)
    locals_.emplace(global_ids_[i], i);
  adjacency_.resize(global_ids_.size());

  one_hop_.resize(one_hop_globals.size());
  for (std::uint32_t i = 0; i < one_hop_.size(); ++i) one_hop_[i] = 1 + i;
  two_hop_.resize(two_hop_globals.size());
  for (std::uint32_t i = 0; i < two_hop_.size(); ++i)
    two_hop_[i] = first_two_hop_ + i;
}

LocalView::LocalView(const Graph& graph, NodeId u) {
  // N(u): direct neighbors, ascending id (graph adjacency is sorted).
  std::vector<NodeId> one_hop_globals;
  one_hop_globals.reserve(graph.degree(u));
  for (const Edge& e : graph.neighbors(u)) one_hop_globals.push_back(e.to);

  // N²(u): reachable through a neighbor, not u, not in N(u).
  std::vector<NodeId> two_hop_globals;
  for (NodeId v : one_hop_globals) {
    for (const Edge& e : graph.neighbors(v)) {
      const NodeId w = e.to;
      if (w == u) continue;
      if (std::binary_search(one_hop_globals.begin(), one_hop_globals.end(),
                             w))
        continue;
      two_hop_globals.push_back(w);
    }
  }
  std::sort(two_hop_globals.begin(), two_hop_globals.end());
  two_hop_globals.erase(
      std::unique(two_hop_globals.begin(), two_hop_globals.end()),
      two_hop_globals.end());

  index_nodes(u, one_hop_globals, two_hop_globals);

  // E_u: every link incident to a 1-hop neighbor whose other endpoint is in
  // V_u. Links between two 2-hop neighbors are unknown to u by construction.
  for (NodeId v : one_hop_globals) {
    const std::uint32_t lv = local_id(v);
    for (const Edge& e : graph.neighbors(v)) {
      const std::uint32_t lw = local_id(e.to);
      if (lw == kInvalidNode) continue;  // outside V_u
      // Deduplicate 1-hop/1-hop links (both endpoints get iterated) and the
      // (u,v) links (v iterates them once; u never does as the outer loop
      // skips u).
      if (is_one_hop(lw) && e.to < v) continue;
      add_local_edge(lv, lw, e.qos);
    }
  }
}

LocalView::LocalView(
    NodeId u, const std::vector<NeighborLink>& one_hop,
    const std::vector<std::vector<NeighborLink>>& neighbor_links) {
  assert(one_hop.size() == neighbor_links.size());
  std::vector<NodeId> one_hop_globals;
  one_hop_globals.reserve(one_hop.size());
  for (const NeighborLink& l : one_hop) one_hop_globals.push_back(l.to);
  std::sort(one_hop_globals.begin(), one_hop_globals.end());

  std::vector<NodeId> two_hop_globals;
  for (const auto& links : neighbor_links) {
    for (const NeighborLink& l : links) {
      if (l.to == u) continue;
      if (std::binary_search(one_hop_globals.begin(), one_hop_globals.end(),
                             l.to))
        continue;
      two_hop_globals.push_back(l.to);
    }
  }
  std::sort(two_hop_globals.begin(), two_hop_globals.end());
  two_hop_globals.erase(
      std::unique(two_hop_globals.begin(), two_hop_globals.end()),
      two_hop_globals.end());

  index_nodes(u, one_hop_globals, two_hop_globals);

  for (const NeighborLink& l : one_hop)
    add_local_edge(origin_index(), local_id(l.to), l.qos);
  for (std::size_t i = 0; i < one_hop.size(); ++i) {
    const std::uint32_t lv = local_id(one_hop[i].to);
    for (const NeighborLink& l : neighbor_links[i]) {
      if (l.to == u) continue;  // the (u,v) link was added above
      const std::uint32_t lw = local_id(l.to);
      if (lw == kInvalidNode) continue;
      // A link between two 1-hop neighbors appears in both HELLO tables;
      // keep the copy reported by the smaller-id endpoint.
      if (is_one_hop(lw) && l.to < one_hop[i].to) continue;
      if (has_local_edge(lv, lw)) continue;  // tolerate asymmetric reports
      add_local_edge(lv, lw, l.qos);
    }
  }
}

std::uint32_t LocalView::local_id(NodeId global) const {
  auto it = locals_.find(global);
  return it == locals_.end() ? kInvalidNode : it->second;
}

void LocalView::add_local_edge(std::uint32_t a, std::uint32_t b,
                               const LinkQos& qos) {
  assert(a != b);
  insert_sorted(adjacency_[a], LocalEdge{b, qos});
  insert_sorted(adjacency_[b], LocalEdge{a, qos});
}

bool LocalView::has_local_edge(std::uint32_t a, std::uint32_t b) const {
  return local_edge_qos(a, b) != nullptr;
}

const LinkQos* LocalView::local_edge_qos(std::uint32_t a,
                                         std::uint32_t b) const {
  const auto& list = adjacency_[a];
  auto it = std::lower_bound(
      list.begin(), list.end(), b,
      [](const LocalEdge& lhs, std::uint32_t id) { return lhs.to < id; });
  if (it == list.end() || it->to != b) return nullptr;
  return &it->qos;
}

void LocalView::remove_local_edge(std::uint32_t a, std::uint32_t b) {
  auto erase_from = [this](std::uint32_t from, std::uint32_t to) {
    auto& list = adjacency_[from];
    auto it = std::lower_bound(
        list.begin(), list.end(), to,
        [](const LocalEdge& lhs, std::uint32_t id) { return lhs.to < id; });
    if (it != list.end() && it->to == to) list.erase(it);
  };
  erase_from(a, b);
  erase_from(b, a);
}

}  // namespace qolsr
