#include "graph/local_view.hpp"

#include <algorithm>
#include <cassert>

namespace qolsr {

namespace {

/// Position of `b` in the row span, or nullptr when absent (rows are sorted
/// by `to`).
const LocalView::LocalEdge* find_in_row(
    std::span<const LocalView::LocalEdge> row, std::uint32_t b) {
  auto it = std::lower_bound(row.begin(), row.end(), b,
                             [](const LocalView::LocalEdge& lhs,
                                std::uint32_t id) { return lhs.to < id; });
  if (it == row.end() || it->to != b) return nullptr;
  return &*it;
}

}  // namespace

LocalView::LocalView(const Graph& graph, NodeId u) {
  thread_local LocalViewBuilder builder;
  builder.build(graph, u, *this);
}

LocalView::LocalView(
    NodeId u, const std::vector<NeighborLink>& one_hop,
    const std::vector<std::vector<NeighborLink>>& neighbor_links) {
  thread_local LocalViewBuilder builder;
  builder.build(u, one_hop, neighbor_links, *this);
}

std::uint32_t LocalView::local_id(NodeId global) const {
  if (global_ids_.empty()) return kInvalidNode;
  if (global == origin_) return origin_index();
  // Both neighborhood segments of global_ids_ are sorted ascending.
  auto search = [&](std::uint32_t lo, std::uint32_t hi) -> std::uint32_t {
    const auto first = global_ids_.begin() + lo;
    const auto last = global_ids_.begin() + hi;
    const auto it = std::lower_bound(first, last, global);
    if (it == last || *it != global) return kInvalidNode;
    return static_cast<std::uint32_t>(it - global_ids_.begin());
  };
  const std::uint32_t in_one_hop = search(1, first_two_hop_);
  if (in_one_hop != kInvalidNode) return in_one_hop;
  return search(first_two_hop_,
                static_cast<std::uint32_t>(global_ids_.size()));
}

bool LocalView::has_local_edge(std::uint32_t a, std::uint32_t b) const {
  return local_edge_qos(a, b) != nullptr;
}

const LinkQos* LocalView::local_edge_qos(std::uint32_t a,
                                         std::uint32_t b) const {
  const LocalEdge* e = find_in_row(neighbors(a), b);
  return e != nullptr ? &e->qos : nullptr;
}

void LocalView::remove_local_edge(std::uint32_t a, std::uint32_t b) {
  auto erase_from = [this](std::uint32_t from, std::uint32_t to) {
    LocalEdge* const row = edges_.data() + row_begin_[from];
    LocalEdge* const end = row + row_len_[from];
    auto it = std::lower_bound(row, end, to,
                               [](const LocalEdge& lhs, std::uint32_t id) {
                                 return lhs.to < id;
                               });
    if (it == end || it->to != to) return;
    std::move(it + 1, end, it);
    --row_len_[from];
  };
  erase_from(a, b);
  erase_from(b, a);
}

void LocalViewBuilder::begin_epoch(std::size_t max_global) {
  if (stamp_.size() < max_global) {
    stamp_.resize(max_global, 0);
    local_of_.resize(max_global, kInvalidNode);
  }
  if (++epoch_ == 0) {  // epoch wrap: invalidate all stamps explicitly
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
}

void LocalViewBuilder::index_nodes(NodeId u, LocalView& out) {
  const std::size_t n =
      1 + one_hop_globals_.size() + two_hop_globals_.size();
  out.origin_ = u;
  out.global_ids_.clear();
  out.global_ids_.reserve(n);
  out.global_ids_.push_back(u);
  for (NodeId v : one_hop_globals_) out.global_ids_.push_back(v);
  out.first_two_hop_ = static_cast<std::uint32_t>(out.global_ids_.size());
  for (NodeId v : two_hop_globals_) out.global_ids_.push_back(v);

  stamp_[u] = epoch_;
  local_of_[u] = LocalView::origin_index();
  for (std::uint32_t i = 1; i < out.global_ids_.size(); ++i) {
    stamp_[out.global_ids_[i]] = epoch_;
    local_of_[out.global_ids_[i]] = i;
  }

  out.one_hop_.resize(one_hop_globals_.size());
  for (std::uint32_t i = 0; i < out.one_hop_.size(); ++i)
    out.one_hop_[i] = 1 + i;
  out.two_hop_.resize(two_hop_globals_.size());
  for (std::uint32_t i = 0; i < out.two_hop_.size(); ++i)
    out.two_hop_[i] = out.first_two_hop_ + i;
}

template <typename ForEachEdge>
void LocalViewBuilder::fill_rows(std::uint32_t n,
                                 const ForEachEdge& for_each_edge,
                                 LocalView& out) {
  cursor_.assign(n, 0);
  for_each_edge([&](std::uint32_t a, std::uint32_t b, const LinkQos&) {
    assert(a != b);
    ++cursor_[a];
    ++cursor_[b];
  });

  out.row_begin_.resize(n);
  out.row_len_.resize(n);
  std::uint32_t total = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    out.row_begin_[i] = total;
    out.row_len_[i] = cursor_[i];
    total += cursor_[i];
    cursor_[i] = out.row_begin_[i];  // becomes the write cursor
  }
  out.edges_.resize(total);
  for_each_edge([&](std::uint32_t a, std::uint32_t b, const LinkQos& qos) {
    out.edges_[cursor_[a]++] = {b, qos};
    out.edges_[cursor_[b]++] = {a, qos};
  });
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto row = out.edges_.begin() + out.row_begin_[i];
    std::sort(row, row + out.row_len_[i],
              [](const LocalView::LocalEdge& a,
                 const LocalView::LocalEdge& b) { return a.to < b.to; });
  }
}

void LocalViewBuilder::build(const Graph& graph, NodeId u, LocalView& out) {
  begin_epoch(graph.node_count());

  // N(u): direct neighbors, ascending id (graph adjacency is sorted).
  one_hop_globals_.clear();
  for (const Edge& e : graph.neighbors(u)) one_hop_globals_.push_back(e.to);

  // Stamp {u} ∪ N(u) so 2-hop discovery dedups with O(1) probes.
  stamp_[u] = epoch_;
  for (NodeId v : one_hop_globals_) stamp_[v] = epoch_;

  // N²(u): reachable through a neighbor, not u, not in N(u), deduplicated
  // by the same stamps.
  two_hop_globals_.clear();
  for (NodeId v : one_hop_globals_) {
    for (const Edge& e : graph.neighbors(v)) {
      if (stamp_[e.to] == epoch_) continue;
      stamp_[e.to] = epoch_;
      two_hop_globals_.push_back(e.to);
    }
  }
  std::sort(two_hop_globals_.begin(), two_hop_globals_.end());

  index_nodes(u, out);
  const auto n = static_cast<std::uint32_t>(out.size());

  // E_u: every link incident to a 1-hop neighbor whose other endpoint is in
  // V_u; links between two 2-hop neighbors are unknown to u by
  // construction. Each undirected edge is claimed exactly once: 1-hop/1-hop
  // links by their smaller-id endpoint, (u,v) links by v (u is never the
  // outer node).
  fill_rows(
      n,
      [&](auto&& emit) {
        for (NodeId v : one_hop_globals_) {
          const std::uint32_t lv = local_of_[v];
          for (const Edge& e : graph.neighbors(v)) {
            if (stamp_[e.to] != epoch_) continue;  // outside V_u
            const std::uint32_t lw = local_of_[e.to];
            if (out.is_one_hop(lw) && e.to < v) continue;  // claimed by e.to
            emit(lv, lw, e.qos);
          }
        }
      },
      out);
}

void LocalViewBuilder::build(
    NodeId u, const std::vector<LocalView::NeighborLink>& one_hop,
    const std::vector<std::vector<LocalView::NeighborLink>>& neighbor_links,
    LocalView& out) {
  assert(one_hop.size() == neighbor_links.size());
  NodeId max_id = u;
  for (const LocalView::NeighborLink& l : one_hop)
    max_id = std::max(max_id, l.to);
  for (const auto& links : neighbor_links)
    for (const LocalView::NeighborLink& l : links)
      max_id = std::max(max_id, l.to);
  begin_epoch(static_cast<std::size_t>(max_id) + 1);

  one_hop_globals_.clear();
  for (const LocalView::NeighborLink& l : one_hop)
    one_hop_globals_.push_back(l.to);
  std::sort(one_hop_globals_.begin(), one_hop_globals_.end());

  stamp_[u] = epoch_;
  for (NodeId v : one_hop_globals_) stamp_[v] = epoch_;

  two_hop_globals_.clear();
  for (const auto& links : neighbor_links) {
    for (const LocalView::NeighborLink& l : links) {
      if (stamp_[l.to] == epoch_) continue;
      stamp_[l.to] = epoch_;
      two_hop_globals_.push_back(l.to);
    }
  }
  std::sort(two_hop_globals_.begin(), two_hop_globals_.end());

  index_nodes(u, out);
  const auto n = static_cast<std::uint32_t>(out.size());

  // HELLO tables may report the same link from both endpoints (or repeat an
  // entry); the first report wins, matching incremental insertion. Collect
  // candidates with their insertion rank, canonicalize, and keep the first
  // per undirected pair.
  pending_.clear();
  std::uint32_t seq = 0;
  for (const LocalView::NeighborLink& l : one_hop)
    pending_.push_back(
        {LocalView::origin_index(), local_of_[l.to], seq++, l.qos});
  for (std::size_t i = 0; i < one_hop.size(); ++i) {
    const std::uint32_t lv = local_of_[one_hop[i].to];
    for (const LocalView::NeighborLink& l : neighbor_links[i]) {
      if (l.to == u) continue;  // the (u,v) link was added above
      const std::uint32_t lw = local_of_[l.to];
      // A link between two 1-hop neighbors appears in both HELLO tables;
      // keep the copy reported by the smaller-id endpoint.
      if (out.is_one_hop(lw) && l.to < one_hop[i].to) continue;
      pending_.push_back({lv, lw, seq++, l.qos});
    }
  }
  for (PendingEdge& p : pending_)
    if (p.a > p.b) std::swap(p.a, p.b);
  std::sort(pending_.begin(), pending_.end(),
            [](const PendingEdge& x, const PendingEdge& y) {
              if (x.a != y.a) return x.a < y.a;
              if (x.b != y.b) return x.b < y.b;
              return x.seq < y.seq;
            });
  const auto last = std::unique(pending_.begin(), pending_.end(),
                                [](const PendingEdge& x, const PendingEdge& y) {
                                  return x.a == y.a && x.b == y.b;
                                });
  pending_.erase(last, pending_.end());

  fill_rows(
      n,
      [&](auto&& emit) {
        for (const PendingEdge& p : pending_) emit(p.a, p.b, p.qos);
      },
      out);
}

}  // namespace qolsr
