#pragma once

#include "graph/node_id.hpp"

namespace qolsr {

/// One undirected link appearing (`up`) or disappearing (`!up`) during a
/// topology update — the delta currency between the mobility models
/// (src/sim/mobility.hpp) and the incremental selection maintenance
/// (src/olsr/incremental.hpp). Endpoints are normalized to a < b so an
/// event names its link uniquely.
struct LinkEvent {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  bool up = false;

  friend bool operator==(const LinkEvent&, const LinkEvent&) = default;
};

}  // namespace qolsr
