#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/node_id.hpp"

namespace qolsr {

/// Connected-component labelling (BFS). `labels[v]` is the component id of
/// v; ids are dense starting at 0 in order of discovery.
struct Components {
  std::vector<std::uint32_t> labels;
  std::uint32_t count = 0;

  bool connected(NodeId u, NodeId v) const { return labels[u] == labels[v]; }
};

Components connected_components(const Graph& graph);

/// True when u and v are in the same component.
bool is_connected(const Graph& graph, NodeId u, NodeId v);

/// Nodes of the largest connected component (ascending id).
std::vector<NodeId> largest_component(const Graph& graph);

}  // namespace qolsr
