#pragma once

#include <array>
#include <optional>
#include <stdexcept>
#include <string_view>

#include "metrics/metric.hpp"

namespace qolsr {

/// Runtime handle for the six compile-time Metric policies. The evaluation
/// engine stores a MetricId in its declarative specs and crosses into the
/// templated hot path (run_sweep<M>, dijkstra<M>, …) exactly once, at
/// dispatch_metric below — everything inside stays monomorphized, exactly
/// as fast as the direct template call.
enum class MetricId : std::uint8_t {
  kBandwidth,  ///< concave — path value is the minimum link bandwidth
  kDelay,      ///< additive — sum of link delays
  kJitter,     ///< additive
  kLoss,       ///< additive in the -log(1-p) form
  kEnergy,     ///< additive
  kBuffers,    ///< concave
};

inline constexpr std::array<MetricId, 6> kAllMetricIds = {
    MetricId::kBandwidth, MetricId::kDelay,  MetricId::kJitter,
    MetricId::kLoss,      MetricId::kEnergy, MetricId::kBuffers,
};

/// Value-level tag carrying a Metric type through a generic lambda:
/// `dispatch_metric(id, [](auto tag) { using M = typename decltype(tag)::type; … })`.
template <Metric M>
struct MetricTag {
  using type = M;
};

/// The single runtime → compile-time crossing point: invokes `fn` with the
/// MetricTag of the metric named by `id`. All branches must yield the same
/// type (use a generic lambda).
template <typename Fn>
decltype(auto) dispatch_metric(MetricId id, Fn&& fn) {
  switch (id) {
    case MetricId::kBandwidth:
      return fn(MetricTag<BandwidthMetric>{});
    case MetricId::kDelay:
      return fn(MetricTag<DelayMetric>{});
    case MetricId::kJitter:
      return fn(MetricTag<JitterMetric>{});
    case MetricId::kLoss:
      return fn(MetricTag<LossMetric>{});
    case MetricId::kEnergy:
      return fn(MetricTag<EnergyMetric>{});
    case MetricId::kBuffers:
      return fn(MetricTag<BuffersMetric>{});
  }
  throw std::invalid_argument("dispatch_metric: invalid MetricId");
}

/// The metric's canonical name ("bandwidth", "delay", …) — the same string
/// M::name() reports, and what parse_metric_id accepts.
inline std::string_view metric_name(MetricId id) {
  return dispatch_metric(id, [](auto tag) {
    return decltype(tag)::type::name();
  });
}

inline MetricKind metric_kind(MetricId id) {
  return dispatch_metric(id, [](auto tag) {
    return decltype(tag)::type::kind;
  });
}

/// Name → id, matching the M::name() spellings; nullopt for unknown names.
inline std::optional<MetricId> parse_metric_id(std::string_view name) {
  for (MetricId id : kAllMetricIds)
    if (metric_name(id) == name) return id;
  return std::nullopt;
}

}  // namespace qolsr
