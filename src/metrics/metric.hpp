#pragma once

#include <cmath>
#include <concepts>
#include <limits>
#include <string_view>

#include "metrics/link_qos.hpp"

namespace qolsr {

/// How a metric composes along a path.
enum class MetricKind {
  kAdditive,  ///< path value = sum of link values (delay, jitter, energy…)
  kConcave,   ///< path value = min of link values (bandwidth, buffers…)
};

/// A Metric is a stateless policy describing one QoS dimension:
///
///  * `link_value(q)`  — extract this metric's value from a link record;
///  * `combine(a, b)`  — extend a path of value `a` by a link of value `b`
///                       (sum for additive metrics, min for concave ones);
///  * `better(a, b)`   — strict "a is preferable to b";
///  * `identity()`     — value of the empty path (0 for additive, +inf for
///                       concave): `combine(identity(), x) == x`;
///  * `unreachable()`  — value strictly worse than any real path.
///
/// Algorithms additionally rely on combine() being *non-improving*:
/// `better(combine(a, b), a)` is never true. This holds for non-negative
/// additive link values and for min-composition, and is what makes
/// label-setting (Dijkstra) correct for both families.
template <typename M>
concept Metric = requires(double a, double b, const LinkQos& q) {
  { M::kind } -> std::convertible_to<MetricKind>;
  { M::name() } -> std::convertible_to<std::string_view>;
  { M::link_value(q) } -> std::convertible_to<double>;
  { M::combine(a, b) } -> std::convertible_to<double>;
  { M::better(a, b) } -> std::convertible_to<bool>;
  { M::identity() } -> std::convertible_to<double>;
  { M::unreachable() } -> std::convertible_to<double>;
};

/// Relative tolerance of metric_equal: path values within this band (scaled
/// by max(magnitude, 1)) compare as ties. Code that needs to stay clear of
/// the band (e.g. the first-hop saturation cutoff) derives its margin from
/// this constant.
inline constexpr double kMetricRelTolerance = 1e-9;

namespace metric_detail {

/// Tolerant equality for path values. Concave values are exact copies of
/// link values, but additive values are floating-point sums whose rounding
/// depends on summation order; two enumerations of the same path must
/// compare equal.
inline bool values_equal(double a, double b) {
  if (a == b) return true;
  if (std::isinf(a) || std::isinf(b)) return false;
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= kMetricRelTolerance * std::fmax(scale, 1.0);
}

struct AdditiveBase {
  static constexpr MetricKind kind = MetricKind::kAdditive;
  static double combine(double a, double b) { return a + b; }
  static bool better(double a, double b) {
    return a < b && !values_equal(a, b);
  }
  /// `better` without the tolerance test — the plain numeric preference.
  /// Hot loops that have already ruled out a (tolerant) tie use this to
  /// avoid recomputing the band (see dijkstra_detail::lex_better).
  static bool raw_better(double a, double b) { return a < b; }
  static double identity() { return 0.0; }
  static double unreachable() { return std::numeric_limits<double>::infinity(); }
};

struct ConcaveBase {
  static constexpr MetricKind kind = MetricKind::kConcave;
  static double combine(double a, double b) { return a < b ? a : b; }
  static bool better(double a, double b) {
    return a > b && !values_equal(a, b);
  }
  /// See AdditiveBase::raw_better.
  static bool raw_better(double a, double b) { return a > b; }
  static double identity() { return std::numeric_limits<double>::infinity(); }
  static double unreachable() {
    return -std::numeric_limits<double>::infinity();
  }
};

}  // namespace metric_detail

/// `a` and `b` are equally good path values under any metric.
inline bool metric_equal(double a, double b) {
  return metric_detail::values_equal(a, b);
}

/// Concave: the bandwidth of a path is the minimum link bandwidth
/// (`BW(p) = min BW(x_i, x_{i+1})`, paper §III-A).
struct BandwidthMetric : metric_detail::ConcaveBase {
  static std::string_view name() { return "bandwidth"; }
  static double link_value(const LinkQos& q) { return q.bandwidth; }
};

/// Additive: the delay of a path is the sum of link delays
/// (`D(p) = Σ D(x_i, x_{i+1})`, paper §III-A).
struct DelayMetric : metric_detail::AdditiveBase {
  static std::string_view name() { return "delay"; }
  static double link_value(const LinkQos& q) { return q.delay; }
};

/// Additive, like delay (paper §III: "jitter or packet loss metrics which
/// are also additive metrics").
struct JitterMetric : metric_detail::AdditiveBase {
  static std::string_view name() { return "jitter"; }
  static double link_value(const LinkQos& q) { return q.jitter; }
};

/// Additive in the -log(1-p) form: summing link costs multiplies success
/// probabilities.
struct LossMetric : metric_detail::AdditiveBase {
  static std::string_view name() { return "loss"; }
  static double link_value(const LinkQos& q) { return q.loss_cost; }
};

/// Additive energy-to-transmit (the paper's future-work metric, after
/// Mahfoudh's residual-energy routing).
struct EnergyMetric : metric_detail::AdditiveBase {
  static std::string_view name() { return "energy"; }
  static double link_value(const LinkQos& q) { return q.energy; }
};

/// Concave: "the number of buffers available at each node along a path"
/// (paper §III, example of another concave metric).
struct BuffersMetric : metric_detail::ConcaveBase {
  static std::string_view name() { return "buffers"; }
  static double link_value(const LinkQos& q) { return q.buffers; }
};

static_assert(Metric<BandwidthMetric>);
static_assert(Metric<DelayMetric>);
static_assert(Metric<JitterMetric>);
static_assert(Metric<LossMetric>);
static_assert(Metric<EnergyMetric>);
static_assert(Metric<BuffersMetric>);

}  // namespace qolsr
