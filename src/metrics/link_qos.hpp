#pragma once

namespace qolsr {

/// QoS annotations carried by every (bidirectional) link.
///
/// The paper evaluates bandwidth (concave) and delay (additive) and notes the
/// algorithm is metric-agnostic; the extra fields let the same machinery run
/// on jitter / loss / energy / buffer metrics (Section II–III of the paper,
/// and its future-work direction). How these values are *measured* is out of
/// scope of the paper (it cites Munaretto & Fonseca); here they are inputs.
struct LinkQos {
  double bandwidth = 1.0;  ///< available bandwidth (higher is better)
  double delay = 1.0;      ///< one-hop delay (lower is better)
  double jitter = 0.0;     ///< delay variation (lower is better, additive)
  double loss_cost = 0.0;  ///< -log(1-p) success-cost form (additive)
  double energy = 1.0;     ///< energy to transmit over this link (additive)
  double buffers = 1.0;    ///< free buffers at the downstream node (concave)

  friend bool operator==(const LinkQos&, const LinkQos&) = default;
};

}  // namespace qolsr
