#pragma once

#include <bit>
#include <cstdint>

#include "util/digest.hpp"

namespace qolsr {

/// QoS annotations carried by every (bidirectional) link.
///
/// The paper evaluates bandwidth (concave) and delay (additive) and notes the
/// algorithm is metric-agnostic; the extra fields let the same machinery run
/// on jitter / loss / energy / buffer metrics (Section II–III of the paper,
/// and its future-work direction). How these values are *measured* is out of
/// scope of the paper (it cites Munaretto & Fonseca); here they are inputs.
struct LinkQos {
  double bandwidth = 1.0;  ///< available bandwidth (higher is better)
  double delay = 1.0;      ///< one-hop delay (lower is better)
  double jitter = 0.0;     ///< delay variation (lower is better, additive)
  double loss_cost = 0.0;  ///< -log(1-p) success-cost form (additive)
  double energy = 1.0;     ///< energy to transmit over this link (additive)
  double buffers = 1.0;    ///< free buffers at the downstream node (concave)

  friend bool operator==(const LinkQos&, const LinkQos&) = default;
};

/// Folds a QoS tuple into a running digest by its exact IEEE-754 bit
/// patterns. The wire codec serializes doubles via the same bit_cast
/// (proto/wire_endian.hpp), so a QoS value that crossed a real socket
/// folds identically to the in-process original — bit-exact equality,
/// which the cross-backend converged-digest comparison depends on.
inline std::uint64_t digest_qos(std::uint64_t h, const LinkQos& q) {
  h = util::digest_mix(h, std::bit_cast<std::uint64_t>(q.bandwidth));
  h = util::digest_mix(h, std::bit_cast<std::uint64_t>(q.delay));
  h = util::digest_mix(h, std::bit_cast<std::uint64_t>(q.jitter));
  h = util::digest_mix(h, std::bit_cast<std::uint64_t>(q.loss_cost));
  h = util::digest_mix(h, std::bit_cast<std::uint64_t>(q.energy));
  return util::digest_mix(h, std::bit_cast<std::uint64_t>(q.buffers));
}

}  // namespace qolsr
