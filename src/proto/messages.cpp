#include "proto/messages.hpp"

#include <cmath>

#include "proto/wire_endian.hpp"

namespace qolsr {

namespace {

// The codec is pinned little-endian via the shared wire::Writer/Reader
// helpers (proto/wire_endian.hpp) — the same pair the net/ datagram
// framing uses, so a socket wire run exchanges exactly the bytes the
// in-process simulation serializes.
using wire::Reader;
using wire::Writer;

void write_header(Writer& w, const PacketHeader& h) {
  w.u8(static_cast<std::uint8_t>(h.type));
  w.u32(h.originator);
  w.u16(h.sequence);
  w.u8(h.ttl);
  w.u8(h.hop_count);
}

bool read_header(Reader& r, PacketHeader& h) {
  std::uint8_t type = 0;
  if (!r.u8(type) || !r.u32(h.originator) || !r.u16(h.sequence) ||
      !r.u8(h.ttl) || !r.u8(h.hop_count))
    return false;
  if (type != static_cast<std::uint8_t>(MessageType::kHello) &&
      type != static_cast<std::uint8_t>(MessageType::kTc) &&
      type != static_cast<std::uint8_t>(MessageType::kData))
    return false;
  h.type = static_cast<MessageType>(type);
  return true;
}

void write_advert(Writer& w, const LinkAdvert& a) {
  w.u32(a.neighbor);
  w.u8(static_cast<std::uint8_t>(a.status));
  w.f64(a.qos.bandwidth);
  w.f64(a.qos.delay);
  w.f64(a.qos.jitter);
  w.f64(a.qos.loss_cost);
  w.f64(a.qos.energy);
  w.f64(a.qos.buffers);
}

/// Every QoS quantity on the wire is a nonnegative finite measurement; a
/// NaN/Inf/negative double (a bit-flipped frame, or a hostile sender) must
/// not reach the metric algebra.
bool valid_qos(double v) { return std::isfinite(v) && v >= 0.0; }

bool read_advert(Reader& r, LinkAdvert& a) {
  std::uint8_t status = 0;
  if (!r.u32(a.neighbor) || !r.u8(status) || !r.f64(a.qos.bandwidth) ||
      !r.f64(a.qos.delay) || !r.f64(a.qos.jitter) ||
      !r.f64(a.qos.loss_cost) || !r.f64(a.qos.energy) ||
      !r.f64(a.qos.buffers))
    return false;
  if (status < static_cast<std::uint8_t>(LinkStatus::kAsymmetric) ||
      status > static_cast<std::uint8_t>(LinkStatus::kMpr))
    return false;
  if (!valid_qos(a.qos.bandwidth) || !valid_qos(a.qos.delay) ||
      !valid_qos(a.qos.jitter) || !valid_qos(a.qos.loss_cost) ||
      !valid_qos(a.qos.energy) || !valid_qos(a.qos.buffers))
    return false;
  a.status = static_cast<LinkStatus>(status);
  return true;
}

constexpr std::size_t kHeaderBytes = 1 + 4 + 2 + 1 + 1;
constexpr std::size_t kAdvertBytes = 4 + 1 + 6 * 8;

}  // namespace

std::vector<std::byte> serialize(const PacketHeader& header,
                                 const HelloMessage& hello) {
  std::vector<std::byte> out;
  out.reserve(kHeaderBytes + 5 + 2 + hello.links.size() * kAdvertBytes);
  Writer w(out);
  write_header(w, header);
  w.u32(hello.originator);
  w.u8(hello.willingness);
  w.u16(static_cast<std::uint16_t>(hello.links.size()));
  for (const LinkAdvert& a : hello.links) write_advert(w, a);
  return out;
}

std::vector<std::byte> serialize(const PacketHeader& header,
                                 const TcMessage& tc) {
  std::vector<std::byte> out;
  out.reserve(tc_wire_size(tc.advertised.size()));
  Writer w(out);
  write_header(w, header);
  w.u32(tc.originator);
  w.u16(tc.ansn);
  w.u16(static_cast<std::uint16_t>(tc.advertised.size()));
  for (const LinkAdvert& a : tc.advertised) write_advert(w, a);
  return out;
}

std::vector<std::byte> serialize(const PacketHeader& header,
                                 const DataMessage& data) {
  std::vector<std::byte> out;
  out.reserve(kHeaderBytes + 12);
  Writer w(out);
  write_header(w, header);
  w.u32(data.source);
  w.u32(data.destination);
  w.u32(data.payload_id);
  return out;
}

std::optional<ParsedPacket> parse_packet(const std::vector<std::byte>& bytes) {
  Reader r(bytes);
  ParsedPacket packet;
  if (!read_header(r, packet.header)) return std::nullopt;
  switch (packet.header.type) {
    case MessageType::kHello: {
      HelloMessage hello;
      std::uint16_t count = 0;
      if (!r.u32(hello.originator) || !r.u8(hello.willingness) ||
          !r.u16(count))
        return std::nullopt;
      // Length check before allocation: a hostile count field must not
      // size a vector the payload cannot back (and trailing garbage is
      // rejected here instead of after count adverts of work).
      if (r.remaining() != count * kAdvertBytes) return std::nullopt;
      hello.links.resize(count);
      for (LinkAdvert& a : hello.links)
        if (!read_advert(r, a)) return std::nullopt;
      if (!r.done()) return std::nullopt;
      packet.hello = std::move(hello);
      return packet;
    }
    case MessageType::kTc: {
      TcMessage tc;
      std::uint16_t count = 0;
      if (!r.u32(tc.originator) || !r.u16(tc.ansn) || !r.u16(count))
        return std::nullopt;
      if (r.remaining() != count * kAdvertBytes) return std::nullopt;
      tc.advertised.resize(count);
      for (LinkAdvert& a : tc.advertised)
        if (!read_advert(r, a)) return std::nullopt;
      if (!r.done()) return std::nullopt;
      packet.tc = std::move(tc);
      return packet;
    }
    case MessageType::kData: {
      DataMessage data;
      if (!r.u32(data.source) || !r.u32(data.destination) ||
          !r.u32(data.payload_id))
        return std::nullopt;
      if (!r.done()) return std::nullopt;
      packet.data = data;
      return packet;
    }
  }
  return std::nullopt;
}

std::size_t tc_wire_size(std::size_t ans_size) {
  return kHeaderBytes + 4 + 2 + 2 + ans_size * kAdvertBytes;
}

namespace {
/// Serialized data frame: header + source u32 + destination u32 +
/// payload_id u32. The payload id therefore sits at a fixed offset.
constexpr std::size_t kDataFrameBytes = kHeaderBytes + 12;
constexpr std::size_t kPayloadIdOffset = kHeaderBytes + 8;
}  // namespace

bool is_data_frame(const std::vector<std::byte>& bytes) {
  return bytes.size() == kDataFrameBytes &&
         static_cast<std::uint8_t>(bytes[0]) ==
             static_cast<std::uint8_t>(MessageType::kData);
}

std::uint32_t peek_data_payload_id(const std::vector<std::byte>& bytes) {
  if (!is_data_frame(bytes)) return 0;
  std::uint32_t id = 0;
  for (std::size_t i = 0; i < 4; ++i)
    id |= static_cast<std::uint32_t>(bytes[kPayloadIdOffset + i]) << (8 * i);
  return id;
}

}  // namespace qolsr
