#pragma once

#include <map>
#include <vector>

#include "graph/local_view.hpp"
#include "graph/node_id.hpp"
#include "proto/messages.hpp"

namespace qolsr {

/// HELLO-derived neighbor state of one node: the link set (with the RFC
/// 3626 two-way handshake), each symmetric neighbor's own advertised link
/// table (giving the 2-hop view), and who selected us as MPR.
///
/// Timers are simulated seconds; an entry not refreshed within `hold_time`
/// vanishes, so a dead link heals out of the tables automatically.
class NeighborTables {
 public:
  explicit NeighborTables(NodeId self, double hold_time = 6.0)
      : self_(self), hold_time_(hold_time) {}

  /// What a mutation (on_hello / expire) changed — the two facets derived
  /// state cares about: `digest_changed` means the fold `digest` computes
  /// is different (an entry appeared/vanished, a sym bit or MPR-selector
  /// bit flipped), i.e. the convergence detector must see a state change;
  /// `view_changed` means the node's own symmetric-link contribution to
  /// its knowledge graph (symmetric neighbor set or a symmetric link's
  /// QoS) is different, i.e. a cached routing view must be invalidated.
  /// Timer refreshes that alter neither report {false, false}.
  struct Outcome {
    bool digest_changed = false;
    bool view_changed = false;
  };

  /// Processes a received HELLO. `qos` is the measured QoS of the link the
  /// HELLO arrived on (link measurement is out of the paper's scope; the
  /// simulator supplies the ground-truth value).
  Outcome on_hello(const HelloMessage& hello, const LinkQos& qos, double now);

  /// Drops expired links / neighbor tables / selector entries.
  Outcome expire(double now);

  /// Forgets every neighbor — the per-run reset of a reused protocol stack.
  void clear() { links_.clear(); }

  /// Folds the link-state that selection depends on — symmetric neighbor
  /// ids and who selected us as MPR — into a running state digest. Hold
  /// timers are excluded so periodic HELLO refreshes don't read as change
  /// (see Simulator::run_to_convergence).
  std::uint64_t digest(std::uint64_t h) const;

  /// The cross-process comparison fold: everything `digest` covers *plus*
  /// the measured link QoS (exact IEEE bits) and each neighbor's
  /// advertised link table — but still no timers, sequence numbers or any
  /// other history of how the state was reached. The converged link state
  /// on a loss-free medium is a pure function of (topology, selectors),
  /// so a wall-clock wire daemon and the discrete-event Simulator fold to
  /// the *same* value here even though their schedules (and hold-time
  /// deadlines) differ — the equality the wire backend asserts.
  std::uint64_t converged_digest(std::uint64_t h) const;

  /// Symmetric neighbors, ascending id.
  std::vector<NodeId> symmetric_neighbors() const;

  /// Visits every symmetric neighbor as (id, qos), ascending id — the
  /// allocation-free counterpart of symmetric_neighbors() + link_qos()
  /// used by the cached knowledge-graph rebuild.
  template <typename Fn>
  void for_each_symmetric(Fn&& fn) const {
    for (const auto& [id, entry] : links_)
      if (entry.sym_until >= 0.0) fn(id, entry.qos);
  }

  /// Every neighbor with a live (possibly still asymmetric) link entry,
  /// ascending id — what a HELLO must list for the two-way handshake.
  std::vector<NodeId> heard_neighbors() const;

  /// True when `neighbor` advertises us as its MPR — i.e. we must forward
  /// its floods (and it belongs to our MPR-selector set).
  bool selected_us_as_mpr(NodeId neighbor) const;

  /// True when the two-way handshake with `neighbor` completed.
  bool is_symmetric(NodeId neighbor) const;

  /// QoS of the (symmetric) link to `neighbor`; nullptr when unknown.
  const LinkQos* link_qos(NodeId neighbor) const;

  /// Nodes that advertise us as their MPR (our MPR-selector set — what
  /// original OLSR would advertise in TCs).
  std::vector<NodeId> mpr_selectors() const;

  /// Builds the local view G_self from the HELLO state: our symmetric
  /// links plus every symmetric neighbor's advertised links.
  LocalView build_local_view() const;

 private:
  struct LinkEntry {
    LinkQos qos;
    double sym_until = -1.0;   ///< symmetric while now < sym_until
    double asym_until = -1.0;  ///< heard-from while now < asym_until
    bool selected_us_mpr = false;
    std::vector<LinkAdvert> advertised;  ///< neighbor's own link table
  };

  NodeId self_;
  double hold_time_;
  std::map<NodeId, LinkEntry> links_;  // ordered => deterministic iteration
};

}  // namespace qolsr
