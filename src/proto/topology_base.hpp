#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/node_id.hpp"
#include "proto/messages.hpp"

namespace qolsr {

/// RFC 3626 §19 circular comparison over the 16-bit sequence space: is
/// `a` newer than `b`? Wrap-aware — 0 is newer than 65535 — and exactly
/// half the space (32768 values) counts as "newer", so a stale replay from
/// the recent past is always rejected while an honest wrap is accepted.
inline bool ansn_newer(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::uint16_t>(a - b) < 0x8000 && a != b;
}

/// RFC 3626 topology information base: what a node has learned from TC
/// floods. Keyed by originator; a newer ANSN replaces the stale advert,
/// and entries expire when not refreshed.
class TopologyBase {
 public:
  explicit TopologyBase(double hold_time = 15.0) : hold_time_(hold_time) {}

  /// What apply_tc did with a TC — the change taxonomy the caller needs to
  /// keep derived state coherent without diffing the whole base:
  ///  - `fresh`: the TC was accepted (not rejected as a stale ANSN).
  ///  - `links_changed`: the held advertised neighbor-id sequence changed,
  ///    i.e. the accept is visible to `digest` (a pure refresh that renews
  ///    the hold time of an identical advertisement is not).
  ///  - `view_changed`: the *routing view* contribution of this originator
  ///    changed — neighbor ids or QoS differ, or a held-but-expired entry
  ///    (excluded from the validity-aware to_graph) came back to life — so
  ///    any cached to_graph product must be invalidated.
  struct TcOutcome {
    bool fresh = false;
    bool links_changed = false;
    bool view_changed = false;
  };

  /// Processes a TC and reports exactly what changed.
  TcOutcome apply_tc(const TcMessage& tc, double now);

  /// Processes a TC. Returns false when the TC is stale (older ANSN than
  /// what we hold) and was ignored.
  bool on_tc(const TcMessage& tc, double now) {
    return apply_tc(tc, now).fresh;
  }

  /// Drops entries past their hold time. Returns true when anything was
  /// removed — a digest-visible state change.
  bool expire(double now);

  /// Earliest hold-time deadline over every held entry (+infinity when the
  /// base is empty) — when the next expiry-driven purge event is due.
  double next_expiry() const;

  /// Drops every entry — the per-run reset of a reused protocol stack.
  void clear() { entries_.clear(); }

  /// All live advertised links, as an undirected QoS graph over
  /// `node_count` nodes — the knowledge a routing-table computation merges
  /// with the local view.
  Graph to_graph(std::size_t node_count) const;

  /// Validity-aware form (RFC 3626 soft state): entries whose hold time
  /// has passed by `now` are excluded even when the periodic purge has not
  /// run yet — what a node should route on between expiry sweeps. With a
  /// healthy control plane every entry is continually refreshed and both
  /// forms agree; under loss or crash faults this is where stale links
  /// disappear first.
  Graph to_graph(std::size_t node_count, double now) const;

  /// Rebuilds `out` in place (capacity-preserving) with exactly what the
  /// validity-aware to_graph would return, and reports how long the result
  /// stays faithful: the earliest hold-time deadline among the *included*
  /// entries (+infinity when none expire). Until that instant — and absent
  /// any mutation — a caller may keep routing on `out` without rebuilding.
  double to_graph_into(Graph& out, std::size_t node_count, double now) const;

  /// Live advertised set of one originator (empty when unknown).
  std::vector<NodeId> advertised_of(NodeId originator) const;

  /// The ANSN currently held for `originator` (nullopt when unknown) — the
  /// value a fresher TC must beat under ansn_newer.
  std::optional<std::uint16_t> ansn_of(NodeId originator) const;

  /// Visits every held advert as (originator, advert), in deterministic
  /// (ordered-map) order — the invariant monitor's audit walks this to
  /// compare a converged base against the ground-truth graph.
  template <typename Fn>
  void for_each_advert(Fn&& fn) const {
    for (const auto& [originator, entry] : entries_)
      for (const LinkAdvert& a : entry.advertised) fn(originator, a);
  }

  std::size_t originator_count() const { return entries_.size(); }

  /// Folds the advertised topology — (originator, advertised neighbor)
  /// pairs, deterministic order — into a running state digest. Expiry
  /// timestamps are deliberately excluded: periodic TC refreshes that keep
  /// the same advertisement alive must not look like state changes to the
  /// convergence detector (see Simulator::run_to_convergence).
  std::uint64_t digest(std::uint64_t h) const;

  /// The cross-process comparison fold: the advertised topology *with*
  /// each advert's status and QoS bits — but still excluding ANSN and
  /// expiry timestamps. ANSN is history (how many TC generations it took
  /// to reach the fixpoint differs between a wall-clock wire run and the
  /// event-driven Simulator); the converged advert content is not. See
  /// NeighborTables::converged_digest for the equality this underwrites.
  std::uint64_t converged_digest(std::uint64_t h) const;

 private:
  struct Entry {
    std::uint16_t ansn = 0;
    double expires = 0.0;
    std::vector<LinkAdvert> advertised;
  };

  /// ANSN comparison with wrap-around (RFC 3626 §9.2 semantics).
  static bool newer(std::uint16_t a, std::uint16_t b) {
    return ansn_newer(a, b);
  }

  double hold_time_;
  std::map<NodeId, Entry> entries_;
};

}  // namespace qolsr
