#include "proto/neighbor_tables.hpp"

#include <algorithm>

#include "util/digest.hpp"

namespace qolsr {

NeighborTables::Outcome NeighborTables::on_hello(const HelloMessage& hello,
                                                 const LinkQos& qos,
                                                 double now) {
  const auto [it, inserted] = links_.try_emplace(hello.originator);
  LinkEntry& entry = it->second;
  const bool was_sym = !inserted && entry.sym_until >= 0.0;
  const bool was_mpr = !inserted && entry.selected_us_mpr;
  const LinkQos old_qos = entry.qos;
  entry.qos = qos;
  entry.asym_until = now + hold_time_;
  // Two-way handshake: the link is symmetric iff the sender lists us.
  entry.selected_us_mpr = false;
  bool lists_us = false;
  for (const LinkAdvert& a : hello.links) {
    if (a.neighbor != self_) continue;
    lists_us = true;
    if (a.status == LinkStatus::kMpr) entry.selected_us_mpr = true;
  }
  if (lists_us) entry.sym_until = now + hold_time_;
  // The sender's full (symmetric) link table gives us the 2-hop view.
  entry.advertised.clear();
  for (const LinkAdvert& a : hello.links) {
    if (a.status == LinkStatus::kAsymmetric) continue;  // not yet usable
    entry.advertised.push_back(a);
  }
  const bool is_sym = entry.sym_until >= 0.0;
  Outcome out;
  out.digest_changed =
      inserted || was_sym != is_sym || was_mpr != entry.selected_us_mpr;
  out.view_changed = was_sym != is_sym || (is_sym && !(old_qos == entry.qos));
  return out;
}

NeighborTables::Outcome NeighborTables::expire(double now) {
  Outcome out;
  for (auto it = links_.begin(); it != links_.end();) {
    if (it->second.asym_until < now) {
      if (it->second.sym_until >= 0.0) out.view_changed = true;
      out.digest_changed = true;  // the digest folds every held entry
      it = links_.erase(it);
    } else {
      if (it->second.sym_until >= 0.0 && it->second.sym_until < now) {
        it->second.sym_until = -1.0;
        out.digest_changed = true;
        out.view_changed = true;
      }
      ++it;
    }
  }
  return out;
}

std::uint64_t NeighborTables::digest(std::uint64_t h) const {
  for (const auto& [id, entry] : links_) {  // ordered map: stable fold order
    h = util::digest_mix(h, id);
    h = util::digest_mix(h, (entry.sym_until >= 0.0 ? 2u : 0u) |
                                (entry.selected_us_mpr ? 1u : 0u));
  }
  return h;
}

std::uint64_t NeighborTables::converged_digest(std::uint64_t h) const {
  for (const auto& [id, entry] : links_) {  // ordered map: stable fold order
    h = util::digest_mix(h, id);
    h = util::digest_mix(h, (entry.sym_until >= 0.0 ? 2u : 0u) |
                                (entry.selected_us_mpr ? 1u : 0u));
    h = digest_qos(h, entry.qos);
    h = util::digest_mix(h, entry.advertised.size());
    for (const LinkAdvert& a : entry.advertised) {
      h = util::digest_mix(h, a.neighbor);
      h = util::digest_mix(h, static_cast<std::uint64_t>(a.status));
      h = digest_qos(h, a.qos);
    }
  }
  return h;
}

std::vector<NodeId> NeighborTables::symmetric_neighbors() const {
  std::vector<NodeId> result;
  for (const auto& [id, entry] : links_)
    if (entry.sym_until >= 0.0) result.push_back(id);
  return result;  // std::map iteration is already ascending
}

std::vector<NodeId> NeighborTables::heard_neighbors() const {
  std::vector<NodeId> result;
  result.reserve(links_.size());
  for (const auto& [id, entry] : links_) {
    (void)entry;
    result.push_back(id);
  }
  return result;
}

bool NeighborTables::selected_us_as_mpr(NodeId neighbor) const {
  auto it = links_.find(neighbor);
  return it != links_.end() && it->second.sym_until >= 0.0 &&
         it->second.selected_us_mpr;
}

bool NeighborTables::is_symmetric(NodeId neighbor) const {
  auto it = links_.find(neighbor);
  return it != links_.end() && it->second.sym_until >= 0.0;
}

const LinkQos* NeighborTables::link_qos(NodeId neighbor) const {
  auto it = links_.find(neighbor);
  if (it == links_.end()) return nullptr;
  return &it->second.qos;
}

std::vector<NodeId> NeighborTables::mpr_selectors() const {
  std::vector<NodeId> result;
  for (const auto& [id, entry] : links_)
    if (entry.sym_until >= 0.0 && entry.selected_us_mpr)
      result.push_back(id);
  return result;
}

LocalView NeighborTables::build_local_view() const {
  std::vector<LocalView::NeighborLink> one_hop;
  std::vector<std::vector<LocalView::NeighborLink>> neighbor_links;
  for (const auto& [id, entry] : links_) {
    if (entry.sym_until < 0.0) continue;
    one_hop.push_back({id, entry.qos});
    std::vector<LocalView::NeighborLink> advertised;
    advertised.reserve(entry.advertised.size());
    for (const LinkAdvert& a : entry.advertised)
      advertised.push_back({a.neighbor, a.qos});
    neighbor_links.push_back(std::move(advertised));
  }
  return LocalView(self_, one_hop, neighbor_links);
}

}  // namespace qolsr
