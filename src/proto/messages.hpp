#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "graph/node_id.hpp"
#include "metrics/link_qos.hpp"

namespace qolsr {

/// OLSR control-plane message types (plus a data packet for the
/// forwarding-path integration tests).
enum class MessageType : std::uint8_t {
  kHello = 1,
  kTc = 2,
  kData = 3,
};

/// Link status carried in HELLO link adverts (RFC 3626 link codes, reduced
/// to what the ideal-MAC simulation distinguishes).
enum class LinkStatus : std::uint8_t {
  kAsymmetric = 1,  ///< heard the neighbor, handshake incomplete
  kSymmetric = 2,   ///< two-way verified
  kMpr = 3,         ///< symmetric and selected as MPR by the sender
};

/// One advertised link inside a HELLO or TC: the neighbor and the measured
/// QoS of the link to it. QOLSR-style HELLOs piggyback QoS so neighbors can
/// build the QoS-weighted 2-hop view G_u (paper §III-B: "piggybacking
/// neighborhood table in Hello messages").
struct LinkAdvert {
  NodeId neighbor = kInvalidNode;
  LinkStatus status = LinkStatus::kSymmetric;
  LinkQos qos;

  friend bool operator==(const LinkAdvert&, const LinkAdvert&) = default;
};

struct HelloMessage {
  NodeId originator = kInvalidNode;
  std::uint8_t willingness = 3;  ///< WILL_DEFAULT
  std::vector<LinkAdvert> links;

  friend bool operator==(const HelloMessage&, const HelloMessage&) = default;
};

/// Topology Control message: the originator's *advertised neighbor set*
/// with link QoS. In original OLSR this is the MPR-selector set; with a
/// QANS scheme it is the ANS — exactly the set whose size Figs. 6/7 plot,
/// since it determines TC message size.
struct TcMessage {
  NodeId originator = kInvalidNode;
  std::uint16_t ansn = 0;  ///< advertised neighbor sequence number
  std::vector<LinkAdvert> advertised;

  friend bool operator==(const TcMessage&, const TcMessage&) = default;
};

/// Minimal data packet for forwarding tests.
struct DataMessage {
  NodeId source = kInvalidNode;
  NodeId destination = kInvalidNode;
  std::uint32_t payload_id = 0;

  friend bool operator==(const DataMessage&, const DataMessage&) = default;
};

/// Common packet envelope: every OLSR message is flooded/forwarded with an
/// originator sequence number (duplicate suppression) and a TTL.
struct PacketHeader {
  MessageType type = MessageType::kHello;
  NodeId originator = kInvalidNode;
  std::uint16_t sequence = 0;
  std::uint8_t ttl = 255;
  std::uint8_t hop_count = 0;

  friend bool operator==(const PacketHeader&, const PacketHeader&) = default;
};

/// Serialization: portable little-endian wire format. Sizes are what the
/// control-overhead statistics count.
std::vector<std::byte> serialize(const PacketHeader& header,
                                 const HelloMessage& hello);
std::vector<std::byte> serialize(const PacketHeader& header,
                                 const TcMessage& tc);
std::vector<std::byte> serialize(const PacketHeader& header,
                                 const DataMessage& data);

struct ParsedPacket {
  PacketHeader header;
  std::optional<HelloMessage> hello;
  std::optional<TcMessage> tc;
  std::optional<DataMessage> data;
};

/// Parses a packet produced by `serialize`. Returns nullopt on truncated or
/// malformed input (never reads out of bounds).
std::optional<ParsedPacket> parse_packet(const std::vector<std::byte>& bytes);

/// Wire size in bytes of a TC advertising `ans_size` links — used to report
/// control overhead as bytes, connecting set size to the paper's motivation
/// (smaller ANS ⇒ smaller TC messages).
std::size_t tc_wire_size(std::size_t ans_size);

/// Cheap wire peeks for medium-layer accounting (the capacity model must
/// classify and attribute frames without paying a full parse per queued
/// delivery). Both tolerate arbitrary byte strings: a frame that is not a
/// well-formed data packet is simply "not data" / payload id 0.
bool is_data_frame(const std::vector<std::byte>& bytes);
std::uint32_t peek_data_payload_id(const std::vector<std::byte>& bytes);

}  // namespace qolsr
