#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/node_id.hpp"

namespace qolsr {

/// RFC 3626 duplicate set: remembers (originator, sequence) pairs of
/// flooded messages so each node processes and retransmits a message at
/// most once. Entries expire after `hold_time` simulated seconds.
///
/// Storage is a pooled open-addressing table (power-of-two capacity,
/// linear probing): once the table has grown to a run's high-water live
/// set, check_and_insert and expire never allocate again — the expiry
/// sweep compacts into a same-capacity spare buffer and swaps, and clear()
/// keeps the capacity for the next run. The previous unordered_map paid
/// one node allocation per recorded flood, which was the last per-packet
/// allocation on the steady-state TC forwarding path.
class DuplicateSet {
 public:
  explicit DuplicateSet(double hold_time = 30.0) : hold_time_(hold_time) {}

  /// True when the message is new; records it either way.
  bool check_and_insert(NodeId originator, std::uint16_t sequence,
                        double now);

  /// Drops expired entries. Called opportunistically.
  void expire(double now);

  /// Forgets everything — the per-run reset of a reused protocol stack.
  /// Capacity is retained.
  void clear();

  /// Recorded entries, including ones past their hold time that no expire
  /// sweep has reclaimed yet (same semantics as the map it replaced).
  std::size_t size() const { return size_; }

  /// Current slot-table capacity (tests pin that steady state never grows).
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    double expires = 0.0;
  };
  /// Real keys are (originator << 16) | sequence with 32-bit originators —
  /// always < 2^48 — so the all-ones sentinel never collides.
  static constexpr std::uint64_t kEmptyKey = ~0ULL;
  static constexpr std::size_t kMinCapacity = 64;

  static std::uint64_t key(NodeId originator, std::uint16_t sequence) {
    return (static_cast<std::uint64_t>(originator) << 16) | sequence;
  }
  /// Fibonacci multiplicative hash onto the top log2(capacity) bits.
  std::size_t bucket(std::uint64_t k, std::size_t capacity) const {
    return static_cast<std::size_t>((k * 0x9e3779b97f4a7c15ULL) >>
                                    (64 - shift_)) &
           (capacity - 1);
  }
  void rehash(std::size_t new_capacity);

  double hold_time_;
  std::vector<Slot> slots_;
  std::vector<Slot> spare_;  ///< expire()'s compaction target (same size)
  std::size_t size_ = 0;
  unsigned shift_ = 0;  ///< log2(slots_.size())
};

}  // namespace qolsr
