#pragma once

#include <cstdint>
#include <unordered_map>

#include "graph/node_id.hpp"

namespace qolsr {

/// RFC 3626 duplicate set: remembers (originator, sequence) pairs of
/// flooded messages so each node processes and retransmits a message at
/// most once. Entries expire after `hold_time` simulated seconds.
class DuplicateSet {
 public:
  explicit DuplicateSet(double hold_time = 30.0) : hold_time_(hold_time) {}

  /// True when the message is new; records it either way.
  bool check_and_insert(NodeId originator, std::uint16_t sequence,
                        double now);

  /// Drops expired entries. Called opportunistically.
  void expire(double now);

  /// Forgets everything — the per-run reset of a reused protocol stack.
  void clear() { entries_.clear(); }

  std::size_t size() const { return entries_.size(); }

 private:
  static std::uint64_t key(NodeId originator, std::uint16_t sequence) {
    return (static_cast<std::uint64_t>(originator) << 16) | sequence;
  }

  double hold_time_;
  std::unordered_map<std::uint64_t, double> entries_;  // key -> expiry
};

}  // namespace qolsr
