#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qolsr::wire {

/// The codec's byte order, pinned explicitly: every multi-byte quantity in
/// the repository's wire formats — the OLSR packet codec (proto/messages)
/// and the net/ datagram framing — is serialized **little-endian by
/// construction** (byte-by-byte shifts, never a memcpy of host
/// representation), so two hosts of different endianness exchange
/// bit-identical frames. Doubles travel as the little-endian bytes of
/// their IEEE-754 bit pattern (std::bit_cast), which round-trips exactly —
/// the cross-backend digest comparisons depend on that exactness.
///
/// tests/proto/wire_golden_test.cpp pins the resulting byte dumps, so a
/// codec change that silently reorders bytes fails a golden, not a
/// cross-host interop run.

/// Little-endian byte writer (appends to a caller-owned buffer).
class Writer {
 public:
  explicit Writer(std::vector<std::byte>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

 private:
  std::vector<std::byte>& out_;
};

/// Bounds-checked little-endian reader. Every accessor returns false on
/// truncation instead of reading out of bounds — the hardened-parser
/// contract the codec fuzz harness hammers.
class Reader {
 public:
  Reader(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::byte>& in)
      : Reader(in.data(), in.size()) {}

  bool u8(std::uint8_t& v) {
    if (pos_ >= size_) return false;
    v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }
  bool u16(std::uint16_t& v) {
    std::uint8_t lo = 0, hi = 0;
    if (!u8(lo) || !u8(hi)) return false;
    v = static_cast<std::uint16_t>(lo | (hi << 8));
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint16_t lo = 0, hi = 0;
    if (!u16(lo) || !u16(hi)) return false;
    v = static_cast<std::uint32_t>(lo) |
        (static_cast<std::uint32_t>(hi) << 16);
    return true;
  }
  bool u64(std::uint64_t& v) {
    std::uint32_t lo = 0, hi = 0;
    if (!u32(lo) || !u32(hi)) return false;
    v = static_cast<std::uint64_t>(lo) |
        (static_cast<std::uint64_t>(hi) << 32);
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }
  bool done() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace qolsr::wire
