#include "proto/topology_base.hpp"

#include "util/digest.hpp"

namespace qolsr {

bool TopologyBase::on_tc(const TcMessage& tc, double now) {
  auto it = entries_.find(tc.originator);
  if (it != entries_.end() && it->second.expires >= now &&
      !newer(tc.ansn, it->second.ansn) && tc.ansn != it->second.ansn) {
    return false;  // stale
  }
  Entry& entry = entries_[tc.originator];
  entry.ansn = tc.ansn;
  entry.expires = now + hold_time_;
  entry.advertised = tc.advertised;
  return true;
}

void TopologyBase::expire(double now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires < now) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

Graph TopologyBase::to_graph(std::size_t node_count) const {
  return to_graph(node_count, -std::numeric_limits<double>::infinity());
}

Graph TopologyBase::to_graph(std::size_t node_count, double now) const {
  Graph graph(node_count);
  for (const auto& [originator, entry] : entries_) {
    if (originator >= node_count) continue;
    if (entry.expires < now) continue;  // held but already invalid
    for (const LinkAdvert& a : entry.advertised) {
      if (a.neighbor >= node_count) continue;
      if (!graph.has_edge(originator, a.neighbor))
        graph.add_edge(originator, a.neighbor, a.qos);
    }
  }
  return graph;
}

std::uint64_t TopologyBase::digest(std::uint64_t h) const {
  for (const auto& [originator, entry] : entries_) {  // ordered map: stable
    h = util::digest_mix(h, originator);
    for (const LinkAdvert& a : entry.advertised)
      h = util::digest_mix(h, a.neighbor);
  }
  return h;
}

std::optional<std::uint16_t> TopologyBase::ansn_of(NodeId originator) const {
  auto it = entries_.find(originator);
  if (it == entries_.end()) return std::nullopt;
  return it->second.ansn;
}

std::vector<NodeId> TopologyBase::advertised_of(NodeId originator) const {
  std::vector<NodeId> result;
  auto it = entries_.find(originator);
  if (it == entries_.end()) return result;
  for (const LinkAdvert& a : it->second.advertised)
    result.push_back(a.neighbor);
  return result;
}

}  // namespace qolsr
