#include "proto/topology_base.hpp"

#include <algorithm>
#include <limits>

#include "util/digest.hpp"

namespace qolsr {

namespace {

/// Same advertised neighbor-id sequence? Order-sensitive on purpose — the
/// digest and to_graph both walk the sequence in held order.
bool same_links(const std::vector<LinkAdvert>& a,
                const std::vector<LinkAdvert>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].neighbor != b[i].neighbor) return false;
  return true;
}

/// Same (neighbor, qos) sequence — whether the entry's routing-view
/// contribution is unchanged.
bool same_view(const std::vector<LinkAdvert>& a,
               const std::vector<LinkAdvert>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].neighbor != b[i].neighbor || !(a[i].qos == b[i].qos))
      return false;
  return true;
}

}  // namespace

TopologyBase::TcOutcome TopologyBase::apply_tc(const TcMessage& tc,
                                               double now) {
  TcOutcome out;
  auto it = entries_.find(tc.originator);
  if (it != entries_.end() && it->second.expires >= now &&
      !newer(tc.ansn, it->second.ansn) && tc.ansn != it->second.ansn) {
    return out;  // stale — every flag false
  }
  out.fresh = true;
  if (it == entries_.end()) {
    // New originator: digest folds the originator id, so even an empty
    // advertisement is a visible change.
    out.links_changed = true;
    out.view_changed = !tc.advertised.empty();
    Entry& entry = entries_[tc.originator];
    entry.ansn = tc.ansn;
    entry.expires = now + hold_time_;
    entry.advertised = tc.advertised;
    return out;
  }
  Entry& entry = it->second;
  // The digest ignores expiry, so `links_changed` compares against the
  // held advertisement regardless of validity; the routing view is
  // validity-aware, so a held-but-expired entry contributed nothing and
  // any non-empty refresh revives it.
  out.links_changed = !same_links(entry.advertised, tc.advertised);
  out.view_changed = entry.expires < now
                         ? !tc.advertised.empty()
                         : !same_view(entry.advertised, tc.advertised);
  entry.ansn = tc.ansn;
  entry.expires = now + hold_time_;
  entry.advertised = tc.advertised;
  return out;
}

bool TopologyBase::expire(double now) {
  bool removed = false;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires < now) {
      it = entries_.erase(it);
      removed = true;
    } else {
      ++it;
    }
  }
  return removed;
}

double TopologyBase::next_expiry() const {
  double next = std::numeric_limits<double>::infinity();
  for (const auto& [originator, entry] : entries_)
    next = std::min(next, entry.expires);
  return next;
}

Graph TopologyBase::to_graph(std::size_t node_count) const {
  return to_graph(node_count, -std::numeric_limits<double>::infinity());
}

Graph TopologyBase::to_graph(std::size_t node_count, double now) const {
  Graph graph(node_count);
  to_graph_into(graph, node_count, now);
  return graph;
}

double TopologyBase::to_graph_into(Graph& out, std::size_t node_count,
                                   double now) const {
  out.reset_nodes(node_count);
  double fresh_until = std::numeric_limits<double>::infinity();
  for (const auto& [originator, entry] : entries_) {
    if (originator >= node_count) continue;
    if (entry.expires < now) continue;  // held but already invalid
    fresh_until = std::min(fresh_until, entry.expires);
    for (const LinkAdvert& a : entry.advertised) {
      if (a.neighbor >= node_count) continue;
      if (!out.has_edge(originator, a.neighbor))
        out.add_edge(originator, a.neighbor, a.qos);
    }
  }
  return fresh_until;
}

std::uint64_t TopologyBase::digest(std::uint64_t h) const {
  for (const auto& [originator, entry] : entries_) {  // ordered map: stable
    h = util::digest_mix(h, originator);
    for (const LinkAdvert& a : entry.advertised)
      h = util::digest_mix(h, a.neighbor);
  }
  return h;
}

std::uint64_t TopologyBase::converged_digest(std::uint64_t h) const {
  for (const auto& [originator, entry] : entries_) {  // ordered map: stable
    h = util::digest_mix(h, originator);
    h = util::digest_mix(h, entry.advertised.size());
    for (const LinkAdvert& a : entry.advertised) {
      h = util::digest_mix(h, a.neighbor);
      h = util::digest_mix(h, static_cast<std::uint64_t>(a.status));
      h = digest_qos(h, a.qos);
    }
  }
  return h;
}

std::optional<std::uint16_t> TopologyBase::ansn_of(NodeId originator) const {
  auto it = entries_.find(originator);
  if (it == entries_.end()) return std::nullopt;
  return it->second.ansn;
}

std::vector<NodeId> TopologyBase::advertised_of(NodeId originator) const {
  std::vector<NodeId> result;
  auto it = entries_.find(originator);
  if (it == entries_.end()) return result;
  for (const LinkAdvert& a : it->second.advertised)
    result.push_back(a.neighbor);
  return result;
}

}  // namespace qolsr
