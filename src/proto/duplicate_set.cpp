#include "proto/duplicate_set.hpp"

namespace qolsr {

bool DuplicateSet::check_and_insert(NodeId originator, std::uint16_t sequence,
                                    double now) {
  const std::uint64_t k = key(originator, sequence);
  auto [it, inserted] = entries_.try_emplace(k, now + hold_time_);
  if (inserted) return true;
  if (it->second < now) {
    // Expired entry: the sequence space wrapped; treat as new.
    it->second = now + hold_time_;
    return true;
  }
  return false;
}

void DuplicateSet::expire(double now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second < now) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace qolsr
