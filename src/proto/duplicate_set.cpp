#include "proto/duplicate_set.hpp"

namespace qolsr {

bool DuplicateSet::check_and_insert(NodeId originator, std::uint16_t sequence,
                                    double now) {
  // Grow before probing so the table always has empty slots (load is kept
  // under 3/4). Growth only happens while the recorded set is still
  // climbing toward its high-water mark; once expire() keeps up with the
  // arrival rate the capacity is stable and inserts never allocate.
  if (slots_.empty())
    rehash(kMinCapacity);
  else if ((size_ + 1) * 4 > slots_.size() * 3)
    rehash(slots_.size() * 2);

  const std::uint64_t k = key(originator, sequence);
  std::size_t i = bucket(k, slots_.size());
  while (true) {
    Slot& slot = slots_[i];
    if (slot.key == kEmptyKey) {
      slot.key = k;
      slot.expires = now + hold_time_;
      ++size_;
      return true;
    }
    if (slot.key == k) {
      if (slot.expires < now) {
        // Expired entry: the sequence space wrapped; treat as new.
        slot.expires = now + hold_time_;
        return true;
      }
      return false;
    }
    i = (i + 1) & (slots_.size() - 1);
  }
}

void DuplicateSet::expire(double now) {
  if (size_ == 0) return;
  // Linear probing cannot erase in place without breaking probe chains;
  // compact the live entries into the same-capacity spare table and swap.
  // Steady state: zero allocations (the spare persists between sweeps).
  if (spare_.size() != slots_.size())
    spare_.assign(slots_.size(), Slot{});
  else
    for (Slot& slot : spare_) slot = Slot{};
  std::size_t live = 0;
  for (const Slot& slot : slots_) {
    if (slot.key == kEmptyKey || slot.expires < now) continue;
    std::size_t i = bucket(slot.key, spare_.size());
    while (spare_[i].key != kEmptyKey) i = (i + 1) & (spare_.size() - 1);
    spare_[i] = slot;
    ++live;
  }
  slots_.swap(spare_);
  size_ = live;
}

void DuplicateSet::clear() {
  for (Slot& slot : slots_) slot = Slot{};
  size_ = 0;
}

void DuplicateSet::rehash(std::size_t new_capacity) {
  unsigned shift = 0;
  while ((1ULL << shift) < new_capacity) ++shift;
  std::vector<Slot> grown(new_capacity);
  shift_ = shift;
  for (const Slot& slot : slots_) {
    if (slot.key == kEmptyKey) continue;
    std::size_t i = bucket(slot.key, grown.size());
    while (grown[i].key != kEmptyKey) i = (i + 1) & (grown.size() - 1);
    grown[i] = slot;
  }
  slots_ = std::move(grown);
  // The spare is re-sized lazily by the next expire sweep.
}

}  // namespace qolsr
