#pragma once

namespace qolsr {

/// The protocol's timing constants — HELLO/TC emission intervals, the
/// desync jitter, and the soft-state hold times — in one struct shared by
/// every component that runs the control plane: the in-process Simulator
/// (SimConfig embeds it via NodeConfig) and the wire daemon's wall-clock
/// timer loop (src/net). A daemon therefore cannot drift from the sim by
/// editing one copy of a constant; both sides also share the *derived*
/// windows (quiescence dwell, hard horizon), which the wire harness uses
/// to decide when a real-time run has settled.
///
/// Defaults follow RFC 3626: HELLO every 2 s, TC every 5 s, validity ≈ 3
/// intervals, with a small deterministic jitter desyncing the nodes as the
/// RFC prescribes. All values are in seconds — interpreted as simulated
/// seconds by the event queue and as wall-clock seconds by the daemon.
struct ProtocolTiming {
  double hello_interval = 2.0;
  double tc_interval = 5.0;
  double jitter = 0.25;
  double neighbor_hold = 6.0;
  double topology_hold = 15.0;

  friend bool operator==(const ProtocolTiming&, const ProtocolTiming&) =
      default;

  /// How long the network state must stay unchanged to declare
  /// convergence: long enough that a node which stopped advertising has
  /// its stale entries expire out of every topology base (up to
  /// topology_hold after its last TC, noticed at the holder's next TC
  /// tick) — anything still unchanged after that window is genuinely
  /// quiescent.
  double convergence_dwell() const {
    return topology_hold + tc_interval + 2.0 * jitter;
  }

  /// Hard stop for a network that never settles: twice the historical
  /// fixed horizon of 3 TC + 4 HELLO periods.
  double max_horizon() const {
    return 2.0 * (3.0 * tc_interval + 4.0 * hello_interval);
  }

  /// Uniformly compressed timing (all five constants × factor). The
  /// converged protocol state is a pure function of (topology, selectors)
  /// — not of the schedule that reached it — so a wire run at factor 0.02
  /// settles in wall-clock milliseconds yet produces byte-identical
  /// converged digests, *provided the comparison Simulator runs the same
  /// scaled struct* (which the wire backend guarantees by passing this
  /// one object to both sides).
  ProtocolTiming scaled(double factor) const {
    ProtocolTiming t = *this;
    t.hello_interval *= factor;
    t.tc_interval *= factor;
    t.jitter *= factor;
    t.neighbor_hold *= factor;
    t.topology_hold *= factor;
    return t;
  }
};

}  // namespace qolsr
