#pragma once

#include <memory>
#include <vector>

#include "eval/experiment.hpp"

namespace qolsr {

/// The named selection heuristics of one experiment, resolved from the
/// SelectorRegistry exactly once by run_experiment and shared by every
/// backend (and every worker thread — selection is const and stateless).
/// `ans` is the column order of every emitted result; `flooding` pairs
/// each protocol with its TC-flooding role (SelectorRegistry::
/// create_flooding) and is resolved only for backends that flood real
/// packets — it stays empty under the oracle.
struct ResolvedProtocols {
  std::vector<std::unique_ptr<AnsSelector>> owned;
  std::vector<const AnsSelector*> ans;
  std::vector<const AnsSelector*> flooding;
};

/// The execution seam of the experiment engine: a backend turns a spec
/// plus resolved selectors into per-sweep-point aggregates. Both
/// implementations run the same threaded sweep harness and fill the same
/// DensityStats, so every result sink works on either's output unchanged:
///
///  * OracleBackend (BackendId::kOracle) — the templated run_sweep /
///    run_dynamic_sweep analytic path;
///  * PacketBackend (BackendId::kPacket) — run_packet_sweep: one
///    discrete-event Simulator per (run, protocol), converged, then
///    measured from protocol state, including ControlPlaneStats;
///  * WireBackend (BackendId::kWire) — run_wire_sweep: one fleet of real
///    qolsr_node processes over the software switch per (run, protocol),
///    digest-verified against an in-process Simulator twin.
///
/// `run` validates backend-specific spec constraints (e.g. the packet
/// backend rejects mobility epochs for now) and throws ExperimentError.
class EvalBackend {
 public:
  virtual ~EvalBackend() = default;
  virtual BackendId id() const = 0;
  virtual std::vector<DensityStats> run(
      const ExperimentSpec& spec,
      const ResolvedProtocols& protocols) const = 0;
};

/// The backend registered for `id`. Backends are stateless singletons;
/// the reference stays valid for the program's lifetime.
const EvalBackend& backend_for(BackendId id);

/// Resolves the spec's selector names (and, for backends that need it,
/// their flooding roles) through `registry`. Throws ExperimentError on
/// unknown names.
ResolvedProtocols resolve_protocols(const ExperimentSpec& spec,
                                    const SelectorRegistry& registry);

}  // namespace qolsr
