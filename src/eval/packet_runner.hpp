#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "eval/backend.hpp"
#include "sim/fault_plan.hpp"
#include "eval/runner.hpp"
#include "path/path.hpp"
#include "routing/forwarding.hpp"
#include "sim/simulator.hpp"

namespace qolsr {

/// Per-worker scratch of the packet-level backend: the shared eval bundle
/// (deployment sampling + pair drawing reuse sample_run unchanged) plus
/// one Simulator reused across every (run, protocol) via its seed-driven
/// reset — node objects, queue and trace survive instead of being
/// reallocated for each of the sweep's runs.
struct PacketEvalWorkspace {
  EvalWorkspace eval;
  /// Route-computation scratch shared by every node of the simulator (the
  /// event loop is single-threaded per workspace, and each next-hop call
  /// runs to completion): with these, the per-hop RouteFn is the
  /// allocation-free workspace Dijkstra instead of the legacy allocating
  /// form. Declared before `sim` so they outlive the simulator (whose
  /// queued events capture nodes holding the bound RouteFn).
  DijkstraWorkspace route_dijkstra;
  NextHopScratch route_bfs;
  Simulator sim;
};

namespace eval_detail {

/// One packet-level run: sample the same deployment and (source,
/// destination) pair the oracle backend would (identical RNG stream), then
/// per protocol bring up a full distributed control plane — HELLO link
/// sensing, the protocol's flooding + ANS heuristics, TC flooding with
/// duplicate suppression — run it to *measured* convergence, and take
/// every figure from the converged protocol state: set sizes from the
/// nodes' own ANS tables, delivery/overhead from data packets routed
/// hop-by-hop on per-node knowledge (TC topology base + own links), and
/// the ControlPlaneStats block from the simulator trace.
///
/// Under a fault plan the same run additionally measures graceful
/// degradation, in a fixed order that keeps the fault-free measurements
/// byte-identical: converge under ambient loss, measure, route the probe
/// packets and classify every failure (blackhole / loop / medium loss),
/// and only then inject the scheduled incidents one by one, timing each
/// re-convergence. A loss-axis sweep overrides the plan's ambient rate
/// with the sweep value — its loss = 0 point therefore reproduces the
/// fault-free figures exactly.
template <Metric M>
void execute_packet_run(const Scenario& scenario, double axis_value,
                        std::size_t run_index, std::uint64_t run_seed,
                        const ResolvedProtocols& protocols,
                        DensityStats& stats, PacketEvalWorkspace& ws) {
  const bool loss_axis = scenario.sweep_axis == Scenario::SweepAxis::kLoss;
  const bool load_axis = scenario.sweep_axis == Scenario::SweepAxis::kLoad;
  const bool adversary_axis =
      scenario.sweep_axis == Scenario::SweepAxis::kAdversary;
  const double density = loss_axis || load_axis || adversary_axis
                             ? scenario.field.degree
                             : axis_value;
  FaultPlan plan = scenario.faults;
  if (loss_axis) plan.loss_rate = axis_value;
  const FaultPlan* faults = plan.active() ? &plan : nullptr;
  // A load-axis sweep overrides the spec's load multiplier with the sweep
  // value; load = 0 deactivates the spec entirely, so that sweep point
  // reproduces the traffic-free figures exactly.
  TrafficSpec traffic = scenario.traffic;
  if (load_axis) traffic.load = axis_value;
  const TrafficSpec* traffic_spec = traffic.active() ? &traffic : nullptr;
  // An adversary-axis sweep overrides the spec's roster fraction with the
  // sweep value; fraction = 0 deactivates the spec entirely (unless it also
  // corrupts the wire), so that sweep point reproduces the honest figures
  // exactly.
  AdversarySpec adversaries = scenario.adversaries;
  if (adversary_axis) adversaries.fraction = axis_value;
  const AdversarySpec* adv_spec =
      adversaries.active() ? &adversaries : nullptr;

  util::Rng rng(run_seed);
  SampledRun run = sample_run<M>(scenario, density, rng, ws.eval);
  const std::size_t n = run.graph.node_count();
  stats.node_count.add(static_cast<double>(n));
  RunRecord record;
  if (scenario.record_runs) {
    record.run_index = run_index;
    record.nodes = n;
    record.protocols.resize(protocols.ans.size());
  }

  for (std::size_t si = 0; si < protocols.ans.size(); ++si) {
    const AnsSelector& ans = *protocols.ans[si];
    const AnsSelector& flooding = *protocols.flooding[si];
    // Same discipline split as the oracle's ForwardingOptions: OLSR/QOLSR
    // route hop-count-first (QoS as tie-break), the QANS designs QoS-first.
    // Workspace forms: same labels, same tie-breaks, same next hop as the
    // legacy calls (pinned by the forwarding-equivalence suite), but zero
    // allocation per traversed hop. Two raw pointers keep the lambdas
    // inside std::function's small-buffer storage.
    DijkstraWorkspace* const dws = &ws.route_dijkstra;
    NextHopScratch* const bfs = &ws.route_bfs;
    OlsrNode::RouteFn route =
        ans.qos_first_routing()
            ? OlsrNode::RouteFn(
                  [dws, bfs](const Graph& g, NodeId self, NodeId dest) {
                    return compute_next_hop<M>(g, self, dest, *dws, *bfs);
                  })
            : OlsrNode::RouteFn(
                  [dws](const Graph& g, NodeId self, NodeId dest) {
                    return compute_min_hop_next_hop<M>(g, self, dest, *dws);
                  });
    // One seed for every protocol of the run: all contenders experience
    // identical tick jitter (and the very same loss/fault draws), so
    // differences are chargeable to the heuristics alone. The sampled
    // graph is borrowed, never copied — faults live in the simulator's
    // overlay, and `run` outlives every reset of this loop.
    ws.sim.reset(run.graph, flooding, ans, std::move(route), run_seed,
                 faults, traffic_spec, adv_spec);
    const ConvergenceReport report = ws.sim.run_to_convergence();

    ProtocolStats& ps = stats.protocols[si];
    double total_ans = 0.0;
    for (NodeId u = 0; u < n; ++u)
      total_ans += static_cast<double>(ws.sim.node(u).ans().size());
    const double set_size = n > 0 ? total_ans / static_cast<double>(n) : 0.0;
    ps.set_size.add(set_size);

    // Counters as of converged_at, not of whenever the quiescence dwell
    // stopped the clock: every protocol's control-plane cost covers the
    // same window — reaching its converged state — so a slow converger is
    // charged more *time*, not padded with post-convergence keepalives.
    const TraceStats& converged = ws.sim.trace_at_convergence();
    ps.control.hello_msgs.add(static_cast<double>(converged.hello_sent));
    ps.control.tc_msgs.add(static_cast<double>(converged.tc_originated));
    ps.control.tc_forwards.add(static_cast<double>(converged.tc_forwarded));
    ps.control.duplicate_drops.add(
        static_cast<double>(converged.tc_dropped_duplicate));
    ps.control.control_bytes.add(
        static_cast<double>(converged.control_bytes));
    ps.control.convergence_time.add(report.converged_at);
    // A run stopped by the hard cap mid-change is measured from
    // not-yet-quiescent state; count it so the sweep point is flagged
    // instead of silently averaged in.
    if (!report.converged) ++ps.control.unconverged;
    // Fault-engine frame counters — the price paid reaching convergence.
    // Snapshot now: the reference is invalidated by the re-convergence
    // calls of the incident loop below.
    ps.control.frames_lost.add(static_cast<double>(converged.frames_lost));
    ps.control.frames_blocked.add(
        static_cast<double>(converged.frames_blocked));

    // Data probes between the shared pair, forwarded by the nodes
    // themselves on whatever their converged knowledge routes. The slack
    // covers the TTL-capped worst case (data_ttl hops of propagation
    // delay) with generous margin. Every failed probe is charged to a
    // fate: no route at some hop (blackhole), TTL exhaustion (loop), or
    // a frame the lossy medium ate in flight.
    const std::size_t probes = std::max<std::size_t>(scenario.probe_packets, 1);
    const TraceStats& trace = ws.sim.trace();
    for (std::uint32_t pid = 1; pid <= probes; ++pid)
      ws.sim.node(run.source).send_data(run.destination, pid);
    ws.sim.run_until(ws.sim.now() + 1.0);

    std::size_t probes_delivered = 0;
    double first_value = 0.0;
    double first_overhead = 0.0;
    std::size_t first_hops = 0;
    for (std::uint32_t pid = 1; pid <= probes; ++pid) {
      const auto journey = trace.journeys.find(pid);
      const bool delivered =
          journey != trace.journeys.end() && journey->second.delivered;
      if (delivered) {
        const double value =
            evaluate_path<M>(ws.sim.network(), journey->second.path);
        const double overhead = qos_overhead<M>(value, run.optimal_value);
        ++ps.delivered;
        ps.overhead.add(overhead);
        ps.path_hops.add(
            static_cast<double>(journey->second.path.size() - 1));
        if (probes_delivered == 0) {
          first_value = value;
          first_overhead = overhead;
          first_hops = journey->second.path.size() - 1;
        }
        ++probes_delivered;
      } else {
        ++ps.failed;
        using Drop = TraceStats::Journey::Drop;
        const Drop fate = journey != trace.journeys.end()
                              ? journey->second.drop
                              : Drop::kNone;
        switch (fate) {
          case Drop::kNoRoute:
            ++ps.no_route_losses;
            break;
          case Drop::kTtl:
            ++ps.loop_losses;
            break;
          case Drop::kQueueDrop:  // probes only queue-drop under traffic
            break;
          case Drop::kAdversary:   // absorbed by a misbehaving relay —
          case Drop::kMalformed:   // or wire-corrupted; both are counted
            break;                 // in the invariants block below
          case Drop::kNone:  // vanished in flight: the medium took it
            ++ps.medium_losses;
            break;
        }
      }
    }
    // Per-run probe delivery fraction — the sample distribution behind
    // the delivered/failed totals (one sample per packet run).
    ps.probe_delivery.add(static_cast<double>(probes_delivered) /
                          static_cast<double>(probes));

    // ---- traffic workload (active TrafficSpec only) ---------------------
    // The flow schedule replays from the run seed via a dedicated salted
    // stream, so it is identical for every protocol of the run (and every
    // thread count): selectors compete on routing the *same* packets
    // through the *same* contended links. Ordered after the probe fates
    // so every figure above stays byte-identical when traffic is added.
    util::DistributionAccumulator run_latency;
    std::size_t traffic_delivered_run = 0;
    std::size_t traffic_offered_run = 0;
    if (traffic_spec != nullptr) {
      const TrafficMatrix matrix =
          TrafficMatrix::generate(traffic, run.graph, run_seed);
      const double t0 = ws.sim.now();
      for (const TrafficMatrix::Packet& packet : matrix.packets()) {
        const TrafficMatrix::Flow& flow = matrix.flows()[packet.flow];
        ws.sim.queue().schedule_at(t0 + packet.offset, [&ws, flow, packet] {
          ws.sim.node(flow.source).send_data(flow.destination,
                                             packet.payload_id);
        });
      }
      // Drain slack: time for the deepest queue backlog to serialize out
      // on the slowest (unit-bandwidth) link, plus propagation margin.
      const double drain =
          2.0 + static_cast<double>(traffic.queue_bytes) /
                    traffic.link_capacity * 10.0;
      ws.sim.run_until(t0 + traffic.duration + drain);

      std::vector<std::size_t> flow_offered(matrix.flows().size(), 0);
      std::vector<std::size_t> flow_delivered(matrix.flows().size(), 0);
      for (const TrafficMatrix::Packet& packet : matrix.packets()) {
        ++ps.traffic.offered;
        ++flow_offered[packet.flow];
        const auto journey = trace.journeys.find(packet.payload_id);
        const bool arrived =
            journey != trace.journeys.end() && journey->second.delivered;
        if (arrived) {
          ++ps.traffic.delivered;
          ++flow_delivered[packet.flow];
          const double latency =
              journey->second.delivered_at - journey->second.sent_at;
          ps.traffic.latency.add(latency);
          run_latency.add(latency);
        } else {
          using Drop = TraceStats::Journey::Drop;
          const Drop fate = journey != trace.journeys.end()
                                ? journey->second.drop
                                : Drop::kNone;
          switch (fate) {
            case Drop::kQueueDrop:
              ++ps.traffic.queue_drops;
              break;
            case Drop::kNoRoute:
              ++ps.traffic.no_route_drops;
              break;
            case Drop::kTtl:
              ++ps.traffic.loop_drops;
              break;
            case Drop::kAdversary:  // charged to the invariants block, not
            case Drop::kMalformed:  // the traffic fates (which then sum to
              break;                // offered-delivered only honestly)
            case Drop::kNone:  // vanished in flight: the medium took it
              ++ps.traffic.medium_drops;
              break;
          }
        }
      }
      for (std::size_t f = 0; f < matrix.flows().size(); ++f) {
        if (flow_offered[f] == 0) continue;
        ps.traffic.flow_delivery.add(
            static_cast<double>(flow_delivered[f]) /
            static_cast<double>(flow_offered[f]));
        ps.traffic.flow_throughput.add(
            static_cast<double>(flow_delivered[f]) *
            static_cast<double>(traffic.packet_bytes) / traffic.duration);
        traffic_delivered_run += flow_delivered[f];
      }
      traffic_offered_run = matrix.packets().size();
    }

    // ---- adversary engine (active AdversarySpec only) -------------------
    // Audit the converged TopologyBases against the ground truth (phantom
    // links, inflated QoS, poisoned holders), then fold the monitor's
    // event counters. Ordered after probes and traffic so every honest
    // figure above stays byte-identical when the roster is empty — and
    // before the incident loop, whose re-convergences would blur the
    // converged-state audit.
    std::size_t poisoned_routes_run = 0;
    std::size_t violations_run = 0;
    if (adv_spec != nullptr) {
      audit_topology(ws.sim.monitor(), ws.sim, run.graph);
      // A failed probe whose recorded journey visited a roster member was
      // routed into the adversary's hands — a poisoned route, as opposed
      // to an honest routing failure.
      for (std::uint32_t pid = 1; pid <= probes; ++pid) {
        const auto journey = trace.journeys.find(pid);
        if (journey == trace.journeys.end() || journey->second.delivered)
          continue;
        for (const NodeId hop : journey->second.path) {
          if (ws.sim.is_adversary(hop)) {
            ++poisoned_routes_run;
            break;
          }
        }
      }
      const InvariantCounters& caught = ws.sim.monitor().counters();
      ps.invariants.counters.add(caught);
      ps.invariants.frames_corrupted.add(
          static_cast<double>(trace.frames_corrupted));
      ps.invariants.frames_malformed.add(
          static_cast<double>(trace.frames_malformed));
      if (ws.sim.monitor().first_violation_at() >= 0.0)
        ps.invariants.time_to_first_violation.add(
            ws.sim.monitor().first_violation_at());
      ps.invariants.poisoned_routes += poisoned_routes_run;
      violations_run = caught.total();
    }

    if (scenario.record_runs) {
      RunRecord::Protocol& rp = record.protocols[si];
      rp.set_size = set_size;
      rp.delivered = probes_delivered == probes;
      rp.convergence_time = report.converged_at;
      rp.converged = report.converged;
      rp.control_bytes = static_cast<double>(converged.control_bytes);
      rp.probes_delivered = probes_delivered;
      rp.probes_failed = probes - probes_delivered;
      rp.traffic_offered = traffic_offered_run;
      rp.traffic_delivered = traffic_delivered_run;
      rp.traffic_latency_p95 =
          util::quantile_sorted(run_latency.sorted(), 0.95);
      rp.invariant_violations = violations_run;
      rp.poisoned_routes = poisoned_routes_run;
      if (probes_delivered > 0) {
        rp.value = first_value;
        rp.overhead = first_overhead;
        rp.hops = first_hops;
      }
    }

    // The incident schedule runs *after* the measurement phase, one
    // incident at a time: inject, then time how long the network takes to
    // settle again. Ordering the probes first keeps every figure above
    // identical whether or not incidents are scheduled — incidents only
    // add the re-convergence series.
    if (faults != nullptr) {
      for (const FaultIncident& incident : faults->incidents) {
        const double injected_at = ws.sim.now();
        ws.sim.inject(incident);
        const ConvergenceReport reconv = ws.sim.run_to_convergence();
        ps.control.reconvergence_time.add(reconv.converged_at - injected_at);
        if (!reconv.converged) ++ps.control.reconv_unconverged;
      }
    }
  }
  if (scenario.record_runs) stats.run_records.push_back(std::move(record));
}

}  // namespace eval_detail

/// The packet-level counterpart of run_sweep: the same threaded harness
/// and determinism contract (run r at sweep-point d derives its RNG stream
/// and simulator seed from the scenario seed alone, so aggregates are
/// thread-count invariant), but each run converges one Simulator per
/// protocol and measures from distributed state.
template <Metric M>
std::vector<DensityStats> run_packet_sweep(const Scenario& scenario,
                                           const ResolvedProtocols& protocols,
                                           unsigned threads = 0) {
  return eval_detail::sweep_harness<PacketEvalWorkspace>(
      scenario, protocols.ans, threads,
      [&protocols](const Scenario& sc, double density, std::size_t run_index,
                   std::uint64_t run_seed,
                   const std::vector<const AnsSelector*>& /*selectors*/,
                   DensityStats& stats, PacketEvalWorkspace& ws) {
        eval_detail::execute_packet_run<M>(sc, density, run_index, run_seed,
                                           protocols, stats, ws);
      });
}

}  // namespace qolsr
