#include "eval/figures.hpp"

#include "core/fnbp.hpp"

namespace qolsr {

namespace {

/// The paper's three contenders, in its legend order: original QOLSR with
/// the MPR-2 heuristic, topology-filtering ANS, FNBP ANS.
template <Metric M>
struct Contenders {
  QolsrSelector<M> qolsr{QolsrVariant::kMpr2};
  TopologyFilteringSelector<M> topology_filtering;
  FnbpSelector<M> fnbp;

  std::vector<const AnsSelector*> list() const {
    return {&qolsr, &topology_filtering, &fnbp};
  }
};

template <Metric M>
std::vector<DensityStats> sweep_for(const FigureConfig& config,
                                    std::vector<double> densities) {
  Scenario scenario;
  scenario.densities = std::move(densities);
  scenario.runs = config.runs;
  scenario.seed = config.seed;
  const Contenders<M> contenders;
  return run_sweep<M>(scenario, contenders.list());
}

}  // namespace

std::vector<DensityStats> bandwidth_sweep(const FigureConfig& config) {
  return sweep_for<BandwidthMetric>(config, bandwidth_densities());
}

std::vector<DensityStats> delay_sweep(const FigureConfig& config) {
  return sweep_for<DelayMetric>(config, delay_densities());
}

util::Table set_size_table(const std::vector<DensityStats>& sweep) {
  std::vector<std::string> header{"density"};
  if (!sweep.empty())
    for (const ProtocolStats& p : sweep.front().protocols)
      header.push_back(p.name);
  util::Table table(std::move(header));
  for (const DensityStats& d : sweep) {
    std::vector<double> row;
    for (const ProtocolStats& p : d.protocols) row.push_back(p.set_size.mean());
    table.add_row(d.density, row, 3);
  }
  return table;
}

util::Table overhead_table(const std::vector<DensityStats>& sweep) {
  std::vector<std::string> header{"density"};
  if (!sweep.empty())
    for (const ProtocolStats& p : sweep.front().protocols)
      header.push_back(p.name);
  util::Table table(std::move(header));
  for (const DensityStats& d : sweep) {
    std::vector<double> row;
    for (const ProtocolStats& p : d.protocols) row.push_back(p.overhead.mean());
    table.add_row(d.density, row, 4);
  }
  return table;
}

util::Table diagnostics_table(const std::vector<DensityStats>& sweep) {
  std::vector<std::string> header{"density", "avg_nodes"};
  if (!sweep.empty()) {
    for (const ProtocolStats& p : sweep.front().protocols) {
      header.push_back(p.name + "_delivered");
      header.push_back(p.name + "_hops");
    }
  }
  util::Table table(std::move(header));
  for (const DensityStats& d : sweep) {
    std::vector<std::string> cells{util::format_double(d.density, 0),
                                   util::format_double(d.node_count.mean(), 1)};
    for (const ProtocolStats& p : d.protocols) {
      cells.push_back(util::format_double(static_cast<double>(p.delivered), 0) +
                      "/" +
                      util::format_double(
                          static_cast<double>(p.delivered + p.failed), 0));
      cells.push_back(util::format_double(p.path_hops.mean(), 2));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

util::Table figure6_ans_size_bandwidth(const FigureConfig& config) {
  return set_size_table(bandwidth_sweep(config));
}

util::Table figure7_ans_size_delay(const FigureConfig& config) {
  return set_size_table(delay_sweep(config));
}

util::Table figure8_bandwidth_overhead(const FigureConfig& config) {
  return overhead_table(bandwidth_sweep(config));
}

util::Table figure9_delay_overhead(const FigureConfig& config) {
  return overhead_table(delay_sweep(config));
}

}  // namespace qolsr
