#include "eval/figures.hpp"

#include "eval/scenario.hpp"

namespace qolsr {

ExperimentSpec figure_spec(int figure, const FigureConfig& config) {
  ExperimentSpec spec;
  switch (figure) {
    case 6:
      spec.name = "fig6_ans_size_bandwidth";
      spec.metric = MetricId::kBandwidth;
      spec.scenario.densities = bandwidth_densities();
      break;
    case 7:
      spec.name = "fig7_ans_size_delay";
      spec.metric = MetricId::kDelay;
      spec.scenario.densities = delay_densities();
      break;
    case 8:
      spec.name = "fig8_bandwidth_overhead";
      spec.metric = MetricId::kBandwidth;
      spec.scenario.densities = bandwidth_densities();
      break;
    case 9:
      spec.name = "fig9_delay_overhead";
      spec.metric = MetricId::kDelay;
      spec.scenario.densities = delay_densities();
      break;
    default:
      throw ExperimentError("figure_spec: the paper has figures 6-9, not " +
                            std::to_string(figure));
  }
  // spec.selectors already defaults to the paper's legend order.
  spec.scenario.runs = config.runs;
  spec.scenario.seed = config.seed;
  spec.threads = config.threads;
  return spec;
}

std::vector<DensityStats> bandwidth_sweep(const FigureConfig& config) {
  return run_experiment(figure_spec(6, config)).sweep;
}

std::vector<DensityStats> delay_sweep(const FigureConfig& config) {
  return run_experiment(figure_spec(7, config)).sweep;
}

util::Table set_size_table(const std::vector<DensityStats>& sweep) {
  std::vector<std::string> header{"density"};
  if (!sweep.empty())
    for (const ProtocolStats& p : sweep.front().protocols)
      header.push_back(p.name);
  util::Table table(std::move(header));
  for (const DensityStats& d : sweep) {
    std::vector<double> row;
    for (const ProtocolStats& p : d.protocols) row.push_back(p.set_size.mean());
    table.add_row(d.density, row, 3);
  }
  return table;
}

util::Table overhead_table(const std::vector<DensityStats>& sweep) {
  std::vector<std::string> header{"density"};
  if (!sweep.empty())
    for (const ProtocolStats& p : sweep.front().protocols)
      header.push_back(p.name);
  util::Table table(std::move(header));
  for (const DensityStats& d : sweep) {
    std::vector<double> row;
    for (const ProtocolStats& p : d.protocols) row.push_back(p.overhead.mean());
    table.add_row(d.density, row, 4);
  }
  return table;
}

util::Table diagnostics_table(const std::vector<DensityStats>& sweep) {
  std::vector<std::string> header{"density", "avg_nodes"};
  if (!sweep.empty()) {
    for (const ProtocolStats& p : sweep.front().protocols) {
      header.push_back(p.name + "_delivered");
      header.push_back(p.name + "_hops");
    }
  }
  util::Table table(std::move(header));
  for (const DensityStats& d : sweep) {
    std::vector<std::string> cells{util::format_double(d.density, 0),
                                   util::format_double(d.node_count.mean(), 1)};
    for (const ProtocolStats& p : d.protocols) {
      cells.push_back(util::format_double(static_cast<double>(p.delivered), 0) +
                      "/" +
                      util::format_double(
                          static_cast<double>(p.delivered + p.failed), 0));
      cells.push_back(util::format_double(p.path_hops.mean(), 2));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

util::Table figure6_ans_size_bandwidth(const FigureConfig& config) {
  return set_size_table(bandwidth_sweep(config));
}

util::Table figure7_ans_size_delay(const FigureConfig& config) {
  return set_size_table(delay_sweep(config));
}

util::Table figure8_bandwidth_overhead(const FigureConfig& config) {
  return overhead_table(bandwidth_sweep(config));
}

util::Table figure9_delay_overhead(const FigureConfig& config) {
  return overhead_table(delay_sweep(config));
}

}  // namespace qolsr
