#include "eval/figures.hpp"

#include <cctype>

#include "eval/result_sink.hpp"
#include "eval/scenario.hpp"

namespace qolsr {

ExperimentSpec figure_spec(int figure, const FigureConfig& config) {
  ExperimentSpec spec;
  switch (figure) {
    case 6:
      spec.name = "fig6_ans_size_bandwidth";
      spec.metric = MetricId::kBandwidth;
      spec.scenario.densities = bandwidth_densities();
      break;
    case 7:
      spec.name = "fig7_ans_size_delay";
      spec.metric = MetricId::kDelay;
      spec.scenario.densities = delay_densities();
      break;
    case 8:
      spec.name = "fig8_bandwidth_overhead";
      spec.metric = MetricId::kBandwidth;
      spec.scenario.densities = bandwidth_densities();
      break;
    case 9:
      spec.name = "fig9_delay_overhead";
      spec.metric = MetricId::kDelay;
      spec.scenario.densities = delay_densities();
      break;
    default:
      throw ExperimentError("figure_spec: the paper has figures 6-9, not " +
                            std::to_string(figure));
  }
  // spec.selectors already defaults to the paper's legend order.
  spec.scenario.runs = config.runs;
  spec.scenario.seed = config.seed;
  spec.threads = config.threads;
  return spec;
}

ExperimentSpec figure_m_spec(const FigureConfig& config) {
  ExperimentSpec spec;
  spec.name = "figM_delivery_vs_speed";
  spec.metric = MetricId::kBandwidth;
  spec.selectors = {"olsr_mpr", "qolsr_mpr1", "qolsr_mpr2",
                    "topology_filtering", "fnbp"};
  spec.scenario.sweep_axis = Scenario::SweepAxis::kSpeed;
  spec.scenario.densities = {1, 5, 10, 15, 20};  // m/s
  spec.scenario.field.degree = 20.0;
  // Long multi-hop flows: staleness compounds per traversed hop, which the
  // paper's 2-hop pairs would hide.
  spec.scenario.pair_mode = Scenario::PairMode::kAnyConnected;
  spec.scenario.dynamics.model = DynamicsSpec::Model::kWaypoint;
  spec.scenario.dynamics.epochs = 50;
  spec.scenario.dynamics.epoch_duration = 1.0;  // one HELLO period
  spec.scenario.dynamics.refresh_interval = 5;  // OLSR's TC/HELLO ratio
  spec.scenario.runs = config.runs;
  spec.scenario.seed = config.seed;
  spec.threads = config.threads;
  return spec;
}

ExperimentSpec figure_r_spec(const FigureConfig& config) {
  ExperimentSpec spec;
  spec.name = "figR_delivery_vs_loss";
  spec.backend = BackendId::kPacket;
  spec.metric = MetricId::kBandwidth;
  spec.selectors = {"olsr_mpr", "qolsr_mpr1", "qolsr_mpr2",
                    "topology_filtering", "fnbp"};
  spec.scenario.sweep_axis = Scenario::SweepAxis::kLoss;
  spec.scenario.densities = {0.0, 0.1, 0.2, 0.3, 0.4};  // P(frame lost)
  spec.scenario.field.degree = 10.0;
  // Multi-hop flows: every traversed hop is another chance for the medium
  // to eat the frame, which the paper's 2-hop pairs would mostly hide.
  spec.scenario.pair_mode = Scenario::PairMode::kAnyConnected;
  // Eight probes resolve the per-run delivery ratio in 1/8 steps instead
  // of {0, 1}; one crash incident per run times re-convergence while the
  // loss column measures steady-state degradation.
  spec.scenario.probe_packets = 8;
  FaultIncident crash;
  crash.kind = FaultIncident::Kind::kNodeCrash;
  crash.count = 1;
  crash.duration = 10.0;
  spec.scenario.faults.incidents.push_back(crash);
  spec.scenario.runs = config.runs;
  spec.scenario.seed = config.seed;
  spec.threads = config.threads;
  return spec;
}

ExperimentSpec figure_l_spec(const FigureConfig& config) {
  ExperimentSpec spec;
  spec.name = "figL_qos_under_load";
  spec.backend = BackendId::kPacket;
  spec.metric = MetricId::kBandwidth;
  spec.selectors = {"olsr_mpr", "qolsr_mpr1", "qolsr_mpr2",
                    "topology_filtering", "fnbp"};
  spec.scenario.sweep_axis = Scenario::SweepAxis::kLoad;
  spec.scenario.densities = {0.25, 0.5, 1.0, 2.0, 4.0};  // load multiplier
  spec.scenario.field.degree = 10.0;
  // Multi-hop flows: congestion compounds per traversed hop, and relay
  // links near the gateway of a flow pattern saturate first — effects the
  // paper's 2-hop pairs would mostly hide.
  spec.scenario.pair_mode = Scenario::PairMode::kAnyConnected;
  spec.scenario.traffic.arrival = TrafficSpec::Arrival::kPoisson;
  spec.scenario.traffic.pattern = TrafficSpec::Pattern::kUniform;
  spec.scenario.traffic.flows = 16;
  spec.scenario.traffic.packet_rate = 20.0;
  spec.scenario.traffic.duration = 10.0;
  spec.scenario.runs = config.runs;
  spec.scenario.seed = config.seed;
  spec.threads = config.threads;
  return spec;
}

ExperimentSpec figure_b_spec(const FigureConfig& config) {
  ExperimentSpec spec;
  spec.name = "figB_delivery_vs_adversaries";
  spec.backend = BackendId::kPacket;
  spec.metric = MetricId::kBandwidth;
  spec.selectors = {"olsr_mpr", "qolsr_mpr1", "qolsr_mpr2",
                    "topology_filtering", "fnbp"};
  spec.scenario.sweep_axis = Scenario::SweepAxis::kAdversary;
  spec.scenario.densities = {0.0, 0.05, 0.1, 0.2, 0.3};  // roster fraction
  spec.scenario.field.degree = 10.0;
  // Multi-hop flows: every traversed relay is another chance to hand the
  // probe to a roster member, which the paper's 2-hop pairs would hide.
  spec.scenario.pair_mode = Scenario::PairMode::kAnyConnected;
  // Eight probes resolve the per-run delivery ratio; blackholes absorb
  // what is routed through them, liars bend the routes toward phantom
  // links — selectors that concentrate trust in fewer relays pay more.
  spec.scenario.probe_packets = 8;
  spec.scenario.adversaries.kinds = {AdversaryKind::kBlackhole,
                                     AdversaryKind::kLiar};
  spec.scenario.runs = config.runs;
  spec.scenario.seed = config.seed;
  spec.threads = config.threads;
  return spec;
}

namespace {

/// The one table behind --figure parsing: name → canned spec. Adding a
/// figure is one row here; figure_names() and the unknown-name error both
/// derive from it.
struct FigureEntry {
  std::string_view name;
  ExperimentSpec (*make)(const FigureConfig&);
};

constexpr FigureEntry kFigureTable[] = {
    {"6", [](const FigureConfig& c) { return figure_spec(6, c); }},
    {"7", [](const FigureConfig& c) { return figure_spec(7, c); }},
    {"8", [](const FigureConfig& c) { return figure_spec(8, c); }},
    {"9", [](const FigureConfig& c) { return figure_spec(9, c); }},
    {"M", figure_m_spec},
    {"R", figure_r_spec},
    {"L", figure_l_spec},
    {"B", figure_b_spec},
};

}  // namespace

std::string figure_names() {
  std::string out;
  for (const FigureEntry& entry : kFigureTable) {
    if (!out.empty()) out += "|";
    out += entry.name;
  }
  return out;
}

ExperimentSpec figure_by_name(std::string_view name,
                              const FigureConfig& config) {
  std::string upper(name);
  for (char& c : upper)
    c = static_cast<char>(
        std::toupper(static_cast<unsigned char>(c)));
  for (const FigureEntry& entry : kFigureTable)
    if (upper == entry.name) return entry.make(config);
  throw ExperimentError("'" + std::string(name) +
                        "' is not a figure (valid: " + figure_names() + ")");
}

util::Table traffic_table(const std::vector<DensityStats>& sweep,
                          const std::string& axis) {
  std::vector<std::string> header{axis};
  if (!sweep.empty()) {
    for (const ProtocolStats& p : sweep.front().protocols) {
      header.push_back(p.name + "_delivery");
      header.push_back(p.name + "_qdrops");
      header.push_back(p.name + "_p95_ms");
    }
  }
  util::Table table(std::move(header));
  for (const DensityStats& d : sweep) {
    std::vector<std::string> cells{util::format_double(d.density, 2)};
    for (const ProtocolStats& p : d.protocols) {
      cells.push_back(util::format_double(p.traffic.delivery_ratio(), 3));
      cells.push_back(
          util::format_double(static_cast<double>(p.traffic.queue_drops), 0));
      const DistributionSummary latency =
          summarize_distribution(p.traffic.latency);
      cells.push_back(util::format_double(latency.p95 * 1000.0, 2));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

util::Table degradation_table(const std::vector<DensityStats>& sweep,
                              const std::string& axis) {
  std::vector<std::string> header{axis};
  if (!sweep.empty()) {
    for (const ProtocolStats& p : sweep.front().protocols) {
      header.push_back(p.name + "_delivery");
      header.push_back(p.name + "_blackhole");
      header.push_back(p.name + "_reconv_s");
    }
  }
  util::Table table(std::move(header));
  for (const DensityStats& d : sweep) {
    std::vector<std::string> cells{util::format_double(d.density, 2)};
    for (const ProtocolStats& p : d.protocols) {
      cells.push_back(util::format_double(p.delivery_ratio(), 3));
      cells.push_back(
          util::format_double(static_cast<double>(p.no_route_losses), 0));
      cells.push_back(
          util::format_double(p.control.reconvergence_time.mean(), 2));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

util::Table invariants_table(const std::vector<DensityStats>& sweep,
                             const std::string& axis) {
  std::vector<std::string> header{axis};
  if (!sweep.empty()) {
    for (const ProtocolStats& p : sweep.front().protocols) {
      header.push_back(p.name + "_delivery");
      header.push_back(p.name + "_violations");
      header.push_back(p.name + "_poisoned");
    }
  }
  util::Table table(std::move(header));
  for (const DensityStats& d : sweep) {
    std::vector<std::string> cells{util::format_double(d.density, 2)};
    for (const ProtocolStats& p : d.protocols) {
      cells.push_back(util::format_double(p.delivery_ratio(), 3));
      cells.push_back(util::format_double(
          static_cast<double>(p.invariants.counters.total()), 0));
      cells.push_back(util::format_double(
          static_cast<double>(p.invariants.poisoned_routes), 0));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

std::vector<DensityStats> bandwidth_sweep(const FigureConfig& config) {
  return run_experiment(figure_spec(6, config)).sweep;
}

std::vector<DensityStats> delay_sweep(const FigureConfig& config) {
  return run_experiment(figure_spec(7, config)).sweep;
}

util::Table set_size_table(const std::vector<DensityStats>& sweep,
                           const std::string& axis) {
  std::vector<std::string> header{axis};
  if (!sweep.empty())
    for (const ProtocolStats& p : sweep.front().protocols)
      header.push_back(p.name);
  util::Table table(std::move(header));
  for (const DensityStats& d : sweep) {
    std::vector<double> row;
    for (const ProtocolStats& p : d.protocols) row.push_back(p.set_size.mean());
    table.add_row(d.density, row, 3);
  }
  return table;
}

util::Table overhead_table(const std::vector<DensityStats>& sweep,
                           const std::string& axis) {
  std::vector<std::string> header{axis};
  if (!sweep.empty())
    for (const ProtocolStats& p : sweep.front().protocols)
      header.push_back(p.name);
  util::Table table(std::move(header));
  for (const DensityStats& d : sweep) {
    std::vector<double> row;
    for (const ProtocolStats& p : d.protocols) row.push_back(p.overhead.mean());
    table.add_row(d.density, row, 4);
  }
  return table;
}

util::Table diagnostics_table(const std::vector<DensityStats>& sweep,
                              const std::string& axis) {
  std::vector<std::string> header{axis, "avg_nodes"};
  if (!sweep.empty()) {
    for (const ProtocolStats& p : sweep.front().protocols) {
      header.push_back(p.name + "_delivered");
      header.push_back(p.name + "_hops");
    }
  }
  util::Table table(std::move(header));
  for (const DensityStats& d : sweep) {
    std::vector<std::string> cells{util::format_double(d.density, 0),
                                   util::format_double(d.node_count.mean(), 1)};
    for (const ProtocolStats& p : d.protocols) {
      cells.push_back(util::format_double(static_cast<double>(p.delivered), 0) +
                      "/" +
                      util::format_double(
                          static_cast<double>(p.delivered + p.failed), 0));
      cells.push_back(util::format_double(p.path_hops.mean(), 2));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

util::Table dynamics_table(const std::vector<DensityStats>& sweep,
                           const std::string& axis) {
  std::vector<std::string> header{axis};
  if (!sweep.empty()) {
    for (const ProtocolStats& p : sweep.front().protocols) {
      header.push_back(p.name + "_delivery");
      header.push_back(p.name + "_stretch");
      header.push_back(p.name + "_readv");
    }
  }
  util::Table table(std::move(header));
  for (const DensityStats& d : sweep) {
    std::vector<std::string> cells{util::format_double(d.density, 0)};
    for (const ProtocolStats& p : d.protocols) {
      cells.push_back(util::format_double(p.delivery_ratio(), 3));
      cells.push_back(util::format_double(p.stretch.mean(), 3));
      cells.push_back(util::format_double(p.readvertised.mean(), 1));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

util::Table control_plane_table(const std::vector<DensityStats>& sweep,
                                const std::string& axis) {
  std::vector<std::string> header{axis};
  if (!sweep.empty()) {
    for (const ProtocolStats& p : sweep.front().protocols) {
      header.push_back(p.name + "_tcs");
      header.push_back(p.name + "_bytes");
      header.push_back(p.name + "_conv_s");
    }
  }
  util::Table table(std::move(header));
  for (const DensityStats& d : sweep) {
    std::vector<std::string> cells{util::format_double(d.density, 0)};
    for (const ProtocolStats& p : d.protocols) {
      cells.push_back(util::format_double(
          p.control.tc_msgs.mean() + p.control.tc_forwards.mean(), 1));
      cells.push_back(util::format_double(p.control.control_bytes.mean(), 0));
      cells.push_back(
          util::format_double(p.control.convergence_time.mean(), 2));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

util::Table figure6_ans_size_bandwidth(const FigureConfig& config) {
  return set_size_table(bandwidth_sweep(config));
}

util::Table figure7_ans_size_delay(const FigureConfig& config) {
  return set_size_table(delay_sweep(config));
}

util::Table figure8_bandwidth_overhead(const FigureConfig& config) {
  return overhead_table(bandwidth_sweep(config));
}

util::Table figure9_delay_overhead(const FigureConfig& config) {
  return overhead_table(delay_sweep(config));
}

}  // namespace qolsr
