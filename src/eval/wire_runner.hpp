#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

#include "eval/backend.hpp"
#include "eval/runner.hpp"
#include "net/wire_harness.hpp"
#include "sim/simulator.hpp"

namespace qolsr {

namespace eval_detail {

/// One wire-backend run: sample the same deployment the oracle and packet
/// backends would at this (density, run) — identical RNG stream — then per
/// protocol (a) converge a fleet of real qolsr_node processes over the
/// software switch via the wire harness and (b) converge an in-process
/// Simulator twin on the same topology, seed and scaled timing, and assert
/// the two agree byte-for-byte on every node's converged digest. A
/// mismatch is not a data point — it is a correctness failure of the
/// transport (or of the determinism argument), so it throws.
///
/// Measured figures: set sizes straight from the daemons' status frames,
/// and the wire's own wall-clock convergence time (the latest local
/// mutation any daemon reported — real elapsed seconds, not simulated
/// time, so it scales with `wire_scale`).
template <Metric M>
void execute_wire_run(const ExperimentSpec& spec, double density,
                      std::uint64_t run_seed,
                      const ResolvedProtocols& protocols, DensityStats& stats,
                      EvalWorkspace& ws) {
  util::Rng rng(run_seed);
  const SampledRun run = sample_run<M>(spec.scenario, density, rng, ws);
  const std::size_t n = run.graph.node_count();
  stats.node_count.add(static_cast<double>(n));

  for (std::size_t si = 0; si < protocols.ans.size(); ++si) {
    net::WireRunConfig wire;
    wire.protocol = spec.selectors[si];
    wire.metric = spec.metric;
    wire.seed = run_seed;
    wire.timing = ProtocolTiming{}.scaled(spec.wire_scale);
    const net::WireRunResult result = net::run_wire_network(run.graph, wire);

    // The in-process twin: same topology, same seed, same (scaled) timing
    // struct — the converged state it folds is the reference the real
    // processes must reproduce exactly.
    const OlsrNode::RouteFn no_routes = [](const Graph&, NodeId, NodeId) {
      return kInvalidNode;
    };
    SimConfig sim_config;
    static_cast<ProtocolTiming&>(sim_config.node) = wire.timing;
    sim_config.seed = run_seed;
    Simulator sim(run.graph, *protocols.flooding[si], *protocols.ans[si],
                  no_routes, sim_config);
    const ConvergenceReport report = sim.run_to_convergence();

    for (NodeId id = 0; id < n; ++id) {
      const std::uint64_t expected = sim.node(id).converged_digest();
      if (result.reports[id].digest != expected)
        throw ExperimentError(
            "wire backend: converged-digest mismatch at node " +
            std::to_string(id) + " (protocol '" + spec.selectors[si] +
            "', seed " + std::to_string(run_seed) + "): wire " +
            std::to_string(result.reports[id].digest) + " vs simulator " +
            std::to_string(expected) +
            " - the processes did not converge to the simulator's state");
    }

    ProtocolStats& ps = stats.protocols[si];
    double total_ans = 0.0;
    double settled_at = 0.0;
    for (NodeId id = 0; id < n; ++id) {
      total_ans += static_cast<double>(result.reports[id].ans_size);
      settled_at = std::max(settled_at, result.reports[id].last_mutation);
    }
    ps.set_size.add(n > 0 ? total_ans / static_cast<double>(n) : 0.0);
    ps.control.convergence_time.add(settled_at);
    if (!report.converged) ++ps.control.unconverged;
  }
}

}  // namespace eval_detail

/// The multi-process counterpart of run_packet_sweep: the same sweep
/// scaffold and per-run seed derivation, but every (run, protocol)
/// converges a fleet of real OS processes and is digest-verified against
/// an in-process Simulator twin. Always single-threaded — each run already
/// fans out into node_count + 1 processes, and parallel fleets would
/// contend for the CPU the daemons' wall-clock timing margins depend on.
template <Metric M>
std::vector<DensityStats> run_wire_sweep(const ExperimentSpec& spec,
                                         const ResolvedProtocols& protocols) {
  return eval_detail::sweep_harness<EvalWorkspace>(
      spec.scenario, protocols.ans, /*threads=*/1,
      [&spec, &protocols](const Scenario&, double density,
                          std::size_t /*run_index*/, std::uint64_t run_seed,
                          const std::vector<const AnsSelector*>& /*sel*/,
                          DensityStats& stats, EvalWorkspace& ws) {
        eval_detail::execute_wire_run<M>(spec, density, run_seed, protocols,
                                         stats, ws);
      });
}

}  // namespace qolsr
