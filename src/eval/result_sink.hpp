#pragma once

#include <iosfwd>
#include <memory>
#include <string_view>

#include "eval/experiment.hpp"

namespace qolsr {

/// Output side of the experiment engine: formats a finished
/// ExperimentResult onto a stream. Every implementation emits the
/// per-density aggregates; the machine-readable ones (CSV, JSON) also emit
/// the per-run records when the result carries them (spec.per_run), while
/// the pretty table reports their count and defers the export to those.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual std::string_view format_name() const = 0;
  virtual void write(const ExperimentResult& result,
                     std::ostream& os) const = 0;
};

/// Human-readable tables: set sizes, overheads, diagnostics — the view the
/// old figure harnesses printed.
class PrettyTableSink final : public ResultSink {
 public:
  std::string_view format_name() const override { return "table"; }
  void write(const ExperimentResult& result, std::ostream& os) const override;
};

/// Machine-readable long-format CSV: one row per (density, protocol)
/// aggregate; per-run records follow as a second header+rows block after a
/// blank line when recorded.
class CsvSink final : public ResultSink {
 public:
  std::string_view format_name() const override { return "csv"; }
  void write(const ExperimentResult& result, std::ostream& os) const override;
};

/// One JSON document: the spec echo, per-density aggregates with full
/// RunningStats (mean/stddev/min/max), and per-run records when recorded.
class JsonSink final : public ResultSink {
 public:
  std::string_view format_name() const override { return "json"; }
  void write(const ExperimentResult& result, std::ostream& os) const override;
};

/// Factory over the spec's `format` field ("table", "csv", "json").
/// Throws ExperimentError on an unknown format name.
std::unique_ptr<ResultSink> make_result_sink(std::string_view format);

}  // namespace qolsr
