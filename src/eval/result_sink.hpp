#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string_view>
#include <vector>

#include "eval/experiment.hpp"
#include "util/stats.hpp"

namespace qolsr {

/// Histogram resolution of emitted distribution summaries (JSON only; the
/// CSV carries the quantiles).
inline constexpr std::size_t kDistributionHistogramBuckets = 8;

/// What every sink reports about a retained-sample distribution (probe
/// delivery, flow latency/delivery/throughput): exact quantiles plus a
/// fixed-bucket histogram over the observed range. All fields derive from
/// one ascending sort of the samples, so the summary is invariant to the
/// merge order of worker-thread partials — i.e. to the thread count.
struct DistributionSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// kDistributionHistogramBuckets equal-width bins over [min, max];
  /// empty when there are no samples.
  std::vector<std::size_t> histogram;
};

DistributionSummary summarize_distribution(
    const util::DistributionAccumulator& dist);

/// Output side of the experiment engine: formats a finished
/// ExperimentResult onto a stream. Every implementation emits the
/// per-density aggregates; the machine-readable ones (CSV, JSON) also emit
/// the per-run records when the result carries them (spec.per_run), while
/// the pretty table reports their count and defers the export to those.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual std::string_view format_name() const = 0;
  virtual void write(const ExperimentResult& result,
                     std::ostream& os) const = 0;
};

/// Human-readable tables: set sizes, overheads, diagnostics — the view the
/// old figure harnesses printed.
class PrettyTableSink final : public ResultSink {
 public:
  std::string_view format_name() const override { return "table"; }
  void write(const ExperimentResult& result, std::ostream& os) const override;
};

/// Machine-readable long-format CSV: one row per (density, protocol)
/// aggregate; per-run records follow as a second header+rows block after a
/// blank line when recorded.
class CsvSink final : public ResultSink {
 public:
  std::string_view format_name() const override { return "csv"; }
  void write(const ExperimentResult& result, std::ostream& os) const override;
};

/// One JSON document: the spec echo, per-density aggregates with full
/// RunningStats (mean/stddev/min/max), and per-run records when recorded.
class JsonSink final : public ResultSink {
 public:
  std::string_view format_name() const override { return "json"; }
  void write(const ExperimentResult& result, std::ostream& os) const override;
};

/// Factory over the spec's `format` field ("table", "csv", "json").
/// Throws ExperimentError on an unknown format name.
std::unique_ptr<ResultSink> make_result_sink(std::string_view format);

}  // namespace qolsr
