#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/deployment.hpp"
#include "sim/adversary.hpp"
#include "sim/fault_plan.hpp"
#include "sim/traffic.hpp"

namespace qolsr {

/// The dynamic-topology axis of a scenario: a mobility/churn model evolves
/// each sampled deployment over discrete epochs, the per-epoch link delta
/// drives incremental selection maintenance (only dirty nodes re-select —
/// src/olsr/incremental.hpp), and routing runs on *advertised state that
/// refreshes only every `refresh_interval` epochs*, so the measured
/// delivery ratio / stretch / stale losses quantify what topology change
/// costs between TC refreshes. `model == kNone` (the default) keeps the
/// static one-shot evaluation byte-identical to before this block existed.
struct DynamicsSpec {
  enum class Model {
    kNone,      ///< static evaluation (the paper's Figs. 6-9 mode)
    kWaypoint,  ///< random waypoint motion + unit-disk relinking
    kChurn,     ///< link up/down churn without motion
  };
  Model model = Model::kNone;
  /// Measured epochs per run (epoch 0 — deployment + full initial
  /// selection + first advertisement — is setup, not measurement).
  std::size_t epochs = 50;
  /// Seconds of movement per epoch; one epoch models one HELLO period, so
  /// node-local selection reacts every epoch while the advertised state
  /// lags (below).
  double epoch_duration = 1.0;
  // -- waypoint knobs --
  double speed_min = 1.0;        ///< m/s, per-leg uniform draw
  double speed_max = 10.0;       ///< m/s (the speed axis overrides both)
  std::size_t pause_epochs = 0;  ///< epochs parked at each waypoint
  // -- churn knobs --
  double link_down_rate = 0.05;  ///< per-epoch P(live link fails)
  double link_up_rate = 0.25;    ///< per-epoch P(failed link recovers)
  /// Epochs between TC refreshes: selection tracks the topology every
  /// epoch, but routing uses the ANS tables advertised at the last
  /// refresh. 1 = fresh every epoch (no lag); 5 models OLSR's default
  /// TC_INTERVAL / HELLO_INTERVAL ratio.
  std::size_t refresh_interval = 1;

  bool enabled() const { return model != Model::kNone; }
};

/// One evaluation sweep, mirroring the paper's §IV-A settings: nodes in a
/// 1000×1000 field, R = 100, Poisson deployment of mean degree δ, link
/// weights uniform in a fixed interval, 100 runs per density with one
/// random (source, destination) pair per run shared by all protocols.
struct Scenario {
  DeploymentConfig field{};          ///< degree is overridden per sweep point
  std::vector<double> densities;     ///< δ values (x-axis of Figs. 6–9)
  std::size_t runs = 100;
  std::uint64_t seed = 42;
  /// Integer weights 1..5 by default: the paper's worked examples use
  /// small integers, and the resulting tie structure is what separates the
  /// heuristics' set sizes — under additive metrics especially, continuous
  /// weights never tie and the "advertise every tied first hop" cost of
  /// topology filtering disappears (see deployment.hpp and EXPERIMENTS.md).
  QosIntervals qos{.bandwidth_hi = 5.0, .delay_hi = 5.0, .integral = true};
  /// How routes are realized over the advertised state (see
  /// routing/forwarding.hpp and DESIGN.md §4.4):
  ///  * kAdvertisedUnion (default) — hop-by-hop over the undirected union
  ///    of all advertised links plus each hop's own links, RFC-style
  ///    routing tables; each protocol routes with its own discipline
  ///    (QOLSR hop-count-first, the QANS designs QoS-first);
  ///  * kAnsChain — strict directed relay chains through each node's own
  ///    ANS (the paper's §I wording taken literally; punishing for minimal
  ///    advertised sets — see EXPERIMENTS.md).
  enum class RoutingModel { kAnsChain, kAdvertisedUnion };
  RoutingModel routing_model = RoutingModel::kAdvertisedUnion;
  /// For kAdvertisedUnion: source routing (default) vs. hop-by-hop. The
  /// source decides the path on its knowledge — one consistent decision,
  /// no inter-hop inconsistency; for the 2-hop pairs of the paper's
  /// evaluation the two coincide in practice.
  bool hop_by_hop = false;
  /// For kAdvertisedUnion: merge the deciding node's full HELLO-derived
  /// 2-hop view into its routing knowledge (G_u ∪ A — what the node
  /// actually knows). Default on; hop-by-hop mode with heterogeneous views
  /// can loop (see routing/forwarding.hpp), source routing cannot.
  bool use_local_views = true;
  /// How the measured (source u, destination v) pair is drawn:
  ///  * kTwoHop (default) — v uniform in N²(u), the pairs the QANS designs
  ///    optimize for (the paper reuses the algorithm's u/v naming and its
  ///    overhead magnitudes only come out at this range — see
  ///    EXPERIMENTS.md);
  ///  * kAnyConnected — v uniform over u's connected component (long
  ///    multi-hop flows).
  enum class PairMode { kTwoHop, kAnyConnected };
  PairMode pair_mode = PairMode::kTwoHop;
  /// Re-draws of the (source, destination) pair before resampling a
  /// topology when the draw keeps failing (disconnected pair / empty N²).
  std::size_t max_pair_draws = 64;
  /// Hard cap on whole-topology resamples in one sample_run call. A
  /// degenerate deployment (expected node count near zero, or a field too
  /// sparse to ever connect a pair) would otherwise spin forever; hitting
  /// the cap raises a descriptive error instead. Generous enough that any
  /// scenario with a realistic success rate never sees it.
  std::size_t max_topology_resamples = 10000;
  /// Keep one RunRecord per run in DensityStats::run_records (per-run set
  /// sizes, routed values, overheads) in addition to the aggregates. Off by
  /// default: the hot path stays allocation-free and the aggregates are all
  /// the figures need. (Static sweeps only — the epoch loop reports
  /// aggregates.)
  bool record_runs = false;
  /// The mobility/churn epoch loop; disabled (static evaluation) unless a
  /// model is set. See DynamicsSpec.
  DynamicsSpec dynamics;
  /// The fault-injection plan applied to every packet-backend run (ambient
  /// Bernoulli frame loss, per-link loss overrides, and a schedule of
  /// crash/flap/partition incidents injected after the measurement phase to
  /// time re-convergence). Inactive by default — an inactive plan leaves
  /// the packet backend byte-identical to the fault-free engine. Packet
  /// backend only; the oracle has no frames to lose.
  FaultPlan faults;
  /// The traffic workload scheduled on every packet-backend run after the
  /// probe phase: concurrent flows contending for per-link capacity in the
  /// ContendedMedium, with per-flow delivery/latency/throughput
  /// distributions reported. Inactive by default — an inactive spec leaves
  /// the packet backend byte-identical to a traffic-free run. Packet
  /// backend only; the oracle has no medium to load.
  TrafficSpec traffic;
  /// The adversary roster + wire-corruption engine applied to every
  /// packet-backend run: misbehaving nodes (blackhole, liar, replayer,
  /// selfish — sim/adversary.hpp) drawn from a dedicated seeded stream,
  /// plus seeded bit-flips on delivered frames, with the runtime invariant
  /// monitor armed to count the protocol violations they cause. Inactive
  /// by default — an inactive spec leaves the packet backend byte-identical
  /// to an honest run. Packet backend only; the oracle has no nodes to
  /// subvert.
  AdversarySpec adversaries;
  /// Data probes routed per (run, protocol) between the shared sampled
  /// pair. 1 (the default) reproduces the classic single-packet
  /// delivered/failed figure; lossy scenarios want more probes so the
  /// delivery *ratio* per run resolves finer than {0, 1}.
  std::size_t probe_packets = 1;
  /// What the values of `densities` mean. kDensity (default): mean node
  /// degree δ, the x-axis of Figs. 6-9. kSpeed (dynamics only): node speed
  /// in m/s — each sweep point fixes the waypoint model's speed_min =
  /// speed_max to the value while the deployment density stays
  /// `field.degree` (the x-axis of Fig. M, delivery ratio vs. speed).
  /// kLoss (packet backend only): ambient frame-loss probability — each
  /// sweep point sets `faults.loss_rate` to the value at fixed
  /// `field.degree` density (the x-axis of figure R, delivery vs. loss).
  /// kLoad (packet backend only, traffic spec required): offered-load
  /// multiplier — each sweep point sets `traffic.load` to the value at
  /// fixed `field.degree` density (the x-axis of figure L, QoS under
  /// load). kAdversary (packet backend only, adversary kinds required):
  /// adversary fraction — each sweep point sets `adversaries.fraction` to
  /// the value at fixed `field.degree` density (the x-axis of figure B,
  /// delivery and poisoned routes vs. adversary fraction).
  enum class SweepAxis { kDensity, kSpeed, kLoss, kLoad, kAdversary };
  SweepAxis sweep_axis = SweepAxis::kDensity;
};

/// The one table every axis consumer shares: CLI parsing, validation
/// error text and emitted column labels all derive from it, so adding an
/// axis is one row here (plus its semantics at the point of use).
struct SweepAxisInfo {
  Scenario::SweepAxis axis;
  const char* name;
};
inline constexpr SweepAxisInfo kSweepAxes[] = {
    {Scenario::SweepAxis::kDensity, "density"},
    {Scenario::SweepAxis::kSpeed, "speed"},
    {Scenario::SweepAxis::kLoss, "loss"},
    {Scenario::SweepAxis::kLoad, "load"},
    {Scenario::SweepAxis::kAdversary, "adversary"},
};

/// Column label of the sweep axis in emitted results.
inline const char* sweep_axis_name(Scenario::SweepAxis axis) {
  for (const SweepAxisInfo& info : kSweepAxes)
    if (info.axis == axis) return info.name;
  return "density";
}

/// Parses an axis name from the table. Returns false on an unknown name.
inline bool parse_sweep_axis(const std::string& name,
                             Scenario::SweepAxis& out) {
  for (const SweepAxisInfo& info : kSweepAxes) {
    if (name == info.name) {
      out = info.axis;
      return true;
    }
  }
  return false;
}

/// Comma-separated list of the valid axis names (for error messages).
inline std::string sweep_axis_names() {
  std::string out;
  for (const SweepAxisInfo& info : kSweepAxes) {
    if (!out.empty()) out += "|";
    out += info.name;
  }
  return out;
}

/// Densities used by the bandwidth figures (6 and 8).
inline std::vector<double> bandwidth_densities() {
  return {10, 15, 20, 25, 30, 35};
}

/// Densities used by the delay figures (7 and 9).
inline std::vector<double> delay_densities() { return {5, 10, 15, 20, 25, 30}; }

}  // namespace qolsr
