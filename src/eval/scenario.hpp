#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/deployment.hpp"

namespace qolsr {

/// One evaluation sweep, mirroring the paper's §IV-A settings: nodes in a
/// 1000×1000 field, R = 100, Poisson deployment of mean degree δ, link
/// weights uniform in a fixed interval, 100 runs per density with one
/// random (source, destination) pair per run shared by all protocols.
struct Scenario {
  DeploymentConfig field{};          ///< degree is overridden per sweep point
  std::vector<double> densities;     ///< δ values (x-axis of Figs. 6–9)
  std::size_t runs = 100;
  std::uint64_t seed = 42;
  /// Integer weights 1..5 by default: the paper's worked examples use
  /// small integers, and the resulting tie structure is what separates the
  /// heuristics' set sizes — under additive metrics especially, continuous
  /// weights never tie and the "advertise every tied first hop" cost of
  /// topology filtering disappears (see deployment.hpp and EXPERIMENTS.md).
  QosIntervals qos{.bandwidth_hi = 5.0, .delay_hi = 5.0, .integral = true};
  /// How routes are realized over the advertised state (see
  /// routing/forwarding.hpp and DESIGN.md §4.4):
  ///  * kAdvertisedUnion (default) — hop-by-hop over the undirected union
  ///    of all advertised links plus each hop's own links, RFC-style
  ///    routing tables; each protocol routes with its own discipline
  ///    (QOLSR hop-count-first, the QANS designs QoS-first);
  ///  * kAnsChain — strict directed relay chains through each node's own
  ///    ANS (the paper's §I wording taken literally; punishing for minimal
  ///    advertised sets — see EXPERIMENTS.md).
  enum class RoutingModel { kAnsChain, kAdvertisedUnion };
  RoutingModel routing_model = RoutingModel::kAdvertisedUnion;
  /// For kAdvertisedUnion: source routing (default) vs. hop-by-hop. The
  /// source decides the path on its knowledge — one consistent decision,
  /// no inter-hop inconsistency; for the 2-hop pairs of the paper's
  /// evaluation the two coincide in practice.
  bool hop_by_hop = false;
  /// For kAdvertisedUnion: merge the deciding node's full HELLO-derived
  /// 2-hop view into its routing knowledge (G_u ∪ A — what the node
  /// actually knows). Default on; hop-by-hop mode with heterogeneous views
  /// can loop (see routing/forwarding.hpp), source routing cannot.
  bool use_local_views = true;
  /// How the measured (source u, destination v) pair is drawn:
  ///  * kTwoHop (default) — v uniform in N²(u), the pairs the QANS designs
  ///    optimize for (the paper reuses the algorithm's u/v naming and its
  ///    overhead magnitudes only come out at this range — see
  ///    EXPERIMENTS.md);
  ///  * kAnyConnected — v uniform over u's connected component (long
  ///    multi-hop flows).
  enum class PairMode { kTwoHop, kAnyConnected };
  PairMode pair_mode = PairMode::kTwoHop;
  /// Re-draws of the (source, destination) pair before resampling a
  /// topology when the draw keeps failing (disconnected pair / empty N²).
  std::size_t max_pair_draws = 64;
  /// Hard cap on whole-topology resamples in one sample_run call. A
  /// degenerate deployment (expected node count near zero, or a field too
  /// sparse to ever connect a pair) would otherwise spin forever; hitting
  /// the cap raises a descriptive error instead. Generous enough that any
  /// scenario with a realistic success rate never sees it.
  std::size_t max_topology_resamples = 10000;
  /// Keep one RunRecord per run in DensityStats::run_records (per-run set
  /// sizes, routed values, overheads) in addition to the aggregates. Off by
  /// default: the hot path stays allocation-free and the aggregates are all
  /// the figures need.
  bool record_runs = false;
};

/// Densities used by the bandwidth figures (6 and 8).
inline std::vector<double> bandwidth_densities() {
  return {10, 15, 20, 25, 30, 35};
}

/// Densities used by the delay figures (7 and 9).
inline std::vector<double> delay_densities() { return {5, 10, 15, 20, 25, 30}; }

}  // namespace qolsr
