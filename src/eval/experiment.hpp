#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "eval/runner.hpp"
#include "eval/scenario.hpp"
#include "metrics/metric_id.hpp"
#include "olsr/selector_registry.hpp"

namespace qolsr {

/// Which engine executes a sweep (see eval/backend.hpp for the seam):
///  * kOracle — the analytic path: per run, every node's ANS is selected
///    on its exact local view computed from the sampled graph, routing
///    runs on the oracle advertised topology. Fast, and the reference the
///    paper's Figs. 6–9 are reproduced with.
///  * kPacket — the distributed path: per run and protocol, a
///    discrete-event Simulator floods real HELLO/TC packets until the
///    control plane converges, then set sizes, delivery and QoS overhead
///    are measured from each node's *converged protocol state* (neighbor
///    tables, ANS, topology base) and a data packet routed hop-by-hop on
///    per-node knowledge — plus the control-plane cost block (message and
///    byte counts, duplicate suppression, measured convergence time) the
///    oracle cannot produce.
///  * kWire — the multi-process path: per run and protocol, the wire
///    harness (net/wire_harness.hpp) spawns one qolsr_node daemon per node
///    plus the software switch, converges the protocol over real Unix
///    sockets and wall-clock timers, and then *verifies* every daemon's
///    converged digest against an in-process Simulator twin of the same
///    topology, seed and timing — a per-run cross-backend equivalence
///    assertion (mismatch throws), with set sizes and measured wall-clock
///    convergence taken from the daemons' status reports.
enum class BackendId { kOracle, kPacket, kWire };

/// The one table every backend consumer shares (the kSweepAxes idiom):
/// CLI parsing, the unknown-backend error text and emitted names all
/// derive from it, so adding a backend is one row here plus its
/// EvalBackend implementation (eval/backend.cpp).
struct BackendInfo {
  BackendId id;
  const char* name;
};
inline constexpr BackendInfo kBackends[] = {
    {BackendId::kOracle, "oracle"},
    {BackendId::kPacket, "packet"},
    {BackendId::kWire, "wire"},
};

/// Canonical CLI/JSON name ("oracle", "packet", "wire"), from kBackends.
std::string_view backend_name(BackendId id);

/// Inverse of backend_name; nullopt for unknown names.
std::optional<BackendId> parse_backend_id(std::string_view name);

/// Pipe-separated list of the valid backend names (for error messages and
/// help text), generated from kBackends.
std::string backend_names();

/// Any failure of the experiment engine — unknown metric or selector name,
/// malformed CLI flag, degenerate deployment — surfaces as this one type
/// with a human-readable message.
class ExperimentError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A declarative description of one evaluation sweep: everything the four
/// hard-coded figureN_* harnesses froze at compile time, as data. A spec
/// can be built in code, parsed from CLI flags (parse_experiment_spec), or
/// produced canned by figure_spec(); run_experiment executes it through the
/// same templated, allocation-free run_sweep<M> hot path.
struct ExperimentSpec {
  std::string name = "sweep";
  /// Execution engine (--backend=oracle|packet). The oracle default keeps
  /// every pre-existing spec byte-identical.
  BackendId backend = BackendId::kOracle;
  MetricId metric = MetricId::kBandwidth;
  /// SelectorRegistry names, in column order. Defaults to the paper's
  /// three contenders (Figs. 6–9 legend order).
  std::vector<std::string> selectors = {"qolsr_mpr2", "topology_filtering",
                                        "fnbp"};
  /// Deployment, densities, runs, seed, routing model, pair mode, … (the
  /// scenario's densities default to empty — set them or use figure_spec).
  Scenario scenario;
  /// Worker threads for run_sweep; 0 = hardware_concurrency. Benches and
  /// CI set 1 for deterministic timing. The wire backend always runs its
  /// process fleets sequentially (each run is a fleet of real processes).
  unsigned threads = 0;
  /// Wire backend only (--wire-scale): uniform compression factor applied
  /// to ProtocolTiming for the daemons' wall-clock timers AND the
  /// comparison Simulator (the same scaled struct feeds both sides, so the
  /// digest equivalence holds by construction). 0.02 turns RFC 3626's
  /// seconds into wall-clock milliseconds; raise it on loaded machines
  /// where scheduling jitter could outrun the scaled soft-state holds.
  double wire_scale = 0.02;
  // ----- output options (consumed by the sinks / CLI, not by the run) ----
  std::string format = "table";  ///< "table", "csv" or "json"
  std::string output_path;       ///< empty = stdout
  bool per_run = false;          ///< also record + emit per-run records
};

/// A finished experiment: the spec that produced it plus the per-density
/// aggregates (and per-run records when spec.per_run).
struct ExperimentResult {
  ExperimentSpec spec;
  std::vector<DensityStats> sweep;
};

/// Type-erased execution: resolves the named selectors (and, for the
/// packet backend, their flooding roles) from `registry` exactly once,
/// resolves the metric via dispatch_metric, and hands the spec to the
/// backend it names (eval/backend.hpp) — the oracle's templated sweep or
/// the packet-level simulation. Throws ExperimentError on unknown names,
/// an empty density list, backend-incompatible scenarios, or a degenerate
/// deployment (sample_run resample cap).
ExperimentResult run_experiment(
    const ExperimentSpec& spec,
    const SelectorRegistry& registry = SelectorRegistry::builtin());

/// Parses `--flag=value` strings (CLI argv after the program name) into a
/// spec, starting from `base` so canned specs (figure_spec) can be
/// customized; later flags override earlier ones. Throws ExperimentError
/// on unknown flags or unparsable values. Flags:
///
///   --name=S              experiment name (labels the output)
///   --backend=B           oracle|packet|wire execution engine (BackendId)
///   --wire-scale=F        wire backend timing compression (default 0.02)
///   --metric=NAME         bandwidth|delay|jitter|loss|energy|buffers
///   --selectors=A,B,...   SelectorRegistry names, column order
///   --densities=D1,D2,... mean-degree sweep points
///   --runs=N --seed=S --threads=T (T=0: hardware concurrency)
///   --field=WxH --radius=R deployment geometry
///   --qos-hi=V            upper bound of the magnitude-style QoS intervals
///                         (bandwidth/delay/energy/buffers; the jitter and
///                         loss probability intervals are unaffected)
///   --continuous-qos      real-valued link weights (default: integers)
///   --routing=union|chain --hop-by-hop --pairs=two_hop|any
///   --max-resamples=N     sample_run degenerate-deployment cap
///   --mobility=MODEL      none|waypoint|churn epoch-loop evaluation
///   --epochs=N --epoch-duration=S --speed=V|LO:HI --pause=N
///   --churn-down=P --churn-up=P --refresh=N (TC refresh lag, epochs)
///   --axis=density|speed|loss|load|adversary sweep-value meaning
///                         (--degree fixes the density for non-density
///                         sweeps)
///   --loss=P              ambient frame-loss probability (packet backend)
///   --probes=N            data probes per (run, protocol) (default 1)
///   --crash=K[@D] --flap=K[@D] --partition=D
///                         scheduled fault incidents injected after the
///                         measurement phase; re-convergence is timed
///   --adversaries=K@kind[,kind...] subvert K nodes per run (blackhole|
///                         liar|replayer|selfish, round-robin roles)
///   --corrupt=P           per-frame wire bit-flip probability
///   --traffic=PROC        none|poisson|cbr|pareto flow arrival process
///   --pattern=P --flows=N --load=X --traffic-rate=R --traffic-duration=S
///   --pareto-shape=A --packet-bytes=N --capacity=C --queue-bytes=N
///   --hotspots=N          traffic-workload knobs (packet backend)
///   --format=F --output=PATH --per-run
ExperimentSpec parse_experiment_spec(const std::vector<std::string>& args,
                                     ExperimentSpec base = {});

/// One-line-per-flag usage text for the CLI's --help.
std::string experiment_flags_help();

}  // namespace qolsr
