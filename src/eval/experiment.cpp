#include "eval/experiment.hpp"

#include <charconv>
#include <memory>

#include "eval/backend.hpp"

namespace qolsr {

std::string_view backend_name(BackendId id) {
  for (const BackendInfo& info : kBackends)
    if (info.id == id) return info.name;
  return "oracle";
}

std::optional<BackendId> parse_backend_id(std::string_view name) {
  for (const BackendInfo& info : kBackends)
    if (name == info.name) return info.id;
  return std::nullopt;
}

std::string backend_names() {
  std::string out;
  for (const BackendInfo& info : kBackends) {
    if (!out.empty()) out += "|";
    out += info.name;
  }
  return out;
}

namespace {

std::vector<std::string> split_list(std::string_view text) {
  std::vector<std::string> parts;
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    const std::string_view part = text.substr(0, comma);
    if (!part.empty()) parts.emplace_back(part);
    if (comma == std::string_view::npos) break;
    text.remove_prefix(comma + 1);
  }
  return parts;
}

double parse_double(std::string_view flag, std::string_view text) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw ExperimentError("flag " + std::string(flag) + ": '" +
                          std::string(text) + "' is not a number");
  return value;
}

std::uint64_t parse_uint(std::string_view flag, std::string_view text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw ExperimentError("flag " + std::string(flag) + ": '" +
                          std::string(text) + "' is not a non-negative integer");
  return value;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentSpec& spec,
                                const SelectorRegistry& registry) {
  if (spec.selectors.empty())
    throw ExperimentError("experiment '" + spec.name +
                          "': no selectors named");
  if (spec.scenario.densities.empty())
    throw ExperimentError("experiment '" + spec.name +
                          "': no densities to sweep");
  if (spec.scenario.runs == 0)
    throw ExperimentError("experiment '" + spec.name + "': runs must be > 0");
  const auto is_probability = [](double p) { return p >= 0.0 && p <= 1.0; };
  const FaultPlan& faults = spec.scenario.faults;
  if (!is_probability(faults.loss_rate))
    throw ExperimentError("experiment '" + spec.name +
                          "': --loss is a frame-loss probability in [0, 1]");
  for (const LinkLossSpec& link : faults.link_loss)
    if (!is_probability(link.rate))
      throw ExperimentError("experiment '" + spec.name +
                            "': per-link loss rates live in [0, 1]");
  for (const FaultIncident& incident : faults.incidents)
    if (incident.count == 0)
      throw ExperimentError("experiment '" + spec.name +
                            "': fault incidents need count >= 1");
  if (spec.scenario.probe_packets == 0)
    throw ExperimentError("experiment '" + spec.name +
                          "': --probes must be >= 1");
  if (spec.scenario.sweep_axis == Scenario::SweepAxis::kLoss) {
    if (spec.backend != BackendId::kPacket)
      throw ExperimentError("experiment '" + spec.name +
                            "': the loss axis needs --backend=packet (the "
                            "oracle has no frames to lose)");
    for (const double rate : spec.scenario.densities)
      if (!is_probability(rate))
        throw ExperimentError("experiment '" + spec.name +
                              "': loss sweep values are probabilities in "
                              "[0, 1]");
  } else if (faults.active() && spec.backend != BackendId::kPacket) {
    throw ExperimentError("experiment '" + spec.name +
                          "': fault injection (--loss/--crash/--flap/"
                          "--partition) needs --backend=packet");
  }
  if (spec.scenario.probe_packets != 1 && spec.backend != BackendId::kPacket)
    throw ExperimentError("experiment '" + spec.name +
                          "': --probes is a packet-backend knob");
  if (spec.wire_scale != 0.02 && spec.backend != BackendId::kWire)
    throw ExperimentError("experiment '" + spec.name +
                          "': --wire-scale is a wire-backend knob");
  if (spec.backend == BackendId::kWire &&
      (spec.wire_scale <= 0.0 || spec.wire_scale > 1.0))
    throw ExperimentError("experiment '" + spec.name +
                          "': --wire-scale is a timing compression factor "
                          "in (0, 1]");
  const TrafficSpec& traffic = spec.scenario.traffic;
  if (traffic.arrival != TrafficSpec::Arrival::kNone &&
      spec.backend != BackendId::kPacket)
    throw ExperimentError("experiment '" + spec.name +
                          "': traffic workloads (--traffic/--flows/--load/"
                          "--pattern) need --backend=packet (the oracle has "
                          "no medium to load)");
  if (traffic.arrival != TrafficSpec::Arrival::kNone) {
    if (traffic.load < 0.0)
      throw ExperimentError("experiment '" + spec.name +
                            "': --load must be >= 0 (0 = no traffic)");
    if (traffic.packet_rate <= 0.0)
      throw ExperimentError("experiment '" + spec.name +
                            "': --traffic-rate must be > 0 packets/s");
    if (traffic.duration <= 0.0)
      throw ExperimentError("experiment '" + spec.name +
                            "': --traffic-duration must be > 0 seconds");
    if (traffic.link_capacity <= 0.0)
      throw ExperimentError("experiment '" + spec.name +
                            "': --capacity must be > 0 bytes/s");
    if (traffic.queue_bytes == 0)
      throw ExperimentError("experiment '" + spec.name +
                            "': --queue-bytes must be > 0");
    if (traffic.arrival == TrafficSpec::Arrival::kPareto &&
        traffic.pareto_shape <= 1.0)
      throw ExperimentError("experiment '" + spec.name +
                            "': --pareto-shape must be > 1 (the mean "
                            "inter-arrival must exist)");
    if (traffic.pattern == TrafficSpec::Pattern::kHotspot &&
        traffic.hotspots == 0)
      throw ExperimentError("experiment '" + spec.name +
                            "': --hotspots must be >= 1");
  }
  if (spec.scenario.sweep_axis == Scenario::SweepAxis::kLoad) {
    if (spec.backend != BackendId::kPacket)
      throw ExperimentError("experiment '" + spec.name +
                            "': the load axis needs --backend=packet");
    if (traffic.arrival == TrafficSpec::Arrival::kNone)
      throw ExperimentError("experiment '" + spec.name +
                            "': the load axis needs a traffic process "
                            "(--traffic=poisson|cbr|pareto)");
    for (const double load : spec.scenario.densities)
      if (load < 0.0)
        throw ExperimentError("experiment '" + spec.name +
                              "': load sweep values must be >= 0");
  }
  const AdversarySpec& adversaries = spec.scenario.adversaries;
  if (!is_probability(adversaries.corrupt_rate))
    throw ExperimentError("experiment '" + spec.name +
                          "': --corrupt is a per-frame corruption "
                          "probability in [0, 1]");
  if (adversaries.count > 0 && adversaries.kinds.empty())
    throw ExperimentError("experiment '" + spec.name +
                          "': --adversaries=K@kind[,kind...] needs at least "
                          "one kind when K > 0 (known: " +
                          std::string(kAdversaryKindNames) + ")");
  if (spec.scenario.sweep_axis == Scenario::SweepAxis::kAdversary) {
    if (spec.backend != BackendId::kPacket)
      throw ExperimentError("experiment '" + spec.name +
                            "': the adversary axis needs --backend=packet "
                            "(the oracle has no nodes to subvert)");
    if (adversaries.kinds.empty())
      throw ExperimentError("experiment '" + spec.name +
                            "': the adversary axis needs roster kinds "
                            "(--adversaries=K@kind[,kind...])");
    for (const double fraction : spec.scenario.densities)
      if (!is_probability(fraction))
        throw ExperimentError("experiment '" + spec.name +
                              "': adversary sweep values are roster "
                              "fractions in [0, 1]");
  } else if (adversaries.active() && spec.backend != BackendId::kPacket) {
    throw ExperimentError("experiment '" + spec.name +
                          "': the adversary engine (--adversaries/--corrupt)"
                          " needs --backend=packet");
  }
  const DynamicsSpec& dynamics = spec.scenario.dynamics;
  if (spec.scenario.sweep_axis == Scenario::SweepAxis::kSpeed) {
    if (dynamics.model != DynamicsSpec::Model::kWaypoint)
      throw ExperimentError("experiment '" + spec.name +
                            "': the speed axis needs --mobility=waypoint");
    // Sweep values become the per-point waypoint speed, bypassing the
    // speed_min/speed_max checks below — a negative speed would walk
    // nodes out of the field to negative coordinates.
    for (const double speed : spec.scenario.densities)
      if (speed < 0.0)
        throw ExperimentError("experiment '" + spec.name +
                              "': speed sweep values must be >= 0 m/s");
  }
  if (dynamics.enabled()) {
    if (dynamics.epochs == 0)
      throw ExperimentError("experiment '" + spec.name +
                            "': epochs must be > 0 under a mobility model");
    if (dynamics.refresh_interval == 0)
      throw ExperimentError("experiment '" + spec.name +
                            "': refresh interval must be > 0 (1 = refresh "
                            "every epoch)");
    if (dynamics.epoch_duration <= 0.0)
      throw ExperimentError("experiment '" + spec.name +
                            "': epoch duration must be > 0");
    if (dynamics.speed_min < 0.0 || dynamics.speed_max < dynamics.speed_min)
      throw ExperimentError(
          "experiment '" + spec.name +
          "': waypoint speeds must satisfy 0 <= min <= max (--speed=LO:HI)");
    if (!is_probability(dynamics.link_down_rate) ||
        !is_probability(dynamics.link_up_rate))
      throw ExperimentError("experiment '" + spec.name +
                            "': churn rates are per-epoch probabilities in "
                            "[0, 1]");
    if (spec.per_run || spec.scenario.record_runs)
      throw ExperimentError("experiment '" + spec.name +
                            "': per-run records are a static-sweep feature "
                            "(drop --per-run or --mobility)");
  }

  // Selectors are resolved from the registry exactly once and shared by
  // whichever backend executes the sweep (and by its worker threads).
  const ResolvedProtocols protocols = resolve_protocols(spec, registry);

  ExperimentSpec executed = spec;
  executed.scenario.record_runs =
      executed.scenario.record_runs || executed.per_run;

  ExperimentResult result;
  result.spec = spec;
  try {
    result.sweep = backend_for(spec.backend).run(executed, protocols);
  } catch (const ExperimentError&) {
    throw;
  } catch (const std::exception& e) {
    throw ExperimentError("experiment '" + spec.name + "': " + e.what());
  }
  return result;
}

ExperimentSpec parse_experiment_spec(const std::vector<std::string>& args,
                                     ExperimentSpec base) {
  ExperimentSpec spec = std::move(base);
  for (const std::string& arg : args) {
    const std::string_view view = arg;
    const std::size_t eq = view.find('=');
    const std::string_view flag = view.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view{} : view.substr(eq + 1);
    // Valueless switches reject an attached value: silently discarding it
    // would turn "--per-run=false" into an enable.
    const auto require_no_value = [&] {
      if (eq != std::string_view::npos)
        throw ExperimentError("flag " + std::string(flag) +
                              " takes no value (got '" + std::string(value) +
                              "')");
    };

    if (flag == "--name") {
      spec.name = value;
    } else if (flag == "--backend") {
      const auto id = parse_backend_id(value);
      if (!id)
        throw ExperimentError("flag --backend: unknown backend '" +
                              std::string(value) +
                              "' (known: " + backend_names() + ")");
      spec.backend = *id;
    } else if (flag == "--metric") {
      const auto id = parse_metric_id(value);
      if (!id) {
        std::string known;
        for (MetricId m : kAllMetricIds)
          known += (known.empty() ? "" : " ") + std::string(metric_name(m));
        throw ExperimentError("flag --metric: unknown metric '" +
                              std::string(value) + "' (known: " + known + ")");
      }
      spec.metric = *id;
    } else if (flag == "--selectors") {
      spec.selectors = split_list(value);
    } else if (flag == "--densities") {
      spec.scenario.densities.clear();
      for (const std::string& d : split_list(value))
        spec.scenario.densities.push_back(parse_double(flag, d));
    } else if (flag == "--runs") {
      spec.scenario.runs = parse_uint(flag, value);
    } else if (flag == "--seed") {
      spec.scenario.seed = parse_uint(flag, value);
    } else if (flag == "--threads") {
      spec.threads = static_cast<unsigned>(parse_uint(flag, value));
    } else if (flag == "--wire-scale") {
      spec.wire_scale = parse_double(flag, value);
    } else if (flag == "--field") {
      const std::size_t x = value.find('x');
      if (x == std::string_view::npos)
        throw ExperimentError("flag --field: expected WIDTHxHEIGHT, got '" +
                              std::string(value) + "'");
      spec.scenario.field.width = parse_double(flag, value.substr(0, x));
      spec.scenario.field.height = parse_double(flag, value.substr(x + 1));
    } else if (flag == "--radius") {
      spec.scenario.field.radius = parse_double(flag, value);
    } else if (flag == "--degree") {
      // Only meaningful when the sweep axis is not density (speed sweeps
      // hold the density fixed at this value).
      spec.scenario.field.degree = parse_double(flag, value);
    } else if (flag == "--qos-hi") {
      // Magnitude-style intervals only; jitter (0..1) and loss (0..0.2)
      // are probability-shaped and keep their form.
      const double hi = parse_double(flag, value);
      spec.scenario.qos.bandwidth_hi = hi;
      spec.scenario.qos.delay_hi = hi;
      spec.scenario.qos.energy_hi = hi;
      spec.scenario.qos.buffers_hi = hi;
    } else if (flag == "--continuous-qos") {
      require_no_value();
      spec.scenario.qos.integral = false;
    } else if (flag == "--routing") {
      if (value == "union") {
        spec.scenario.routing_model = Scenario::RoutingModel::kAdvertisedUnion;
      } else if (value == "chain") {
        spec.scenario.routing_model = Scenario::RoutingModel::kAnsChain;
      } else {
        throw ExperimentError("flag --routing: expected union|chain, got '" +
                              std::string(value) + "'");
      }
    } else if (flag == "--hop-by-hop") {
      require_no_value();
      spec.scenario.hop_by_hop = true;
    } else if (flag == "--pairs") {
      if (value == "two_hop") {
        spec.scenario.pair_mode = Scenario::PairMode::kTwoHop;
      } else if (value == "any") {
        spec.scenario.pair_mode = Scenario::PairMode::kAnyConnected;
      } else {
        throw ExperimentError("flag --pairs: expected two_hop|any, got '" +
                              std::string(value) + "'");
      }
    } else if (flag == "--max-resamples") {
      spec.scenario.max_topology_resamples = parse_uint(flag, value);
    } else if (flag == "--mobility") {
      if (value == "none") {
        spec.scenario.dynamics.model = DynamicsSpec::Model::kNone;
      } else if (value == "waypoint") {
        spec.scenario.dynamics.model = DynamicsSpec::Model::kWaypoint;
      } else if (value == "churn") {
        spec.scenario.dynamics.model = DynamicsSpec::Model::kChurn;
      } else {
        throw ExperimentError(
            "flag --mobility: expected none|waypoint|churn, got '" +
            std::string(value) + "'");
      }
    } else if (flag == "--epochs") {
      spec.scenario.dynamics.epochs = parse_uint(flag, value);
    } else if (flag == "--epoch-duration") {
      spec.scenario.dynamics.epoch_duration = parse_double(flag, value);
    } else if (flag == "--speed") {
      // One value (fixed speed) or LO:HI (per-leg uniform draw).
      const std::size_t colon = value.find(':');
      if (colon == std::string_view::npos) {
        const double v = parse_double(flag, value);
        spec.scenario.dynamics.speed_min = v;
        spec.scenario.dynamics.speed_max = v;
      } else {
        spec.scenario.dynamics.speed_min =
            parse_double(flag, value.substr(0, colon));
        spec.scenario.dynamics.speed_max =
            parse_double(flag, value.substr(colon + 1));
      }
    } else if (flag == "--pause") {
      spec.scenario.dynamics.pause_epochs = parse_uint(flag, value);
    } else if (flag == "--churn-down") {
      spec.scenario.dynamics.link_down_rate = parse_double(flag, value);
    } else if (flag == "--churn-up") {
      spec.scenario.dynamics.link_up_rate = parse_double(flag, value);
    } else if (flag == "--refresh") {
      spec.scenario.dynamics.refresh_interval = parse_uint(flag, value);
    } else if (flag == "--axis") {
      // One shared table (kSweepAxes) drives parsing, the error text and
      // the emitted column label — adding an axis is one row there.
      if (!parse_sweep_axis(std::string(value), spec.scenario.sweep_axis))
        throw ExperimentError("flag --axis: expected " + sweep_axis_names() +
                              ", got '" + std::string(value) + "'");
    } else if (flag == "--loss") {
      spec.scenario.faults.loss_rate = parse_double(flag, value);
    } else if (flag == "--probes") {
      spec.scenario.probe_packets = parse_uint(flag, value);
    } else if (flag == "--crash" || flag == "--flap") {
      // K victims, optionally K@DURATION (seconds until restart / link-up;
      // 0 = permanent).
      FaultIncident incident;
      incident.kind = flag == "--crash" ? FaultIncident::Kind::kNodeCrash
                                        : FaultIncident::Kind::kLinkFlap;
      incident.duration = flag == "--crash" ? 10.0 : 5.0;
      const std::size_t at = value.find('@');
      incident.count = parse_uint(flag, value.substr(0, at));
      if (at != std::string_view::npos)
        incident.duration = parse_double(flag, value.substr(at + 1));
      spec.scenario.faults.incidents.push_back(incident);
    } else if (flag == "--partition") {
      FaultIncident incident;
      incident.kind = FaultIncident::Kind::kPartition;
      incident.duration = parse_double(flag, value);
      spec.scenario.faults.incidents.push_back(incident);
    } else if (flag == "--adversaries") {
      // K victims, optionally K@kind[,kind...] (round-robin roster roles).
      AdversarySpec& adv = spec.scenario.adversaries;
      const std::size_t at = value.find('@');
      adv.count = parse_uint(flag, value.substr(0, at));
      adv.kinds.clear();
      if (at != std::string_view::npos) {
        for (const std::string& kind : split_list(value.substr(at + 1))) {
          const auto parsed = parse_adversary_kind(kind);
          if (!parsed)
            throw ExperimentError(
                "flag --adversaries: unknown kind '" + kind +
                "' (known: " + std::string(kAdversaryKindNames) + ")");
          adv.kinds.push_back(*parsed);
        }
      }
    } else if (flag == "--corrupt") {
      spec.scenario.adversaries.corrupt_rate = parse_double(flag, value);
    } else if (flag == "--traffic") {
      TrafficSpec& traffic = spec.scenario.traffic;
      if (value == "none") {
        traffic.arrival = TrafficSpec::Arrival::kNone;
      } else if (value == "poisson") {
        traffic.arrival = TrafficSpec::Arrival::kPoisson;
      } else if (value == "cbr") {
        traffic.arrival = TrafficSpec::Arrival::kCbr;
      } else if (value == "pareto") {
        traffic.arrival = TrafficSpec::Arrival::kPareto;
      } else {
        throw ExperimentError(
            "flag --traffic: expected none|poisson|cbr|pareto, got '" +
            std::string(value) + "'");
      }
    } else if (flag == "--pattern") {
      TrafficSpec& traffic = spec.scenario.traffic;
      if (value == "uniform") {
        traffic.pattern = TrafficSpec::Pattern::kUniform;
      } else if (value == "hotspot") {
        traffic.pattern = TrafficSpec::Pattern::kHotspot;
      } else if (value == "gateway") {
        traffic.pattern = TrafficSpec::Pattern::kGateway;
      } else {
        throw ExperimentError(
            "flag --pattern: expected uniform|hotspot|gateway, got '" +
            std::string(value) + "'");
      }
    } else if (flag == "--flows") {
      spec.scenario.traffic.flows = parse_uint(flag, value);
    } else if (flag == "--load") {
      spec.scenario.traffic.load = parse_double(flag, value);
    } else if (flag == "--traffic-rate") {
      spec.scenario.traffic.packet_rate = parse_double(flag, value);
    } else if (flag == "--traffic-duration") {
      spec.scenario.traffic.duration = parse_double(flag, value);
    } else if (flag == "--pareto-shape") {
      spec.scenario.traffic.pareto_shape = parse_double(flag, value);
    } else if (flag == "--packet-bytes") {
      spec.scenario.traffic.packet_bytes = parse_uint(flag, value);
    } else if (flag == "--capacity") {
      spec.scenario.traffic.link_capacity = parse_double(flag, value);
    } else if (flag == "--queue-bytes") {
      spec.scenario.traffic.queue_bytes = parse_uint(flag, value);
    } else if (flag == "--hotspots") {
      spec.scenario.traffic.hotspots = parse_uint(flag, value);
    } else if (flag == "--format") {
      spec.format = value;
    } else if (flag == "--output") {
      spec.output_path = value;
    } else if (flag == "--per-run") {
      require_no_value();
      spec.per_run = true;
    } else {
      throw ExperimentError("unknown flag '" + std::string(flag) +
                            "' (see --help)");
    }
  }
  return spec;
}

std::string experiment_flags_help() {
  return
      "  --name=S              experiment name (labels the output)\n"
      "  --backend=B           oracle|packet|wire: analytic oracle sweeps\n"
      "                        (the default; Figs. 6-9 reference), per-run\n"
      "                        discrete-event HELLO/TC simulation measured\n"
      "                        from converged protocol state (with\n"
      "                        control-plane cost: messages, bytes,\n"
      "                        duplicate drops, convergence time), or real\n"
      "                        multi-process runs over the software switch,\n"
      "                        digest-verified against an in-process twin\n"
      "  --wire-scale=F        wire backend: timing compression factor in\n"
      "                        (0, 1] applied to both the daemons and the\n"
      "                        comparison simulator (default 0.02)\n"
      "  --metric=NAME         bandwidth|delay|jitter|loss|energy|buffers\n"
      "  --selectors=A,B,...   protocols, column order (see --list-selectors)\n"
      "  --densities=D1,D2,... mean-degree sweep points\n"
      "  --runs=N              runs per density (default 100)\n"
      "  --seed=S              base RNG seed (default 42)\n"
      "  --threads=T           worker threads; 0 = hardware concurrency\n"
      "  --field=WxH           deployment field size (default 1000x1000)\n"
      "  --radius=R            unit-disk link radius (default 100)\n"
      "  --degree=D            fixed mean degree for non-density sweep axes\n"
      "  --qos-hi=V            upper bound of the magnitude-style QoS\n"
      "                        intervals (bandwidth, delay, energy, buffers;\n"
      "                        jitter and loss keep their 0..1 / 0..0.2 form)\n"
      "  --continuous-qos      real-valued link weights (default: integers)\n"
      "  --routing=union|chain advertised-union vs. strict ANS-chain routing\n"
      "  --hop-by-hop          hop-by-hop forwarding (default: source routing)\n"
      "  --pairs=two_hop|any   destination draw: N2(u) vs. whole component\n"
      "  --max-resamples=N     degenerate-deployment resample cap\n"
      "  --mobility=MODEL      none|waypoint|churn: evolve each topology\n"
      "                        over discrete epochs instead of one static\n"
      "                        snapshot (delivery ratio, stretch, stale\n"
      "                        losses, re-advertisement overhead)\n"
      "  --epochs=N            measured epochs per run (default 50)\n"
      "  --epoch-duration=S    seconds of movement per epoch (default 1)\n"
      "  --speed=V|LO:HI       waypoint node speed, m/s (default 1:10)\n"
      "  --pause=N             waypoint pause epochs (default 0)\n"
      "  --churn-down=P        per-epoch P(live link fails) (default 0.05)\n"
      "  --churn-up=P          per-epoch P(failed link recovers) (0.25)\n"
      "  --refresh=N           epochs between TC refreshes; routing runs on\n"
      "                        the last refresh's advertised state (def. 1)\n"
      "  --axis=density|speed|loss|load|adversary\n"
      "                        meaning of the sweep values: mean degree,\n"
      "                        waypoint speed (fixes density at the --degree\n"
      "                        value; needs --mobility=waypoint), ambient\n"
      "                        frame-loss probability (fixes density; needs\n"
      "                        --backend=packet — the figure R sweep),\n"
      "                        offered-load multiplier (fixes density; needs\n"
      "                        --backend=packet and --traffic — figure L),\n"
      "                        or adversary roster fraction (fixes density;\n"
      "                        needs --backend=packet and --adversaries —\n"
      "                        figure B)\n"
      "  --loss=P              ambient Bernoulli frame-loss probability of\n"
      "                        the packet backend's medium (default 0)\n"
      "  --probes=N            data probes routed per run/protocol pair\n"
      "                        (default 1; more resolves per-run delivery\n"
      "                        ratio under loss)\n"
      "  --crash=K[@D]         schedule a crash of K random nodes, restart\n"
      "                        after D seconds (default 10; 0 = permanent);\n"
      "                        injected after measurement, re-convergence is\n"
      "                        timed (repeatable)\n"
      "  --flap=K[@D]          schedule K random links down for D seconds\n"
      "                        (default 5; 0 = permanent) (repeatable)\n"
      "  --partition=D         schedule an id-halves network partition that\n"
      "                        heals after D seconds (0 = permanent)\n"
      "  --adversaries=K@kind[,kind...]\n"
      "                        subvert K random nodes per run (packet\n"
      "                        backend): blackhole|liar|replayer|selfish,\n"
      "                        roles assigned round-robin; the runtime\n"
      "                        invariant monitor counts the protocol\n"
      "                        violations they cause (under --axis=adversary\n"
      "                        the sweep value is the roster *fraction*)\n"
      "  --corrupt=P           per-delivered-frame wire bit-flip probability\n"
      "                        (packet backend; flipped frames still arrive\n"
      "                        and the hardened parser rejects what no\n"
      "                        longer parses)\n"
      "  --traffic=PROC        none|poisson|cbr|pareto: schedule concurrent\n"
      "                        data flows after the probe phase, contending\n"
      "                        for per-link capacity; per-flow delivery,\n"
      "                        latency and throughput distributions are\n"
      "                        reported (packet backend)\n"
      "  --pattern=P           uniform|hotspot|gateway flow endpoints\n"
      "  --flows=N             concurrent flows (default 16)\n"
      "  --load=X              offered-load multiplier (default 1; 0 = no\n"
      "                        traffic; the load-axis sweep value)\n"
      "  --traffic-rate=R      packets/s per flow at load 1 (default 20)\n"
      "  --traffic-duration=S  seconds of traffic per run (default 10)\n"
      "  --pareto-shape=A      Pareto tail shape, > 1 (default 1.5)\n"
      "  --packet-bytes=N      modeled payload bytes per data packet (512)\n"
      "  --capacity=C          link capacity in bytes/s per unit bandwidth\n"
      "                        QoS (default 20000)\n"
      "  --queue-bytes=N       per-link FIFO queue bound, bytes (16384)\n"
      "  --hotspots=N          hot destinations for --pattern=hotspot (2)\n"
      "  --format=F            table|csv|json (default table)\n"
      "  --output=PATH         write results to PATH instead of stdout\n"
      "  --per-run             also record and emit per-run records\n";
}

}  // namespace qolsr
