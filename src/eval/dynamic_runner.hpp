#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/runner.hpp"
#include "graph/connectivity.hpp"
#include "olsr/incremental.hpp"
#include "sim/mobility.hpp"

namespace qolsr {

/// Per-worker scratch of the dynamics epoch loop: the static workspace
/// bundle (view builder, selection, forwarding) plus the epoch-delta
/// machinery — link events, the dirty-node tracker, and per-selector
/// *advertised* state (the possibly stale ANS tables + CSR topologies of
/// the last TC refresh, and the graph snapshot they were disseminated
/// from). These are reused across epochs and runs, so the selection and
/// forwarding hot paths stay allocation-free; the epoch *measurement*
/// path is not — connected_components (kAnyConnected pair draws) and the
/// geometry rebuild inside update_unit_disk_links allocate O(n) transient
/// buffers per epoch, a deliberate trade (they are a small fraction of an
/// epoch's cost next to the dirty-node selection sweep).
struct DynamicEvalWorkspace {
  EvalWorkspace eval;
  std::vector<LinkEvent> events;
  DirtyNodeTracker dirty;
  /// advertised_ans[si][u]: u's ANS as of the last refresh (selector si).
  std::vector<std::vector<std::vector<NodeId>>> advertised_ans;
  /// CSR advertised-union topology per selector, rebuilt at each refresh.
  std::vector<CsrTopology> advertised;
  /// The true graph at the last refresh — what the TC flood described.
  Graph snapshot;
  /// Per-epoch optimum (QoS value and min-hop distance) on the current
  /// graph; separate from the forwarding Dijkstra so both stay warm.
  DijkstraWorkspace optima;
};

namespace eval_detail {

/// One dynamics run: sample a deployment, run full selection once (epoch
/// 0), advertise it, then per epoch: evolve the topology, re-select for
/// the dirty nodes only, refresh the advertised state every
/// `refresh_interval` epochs, and route one packet per selector on the
/// (possibly stale) advertised knowledge — counting delivery, stale-link
/// losses, QoS overhead and hop stretch against the *current* optimum,
/// and the TC re-advertisements each refresh triggers.
template <Metric M>
void execute_dynamic_run(const Scenario& scenario, double axis_value,
                         std::size_t run_index, std::uint64_t run_seed,
                         const std::vector<const AnsSelector*>& selectors,
                         DensityStats& stats, DynamicEvalWorkspace& ws) {
  (void)run_index;
  const DynamicsSpec& dyn = scenario.dynamics;
  util::Rng rng(run_seed);

  DeploymentConfig field = scenario.field;
  if (scenario.sweep_axis == Scenario::SweepAxis::kDensity)
    field.degree = axis_value;

  Graph graph;
  for (std::size_t resample = 0;; ++resample) {
    if (resample >= scenario.max_topology_resamples)
      throw std::runtime_error(
          "execute_dynamic_run: no deployment with >= 2 nodes after " +
          std::to_string(scenario.max_topology_resamples) +
          " resamples (expected nodes per deployment: " +
          std::to_string(field.expected_nodes()) +
          ") - the deployment configuration is degenerate");
    graph = sample_poisson_deployment(field, rng);
    if (graph.node_count() >= 2) break;
  }
  assign_uniform_qos(graph, scenario.qos, rng);
  stats.node_count.add(static_cast<double>(graph.node_count()));
  const std::size_t n = graph.node_count();

  std::unique_ptr<MobilityModel> model;
  if (dyn.model == DynamicsSpec::Model::kWaypoint) {
    WaypointConfig config;
    config.width = field.width;
    config.height = field.height;
    config.radius = field.radius;
    config.speed_min = dyn.speed_min;
    config.speed_max = dyn.speed_max;
    if (scenario.sweep_axis == Scenario::SweepAxis::kSpeed)
      config.speed_min = config.speed_max = axis_value;
    config.pause_epochs = dyn.pause_epochs;
    config.epoch_duration = dyn.epoch_duration;
    config.qos = scenario.qos;
    model = std::make_unique<RandomWaypointModel>(config, graph, rng);
  } else {
    model = std::make_unique<LinkChurnModel>(
        ChurnConfig{dyn.link_down_rate, dyn.link_up_rate});
  }

  // Epoch 0: full selection everywhere (the incremental pipeline with
  // every node dirty), then the first advertisement.
  auto& ans = ws.eval.ans;
  ans.resize(selectors.size());
  for (auto& per_node : ans) per_node.resize(n);
  ws.dirty.begin_epoch(n);
  for (NodeId u = 0; u < n; ++u) ws.dirty.mark(u);
  refresh_dirty_selection(graph, selectors, ws.dirty, ws.eval.view_builder,
                          ws.eval.view, ws.eval.selection, ans);
  const bool union_model =
      scenario.routing_model == Scenario::RoutingModel::kAdvertisedUnion;
  ws.advertised_ans.resize(selectors.size());
  ws.advertised.resize(selectors.size());
  // The union model freezes its stale knowledge into the CSR right here,
  // so only the chain model — which replans its relay base per packet —
  // needs the refresh-time graph kept around.
  if (!union_model) ws.snapshot = graph;
  for (std::size_t si = 0; si < selectors.size(); ++si) {
    ws.advertised_ans[si] = ans[si];
    if (union_model)
      ws.eval.advertised_builder.build_advertised(graph, ws.advertised_ans[si],
                                                  ws.advertised[si]);
  }

  for (std::size_t epoch = 1; epoch <= dyn.epochs; ++epoch) {
    // -- evolve + incremental selection maintenance ----------------------
    ws.events.clear();
    model->step(graph, rng, ws.events);
    ws.dirty.begin_epoch(n);
    collect_dirty_nodes(graph, ws.events, ws.dirty);
    refresh_dirty_selection(graph, selectors, ws.dirty, ws.eval.view_builder,
                            ws.eval.view, ws.eval.selection, ans);

    // -- TC refresh: the advertised state catches up ---------------------
    if (epoch % dyn.refresh_interval == 0) {
      if (!union_model) ws.snapshot = graph;
      for (std::size_t si = 0; si < selectors.size(); ++si) {
        stats.protocols[si].readvertised.add(static_cast<double>(
            count_changed_ans(ans[si], ws.advertised_ans[si])));
        ws.advertised_ans[si] = ans[si];
        if (union_model)
          ws.eval.advertised_builder.build_advertised(
              graph, ws.advertised_ans[si], ws.advertised[si]);
      }
    }

    // -- draw this epoch's measured pair on the current graph ------------
    NodeId source = kInvalidNode, destination = kInvalidNode;
    if (scenario.pair_mode == Scenario::PairMode::kTwoHop) {
      for (std::size_t attempt = 0; attempt < scenario.max_pair_draws;
           ++attempt) {
        const NodeId s = static_cast<NodeId>(rng.uniform_int(n));
        ws.eval.view_builder.build(graph, s, ws.eval.view);
        if (ws.eval.view.two_hop().empty()) continue;
        const std::uint32_t pick = static_cast<std::uint32_t>(rng.uniform_int(
            std::uint64_t{ws.eval.view.two_hop().size()}));
        source = s;
        destination = ws.eval.view.global_id(ws.eval.view.two_hop()[pick]);
        break;
      }
    } else {
      const Components components = connected_components(graph);
      for (std::size_t attempt = 0; attempt < scenario.max_pair_draws;
           ++attempt) {
        const NodeId s = static_cast<NodeId>(rng.uniform_int(n));
        const NodeId d = static_cast<NodeId>(rng.uniform_int(n));
        if (s == d || !components.connected(s, d)) continue;
        source = s;
        destination = d;
        break;
      }
    }
    // The pair is connected *now*, so every undelivered packet below is a
    // loss chargeable to stale or insufficient advertised state. An epoch
    // with no drawable pair (the churn tore the graph apart) records set
    // sizes but no packet, for every selector alike.
    const bool pair_found = source != kInvalidNode;
    double optimal_value = 0.0;
    double optimal_hops = 0.0;
    if (pair_found) {
      dijkstra<M>(graph, source, kInvalidNode, ws.optima);
      optimal_value = ws.optima.value(destination);
      dijkstra_min_hop<M>(graph, source, kInvalidNode, ws.optima);
      optimal_hops = static_cast<double>(ws.optima.hops(destination));
    }

    // -- route one packet per selector on its advertised knowledge -------
    for (std::size_t si = 0; si < selectors.size(); ++si) {
      ProtocolStats& ps = stats.protocols[si];
      ps.set_size.add(average_set_size(ans[si]));
      if (!pair_found) continue;

      ForwardingOptions options;
      options.use_local_views = scenario.use_local_views;
      options.min_hop_routing = !selectors[si]->qos_first_routing();
      options.verify_links = true;
      ForwardingResult routed;
      if (!union_model) {
        options.advertised_snapshot = &ws.snapshot;
        routed = forward_via_ans<M>(graph, ws.advertised_ans[si], source,
                                    destination, options, ws.eval.forwarding);
      } else if (scenario.hop_by_hop) {
        routed = forward_packet<M>(graph, ws.advertised[si], source,
                                   destination, options, ws.eval.forwarding);
      } else {
        routed = source_route_packet<M>(graph, ws.advertised[si], source,
                                        destination, options,
                                        ws.eval.forwarding);
      }
      if (routed.delivered()) {
        ++ps.delivered;
        ps.overhead.add(qos_overhead<M>(routed.value, optimal_value));
        const double hops = static_cast<double>(routed.path.size() - 1);
        ps.path_hops.add(hops);
        ps.stretch.add(optimal_hops > 0.0 ? hops / optimal_hops : 1.0);
      } else {
        ++ps.failed;
        if (routed.status == ForwardingStatus::kStaleLink) ++ps.stale_losses;
      }
    }
  }
}

}  // namespace eval_detail

/// The dynamics counterpart of run_sweep: same threaded harness, same
/// determinism contract (run r of sweep-point index d derives its RNG
/// stream from the scenario seed alone, so aggregates are thread-count
/// invariant), but each run is a mobility/churn trace evaluated per epoch
/// instead of one static topology. Sweep-point values are densities
/// (kDensity) or waypoint speeds (kSpeed) per `scenario.sweep_axis`.
template <Metric M>
std::vector<DensityStats> run_dynamic_sweep(
    const Scenario& scenario, const std::vector<const AnsSelector*>& selectors,
    unsigned threads = 0) {
  return eval_detail::sweep_harness<DynamicEvalWorkspace>(
      scenario, selectors, threads,
      [](const Scenario& sc, double axis_value, std::size_t run_index,
         std::uint64_t run_seed, const std::vector<const AnsSelector*>& sel,
         DensityStats& stats, DynamicEvalWorkspace& ws) {
        eval_detail::execute_dynamic_run<M>(sc, axis_value, run_index,
                                            run_seed, sel, stats, ws);
      });
}

}  // namespace qolsr
