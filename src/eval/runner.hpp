#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "eval/scenario.hpp"
#include "graph/connectivity.hpp"
#include "graph/local_view.hpp"
#include "metrics/metric.hpp"
#include "olsr/selector.hpp"
#include "path/dijkstra.hpp"
#include "routing/advertised_topology.hpp"
#include "routing/forwarding.hpp"
#include "sim/invariants.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace qolsr {

/// Control-plane cost of running one protocol on one sampled topology,
/// measured by the packet-level backend (eval/packet_runner.hpp) from the
/// discrete-event simulator's trace — the quantities the paper reasons
/// about (smaller ANS ⇒ smaller/fewer TCs) but the oracle path cannot
/// produce. One sample per run, network-wide totals; empty (count 0) under
/// the oracle backend.
struct ControlPlaneStats {
  util::RunningStats hello_msgs;       ///< HELLOs sent per run
  util::RunningStats tc_msgs;          ///< TCs originated per run
  util::RunningStats tc_forwards;      ///< MPR retransmissions per run
  util::RunningStats duplicate_drops;  ///< duplicate-set hits per run
  util::RunningStats control_bytes;    ///< broadcast control bytes per run
  /// Measured convergence time (seconds of simulated time until the
  /// network-wide protocol state last changed — see
  /// Simulator::run_to_convergence), not an assumed horizon.
  util::RunningStats convergence_time;
  /// Runs that hit the simulator's hard time cap while the state was
  /// still changing: their convergence_time sample is only a lower bound
  /// and the measurements were taken from not-yet-quiescent state. Any
  /// nonzero value flags the sweep point as suspect (all sinks emit it).
  std::size_t unconverged = 0;
  // ---- fault-engine block (zero under a fault-free plan) ----------------
  /// Control frames dropped by the Bernoulli loss gate per run — what the
  /// protocol's re-flooding cost pays to overcome.
  util::RunningStats frames_lost;
  /// Frames suppressed by the up/down overlay (downed links, crashed
  /// nodes, partitions) per run.
  util::RunningStats frames_blocked;
  /// Seconds from an injected incident to the network-wide state settling
  /// again; one sample per scheduled FaultIncident per run.
  util::RunningStats reconvergence_time;
  /// Re-convergence attempts that hit the hard cap still changing — the
  /// incident counterpart of `unconverged`.
  std::size_t reconv_unconverged = 0;

  bool measured() const { return convergence_time.count() > 0; }

  void merge(const ControlPlaneStats& other) {
    hello_msgs.merge(other.hello_msgs);
    tc_msgs.merge(other.tc_msgs);
    tc_forwards.merge(other.tc_forwards);
    duplicate_drops.merge(other.duplicate_drops);
    control_bytes.merge(other.control_bytes);
    convergence_time.merge(other.convergence_time);
    unconverged += other.unconverged;
    frames_lost.merge(other.frames_lost);
    frames_blocked.merge(other.frames_blocked);
    reconvergence_time.merge(other.reconvergence_time);
    reconv_unconverged += other.reconv_unconverged;
  }
};

/// Flow-level outcome of the traffic workload of one protocol at one sweep
/// point (packet backend with an active TrafficSpec; empty otherwise).
/// Counters are packet totals across runs; the distributions keep every
/// sample (per packet resp. per flow) so the sinks can report quantiles
/// and histograms, not just means.
struct TrafficStats {
  std::size_t offered = 0;    ///< data packets scheduled
  std::size_t delivered = 0;  ///< data packets that reached their sink
  // Fate classification of undelivered packets (sums to offered-delivered):
  std::size_t queue_drops = 0;    ///< tail-dropped at a saturated link queue
  std::size_t no_route_drops = 0; ///< a hop had no route to the destination
  std::size_t loop_drops = 0;     ///< TTL exhausted (routing loop)
  std::size_t medium_drops = 0;   ///< lost mid-flight on the lossy medium
  /// End-to-end latency of each delivered packet, seconds.
  util::DistributionAccumulator latency;
  /// Per-flow delivered fraction (one sample per flow per run).
  util::DistributionAccumulator flow_delivery;
  /// Per-flow goodput in bytes/second (delivered payload over the traffic
  /// duration; one sample per flow per run).
  util::DistributionAccumulator flow_throughput;

  bool measured() const { return offered > 0; }

  double delivery_ratio() const {
    return offered > 0
               ? static_cast<double>(delivered) / static_cast<double>(offered)
               : 0.0;
  }

  void merge(const TrafficStats& other) {
    offered += other.offered;
    delivered += other.delivered;
    queue_drops += other.queue_drops;
    no_route_drops += other.no_route_drops;
    loop_drops += other.loop_drops;
    medium_drops += other.medium_drops;
    latency.merge(other.latency);
    flow_delivery.merge(other.flow_delivery);
    flow_throughput.merge(other.flow_throughput);
  }
};

/// Invariant-monitor outcome of one protocol at one sweep point (packet
/// backend with an active AdversarySpec; empty otherwise). The counters
/// are violation totals across runs; the distributions sample per run so
/// the sinks can report how early and how hard the roster bites.
struct InvariantStats {
  /// Violation counters summed across runs (sim/invariants.hpp).
  InvariantCounters counters;
  /// Frames the wire-corruption gate flipped, per run.
  util::RunningStats frames_corrupted;
  /// Received frames the hardened parser rejected, per run.
  util::RunningStats frames_malformed;
  /// Seconds of simulated time from run start to the first monitored
  /// violation; one sample per run that had any (violation-free runs
  /// contribute nothing, so the mean is conditional).
  util::RunningStats time_to_first_violation;
  /// Failed probes whose recorded journey visited an adversary — routes
  /// the roster poisoned, as opposed to honest routing failures.
  std::size_t poisoned_routes = 0;

  bool measured() const {
    return frames_corrupted.count() > 0 || counters.total() > 0;
  }

  void merge(const InvariantStats& other) {
    counters.add(other.counters);
    frames_corrupted.merge(other.frames_corrupted);
    frames_malformed.merge(other.frames_malformed);
    time_to_first_violation.merge(other.time_to_first_violation);
    poisoned_routes += other.poisoned_routes;
  }
};

/// Aggregated measurements of one protocol at one sweep point. Static
/// sweeps sample once per run; the dynamics epoch loop samples once per
/// measured epoch (set_size, overhead, path_hops, delivered/failed) and
/// additionally fills the dynamics-only aggregates below.
struct ProtocolStats {
  std::string name;
  util::RunningStats set_size;   ///< mean |ANS| per node, one sample per run
  util::RunningStats overhead;   ///< (b*−b)/b* resp. (d−d*)/d*, per run
  util::RunningStats path_hops;  ///< hop length of the delivered route
  std::size_t delivered = 0;
  std::size_t failed = 0;        ///< no-route / loop / hop-limit outcomes
  // ---- dynamics-mode only (empty in static sweeps) ----------------------
  /// Of `failed`: packets lost handing off over an advertised link that no
  /// longer exists (ForwardingStatus::kStaleLink) — losses specifically
  /// chargeable to advertisement *age*, as opposed to advertised state
  /// that never connected the pair (kNoRoute) or routing pathologies
  /// (kLoop / kHopLimit).
  std::size_t stale_losses = 0;
  /// Hop stretch of delivered epoch packets: traversed hops / min-hop
  /// distance on the *current* true graph.
  util::RunningStats stretch;
  /// Per TC refresh: nodes whose advertised set changed since the last
  /// refresh (TC messages the refresh floods).
  util::RunningStats readvertised;
  // ---- packet-backend only (empty under the oracle backend) -------------
  /// Measured control-plane cost (messages, bytes, duplicate suppression,
  /// convergence time) of disseminating this protocol's advertised state.
  ControlPlaneStats control;
  /// Fate classification of failed probes under the fault engine: dropped
  /// for lack of a route (a blackhole — soft state aged out or never
  /// built), dropped by the TTL cap (a routing loop on inconsistent
  /// knowledge), or lost on the medium itself (the Bernoulli gate ate a
  /// data frame). Sums to `failed` in packet-backend static sweeps.
  std::size_t no_route_losses = 0;
  std::size_t loop_losses = 0;
  std::size_t medium_losses = 0;
  /// Per-run probe delivery fraction (probes_delivered / probe_packets,
  /// one sample per run) — the distribution behind the delivered/failed
  /// totals, emitted alongside the fault block.
  util::DistributionAccumulator probe_delivery;
  /// Flow-level outcomes of the traffic workload (active TrafficSpec only).
  TrafficStats traffic;
  /// Invariant-monitor outcome under the adversary engine (active
  /// AdversarySpec only).
  InvariantStats invariants;

  /// Delivered fraction of attempted packets (0 when none were attempted)
  /// — the headline dynamics series, shared by every result emitter.
  double delivery_ratio() const {
    const std::size_t attempted = delivered + failed;
    return attempted > 0
               ? static_cast<double>(delivered) / static_cast<double>(attempted)
               : 0.0;
  }
};

/// One run's raw measurements, kept only when Scenario::record_runs is on
/// (result sinks can then emit per-run records next to the aggregates).
struct RunRecord {
  std::size_t run_index = 0;  ///< index into the density's run sequence
  std::size_t nodes = 0;
  struct Protocol {
    double set_size = 0.0;   ///< mean |ANS| per node on this topology
    bool delivered = false;  ///< every probe of the run arrived
    double value = 0.0;      ///< routed QoS value (when delivered)
    double overhead = 0.0;   ///< vs. the centralized optimum (when delivered)
    std::size_t hops = 0;    ///< routed path length (when delivered)
    // ---- packet-backend only (defaults under the oracle backend) --------
    double convergence_time = 0.0;     ///< measured, this run
    bool converged = true;             ///< quiescence confirmed before cap
    double control_bytes = 0.0;        ///< control bytes to convergence
    std::size_t probes_delivered = 0;  ///< of Scenario::probe_packets
    std::size_t probes_failed = 0;
    // ---- traffic workload (defaults without an active TrafficSpec) ------
    std::size_t traffic_offered = 0;    ///< data packets scheduled this run
    std::size_t traffic_delivered = 0;  ///< of those, delivered
    double traffic_latency_p95 = 0.0;   ///< this run's p95 latency, seconds
    // ---- adversary engine (defaults without an active AdversarySpec) -----
    std::size_t invariant_violations = 0;  ///< monitor total() this run
    std::size_t poisoned_routes = 0;  ///< failed probes through an adversary
  };
  std::vector<Protocol> protocols;  ///< same order as DensityStats::protocols
};

struct DensityStats {
  double density = 0.0;
  std::size_t runs = 0;
  util::RunningStats node_count;
  std::vector<ProtocolStats> protocols;
  /// Ascending by run_index; empty unless Scenario::record_runs.
  std::vector<RunRecord> run_records;
};

/// Per-run artifacts shared by all protocols on one sampled topology.
struct SampledRun {
  Graph graph;
  NodeId source = kInvalidNode;
  NodeId destination = kInvalidNode;
  double optimal_value = 0.0;  ///< b* / d* on the full graph (Dijkstra)
};

/// Per-worker-thread scratch for the eval pipeline: one view builder, one
/// reused view, and the selection workspace shared by every heuristic. With
/// one bundle per thread, a full sweep builds every node's view and ANS
/// with zero per-node allocation (DESIGN.md §5).
struct EvalWorkspace {
  LocalViewBuilder view_builder;
  LocalView view;
  SelectionWorkspace selection;
  /// Per-selector, per-node ANS of the current run; the nested vectors are
  /// resized (keeping capacity) instead of reallocated each run.
  std::vector<std::vector<std::vector<NodeId>>> ans;
  /// The advertised topology as a reusable CSR view (rebuilt in place per
  /// selector per run) and the forwarding scratch that routes on it.
  AdvertisedTopologyBuilder advertised_builder;
  CsrTopology advertised;
  ForwardingWorkspace forwarding;
};

/// Samples one evaluation topology: Poisson deployment, uniform link QoS,
/// and a random connected (source, destination) pair. Re-draws the pair up
/// to `scenario.max_pair_draws` times, then resamples the whole topology —
/// a disconnected pair has no optimum to compare against (DESIGN.md §4.8).
template <Metric M>
SampledRun sample_run(const Scenario& scenario, double density,
                      util::Rng& rng, EvalWorkspace& ws) {
  SampledRun run;
  DeploymentConfig field = scenario.field;
  field.degree = density;
  for (std::size_t resample = 0;; ++resample) {
    if (resample >= scenario.max_topology_resamples)
      throw std::runtime_error(
          "sample_run: no usable (source, destination) pair after " +
          std::to_string(scenario.max_topology_resamples) +
          " topology resamples at density " + std::to_string(density) +
          " (expected nodes per deployment: " +
          std::to_string(field.expected_nodes()) +
          ") - the deployment configuration is degenerate");
    run.graph = sample_poisson_deployment(field, rng);
    if (run.graph.node_count() < 2) continue;
    assign_uniform_qos(run.graph, scenario.qos, rng);
    const Components components = connected_components(run.graph);
    const auto n = static_cast<NodeId>(run.graph.node_count());
    for (std::size_t attempt = 0; attempt < scenario.max_pair_draws;
         ++attempt) {
      const NodeId s = static_cast<NodeId>(rng.uniform_int(n));
      NodeId d = kInvalidNode;
      if (scenario.pair_mode == Scenario::PairMode::kTwoHop) {
        ws.view_builder.build(run.graph, s, ws.view);
        if (ws.view.two_hop().empty()) continue;
        const std::uint32_t pick = static_cast<std::uint32_t>(
            rng.uniform_int(std::uint64_t{ws.view.two_hop().size()}));
        d = ws.view.global_id(ws.view.two_hop()[pick]);
      } else {
        d = static_cast<NodeId>(rng.uniform_int(n));
        if (s == d || !components.connected(s, d)) continue;
      }
      run.source = s;
      run.destination = d;
      const DijkstraResult optimal = dijkstra<M>(run.graph, s);
      run.optimal_value = optimal.value[d];
      return run;
    }
  }
}

/// Convenience form with a throwaway workspace (tests, one-off callers).
template <Metric M>
SampledRun sample_run(const Scenario& scenario, double density,
                      util::Rng& rng) {
  EvalWorkspace ws;
  return sample_run<M>(scenario, density, rng, ws);
}

/// QoS overhead of an achieved route value vs. the optimum (paper §IV-A):
/// bandwidth-style (concave) metrics lose (b*−b)/b*; delay-style (additive)
/// metrics pay (d−d*)/d*.
template <Metric M>
double qos_overhead(double achieved, double optimal) {
  // A zero optimum makes the ratio 0/0 — all-zero additive link costs
  // (e.g. the loss interval under integral weights) or a zero-bandwidth
  // bottleneck when a QoS interval starts at 0. A route matching the
  // optimum is exactly optimal; anything else is unboundedly worse.
  if (optimal == 0.0)
    return achieved == optimal ? 0.0
                               : std::numeric_limits<double>::infinity();
  if constexpr (M::kind == MetricKind::kConcave) {
    return (optimal - achieved) / optimal;
  } else {
    return (achieved - optimal) / optimal;
  }
}

namespace eval_detail {

/// Executes one sampled run and folds the measurements into `stats`.
/// `ws` is the calling worker thread's scratch bundle.
template <Metric M>
void execute_run(const Scenario& scenario, double density,
                 std::size_t run_index, std::uint64_t run_seed,
                 const std::vector<const AnsSelector*>& selectors,
                 DensityStats& stats, EvalWorkspace& ws) {
  util::Rng rng(run_seed);
  const SampledRun run = sample_run<M>(scenario, density, rng, ws);
  stats.node_count.add(static_cast<double>(run.graph.node_count()));
  RunRecord record;
  if (scenario.record_runs) {
    record.run_index = run_index;
    record.nodes = run.graph.node_count();
    record.protocols.resize(selectors.size());
  }

  // Every node's view is built once (into the reused workspace view) and
  // shared by all selectors; the ANS buffers are recycled run to run.
  auto& ans = ws.ans;
  ans.resize(selectors.size());
  for (auto& per_node : ans) per_node.resize(run.graph.node_count());
  for (NodeId u = 0; u < run.graph.node_count(); ++u) {
    ws.view_builder.build(run.graph, u, ws.view);
    for (std::size_t si = 0; si < selectors.size(); ++si)
      selectors[si]->select_into(ws.view, ws.selection, ans[si][u]);
  }

  for (std::size_t si = 0; si < selectors.size(); ++si) {
    ProtocolStats& ps = stats.protocols[si];
    const double set_size = average_set_size(ans[si]);
    ps.set_size.add(set_size);

    ForwardingOptions options;
    options.use_local_views = scenario.use_local_views;
    options.min_hop_routing = !selectors[si]->qos_first_routing();
    ForwardingResult routed;
    if (scenario.routing_model == Scenario::RoutingModel::kAnsChain) {
      routed = forward_via_ans<M>(run.graph, ans[si], run.source,
                                  run.destination, options, ws.forwarding);
    } else {
      ws.advertised_builder.build_advertised(run.graph, ans[si],
                                             ws.advertised);
      routed = scenario.hop_by_hop
                   ? forward_packet<M>(run.graph, ws.advertised, run.source,
                                       run.destination, options,
                                       ws.forwarding)
                   : source_route_packet<M>(run.graph, ws.advertised,
                                            run.source, run.destination,
                                            options, ws.forwarding);
    }
    const double overhead =
        routed.delivered() ? qos_overhead<M>(routed.value, run.optimal_value)
                           : 0.0;
    if (routed.delivered()) {
      ++ps.delivered;
      ps.overhead.add(overhead);
      ps.path_hops.add(static_cast<double>(routed.path.size() - 1));
    } else {
      ++ps.failed;
    }
    if (scenario.record_runs) {
      RunRecord::Protocol& rp = record.protocols[si];
      rp.set_size = set_size;
      rp.delivered = routed.delivered();
      if (routed.delivered()) {
        rp.value = routed.value;
        rp.overhead = overhead;
        rp.hops = routed.path.size() - 1;
      }
    }
  }
  if (scenario.record_runs) stats.run_records.push_back(std::move(record));
}

/// Folds a worker's partial stats into `into`. `from` is consumed: its
/// run records (each holding a per-protocol vector) are moved, not copied.
inline void merge_into(DensityStats& into, DensityStats& from) {
  into.node_count.merge(from.node_count);
  into.run_records.insert(into.run_records.end(),
                          std::make_move_iterator(from.run_records.begin()),
                          std::make_move_iterator(from.run_records.end()));
  for (std::size_t si = 0; si < into.protocols.size(); ++si) {
    ProtocolStats& a = into.protocols[si];
    const ProtocolStats& b = from.protocols[si];
    a.set_size.merge(b.set_size);
    a.overhead.merge(b.overhead);
    a.path_hops.merge(b.path_hops);
    a.delivered += b.delivered;
    a.failed += b.failed;
    a.no_route_losses += b.no_route_losses;
    a.loop_losses += b.loop_losses;
    a.medium_losses += b.medium_losses;
    a.stale_losses += b.stale_losses;
    a.stretch.merge(b.stretch);
    a.readvertised.merge(b.readvertised);
    a.control.merge(b.control);
    a.probe_delivery.merge(b.probe_delivery);
    a.traffic.merge(b.traffic);
    a.invariants.merge(b.invariants);
  }
}

inline DensityStats empty_stats(
    double density, std::size_t runs,
    const std::vector<const AnsSelector*>& selectors) {
  DensityStats stats;
  stats.density = density;
  stats.runs = runs;
  stats.protocols.resize(selectors.size());
  for (std::size_t si = 0; si < selectors.size(); ++si)
    stats.protocols[si].name = std::string(selectors[si]->name());
  return stats;
}

}  // namespace eval_detail

namespace eval_detail {

/// The threaded sweep scaffold shared by the static and the dynamics
/// evaluation modes: distributes `scenario.runs` independent runs per
/// sweep point over `threads` workers (each worker owns one `Workspace`),
/// merges the partial stats, and restores run-record order. `execute` is
/// called as `execute(scenario, axis_value, run_index, run_seed,
/// selectors, stats, ws)` — the per-run body is the only thing the two
/// modes do differently.
///
/// Runs are independent (each derives its own RNG stream from the scenario
/// seed), so results are identical for every thread count, including 1.
/// `threads == 0` means hardware_concurrency.
template <typename Workspace, typename ExecuteRun>
std::vector<DensityStats> sweep_harness(
    const Scenario& scenario, const std::vector<const AnsSelector*>& selectors,
    unsigned threads, const ExecuteRun& execute) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(scenario.runs, 1)));

  std::vector<DensityStats> sweep;
  sweep.reserve(scenario.densities.size());

  for (std::size_t di = 0; di < scenario.densities.size(); ++di) {
    const double axis_value = scenario.densities[di];
    auto seed_of = [&](std::size_t run_index) {
      return scenario.seed + 0x1000003 * (di + 1) + run_index;
    };

    std::vector<DensityStats> partials(
        threads,
        eval_detail::empty_stats(axis_value, scenario.runs, selectors));
    if (threads == 1) {
      Workspace ws;
      for (std::size_t r = 0; r < scenario.runs; ++r)
        execute(scenario, axis_value, r, seed_of(r), selectors, partials[0],
                ws);
    } else {
      // A worker that throws (e.g. the sample_run resample cap) parks the
      // exception and stops; the first one is rethrown on the calling
      // thread after the join.
      std::vector<std::exception_ptr> errors(threads);
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          try {
            Workspace ws;
            for (std::size_t r = t; r < scenario.runs; r += threads)
              execute(scenario, axis_value, r, seed_of(r), selectors,
                      partials[t], ws);
          } catch (...) {
            errors[t] = std::current_exception();
          }
        });
      }
      for (std::thread& w : workers) w.join();
      for (const std::exception_ptr& error : errors)
        if (error) std::rethrow_exception(error);
    }

    DensityStats stats = std::move(partials[0]);
    for (unsigned t = 1; t < threads; ++t)
      eval_detail::merge_into(stats, partials[t]);
    // Workers interleave run indices; restore run order so recorded output
    // is identical for every thread count.
    std::sort(stats.run_records.begin(), stats.run_records.end(),
              [](const RunRecord& a, const RunRecord& b) {
                return a.run_index < b.run_index;
              });
    sweep.push_back(std::move(stats));
  }
  return sweep;
}

}  // namespace eval_detail

/// Runs the full density sweep for a set of selection heuristics under
/// metric M: per run, every node's ANS (oracle selection on its exact
/// G_u), the advertised topology, and one routed packet per protocol on the
/// shared (source, destination) pair. The dynamics counterpart is
/// `run_dynamic_sweep` (eval/dynamic_runner.hpp), which drives the same
/// harness with an epoch loop per run.
template <Metric M>
std::vector<DensityStats> run_sweep(
    const Scenario& scenario, const std::vector<const AnsSelector*>& selectors,
    unsigned threads = 0) {
  return eval_detail::sweep_harness<EvalWorkspace>(
      scenario, selectors, threads,
      [](const Scenario& sc, double density, std::size_t run_index,
         std::uint64_t run_seed, const std::vector<const AnsSelector*>& sel,
         DensityStats& stats, EvalWorkspace& ws) {
        eval_detail::execute_run<M>(sc, density, run_index, run_seed, sel,
                                    stats, ws);
      });
}

}  // namespace qolsr
